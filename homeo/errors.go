package homeo

import (
	"errors"
	"fmt"

	"repro/internal/fabric"
	"repro/internal/homeostasis"
	"repro/internal/workload"
)

// ErrDuplicateClass marks a Register call under a name already taken
// (the wire layer maps it to 409 Conflict).
var ErrDuplicateClass = workload.ErrDuplicateClass

// The structured error taxonomy for submissions. Classify with errors.Is;
// the wire protocol maps these to error codes (see homeo/wire).
var (
	// ErrAborted: the transaction could not commit (protocol error or an
	// unrecoverable execution failure). Its effects are not installed.
	ErrAborted = errors.New("homeo: transaction aborted")
	// ErrTimeout: the caller's deadline expired before the transaction
	// finished. The transaction keeps running in the background and MAY
	// still commit; only the caller stopped waiting.
	ErrTimeout = errors.New("homeo: deadline exceeded awaiting transaction")
	// ErrLivelocked: the transaction exhausted its retry budget under
	// contention (repeated conflict aborts or lost cleanup votes) and was
	// dropped.
	ErrLivelocked = errors.New("homeo: transaction livelocked")
	// ErrDropped: the cluster refused the submission — it is draining or
	// the in-flight limit (Options.MaxInflight) is reached. The
	// transaction never started; safe to retry with backoff.
	ErrDropped = errors.New("homeo: request dropped")
	// ErrSiteGone: the addressed site has been drained from the cluster
	// membership (or is draining). The transaction never started; retry
	// against a surviving site after refreshing the topology.
	ErrSiteGone = errors.New("homeo: site drained from membership")
)

// classifyExec maps an internal execution error onto the taxonomy.
func classifyExec(err error) error {
	if errors.Is(err, homeostasis.ErrLivelocked) {
		return fmt.Errorf("%w: %v", ErrLivelocked, err)
	}
	if errors.Is(err, fabric.ErrSiteGone) {
		return fmt.Errorf("%w: %v", ErrSiteGone, err)
	}
	return fmt.Errorf("%w: %v", ErrAborted, err)
}

// ErrorCode returns the wire code for a taxonomy error: "aborted",
// "timeout", "livelocked", "dropped", or "internal" for anything else
// (nil maps to "").
func ErrorCode(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, ErrLivelocked):
		return "livelocked"
	case errors.Is(err, ErrTimeout):
		return "timeout"
	case errors.Is(err, ErrDropped):
		return "dropped"
	case errors.Is(err, ErrSiteGone):
		return "site_gone"
	case errors.Is(err, ErrAborted):
		return "aborted"
	}
	return "internal"
}
