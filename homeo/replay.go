package homeo

import (
	"fmt"
	"sort"

	"repro/homeo/wire"
	"repro/internal/lang"
	"repro/internal/workload"
)

// This file is the multi-process half of the replay-equivalence check
// (Theorem 3.8): each process exposes its own commit log and database
// partition over the wire (GET /v1/peer/log, GET /v1/peer/db), and the
// driver merges them into one causally consistent history to replay.

// WireLog renders this process's commit log in wire form. Entries carry
// the commit's Lamport clock and local sequence number; synchronization
// rounds propagate clocks between processes, so MergeLogs can order the
// union consistently with the causality the rounds establish.
func (c *Cluster) WireLog() []wire.LogEntry {
	var out []wire.LogEntry
	c.locked(func() {
		for i, e := range c.sys.CommitLog {
			en := wire.LogEntry{
				Class: e.Name,
				Args:  e.Args,
				Site:  e.Site,
				Clock: e.Clock,
				Seq:   i,
			}
			if e.Round != nil {
				en.Round = &wire.LogRound{Site: e.Round.Site, Seq: e.Round.Seq}
			}
			out = append(out, en)
		}
	})
	return out
}

// Partition renders this process's authoritative share of the logical
// database: every treaty-unit object's base value plus the site's own
// delta values.
func (c *Cluster) Partition() wire.PartitionResponse {
	site := c.SelfSite()
	if site < 0 {
		site = 0
	}
	out := wire.PartitionResponse{Site: site, Values: map[string]int64{}}
	c.locked(func() {
		for obj, v := range c.sys.PartitionDB(site) {
			out.Values[string(obj)] = v
		}
	})
	return out
}

// MergeLogs merges per-site commit logs into one history ordered by
// (Lamport clock, site, local sequence). Commits causally ordered by a
// synchronization round keep their order; concurrent commits (which the
// treaties guarantee stay within their sites' slack) tie-break
// deterministically. A synchronization round's winner can legitimately
// appear in more than one log — the coordinator's, plus any site that
// adopted the round during coordinator failover — so entries tagged with
// a round id are deduplicated, keeping the first in merge order.
func MergeLogs(logs [][]wire.LogEntry) []wire.LogEntry {
	var out []wire.LogEntry
	for _, l := range logs {
		out = append(out, l...)
	}
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Clock != b.Clock {
			return a.Clock < b.Clock
		}
		if a.Site != b.Site {
			return a.Site < b.Site
		}
		return a.Seq < b.Seq
	})
	seen := make(map[wire.LogRound]bool)
	dst := out[:0]
	for _, e := range out {
		if e.Round != nil {
			if seen[*e.Round] {
				continue
			}
			seen[*e.Round] = true
		}
		dst = append(dst, e)
	}
	return dst
}

// CheckMergedReplay verifies observational equivalence across a
// multi-process cluster: the union of every process's commit log, merged
// by Lamport order, applied serially to the initial logical database,
// must reproduce the database folded from every process's partition.
//
// Every logged commit must name a class registered on this cluster (the
// driver registers the same classes at every site before driving) — base
// workload draws are not reconstructible from the wire log. parts must
// hold one partition per site.
func (c *Cluster) CheckMergedReplay(logs [][]wire.LogEntry, parts []wire.PartitionResponse) error {
	width := c.Sites()
	merged := MergeLogs(logs)
	if len(merged) == 0 {
		return fmt.Errorf("homeo: merged replay with empty commit log")
	}
	bySite := make([]map[string]int64, width)
	for _, p := range parts {
		if p.Site < 0 || p.Site >= width {
			return fmt.Errorf("homeo: partition names site %d outside [0,%d)", p.Site, width)
		}
		if bySite[p.Site] != nil {
			return fmt.Errorf("homeo: duplicate partition for site %d", p.Site)
		}
		bySite[p.Site] = p.Values
	}
	// A drained site's partition may be absent: its deltas were absorbed
	// into the replicated base by the drain's winnerless rounds, so the
	// surviving sites' partitions carry its contribution. Every site still
	// in the membership must report.
	statuses := c.SiteStatuses()
	ref := -1 // lowest-indexed site with a partition: the base reference
	for site, vals := range bySite {
		if vals == nil {
			if statuses[site] == "gone" {
				continue
			}
			return fmt.Errorf("homeo: missing partition for site %d (status %s)", site, statuses[site])
		}
		if ref < 0 {
			ref = site
		}
	}
	if ref < 0 {
		return fmt.Errorf("homeo: merged replay with no partitions")
	}

	var replay lang.Database
	c.locked(func() { replay = c.reg.InitialDB() })
	for _, e := range merged {
		t := c.Class(e.Class)
		if t == nil {
			return fmt.Errorf("homeo: merged replay: %q is not a registered class (base workload commits are not reconstructible)", e.Class)
		}
		var (
			req workload.Request
			err error
		)
		c.locked(func() { req, err = c.reg.Request(t.wc, e.Args) })
		if err != nil {
			return fmt.Errorf("homeo: merged replay: %s%v: %v", e.Class, e.Args, err)
		}
		req.Apply(replay)
	}

	// Fold the final database from the partitions: the base value from
	// the reference site (replicated — verify the others agree) plus
	// every reporting site's own delta. Absent (drained) sites
	// contribute zero delta by construction.
	var objs []lang.ObjID
	c.locked(func() { objs = c.sys.AllUnitObjects() })
	for _, obj := range objs {
		base, ok := bySite[ref][string(obj)]
		if !ok {
			return fmt.Errorf("homeo: merged replay: site %d partition is missing %s", ref, obj)
		}
		v := base
		for site := 0; site < width; site++ {
			if bySite[site] == nil {
				continue
			}
			if b, ok := bySite[site][string(obj)]; ok && b != base {
				return fmt.Errorf("homeo: merged replay: base %s diverged: site %d has %d, site %d has %d",
					obj, ref, base, site, b)
			}
			v += bySite[site][string(lang.DeltaObj(obj, site))]
		}
		if got := replay.Get(obj); got != v {
			return fmt.Errorf("homeo: merged replay mismatch on %s: cluster %d, serial replay %d (%d commits)",
				obj, v, got, len(merged))
		}
	}
	return nil
}
