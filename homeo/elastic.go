package homeo

import (
	"fmt"

	"repro/internal/rt"
)

// This file is the public surface of the elastic-topology layer: online
// site join, drain, and demand-driven unit migration. The orchestrations
// live in internal/homeostasis (JoinCluster, Drain, Migrate); the Cluster
// methods here give them a process to park on and keep the session
// layer's topology snapshot fresh.

// topoView is an immutable snapshot of the membership the submission hot
// path reads lock-free: round-robin site selection must skip drained
// sites without taking the scheduler lock per request. It is refreshed
// after every membership operation this process initiates (in a
// multi-process cluster each process runs its own operations, so the
// local view is always current for local routing decisions).
type topoView struct {
	width  int
	active []bool
}

// refreshTopo snapshots the membership under the cluster lock and
// publishes it for lock-free readers.
func (c *Cluster) refreshTopo() {
	v := &topoView{}
	c.locked(func() {
		v.width = c.sys.NSites()
		v.active = make([]bool, v.width)
		for k := 0; k < v.width; k++ {
			v.active[k] = c.sys.SiteActive(k)
		}
	})
	c.topo.Store(v)
}

// topoSnapshot returns the current topology view, building one on first
// use.
func (c *Cluster) topoSnapshot() *topoView {
	if v := c.topo.Load(); v != nil {
		return v
	}
	c.refreshTopo()
	return c.topo.Load()
}

// runProc runs fn on a process of the cluster's runtime and waits for it
// to finish (membership orchestrations park on peer replies and round
// machinery, so they need process context — the same pattern as
// Recover's rejoin handshake).
func (c *Cluster) runProc(op string, fn func(p rt.Proc) error) error {
	var ferr error
	done := make(chan struct{})
	body := func(p rt.Proc) {
		defer close(done)
		ferr = fn(p)
	}
	if c.sim != nil {
		c.mu.Lock()
		c.sim.SetDeadline(0)
		c.sim.Spawn(int(c.nextID.Add(1)), body)
		c.sim.Run()
		c.mu.Unlock()
	} else if !c.live.SpawnOK(int(c.nextID.Add(1)), body) {
		return fmt.Errorf("%w: cluster is draining", ErrDropped)
	} else {
		<-done
	}
	select {
	case <-done:
	default:
		return fmt.Errorf("homeo: %s parked with no pending event", op)
	}
	return ferr
}

// Join admits a new site into the running cluster's membership via the
// two-phase join handshake (quiesce + consistent partition cut, then
// activate) and returns the new site's index.
//
// On an in-process cluster the call grows this cluster by one fresh
// site. On a multi-process cluster the call must be made by the joining
// process itself (booted at width n+1 owning site n, its peer list
// naming the existing sites): addr is the joiner's advertised peer base
// URL, announced to every peer during the handshake. Peers include the
// new site in treaty configurations from their next synchronization
// round on.
func (c *Cluster) Join(addr string) (int, error) {
	var joiner int
	err := c.runProc("join handshake", func(p rt.Proc) error {
		var jerr error
		joiner, jerr = c.sys.JoinCluster(p, addr)
		return jerr
	})
	if err != nil {
		return 0, err
	}
	c.refreshTopo()
	return joiner, nil
}

// Drain removes a site from the active membership: the site is fenced
// (new submissions refused with ErrSiteGone), every treaty unit's deltas
// at the site are absorbed into the replicated base through
// winnerless synchronization rounds, and the membership epoch advances
// at every peer. The site keeps its index — slots are never reused, so
// per-site state and the merged commit log stay stably indexed.
//
// On a multi-process cluster only the process owning the site can drain
// it (the absorb rounds need its local state).
func (c *Cluster) Drain(site int) error {
	err := c.runProc("drain", func(p rt.Proc) error {
		return c.sys.Drain(p, site)
	})
	if err != nil {
		return err
	}
	c.refreshTopo()
	return nil
}

// MigrateUnit moves one treaty unit's demand home to another site: the
// unit is frozen under a synchronization-round grant, its folded state
// ships to every site, and the repaired treaty configuration
// concentrates the unit's slack on the target. A coordinator death
// mid-migration aborts or adopts through the ordinary round-grant
// failover. Pass to = DemandHome(unit) for burn-driven placement, or an
// explicit active site.
func (c *Cluster) MigrateUnit(unit, to int) error {
	site := c.SelfSite()
	if site < 0 {
		site = 0
	}
	return c.runProc("unit migration", func(p rt.Proc) error {
		return c.sys.Migrate(p, site, unit, to)
	})
}

// MarkSiteGone fences a membership slot that was already drained before
// this process booted: a joiner admitted into a cluster whose topology
// snapshot lists gone sites must exclude those slots from routing and
// scatters even though it never witnessed the drain. No-op for active
// processes that observed the drain themselves.
func (c *Cluster) MarkSiteGone(site int) {
	c.locked(func() { c.sys.MarkSiteGone(site) })
	c.refreshTopo()
}

// DemandHome reports the site whose clients burn the most of the unit's
// treaty slack (the adaptive allocator's demand vector), or -1 when the
// unit has recorded no demand. A unit whose demand home differs from the
// site holding most of its slack is a migration candidate.
func (c *Cluster) DemandHome(unit int) (home int) {
	c.locked(func() { home = c.sys.DemandHome(unit) })
	return home
}

// TopologyEpoch reports this process's membership epoch: a monotonic
// counter bumped on every membership change it observes. Clients use a
// bump as a cue to refresh their site list; epochs are per-process
// observations, not a consensus value.
func (c *Cluster) TopologyEpoch() (epoch int64) {
	c.locked(func() { epoch = c.sys.Epoch() })
	return epoch
}

// SiteStatuses reports every membership slot's status ("active",
// "draining", "gone"), indexed by site.
func (c *Cluster) SiteStatuses() []string {
	var out []string
	c.locked(func() {
		n := c.sys.NSites()
		out = make([]string, n)
		for k := 0; k < n; k++ {
			out[k] = c.sys.SiteStatusName(k)
		}
	})
	return out
}

// SiteAddrs reports the known per-site peer base URLs ("" for
// in-process sites), indexed by site.
func (c *Cluster) SiteAddrs() []string {
	var out []string
	c.locked(func() { out = c.sys.SiteAddrs() })
	return out
}
