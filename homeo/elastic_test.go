package homeo_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/homeo"
)

// TestJoinSim: an in-process cluster admits a fresh site mid-run; the
// new site serves traffic, the epoch bumps, and replay equivalence holds
// across the membership change.
func TestJoinSim(t *testing.T) {
	c := simCluster(t, homeo.Options{Sites: 2, EnableLog: true})
	cls, err := c.Register(homeo.ClassSpec{
		L:       depositSrc,
		Bounds:  map[string][2]int64{"n": {1, 5}},
		Initial: map[string]int64{"acct": 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := c.Session()
	for i := 0; i < 10; i++ {
		if _, err := s.Submit(context.Background(), cls, 2); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Sites(); got != 2 {
		t.Fatalf("Sites before join = %d, want 2", got)
	}
	epoch0 := c.TopologyEpoch()

	joined, err := c.Join("")
	if err != nil {
		t.Fatalf("Join: %v", err)
	}
	if joined != 2 {
		t.Fatalf("joined site index = %d, want 2", joined)
	}
	if got := c.Sites(); got != 3 {
		t.Fatalf("Sites after join = %d, want 3", got)
	}
	if c.TopologyEpoch() <= epoch0 {
		t.Fatalf("epoch did not advance: %d -> %d", epoch0, c.TopologyEpoch())
	}
	st := c.Stats()
	if st.Sites != 3 || st.ActiveSites != 3 {
		t.Fatalf("stats topology = %d sites / %d active, want 3/3", st.Sites, st.ActiveSites)
	}

	// The new site serves traffic, including synchronization rounds that
	// must now include it in the treaty configuration.
	at2, err := c.SessionAt(2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := at2.Submit(context.Background(), cls, 5); err != nil {
			t.Fatalf("submit at joined site: %v", err)
		}
	}
	for i := 0; i < 10; i++ {
		if _, err := s.Submit(context.Background(), cls, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.CheckReplayEquivalence(); err != nil {
		t.Fatalf("replay equivalence across join: %v", err)
	}
}

// TestDrainSim: draining a site absorbs its deltas, fences it from new
// submissions, and keeps replay equivalence on the survivors.
func TestDrainSim(t *testing.T) {
	c := simCluster(t, homeo.Options{Sites: 3, EnableLog: true})
	cls, err := c.Register(homeo.ClassSpec{
		L:       depositSrc,
		Bounds:  map[string][2]int64{"n": {1, 5}},
		Initial: map[string]int64{"acct": 90},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Commit at the doomed site so the drain has deltas to absorb.
	at2, err := c.SessionAt(2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 15; i++ {
		if _, err := at2.Submit(context.Background(), cls, 3); err != nil {
			t.Fatal(err)
		}
	}
	epoch0 := c.TopologyEpoch()
	if err := c.Drain(2); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if c.TopologyEpoch() <= epoch0 {
		t.Fatal("epoch did not advance on drain")
	}
	st := c.Stats()
	if st.Sites != 3 || st.ActiveSites != 2 {
		t.Fatalf("stats topology = %d sites / %d active, want 3/2", st.Sites, st.ActiveSites)
	}
	if st.SiteStatus[2] != "gone" {
		t.Fatalf("site 2 status = %q, want gone", st.SiteStatus[2])
	}

	// The drained site refuses new work with the taxonomy error.
	if _, err := at2.Submit(context.Background(), cls, 1); !errors.Is(err, homeo.ErrSiteGone) {
		t.Fatalf("submit at drained site: %v, want ErrSiteGone", err)
	}
	if code := homeo.ErrorCode(err); code != "" {
		// (ErrorCode of the submit error checked below.)
		_ = code
	}
	_, serr := at2.Submit(context.Background(), cls, 1)
	if homeo.ErrorCode(serr) != "site_gone" {
		t.Fatalf("ErrorCode = %q, want site_gone", homeo.ErrorCode(serr))
	}

	// Survivors keep committing; round-robin routes around the hole.
	s := c.Session()
	for i := 0; i < 12; i++ {
		res, err := s.Submit(context.Background(), cls, 2)
		if err != nil {
			t.Fatal(err)
		}
		if res.Site == 2 {
			t.Fatal("round-robin routed to the drained site")
		}
	}
	if err := c.CheckReplayEquivalence(); err != nil {
		t.Fatalf("replay equivalence across drain: %v", err)
	}

	// Draining the same site again is an error (already gone).
	if err := c.Drain(2); err == nil {
		t.Fatal("second drain of the same site succeeded")
	}
}

// TestMigrateSim: migrating a unit's demand home repairs the treaty
// configuration toward the target and preserves replay equivalence.
func TestMigrateSim(t *testing.T) {
	c := simCluster(t, homeo.Options{Sites: 2, EnableLog: true, Alloc: homeo.AllocAdaptive})
	cls, err := c.Register(homeo.ClassSpec{
		L:       depositSrc,
		Bounds:  map[string][2]int64{"n": {1, 5}},
		Initial: map[string]int64{"acct": 200},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Burn slack at site 1 only: the demand vector should point there.
	at1, err := c.SessionAt(1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		if _, err := at1.Submit(context.Background(), cls, 4); err != nil {
			t.Fatal(err)
		}
	}
	unit := 0
	home := c.DemandHome(unit)
	if home != 1 {
		t.Logf("demand home = %d (burn accounting may lag); migrating to 1 anyway", home)
	}
	if err := c.MigrateUnit(unit, 1); err != nil {
		t.Fatalf("MigrateUnit: %v", err)
	}
	// Work keeps flowing at both sites after the migration.
	s := c.Session()
	for i := 0; i < 10; i++ {
		if _, err := s.Submit(context.Background(), cls, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.CheckReplayEquivalence(); err != nil {
		t.Fatalf("replay equivalence across migration: %v", err)
	}

	// Migrating to a bogus site fails fast.
	if err := c.MigrateUnit(unit, 9); err == nil {
		t.Fatal("migration to a nonexistent site succeeded")
	}
}

// TestJoinThenDrainSim: the full elastic lifecycle — grow by one, drain
// an original site, keep serving — in one deterministic run.
func TestJoinThenDrainSim(t *testing.T) {
	c := simCluster(t, homeo.Options{Sites: 2, EnableLog: true})
	cls, err := c.Register(homeo.ClassSpec{
		L:       depositSrc,
		Bounds:  map[string][2]int64{"n": {1, 5}},
		Initial: map[string]int64{"acct": 50},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := c.Session()
	submit := func(n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			if _, err := s.Submit(context.Background(), cls, 2); err != nil {
				t.Fatal(err)
			}
		}
	}
	submit(8)
	if _, err := c.Join(""); err != nil {
		t.Fatalf("Join: %v", err)
	}
	submit(8)
	if err := c.Drain(0); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	submit(8)
	st := c.Stats()
	if st.Sites != 3 || st.ActiveSites != 2 || st.SiteStatus[0] != "gone" {
		t.Fatalf("topology = %+v", st.SiteStatus)
	}
	if err := c.CheckReplayEquivalence(); err != nil {
		t.Fatalf("replay equivalence across join+drain: %v", err)
	}
}

// TestWatchStatsTopology: WatchStats surfaces the topology fields (smoke
// for the streaming path after the membership additions).
func TestWatchStatsTopology(t *testing.T) {
	c := simCluster(t, homeo.Options{Sites: 2})
	ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
	defer cancel()
	for st := range c.WatchStats(ctx, 50*time.Millisecond) {
		if st.Sites != 2 || len(st.SiteStatus) != 2 {
			t.Fatalf("stats topology = %+v", st)
		}
		cancel()
	}
}
