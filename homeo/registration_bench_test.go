package homeo_test

import (
	"fmt"
	"testing"

	"repro/homeo"
)

// regSpec builds the i-th registration spec. Every class has the same
// transaction shape — a guarded withdraw — but a distinct transaction
// name and a distinct object, so each registration adds one fresh unit
// while the structural analysis (symtab build, guard preprocessing) is
// identical across all of them.
func regSpec(i int) homeo.ClassSpec {
	return homeo.ClassSpec{
		L: fmt.Sprintf(
			"transaction W%d(n) { v := read(item%d); if (v - n > 0) then write(item%d = v - n) else skip }",
			i, i, i),
		Bounds:  map[string][2]int64{"n": {1, 5}},
		Initial: map[string]int64{fmt.Sprintf("item%d", i): 1 << 30},
	}
}

// BenchmarkRegisterClass measures online class registration as a
// function of how many classes the cluster already holds: the cost of
// registering the (pre+1)-th isomorphic class at pre = 100, 1k, and
// 10k. Registration cost has two parts — per-class analysis (parse,
// per-site replica rewrites, symbolic table, guard preprocessing),
// which the artifact cache amortizes across isomorphic classes, and
// registry bookkeeping (footprint-overlap checks, unit installation),
// which must stay flat in the class count. Serial, sim runtime;
// numbers recorded in BENCH_registration.json.
func BenchmarkRegisterClass(b *testing.B) {
	for _, pre := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("pre=%d", pre), func(b *testing.B) {
			c, err := homeo.New(homeo.Options{Runtime: homeo.RuntimeSim, Seed: 7})
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(c.Close)
			for i := 0; i < pre; i++ {
				if _, err := c.Register(regSpec(i)); err != nil {
					b.Fatal(err)
				}
			}
			// Specs are prebuilt so the loop times Register alone, not
			// the fmt work of generating distinct sources.
			specs := make([]homeo.ClassSpec, b.N)
			for i := range specs {
				specs[i] = regSpec(pre + i)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.Register(specs[i]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
