// Package httpapi serves the versioned /v1 wire protocol (see homeo/wire)
// over an embeddable homeo.Cluster. cmd/homeostasis-serve mounts it; any
// application embedding a Cluster can too:
//
//	h := httpapi.NewHandler(cluster)
//	http.ListenAndServe(":8080", h)
//
// Transaction classes never seen at compile time are registered over
// POST /v1/classes (the server parses, analyzes, and generates treaties
// online), invoked over POST /v1/txn (single or batch, with 429
// backpressure on queue overflow), and observed over GET /v1/stats
// (snapshot or Server-Sent Events stream). The pre-v1 endpoints /txn and
// /stats answer 410 Gone with a pointer to their replacements.
package httpapi

import (
	"context"
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/homeo"
	"repro/homeo/wire"
	"repro/internal/fabric"
)

// Handler serves the /v1 protocol over a cluster.
type Handler struct {
	c        *homeo.Cluster
	mux      *http.ServeMux
	draining atomic.Bool
}

// NewHandler mounts the /v1 protocol over the cluster. On a
// multi-process cluster (homeo.Options.Fabric) the site fabric's peer
// protocol is additionally served under /v1/peer/, including the
// read-only introspection endpoints (/v1/peer/log, /v1/peer/db); all of
// it requires the configured peer token — the log and partition expose
// transaction history and database values, the same trust domain as the
// mutations.
func NewHandler(c *homeo.Cluster) *Handler {
	h := &Handler{c: c, mux: http.NewServeMux()}
	h.mux.HandleFunc("/v1/classes", h.handleClasses)
	h.mux.HandleFunc("/v1/txn", h.handleTxn)
	h.mux.HandleFunc("/v1/stats", h.handleStats)
	h.mux.HandleFunc("/v1/topology", h.handleTopology)
	h.mux.HandleFunc("/v1/topology/drain", h.handleTopologyDrain)
	h.mux.HandleFunc("/v1/topology/migrate", h.handleTopologyMigrate)
	h.mux.HandleFunc("/healthz", h.handleHealthz)
	h.mux.HandleFunc("/txn", gone("/v1/txn"))
	h.mux.HandleFunc("/stats", gone("/v1/stats"))
	if peer := c.PeerHandler(); peer != nil {
		// The peer handler owns the full /v1/peer/* paths; the exact
		// /v1/peer/log and /v1/peer/db patterns below still win.
		h.mux.Handle("/v1/peer/", peer)
		h.mux.HandleFunc("/v1/peer/log", h.handlePeerLog)
		h.mux.HandleFunc("/v1/peer/db", h.handlePeerDB)
	}
	return h
}

// peerAuthorized enforces the peer token on the introspection endpoints
// (mirroring the fabric handler's check on the mutation endpoints).
func (h *Handler) peerAuthorized(rw http.ResponseWriter, req *http.Request) bool {
	tok := h.c.PeerToken()
	if tok == "" {
		return true
	}
	if subtle.ConstantTimeCompare([]byte(req.Header.Get(fabric.PeerTokenHeader)), []byte(tok)) != 1 {
		writeError(rw, http.StatusUnauthorized, "unauthorized", "missing or wrong peer token")
		return false
	}
	return true
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(rw http.ResponseWriter, req *http.Request) {
	h.mux.ServeHTTP(rw, req)
}

// Drain flips the handler into draining mode: /v1/classes and /v1/txn
// answer 503 while stats and health stay readable. The serving binary
// calls it on SIGINT/SIGTERM before draining the cluster.
func (h *Handler) Drain() { h.draining.Store(true) }

func writeJSON(rw http.ResponseWriter, status int, v any) {
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(status)
	enc := json.NewEncoder(rw)
	enc.SetIndent("", "  ")
	// The status line is already written; a mid-body failure cannot be
	// reported to the client anyway.
	_ = enc.Encode(v)
}

// retryAfterSeconds is the backpressure hint attached to 429/503
// responses: clients should wait this long before retrying instead of
// falling back to computed backoff (homeo/client honors it).
const retryAfterSeconds = 1

func writeError(rw http.ResponseWriter, status int, code, format string, args ...any) {
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		rw.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
	}
	writeJSON(rw, status, wire.ErrorResponse{Error: wire.Error{
		Code:    code,
		Message: fmt.Sprintf(format, args...),
	}})
}

// wireStats converts an embeddable-API snapshot into the wire form
// (kept here so package wire stays dependency-free).
func wireStats(s homeo.Stats) wire.Stats {
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	out := wire.Stats{
		Workload:            s.Workload,
		Mode:                s.Mode,
		Alloc:               s.Alloc,
		Runtime:             s.Runtime,
		Sites:               s.Sites,
		Classes:             s.Classes,
		UptimeSec:           s.Uptime.Seconds(),
		Committed:           s.Committed,
		Synced:              s.Synced,
		ConflictAborts:      s.ConflictAborts,
		Dropped:             s.Dropped,
		Livelocked:          s.Livelocked,
		TreatyGenFailures:   s.TreatyGenFailures,
		CoWinnerCommits:     s.CoWinnerCommits,
		SyncRatioPct:        s.SyncRatioPct,
		ThroughputTxnS:      s.Throughput,
		LatencyP50MS:        ms(s.LatencyP50),
		LatencyP90MS:        ms(s.LatencyP90),
		LatencyP99MS:        ms(s.LatencyP99),
		LatencyMaxMS:        ms(s.LatencyMax),
		LatencyMeanMS:       ms(s.LatencyMean),
		Negotiations:        s.Negotiations,
		NegLatencyP50MS:     ms(s.NegotiationP50),
		NegLatencyP99MS:     ms(s.NegotiationP99),
		FabricErrors:        s.FabricErrors,
		RoundsAdopted:       s.RoundsAdopted,
		RoundsAborted:       s.RoundsAborted,
		RecoveredWALRecords: s.RecoveredWALRecords,
		AnalysisCacheHits:   s.AnalysisCacheHits,
		AnalysisCacheMisses: s.AnalysisCacheMisses,
		SolverWarmStarts:    s.SolverWarmStarts,
		SolverFallbacks:     s.SolverFallbacks,
		StoreCluster: wire.StoreStats{Commits: s.Store.Commits, Aborts: s.Store.Aborts,
			Deadlocks: s.Store.Deadlocks, Timeouts: s.Store.Timeouts},
		TopologyEpoch: s.TopologyEpoch,
		ActiveSites:   s.ActiveSites,
		SiteStatus:    s.SiteStatus,
		SiteAddrs:     s.SiteAddrs,
	}
	for _, p := range s.PerSite {
		out.StorePerSite = append(out.StorePerSite, wire.StoreStats{
			Commits: p.Commits, Aborts: p.Aborts, Deadlocks: p.Deadlocks, Timeouts: p.Timeouts,
		})
	}
	return out
}

// gone answers 410 for a pre-v1 endpoint, naming its replacement.
func gone(replacement string) http.HandlerFunc {
	return func(rw http.ResponseWriter, req *http.Request) {
		writeError(rw, http.StatusGone, "gone",
			"this endpoint was replaced by %s (see the /v1 protocol docs)", replacement)
	}
}

// decodeBody decodes a JSON body, tolerating an empty one.
func decodeBody(req *http.Request, v any) error {
	if req.Body == nil {
		return nil
	}
	dec := json.NewDecoder(req.Body)
	if err := dec.Decode(v); err != nil && !errors.Is(err, io.EOF) {
		return err
	}
	return nil
}

// handlePeerLog serves the process's commit log (Lamport-clocked wire
// entries) for the multi-process driver's merged replay check.
func (h *Handler) handlePeerLog(rw http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		writeError(rw, http.StatusMethodNotAllowed, "method_not_allowed", "%s: GET only", req.URL.Path)
		return
	}
	if !h.peerAuthorized(rw, req) {
		return
	}
	site := h.c.SelfSite()
	if site < 0 {
		site = 0
	}
	entries := h.c.WireLog()
	if entries == nil {
		entries = []wire.LogEntry{}
	}
	writeJSON(rw, http.StatusOK, wire.LogResponse{Site: site, Entries: entries})
}

// handlePeerDB serves the process's authoritative database partition.
func (h *Handler) handlePeerDB(rw http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		writeError(rw, http.StatusMethodNotAllowed, "method_not_allowed", "%s: GET only", req.URL.Path)
		return
	}
	if !h.peerAuthorized(rw, req) {
		return
	}
	writeJSON(rw, http.StatusOK, h.c.Partition())
}

// handleTopology serves the process's membership view (GET /v1/topology).
// Read-only, but it exposes the peer addresses — same trust domain as the
// peer introspection endpoints, so the peer token applies.
func (h *Handler) handleTopology(rw http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		writeError(rw, http.StatusMethodNotAllowed, "method_not_allowed", "%s: GET only", req.URL.Path)
		return
	}
	if !h.peerAuthorized(rw, req) {
		return
	}
	writeJSON(rw, http.StatusOK, wire.TopologyResponse{
		Epoch:       h.c.TopologyEpoch(),
		Sites:       h.c.Sites(),
		ActiveSites: h.c.ActiveSites(),
		SiteStatus:  h.c.SiteStatuses(),
		SiteAddrs:   h.c.SiteAddrs(),
		SelfSite:    h.c.SelfSite(),
	})
}

// topologyAck renders the post-mutation membership view.
func (h *Handler) topologyAck(rw http.ResponseWriter) {
	writeJSON(rw, http.StatusOK, wire.TopologyAck{
		Epoch:       h.c.TopologyEpoch(),
		Sites:       h.c.Sites(),
		ActiveSites: h.c.ActiveSites(),
	})
}

// handleTopologyDrain triggers a drain of this process's site (POST
// /v1/topology/drain). Unlike the fabric-internal /v1/peer/drain — which
// merely records a completed drain announced by a peer — this runs the
// full orchestration: fence, absorb every unit's deltas into the
// replicated base, broadcast the membership change. Peer-token guarded:
// it is a cluster mutation.
func (h *Handler) handleTopologyDrain(rw http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		writeError(rw, http.StatusMethodNotAllowed, "method_not_allowed", "%s: POST only", req.URL.Path)
		return
	}
	if !h.peerAuthorized(rw, req) {
		return
	}
	var body wire.DrainRequest
	if err := decodeBody(req, &body); err != nil {
		writeError(rw, http.StatusBadRequest, "bad_request", "request body: %v", err)
		return
	}
	if err := h.c.Drain(body.Site); err != nil {
		writeError(rw, http.StatusConflict, "conflict", "drain site %d: %v", body.Site, err)
		return
	}
	h.topologyAck(rw)
}

// handleTopologyMigrate moves one treaty unit's demand home (POST
// /v1/topology/migrate). To = -1 asks the adaptive allocator's burn
// vector for the target. Peer-token guarded.
func (h *Handler) handleTopologyMigrate(rw http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		writeError(rw, http.StatusMethodNotAllowed, "method_not_allowed", "%s: POST only", req.URL.Path)
		return
	}
	if !h.peerAuthorized(rw, req) {
		return
	}
	var body wire.MigrateRequest
	if err := decodeBody(req, &body); err != nil {
		writeError(rw, http.StatusBadRequest, "bad_request", "request body: %v", err)
		return
	}
	to := body.To
	if to < 0 {
		if to = h.c.DemandHome(body.Unit); to < 0 {
			writeError(rw, http.StatusConflict, "conflict",
				"unit %d has no recorded demand (pass an explicit target)", body.Unit)
			return
		}
	}
	if err := h.c.MigrateUnit(body.Unit, to); err != nil {
		writeError(rw, http.StatusConflict, "conflict", "migrate unit %d to site %d: %v", body.Unit, to, err)
		return
	}
	h.topologyAck(rw)
}

func (h *Handler) handleHealthz(rw http.ResponseWriter, _ *http.Request) {
	status := "ok"
	if h.draining.Load() || h.c.Draining() {
		status = "draining"
	}
	writeJSON(rw, http.StatusOK, map[string]string{"status": status})
}

// classInfo renders a registered class.
func classInfo(t *homeo.TxnClass) wire.ClassInfo {
	pinned, why := t.Pinned()
	return wire.ClassInfo{
		Name:      t.Name(),
		Params:    t.Params(),
		Objects:   t.Objects(),
		Pinned:    pinned,
		PinReason: why,
		Treaties:  t.Treaties(),
	}
}

func (h *Handler) handleClasses(rw http.ResponseWriter, req *http.Request) {
	switch req.Method {
	case http.MethodGet:
		resp := wire.ClassListResponse{Classes: []wire.ClassInfo{}}
		for _, name := range h.c.Classes() {
			if t := h.c.Class(name); t != nil {
				resp.Classes = append(resp.Classes, classInfo(t))
			}
		}
		writeJSON(rw, http.StatusOK, resp)
	case http.MethodPost:
		if h.draining.Load() || h.c.Draining() {
			writeError(rw, http.StatusServiceUnavailable, "draining", "server is draining")
			return
		}
		var body wire.ClassEnvelope
		if err := decodeBody(req, &body); err != nil {
			writeError(rw, http.StatusBadRequest, "bad_request", "request body: %v", err)
			return
		}
		reqs := body.Batch
		batch := len(reqs) > 0
		if !batch {
			reqs = []wire.ClassRequest{body.ClassRequest}
		}
		specs := make([]homeo.ClassSpec, len(reqs))
		for i, r := range reqs {
			if r.Name != "" && h.c.Class(r.Name) != nil {
				writeError(rw, http.StatusConflict, "conflict", "class %q already registered", r.Name)
				return
			}
			specs[i] = homeo.ClassSpec{
				Name:    r.Name,
				L:       r.L,
				SQL:     r.SQL,
				Bounds:  r.Bounds,
				Initial: r.Initial,
				Rows:    r.Rows,
			}
		}
		ts, err := h.c.RegisterBatch(specs)
		if err != nil {
			status, code := http.StatusBadRequest, "bad_request"
			switch {
			case errors.Is(err, homeo.ErrDropped):
				status, code = http.StatusServiceUnavailable, "draining"
			case errors.Is(err, homeo.ErrDuplicateClass):
				// L classes named by their source can collide too.
				status, code = http.StatusConflict, "conflict"
			}
			writeError(rw, status, code, "%v", err)
			return
		}
		if batch {
			resp := wire.ClassBatchResponse{Classes: make([]wire.ClassInfo, len(ts))}
			for i, t := range ts {
				resp.Classes[i] = classInfo(t)
			}
			writeJSON(rw, http.StatusCreated, resp)
			return
		}
		writeJSON(rw, http.StatusCreated, classInfo(ts[0]))
	default:
		writeError(rw, http.StatusMethodNotAllowed, "method_not_allowed", "%s: GET or POST only", req.URL.Path)
	}
}

// resolveTxn validates one TxnRequest into a runnable closure.
func (h *Handler) submitOne(ctx context.Context, body wire.TxnRequest) wire.TxnResult {
	var (
		sess *homeo.Session
		err  error
	)
	if body.Site != nil {
		sess, err = h.c.SessionAt(*body.Site)
		if err != nil {
			return wire.TxnResult{Class: body.Class, Args: body.Args,
				Error: &wire.Error{Code: "bad_request", Message: err.Error()}}
		}
	} else {
		sess = h.c.Session()
	}
	if body.TimeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(body.TimeoutMS)*time.Millisecond)
		defer cancel()
	}
	var res homeo.Result
	if body.Class == "" {
		res, err = sess.SubmitMix(ctx)
	} else {
		t := h.c.Class(body.Class)
		if t == nil {
			return wire.TxnResult{Class: body.Class, Args: body.Args,
				Error: &wire.Error{Code: "not_found", Message: fmt.Sprintf("class %q is not registered", body.Class)}}
		}
		if want := len(t.Params()); want != len(body.Args) {
			return wire.TxnResult{Class: body.Class, Args: body.Args,
				Error: &wire.Error{Code: "bad_request",
					Message: fmt.Sprintf("class %s expects %d args %v, got %d", body.Class, want, t.Params(), len(body.Args))}}
		}
		res, err = sess.Submit(ctx, t, body.Args...)
	}
	out := wire.TxnResult{
		Class:     res.Class,
		Args:      res.Args,
		Site:      res.Site,
		Committed: res.Committed,
		Synced:    res.Synced,
		LatencyMS: float64(res.Latency) / float64(time.Millisecond),
		Log:       res.Log,
	}
	if err != nil {
		if out.Class == "" {
			out.Class = body.Class
		}
		if out.Args == nil {
			out.Args = body.Args
		}
		out.Error = &wire.Error{Code: homeo.ErrorCode(err), Message: err.Error()}
	}
	return out
}

func (h *Handler) handleTxn(rw http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		writeError(rw, http.StatusMethodNotAllowed, "method_not_allowed", "%s: POST only", req.URL.Path)
		return
	}
	if h.draining.Load() || h.c.Draining() {
		writeError(rw, http.StatusServiceUnavailable, "draining", "server is draining")
		return
	}
	var body wire.TxnEnvelope
	if err := decodeBody(req, &body); err != nil {
		writeError(rw, http.StatusBadRequest, "bad_request", "request body: %v", err)
		return
	}

	if len(body.Batch) == 0 {
		res := h.submitOne(req.Context(), body.TxnRequest)
		switch {
		case res.Error == nil:
			writeJSON(rw, http.StatusOK, res)
		case res.Error.Code == "dropped":
			// Queue overflow backpressure: the transaction never started.
			writeError(rw, http.StatusTooManyRequests, "dropped", "%s", res.Error.Message)
		case res.Error.Code == "site_gone":
			// The addressed site was drained from the membership: 410 so
			// clients refresh their topology and fail over to a survivor.
			writeError(rw, http.StatusGone, "site_gone", "%s", res.Error.Message)
		case res.Error.Code == "bad_request", res.Error.Code == "not_found":
			status := http.StatusBadRequest
			if res.Error.Code == "not_found" {
				status = http.StatusNotFound
			}
			writeError(rw, status, res.Error.Code, "%s", res.Error.Message)
		default:
			// Executed but failed: abort vs timeout vs livelock is
			// distinguished in the body.
			writeJSON(rw, http.StatusOK, res)
		}
		return
	}

	// Batch: submit concurrently, respond in request order. Elements
	// refused by backpressure carry code "dropped"; a batch whose every
	// element was refused answers 429 overall.
	results := make([]wire.TxnResult, len(body.Batch))
	var wg sync.WaitGroup
	for i, one := range body.Batch {
		wg.Add(1)
		go func(i int, one wire.TxnRequest) {
			defer wg.Done()
			results[i] = h.submitOne(req.Context(), one)
		}(i, one)
	}
	wg.Wait()
	allDropped := true
	for _, r := range results {
		if r.Error == nil || r.Error.Code != "dropped" {
			allDropped = false
			break
		}
	}
	status := http.StatusOK
	if allDropped && len(results) > 0 {
		status = http.StatusTooManyRequests
		rw.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
	}
	writeJSON(rw, status, wire.TxnBatchResponse{Results: results})
}

func (h *Handler) handleStats(rw http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		writeError(rw, http.StatusMethodNotAllowed, "method_not_allowed", "%s: GET only", req.URL.Path)
		return
	}
	stream := req.URL.Query().Get("stream") != "" ||
		req.Header.Get("Accept") == "text/event-stream"
	if !stream {
		writeJSON(rw, http.StatusOK, wireStats(h.c.Stats()))
		return
	}
	flusher, ok := rw.(http.Flusher)
	if !ok {
		writeError(rw, http.StatusBadRequest, "bad_request", "streaming unsupported by this connection")
		return
	}
	interval := time.Second
	if v := req.URL.Query().Get("interval_ms"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil || n < 100 {
			writeError(rw, http.StatusBadRequest, "bad_request", "interval_ms must be an integer >= 100")
			return
		}
		interval = time.Duration(n) * time.Millisecond
	}
	rw.Header().Set("Content-Type", "text/event-stream")
	rw.Header().Set("Cache-Control", "no-cache")
	rw.WriteHeader(http.StatusOK)
	send := func() bool {
		data, err := json.Marshal(wireStats(h.c.Stats()))
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(rw, "event: stats\ndata: %s\n\n", data); err != nil {
			return false
		}
		flusher.Flush()
		return true
	}
	if !send() {
		return
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-req.Context().Done():
			return
		case <-t.C:
			if !send() {
				return
			}
		}
	}
}
