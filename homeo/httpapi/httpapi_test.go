package httpapi_test

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/homeo"
	"repro/homeo/client"
	"repro/homeo/httpapi"
	"repro/homeo/wire"
	"repro/internal/micro"
)

const depositSrc = `
transaction Deposit(n) {
	v := read(acct);
	write(acct = v + n)
}`

func newServer(t *testing.T, opts homeo.Options) (*homeo.Cluster, *httpapi.Handler, *httptest.Server, *client.Client) {
	t.Helper()
	opts.Runtime = homeo.RuntimeLive
	if opts.RTT == 0 {
		opts.RTT = 2 * time.Millisecond
	}
	if opts.LocalExecTime == 0 {
		opts.LocalExecTime = 100 * time.Microsecond
	}
	if opts.Seed == 0 {
		opts.Seed = 4
	}
	c, err := homeo.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	h := httpapi.NewHandler(c)
	srv := httptest.NewServer(h)
	t.Cleanup(func() {
		srv.Close()
		c.Close()
	})
	cl := client.New(srv.URL, client.Options{Seed: 1})
	return c, h, srv, cl
}

// TestRegisterAndSubmitOverHTTP is the wire-protocol acceptance path: a
// class never seen at compile time registered over /v1/classes, driven
// under /v1/txn through the Go client, replay-checked.
func TestRegisterAndSubmitOverHTTP(t *testing.T) {
	c, _, _, cl := newServer(t, homeo.Options{EnableLog: true})
	ctx := context.Background()

	info, err := cl.RegisterClass(ctx, wire.ClassRequest{
		L:       depositSrc,
		Bounds:  map[string][2]int64{"n": {1, 5}},
		Initial: map[string]int64{"acct": 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	if info.Name != "Deposit" || len(info.Params) != 1 {
		t.Fatalf("info = %+v", info)
	}
	if len(info.Treaties) != 2 {
		t.Fatalf("treaties = %v", info.Treaties)
	}

	for i := 0; i < 10; i++ {
		res, err := cl.Submit(ctx, wire.TxnRequest{Class: "Deposit", Args: []int64{2}})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Committed || res.Error != nil {
			t.Fatalf("res = %+v", res)
		}
	}
	list, err := cl.ListClasses(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].Name != "Deposit" {
		t.Fatalf("list = %+v", list)
	}
	st, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Committed != 10 || st.Workload != "custom" {
		t.Fatalf("stats = %+v", st)
	}
	if err := c.CheckReplayEquivalence(); err != nil {
		t.Fatal(err)
	}
}

// TestSQLClassOverHTTP registers a SQL class with preloaded rows and
// checks SELECT results come back in the log.
func TestSQLClassOverHTTP(t *testing.T) {
	_, _, _, cl := newServer(t, homeo.Options{})
	ctx := context.Background()
	_, err := cl.RegisterClass(ctx, wire.ClassRequest{
		Name: "Restock",
		SQL: `
CREATE TABLE inv (item, qty) SIZE 4
UPDATE inv SET qty = qty + @d WHERE item = @k
SELECT SUM(qty) FROM inv WHERE item = @k`,
		Bounds: map[string][2]int64{"d": {1, 3}, "k": {1, 4}},
		Rows:   map[string][][]int64{"inv": {{1, 10}, {2, 20}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := cl.Submit(ctx, wire.TxnRequest{Class: "Restock", Args: []int64{3, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Log) != 1 || res.Log[0] != 13 {
		t.Fatalf("log = %v, want [13]", res.Log)
	}
}

// TestBatchSubmission: order preserved, per-element errors.
func TestBatchSubmission(t *testing.T) {
	_, _, _, cl := newServer(t, homeo.Options{})
	ctx := context.Background()
	if _, err := cl.RegisterClass(ctx, wire.ClassRequest{L: depositSrc, Initial: map[string]int64{"acct": 1}}); err != nil {
		t.Fatal(err)
	}
	results, err := cl.SubmitBatch(ctx, []wire.TxnRequest{
		{Class: "Deposit", Args: []int64{1}},
		{Class: "Missing"},
		{Class: "Deposit", Args: []int64{2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("results = %+v", results)
	}
	if !results[0].Committed || !results[2].Committed {
		t.Fatalf("commits: %+v", results)
	}
	if results[1].Error == nil || results[1].Error.Code != "not_found" {
		t.Fatalf("missing class result: %+v", results[1])
	}
}

// TestMixDraw: a base-workload cluster serves class-less submissions.
func TestMixDraw(t *testing.T) {
	w, err := micro.New(micro.Config{Items: 20, Refill: 100, NSites: 2})
	if err != nil {
		t.Fatal(err)
	}
	_, _, _, cl := newServer(t, homeo.Options{Workload: w})
	site := 1
	res, err := cl.Submit(context.Background(), wire.TxnRequest{Site: &site})
	if err != nil {
		t.Fatal(err)
	}
	if res.Class != "Order" || !res.Committed || res.Site != 1 {
		t.Fatalf("res = %+v", res)
	}
}

// TestMixDrawWithoutWorkload: a class-less submission against a cluster
// with no base workload and no classes is a structured error, not a
// handler panic.
func TestMixDrawWithoutWorkload(t *testing.T) {
	_, _, _, cl := newServer(t, homeo.Options{})
	res, err := cl.Submit(context.Background(), wire.TxnRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed || res.Error == nil || res.Error.Code != "aborted" {
		t.Fatalf("res = %+v", res)
	}
}

// TestStatusCodes walks the structured-error matrix.
func TestStatusCodes(t *testing.T) {
	_, _, srv, cl := newServer(t, homeo.Options{})
	ctx := context.Background()
	if _, err := cl.RegisterClass(ctx, wire.ClassRequest{L: depositSrc}); err != nil {
		t.Fatal(err)
	}

	get := func(method, path, body string) (int, wire.ErrorResponse) {
		var req *http.Request
		var err error
		if body == "" {
			req, err = http.NewRequest(method, srv.URL+path, nil)
		} else {
			req, err = http.NewRequest(method, srv.URL+path, strings.NewReader(body))
		}
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var envelope wire.ErrorResponse
		json.NewDecoder(resp.Body).Decode(&envelope)
		return resp.StatusCode, envelope
	}

	cases := []struct {
		method, path, body string
		status             int
		code               string
	}{
		{"GET", "/v1/txn", "", 405, "method_not_allowed"},
		{"POST", "/v1/stats", "", 405, "method_not_allowed"},
		{"DELETE", "/v1/classes", "", 405, "method_not_allowed"},
		{"POST", "/v1/txn", "{bad json", 400, "bad_request"},
		{"POST", "/v1/txn", `{"class":"Nope"}`, 404, "not_found"},
		{"POST", "/v1/txn", `{"class":"Deposit","args":[1,2]}`, 400, "bad_request"},
		{"POST", "/v1/txn", `{"site":9}`, 400, "bad_request"},
		{"POST", "/v1/classes", `{"l":"` + `transaction Deposit(n) { v := read(acct); write(acct = v + n) }` + `"}`, 409, "conflict"},
		{"POST", "/v1/classes", `{"l":"transaction Bad( {"}`, 400, "bad_request"},
		{"POST", "/txn", "{}", 410, "gone"},
		{"GET", "/stats", "", 410, "gone"},
	}
	for _, tc := range cases {
		status, envelope := get(tc.method, tc.path, tc.body)
		if status != tc.status || envelope.Error.Code != tc.code {
			t.Errorf("%s %s %q: got %d/%q, want %d/%q",
				tc.method, tc.path, tc.body, status, envelope.Error.Code, tc.status, tc.code)
		}
	}
}

// TestBackpressure429: queue overflow answers 429 with code "dropped" and
// the client's retry budget surfaces it as a retryable APIError.
func TestBackpressure429(t *testing.T) {
	_, _, srv, _ := newServer(t, homeo.Options{
		MaxInflight:   1,
		LocalExecTime: 2 * time.Second,
	})
	ctx := context.Background()
	noRetry := client.New(srv.URL, client.Options{MaxAttempts: 1, Seed: 1})
	if _, err := noRetry.RegisterClass(ctx, wire.ClassRequest{L: depositSrc}); err != nil {
		t.Fatal(err)
	}
	// Occupy the single slot with a slow transaction.
	go noRetry.Submit(ctx, wire.TxnRequest{Class: "Deposit", Args: []int64{1}})
	time.Sleep(300 * time.Millisecond)

	_, err := noRetry.Submit(ctx, wire.TxnRequest{Class: "Deposit", Args: []int64{1}})
	var ae *client.APIError
	if !errors.As(err, &ae) {
		t.Fatalf("err = %v, want APIError", err)
	}
	if ae.Status != http.StatusTooManyRequests || ae.Code != "dropped" || !ae.Retryable() {
		t.Fatalf("APIError = %+v", ae)
	}
}

// TestDraining503: after Drain, mutation endpoints refuse with 503 while
// stats and health stay readable.
func TestDraining503(t *testing.T) {
	_, h, srv, cl := newServer(t, homeo.Options{})
	ctx := context.Background()
	if _, err := cl.RegisterClass(ctx, wire.ClassRequest{L: depositSrc}); err != nil {
		t.Fatal(err)
	}
	h.Drain()
	noRetry := client.New(srv.URL, client.Options{MaxAttempts: 1, Seed: 1})
	_, err := noRetry.Submit(ctx, wire.TxnRequest{Class: "Deposit", Args: []int64{1}})
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusServiceUnavailable || ae.Code != "draining" {
		t.Fatalf("submit err = %v", err)
	}
	if _, err := noRetry.RegisterClass(ctx, wire.ClassRequest{L: "transaction X() { write(x = 1) }"}); err == nil {
		t.Fatal("register accepted while draining")
	}
	if _, err := cl.Stats(ctx); err != nil {
		t.Fatalf("stats unavailable while draining: %v", err)
	}
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var health map[string]string
	json.NewDecoder(resp.Body).Decode(&health)
	if health["status"] != "draining" {
		t.Fatalf("health = %v", health)
	}
}

// TestTimeoutInBody: a server-side per-call timeout is reported in the
// response body with code "timeout" (HTTP 200 — the submission executed).
func TestTimeoutInBody(t *testing.T) {
	_, _, _, cl := newServer(t, homeo.Options{LocalExecTime: 500 * time.Millisecond})
	ctx := context.Background()
	if _, err := cl.RegisterClass(ctx, wire.ClassRequest{L: depositSrc}); err != nil {
		t.Fatal(err)
	}
	res, err := cl.Submit(ctx, wire.TxnRequest{Class: "Deposit", Args: []int64{1}, TimeoutMS: 20})
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed || res.Error == nil || res.Error.Code != "timeout" {
		t.Fatalf("res = %+v", res)
	}
}

// TestSSEStream: the stats stream delivers growing snapshots.
func TestSSEStream(t *testing.T) {
	_, _, _, cl := newServer(t, homeo.Options{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ch, err := cl.StreamStats(ctx, 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	var got int
	for st := range ch {
		if st.Sites != 2 {
			t.Fatalf("sites = %d", st.Sites)
		}
		got++
		if got == 3 {
			cancel()
			break
		}
	}
	if got < 3 {
		t.Fatalf("got %d snapshots", got)
	}
}

// TestTopologyEndpointsOverHTTP drives the elastic-topology surface over
// the wire: the membership view, a drain (fence + absorb + epoch bump),
// the site_gone refusal for submissions pinned to the drained slot, and
// unit migration with its error matrix.
func TestTopologyEndpointsOverHTTP(t *testing.T) {
	_, _, srv, cl := newServer(t, homeo.Options{EnableLog: true})
	ctx := context.Background()
	if _, err := cl.RegisterClass(ctx, wire.ClassRequest{
		L:       depositSrc,
		Bounds:  map[string][2]int64{"n": {1, 5}},
		Initial: map[string]int64{"acct": 40},
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, err := cl.Submit(ctx, wire.TxnRequest{Class: "Deposit", Args: []int64{1}}); err != nil {
			t.Fatal(err)
		}
	}

	topo, err := cl.Topology(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if topo.Epoch != 0 || topo.Sites != 2 || topo.ActiveSites != 2 || topo.SelfSite != -1 {
		t.Fatalf("fresh topology = %+v", topo)
	}
	for k, s := range topo.SiteStatus {
		if s != "active" {
			t.Fatalf("site %d status = %q before any membership change", k, s)
		}
	}

	ack, err := cl.DrainSite(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ack.Sites != 2 || ack.ActiveSites != 1 || ack.Epoch == 0 {
		t.Fatalf("drain ack = %+v", ack)
	}
	topo, err = cl.Topology(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if topo.Epoch != ack.Epoch || topo.ActiveSites != 1 || topo.SiteStatus[1] != "gone" {
		t.Fatalf("post-drain topology = %+v", topo)
	}

	// A submission pinned to the drained slot refuses with HTTP 410 and
	// the structured site_gone code (the pool's failover cue).
	noRetry := client.New(srv.URL, client.Options{MaxAttempts: 1, Seed: 1})
	gone := 1
	_, err = noRetry.Submit(ctx, wire.TxnRequest{Class: "Deposit", Args: []int64{1}, Site: &gone})
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusGone || ae.Code != "site_gone" {
		t.Fatalf("pinned submit to drained site: %v, want 410 site_gone", err)
	}
	// Unpinned submissions route around the drained slot and keep
	// committing.
	res, err := cl.Submit(ctx, wire.TxnRequest{Class: "Deposit", Args: []int64{1}})
	if err != nil || !res.Committed || res.Site != 0 {
		t.Fatalf("post-drain submit = (%+v, %v)", res, err)
	}
	// Draining an already-gone slot is a conflict, not a crash.
	if _, err := cl.DrainSite(ctx, 1); homeoCode(err) != "conflict" {
		t.Fatalf("double drain: %v, want conflict", err)
	}

	// Migration: an explicit active target succeeds and reports the
	// (unchanged) membership...
	mack, err := cl.MigrateUnit(ctx, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if mack.Epoch != ack.Epoch || mack.ActiveSites != 1 {
		t.Fatalf("migrate ack = %+v (migration must not move the epoch)", mack)
	}
	// ...a drained target is a conflict, and to = -1 without demand
	// tracking (AllocDefault records none) is a conflict naming the gap.
	if _, err := cl.MigrateUnit(ctx, 0, 1); homeoCode(err) != "conflict" {
		t.Fatalf("migrate to drained site: %v, want conflict", err)
	}
	if _, err := cl.MigrateUnit(ctx, 0, -1); homeoCode(err) != "conflict" {
		t.Fatalf("demand-driven migrate with no demand: %v, want conflict", err)
	}

	// Stats carry the same topology fields the pool refreshes from.
	st, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.TopologyEpoch != ack.Epoch || st.ActiveSites != 1 || len(st.SiteStatus) != 2 || st.SiteStatus[1] != "gone" {
		t.Fatalf("stats topology fields = epoch %d active %d status %v",
			st.TopologyEpoch, st.ActiveSites, st.SiteStatus)
	}
}

// homeoCode extracts the structured code from a client APIError ("" for
// nil or non-API errors).
func homeoCode(err error) string {
	var ae *client.APIError
	if errors.As(err, &ae) {
		return ae.Code
	}
	return ""
}

// TestClientRetriesWithBackoff: 429s are retried with jittered backoff
// until the server yields.
func TestClientRetriesWithBackoff(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, req *http.Request) {
		if calls.Add(1) <= 2 {
			rw.Header().Set("Content-Type", "application/json")
			rw.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(rw).Encode(wire.ErrorResponse{Error: wire.Error{Code: "dropped", Message: "full"}})
			return
		}
		json.NewEncoder(rw).Encode(wire.TxnResult{Class: "X", Committed: true})
	}))
	defer srv.Close()
	cl := client.New(srv.URL, client.Options{MaxAttempts: 4, RetryBase: time.Millisecond, Seed: 1})
	res, err := cl.Submit(context.Background(), wire.TxnRequest{Class: "X"})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Committed || calls.Load() != 3 {
		t.Fatalf("res = %+v after %d calls", res, calls.Load())
	}

	// A non-retryable failure is returned immediately.
	calls.Store(100)
	srv2 := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, req *http.Request) {
		calls.Add(1)
		rw.WriteHeader(http.StatusBadRequest)
		json.NewEncoder(rw).Encode(wire.ErrorResponse{Error: wire.Error{Code: "bad_request", Message: "no"}})
	}))
	defer srv2.Close()
	cl2 := client.New(srv2.URL, client.Options{MaxAttempts: 4, RetryBase: time.Millisecond, Seed: 1})
	start := calls.Load()
	if _, err := cl2.Submit(context.Background(), wire.TxnRequest{Class: "X"}); err == nil {
		t.Fatal("bad_request not surfaced")
	}
	if calls.Load()-start != 1 {
		t.Fatalf("bad_request retried %d times", calls.Load()-start)
	}
}

// TestRetryAfterHeader: 429 and 503 responses carry a Retry-After hint
// and the client surfaces it on the APIError.
func TestRetryAfterHeader(t *testing.T) {
	_, h, srv, cl := newServer(t, homeo.Options{})
	ctx := context.Background()
	if _, err := cl.RegisterClass(ctx, wire.ClassRequest{L: depositSrc}); err != nil {
		t.Fatal(err)
	}
	h.Drain()
	resp, err := http.Post(srv.URL+"/v1/txn", "application/json",
		strings.NewReader(`{"class":"Deposit","args":[1]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Fatalf("Retry-After = %q, want \"1\"", ra)
	}
	noRetry := client.New(srv.URL, client.Options{MaxAttempts: 1, Seed: 1})
	_, err = noRetry.Submit(ctx, wire.TxnRequest{Class: "Deposit", Args: []int64{1}})
	var ae *client.APIError
	if !errors.As(err, &ae) {
		t.Fatalf("err = %v, want APIError", err)
	}
	if ae.RetryAfter != time.Second {
		t.Fatalf("APIError.RetryAfter = %v, want 1s", ae.RetryAfter)
	}
}

// TestClientHonorsRetryAfter: the server's Retry-After hint replaces the
// computed backoff between retries.
func TestClientHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int64
	var gaps []time.Duration
	var last time.Time
	srv := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, req *http.Request) {
		now := time.Now()
		if !last.IsZero() {
			gaps = append(gaps, now.Sub(last))
		}
		last = now
		if calls.Add(1) <= 2 {
			rw.Header().Set("Retry-After", "1")
			rw.Header().Set("Content-Type", "application/json")
			rw.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(rw).Encode(wire.ErrorResponse{Error: wire.Error{Code: "dropped", Message: "full"}})
			return
		}
		json.NewEncoder(rw).Encode(wire.TxnResult{Class: "X", Committed: true})
	}))
	defer srv.Close()
	// RetryBase 1ms would normally retry almost immediately; the 1s
	// Retry-After must dominate.
	cl := client.New(srv.URL, client.Options{MaxAttempts: 4, RetryBase: time.Millisecond, Seed: 1})
	start := time.Now()
	res, err := cl.Submit(context.Background(), wire.TxnRequest{Class: "X"})
	if err != nil || !res.Committed {
		t.Fatalf("res=%+v err=%v", res, err)
	}
	if elapsed := time.Since(start); elapsed < 2*time.Second {
		t.Fatalf("two hinted retries finished in %v, want >= 2s (Retry-After ignored?)", elapsed)
	}
	for _, g := range gaps {
		if g < time.Second {
			t.Fatalf("retry gap %v < hinted 1s", g)
		}
	}
}

// TestBatchClassRegistration: the POST /v1/classes batch form registers
// several classes atomically and reports the cache counters in stats.
func TestBatchClassRegistration(t *testing.T) {
	_, _, _, cl := newServer(t, homeo.Options{})
	ctx := context.Background()

	specs := make([]wire.ClassRequest, 4)
	for i := range specs {
		specs[i] = wire.ClassRequest{
			L: strings.ReplaceAll(`transaction WdIDX(n) {
				v := read(itemIDX);
				if (v - n > 0) then write(itemIDX = v - n) else skip
			}`, "IDX", string(rune('0'+i))),
			Bounds:  map[string][2]int64{"n": {1, 5}},
			Initial: map[string]int64{"item" + string(rune('0'+i)): 500},
		}
	}
	infos, err := cl.RegisterClassBatch(ctx, specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 4 {
		t.Fatalf("registered %d classes, want 4", len(infos))
	}
	for i, info := range infos {
		if want := "Wd" + string(rune('0'+i)); info.Name != want {
			t.Fatalf("class %d named %q, want %q", i, info.Name, want)
		}
	}
	res, err := cl.Submit(ctx, wire.TxnRequest{Class: "Wd2", Args: []int64{3}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Committed {
		t.Fatalf("submit through batch-registered class: %+v", res)
	}
	st, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Four isomorphic classes: one scratch analysis, three cache hits.
	if st.AnalysisCacheMisses != 1 || st.AnalysisCacheHits != 3 {
		t.Fatalf("analysis cache hits=%d misses=%d, want 3/1",
			st.AnalysisCacheHits, st.AnalysisCacheMisses)
	}

	// A batch with one broken class registers nothing.
	bad := []wire.ClassRequest{
		{L: depositSrc, Initial: map[string]int64{"acct": 10}},
		{L: "transaction Broken(n) { v := read("},
	}
	if _, err := cl.RegisterClassBatch(ctx, bad); err == nil {
		t.Fatal("broken batch registered")
	}
	classes, err := cl.ListClasses(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(classes) != 4 {
		t.Fatalf("classes after failed batch = %d, want the original 4", len(classes))
	}
}
