package homeo_test

import (
	"testing"

	"repro/homeo"
)

// BenchmarkUnitMigration measures the cost of re-homing one treaty unit:
// each iteration is a full migration round — freeze the unit under a
// round grant, fold its cut, install the fold at every site, repair and
// distribute the treaty configuration. The ns/op is the unit's pause
// window (it serves no commits between freeze and release), so it bounds
// the worst-case submission stall a migration can inject. Run serially;
// numbers in BENCH_elastic.json are from a 1-core container.
func BenchmarkUnitMigration(b *testing.B) {
	c, _ := benchCluster(b, homeo.RuntimeSim)
	// One warm-up migration so pools and the treaty solver cache are hot.
	if err := c.MigrateUnit(0, 1); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.MigrateUnit(0, i%2); err != nil {
			b.Fatal(err)
		}
	}
}
