package homeo

import (
	"fmt"
	"sort"

	"repro/internal/lang"
	"repro/internal/sqlfront"
	"repro/internal/treaty"
	"repro/internal/workload"
)

// ClassSpec describes a transaction class to register. Exactly one of L
// or SQL must be set.
type ClassSpec struct {
	// Name identifies the class. Optional for L classes (defaults to the
	// transaction's declared name, which must match when both are set);
	// required for SQL classes.
	Name string
	// L is L/L++ source containing exactly one transaction.
	L string
	// SQL is a sqlfront script: CREATE TABLE statements followed by DML,
	// compiled into one transaction (parameters are the @names).
	SQL string
	// Bounds declares inclusive parameter ranges. Parameters that reach
	// branch guards need bounds for the analysis to derive a real treaty;
	// without them the class still runs correctly but synchronizes on
	// every write (pin treaties).
	Bounds map[string][2]int64
	// Initial gives starting logical values for objects the class touches
	// (L classes; absent objects start at zero).
	Initial map[string]int64
	// Rows preloads relational rows for SQL classes, keyed by table name;
	// each row lists the column values in declaration order (the key
	// column must be nonzero — zero marks free slots).
	Rows map[string][][]int64
}

// TxnClass is a registered transaction class: the handle submissions
// name. Its treaties were generated online at registration and are
// renegotiated by the protocol's cleanup phase like any built-in unit.
type TxnClass struct {
	c  *Cluster
	wc *workload.Class
}

// Register compiles, analyzes, and installs a transaction class on the
// running cluster: parse (L or SQL), lower, replica-rewrite, build the
// symbolic table, derive the unit treaty from the current consolidated
// state, and install initial values at every site. The registration is
// atomic with respect to in-flight transactions.
//
// Classes whose guards resist analysis (unbounded parameters, oversized
// tables) are still accepted: they degrade to pin treaties, meaning every
// write synchronizes — always correct, just not coordination-free. Check
// TxnClass.Pinned.
func (c *Cluster) Register(spec ClassSpec) (*TxnClass, error) {
	ts, err := c.RegisterBatch([]ClassSpec{spec})
	if err != nil {
		return nil, err
	}
	return ts[0], nil
}

// RegisterBatch registers several classes as one atomic installation:
// every class compiles (sharing analysis artifacts with already-cached
// isomorphic families and with each other), then all of them install
// under a single execution-right critical section — one registry pass,
// one unit-installation sweep — instead of paying the per-registration
// setup once per class. Either every class registers or none does.
func (c *Cluster) RegisterBatch(specs []ClassSpec) ([]*TxnClass, error) {
	if c.Draining() {
		return nil, fmt.Errorf("%w: cluster is draining", ErrDropped)
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("homeo: RegisterBatch needs at least one class")
	}
	// Compile and validate everything outside the lock; cache hits and
	// misses are recorded under it, next to the installation.
	wcs := make([]*workload.Class, len(specs))
	hits := make([]bool, len(specs))
	initials := make([]lang.Database, len(specs))
	merged := lang.Database{}
	for i, spec := range specs {
		if (spec.L == "") == (spec.SQL == "") {
			return nil, fmt.Errorf("homeo: ClassSpec needs exactly one of L or SQL source")
		}
		var bounds treaty.ParamBounds
		if len(spec.Bounds) > 0 {
			bounds = make(treaty.ParamBounds, len(spec.Bounds))
			for p, b := range spec.Bounds {
				bounds[p] = b
			}
		}
		var (
			wc  *workload.Class
			hit bool
			err error
		)
		if spec.L != "" {
			wc, hit, err = c.artifacts.CompileL(spec.L, c.opts.Sites, bounds)
			if err == nil && spec.Name != "" && spec.Name != wc.Name {
				err = fmt.Errorf("homeo: spec name %q does not match transaction name %q", spec.Name, wc.Name)
			}
		} else {
			wc, hit, err = c.artifacts.CompileSQL(spec.Name, spec.SQL, c.opts.Sites, bounds)
		}
		if err != nil {
			return nil, err
		}
		initial, err := buildInitial(wc, spec)
		if err != nil {
			return nil, err
		}
		wcs[i], hits[i], initials[i] = wc, hit, initial
		for obj, v := range initial {
			merged[obj] = v
		}
	}

	// Installation mutates shared protocol state: registry bookkeeping,
	// per-site stores, and the new units' treaties. Run it under the
	// execution right so it is atomic for in-flight transactions. c.mu
	// additionally serializes concurrent registrations on RuntimeLive
	// (locked() uses c.mu itself on RuntimeSim).
	if c.live != nil {
		c.mu.Lock()
		defer c.mu.Unlock()
	}
	var regErr error
	c.locked(func() {
		registered := 0
		for i, wc := range wcs {
			if regErr = c.reg.Register(wc, initials[i]); regErr != nil {
				break
			}
			registered++
		}
		if regErr == nil {
			// One sweep installs every new unit's initial values and
			// treaties (AddUnits covers all units the registry gained).
			regErr = c.sys.AddUnits(merged)
		}
		if regErr != nil {
			// Roll the classes back out (reverse order: Unregister pops the
			// most recent) so the registry and the system's unit table stay
			// aligned.
			for i := registered - 1; i >= 0; i-- {
				if uerr := c.reg.Unregister(wcs[i]); uerr != nil {
					regErr = fmt.Errorf("%w (rollback failed: %v)", regErr, uerr)
					break
				}
			}
			return
		}
		for _, hit := range hits {
			c.sys.Col.RecordAnalysisCache(hit)
		}
	})
	if regErr != nil {
		return nil, regErr
	}
	ts := make([]*TxnClass, len(wcs))
	for i, wc := range wcs {
		ts[i] = &TxnClass{c: c, wc: wc}
	}
	if c.live != nil {
		// classes map writes race with Class() readers only on live.
		for _, t := range ts {
			c.classes[t.wc.Name] = t
		}
	} else {
		c.mu.Lock()
		for _, t := range ts {
			c.classes[t.wc.Name] = t
		}
		c.mu.Unlock()
	}
	return ts, nil
}

// buildInitial assembles the install database from Initial values and SQL
// Rows.
func buildInitial(wc *workload.Class, spec ClassSpec) (lang.Database, error) {
	initial := lang.Database{}
	for obj, v := range spec.Initial {
		initial[lang.ObjID(obj)] = v
	}
	if len(spec.Rows) > 0 && wc.Schema == nil {
		return nil, fmt.Errorf("homeo: Rows given for non-SQL class %s", wc.Name)
	}
	for table, rows := range spec.Rows {
		tbl := wc.Schema[table]
		if tbl == nil {
			return nil, fmt.Errorf("homeo: class %s has no table %q", wc.Name, table)
		}
		if int64(len(rows)) > tbl.Size {
			return nil, fmt.Errorf("homeo: table %q holds %d rows, got %d", table, tbl.Size, len(rows))
		}
		for slot, row := range rows {
			if len(row) > 0 && row[0] == 0 {
				return nil, fmt.Errorf("homeo: table %q row %d: key column must be nonzero (zero marks free slots)", table, slot)
			}
			if err := sqlfront.LoadRow(initial, tbl, int64(slot), row...); err != nil {
				return nil, err
			}
		}
	}
	return initial, nil
}

// Class returns a registered class by name (nil when absent).
func (c *Cluster) Class(name string) *TxnClass {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.classes[name]
}

// Classes lists the registered class names, sorted.
func (c *Cluster) Classes() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	names := make([]string, 0, len(c.classes))
	for name := range c.classes {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Name returns the class name.
func (t *TxnClass) Name() string { return t.wc.Name }

// Params returns the class's parameter names in declaration order.
func (t *TxnClass) Params() []string { return append([]string(nil), t.wc.Params...) }

// Objects returns the class's full object footprint (sorted), which is
// exactly the object set of its treaty unit.
func (t *TxnClass) Objects() []string {
	objs := t.wc.Footprint()
	out := make([]string, len(objs))
	for i, o := range objs {
		out[i] = string(o)
	}
	return out
}

// Pinned reports whether the class fell back to pin treaties
// (synchronize on every write), and why.
func (t *TxnClass) Pinned() (bool, string) { return t.wc.Pinned() }

// SymbolicTable renders the class's symbolic table (Section 2), empty
// when analysis was skipped.
func (t *TxnClass) SymbolicTable() string { return t.wc.TableString() }

// Treaties renders the class unit's current per-site local treaties.
// They change whenever the cleanup phase renegotiates.
func (t *TxnClass) Treaties() []string {
	var out []string
	t.c.locked(func() {
		for _, l := range t.c.sys.UnitLocals(t.wc.Unit()) {
			out = append(out, l.String())
		}
	})
	return out
}
