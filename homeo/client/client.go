// Package client is the Go client for the /v1 wire protocol served by
// homeo/httpapi (cmd/homeostasis-serve). It pools connections, retries
// retryable failures (HTTP 429/503 and transport errors) with jittered
// exponential backoff, and decodes the structured error envelope into
// *APIError values. The serving binary's -drive closed loop is built on
// it, so external users and the load driver share one code path.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/homeo/wire"
)

// APIError is a non-2xx response's structured error.
type APIError struct {
	// Status is the HTTP status code.
	Status int
	// Code is the stable error code (wire.Error.Code).
	Code string
	// Message is human-readable detail.
	Message string
	// RetryAfter is the server's Retry-After hint on 429/503 responses
	// (zero when absent). The client waits this long before retrying,
	// instead of its computed backoff.
	RetryAfter time.Duration
}

// Error renders the HTTP status and the server-reported message.
func (e *APIError) Error() string {
	return fmt.Sprintf("homeo api: %d %s: %s", e.Status, e.Code, e.Message)
}

// Retryable reports whether the request can safely be retried: the
// server refused it before execution (backpressure or draining).
func (e *APIError) Retryable() bool {
	return e.Status == http.StatusTooManyRequests || e.Status == http.StatusServiceUnavailable
}

// Options tunes the client.
type Options struct {
	// HTTPClient overrides the pooled default.
	HTTPClient *http.Client
	// MaxAttempts bounds tries per call including the first (default 4;
	// 1 disables retries).
	MaxAttempts int
	// RetryBase is the first backoff delay (default 25ms); successive
	// delays double, each jittered uniformly over [0.5x, 1.5x].
	RetryBase time.Duration
	// MaxDelay caps every backoff delay, jitter included (default 2s).
	// Without a cap the doubling overflows time.Duration once the
	// attempt count shifts RetryBase past 63 bits.
	MaxDelay time.Duration
	// PeerToken, when set, is sent as the X-Homeo-Peer-Token header on
	// every request; the /v1/peer/* introspection endpoints of a
	// token-protected multi-process cluster require it.
	PeerToken string
	// Seed seeds the jitter stream (0 uses a time-derived seed).
	Seed int64
}

// Client talks /v1 to one server.
type Client struct {
	base string
	hc   *http.Client
	opts Options

	mu  sync.Mutex
	rng *rand.Rand
}

// wallClock is the package's sole sanctioned wall-clock source (jitter
// seeding only; nothing protocol-visible derives from it).
var wallClock = time.Now //homeo:wallclock sole clock construction site

// New returns a client for the server at baseURL (e.g.
// "http://localhost:8080").
func New(baseURL string, opts Options) *Client {
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = 4
	}
	if opts.RetryBase <= 0 {
		opts.RetryBase = 25 * time.Millisecond
	}
	if opts.MaxDelay <= 0 {
		opts.MaxDelay = 2 * time.Second
	}
	seed := opts.Seed
	if seed == 0 {
		seed = wallClock().UnixNano()
	}
	hc := opts.HTTPClient
	if hc == nil {
		// A pooled transport sized for closed-loop drivers: many
		// concurrent clients against one host.
		hc = &http.Client{Transport: &http.Transport{
			MaxIdleConns:        256,
			MaxIdleConnsPerHost: 256,
			IdleConnTimeout:     90 * time.Second,
		}}
	}
	return &Client{
		base: strings.TrimSuffix(baseURL, "/"),
		hc:   hc,
		opts: opts,
		rng:  rand.New(rand.NewSource(seed)),
	}
}

// backoff returns the jittered delay before attempt n (0-based), capped
// at MaxDelay. The shift is overflow-guarded: past the cap (or past the
// representable range) the delay saturates instead of wrapping negative.
func (c *Client) backoff(n int) time.Duration {
	d := c.opts.MaxDelay
	if n < 62 {
		if shifted := c.opts.RetryBase << n; shifted > 0 && shifted < d {
			d = shifted
		}
	}
	c.mu.Lock()
	f := 0.5 + c.rng.Float64()
	c.mu.Unlock()
	if d = time.Duration(float64(d) * f); d > c.opts.MaxDelay {
		d = c.opts.MaxDelay
	}
	return d
}

// do performs one JSON round trip with retries. A nil out discards the
// response body.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var payload []byte
	if in != nil {
		var err error
		payload, err = json.Marshal(in)
		if err != nil {
			return err
		}
	}
	var lastErr error
	for attempt := 0; attempt < c.opts.MaxAttempts; attempt++ {
		if attempt > 0 {
			// The server's Retry-After hint wins over computed backoff
			// (parseRetryAfter bounds it so a bogus header cannot stall).
			delay := c.backoff(attempt - 1)
			var ae *APIError
			if errors.As(lastErr, &ae) && ae.RetryAfter > 0 {
				delay = ae.RetryAfter
			}
			select {
			case <-ctx.Done():
				return fmt.Errorf("homeo api: %w (last error: %v)", ctx.Err(), lastErr)
			case <-time.After(delay):
			}
		}
		var body io.Reader
		if payload != nil {
			body = bytes.NewReader(payload)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
		if err != nil {
			return err
		}
		if payload != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		if c.opts.PeerToken != "" {
			req.Header.Set("X-Homeo-Peer-Token", c.opts.PeerToken)
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			// Transport failure: retryable (the driver's workloads are
			// safe to resubmit; callers needing at-most-once set
			// MaxAttempts to 1).
			lastErr = err
			continue
		}
		apiErr := decodeResponse(resp, out)
		if apiErr == nil {
			return nil
		}
		lastErr = apiErr
		var ae *APIError
		if errors.As(apiErr, &ae) && ae.Retryable() {
			continue
		}
		return apiErr
	}
	return fmt.Errorf("homeo api: giving up after %d attempts: %w", c.opts.MaxAttempts, lastErr)
}

// decodeResponse decodes a 2xx body into out or a non-2xx body into an
// *APIError.
func decodeResponse(resp *http.Response, out any) error {
	defer resp.Body.Close()
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		if out == nil {
			_, _ = io.Copy(io.Discard, resp.Body)
			return nil
		}
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return fmt.Errorf("homeo api: decoding %d response: %w", resp.StatusCode, err)
		}
		return nil
	}
	var envelope wire.ErrorResponse
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
	apiErr := &APIError{Status: resp.StatusCode, RetryAfter: parseRetryAfter(resp)}
	if err := json.Unmarshal(data, &envelope); err != nil || envelope.Error.Code == "" {
		apiErr.Code = "internal"
		apiErr.Message = strings.TrimSpace(string(data))
		return apiErr
	}
	apiErr.Code = envelope.Error.Code
	apiErr.Message = envelope.Error.Message
	return apiErr
}

// parseRetryAfter reads a delay-seconds Retry-After header (the only form
// the server emits), capped at 30s so a bogus header cannot stall a
// caller.
func parseRetryAfter(resp *http.Response) time.Duration {
	v := resp.Header.Get("Retry-After")
	if v == "" {
		return 0
	}
	secs, err := strconv.ParseInt(v, 10, 64)
	if err != nil || secs < 0 {
		return 0
	}
	if secs > 30 {
		secs = 30
	}
	return time.Duration(secs) * time.Second
}

// Health checks /healthz.
func (c *Client) Health(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}

// RegisterClass registers a transaction class (POST /v1/classes): the
// server parses the L or SQL source, analyzes it, and generates treaties
// online.
func (c *Client) RegisterClass(ctx context.Context, spec wire.ClassRequest) (wire.ClassInfo, error) {
	var info wire.ClassInfo
	err := c.do(ctx, http.MethodPost, "/v1/classes", spec, &info)
	return info, err
}

// RegisterClassBatch registers several classes in one atomic request:
// every class installs or none does. One installation sweep covers the
// whole batch, so registering N classes costs far less than N single
// registrations.
func (c *Client) RegisterClassBatch(ctx context.Context, specs []wire.ClassRequest) ([]wire.ClassInfo, error) {
	var resp wire.ClassBatchResponse
	err := c.do(ctx, http.MethodPost, "/v1/classes", wire.ClassEnvelope{Batch: specs}, &resp)
	return resp.Classes, err
}

// ListClasses lists registered classes (GET /v1/classes).
func (c *Client) ListClasses(ctx context.Context) ([]wire.ClassInfo, error) {
	var resp wire.ClassListResponse
	err := c.do(ctx, http.MethodGet, "/v1/classes", nil, &resp)
	return resp.Classes, err
}

// Submit invokes one transaction (POST /v1/txn). A nil error means the
// server executed the submission; inspect res.Committed and res.Error for
// the transaction's own outcome (aborted/timeout/livelocked). Queue
// overflow (429) is retried with backoff and surfaces as *APIError when
// the budget runs out.
func (c *Client) Submit(ctx context.Context, req wire.TxnRequest) (wire.TxnResult, error) {
	var res wire.TxnResult
	err := c.do(ctx, http.MethodPost, "/v1/txn", wire.TxnEnvelope{TxnRequest: req}, &res)
	return res, err
}

// SubmitBatch invokes a batch (POST /v1/txn with batch). Results are in
// request order; per-element failures are reported in each result.
func (c *Client) SubmitBatch(ctx context.Context, reqs []wire.TxnRequest) ([]wire.TxnResult, error) {
	var resp wire.TxnBatchResponse
	err := c.do(ctx, http.MethodPost, "/v1/txn", wire.TxnEnvelope{Batch: reqs}, &resp)
	return resp.Results, err
}

// PeerLog fetches the server process's commit log (GET /v1/peer/log),
// for merged replay checks across a multi-process cluster.
func (c *Client) PeerLog(ctx context.Context) (wire.LogResponse, error) {
	var resp wire.LogResponse
	err := c.do(ctx, http.MethodGet, "/v1/peer/log", nil, &resp)
	return resp, err
}

// PeerDB fetches the server process's authoritative database partition
// (GET /v1/peer/db).
func (c *Client) PeerDB(ctx context.Context) (wire.PartitionResponse, error) {
	var resp wire.PartitionResponse
	err := c.do(ctx, http.MethodGet, "/v1/peer/db", nil, &resp)
	return resp, err
}

// Topology fetches the server process's membership view (GET
// /v1/topology): epoch, per-site status, and peer addresses.
func (c *Client) Topology(ctx context.Context) (wire.TopologyResponse, error) {
	var resp wire.TopologyResponse
	err := c.do(ctx, http.MethodGet, "/v1/topology", nil, &resp)
	return resp, err
}

// DrainSite asks the server process to drain the given site (POST
// /v1/topology/drain) — on a multi-process cluster, its own site. The
// call returns when the drain completes (deltas absorbed, membership
// broadcast done).
func (c *Client) DrainSite(ctx context.Context, site int) (wire.TopologyAck, error) {
	var ack wire.TopologyAck
	err := c.do(ctx, http.MethodPost, "/v1/topology/drain", wire.DrainRequest{Site: site}, &ack)
	return ack, err
}

// MigrateUnit asks the server process to move one treaty unit's demand
// home (POST /v1/topology/migrate). to = -1 lets the adaptive
// allocator's burn vector pick the target.
func (c *Client) MigrateUnit(ctx context.Context, unit, to int) (wire.TopologyAck, error) {
	var ack wire.TopologyAck
	err := c.do(ctx, http.MethodPost, "/v1/topology/migrate", wire.MigrateRequest{Unit: unit, To: to}, &ack)
	return ack, err
}

// Stats fetches a snapshot (GET /v1/stats).
func (c *Client) Stats(ctx context.Context) (wire.Stats, error) {
	var st wire.Stats
	err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &st)
	return st, err
}

// StreamStats subscribes to the SSE stats stream (GET /v1/stats?stream=1)
// at the given interval, delivering snapshots until the context is
// cancelled or the stream ends (then the channel closes). The stream is
// not retried: callers resubscribe if they need to survive reconnects.
func (c *Client) StreamStats(ctx context.Context, interval time.Duration) (<-chan wire.Stats, error) {
	if interval < 100*time.Millisecond {
		interval = 100 * time.Millisecond
	}
	url := fmt.Sprintf("%s/v1/stats?stream=1&interval_ms=%d", c.base, interval.Milliseconds())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, decodeResponse(resp, nil)
	}
	ch := make(chan wire.Stats, 1)
	go func() {
		defer close(ch)
		defer resp.Body.Close()
		scanner := bufio.NewScanner(resp.Body)
		scanner.Buffer(make([]byte, 0, 64<<10), 1<<20)
		for scanner.Scan() {
			line := scanner.Text()
			if !strings.HasPrefix(line, "data: ") {
				continue
			}
			var st wire.Stats
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &st); err != nil {
				continue
			}
			select {
			case ch <- st:
			case <-ctx.Done():
				return
			}
		}
	}()
	return ch, nil
}
