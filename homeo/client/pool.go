package client

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"

	"repro/homeo/wire"
)

// Pool is a topology-aware client for an elastic multi-process cluster:
// it round-robins submissions across every active site, refreshes its
// site list whenever a server's stats report a newer membership epoch
// (joined sites start receiving traffic, drained sites stop), and fails
// a refused submission over to a surviving site instead of surfacing the
// refusal — a site_gone (410), draining (503), or transport error
// triggers a topology refresh and a retry elsewhere. Site-pinned
// requests (TxnRequest.Site set) are never failed over: the pin is the
// caller's placement decision.
type Pool struct {
	opts Options

	mu      sync.Mutex
	clients map[string]*Client // by base URL, created lazily, kept across refreshes
	bases   []string           // active site base URLs, in site order
	epoch   int64

	next atomic.Int64 // round-robin cursor
}

// NewPool returns a pool seeded with the given site base URLs (any
// subset of the cluster reachable at construction; the first refresh
// learns the rest). The same Options apply to every per-site client.
func NewPool(bases []string, opts Options) *Pool {
	p := &Pool{opts: opts, clients: map[string]*Client{}}
	for _, b := range bases {
		b = strings.TrimSuffix(b, "/")
		if b != "" {
			p.bases = append(p.bases, b)
		}
	}
	return p
}

// client returns (building if needed) the per-base client.
func (p *Pool) client(base string) *Client {
	p.mu.Lock()
	defer p.mu.Unlock()
	cl := p.clients[base]
	if cl == nil {
		cl = New(base, p.opts)
		p.clients[base] = cl
	}
	return cl
}

// Bases returns the current active site base URLs.
func (p *Pool) Bases() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]string(nil), p.bases...)
}

// Epoch returns the newest membership epoch the pool has observed.
func (p *Pool) Epoch() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.epoch
}

// pick returns the next base in round-robin order ("" when the pool has
// no live bases).
func (p *Pool) pick() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.bases) == 0 {
		return ""
	}
	return p.bases[int(p.next.Add(1)-1)%len(p.bases)]
}

// adopt installs a topology observation: if the epoch is newer than what
// the pool knows, the active site list is rebuilt from the reported
// addresses and statuses.
func (p *Pool) adopt(epoch int64, status, addrs []string) {
	if len(addrs) == 0 {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if epoch <= p.epoch {
		return
	}
	var bases []string
	for k, a := range addrs {
		if a == "" || k >= len(status) || status[k] != "active" {
			continue
		}
		bases = append(bases, strings.TrimSuffix(a, "/"))
	}
	if len(bases) == 0 {
		return
	}
	p.epoch, p.bases = epoch, bases
}

// drop removes a base from the active list until a refresh restores it
// (used after a transport failure, when no server could tell us the new
// topology).
func (p *Pool) drop(base string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i, b := range p.bases {
		if b == base {
			p.bases = append(p.bases[:i], p.bases[i+1:]...)
			return
		}
	}
}

// Refresh polls the pool's sites for their membership view and adopts
// the newest epoch found. Called automatically after a failover; callers
// can also invoke it on a timer. Returns the first error only if every
// site was unreachable.
func (p *Pool) Refresh(ctx context.Context) error {
	bases := p.Bases()
	if len(bases) == 0 {
		p.mu.Lock()
		for b := range p.clients {
			bases = append(bases, b)
		}
		p.mu.Unlock()
	}
	var firstErr error
	ok := false
	for _, b := range bases {
		st, err := p.client(b).Stats(ctx)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		ok = true
		p.adopt(st.TopologyEpoch, st.SiteStatus, st.SiteAddrs)
	}
	if !ok {
		return fmt.Errorf("client: topology refresh failed everywhere: %w", firstErr)
	}
	return nil
}

// failover classifies an error (or in-band result error) as a cue to
// retry the submission at another site: the addressed site is gone or
// draining, or the transport could not reach it.
func failover(err error, res *wire.TxnResult) bool {
	if res != nil && res.Error != nil && res.Error.Code == "site_gone" {
		return true
	}
	if err == nil {
		return false
	}
	var ae *APIError
	if errors.As(err, &ae) {
		return ae.Code == "site_gone" || ae.Code == "draining" ||
			ae.Status == http.StatusGone || ae.Status == http.StatusServiceUnavailable
	}
	return true // transport error: the site may be dead
}

// Submit invokes one transaction against the next active site, failing
// over to survivors on site_gone/draining refusals and transport errors
// (refreshing the topology in between). Site-pinned requests go straight
// to one submission with no failover.
func (p *Pool) Submit(ctx context.Context, req wire.TxnRequest) (wire.TxnResult, error) {
	if req.Site != nil {
		base := p.pick()
		if base == "" {
			return wire.TxnResult{}, fmt.Errorf("client: pool has no live sites")
		}
		return p.client(base).Submit(ctx, req)
	}
	var (
		lastRes wire.TxnResult
		lastErr error
	)
	tries := len(p.Bases()) + 1
	if tries < 2 {
		tries = 2
	}
	for attempt := 0; attempt < tries; attempt++ {
		if err := ctx.Err(); err != nil {
			return lastRes, err
		}
		base := p.pick()
		if base == "" {
			return lastRes, fmt.Errorf("client: pool has no live sites (last error: %v)", lastErr)
		}
		res, err := p.client(base).Submit(ctx, req)
		if !failover(err, &res) {
			return res, err
		}
		lastRes, lastErr = res, err
		// The site refused or vanished: drop it provisionally, learn the
		// new membership from the survivors, and go around.
		p.drop(base)
		if rerr := p.Refresh(ctx); rerr != nil && lastErr == nil {
			lastErr = rerr
		}
	}
	if lastErr == nil {
		return lastRes, nil
	}
	return lastRes, fmt.Errorf("client: submission failed at every site: %w", lastErr)
}

// Stats fetches a snapshot from the first reachable active site and
// adopts any newer topology it reports.
func (p *Pool) Stats(ctx context.Context) (wire.Stats, error) {
	var firstErr error
	for _, b := range p.Bases() {
		st, err := p.client(b).Stats(ctx)
		if err == nil {
			p.adopt(st.TopologyEpoch, st.SiteStatus, st.SiteAddrs)
			return st, nil
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	if firstErr == nil {
		firstErr = fmt.Errorf("client: pool has no live sites")
	}
	return wire.Stats{}, firstErr
}
