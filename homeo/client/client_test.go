package client_test

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/homeo/client"
	"repro/homeo/wire"
)

// TestBackoffCapped pins the MaxDelay clamp: with a large attempt budget
// the uncapped doubling (RetryBase << n) overflows time.Duration around
// attempt 63 and turns the backoff negative — i.e. into a hot retry
// loop. With the cap every delay is bounded by MaxDelay and floored by
// the jitter's 0.5x factor, so the retries neither spin nor stall.
func TestBackoffCapped(t *testing.T) {
	var mu sync.Mutex
	var times []time.Time
	srv := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, req *http.Request) {
		mu.Lock()
		times = append(times, time.Now())
		mu.Unlock()
		rw.Header().Set("Content-Type", "application/json")
		rw.WriteHeader(http.StatusTooManyRequests)
		json.NewEncoder(rw).Encode(wire.ErrorResponse{Error: wire.Error{Code: "dropped", Message: "full"}})
	}))
	defer srv.Close()

	const attempts = 70 // far past the 63-bit shift horizon
	cl := client.New(srv.URL, client.Options{
		MaxAttempts: attempts,
		RetryBase:   time.Millisecond,
		MaxDelay:    5 * time.Millisecond,
		Seed:        1,
	})
	start := time.Now()
	_, err := cl.Submit(context.Background(), wire.TxnRequest{Class: "X"})
	elapsed := time.Since(start)
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusTooManyRequests {
		t.Fatalf("err = %v, want exhausted 429", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(times) != attempts {
		t.Fatalf("server saw %d attempts, want %d", len(times), attempts)
	}
	// Every gap from attempt 4 on is past the doubling horizon for a 1ms
	// base and must sit in [0.5*MaxDelay, MaxDelay] plus scheduling
	// slack; an overflow-to-negative backoff would collapse gaps to
	// microseconds.
	for i := 4; i < len(times); i++ {
		if gap := times[i].Sub(times[i-1]); gap < 2*time.Millisecond {
			t.Fatalf("gap %d = %v, want >= 2ms (backoff collapsed)", i, gap)
		}
	}
	if elapsed > 10*time.Second {
		t.Fatalf("70 capped retries took %v, want well under 10s", elapsed)
	}
}

// topoStub builds a fake site: txn answers with the given handler, stats
// reports the supplied topology (the pool's refresh source).
func topoStub(t *testing.T, txn http.HandlerFunc, stats func() wire.Stats) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, req *http.Request) {
		switch req.URL.Path {
		case "/v1/txn":
			txn(rw, req)
		case "/v1/stats":
			json.NewEncoder(rw).Encode(stats())
		default:
			http.NotFound(rw, req)
		}
	}))
	t.Cleanup(srv.Close)
	return srv
}

// gone410 answers every submission with the drained-site refusal.
func gone410(rw http.ResponseWriter, _ *http.Request) {
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(http.StatusGone)
	json.NewEncoder(rw).Encode(wire.ErrorResponse{Error: wire.Error{Code: "site_gone", Message: "site 0 drained"}})
}

// TestPoolFailoverOnSiteGone: a 410 site_gone refusal makes the pool
// drop the drained base, adopt the newer epoch from a survivor's stats,
// and retry the submission there — the caller sees only the commit.
func TestPoolFailoverOnSiteGone(t *testing.T) {
	var commits atomic.Int64
	var topoOf func() wire.Stats
	b := topoStub(t, func(rw http.ResponseWriter, _ *http.Request) {
		commits.Add(1)
		json.NewEncoder(rw).Encode(wire.TxnResult{Class: "X", Committed: true, Site: 1})
	}, func() wire.Stats { return topoOf() })
	a := topoStub(t, gone410, func() wire.Stats { return topoOf() })
	// Both sites agree: epoch 2, slot 0 gone, slot 1 (b) the only active.
	topoOf = func() wire.Stats {
		return wire.Stats{
			TopologyEpoch: 2,
			ActiveSites:   1,
			SiteStatus:    []string{"gone", "active"},
			SiteAddrs:     []string{a.URL, b.URL},
		}
	}

	p := client.NewPool([]string{a.URL, b.URL}, client.Options{MaxAttempts: 1, Seed: 1})
	res, err := p.Submit(context.Background(), wire.TxnRequest{Class: "X"})
	if err != nil || !res.Committed {
		t.Fatalf("failover submit = (%+v, %v)", res, err)
	}
	if commits.Load() != 1 {
		t.Fatalf("survivor saw %d submissions, want 1", commits.Load())
	}
	if bases := p.Bases(); len(bases) != 1 || bases[0] != b.URL {
		t.Fatalf("pool bases after failover = %v, want just the survivor", bases)
	}
	if p.Epoch() != 2 {
		t.Fatalf("pool epoch = %d, want the adopted 2", p.Epoch())
	}
	// Subsequent submissions go straight to the survivor.
	if _, err := p.Submit(context.Background(), wire.TxnRequest{Class: "X"}); err != nil {
		t.Fatal(err)
	}
	if commits.Load() != 2 {
		t.Fatalf("survivor saw %d submissions after adoption, want 2", commits.Load())
	}
}

// TestPoolFailoverOnTransportError: a dead server (connection refused)
// triggers the same drop-refresh-retry path as a structured refusal.
func TestPoolFailoverOnTransportError(t *testing.T) {
	var commits atomic.Int64
	var survivor *httptest.Server
	survivor = topoStub(t, func(rw http.ResponseWriter, _ *http.Request) {
		commits.Add(1)
		json.NewEncoder(rw).Encode(wire.TxnResult{Class: "X", Committed: true})
	}, func() wire.Stats {
		return wire.Stats{
			TopologyEpoch: 3,
			ActiveSites:   1,
			SiteStatus:    []string{"gone", "active"},
			SiteAddrs:     []string{"", survivor.URL},
		}
	})
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()

	p := client.NewPool([]string{deadURL, survivor.URL}, client.Options{MaxAttempts: 1, Seed: 1})
	res, err := p.Submit(context.Background(), wire.TxnRequest{Class: "X"})
	if err != nil || !res.Committed {
		t.Fatalf("failover submit = (%+v, %v)", res, err)
	}
	if bases := p.Bases(); len(bases) != 1 || bases[0] != survivor.URL {
		t.Fatalf("pool bases = %v, want just the survivor", bases)
	}
	if p.Epoch() != 3 {
		t.Fatalf("pool epoch = %d, want 3", p.Epoch())
	}
}

// TestPoolPinnedNoFailover: a site-pinned submission is the caller's
// placement decision — the pool must surface the refusal rather than
// retry it elsewhere, and must not drop the base.
func TestPoolPinnedNoFailover(t *testing.T) {
	var txns atomic.Int64
	a := topoStub(t, func(rw http.ResponseWriter, req *http.Request) {
		txns.Add(1)
		gone410(rw, req)
	}, func() wire.Stats {
		return wire.Stats{TopologyEpoch: 1, SiteStatus: []string{"active"}}
	})

	p := client.NewPool([]string{a.URL}, client.Options{MaxAttempts: 1, Seed: 1})
	site := 0
	_, err := p.Submit(context.Background(), wire.TxnRequest{Class: "X", Site: &site})
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusGone || ae.Code != "site_gone" {
		t.Fatalf("pinned submit = %v, want the raw 410 site_gone", err)
	}
	if txns.Load() != 1 {
		t.Fatalf("pinned submit hit the server %d times, want exactly 1", txns.Load())
	}
	if bases := p.Bases(); len(bases) != 1 {
		t.Fatalf("pinned refusal dropped the base: %v", bases)
	}
}

// TestPoolRefreshAdoptsNewerEpochOnly: stale topology reports (an older
// epoch) never shrink the site list; newer ones do.
func TestPoolRefreshAdoptsNewerEpochOnly(t *testing.T) {
	var epoch atomic.Int64
	var a, b *httptest.Server
	stats := func() wire.Stats {
		e := epoch.Load()
		st := wire.Stats{TopologyEpoch: e, ActiveSites: 2,
			SiteStatus: []string{"active", "active"}, SiteAddrs: []string{"", ""}}
		if a != nil {
			st.SiteAddrs = []string{a.URL, b.URL}
		}
		if e >= 5 {
			st.ActiveSites = 1
			st.SiteStatus = []string{"active", "gone"}
		}
		return st
	}
	ok := func(rw http.ResponseWriter, _ *http.Request) {
		json.NewEncoder(rw).Encode(wire.TxnResult{Class: "X", Committed: true})
	}
	a = topoStub(t, ok, stats)
	b = topoStub(t, ok, stats)

	p := client.NewPool([]string{a.URL, b.URL}, client.Options{MaxAttempts: 1, Seed: 1})
	ctx := context.Background()
	epoch.Store(2)
	if err := p.Refresh(ctx); err != nil {
		t.Fatal(err)
	}
	if p.Epoch() != 2 || len(p.Bases()) != 2 {
		t.Fatalf("after epoch-2 refresh: epoch %d bases %v", p.Epoch(), p.Bases())
	}
	// A stale report (epoch 1) must not regress the view.
	epoch.Store(1)
	if err := p.Refresh(ctx); err != nil {
		t.Fatal(err)
	}
	if p.Epoch() != 2 || len(p.Bases()) != 2 {
		t.Fatalf("stale refresh regressed the view: epoch %d bases %v", p.Epoch(), p.Bases())
	}
	// A newer report that drains site 1 shrinks the rotation.
	epoch.Store(5)
	if err := p.Refresh(ctx); err != nil {
		t.Fatal(err)
	}
	if p.Epoch() != 5 || len(p.Bases()) != 1 || p.Bases()[0] != a.URL {
		t.Fatalf("after drain refresh: epoch %d bases %v", p.Epoch(), p.Bases())
	}
}
