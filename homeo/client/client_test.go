package client_test

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/homeo/client"
	"repro/homeo/wire"
)

// TestBackoffCapped pins the MaxDelay clamp: with a large attempt budget
// the uncapped doubling (RetryBase << n) overflows time.Duration around
// attempt 63 and turns the backoff negative — i.e. into a hot retry
// loop. With the cap every delay is bounded by MaxDelay and floored by
// the jitter's 0.5x factor, so the retries neither spin nor stall.
func TestBackoffCapped(t *testing.T) {
	var mu sync.Mutex
	var times []time.Time
	srv := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, req *http.Request) {
		mu.Lock()
		times = append(times, time.Now())
		mu.Unlock()
		rw.Header().Set("Content-Type", "application/json")
		rw.WriteHeader(http.StatusTooManyRequests)
		json.NewEncoder(rw).Encode(wire.ErrorResponse{Error: wire.Error{Code: "dropped", Message: "full"}})
	}))
	defer srv.Close()

	const attempts = 70 // far past the 63-bit shift horizon
	cl := client.New(srv.URL, client.Options{
		MaxAttempts: attempts,
		RetryBase:   time.Millisecond,
		MaxDelay:    5 * time.Millisecond,
		Seed:        1,
	})
	start := time.Now()
	_, err := cl.Submit(context.Background(), wire.TxnRequest{Class: "X"})
	elapsed := time.Since(start)
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusTooManyRequests {
		t.Fatalf("err = %v, want exhausted 429", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(times) != attempts {
		t.Fatalf("server saw %d attempts, want %d", len(times), attempts)
	}
	// Every gap from attempt 4 on is past the doubling horizon for a 1ms
	// base and must sit in [0.5*MaxDelay, MaxDelay] plus scheduling
	// slack; an overflow-to-negative backoff would collapse gaps to
	// microseconds.
	for i := 4; i < len(times); i++ {
		if gap := times[i].Sub(times[i-1]); gap < 2*time.Millisecond {
			t.Fatalf("gap %d = %v, want >= 2ms (backoff collapsed)", i, gap)
		}
	}
	if elapsed > 10*time.Second {
		t.Fatalf("70 capped retries took %v, want well under 10s", elapsed)
	}
}
