package homeo_test

import (
	"context"
	"reflect"
	"testing"

	"repro/homeo"
	"repro/internal/lang"
)

// TestWALRecoverRoundTrip: run a simulated cluster with a write-ahead
// log, tear it down, and boot an identically configured cluster over the
// same log directory. Recovery — deterministic reboot plus WAL replay —
// must reproduce the commit log and every site's store partition exactly,
// including state installed by synchronization rounds and the treaty
// generations they distributed.
func TestWALRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	mk := func() (*homeo.Cluster, *homeo.TxnClass) {
		t.Helper()
		c, err := homeo.New(homeo.Options{
			Runtime:   homeo.RuntimeSim,
			Sites:     2,
			Seed:      7,
			EnableLog: true,
			WAL:       homeo.WALOptions{Dir: dir},
		})
		if err != nil {
			t.Fatal(err)
		}
		cls, err := c.Register(homeo.ClassSpec{
			L:       withdrawSrc,
			Bounds:  map[string][2]int64{"n": {1, 3}},
			Initial: map[string]int64{"bal": 60},
		})
		if err != nil {
			t.Fatal(err)
		}
		return c, cls
	}

	c1, cls := mk()
	if n, err := c1.Recover(); err != nil || n != 0 {
		t.Fatalf("fresh recover = (%d, %v), want (0, nil)", n, err)
	}
	ctx := context.Background()
	sess := c1.Session()
	for i := 0; i < 80; i++ {
		if _, err := sess.Submit(ctx, cls, int64(1+i%3)); err != nil {
			t.Fatal(err)
		}
	}
	if st := c1.Stats(); st.Synced == 0 {
		t.Fatal("no submission ever synced; the test must cover install and treaty records")
	}
	wantLog := c1.WireLog()
	wantDB := make([]lang.Database, c1.Sites())
	for k := range wantDB {
		wantDB[k] = c1.System().PartitionDB(k)
	}
	c1.Close() // flushes and closes the WAL

	c2, _ := mk()
	n, err := c2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("recovery replayed nothing")
	}
	defer c2.Close()
	if got := c2.Stats().RecoveredWALRecords; got != int64(n) {
		t.Fatalf("stats report %d recovered records, Recover returned %d", got, n)
	}
	gotLog := c2.WireLog()
	if len(gotLog) != len(wantLog) {
		t.Fatalf("recovered commit log has %d entries, want %d", len(gotLog), len(wantLog))
	}
	for i := range wantLog {
		if !reflect.DeepEqual(gotLog[i], wantLog[i]) {
			t.Fatalf("recovered log entry %d = %+v, want %+v", i, gotLog[i], wantLog[i])
		}
	}
	for k := range wantDB {
		if got := c2.System().PartitionDB(k); !reflect.DeepEqual(got, wantDB[k]) {
			t.Fatalf("site %d partition diverged after recovery:\n got %v\nwant %v", k, got, wantDB[k])
		}
	}

	// The recovered incarnation keeps serving: fresh submissions commit
	// and extend the recovered log.
	if res, err := c2.Session().Submit(ctx, c2.Class("Withdraw"), 1); err != nil || !res.Committed {
		t.Fatalf("post-recovery submission = (%+v, %v)", res, err)
	}
	if got := c2.Committed(); got != len(wantLog)+1 {
		t.Fatalf("post-recovery commit log has %d entries, want %d", got, len(wantLog)+1)
	}
}
