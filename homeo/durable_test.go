package homeo_test

import (
	"context"
	"reflect"
	"testing"

	"repro/homeo"
	"repro/homeo/wire"
	"repro/internal/lang"
)

// TestWALRecoverRoundTrip: run a simulated cluster with a write-ahead
// log, tear it down, and boot an identically configured cluster over the
// same log directory. Recovery — deterministic reboot plus WAL replay —
// must reproduce the commit log and every site's store partition exactly,
// including state installed by synchronization rounds and the treaty
// generations they distributed.
func TestWALRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	mk := func() (*homeo.Cluster, *homeo.TxnClass) {
		t.Helper()
		c, err := homeo.New(homeo.Options{
			Runtime:   homeo.RuntimeSim,
			Sites:     2,
			Seed:      7,
			EnableLog: true,
			WAL:       homeo.WALOptions{Dir: dir},
		})
		if err != nil {
			t.Fatal(err)
		}
		cls, err := c.Register(homeo.ClassSpec{
			L:       withdrawSrc,
			Bounds:  map[string][2]int64{"n": {1, 3}},
			Initial: map[string]int64{"bal": 60},
		})
		if err != nil {
			t.Fatal(err)
		}
		return c, cls
	}

	c1, cls := mk()
	if n, err := c1.Recover(); err != nil || n != 0 {
		t.Fatalf("fresh recover = (%d, %v), want (0, nil)", n, err)
	}
	ctx := context.Background()
	sess := c1.Session()
	for i := 0; i < 80; i++ {
		if _, err := sess.Submit(ctx, cls, int64(1+i%3)); err != nil {
			t.Fatal(err)
		}
	}
	if st := c1.Stats(); st.Synced == 0 {
		t.Fatal("no submission ever synced; the test must cover install and treaty records")
	}
	wantLog := c1.WireLog()
	wantDB := make([]lang.Database, c1.Sites())
	for k := range wantDB {
		wantDB[k] = c1.System().PartitionDB(k)
	}
	c1.Close() // flushes and closes the WAL

	c2, _ := mk()
	n, err := c2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("recovery replayed nothing")
	}
	defer c2.Close()
	if got := c2.Stats().RecoveredWALRecords; got != int64(n) {
		t.Fatalf("stats report %d recovered records, Recover returned %d", got, n)
	}
	gotLog := c2.WireLog()
	if len(gotLog) != len(wantLog) {
		t.Fatalf("recovered commit log has %d entries, want %d", len(gotLog), len(wantLog))
	}
	for i := range wantLog {
		if !reflect.DeepEqual(gotLog[i], wantLog[i]) {
			t.Fatalf("recovered log entry %d = %+v, want %+v", i, gotLog[i], wantLog[i])
		}
	}
	for k := range wantDB {
		if got := c2.System().PartitionDB(k); !reflect.DeepEqual(got, wantDB[k]) {
			t.Fatalf("site %d partition diverged after recovery:\n got %v\nwant %v", k, got, wantDB[k])
		}
	}

	// The recovered incarnation keeps serving: fresh submissions commit
	// and extend the recovered log.
	if res, err := c2.Session().Submit(ctx, c2.Class("Withdraw"), 1); err != nil || !res.Committed {
		t.Fatalf("post-recovery submission = (%+v, %v)", res, err)
	}
	if got := c2.Committed(); got != len(wantLog)+1 {
		t.Fatalf("post-recovery commit log has %d entries, want %d", got, len(wantLog)+1)
	}
}

// TestWALRecoverMembership: a cluster that joined a site and drained
// another writes membership records to its WAL; a crashed-and-rebooted
// incarnation (booted at the original width) must recover the grown
// width, the per-slot statuses, and the membership epoch — the drained
// slot stays fenced, the joined slot keeps serving.
func TestWALRecoverMembership(t *testing.T) {
	dir := t.TempDir()
	mk := func() (*homeo.Cluster, *homeo.TxnClass) {
		t.Helper()
		c, err := homeo.New(homeo.Options{
			Runtime:   homeo.RuntimeSim,
			Sites:     2,
			Seed:      3,
			EnableLog: true,
			WAL:       homeo.WALOptions{Dir: dir},
		})
		if err != nil {
			t.Fatal(err)
		}
		cls, err := c.Register(homeo.ClassSpec{
			L:       withdrawSrc,
			Bounds:  map[string][2]int64{"n": {1, 3}},
			Initial: map[string]int64{"bal": 300},
		})
		if err != nil {
			t.Fatal(err)
		}
		return c, cls
	}

	c1, cls := mk()
	if _, err := c1.Recover(); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	s := c1.Session()
	for i := 0; i < 10; i++ {
		if _, err := s.Submit(ctx, cls, int64(1+i%3)); err != nil {
			t.Fatal(err)
		}
	}
	if joined, err := c1.Join(""); err != nil || joined != 2 {
		t.Fatalf("Join = (%d, %v), want (2, nil)", joined, err)
	}
	at2, err := c1.SessionAt(2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := at2.Submit(ctx, cls, 2); err != nil {
			t.Fatal(err)
		}
	}
	if err := c1.Drain(0); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	wantEpoch := c1.TopologyEpoch()
	wantStatus := c1.SiteStatuses()
	wantLog := c1.WireLog()
	c1.Close()

	c2, cls2 := mk() // boots at the original width 2
	n, err := c2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("recovery replayed nothing")
	}
	defer c2.Close()
	if got := c2.Sites(); got != 3 {
		t.Fatalf("recovered width = %d, want 3 (the joined slot)", got)
	}
	if got := c2.TopologyEpoch(); got != wantEpoch {
		t.Fatalf("recovered epoch = %d, want %d", got, wantEpoch)
	}
	if got := c2.SiteStatuses(); !reflect.DeepEqual(got, wantStatus) {
		t.Fatalf("recovered statuses = %v, want %v", got, wantStatus)
	}
	if got := c2.WireLog(); len(got) != len(wantLog) {
		t.Fatalf("recovered commit log has %d entries, want %d", len(got), len(wantLog))
	}
	// The drained slot stays fenced across the crash...
	at0, err := c2.SessionAt(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := at0.Submit(ctx, cls2, 1); homeo.ErrorCode(err) != "site_gone" {
		t.Fatalf("submit at recovered-drained site: %v, want site_gone", err)
	}
	// ...and the joined slot keeps serving.
	at2r, err := c2.SessionAt(2)
	if err != nil {
		t.Fatal(err)
	}
	if res, err := at2r.Submit(ctx, cls2, 1); err != nil || !res.Committed {
		t.Fatalf("submit at recovered-joined site = (%+v, %v)", res, err)
	}
	// Recovered entries replay through the class registry, so equivalence
	// is checked the multi-process way: merged log against the folded
	// partitions.
	parts := make([]wire.PartitionResponse, 0, c2.Sites())
	for k := 0; k < c2.Sites(); k++ {
		vals := map[string]int64{}
		for obj, v := range c2.System().PartitionDB(k) {
			vals[string(obj)] = v
		}
		parts = append(parts, wire.PartitionResponse{Site: k, Values: vals})
	}
	if err := c2.CheckMergedReplay([][]wire.LogEntry{c2.WireLog()}, parts); err != nil {
		t.Fatalf("replay equivalence after membership recovery: %v", err)
	}
}
