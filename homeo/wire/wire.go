// Package wire defines the JSON types of the versioned /v1 HTTP protocol
// spoken between homeo/httpapi (the server half, mounted by
// cmd/homeostasis-serve) and homeo/client (the Go client). The protocol:
//
//	POST /v1/classes   register a transaction class (L or SQL source)
//	GET  /v1/classes   list registered classes
//	POST /v1/txn       invoke a class (or the base workload mix); batch
//	GET  /v1/stats     snapshot; ?stream=1 or Accept: text/event-stream
//	                   streams Server-Sent Events
//	GET  /healthz      liveness probe
//
// Every non-2xx response carries an ErrorResponse envelope. Failed
// transactions inside a 200 response carry a per-result Error whose Code
// distinguishes aborted, timeout, and livelocked; queue overflow is
// reported out-of-band as HTTP 429 with code "dropped", and a draining
// server answers 503 with code "draining".
// The package is intentionally dependency-free (standard library only):
// it is the wire contract, importable by any client without dragging in
// the engine.
package wire

// Error is the structured error payload.
type Error struct {
	// Code is a stable machine-readable identifier: bad_request,
	// method_not_allowed, not_found, conflict, gone, dropped, draining,
	// site_gone, aborted, timeout, livelocked, or internal.
	Code string `json:"code"`
	// Message is human-readable detail.
	Message string `json:"message"`
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	Error Error `json:"error"`
}

// ClassRequest is the POST /v1/classes body. Exactly one of L and SQL
// must be set.
type ClassRequest struct {
	// Name identifies the class; optional for L (defaults to the
	// transaction name), required for SQL.
	Name string `json:"name,omitempty"`
	// L is L/L++ source containing one transaction.
	L string `json:"l,omitempty"`
	// SQL is a sqlfront script (CREATE TABLE + DML).
	SQL string `json:"sql,omitempty"`
	// Bounds are inclusive parameter ranges used to strengthen
	// parameterized guards into treaties.
	Bounds map[string][2]int64 `json:"bounds,omitempty"`
	// Initial seeds starting logical values per object (L classes).
	Initial map[string]int64 `json:"initial,omitempty"`
	// Rows preloads relational rows per table (SQL classes).
	Rows map[string][][]int64 `json:"rows,omitempty"`
}

// ClassEnvelope is the POST /v1/classes body: either a single
// ClassRequest or a Batch, registered atomically — every class installs
// or none does (when Batch is non-empty the embedded single fields are
// ignored). Batching amortizes the per-registration installation sweep.
type ClassEnvelope struct {
	ClassRequest
	Batch []ClassRequest `json:"batch,omitempty"`
}

// ClassBatchResponse is the POST /v1/classes response for batch
// registrations, in request order.
type ClassBatchResponse struct {
	Classes []ClassInfo `json:"classes"`
}

// ClassInfo describes a registered class (POST/GET /v1/classes).
type ClassInfo struct {
	Name    string   `json:"name"`
	Params  []string `json:"params,omitempty"`
	Objects []string `json:"objects,omitempty"`
	// Pinned reports the analysis fallback: the class synchronizes on
	// every write instead of committing coordination-free.
	Pinned    bool   `json:"pinned,omitempty"`
	PinReason string `json:"pin_reason,omitempty"`
	// Treaties are the unit's current per-site local treaties, rendered.
	Treaties []string `json:"treaties,omitempty"`
}

// ClassListResponse is the GET /v1/classes body.
type ClassListResponse struct {
	Classes []ClassInfo `json:"classes"`
}

// TxnRequest is one invocation. As the full POST /v1/txn body it submits
// a single transaction; inside TxnEnvelope.Batch it is one element of a
// batch.
type TxnRequest struct {
	// Class names a registered class; empty draws the next request from
	// the base workload's mix.
	Class string `json:"class,omitempty"`
	// Args are the invocation arguments (must match the class arity).
	Args []int64 `json:"args,omitempty"`
	// Site pins the executing site; absent round-robins.
	Site *int `json:"site,omitempty"`
	// TimeoutMS bounds the wait server-side; on expiry the result carries
	// code "timeout" while the transaction finishes in the background.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// TxnEnvelope is the POST /v1/txn body: either a single TxnRequest or a
// Batch (when Batch is non-empty the embedded single fields are ignored).
type TxnEnvelope struct {
	TxnRequest
	Batch []TxnRequest `json:"batch,omitempty"`
}

// TxnResult is one invocation's outcome.
type TxnResult struct {
	Class     string  `json:"class"`
	Args      []int64 `json:"args,omitempty"`
	Site      int     `json:"site"`
	Committed bool    `json:"committed"`
	Synced    bool    `json:"synced,omitempty"`
	LatencyMS float64 `json:"latency_ms"`
	// Log is the transaction's observable print log (SELECT results for
	// SQL classes).
	Log []int64 `json:"log,omitempty"`
	// Error classifies a failed invocation: aborted, timeout, livelocked,
	// or dropped (batch elements refused by backpressure).
	Error *Error `json:"error,omitempty"`
}

// TxnBatchResponse is the POST /v1/txn body for batch submissions, in
// request order.
type TxnBatchResponse struct {
	Results []TxnResult `json:"results"`
}

// StoreStats mirrors one 2PL store's counters.
type StoreStats struct {
	Commits   int64 `json:"commits"`
	Aborts    int64 `json:"aborts"`
	Deadlocks int64 `json:"deadlocks"`
	Timeouts  int64 `json:"timeouts"`
}

// Stats is the GET /v1/stats body (and the SSE event payload).
type Stats struct {
	Workload  string   `json:"workload"`
	Mode      string   `json:"mode"`
	Alloc     string   `json:"alloc"`
	Runtime   string   `json:"runtime"`
	Sites     int      `json:"sites"`
	Classes   []string `json:"classes,omitempty"`
	UptimeSec float64  `json:"uptime_sec"`

	Committed         int64 `json:"committed"`
	Synced            int64 `json:"synced"`
	ConflictAborts    int64 `json:"conflict_aborts"`
	Dropped           int64 `json:"dropped"`
	Livelocked        int64 `json:"livelocked"`
	TreatyGenFailures int64 `json:"treaty_gen_failures"`
	CoWinnerCommits   int64 `json:"co_winner_commits"`

	SyncRatioPct   float64 `json:"sync_ratio_pct"`
	ThroughputTxnS float64 `json:"throughput_txn_s"`

	LatencyP50MS  float64 `json:"latency_p50_ms"`
	LatencyP90MS  float64 `json:"latency_p90_ms"`
	LatencyP99MS  float64 `json:"latency_p99_ms"`
	LatencyMaxMS  float64 `json:"latency_max_ms"`
	LatencyMeanMS float64 `json:"latency_mean_ms"`

	// Negotiations counts the cleanup rounds this process coordinated;
	// the percentiles are their communication cost (the two peer message
	// rounds of the site fabric).
	Negotiations    int64   `json:"negotiations"`
	NegLatencyP50MS float64 `json:"neg_latency_p50_ms"`
	NegLatencyP99MS float64 `json:"neg_latency_p99_ms"`
	FabricErrors    int64   `json:"fabric_errors"`

	// Coordinator-failover outcomes and WAL recovery (durable sites).
	RoundsAdopted       int64 `json:"rounds_adopted,omitempty"`
	RoundsAborted       int64 `json:"rounds_aborted,omitempty"`
	RecoveredWALRecords int64 `json:"recovered_wal_records,omitempty"`

	// Incremental derivation: registrations served from the analysis
	// cache versus built from scratch, and treaty negotiations solved
	// from the previous configuration versus falling back to a full
	// solve.
	AnalysisCacheHits   int64 `json:"analysis_cache_hits,omitempty"`
	AnalysisCacheMisses int64 `json:"analysis_cache_misses,omitempty"`
	SolverWarmStarts    int64 `json:"solver_warm_starts,omitempty"`
	SolverFallbacks     int64 `json:"solver_fallbacks,omitempty"`

	StoreCluster StoreStats   `json:"store_cluster"`
	StorePerSite []StoreStats `json:"store_per_site,omitempty"`

	// Elastic topology: TopologyEpoch is the serving process's membership
	// epoch (bumped on every join admission and drain completion it
	// observes — a refresh cue for clients, not a consensus value).
	// SiteStatus lists every membership slot's status ("active",
	// "draining", "gone") indexed by site; SiteAddrs the known peer base
	// URLs ("" in-process).
	TopologyEpoch int64    `json:"topology_epoch"`
	ActiveSites   int      `json:"active_sites,omitempty"`
	SiteStatus    []string `json:"site_status,omitempty"`
	SiteAddrs     []string `json:"site_addrs,omitempty"`
}

// TopologyResponse is the GET /v1/topology body: the serving process's
// view of the cluster membership.
type TopologyResponse struct {
	Epoch       int64    `json:"epoch"`
	Sites       int      `json:"sites"`
	ActiveSites int      `json:"active_sites"`
	SiteStatus  []string `json:"site_status"`
	SiteAddrs   []string `json:"site_addrs,omitempty"`
	// SelfSite is the one site the process owns (-1 when every site is
	// in-process).
	SelfSite int `json:"self_site"`
}

// DrainRequest is the POST /v1/topology/drain body. On a multi-process
// cluster Site must be the serving process's own site (the drain's
// absorb rounds need its local state); peers learn of the drain through
// the fabric broadcast.
type DrainRequest struct {
	Site int `json:"site"`
}

// MigrateRequest is the POST /v1/topology/migrate body: move one treaty
// unit's demand home to another active site. To = -1 picks the site the
// adaptive allocator's burn vector names.
type MigrateRequest struct {
	Unit int `json:"unit"`
	To   int `json:"to"`
}

// TopologyAck acknowledges a topology mutation with the process's
// post-mutation membership view.
type TopologyAck struct {
	Epoch       int64 `json:"epoch"`
	Sites       int   `json:"sites"`
	ActiveSites int   `json:"active_sites"`
}
