package wire

// This file defines the JSON types of the site-fabric peer protocol: the
// messages sites exchange under /v1/peer/* when a cluster runs as
// multiple OS processes (one site each, cmd/homeostasis-serve -site N
// -peers ...). The protocol is the wire form of the paper's cleanup
// phase (Section 3.3), coordinator-driven by the violating site:
//
//	POST /v1/peer/collect           round 1: freeze the violated units and
//	                                return the site's delta values for the
//	                                round's object footprint
//	POST /v1/peer/install-state     round 1 close: install the folded
//	                                consolidated state
//	POST /v1/peer/install-treaties  round 2: install the site's new local
//	                                treaties and release the units
//	POST /v1/peer/abort             release a round that will not complete
//	POST /v1/peer/rejoin            recovery handshake: a site restarted
//	                                from its write-ahead log announces its
//	                                recovered treaty versions; peers fail
//	                                over its orphaned rounds and report the
//	                                units it must repair
//	POST /v1/peer/join              membership handshake from a joining
//	                                site: phase 1 quiesces the peer and
//	                                streams back a consistent partition
//	                                cut, phase 2 admits the joiner into
//	                                the epoch and releases the quiesce
//	POST /v1/peer/drain             a drained site announces itself: the
//	                                peer marks it gone and bumps its
//	                                membership epoch (at the drained site
//	                                itself, the operator's drain trigger)
//	POST /v1/peer/migrate           install a migrating unit's folded
//	                                state and new demand home (at the
//	                                target with a zero round, the
//	                                operator's migration trigger)
//	GET  /v1/peer/log               the site's commit log (Lamport-clocked)
//	GET  /v1/peer/db                the site's authoritative partition of
//	                                the logical database
//
// A site that cannot grant a round because a unit is already negotiating
// answers 409 with code "busy"; the coordinator aborts, backs off, and
// retries. All clocks are Lamport timestamps: every message carries the
// sender's clock, receivers advance to max(own, received)+1, and commit-
// log entries record theirs, so a merge of per-site logs ordered by
// (clock, site, seq) respects the causality the synchronization rounds
// establish.

// PeerCollect is the POST /v1/peer/collect body (round 1 scatter).
type PeerCollect struct {
	// From is the coordinating site; Round its round sequence number.
	From  int    `json:"from"`
	Round uint64 `json:"round"`
	Clock int64  `json:"clock"`
	// Units are the treaty units the round renegotiates; the receiving
	// site freezes them until install-treaties (or abort) arrives.
	Units []int `json:"units"`
	// Objs is the round's logical object footprint: the units' objects
	// plus everything the winning transaction reads or writes outside
	// them.
	Objs []string `json:"objs"`
}

// PeerState is the collect reply: the site's contribution to the fold —
// its own delta object values for the requested footprint.
type PeerState struct {
	Clock  int64            `json:"clock"`
	Values map[string]int64 `json:"values"`
}

// PeerInstallState is the POST /v1/peer/install-state body (round 1
// close): the folded consolidated state, computed by the coordinator
// after running the winning transaction on the fold.
type PeerInstallState struct {
	From   int              `json:"from"`
	Round  uint64           `json:"round"`
	Clock  int64            `json:"clock"`
	Objs   []string         `json:"objs"`
	Folded map[string]int64 `json:"folded"`
	// Winner identifies the round's winning transaction (already applied
	// inside Folded), so the granted site can adopt the commit if the
	// coordinator dies before round 2.
	Winner *PeerWinner `json:"winner,omitempty"`
}

// PeerWinner is the winning transaction's identity carried by
// PeerInstallState for coordinator-failover adoption.
type PeerWinner struct {
	Class string  `json:"class"`
	Args  []int64 `json:"args,omitempty"`
	Site  int     `json:"site"`
	Units []int   `json:"units,omitempty"`
	Log   []int64 `json:"log,omitempty"`
}

// PeerConstraint is one linear constraint of a local treaty in canonical
// form: sum coeffs[obj]*obj + const (op) 0.
type PeerConstraint struct {
	Coeffs map[string]int64 `json:"coeffs,omitempty"`
	Const  int64            `json:"const"`
	// Op is "<=", "<", or "==".
	Op string `json:"op"`
}

// PeerUnitTreaty is one unit's new local treaty for the receiving site.
type PeerUnitTreaty struct {
	Unit        int              `json:"unit"`
	Version     int64            `json:"version"`
	Constraints []PeerConstraint `json:"constraints"`
}

// PeerInstallTreaties is the POST /v1/peer/install-treaties body
// (round 2): the receiving site's share of the round's new treaties.
// Installing them closes the round at the site.
type PeerInstallTreaties struct {
	From  int              `json:"from"`
	Round uint64           `json:"round"`
	Clock int64            `json:"clock"`
	Site  int              `json:"site"`
	Units []PeerUnitTreaty `json:"units"`
}

// PeerAbort is the POST /v1/peer/abort body: release a granted round
// without installing anything (the coordinator lost a busy race or failed
// mid-round).
type PeerAbort struct {
	From  int    `json:"from"`
	Round uint64 `json:"round"`
	Clock int64  `json:"clock"`
}

// PeerAck answers install and abort messages.
type PeerAck struct {
	Clock int64 `json:"clock"`
}

// PeerUnitVersion pairs a treaty unit with a treaty version.
type PeerUnitVersion struct {
	Unit    int   `json:"unit"`
	Version int64 `json:"version"`
}

// PeerRejoin is the POST /v1/peer/rejoin body: a site restarted from its
// write-ahead log announces itself and the treaty versions it recovered.
// Receivers fail over any round the sender's dead incarnation was
// coordinating and reply with the units the sender must repair.
type PeerRejoin struct {
	Site  int               `json:"site"`
	Clock int64             `json:"clock"`
	Units []PeerUnitVersion `json:"units,omitempty"`
}

// PeerRejoinUnit is one unit the rejoining site must repair: the
// answering peer's treaty version and the unit objects' replicated base
// values there.
type PeerRejoinUnit struct {
	Unit    int   `json:"unit"`
	Version int64 `json:"version"`
	// Force marks repair info from a round the rejoiner itself coordinated
	// whose state install completed at the peer: the base moved without a
	// new treaty generation, so the rejoiner must adopt it regardless of
	// version comparison.
	Force bool             `json:"force,omitempty"`
	Base  map[string]int64 `json:"base,omitempty"`
}

// PeerRejoinReply is the rejoin response.
type PeerRejoinReply struct {
	Clock int64            `json:"clock"`
	Units []PeerRejoinUnit `json:"units,omitempty"`
}

// PeerJoin is the POST /v1/peer/join body: one phase of a joining site's
// membership handshake. Phase 1 (prepare) quiesces every unit at the
// receiver under a round grant and streams back the partition cut; phase
// 2 (activate) grows the receiver's membership table, bumps its epoch,
// and releases the quiesce. Both phases carry the same round, which keys
// the quiesce in the grant table — a joiner that dies between phases is
// failed over by ordinary grant expiry.
type PeerJoin struct {
	// Site is the joining site's index (the pre-join cluster width); From
	// mirrors it as the round coordinator.
	Site  int    `json:"site"`
	Round uint64 `json:"round"`
	Clock int64  `json:"clock"`
	// Addr is the joining site's peer base URL.
	Addr string `json:"addr,omitempty"`
	// Phase is 1 (prepare) or 2 (activate).
	Phase int `json:"phase"`
}

// PeerJoinUnit is one treaty unit's slice of the partition cut streamed
// to a joining site.
type PeerJoinUnit struct {
	Unit    int              `json:"unit"`
	Version int64            `json:"version"`
	Base    map[string]int64 `json:"base,omitempty"`
}

// PeerJoinReply answers a join phase: the receiver's membership epoch,
// plus the partition cut on phase-1 replies.
type PeerJoinReply struct {
	Clock int64          `json:"clock"`
	Epoch int64          `json:"epoch"`
	Units []PeerJoinUnit `json:"units,omitempty"`
}

// PeerDrain is the POST /v1/peer/drain body: the named site has drained
// (its deltas are absorbed into the replicated base and it commits
// nothing further). The receiver marks it gone and bumps its epoch; the
// site's index is never reused.
type PeerDrain struct {
	Site  int   `json:"site"`
	Clock int64 `json:"clock"`
}

// PeerDrainReply acknowledges a drain with the receiver's new epoch.
type PeerDrainReply struct {
	Clock int64 `json:"clock"`
	Epoch int64 `json:"epoch"`
}

// PeerMigrate is the POST /v1/peer/migrate body: install a migrating
// unit's folded state (exactly-once under the round grant, mirroring
// install-state) and record the unit's new demand home.
type PeerMigrate struct {
	From  int    `json:"from"`
	Round uint64 `json:"round"`
	Clock int64  `json:"clock"`
	Unit  int    `json:"unit"`
	// To is the site the unit's repaired treaty configuration
	// concentrates slack on.
	To     int              `json:"to"`
	Objs   []string         `json:"objs,omitempty"`
	Folded map[string]int64 `json:"folded,omitempty"`
}

// PeerMigrateReply acknowledges a migration install with the receiver's
// epoch.
type PeerMigrateReply struct {
	Clock int64 `json:"clock"`
	Epoch int64 `json:"epoch"`
}

// LogEntry is one commit-log entry (GET /v1/peer/log): enough to replay
// the transaction through its registered class and to merge per-site logs
// into a causally consistent order.
type LogEntry struct {
	Class string  `json:"class"`
	Args  []int64 `json:"args,omitempty"`
	Site  int     `json:"site"`
	// Clock is the commit's Lamport timestamp; Seq its position in the
	// site's local log.
	Clock int64 `json:"clock"`
	Seq   int   `json:"seq"`
	// Round names the cleanup round for cleanup-phase commits. It is the
	// cluster-wide dedup key under coordinator failover: an adopted winner
	// may appear in several sites' logs, and a merge keeps one copy.
	Round *LogRound `json:"round,omitempty"`
}

// LogRound names a cleanup round in a commit-log entry.
type LogRound struct {
	Site int    `json:"site"`
	Seq  uint64 `json:"seq"`
}

// LogResponse is the GET /v1/peer/log body.
type LogResponse struct {
	Site    int        `json:"site"`
	Entries []LogEntry `json:"entries"`
}

// PartitionResponse is the GET /v1/peer/db body: the site's authoritative
// share of the logical database — every treaty-unit object's replicated
// base value plus the site's own delta object values.
type PartitionResponse struct {
	Site   int              `json:"site"`
	Values map[string]int64 `json:"values"`
}
