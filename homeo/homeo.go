// Package homeo is the public, embeddable API of the homeostasis-protocol
// engine: a replicated multi-site transaction system that analyzes
// application transactions (written in the paper's L language or a small
// SQL dialect) and derives treaties — local predicates that let each site
// commit without any cross-site coordination while the predicates hold.
//
// The package wraps the analysis pipeline (parsing, symbolic tables,
// treaty generation) and both execution runtimes behind four concepts:
//
//   - Cluster: a running multi-site deployment, constructed from Options,
//     on either the deterministic simulator (RuntimeSim) or the
//     wall-clock runtime (RuntimeLive) backing real serving.
//   - TxnClass: a transaction class registered at runtime from L or SQL
//     source. The engine analyzes it and generates treaties online; no
//     class needs to exist at compile time.
//   - Session: submits invocations of registered classes (or draws from
//     the base workload's mix) with per-call deadlines.
//   - Stats: a streaming snapshot of throughput, latency percentiles,
//     synchronization ratio, and per-site store counters.
//
// Submission failures are classified by the structured error taxonomy
// (ErrAborted, ErrTimeout, ErrLivelocked, ErrDropped) — use errors.Is.
//
// # Quick start
//
//	c, err := homeo.New(homeo.Options{Runtime: homeo.RuntimeSim, Sites: 2})
//	cls, err := c.Register(homeo.ClassSpec{L: `
//	    transaction Deposit(n) {
//	        v := read(acct);
//	        write(acct = v + n)
//	    }`})
//	res, err := c.Session().Submit(ctx, cls, 10)
//
// The wire protocol counterpart (the /v1 HTTP API served by
// cmd/homeostasis-serve) lives in homeo/httpapi with a Go client in
// homeo/client; both are thin layers over this package.
package homeo

import (
	"fmt"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/fabric"
	"repro/internal/homeostasis"
	"repro/internal/metrics"
	"repro/internal/rt"
	"repro/internal/rtlive"
	"repro/internal/sim"
	"repro/internal/wal"
	"repro/internal/workload"
)

// Mode selects the execution protocol (the four systems of the paper's
// Section 6 plus the default-configuration ablation).
type Mode = homeostasis.Mode

// The protocol modes.
const (
	ModeHomeo        = homeostasis.ModeHomeo
	ModeOpt          = homeostasis.ModeOpt
	ModeTwoPC        = homeostasis.ModeTwoPC
	ModeLocal        = homeostasis.ModeLocal
	ModeHomeoDefault = homeostasis.ModeHomeoDefault
)

// Alloc selects the treaty allocation strategy.
type Alloc = homeostasis.Alloc

// The allocation strategies.
const (
	AllocDefault    = homeostasis.AllocDefault
	AllocEqualSplit = homeostasis.AllocEqualSplit
	AllocModel      = homeostasis.AllocModel
	AllocAdaptive   = homeostasis.AllocAdaptive
)

// ParseMode parses a mode name: homeo, opt, 2pc, local, or homeo-default.
func ParseMode(s string) (Mode, error) {
	switch strings.ToLower(s) {
	case "", "homeo":
		return ModeHomeo, nil
	case "opt":
		return ModeOpt, nil
	case "2pc":
		return ModeTwoPC, nil
	case "local":
		return ModeLocal, nil
	case "homeo-default":
		return ModeHomeoDefault, nil
	}
	return 0, fmt.Errorf("homeo: unknown mode %q (want homeo, opt, 2pc, local, or homeo-default)", s)
}

// ParseAlloc parses an allocation strategy name: default, equal, model,
// or adaptive.
func ParseAlloc(s string) (Alloc, error) {
	switch strings.ToLower(s) {
	case "", "default":
		return AllocDefault, nil
	case "equal":
		return AllocEqualSplit, nil
	case "model":
		return AllocModel, nil
	case "adaptive":
		return AllocAdaptive, nil
	}
	return 0, fmt.Errorf("homeo: unknown alloc %q (want default, equal, model, or adaptive)", s)
}

// Workload is the pluggable base-workload interface (the built-in
// benchmarks internal/micro and internal/tpcc implement it). A Cluster
// needs no base workload: classes registered at runtime are enough.
type Workload = workload.Workload

// Topology is a cluster communication topology (per-site-pair round-trip
// times). Uniform and EC2 construct the common shapes.
type Topology = cluster.Topology

// Uniform returns an n-site topology with one RTT everywhere.
func Uniform(n int, rtt time.Duration) *Topology {
	return cluster.Uniform(n, rt.Duration(rtt))
}

// EC2 returns up to nine sites with the paper's Table 1 inter-region
// round-trip times.
func EC2(n int) *Topology { return cluster.EC2(n) }

// RuntimeKind selects the execution runtime.
type RuntimeKind int

const (
	// RuntimeSim is the deterministic discrete-event simulator: virtual
	// time, exactly reproducible runs, per-call deadlines ignored.
	RuntimeSim RuntimeKind = iota
	// RuntimeLive is the wall-clock runtime: real goroutines, real waits,
	// real concurrency limits. Submissions honor context deadlines.
	RuntimeLive
)

// String names the runtime kind ("sim" or "live").
func (k RuntimeKind) String() string {
	if k == RuntimeLive {
		return "live"
	}
	return "sim"
}

// Options configures a Cluster. The zero value is a usable 2-site
// simulated cluster under the homeostasis protocol.
type Options struct {
	// Runtime selects simulation or wall-clock execution.
	Runtime RuntimeKind
	// Mode is the execution protocol (default ModeHomeo).
	Mode Mode
	// Alloc overrides the treaty allocation strategy (default: the mode's
	// builtin; non-default also enables batched renegotiation).
	Alloc Alloc
	// Sites is the number of replica sites (default 2). Ignored when
	// Topology is set.
	Sites int
	// RTT is the uniform inter-site round-trip time (default 50ms).
	// Ignored when Topology is set.
	RTT time.Duration
	// Topology overrides Sites/RTT with an explicit topology.
	Topology *Topology
	// Workload optionally seeds the cluster with a base workload (the
	// built-in benchmarks); classes registered later ride alongside it.
	Workload Workload
	// CPUPerSite caps concurrent transaction execution per site
	// (default 32; a true concurrency limit on RuntimeLive).
	CPUPerSite int
	// LocalExecTime is the per-transaction local service time
	// (default 2ms).
	LocalExecTime time.Duration
	// LockTimeout is the 2PL lock-wait timeout (default 1s).
	LockTimeout time.Duration
	// Seed drives all randomness.
	Seed int64
	// EnableLog records the commit log so CheckReplayEquivalence can
	// verify observational equivalence after a run.
	EnableLog bool
	// MaxInflight bounds concurrently executing submissions on
	// RuntimeLive; excess submissions fail fast with ErrDropped (the wire
	// layer maps that to 429). 0 means the default of 1024.
	MaxInflight int

	// ClientsPerSite, Warmup, and Measure configure Drive's closed loop.
	ClientsPerSite int
	Warmup         time.Duration
	Measure        time.Duration

	// WAL, when Dir is set, makes this process's sites durable: committed
	// transactions, synchronization-round installs, and treaty generations
	// append to per-site write-ahead logs under Dir, and Recover replays
	// them after a restart. Logging is invisible to the virtual timeline,
	// so simulated runs stay byte-identical with or without a WAL.
	WAL WALOptions

	// Fabric, when set, runs the cluster as one OS process per site over
	// the HTTP site fabric: this process owns exactly Fabric.Site, and
	// the cleanup phase's synchronization rounds travel as JSON peer
	// messages (/v1/peer/*) instead of in-memory calls. Requires
	// RuntimeLive. Every process must be constructed with the same
	// workload, seed, and protocol options, and classes must be
	// registered at every site (the multi-process driver does both).
	Fabric *FabricOptions
}

// WALOptions configures site durability (see internal/wal).
type WALOptions struct {
	// Dir is the directory holding the per-site log files
	// (site-<k>.wal). Empty disables the WAL entirely.
	Dir string
	// Sync fsyncs every flushed batch before acknowledging. Without it a
	// flush is an ordinary write(2): durable across process crashes
	// (SIGKILL), not across machine/power loss.
	Sync bool
}

// FabricOptions configures a multi-process deployment.
type FabricOptions struct {
	// Site is the one site this process owns.
	Site int
	// Peers lists every site's base URL in site order; Peers[Site] is
	// this process's own address (used by the other processes, ignored
	// locally). len(Peers) fixes the cluster width.
	Peers []string
	// Token is the cluster's shared peer secret: every outgoing peer
	// message carries it and every /v1/peer/* mutation requires it. The
	// peer endpoints install state and treaties, so set a token whenever
	// the peer list crosses anything but a trusted loopback.
	Token string
	// Client optionally overrides the pooled HTTP client used for peer
	// messages.
	Client *http.Client
}

// Cluster is a running multi-site deployment: the embeddable counterpart
// of cmd/homeostasis-serve. Construct with New, register transaction
// classes with Register, submit through a Session, observe with Stats.
type Cluster struct {
	opts Options
	eng  rt.Runtime
	live *rtlive.Runtime // nil on RuntimeSim
	sim  *sim.Engine     // nil on RuntimeLive
	sys  *homeostasis.System
	reg  *workload.Registry
	// artifacts shares registration-time analysis (symbolic tables, guard
	// preprocessing) across isomorphic classes; see workload.ArtifactCache.
	artifacts *workload.ArtifactCache

	// mu serializes registration, sim-runtime submissions, and state
	// snapshots on the sim runtime (which has no scheduler lock of its
	// own). On RuntimeLive, shared protocol state is additionally guarded
	// by the runtime's scheduler lock via locked().
	mu      sync.Mutex
	classes map[string]*TxnClass
	rng     *rand.Rand

	inflight atomic.Int64
	draining atomic.Bool
	nextID   atomic.Int64
	nextSite atomic.Int64
	start    time.Time

	// topo is the lock-free membership snapshot the submission path
	// routes by; refreshed after every membership operation (see
	// elastic.go).
	topo atomic.Pointer[topoView]
}

// wallClock is the package's sole sanctioned wall-clock source (uptime
// accounting only; protocol time comes from the rt runtime clock).
var wallClock = time.Now //homeo:wallclock sole clock construction site

// New builds and boots a cluster: per-site stores, CPU resources, and —
// for the treaty-based modes — offline treaties for the base workload's
// units. Registered classes get their treaties generated online.
func New(opts Options) (*Cluster, error) {
	if opts.Fabric != nil {
		if opts.Runtime != RuntimeLive {
			return nil, fmt.Errorf("homeo: Options.Fabric (multi-process) requires RuntimeLive")
		}
		if n := len(opts.Fabric.Peers); n < 1 {
			return nil, fmt.Errorf("homeo: Options.Fabric.Peers must name every site")
		} else if opts.Sites != 0 && opts.Sites != n {
			return nil, fmt.Errorf("homeo: Sites (%d) disagrees with len(Fabric.Peers) (%d)", opts.Sites, n)
		} else {
			opts.Sites = n
		}
		if opts.Fabric.Site < 0 || opts.Fabric.Site >= opts.Sites {
			return nil, fmt.Errorf("homeo: Fabric.Site %d out of range [0,%d)", opts.Fabric.Site, opts.Sites)
		}
	}
	if opts.Topology == nil {
		if opts.Sites == 0 {
			opts.Sites = 2
		}
		if opts.Sites < 1 {
			return nil, fmt.Errorf("homeo: Sites must be positive")
		}
		if opts.RTT == 0 {
			opts.RTT = 50 * time.Millisecond
		}
		opts.Topology = Uniform(opts.Sites, opts.RTT)
	}
	opts.Sites = opts.Topology.NSites()
	if opts.Fabric != nil && len(opts.Fabric.Peers) != opts.Sites {
		return nil, fmt.Errorf("homeo: topology has %d sites but Fabric.Peers names %d", opts.Sites, len(opts.Fabric.Peers))
	}
	if opts.MaxInflight == 0 {
		opts.MaxInflight = 1024
	}
	reg, err := workload.NewRegistry(opts.Workload, opts.Sites)
	if err != nil {
		return nil, err
	}
	c := &Cluster{
		opts:      opts,
		reg:       reg,
		artifacts: workload.NewArtifactCache(),
		classes:   make(map[string]*TxnClass),
		rng:       rand.New(rand.NewSource(opts.Seed + 101)),
		start:     wallClock(),
	}
	sysOpts := homeostasis.Options{
		Mode:           opts.Mode,
		Alloc:          opts.Alloc,
		Topo:           opts.Topology,
		CPUPerSite:     opts.CPUPerSite,
		LocalExecTime:  rt.Duration(opts.LocalExecTime),
		LockTimeout:    rt.Duration(opts.LockTimeout),
		ClientsPerSite: opts.ClientsPerSite,
		Warmup:         rt.Duration(opts.Warmup),
		Measure:        rt.Duration(opts.Measure),
		Seed:           opts.Seed,
		EnableLog:      opts.EnableLog,
		WALDir:         opts.WAL.Dir,
		WALSync:        opts.WAL.Sync,
	}
	switch opts.Runtime {
	case RuntimeSim:
		c.sim = sim.NewEngine(opts.Seed)
		c.eng = c.sim
	case RuntimeLive:
		c.live = rtlive.New(opts.Seed)
		c.eng = c.live
		// The cleanup phase's consolidated T' executions are real work on
		// the live runtime: charge a CPU slot and the service time (the
		// simulator keeps the paper's seed model so experiment goldens
		// hold).
		sysOpts.CleanupExec = true
	default:
		return nil, fmt.Errorf("homeo: unknown runtime kind %d", opts.Runtime)
	}
	sys, err := homeostasis.New(c.eng, reg, sysOpts)
	if err != nil {
		return nil, err
	}
	c.sys = sys
	if f := opts.Fabric; f != nil {
		// Multi-process: this process owns one site; peer messages ride
		// the HTTP fabric. The peer endpoints are served by
		// homeo/httpapi's /v1/peer/* mount (PeerHandler).
		ht := fabric.NewHTTP(c.live, f.Site, f.Peers, sys.Node(f.Site), f.Client)
		ht.SetToken(f.Token)
		sys.SetFabric(ht, f.Site)
		// Record the initial membership's addresses so membership WAL
		// records and join admissions can rebuild peer transports.
		sys.SetSiteAddrs(f.Peers)
	}
	if opts.ClientsPerSite == 0 {
		// No closed-loop drive planned: measure from the start (Drive
		// resets the window when used).
		sys.Col.Measuring = true
		sys.Col.Start = c.eng.Now()
	}
	return c, nil
}

// locked runs fn with exclusive access to shared protocol state: under
// the scheduler lock on RuntimeLive, under the cluster mutex on
// RuntimeSim (where at most one submission executes at a time anyway).
func (c *Cluster) locked(fn func()) {
	if c.live != nil {
		c.live.Locked(fn)
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	fn()
}

// Runtime reports the cluster's runtime kind.
func (c *Cluster) Runtime() RuntimeKind { return c.opts.Runtime }

// Sites returns the current membership width: boot sites plus admitted
// joins. Drained sites keep their slots (indexes are never reused), so
// the width only grows; ActiveSites counts the sites accepting work.
// The read is authoritative (under the cluster lock), so on a
// multi-process cluster it reflects joins admitted through the peer
// fabric, not just operations this process initiated.
func (c *Cluster) Sites() (n int) {
	c.locked(func() { n = c.sys.NSites() })
	return n
}

// ActiveSites counts the membership slots currently accepting
// submissions (joined sites included, draining and drained excluded).
func (c *Cluster) ActiveSites() (n int) {
	c.locked(func() { n = c.sys.ActiveSites() })
	return n
}

// Mode returns the execution protocol.
func (c *Cluster) Mode() Mode { return c.opts.Mode }

// WorkloadName names the base workload ("custom" when none).
func (c *Cluster) WorkloadName() string { return c.reg.Name() }

// SelfSite reports the one site this process owns in a multi-process
// deployment, or -1 when every site is in-process.
func (c *Cluster) SelfSite() int {
	if c.opts.Fabric == nil {
		return -1
	}
	return c.opts.Fabric.Site
}

// PeerHandler returns the HTTP handler answering the site fabric's peer
// protocol for this process's site, to mount under /v1/peer/ (httpapi
// does this automatically). Only meaningful on a multi-process cluster;
// nil otherwise.
func (c *Cluster) PeerHandler() http.Handler {
	f := c.opts.Fabric
	if f == nil {
		return nil
	}
	return fabric.NewPeerHandler(c.sys.Node(f.Site), c.locked, f.Token)
}

// PeerToken reports the configured shared peer secret ("" when unset or
// not a multi-process cluster). httpapi uses it to guard the read-only
// peer introspection endpoints with the same credential as the peer
// mutations.
func (c *Cluster) PeerToken() string {
	if c.opts.Fabric == nil {
		return ""
	}
	return c.opts.Fabric.Token
}

// System exposes the underlying protocol engine for advanced embedding
// (experiments, direct rt access). Most callers never need it.
func (c *Cluster) System() *homeostasis.System { return c.sys }

// Recover opens the write-ahead logs under Options.WAL.Dir, replays any
// records found (a restarted process recovers its pre-crash state:
// deterministic reboot plus the logged commits, installs, and treaty
// generations on top), and — on a multi-process cluster — rejoins the
// site fabric: peers fail over any synchronization round the previous
// incarnation was coordinating, and units whose treaty generation moved
// on while this process was down are repaired from the peers' replicated
// state. Returns the number of WAL records recovered.
//
// Call exactly once, after every transaction class is registered and
// before serving traffic; a no-op returning (0, nil) when no WAL is
// configured.
func (c *Cluster) Recover() (int, error) {
	if c.opts.WAL.Dir == "" {
		return 0, nil
	}
	var (
		n   int
		err error
	)
	c.locked(func() {
		n, err = c.sys.OpenWAL(c.opts.WAL.Dir, wal.Options{Sync: c.opts.WAL.Sync})
	})
	if err != nil {
		return n, err
	}
	if n == 0 {
		// Fresh (empty) logs mean a first boot: the deterministic boot
		// state is already correct, and on a cluster whose processes boot
		// in parallel the peers may not even be listening yet.
		return 0, nil
	}
	// The rejoin handshake parks on peer replies, so it needs a process.
	// Recovery may also have replayed membership records (grown width,
	// drained slots), so refresh the routing snapshot after it.
	rejoin := func() error {
		return c.runProc("rejoin handshake", func(p rt.Proc) error {
			return c.sys.RejoinFabric(p)
		})
	}
	rerr := rejoin()
	// On a cluster whose processes restart together, a sibling may not be
	// listening yet when this process announces itself — retry the
	// handshake with backoff instead of failing the boot.
	for wait := 250 * time.Millisecond; rerr != nil && c.live != nil && wait <= 4*time.Second; wait *= 2 {
		time.Sleep(wait)
		rerr = rejoin()
	}
	c.refreshTopo()
	return n, rerr
}

// Drive runs the closed-loop load driver: Options.ClientsPerSite clients
// per site issue requests from the base workload's mix (or the registered
// classes, when there is no base workload) through warm-up plus
// measurement, then returns the collected Stats. On RuntimeSim the run is
// deterministic virtual time; on RuntimeLive it is a real load test.
// Drive must not run concurrently with Submit.
func (c *Cluster) Drive() Stats {
	c.locked(func() {
		// Fresh collector: anything recorded before the drive (boot-time
		// submissions) must not pollute the measured window; Run flips
		// Measuring back on at the warm-up boundary.
		*c.sys.Col = metrics.Collector{}
	})
	c.sys.Run()
	return c.Stats()
}

// BeginMeasure starts a fresh measurement window now: counters and
// latency samples collected so far (e.g. during a warm-up) are
// discarded, so Stats reports only what happens from this instant (the
// commit log for replay checks is unaffected). The serving binary's
// driver calls it after its warm-up.
func (c *Cluster) BeginMeasure() {
	c.locked(func() {
		*c.sys.Col = metrics.Collector{
			Measuring: true,
			Start:     c.eng.Now(),
		}
	})
}

// CheckReplayEquivalence verifies the paper's Theorem 3.8 observational
// equivalence on the recorded commit log (Options.EnableLog must be set):
// applying the committed transactions serially in commit order to the
// initial logical database must reproduce the final consolidated
// database.
func (c *Cluster) CheckReplayEquivalence() (err error) {
	c.locked(func() { err = c.sys.CheckReplayEquivalence() })
	return err
}

// Committed returns the number of commit-log entries (0 unless
// Options.EnableLog).
func (c *Cluster) Committed() (n int) {
	c.locked(func() { n = len(c.sys.CommitLog) })
	return n
}

// Draining reports whether Close has begun.
func (c *Cluster) Draining() bool { return c.draining.Load() }

// Close stops admitting submissions and cancels every in-flight process
// (parked processes are woken into their deferred cleanup). After Close
// returns, no process touches cluster state; Stats and
// CheckReplayEquivalence remain readable.
func (c *Cluster) Close() {
	if c.draining.Swap(true) {
		return
	}
	if c.live != nil {
		c.live.Drain()
	} else {
		c.sim.Drain()
	}
	// Flush and close the write-ahead logs last: every process that could
	// have appended has drained by now.
	c.locked(func() { _ = c.sys.CloseWAL() })
}
