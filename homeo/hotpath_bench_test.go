package homeo_test

import (
	"context"
	"testing"

	"repro/homeo"
	"repro/internal/cluster"
	"repro/internal/homeostasis"
	"repro/internal/micro"
	"repro/internal/rt"
	"repro/internal/rtlive"
	"repro/internal/sim"
	"repro/internal/workload"
)

// BenchmarkSubmitExecCommit measures the serving hot path in isolation:
// one treaty-checked execution (Exec/*) and one full Session.Submit
// round trip (Submit/*), on each runtime. The Exec variants are the
// pooled fast path CI gates at 0 allocs/op: a huge refill keeps the
// treaty from ever being violated, so no iteration enters the cleanup
// phase and every allocation observed belongs to the per-commit path
// itself. Run serially (-benchtime with no -cpu) — the container CI
// uses is 1-core and the numbers in BENCH_hotpath.json are serial.
func BenchmarkSubmitExecCommit(b *testing.B) {
	b.Run("Exec/Sim", benchExecSim)
	b.Run("Exec/Live", benchExecLive)
	b.Run("Submit/Sim", benchSubmitSim)
	b.Run("Submit/Live", benchSubmitLive)
}

// benchWorkload builds the micro workload with an effectively infinite
// refill: site budgets stay far from their treaty bounds for any
// reachable b.N, so the fast path never negotiates.
func benchWorkload(b *testing.B) (*micro.Workload, workload.Request) {
	b.Helper()
	w, err := micro.New(micro.Config{Items: 4, Refill: 1 << 40, NSites: 2})
	if err != nil {
		b.Fatal(err)
	}
	return w, w.MakeRequest([]int{0})
}

func benchExecOpts() homeostasis.Options {
	return homeostasis.Options{
		Mode:           homeostasis.ModeHomeo,
		Topo:           cluster.Uniform(2, 20*rt.Millisecond),
		ClientsPerSite: 1,
		CPUPerSite:     2,
		LocalExecTime:  rt.Microsecond,
		LockTimeout:    100 * rt.Millisecond,
		Seed:           42,
	}
}

func benchExecSim(b *testing.B) {
	w, req := benchWorkload(b)
	eng := sim.NewEngine(1)
	sys, err := homeostasis.New(eng, w, benchExecOpts())
	if err != nil {
		b.Fatal(err)
	}
	var execErr error
	eng.Spawn(0, func(p rt.Proc) {
		for i := 0; i < 64; i++ { // warm pools before the measured window
			if _, err := sys.ExecRequest(p, 0, req); err != nil {
				execErr = err
				return
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sys.ExecRequest(p, 0, req); err != nil {
				execErr = err
				return
			}
		}
	})
	eng.Run()
	if execErr != nil {
		b.Fatal(execErr)
	}
}

func benchExecLive(b *testing.B) {
	w, req := benchWorkload(b)
	live := rtlive.New(1)
	sys, err := homeostasis.New(live, w, benchExecOpts())
	if err != nil {
		b.Fatal(err)
	}
	var execErr error
	done := make(chan struct{})
	live.Spawn(0, func(p rt.Proc) {
		defer close(done)
		for i := 0; i < 64; i++ {
			if _, err := sys.ExecRequest(p, 0, req); err != nil {
				execErr = err
				return
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sys.ExecRequest(p, 0, req); err != nil {
				execErr = err
				return
			}
		}
	})
	<-done
	live.Drain()
	if execErr != nil {
		b.Fatal(execErr)
	}
}

const benchDepositSrc = `
transaction Deposit(n) {
	v := read(acct);
	write(acct = v + n)
}`

// benchCluster builds a 2-site cluster with a guard-free deposit class:
// its treaty is trivially true, so submissions never synchronize and the
// benchmark isolates the submit→exec→commit machinery.
func benchCluster(b *testing.B, kind homeo.RuntimeKind) (*homeo.Cluster, *homeo.TxnClass) {
	b.Helper()
	c, err := homeo.New(homeo.Options{Runtime: kind, Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(c.Close)
	cls, err := c.Register(homeo.ClassSpec{
		L:       benchDepositSrc,
		Bounds:  map[string][2]int64{"n": {1, 5}},
		Initial: map[string]int64{"acct": 0},
	})
	if err != nil {
		b.Fatal(err)
	}
	return c, cls
}

func benchSubmit(b *testing.B, kind homeo.RuntimeKind) {
	c, cls := benchCluster(b, kind)
	sess := c.Session()
	ctx := context.Background()
	for i := 0; i < 64; i++ {
		if _, err := sess.Submit(ctx, cls, 1); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sess.Submit(ctx, cls, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func benchSubmitSim(b *testing.B)  { benchSubmit(b, homeo.RuntimeSim) }
func benchSubmitLive(b *testing.B) { benchSubmit(b, homeo.RuntimeLive) }
