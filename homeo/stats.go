package homeo

import (
	"context"
	"time"

	"repro/internal/homeostasis"
)

// StoreStats aggregates a 2PL store's counters.
type StoreStats struct {
	Commits   int64
	Aborts    int64
	Deadlocks int64
	Timeouts  int64
}

func fromStoreStats(s homeostasis.StoreStats) StoreStats {
	return StoreStats{Commits: s.Commits, Aborts: s.Aborts, Deadlocks: s.Deadlocks, Timeouts: s.Timeouts}
}

// Stats is a point-in-time snapshot of the cluster's measurements: the
// same collector the paper's experiments report from, plus per-site store
// counters.
type Stats struct {
	Workload string
	Mode     string
	Alloc    string
	Runtime  string
	Sites    int
	Classes  []string
	// Uptime is wall-clock time since New.
	Uptime time.Duration

	Committed         int64
	Synced            int64
	ConflictAborts    int64
	Dropped           int64
	Livelocked        int64
	TreatyGenFailures int64
	CoWinnerCommits   int64

	// SyncRatioPct is the percentage of commits that required a
	// synchronization round.
	SyncRatioPct float64
	// Throughput is committed transactions per second of runtime time
	// over the current measurement window.
	Throughput float64

	LatencyP50  time.Duration
	LatencyP90  time.Duration
	LatencyP99  time.Duration
	LatencyMax  time.Duration
	LatencyMean time.Duration

	// Negotiations counts the cleanup rounds this process coordinated in
	// the measurement window; NegotiationP50/P99 are percentiles of their
	// communication cost (the two peer message rounds). FabricErrors
	// counts site-fabric degradations (failed peer installs, expired
	// round grants).
	Negotiations   int64
	NegotiationP50 time.Duration
	NegotiationP99 time.Duration
	FabricErrors   int64

	// RoundsAdopted and RoundsAborted count coordinator-failover outcomes:
	// synchronization rounds whose coordinator died mid-round and whose
	// grant this process resolved by adopting the decided winner or by
	// aborting the round. RecoveredWALRecords is the number of
	// write-ahead-log records replayed by Recover at boot.
	RoundsAdopted       int64
	RoundsAborted       int64
	RecoveredWALRecords int64

	// AnalysisCacheHits and AnalysisCacheMisses count class registrations
	// that reused a cached analysis (symbolic table and guard
	// preprocessing from an isomorphic class) versus built one from
	// scratch. SolverWarmStarts and SolverFallbacks count treaty
	// negotiations that succeeded from the previous configuration versus
	// fell back to a full solve.
	AnalysisCacheHits   int64
	AnalysisCacheMisses int64
	SolverWarmStarts    int64
	SolverFallbacks     int64

	// Store aggregates the per-site counters; PerSite lists them.
	Store   StoreStats
	PerSite []StoreStats

	// TopologyEpoch is this process's membership epoch: bumped on every
	// join admission and drain completion it observes. Clients use a bump
	// as a cue to refresh their site list. ActiveSites counts membership
	// slots accepting submissions; SiteStatus lists every slot's status
	// ("active", "draining", "gone") indexed by site, and SiteAddrs the
	// known peer base URLs ("" in-process).
	TopologyEpoch int64
	ActiveSites   int
	SiteStatus    []string
	SiteAddrs     []string
}

// Stats snapshots the cluster's measurements. It is strictly read-only —
// safe to call repeatedly on a serving cluster.
func (c *Cluster) Stats() Stats {
	st := Stats{
		Workload: c.reg.Name(),
		Mode:     c.opts.Mode.String(),
		Alloc:    c.opts.Alloc.String(),
		Runtime:  c.opts.Runtime.String(),
		Classes:  c.Classes(),
		Uptime:   wallClock().Sub(c.start),
	}
	c.locked(func() {
		st.Sites = c.sys.NSites()
		st.TopologyEpoch = c.sys.Epoch()
		st.ActiveSites = c.sys.ActiveSites()
		st.SiteStatus = make([]string, st.Sites)
		for k := 0; k < st.Sites; k++ {
			st.SiteStatus[k] = c.sys.SiteStatusName(k)
		}
		st.SiteAddrs = c.sys.SiteAddrs()
		snap := c.sys.Col.SnapshotAt(c.eng.Now())
		st.Committed = snap.Committed
		st.Synced = snap.Synced
		st.ConflictAborts = snap.ConflictAborts
		st.Dropped = snap.Dropped
		st.Livelocked = snap.Livelocked
		st.TreatyGenFailures = snap.TreatyGenFailures
		st.CoWinnerCommits = snap.CoWinnerCommits
		st.SyncRatioPct = snap.SyncRatioPct
		st.Throughput = snap.Throughput
		if c.sys.Col.End > c.sys.Col.Start {
			// A closed measurement window (after Drive): report its rate
			// instead of a rolling one that decays with wall time.
			st.Throughput = c.sys.Col.Throughput()
		}
		st.LatencyP50 = time.Duration(snap.LatencyP50)
		st.LatencyP90 = time.Duration(snap.LatencyP90)
		st.LatencyP99 = time.Duration(snap.LatencyP99)
		st.LatencyMax = time.Duration(snap.LatencyMax)
		st.LatencyMean = time.Duration(snap.LatencyMean)
		st.Negotiations = snap.Negotiations
		st.NegotiationP50 = time.Duration(snap.NegLatencyP50)
		st.NegotiationP99 = time.Duration(snap.NegLatencyP99)
		st.FabricErrors = snap.FabricErrors
		st.RoundsAdopted = snap.RoundsAdopted
		st.RoundsAborted = snap.RoundsAborted
		st.RecoveredWALRecords = c.sys.RecoveredRecords
		st.AnalysisCacheHits = snap.AnalysisCacheHits
		st.AnalysisCacheMisses = snap.AnalysisCacheMisses
		st.SolverWarmStarts = snap.SolverWarmStarts
		st.SolverFallbacks = snap.SolverFallbacks
		st.Store = fromStoreStats(c.sys.StoreStats())
		for _, s := range c.sys.SiteStats() {
			st.PerSite = append(st.PerSite, fromStoreStats(s))
		}
	})
	return st
}

// WatchStats streams snapshots every interval until the context is
// cancelled (then the channel closes). Intended for live clusters; on the
// simulator the numbers only move while something drives the engine.
func (c *Cluster) WatchStats(ctx context.Context, interval time.Duration) <-chan Stats {
	if interval <= 0 {
		interval = time.Second
	}
	ch := make(chan Stats, 1)
	go func() {
		defer close(ch)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				select {
				case ch <- c.Stats():
				case <-ctx.Done():
					return
				}
			}
		}
	}()
	return ch
}
