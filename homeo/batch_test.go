package homeo_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/homeo"
)

// TestRegisterBatch: a batch registers atomically, every class is
// immediately submittable, and isomorphic members are served from the
// analysis cache (visible through Stats).
func TestRegisterBatch(t *testing.T) {
	c := simCluster(t, homeo.Options{})
	specs := make([]homeo.ClassSpec, 6)
	for i := range specs {
		specs[i] = homeo.ClassSpec{
			L: fmt.Sprintf(`transaction Wd%d(n) {
				v := read(item%d);
				if (v - n > 0) then write(item%d = v - n) else skip
			}`, i, i, i),
			Bounds:  map[string][2]int64{"n": {1, 5}},
			Initial: map[string]int64{fmt.Sprintf("item%d", i): 1000},
		}
	}
	ts, err := c.RegisterBatch(specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != len(specs) {
		t.Fatalf("registered %d classes, want %d", len(ts), len(specs))
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	sess := c.Session()
	for i, cls := range ts {
		if got, want := cls.Name(), fmt.Sprintf("Wd%d", i); got != want {
			t.Fatalf("class %d named %q, want %q", i, got, want)
		}
		res, err := sess.Submit(ctx, cls, 2)
		if err != nil {
			t.Fatalf("submit %s: %v", cls.Name(), err)
		}
		if !res.Committed {
			t.Fatalf("submit %s: not committed", cls.Name())
		}
	}
	st := c.Stats()
	// The six classes are isomorphic: one scratch build, five cache hits.
	if st.AnalysisCacheMisses != 1 || st.AnalysisCacheHits != 5 {
		t.Fatalf("analysis cache hits=%d misses=%d, want 5/1",
			st.AnalysisCacheHits, st.AnalysisCacheMisses)
	}
}

// TestRegisterBatchAtomic: one bad class in the batch rejects the whole
// batch — nothing registers, and the same names register cleanly after.
func TestRegisterBatchAtomic(t *testing.T) {
	c := simCluster(t, homeo.Options{})
	specs := []homeo.ClassSpec{
		{L: depositSrc, Initial: map[string]int64{"acct": 100}},
		{L: "transaction Broken(n) { v := read(", Bounds: map[string][2]int64{"n": {1, 2}}},
	}
	if _, err := c.RegisterBatch(specs); err == nil {
		t.Fatal("batch with a broken class registered")
	}
	if got := c.Classes(); len(got) != 0 {
		t.Fatalf("partial registration survived the failed batch: %v", got)
	}
	// A duplicate inside the batch must also reject atomically — the
	// first copy's installation is rolled back.
	dup := []homeo.ClassSpec{
		{L: depositSrc, Initial: map[string]int64{"acct": 100}},
		{L: depositSrc, Initial: map[string]int64{"acct": 100}},
	}
	if _, err := c.RegisterBatch(dup); err == nil {
		t.Fatal("batch with a duplicate class registered")
	}
	if got := c.Classes(); len(got) != 0 {
		t.Fatalf("partial registration survived the duplicate batch: %v", got)
	}
	if _, err := c.Register(homeo.ClassSpec{L: depositSrc, Initial: map[string]int64{"acct": 100}}); err != nil {
		t.Fatalf("clean registration after failed batches: %v", err)
	}
}
