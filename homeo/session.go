package homeo

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/rt"
	"repro/internal/workload"
)

// Session submits transactions to the cluster. Sessions are cheap and
// safe for concurrent use; a session created without a site spreads its
// submissions round-robin across sites.
type Session struct {
	c    *Cluster
	site int // -1 = round-robin
}

// Session returns a round-robin session.
func (c *Cluster) Session() *Session { return &Session{c: c, site: -1} }

// SessionAt returns a session pinned to one site (a client talking to its
// local replica). On a multi-process cluster only the process's own site
// accepts submissions — clients reach other sites through their own
// processes.
func (c *Cluster) SessionAt(site int) (*Session, error) {
	if n := c.Sites(); site < 0 || site >= n {
		return nil, fmt.Errorf("homeo: site %d out of range [0,%d)", site, n)
	}
	if self := c.SelfSite(); self >= 0 && site != self {
		return nil, fmt.Errorf("homeo: site %d is served by another process (this process owns site %d)", site, self)
	}
	return &Session{c: c, site: site}, nil
}

// Result is the observable outcome of one submission.
type Result struct {
	// Class names the transaction class ("" for base-workload draws until
	// the draw resolves its request name).
	Class string
	// Args are the invocation arguments.
	Args []int64
	// Site is the executing site.
	Site int
	// Committed reports whether the transaction's effects are installed.
	Committed bool
	// Synced reports whether committing required a treaty
	// synchronization round.
	Synced bool
	// Latency is the submission's runtime latency (virtual on
	// RuntimeSim).
	Latency time.Duration
	// Log is the transaction's observable print log (SELECT results for
	// SQL classes).
	Log []int64
}

// Submit executes one invocation of a registered class and waits for its
// outcome. On RuntimeLive the context's deadline/cancellation is honored:
// when it fires first, Submit returns ErrTimeout while the transaction
// finishes in the background (it may still commit). On RuntimeSim the
// submission runs to completion in virtual time and the context is
// checked only on entry.
//
// Errors are classified by the package taxonomy: ErrDropped (cluster
// draining or MaxInflight reached — never started), ErrLivelocked
// (retry budget exhausted), ErrTimeout, ErrAborted.
//
//homeo:hotpath
func (s *Session) Submit(ctx context.Context, class *TxnClass, args ...int64) (Result, error) {
	if class == nil {
		return Result{}, errNilClass
	}
	if class.c != s.c {
		return Result{}, errForeignClass(class.Name())
	}
	var (
		req workload.Request
		err error
	)
	s.c.locked(func() {
		req, err = s.c.reg.Request(class.wc, args)
	})
	if err != nil {
		return Result{}, wrapAborted(err)
	}
	return s.submit(ctx, req)
}

// Cold-path error constructors, kept out of the //homeo:hotpath body:
// formatting allocates, and these run only on rejected submissions.

var errNilClass = fmt.Errorf("%w: nil class", ErrAborted)

func errForeignClass(name string) error {
	return fmt.Errorf("%w: class %s belongs to a different cluster", ErrAborted, name)
}

func wrapAborted(err error) error { return fmt.Errorf("%w: %v", ErrAborted, err) }

// SubmitMix draws the next request from the base workload's mix (or a
// random registered class when the cluster has no base workload) and
// executes it — the serving path for benchmark-style traffic.
func (s *Session) SubmitMix(ctx context.Context) (Result, error) {
	site := s.pickSite()
	var (
		req   workload.Request
		empty bool
	)
	s.c.locked(func() {
		if !s.c.reg.CanDraw() {
			empty = true
			return
		}
		req = s.c.reg.Next(s.c.rng, site)
	})
	if empty {
		return Result{}, fmt.Errorf("%w: cluster has no base workload and no registered classes to draw from", ErrAborted)
	}
	return s.submitAt(ctx, site, req)
}

func (s *Session) pickSite() int {
	if s.site >= 0 {
		return s.site
	}
	if self := s.c.SelfSite(); self >= 0 {
		// Multi-process: this process executes only its own site.
		return self
	}
	// Round-robin over the current membership, skipping drained sites
	// (the lock-free topology snapshot is refreshed by every membership
	// operation). If every slot is inactive, fall through and let the
	// protocol layer refuse with its fence error.
	v := s.c.topoSnapshot()
	for try := 0; try < v.width; try++ {
		site := int(s.c.nextSite.Add(1)-1) % v.width
		if v.active[site] {
			return site
		}
	}
	return int(s.c.nextSite.Add(1)-1) % v.width
}

func (s *Session) submit(ctx context.Context, req workload.Request) (Result, error) {
	return s.submitAt(ctx, s.pickSite(), req)
}

// pendingSub is one in-flight submission's state, pooled so the steady
// Submit path reuses the completion channel, the spawned body closure
// (a method value bound once), and the result scratch. A sub returns to
// the pool only on paths where the body has fully finished (the done
// signal is sent after every other field write); abandoned bodies
// (context timeout, sim deadlock drain) keep their sub and leave it to
// the garbage collector.
type pendingSub struct {
	c        *Cluster
	site     int
	req      workload.Request
	res      Result
	execErr  error
	done     chan struct{} // buffered(1): body sends, waiter receives
	released atomic.Bool
	bodyFn   func(rt.Proc)
}

var subPool = sync.Pool{New: func() any {
	sub := &pendingSub{done: make(chan struct{}, 1)}
	sub.bodyFn = sub.body
	return sub
}}

// release frees the cluster's inflight slot exactly once: normally from
// the process body, but also from the sim deadlock path (whose abandoned
// process may still run its deferred release when Close drains it).
func (sub *pendingSub) release() {
	if sub.released.CompareAndSwap(false, true) {
		sub.c.inflight.Add(-1)
	}
}

func (sub *pendingSub) body(p rt.Proc) {
	defer func() { sub.done <- struct{}{} }()
	defer sub.release()
	c := sub.c
	start := p.Now()
	out, err := c.sys.ExecRequest(p, sub.site, sub.req)
	sub.res.Latency = time.Duration(p.Now() - start)
	if err != nil {
		sub.execErr = classifyExec(err)
		c.sys.Col.RecordDropped()
		return
	}
	sub.res.Committed = out.Committed
	sub.res.Synced = out.Synced
	sub.res.Log = out.Log
	if out.Committed {
		c.sys.Col.RecordCommit(rt.Duration(sub.res.Latency), out.Synced)
	}
}

// recycle returns a sub whose body has fully finished to the pool,
// dropping references the next submission must not retain.
func (sub *pendingSub) recycle() {
	sub.c = nil
	sub.req = workload.Request{}
	sub.res = Result{}
	sub.execErr = nil
	subPool.Put(sub)
}

// submitAt runs the request at the given site under the cluster's
// runtime, recording the outcome in the metrics collector exactly like
// the closed-loop client path.
func (s *Session) submitAt(ctx context.Context, site int, req workload.Request) (Result, error) {
	c := s.c
	if c.Draining() {
		return Result{}, fmt.Errorf("%w: cluster is draining", ErrDropped)
	}
	if err := ctx.Err(); err != nil {
		return Result{}, fmt.Errorf("%w: %v", ErrTimeout, err)
	}
	if n := c.inflight.Add(1); n > int64(c.opts.MaxInflight) {
		c.inflight.Add(-1)
		return Result{}, fmt.Errorf("%w: %d submissions in flight (MaxInflight %d)",
			ErrDropped, n-1, c.opts.MaxInflight)
	}

	sub := subPool.Get().(*pendingSub)
	sub.c, sub.site, sub.req = c, site, req
	sub.res = Result{Class: req.Name, Args: req.Args, Site: site}
	sub.execErr = nil
	sub.released.Store(false)
	id := int(c.nextID.Add(1))

	if c.sim != nil {
		// Deterministic path: run the submission to completion in virtual
		// time. c.mu serializes submissions (the engine is single-run).
		c.mu.Lock()
		defer c.mu.Unlock()
		c.sim.SetDeadline(0)
		c.sim.Spawn(id, sub.bodyFn)
		c.sim.Run()
		select {
		case <-sub.done:
		default:
			sub.release()
			// The parked body still references sub: do not recycle.
			return Result{}, fmt.Errorf("%w: submission parked with no pending event (deadlocked request)", ErrAborted)
		}
		res, execErr := sub.res, sub.execErr
		sub.recycle()
		return res, execErr
	}

	if !c.live.SpawnOK(id, sub.bodyFn) {
		sub.release()
		sub.recycle() // never spawned: nothing references sub
		return Result{}, fmt.Errorf("%w: cluster is draining", ErrDropped)
	}
	select {
	case <-sub.done:
		res, execErr := sub.res, sub.execErr
		sub.recycle()
		return res, execErr
	case <-ctx.Done():
		// The process keeps running (and keeps its metrics accounting);
		// only this caller stops waiting. It still holds sub: do not
		// recycle.
		//homeo:leak abandoned sub stays with its running body; GC reclaims it
		return Result{}, fmt.Errorf("%w: %v", ErrTimeout, ctx.Err())
	}
}
