package homeo_test

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/homeo"
	"repro/internal/micro"
)

const depositSrc = `
transaction Deposit(n) {
	v := read(acct);
	write(acct = v + n)
}`

const withdrawSrc = `
transaction Withdraw(n) {
	v := read(bal);
	if (v - n > 0) then
		write(bal = v - n)
	else
		skip
}`

const restockSQL = `
CREATE TABLE inv (item, qty) SIZE 4
UPDATE inv SET qty = qty + @d WHERE item = @k
SELECT SUM(qty) FROM inv WHERE item = @k
`

func simCluster(t *testing.T, opts homeo.Options) *homeo.Cluster {
	t.Helper()
	opts.Runtime = homeo.RuntimeSim
	if opts.Seed == 0 {
		opts.Seed = 7
	}
	c, err := homeo.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// TestRegisterAndSubmitSim: an L class never seen at compile time runs on
// the simulator with treaties generated online.
func TestRegisterAndSubmitSim(t *testing.T) {
	c := simCluster(t, homeo.Options{EnableLog: true})
	cls, err := c.Register(homeo.ClassSpec{
		L:       depositSrc,
		Bounds:  map[string][2]int64{"n": {1, 5}},
		Initial: map[string]int64{"acct": 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	if cls.Name() != "Deposit" {
		t.Fatalf("name = %q", cls.Name())
	}
	sess := c.Session()
	ctx := context.Background()
	for i := 0; i < 20; i++ {
		res, err := sess.Submit(ctx, cls, int64(1+i%5))
		if err != nil {
			t.Fatal(err)
		}
		if !res.Committed {
			t.Fatalf("submission %d not committed", i)
		}
	}
	if err := c.CheckReplayEquivalence(); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Committed != 20 {
		t.Fatalf("stats.Committed = %d", st.Committed)
	}
	if len(st.Classes) != 1 || st.Classes[0] != "Deposit" {
		t.Fatalf("stats.Classes = %v", st.Classes)
	}
	if got := c.Class("Deposit"); got != cls {
		t.Fatal("Class lookup failed")
	}
}

// TestSubmitDeterministicOnSim: identical clusters produce identical
// submission outcomes (virtual-time latencies included).
func TestSubmitDeterministicOnSim(t *testing.T) {
	run := func() []homeo.Result {
		c := simCluster(t, homeo.Options{Seed: 11})
		cls, err := c.Register(homeo.ClassSpec{
			L:      withdrawSrc,
			Bounds: map[string][2]int64{"n": {1, 5}},
			Initial: map[string]int64{
				"bal": 40,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		var out []homeo.Result
		for i := 0; i < 30; i++ {
			res, err := c.Session().Submit(context.Background(), cls, int64(1+i%5))
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, res)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i].Site != b[i].Site || a[i].Synced != b[i].Synced || a[i].Latency != b[i].Latency {
			t.Fatalf("run diverged at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestSQLClassBothRuntimes drives the full SQL path — sqlfront → lang →
// symtab → treaty generation → execution — for a client-registered class
// on both runtimes, checking SELECT logs and replay equivalence.
func TestSQLClassBothRuntimes(t *testing.T) {
	for _, kind := range []homeo.RuntimeKind{homeo.RuntimeSim, homeo.RuntimeLive} {
		t.Run(kind.String(), func(t *testing.T) {
			opts := homeo.Options{
				Runtime:   kind,
				Seed:      3,
				EnableLog: true,
			}
			if kind == homeo.RuntimeLive {
				opts.RTT = 5 * time.Millisecond
				opts.LocalExecTime = 100 * time.Microsecond
			}
			c, err := homeo.New(opts)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			cls, err := c.Register(homeo.ClassSpec{
				Name:   "Restock",
				SQL:    restockSQL,
				Bounds: map[string][2]int64{"d": {1, 3}, "k": {1, 4}},
				Rows:   map[string][][]int64{"inv": {{1, 10}, {2, 20}}},
			})
			if err != nil {
				t.Fatal(err)
			}
			want := map[int64]int64{1: 10, 2: 20}
			ctx := context.Background()
			for i := 0; i < 40; i++ {
				k := int64(1 + i%2)
				d := int64(1 + i%3)
				res, err := c.Session().Submit(ctx, cls, d, k)
				if err != nil {
					t.Fatal(err)
				}
				want[k] += d
				if len(res.Log) != 1 || res.Log[0] != want[k] {
					t.Fatalf("txn %d: SELECT log = %v, want [%d]", i, res.Log, want[k])
				}
			}
			if err := c.CheckReplayEquivalence(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestLClassOnLive: treaties generated online on the wall-clock runtime,
// driven concurrently.
func TestLClassOnLive(t *testing.T) {
	c, err := homeo.New(homeo.Options{
		Runtime:       homeo.RuntimeLive,
		RTT:           5 * time.Millisecond,
		LocalExecTime: 100 * time.Microsecond,
		EnableLog:     true,
		Seed:          5,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cls, err := c.Register(homeo.ClassSpec{
		L:       withdrawSrc,
		Bounds:  map[string][2]int64{"n": {1, 5}},
		Initial: map[string]int64{"bal": 500},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	errc := make(chan error, 4)
	for g := 0; g < 4; g++ {
		go func(g int) {
			sess, err := c.SessionAt(g % 2)
			if err != nil {
				errc <- err
				return
			}
			for i := 0; i < 25; i++ {
				if _, err := sess.Submit(ctx, cls, int64(1+i%5)); err != nil {
					errc <- err
					return
				}
			}
			errc <- nil
		}(g)
	}
	for g := 0; g < 4; g++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
	if err := c.CheckReplayEquivalence(); err != nil {
		t.Fatal(err)
	}
	if got := c.Committed(); got != 100 {
		t.Fatalf("committed %d of 100", got)
	}
}

// TestErrorTaxonomy exercises the structured errors.
func TestErrorTaxonomy(t *testing.T) {
	ctx := context.Background()

	t.Run("aborted on arity", func(t *testing.T) {
		c := simCluster(t, homeo.Options{})
		cls, err := c.Register(homeo.ClassSpec{L: depositSrc})
		if err != nil {
			t.Fatal(err)
		}
		_, err = c.Session().Submit(ctx, cls) // missing n
		if !errors.Is(err, homeo.ErrAborted) {
			t.Fatalf("err = %v, want ErrAborted", err)
		}
		if homeo.ErrorCode(err) != "aborted" {
			t.Fatalf("code = %q", homeo.ErrorCode(err))
		}
	})

	t.Run("dropped when draining", func(t *testing.T) {
		c := simCluster(t, homeo.Options{})
		cls, err := c.Register(homeo.ClassSpec{L: depositSrc})
		if err != nil {
			t.Fatal(err)
		}
		c.Close()
		if _, err := c.Session().Submit(ctx, cls, 1); !errors.Is(err, homeo.ErrDropped) {
			t.Fatalf("err = %v, want ErrDropped", err)
		}
		if _, err := c.Register(homeo.ClassSpec{L: withdrawSrc}); !errors.Is(err, homeo.ErrDropped) {
			t.Fatalf("register err = %v, want ErrDropped", err)
		}
	})

	t.Run("timeout on live", func(t *testing.T) {
		c, err := homeo.New(homeo.Options{
			Runtime: homeo.RuntimeLive,
			RTT:     50 * time.Millisecond,
			Seed:    9,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		cls, err := c.Register(homeo.ClassSpec{
			L:       depositSrc,
			Initial: map[string]int64{"acct": 1},
		})
		if err != nil {
			t.Fatal(err)
		}
		tctx, cancel := context.WithTimeout(ctx, time.Microsecond)
		defer cancel()
		_, err = c.Session().Submit(tctx, cls, 1)
		if !errors.Is(err, homeo.ErrTimeout) {
			t.Fatalf("err = %v, want ErrTimeout", err)
		}
		if homeo.ErrorCode(err) != "timeout" {
			t.Fatalf("code = %q", homeo.ErrorCode(err))
		}
	})

	t.Run("dropped on overflow", func(t *testing.T) {
		c, err := homeo.New(homeo.Options{
			Runtime: homeo.RuntimeLive,
			RTT:     20 * time.Millisecond,
			// One submission at a time; its slow local execution holds the
			// slot long enough for the overflow probe.
			MaxInflight:   1,
			LocalExecTime: 2 * time.Second,
			Seed:          9,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		cls, err := c.Register(homeo.ClassSpec{L: depositSrc, Initial: map[string]int64{"acct": 1}})
		if err != nil {
			t.Fatal(err)
		}
		// Saturate the single slot (the 2s local execution holds it),
		// then overflow with a second submission.
		started := make(chan struct{})
		go func() {
			close(started)
			c.Session().Submit(ctx, cls, 1)
		}()
		<-started
		time.Sleep(200 * time.Millisecond)
		_, err = c.Session().Submit(ctx, cls, 1)
		if !errors.Is(err, homeo.ErrDropped) {
			t.Fatalf("err = %v, want ErrDropped", err)
		}
		if homeo.ErrorCode(err) != "dropped" {
			t.Fatalf("code = %q", homeo.ErrorCode(err))
		}
	})
}

// TestRegisterValidation covers spec errors.
func TestRegisterValidation(t *testing.T) {
	c := simCluster(t, homeo.Options{})
	cases := []struct {
		name string
		spec homeo.ClassSpec
	}{
		{"no source", homeo.ClassSpec{}},
		{"two sources", homeo.ClassSpec{L: depositSrc, SQL: restockSQL, Name: "X"}},
		{"sql without name", homeo.ClassSpec{SQL: restockSQL}},
		{"name mismatch", homeo.ClassSpec{L: depositSrc, Name: "Other"}},
		{"rows for L class", homeo.ClassSpec{L: depositSrc, Rows: map[string][][]int64{"t": {{1}}}}},
		{"unknown table rows", homeo.ClassSpec{Name: "R", SQL: restockSQL, Rows: map[string][][]int64{"zzz": {{1, 2}}}}},
		{"zero key row", homeo.ClassSpec{Name: "R", SQL: restockSQL, Rows: map[string][][]int64{"inv": {{0, 5}}}}},
		{"bound for unknown param", homeo.ClassSpec{L: depositSrc, Bounds: map[string][2]int64{"zz": {0, 1}}}},
	}
	for _, tc := range cases {
		if _, err := c.Register(tc.spec); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	if _, err := c.Register(homeo.ClassSpec{L: depositSrc}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Register(homeo.ClassSpec{L: depositSrc}); err == nil {
		t.Error("duplicate accepted")
	}
}

// TestBaseWorkloadMix: a cluster seeded with the micro benchmark serves
// mix draws and registered classes side by side.
func TestBaseWorkloadMix(t *testing.T) {
	w, err := micro.New(micro.Config{Items: 20, Refill: 100, NSites: 2})
	if err != nil {
		t.Fatal(err)
	}
	c := simCluster(t, homeo.Options{Workload: w, EnableLog: true})
	cls, err := c.Register(homeo.ClassSpec{L: depositSrc, Initial: map[string]int64{"acct": 5}})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		if _, err := c.Session().SubmitMix(ctx); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Session().Submit(ctx, cls, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.CheckReplayEquivalence(); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Committed != 20 {
		t.Fatalf("committed = %d", st.Committed)
	}
	if st.Workload != "micro" {
		t.Fatalf("workload = %q", st.Workload)
	}
}

// TestDriveSim: the closed-loop driver on the simulator matches the
// experiments' code path and stays deterministic.
func TestDriveSim(t *testing.T) {
	run := func() homeo.Stats {
		w, err := micro.New(micro.Config{Items: 50, Refill: 100, NSites: 2})
		if err != nil {
			t.Fatal(err)
		}
		c := simCluster(t, homeo.Options{
			Workload:       w,
			Seed:           2,
			ClientsPerSite: 4,
			Warmup:         500 * time.Millisecond,
			Measure:        2 * time.Second,
			EnableLog:      true,
		})
		st := c.Drive()
		if err := c.CheckReplayEquivalence(); err != nil {
			t.Fatal(err)
		}
		return st
	}
	a, b := run(), run()
	if a.Committed == 0 {
		t.Fatal("no commits")
	}
	if a.Committed != b.Committed || a.Synced != b.Synced || a.LatencyP90 != b.LatencyP90 {
		t.Fatalf("nondeterministic drive: %+v vs %+v", a, b)
	}
}

// TestTreatiesIntrospection: registered classes expose their analysis.
func TestTreatiesIntrospection(t *testing.T) {
	c := simCluster(t, homeo.Options{})
	cls, err := c.Register(homeo.ClassSpec{
		L:       withdrawSrc,
		Bounds:  map[string][2]int64{"n": {1, 5}},
		Initial: map[string]int64{"bal": 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	if pinned, why := cls.Pinned(); pinned {
		t.Fatalf("withdraw pinned: %s", why)
	}
	if cls.SymbolicTable() == "" {
		t.Fatal("no symbolic table")
	}
	tr := cls.Treaties()
	if len(tr) != 2 {
		t.Fatalf("treaties = %v, want one per site", tr)
	}
	if objs := cls.Objects(); len(objs) != 1 || objs[0] != "bal" {
		t.Fatalf("objects = %v", objs)
	}
	if ps := cls.Params(); len(ps) != 1 || ps[0] != "n" {
		t.Fatalf("params = %v", ps)
	}
}

// TestWatchStats: the stream delivers snapshots and closes on cancel.
func TestWatchStats(t *testing.T) {
	c, err := homeo.New(homeo.Options{Runtime: homeo.RuntimeLive, RTT: time.Millisecond, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithCancel(context.Background())
	ch := c.WatchStats(ctx, 50*time.Millisecond)
	select {
	case st, ok := <-ch:
		if !ok {
			t.Fatal("channel closed early")
		}
		if st.Sites != 2 {
			t.Fatalf("sites = %d", st.Sites)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no snapshot")
	}
	cancel()
	for range ch {
	}
}

// ExampleCluster demonstrates the embeddable API end to end.
func ExampleCluster() {
	c, err := homeo.New(homeo.Options{Runtime: homeo.RuntimeSim, Sites: 2, Seed: 1})
	if err != nil {
		panic(err)
	}
	defer c.Close()
	cls, err := c.Register(homeo.ClassSpec{
		L: `
transaction Order(n) {
	v := read(stock);
	if (v - n > 0) then
		write(stock = v - n)
	else
		skip
}`,
		Bounds:  map[string][2]int64{"n": {1, 3}},
		Initial: map[string]int64{"stock": 90},
	})
	if err != nil {
		panic(err)
	}
	res, err := c.Session().Submit(context.Background(), cls, 2)
	if err != nil {
		panic(err)
	}
	fmt.Println("committed:", res.Committed, "synced:", res.Synced)
	// Output: committed: true synced: false
}

// TestFabricOptionsValidation pins the multi-process construction
// contract: live runtime only, peers fix the width, site in range, and
// sessions pin to the owned site.
func TestFabricOptionsValidation(t *testing.T) {
	peers := []string{"http://a:1", "http://b:2", "http://c:3"}
	if _, err := homeo.New(homeo.Options{Runtime: homeo.RuntimeSim, Fabric: &homeo.FabricOptions{Site: 0, Peers: peers}}); err == nil {
		t.Fatal("sim runtime accepted a fabric config")
	}
	if _, err := homeo.New(homeo.Options{Runtime: homeo.RuntimeLive, Fabric: &homeo.FabricOptions{Site: 3, Peers: peers}}); err == nil {
		t.Fatal("out-of-range site accepted")
	}
	if _, err := homeo.New(homeo.Options{Runtime: homeo.RuntimeLive, Sites: 2, Fabric: &homeo.FabricOptions{Site: 0, Peers: peers}}); err == nil {
		t.Fatal("sites/peers disagreement accepted")
	}
	c, err := homeo.New(homeo.Options{Runtime: homeo.RuntimeLive, Fabric: &homeo.FabricOptions{Site: 1, Peers: peers}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Sites() != 3 || c.SelfSite() != 1 {
		t.Fatalf("sites=%d self=%d", c.Sites(), c.SelfSite())
	}
	if c.PeerHandler() == nil {
		t.Fatal("multi-process cluster has no peer handler")
	}
	if _, err := c.SessionAt(0); err == nil {
		t.Fatal("SessionAt accepted a site owned by another process")
	}
	if _, err := c.SessionAt(1); err != nil {
		t.Fatalf("SessionAt(self): %v", err)
	}
}
