// Package repro is a from-scratch Go implementation of "The Homeostasis
// Protocol: Avoiding Transaction Coordination Through Program Analysis"
// (Roy, Kot, Bender, Ding, Hojjat, Koch, Foster, Gehrke; SIGMOD 2015).
//
// # Public API
//
// The supported programmatic surface is the homeo package tree:
//
//   - homeo: the embeddable API — Cluster (a running multi-site
//     deployment on the simulator or the wall-clock runtime), TxnClass
//     (transaction classes registered at runtime from L or SQL source,
//     analyzed and treaty-fitted online), Session (submission with
//     per-call deadlines and the ErrAborted / ErrTimeout /
//     ErrLivelocked / ErrDropped taxonomy), and streaming Stats;
//   - homeo/wire: the JSON types of the versioned /v1 wire protocol;
//   - homeo/httpapi: the HTTP server half (mounted by
//     cmd/homeostasis-serve, embeddable behind any mux);
//   - homeo/client: the Go client with connection pooling and jittered
//     retries, which the serve binary's closed-loop driver is built on.
//
// The implementation lives under internal/ (see README.md for the
// architecture and DESIGN.md for the paper-to-module map):
//
//   - internal/lang: the transaction languages L and L++ (Section 2),
//     the Appendix A lowering and the Appendix B replica rewrite;
//   - internal/symtab: symbolic tables (Figure 6) with joins and
//     independence-group factorization;
//   - internal/treaty: treaty generation (Section 4) — preprocessing,
//     per-site templates, the Theorem 4.3 default, the demarcation-style
//     equal split, and the Algorithm 1 MaxSAT optimizer;
//   - internal/sat, internal/maxsat, internal/lia: the solver stack
//     (DPLL, Fu-Malik, Fourier-Motzkin) standing in for Z3;
//   - internal/homeostasis: the protocol runtime (Section 3.3) plus the
//     2PC / local / OPT baselines over per-site 2PL stores
//     (internal/store), programmed against the internal/rt runtime
//     contract so the same core runs on the deterministic discrete-event
//     simulator (internal/sim, internal/cluster) and on the wall-clock
//     serving runtime (internal/rtlive);
//   - internal/fabric: the site fabric — each site owns its store
//     partition behind an actor answering typed peer messages
//     (CollectState / InstallState / InstallTreaties), and the cleanup
//     phase's coordinator drives its two communication rounds through a
//     pluggable Transport: fabric.Local (in-process, latency charged
//     per message from the topology; the default, byte-identical to the
//     seed timeline) or fabric.HTTP (JSON peer messages over real
//     sockets, one OS process per site, Lamport-clocked commit logs for
//     merged replay checks). homeo.Options.Fabric and
//     cmd/homeostasis-serve's -site/-peers flags deploy it;
//   - internal/micro, internal/tpcc: the Section 6 workloads;
//   - internal/experiments: one runner per evaluation table/figure.
//
// # Allocation strategies and drift
//
// Beyond the paper's strategies (the Algorithm 1 optimizer, the
// demarcation-style equal split, and the Theorem 4.3 pin), the runtime
// offers an adaptive engine (homeostasis.Options.Alloc): a per-unit,
// per-site demand layer tracks delta burn and violation counts since
// the last negotiation round, treaty.AdaptiveConfig splits each
// clause's slack proportionally to the observed burn (warm-started
// through the configuration isomorphism cache, keyed additionally by
// the quantized demand vector), and the cleanup phase batches — while
// a unit renegotiates, queued violators register as co-winners and one
// fold, one treaty generation, and one distribution round commit the
// whole batch. Everything is opt-in: AllocDefault reproduces the seed
// protocol bit for bit.
//
// The drift workloads exercise it: micro's hot-site rotation
// (Config.HotFrac/HotWindow/RotateEvery) and TPC-C's skewed warehouse
// (Config.WarehouseAffinity/RotateEvery), both clocked by
// workload.Rotor. The "drift" experiment compares equal-split,
// model-optimized, and adaptive allocation under both.
//
// Entry points: cmd/homeostasis-bench regenerates the paper's evaluation,
// cmd/homeostasis-serve serves the /v1 wire protocol live (and hosts the
// closed-loop load driver built on homeo/client), cmd/homeostasis-analyze
// exposes the offline analyzer, examples/ holds runnable walkthroughs
// (quickstart and ecommerce on the public API), and bench_test.go in
// this directory hosts the benchmark harness (one testing.B benchmark
// per table and figure).
package repro
