package repro_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strings"
	"testing"
)

// TestPublicGodoc lints the public API surface (and the fabric, whose
// peer protocol external processes implement against): every exported
// top-level identifier must carry a doc comment. The generated reference
// is part of the deliverable — see docs/ — so a silent gap is a CI
// failure, not a style nit.
func TestPublicGodoc(t *testing.T) {
	dirs := []string{"homeo", "homeo/client", "homeo/wire", "homeo/httpapi", "internal/fabric", "internal/wal", "internal/analysis"}
	for _, dir := range dirs {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments)
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		for _, pkg := range pkgs {
			for path, f := range pkg.Files {
				rel := filepath.ToSlash(path)
				for _, decl := range f.Decls {
					switch d := decl.(type) {
					case *ast.FuncDecl:
						if d.Name.IsExported() && d.Doc == nil && exportedRecv(d) {
							t.Errorf("%s: exported %s %s has no doc comment", rel, declKind(d), d.Name.Name)
						}
					case *ast.GenDecl:
						if d.Tok != token.TYPE && d.Tok != token.CONST && d.Tok != token.VAR {
							continue
						}
						for _, spec := range d.Specs {
							switch s := spec.(type) {
							case *ast.TypeSpec:
								if s.Name.IsExported() && d.Doc == nil && s.Doc == nil {
									t.Errorf("%s: exported type %s has no doc comment", rel, s.Name.Name)
								}
							case *ast.ValueSpec:
								for _, name := range s.Names {
									if name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
										t.Errorf("%s: exported %s %s has no doc comment", rel, d.Tok, name.Name)
									}
								}
							}
						}
					}
				}
			}
		}
	}
}

// exportedRecv reports whether a function is package-level API: a plain
// function, or a method on an exported receiver type.
func exportedRecv(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	typ := d.Recv.List[0].Type
	if star, ok := typ.(*ast.StarExpr); ok {
		typ = star.X
	}
	if id, ok := typ.(*ast.Ident); ok {
		return id.IsExported()
	}
	return true
}

func declKind(d *ast.FuncDecl) string {
	if d.Recv != nil {
		return "method"
	}
	return "func"
}
