// E-commerce: the Section 6.1 scenario as a user-facing application. A
// stock table is replicated across two datacenters 100ms apart; clients
// place orders that decrement quantities. The same workload runs under
// the homeostasis protocol and under 2PC, printing the latency and
// throughput comparison the paper's Figures 10-11 report.
package main

import (
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/homeostasis"
	"repro/internal/micro"
	"repro/internal/sim"
)

func runMode(mode homeostasis.Mode) *homeostasis.System {
	w, err := micro.New(micro.Config{
		Items:  500,
		Refill: 100,
		NSites: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	e := sim.NewEngine(1)
	sys, err := homeostasis.New(e, w, homeostasis.Options{
		Mode:           mode,
		Topo:           cluster.Uniform(2, 100*sim.Millisecond),
		ClientsPerSite: 16,
		Warmup:         1 * sim.Second,
		Measure:        10 * sim.Second,
		Seed:           7,
	})
	if err != nil {
		log.Fatal(err)
	}
	sys.Run()
	return sys
}

func main() {
	fmt.Println("replicated stock across 2 datacenters, RTT 100ms, 16 clients each")
	fmt.Println("placing orders for 10 simulated seconds per protocol...")
	fmt.Println()
	fmt.Printf("%-8s %10s %10s %10s %10s %10s\n",
		"mode", "txn/s", "p50", "p97", "p100", "sync%")
	for _, mode := range []homeostasis.Mode{
		homeostasis.ModeHomeo, homeostasis.ModeOpt,
		homeostasis.ModeTwoPC, homeostasis.ModeLocal,
	} {
		sys := runMode(mode)
		col := sys.Col
		fmt.Printf("%-8s %10.0f %10v %10v %10v %10.2f\n",
			mode, col.Throughput(),
			col.Latency.Percentile(50),
			col.Latency.Percentile(97),
			col.Latency.Percentile(100),
			col.SyncRatio())
	}
	fmt.Println()
	fmt.Println("homeostasis commits ~97% of orders at local latency and pays the")
	fmt.Println("WAN round trip only on treaty violations; 2PC pays 2x RTT always.")
}
