// E-commerce: the Section 6.1 scenario as a user-facing application on
// the public embeddable API. A stock table is replicated across two
// datacenters 100ms apart; clients place orders that decrement
// quantities. The same workload runs under the homeostasis protocol and
// under 2PC, printing the latency and throughput comparison the paper's
// Figures 10-11 report.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/homeo"
	"repro/internal/micro"
)

func runMode(mode homeo.Mode) homeo.Stats {
	w, err := micro.New(micro.Config{
		Items:  500,
		Refill: 100,
		NSites: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	c, err := homeo.New(homeo.Options{
		Runtime:        homeo.RuntimeSim,
		Mode:           mode,
		Sites:          2,
		RTT:            100 * time.Millisecond,
		Workload:       w,
		ClientsPerSite: 16,
		Warmup:         1 * time.Second,
		Measure:        10 * time.Second,
		Seed:           7,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	return c.Drive()
}

func main() {
	fmt.Println("replicated stock across 2 datacenters, RTT 100ms, 16 clients each")
	fmt.Println("placing orders for 10 simulated seconds per protocol...")
	fmt.Println()
	fmt.Printf("%-8s %10s %10s %10s %10s %10s\n",
		"mode", "txn/s", "p50", "p99", "max", "sync%")
	for _, mode := range []homeo.Mode{
		homeo.ModeHomeo, homeo.ModeOpt,
		homeo.ModeTwoPC, homeo.ModeLocal,
	} {
		st := runMode(mode)
		fmt.Printf("%-8s %10.0f %10v %10v %10v %10.2f\n",
			mode, st.Throughput,
			st.LatencyP50.Round(10*time.Microsecond),
			st.LatencyP99.Round(10*time.Microsecond),
			st.LatencyMax.Round(10*time.Microsecond),
			st.SyncRatioPct)
	}
	fmt.Println()
	fmt.Println("homeostasis commits ~97% of orders at local latency and pays the")
	fmt.Println("WAN round trip only on treaty violations; 2PC pays 2x RTT always.")
}
