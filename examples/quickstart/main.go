// Quickstart: the paper's running example (Figures 3-4, Section 4.2) end
// to end through the public pipeline — parse two transactions in L,
// compute their symbolic tables, join them, derive the global treaty for
// an initial database, split it into per-site local treaties, and run the
// Algorithm 1 optimizer against a workload model where T1 is twice as
// likely as T2.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/lang"
	"repro/internal/symtab"
	"repro/internal/treaty"
)

const program = `
transaction T1() {
	xh := read(x);
	yh := read(y);
	if (xh + yh < 10) then
		write(x = xh + 1)
	else
		write(x = xh - 1)
}

transaction T2() {
	xh := read(x);
	yh := read(y);
	if (xh + yh < 20) then
		write(y = yh + 1)
	else
		write(y = yh - 1)
}`

// skewedModel simulates futures where T1 (which writes x) is issued twice
// as often as T2 (which writes y), as in the Appendix C.2 worked example.
type skewedModel struct{ txns []*lang.Transaction }

func (m skewedModel) SampleFuture(rng *rand.Rand, db lang.Database, l int) []lang.Database {
	cur := db.Clone()
	out := make([]lang.Database, 0, l)
	for i := 0; i < l; i++ {
		t := m.txns[0] // T1 with probability 2/3
		if rng.Intn(3) == 2 {
			t = m.txns[1]
		}
		res, err := lang.Eval(t, cur)
		if err != nil {
			continue
		}
		cur = res.DB
		out = append(out, cur.Clone())
	}
	return out
}

func main() {
	// 1. Parse and analyze: one symbolic table per transaction (Figure 4).
	txns := lang.MustParseProgram(program)
	var tables []*symtab.Table
	for _, t := range txns {
		tbl, err := symtab.Build(t)
		if err != nil {
			log.Fatal(err)
		}
		tables = append(tables, tbl)
		fmt.Println(tbl)
	}

	// 2. Joint table for the transaction set {T1, T2} (Figure 4c).
	joint := symtab.Join(tables...)
	fmt.Printf("joint table has %d rows (pruned cross product)\n\n", joint.Size())

	// 3. The paper's initial database: x = 10 on site 0, y = 13 on site 1.
	db := lang.Database{"x": 10, "y": 13}
	row, err := joint.MatchRow(db, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("database %v matches row %d: psi = %s\n", db, row, joint.Rows[row].Guard)

	// 4. Preprocess psi into the global treaty (Appendix C.1).
	g, err := treaty.Preprocess(joint.Rows[row].Guard, db, nil, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("global treaty: %s\n\n", g)

	// 5. Split into per-site templates and optimize (Section 4.2).
	place := func(obj lang.ObjID) int {
		if obj == "x" {
			return 0
		}
		return 1
	}
	tmpl, err := treaty.BuildTemplate(g, 2, place)
	if err != nil {
		log.Fatal(err)
	}
	cfg, stats := treaty.Optimize(tmpl, db, skewedModel{txns: txns}, treaty.OptimizeOptions{
		Lookahead:  3,
		CostFactor: 3,
		Rng:        rand.New(rand.NewSource(1)),
	})
	if err := tmpl.Validate(cfg, db); err != nil {
		log.Fatal(err)
	}
	locals, _ := tmpl.LocalTreaties(cfg)
	fmt.Printf("optimized local treaties (%d/%d sampled futures satisfied):\n",
		stats.SoftSatisfied, stats.SoftTotal)
	for _, l := range locals {
		fmt.Printf("  %s\n", l)
	}
	fmt.Println("\nwhile both sites stay inside their local treaties, T1 and T2")
	fmt.Println("commit without any communication; the first violating write")
	fmt.Println("triggers one synchronization round and a fresh treaty.")
}
