// Quickstart: the paper's running example (Figures 3-4, Section 4.2)
// through the public embeddable API (repro/homeo). The two transactions
// are registered at runtime as transaction classes — the engine parses
// them, computes their symbolic tables, derives treaties from the initial
// database, and serves them coordination-free while the treaties hold;
// the first violating write triggers one synchronization round and fresh
// treaties.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/homeo"
)

const t1Src = `
transaction T1() {
	xh := read(x);
	yh := read(y);
	if (xh + yh < 10) then
		write(x = xh + 1)
	else
		write(x = xh - 1)
}`

const t2Src = `
transaction T2() {
	xh := read(x);
	yh := read(y);
	if (xh + yh < 20) then
		write(y = yh + 1)
	else
		write(y = yh - 1)
}`

func main() {
	// 1. A two-site cluster on the deterministic simulator. EnableLog
	// records the commit log so the run can be replay-checked at the end.
	c, err := homeo.New(homeo.Options{
		Runtime:   homeo.RuntimeSim,
		Sites:     2,
		Seed:      1,
		EnableLog: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	// 2. Register the transactions as classes. The paper's initial
	// database: x = 10, y = 13. Each registration runs the analysis
	// pipeline — symbolic table (Figure 4), guard preprocessing
	// (Appendix C.1), per-site local treaties (Section 4.2) — online.
	t1, err := c.Register(homeo.ClassSpec{L: t1Src, Initial: map[string]int64{"x": 10, "y": 13}})
	if err != nil {
		log.Fatal(err)
	}
	t2, err := c.Register(homeo.ClassSpec{L: t2Src})
	if err != nil {
		log.Fatal(err)
	}

	for _, cls := range []*homeo.TxnClass{t1, t2} {
		fmt.Println(cls.SymbolicTable())
		fmt.Printf("local treaties for %s:\n", cls.Name())
		for _, tr := range cls.Treaties() {
			fmt.Printf("  %s\n", tr)
		}
		fmt.Println()
	}

	// 3. Submit transactions. While both sites stay inside their local
	// treaties, T1 and T2 commit without any communication (synced =
	// false); a write that would leave the treaty region pays one
	// synchronization round (synced = true) and installs fresh treaties.
	ctx := context.Background()
	sess := c.Session()
	for i := 0; i < 12; i++ {
		cls := t1
		if i%2 == 1 {
			cls = t2
		}
		res, err := sess.Submit(ctx, cls)
		if err != nil {
			log.Fatal(err)
		}
		sync := "local commit (no communication)"
		if res.Synced {
			sync = "SYNC: violation -> cleanup round -> new treaties"
		}
		fmt.Printf("%-3s at site %d  %-46s latency %8s\n", res.Class, res.Site, sync, res.Latency)
	}

	// 4. The run's stats and the Theorem 3.8 check: replaying the commit
	// log serially reproduces the consolidated database.
	st := c.Stats()
	fmt.Printf("\ncommitted %d transactions, %.1f%% required synchronization\n",
		st.Committed, st.SyncRatioPct)
	if err := c.CheckReplayEquivalence(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("serial-replay equivalence: OK")
}
