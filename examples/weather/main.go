// Weather: the Appendix D example beyond top-k — "top-k of minimums".
// A monitoring application records temperature observations per day and
// displays the record (lowest) daily minimum. The paper argues these
// treaties are linear but already painful to derive by hand; here the
// analysis derives them automatically: recording a temperature above the
// day's current minimum never changes any output, so sites holding
// different days can stay silent for most observations.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/lang"
	"repro/internal/logic"
	"repro/internal/symtab"
	"repro/internal/treaty"
)

// recordSrc updates one day's minimum and maintains the global record
// low across days (top-1 of minimums). Days are a bounded L++ array.
const recordSrc = `
transaction Record(d, t) {
	array dmin(3);
	cur := dmin(d);
	if (t < cur) then {
		write(dmin(d) = t);
		rec := read(record);
		if (t < rec) then {
			write(record = t);
			print(t)
		} else
			skip
	} else
		skip
}`

func main() {
	txn := lang.MustParse(recordSrc)
	tbl, err := symtab.Build(txn)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("symbolic table for Record has %d rows (day x branch combinations)\n\n", len(tbl.Rows))

	// Current state: three days of minima and the record low.
	db := lang.Database{
		lang.ArrayObj("dmin", 0): 12,
		lang.ArrayObj("dmin", 1): 7,
		lang.ArrayObj("dmin", 2): 15,
		"record":                 7,
	}
	fmt.Printf("daily minima: %d / %d / %d, record low: %d\n\n",
		db[lang.ArrayObj("dmin", 0)], db[lang.ArrayObj("dmin", 1)],
		db[lang.ArrayObj("dmin", 2)], db["record"])

	// For each day, derive the treaty governing silent observations:
	// match the row for a representative harmless observation, then
	// strengthen over the sensor range [-40, 60] (Appendix C.1 parameter
	// bounds). The result is the per-day linear constraint the paper says
	// is "nontrivial to infer manually".
	for day := int64(0); day < 3; day++ {
		params := map[string]int64{"d": day, "t": 60} // warm reading: silent row
		row, err := tbl.MatchRow(db, params)
		if err != nil {
			log.Fatal(err)
		}
		g, err := treaty.Preprocess(tbl.Rows[row].Guard, db, params,
			treaty.ParamBounds{"d": {day, day}})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("day %d silent-region treaty: %s\n", day, g)
	}
	fmt.Println()

	// Place each day's data on its own site (the paper's "each list is
	// stored on a different site") and validate a default split of the
	// joint silent region.
	place := func(obj lang.ObjID) int {
		for d := int64(0); d < 3; d++ {
			if obj == lang.ArrayObj("dmin", d) {
				return int(d)
			}
		}
		return 0 // the record low lives with day 0
	}
	// The joint silent region: every day's reading stays above its
	// minimum. Build it from the analysis for a representative day and
	// combine.
	var all []treaty.Global
	for day := int64(0); day < 3; day++ {
		params := map[string]int64{"d": day, "t": 60}
		row, _ := tbl.MatchRow(db, params)
		g, err := treaty.Preprocess(tbl.Rows[row].Guard, db, params, treaty.ParamBounds{"d": {day, day}})
		if err != nil {
			log.Fatal(err)
		}
		all = append(all, g)
	}
	joint := treaty.Global{}
	for _, g := range all {
		joint.Constraints = append(joint.Constraints, g.Constraints...)
	}
	tmpl, err := treaty.BuildTemplate(joint, 3, place)
	if err != nil {
		log.Fatal(err)
	}
	cfg := tmpl.DefaultConfig(db)
	if err := tmpl.Validate(cfg, db); err != nil {
		log.Fatal(err)
	}
	locals, _ := tmpl.LocalTreaties(cfg)
	fmt.Println("per-site local treaties (each day on its own site):")
	for _, l := range locals {
		fmt.Printf("  %s\n", l)
	}
	fmt.Println()

	// Verify the analysis against execution on a simulated stream: the
	// silent guard must hold exactly when the record display would not
	// change.
	rng := rand.New(rand.NewSource(2))
	silent, synced := 0, 0
	for i := 0; i < 2000; i++ {
		day := int64(rng.Intn(3))
		temp := int64(rng.Intn(101) - 40)
		params := map[string]int64{"d": day, "t": temp}
		row, err := tbl.MatchRow(db, params)
		if err != nil {
			log.Fatal(err)
		}
		res, err := tbl.EvalResidual(row, db, day, temp)
		if err != nil {
			log.Fatal(err)
		}
		if res.DB.Equal(db) && len(res.Log) == 0 {
			silent++
		} else {
			synced++
			db = res.DB
		}
	}
	fmt.Printf("2000 observations: %d silent (%.1f%%), %d required coordination\n",
		silent, float64(silent)/20, synced)
	fmt.Printf("final record low: %d\n", db.Get("record"))
	_ = logic.TrueF{}
}
