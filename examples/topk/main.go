// Top-k: the paper's motivating example (Section 1, Figures 1-2). An
// aggregator site maintains a top-2 list sorted by value; item sites
// receive inserts. Analyzing the aggregator's update transaction shows
// its behavior is insensitive to inserts below the current minimum — the
// derived treaty lets item sites cache that minimum and stay silent for
// most inserts, which is exactly the improved algorithm of Figure 2.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/lang"
	"repro/internal/logic"
	"repro/internal/symtab"
)

// insertSrc is the aggregator's top-2 update: top1 >= top2 are the
// current top values; an insert rebuilds the list when it beats them.
const insertSrc = `
transaction Insert(v) {
	t1 := read(top1);
	t2 := read(top2);
	if (v > t2) then {
		if (v > t1) then {
			write(top1 = v);
			write(top2 = t1)
		} else
			write(top2 = v)
	} else
		skip
}`

func main() {
	txn := lang.MustParse(insertSrc)
	tbl, err := symtab.Build(txn)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(tbl)

	// The initial top-2 list of Figure 1: values 100 and 91.
	db := lang.Database{"top1": 100, "top2": 91}
	fmt.Printf("aggregator state: top1=%d top2=%d\n\n", db["top1"], db["top2"])

	// The "silent" row: find the symbolic-table row whose residual
	// performs no writes — inserts satisfying its guard cannot change the
	// aggregator's state, so they need not be sent at all.
	silent := -1
	for i, row := range tbl.Rows {
		if len(lang.WriteSet(row.Residual, nil)) == 0 {
			silent = i
			break
		}
	}
	if silent < 0 {
		log.Fatal("no silent row found")
	}
	fmt.Printf("analysis: inserts satisfying  %s  leave the top-2 unchanged\n", tbl.Rows[silent].Guard)
	fmt.Printf("=> each item site caches min=%d and only contacts the aggregator above it\n\n", db["top2"])

	// Simulate Figure 2: three item sites receive 1000 inserts; count the
	// messages the cached-min treaty saves. Correctness check: the silent
	// guard and an actual evaluation must always agree.
	rng := rand.New(rand.NewSource(1))
	messages, silenced := 0, 0
	for i := 0; i < 1000; i++ {
		v := int64(rng.Intn(120))
		guardHolds, err := logic.EvalFormula(tbl.Rows[silent].Guard,
			logic.DBBinding(db, map[string]int64{"v": v}, nil))
		if err != nil {
			log.Fatal(err)
		}
		res, err := lang.Eval(txn, db, v)
		if err != nil {
			log.Fatal(err)
		}
		changed := !res.DB.Equal(db)
		if guardHolds == changed {
			log.Fatalf("analysis contradicts execution at v=%d", v)
		}
		if guardHolds {
			silenced++ // stays local at the item site
			continue
		}
		// The insert may change the top-2: send it to the aggregator,
		// apply, and broadcast the new minimum (a new treaty).
		messages++
		db = res.DB
	}
	fmt.Printf("1000 inserts: %d aggregator messages, %d handled silently (%.1f%% saved)\n",
		messages, silenced, float64(silenced)/10)
	fmt.Printf("final top-2: top1=%d top2=%d\n", db["top1"], db["top2"])
}
