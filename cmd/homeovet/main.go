// Command homeovet is the repo's invariant-checker suite, run as a go
// vet tool:
//
//	go build -o homeovet ./cmd/homeovet
//	go vet -vettool=$(pwd)/homeovet ./...
//
// It speaks the cmd/go unit-checker protocol: go vet invokes it once
// per package with a JSON config file describing the sources and the
// export data of every dependency, and the tool type-checks the package
// and runs the homeovet analyzers (determinism, walflush, schedlock,
// hotpath, poolhygiene, unchecked) over it. Findings go to stderr as
// file:line:col: message [analyzer] and the tool exits non-zero, which
// go vet surfaces as a failure.
//
// The analyzers and the //homeo: directive language they honor are
// catalogued in docs/DEVELOPMENT.md.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"runtime"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/determinism"
	"repro/internal/analysis/hotpath"
	"repro/internal/analysis/poolhygiene"
	"repro/internal/analysis/schedlock"
	"repro/internal/analysis/unchecked"
	"repro/internal/analysis/walflush"
)

// analyzers is the homeovet suite, in reporting order.
var analyzers = []*analysis.Analyzer{
	determinism.Analyzer,
	walflush.Analyzer,
	schedlock.Analyzer,
	hotpath.Analyzer,
	poolhygiene.Analyzer,
	unchecked.Analyzer,
}

// vetConfig mirrors the JSON emitted by cmd/go for vet tools (see
// cmd/go/internal/work.vetConfig). Fields the tool does not consult are
// omitted; unknown fields are ignored by encoding/json.
type vetConfig struct {
	ID          string
	Compiler    string
	Dir         string
	ImportPath  string
	GoFiles     []string
	NonGoFiles  []string
	ImportMap   map[string]string
	PackageFile map[string]string
	Standard    map[string]bool
	ModulePath  string
	GoVersion   string
	VetxOnly    bool
	VetxOutput  string

	SucceedOnTypecheckFailure bool
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "homeovet:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	var cfgPath string
	for _, a := range args {
		switch {
		case a == "-V=full" || a == "--V=full":
			return printVersion()
		case a == "-flags" || a == "--flags":
			// go vet probes the tool's flag set before running it.
			// homeovet takes no analyzer flags.
			fmt.Println("[]")
			return nil
		case strings.HasPrefix(a, "-"):
			// Analyzer flags are accepted and ignored; homeovet always
			// runs the full suite.
		default:
			cfgPath = a
		}
	}
	if cfgPath == "" {
		return fmt.Errorf("usage: homeovet [flags] vet.cfg (normally invoked by go vet -vettool)")
	}

	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return fmt.Errorf("parse %s: %v", cfgPath, err)
	}

	// The tool exports no analysis facts, but go vet caches the (empty)
	// facts file per package, so it must exist.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			return err
		}
	}
	if cfg.VetxOnly {
		// Dependency visited only for facts — nothing to check.
		return nil
	}

	diags, err := check(&cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil
		}
		return err
	}
	if len(diags) == 0 {
		return nil
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	os.Exit(2)
	return nil
}

// printVersion answers go vet's -V=full tool handshake. The build ID is
// a content hash of the executable, so edits to the checkers invalidate
// go vet's result cache.
func printVersion() error {
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	f, err := os.Open(exe)
	if err != nil {
		return err
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return err
	}
	fmt.Printf("homeovet version devel buildID=%x\n", h.Sum(nil))
	return nil
}

// check type-checks the package described by cfg and runs every
// analyzer, returning rendered diagnostics sorted by position.
func check(cfg *vetConfig) ([]string, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}

	// Dependencies resolve through the export data cmd/go already
	// compiled: vendor/ImportMap indirection first, then the package's
	// archive from PackageFile.
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	tconf := types.Config{
		Importer: importer.ForCompiler(fset, compiler(cfg.Compiler), lookup),
		Sizes:    types.SizesFor(compiler(cfg.Compiler), runtime.GOARCH),
	}
	if strings.HasPrefix(cfg.GoVersion, "go1") {
		tconf.GoVersion = cfg.GoVersion
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	tpkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, err
	}

	var diags []analysis.Diagnostic
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       tpkg,
			TypesInfo: info,
			Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %v", a.Name, err)
		}
	}
	analysis.SortDiagnostics(fset, diags)
	out := make([]string, 0, len(diags))
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		name := pos.Filename
		if cfg.Dir != "" && strings.HasPrefix(name, cfg.Dir+string(os.PathSeparator)) {
			name = name[len(cfg.Dir)+1:]
		}
		out = append(out, fmt.Sprintf("%s:%d:%d: %s [%s]", name, pos.Line, pos.Column, d.Message, d.Analyzer))
	}
	return out, nil
}

// compiler defaults the export-data flavor to gc.
func compiler(c string) string {
	if c == "" {
		return "gc"
	}
	return c
}
