// Command homeostasis-analyze is the paper's offline component
// (Section 5.1) as a CLI: it parses L++ transactions, computes symbolic
// tables, and — given an initial database — derives the global treaty and
// per-site local treaties.
//
// Usage:
//
//	homeostasis-analyze -file txns.lpp
//	homeostasis-analyze -file txns.lpp -db 'x=10,y=13' -sites 2 -place 'x=0,y=1'
//	echo 'transaction T() { ... }' | homeostasis-analyze
//
// With -db, the tool joins the symbolic tables of all transactions,
// matches the row the database satisfies, preprocesses its guard into
// linear constraints, splits it into per-site templates (objects are
// placed per -place, defaulting to site 0), and prints the default,
// equal-split, and (when -optimize is set) Algorithm 1 optimized local
// treaties.
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"repro/internal/lang"
	"repro/internal/symtab"
	"repro/internal/treaty"
)

func main() {
	var (
		file     = flag.String("file", "", "L++ source file (default: stdin)")
		dbSpec   = flag.String("db", "", "initial database, e.g. 'x=10,y=13'")
		sites    = flag.Int("sites", 2, "number of sites for treaty splitting")
		place    = flag.String("place", "", "object placement, e.g. 'x=0,y=1' (default: all on site 0)")
		optimize = flag.Bool("optimize", false, "also run the Algorithm 1 optimizer with a random-walk model")
	)
	flag.Parse()

	src, err := readSource(*file)
	if err != nil {
		fatal(err)
	}
	txns, err := lang.ParseProgram(src)
	if err != nil {
		fatal(err)
	}
	var tables []*symtab.Table
	for _, t := range txns {
		lang.ResolveParams(t)
		tbl, err := symtab.Build(t)
		if err != nil {
			fatal(err)
		}
		tables = append(tables, tbl)
		fmt.Println(tbl)
	}

	if *dbSpec == "" {
		return
	}
	db, err := parseAssignments(*dbSpec)
	if err != nil {
		fatal(err)
	}
	placeMap, err := parseAssignments(*place)
	if err != nil {
		fatal(err)
	}
	placement := func(obj lang.ObjID) int { return int(placeMap[obj]) }

	// Independence groups keep joint tables small (Section 5.1).
	groups := symtab.FactorGroups(tables)
	for gi, grp := range groups {
		jt := symtab.Join(grp.Tables...)
		fmt.Printf("--- group %d (%d transactions, %d joint rows) ---\n",
			gi, len(grp.Tables), jt.Size())
		row, err := jt.MatchRow(db, nil)
		if err != nil {
			fmt.Printf("  no row matches the database (transactions may need parameters): %v\n", err)
			continue
		}
		psi := jt.Rows[row].Guard
		fmt.Printf("  matched row %d: psi = %s\n", row, psi)
		g, err := treaty.Preprocess(psi, db, nil, nil)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("  global treaty: %s\n", g)
		tmpl, err := treaty.BuildTemplate(g, *sites, placement)
		if err != nil {
			fatal(err)
		}
		printConfig := func(name string, cfg treaty.Config) {
			if err := tmpl.Validate(cfg, db); err != nil {
				fmt.Printf("  %s: INVALID: %v\n", name, err)
				return
			}
			locals, _ := tmpl.LocalTreaties(cfg)
			fmt.Printf("  %s:\n", name)
			for _, l := range locals {
				fmt.Printf("    %s\n", l)
			}
		}
		printConfig("default configuration (Theorem 4.3)", tmpl.DefaultConfig(db))
		printConfig("equal-split configuration (demarcation/OPT)", tmpl.EqualSplitConfig(db))
		if *optimize {
			cfg, stats := treaty.Optimize(tmpl, db, randomWalkModel{}, treaty.OptimizeOptions{
				Lookahead:  20,
				CostFactor: 3,
				Rng:        rand.New(rand.NewSource(1)),
			})
			printConfig(fmt.Sprintf("optimized configuration (Algorithm 1, %d/%d soft satisfied)",
				stats.SoftSatisfied, stats.SoftTotal), cfg)
		}
	}
}

// randomWalkModel perturbs each object by ±1 per step — a generic stand-in
// workload model for ad-hoc analysis.
type randomWalkModel struct{}

func (randomWalkModel) SampleFuture(rng *rand.Rand, db lang.Database, l int) []lang.Database {
	cur := db.Clone()
	out := make([]lang.Database, 0, l)
	objs := cur.Objects()
	if len(objs) == 0 {
		return nil
	}
	for i := 0; i < l; i++ {
		obj := objs[rng.Intn(len(objs))]
		cur[obj] += int64(rng.Intn(3) - 1)
		out = append(out, cur.Clone())
	}
	return out
}

func readSource(file string) (string, error) {
	if file == "" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(file)
	return string(b), err
}

// parseAssignments parses "x=10,y=13" into a database/int map.
func parseAssignments(spec string) (lang.Database, error) {
	out := lang.Database{}
	if strings.TrimSpace(spec) == "" {
		return out, nil
	}
	for _, part := range strings.Split(spec, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("bad assignment %q", part)
		}
		v, err := strconv.ParseInt(strings.TrimSpace(kv[1]), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad value in %q: %v", part, err)
		}
		out[lang.ObjID(strings.TrimSpace(kv[0]))] = v
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "homeostasis-analyze:", err)
	os.Exit(1)
}
