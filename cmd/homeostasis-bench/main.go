// Command homeostasis-bench regenerates the tables and figures of the
// paper's evaluation (Section 6 and Appendix F) on the simulated cluster.
//
// Usage:
//
//	homeostasis-bench -list
//	homeostasis-bench -experiment fig11
//	homeostasis-bench -experiment all -scale quick
//
// Scales: "full" approximates the paper's setup at simulation-friendly
// size; "quick" is a reduced regression scale.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		experiment = flag.String("experiment", "", "experiment id (fig10..fig29, table1, ablation) or 'all'")
		scaleName  = flag.String("scale", "full", "experiment scale: full or quick")
		list       = flag.Bool("list", false, "list available experiments")
	)
	flag.Parse()

	if *list {
		fmt.Println("available experiments:")
		for _, name := range experiments.Names() {
			fmt.Println("  " + name)
		}
		return
	}
	if *experiment == "" {
		fmt.Fprintln(os.Stderr, "usage: homeostasis-bench -experiment <id|all> [-scale full|quick]")
		fmt.Fprintln(os.Stderr, "       homeostasis-bench -list")
		os.Exit(2)
	}

	var sc experiments.Scale
	switch strings.ToLower(*scaleName) {
	case "full":
		sc = experiments.Full
	case "quick":
		sc = experiments.Quick
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q (want full or quick)\n", *scaleName)
		os.Exit(2)
	}

	if *experiment == "all" {
		start := time.Now()
		for _, name := range experiments.Names() {
			fn, _ := experiments.ByName(name)
			t0 := time.Now()
			r, err := fn(sc)
			if err != nil {
				fmt.Fprintln(os.Stderr, "error:", name, err)
				os.Exit(1)
			}
			fmt.Println(r)
			fmt.Printf("(%s regenerated in %.1fs)\n\n", name, time.Since(t0).Seconds())
		}
		fmt.Printf("(all experiments regenerated in %.1fs)\n", time.Since(start).Seconds())
		return
	}

	fn, ok := experiments.ByName(*experiment)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; try -list\n", *experiment)
		os.Exit(2)
	}
	start := time.Now()
	r, err := fn(sc)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	fmt.Println(r)
	fmt.Printf("(regenerated in %.1fs)\n", time.Since(start).Seconds())
}
