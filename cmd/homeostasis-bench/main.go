// Command homeostasis-bench regenerates the tables and figures of the
// paper's evaluation (Section 6 and Appendix F) on the simulated cluster.
//
// Usage:
//
//	homeostasis-bench -list
//	homeostasis-bench -experiment fig11
//	homeostasis-bench -experiment all -scale quick -parallel 8 -progress
//
// Scales: "full" approximates the paper's setup at simulation-friendly
// size; "quick" is a reduced regression scale; "bench" is the smallest
// smoke-test scale. Sweep cells (independent simulated clusters) are
// fanned out across -parallel worker goroutines (default: all cores);
// output is byte-identical for any -parallel value.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/homeo"
	"repro/internal/experiments"
)

func main() {
	var (
		experiment = flag.String("experiment", "", "experiment id (fig10..fig29, table1, ablation, drift) or 'all'")
		scaleName  = flag.String("scale", "full", "experiment scale: full, quick, or bench")
		allocName  = flag.String("alloc", "default", "treaty allocation override for every cell: default, equal, model, or adaptive (non-default also enables batched renegotiation; 'default' keeps the golden reports)")
		parallel   = flag.Int("parallel", 0, "max sweep cells simulated concurrently (0 = all cores)")
		progress   = flag.Bool("progress", false, "report per-cell progress on stderr")
		verbose    = flag.Bool("v", false, "print per-sweep totals (commits, drops, store counters) after each report")
		list       = flag.Bool("list", false, "list available experiments")
	)
	flag.Parse()

	if *list {
		fmt.Println("available experiments:")
		for _, name := range experiments.Names() {
			fmt.Println("  " + name)
		}
		return
	}
	if *experiment == "" {
		fmt.Fprintln(os.Stderr, "usage: homeostasis-bench -experiment <id|all> [-scale full|quick|bench] [-parallel N]")
		fmt.Fprintln(os.Stderr, "       homeostasis-bench -list")
		os.Exit(2)
	}

	var sc experiments.Scale
	switch strings.ToLower(*scaleName) {
	case "full":
		sc = experiments.Full
	case "quick":
		sc = experiments.Quick
	case "bench":
		sc = experiments.Bench
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q (want full, quick, or bench)\n", *scaleName)
		os.Exit(2)
	}
	sc.Parallel = *parallel
	alloc, err := homeo.ParseAlloc(*allocName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	sc.Alloc = alloc

	runOne := func(name string) {
		fn, ok := experiments.ByName(name)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; try -list\n", name)
			os.Exit(2)
		}
		if *progress {
			sc.OnProgress = func(done, total int) {
				fmt.Fprintf(os.Stderr, "\r%s: %d/%d cells", name, done, total)
				if done == total {
					fmt.Fprintln(os.Stderr)
				}
			}
		}
		t0 := time.Now()
		r, err := fn(sc)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", name, err)
			os.Exit(1)
		}
		fmt.Println(r)
		if *verbose && r.Cells > 0 {
			fmt.Printf("(%s totals: %s)\n", name, r.Totals.String())
		}
		if r.Cells > 0 {
			fmt.Printf("(%s: %d cells on %d workers in %.1fs)\n\n",
				name, r.Cells, r.Workers, time.Since(t0).Seconds())
		} else {
			fmt.Printf("(%s regenerated in %.1fs)\n\n", name, time.Since(t0).Seconds())
		}
	}

	if *experiment == "all" {
		start := time.Now()
		for _, name := range experiments.Names() {
			runOne(name)
		}
		fmt.Printf("(all experiments regenerated in %.1fs; %d simulation cells total)\n",
			time.Since(start).Seconds(), experiments.TotalCells())
		return
	}
	runOne(*experiment)
}
