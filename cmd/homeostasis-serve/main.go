// Command homeostasis-serve boots a live multi-site homeostasis cluster
// and serves the versioned /v1 wire protocol. It is a thin shell over the
// public embeddable API: repro/homeo builds and runs the cluster,
// repro/homeo/httpapi serves the protocol, repro/homeo/client drives it.
//
// Serving mode (default) exposes HTTP/JSON:
//
//	homeostasis-serve -workload tpcc -sites 3 -addr :8080
//	curl -s -X POST localhost:8080/v1/classes -d '{"l":"transaction Deposit(n) { v := read(acct); write(acct = v + n) }"}'
//	curl -s -X POST localhost:8080/v1/txn -d '{"class":"Deposit","args":[5]}'
//	curl -s -X POST localhost:8080/v1/txn -d '{"site":0}'        # base workload mix
//	curl -s localhost:8080/v1/stats
//	curl -N localhost:8080/v1/stats?stream=1                      # SSE stream
//
// POST /v1/classes registers a transaction class from L or SQL source:
// the server parses and analyzes it and generates treaties online, so
// transactions never seen at compile time serve coordination-free where
// the analysis allows. POST /v1/txn invokes a registered class (or draws
// from the base workload's mix), singly or in batch, with 429
// backpressure on queue overflow and structured error codes
// distinguishing abort, timeout, and livelock. On SIGINT/SIGTERM the
// server stops admitting (503), drains in-flight work, prints final
// stats, and exits 0.
//
// Drive mode runs a closed-loop load driver over the same wire protocol:
//
//	homeostasis-serve -workload tpcc -drive clients=8,duration=5s
//	homeostasis-serve -workload none -register class.json -drive clients=4,duration=5s,class=Deposit
//
// The driver boots the server on a loopback listener, registers any
// -register class files over HTTP, and runs the given number of
// closed-loop clients per site through homeo/client — the same code path
// external users take. It prints real throughput and latency through the
// same collector the experiments use, verifies the commit log is
// observationally equivalent under serial replay (Theorem 3.8), and exits
// nonzero on zero commits or a failed check.
//
// Multi-process mode runs one site per OS process over the HTTP site
// fabric (internal/fabric): transactions commit locally with no peer
// traffic while treaties hold, and a violation pays exactly two peer
// message rounds (/v1/peer/*), coordinated by the violating site:
//
//	homeostasis-serve -workload none -site 0 -peers h0:8080,h1:8080,h2:8080 -enable-log
//	homeostasis-serve -workload none -site 1 -peers h0:8080,h1:8080,h2:8080 -enable-log  # on h1
//	homeostasis-serve -workload none -site 2 -peers h0:8080,h1:8080,h2:8080 -enable-log  # on h2
//
// Every process must get the same workload/protocol flags and seed, and
// classes must be registered at every site in the same order. The drive
// mode automates the whole thing on one machine: -drive ...,procs=N
// spawns N-1 peer processes, drives all N, then verifies the merged
// commit log (ordered by Lamport clock across processes) is
// observationally equivalent under serial replay.
//
// Elastic topology: a running multi-process cluster accepts new sites
// online. -join seeds a fresh process from any serving member — it
// fetches the member's topology, boots one site wider, streams the
// quiesced partition cut through the two-phase join handshake, and
// serves as a full member (treaty configurations include it from the
// next synchronization round on):
//
//	homeostasis-serve -workload none -register class.json -join h0:8080 -addr h3:8080 -enable-log
//
// POST /v1/topology/drain retires a site (its deltas are absorbed into
// the replicated base, then the slot is fenced), and POST
// /v1/topology/migrate re-homes one treaty unit's slack. The drive
// mode's join=1[@when] and drain=site[@when] knobs exercise both
// mid-drive and replay-check the merged commit log across the epoch
// change.
package main

import (
	"context"
	cryptorand "crypto/rand"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"net/url"
	"os"
	"os/exec"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/homeo"
	"repro/homeo/client"
	"repro/homeo/httpapi"
	"repro/homeo/wire"
	"repro/internal/micro"
	"repro/internal/tpcc"
)

// classFiles collects repeatable -register flags.
type classFiles []string

func (c *classFiles) String() string { return strings.Join(*c, ",") }
func (c *classFiles) Set(s string) error {
	*c = append(*c, s)
	return nil
}

func main() {
	var registers classFiles
	var (
		workloadName = flag.String("workload", "tpcc", "base workload: micro, tpcc, or none (serve only registered classes)")
		site         = flag.Int("site", -1, "multi-process mode: the one site this process serves (requires -peers)")
		peersFlag    = flag.String("peers", "", "multi-process mode: comma-separated base URLs of every site in site order (peers[site] is this process)")
		peerToken    = flag.String("peer-token", "", "multi-process mode: shared secret required on /v1/peer/* mutations (set it whenever peers cross a real network)")
		enableLog    = flag.Bool("enable-log", false, "record the commit log (GET /v1/peer/log) for replay checks; drive mode forces it")
		modeName     = flag.String("mode", "homeo", "protocol: homeo, opt, homeo-default, 2pc, or local")
		allocName    = flag.String("alloc", "default", "treaty allocation: default (mode's builtin), equal, model, or adaptive (non-default also enables batched renegotiation)")
		drift        = flag.Bool("drift", false, "enable the workload's drift scenario (micro: hot-site rotation; tpcc: skewed warehouse)")
		sites        = flag.Int("sites", 2, "number of replica sites")
		rtt          = flag.Duration("rtt", 50*time.Millisecond, "uniform inter-site round-trip time (really slept)")
		ec2          = flag.Bool("ec2", false, "use the paper's Table 1 EC2 inter-region RTTs instead of -rtt")
		cpu          = flag.Int("cpu", 4, "CPU slots per site (a real concurrency limit)")
		execTime     = flag.Duration("exec-time", 2*time.Millisecond, "local execution service time per transaction")
		lockTimeout  = flag.Duration("lock-timeout", time.Second, "2PL lock-wait timeout")
		items        = flag.Int("items", 200, "micro: stock items")
		refill       = flag.Int64("refill", 100, "micro: REFILL constant")
		warehouses   = flag.Int("warehouses", 2, "tpcc: warehouses")
		stock        = flag.Int("stock", 30, "tpcc: stock rows per warehouse")
		seed         = flag.Int64("seed", 1, "seed for treaty optimization and request draws")
		maxInflight  = flag.Int("max-inflight", 1024, "submissions in flight before 429 backpressure")
		walDir       = flag.String("wal-dir", "", "durability: directory for per-site write-ahead logs (site-<k>.wal); boot replays it and rejoins the fabric")
		walSync      = flag.Bool("wal-sync", false, "durability: fsync every WAL batch before acknowledging (survives power loss, slower)")
		addr         = flag.String("addr", ":8080", "serving mode: HTTP listen address (drive mode: loopback default)")
		joinSeed     = flag.String("join", "", "elastic join: base URL of any serving member of a running multi-process cluster; this process boots one site wider, is admitted through the two-phase join handshake, and serves (requires -workload none plus the cluster's -register files and protocol flags)")
		drive        = flag.String("drive", "", "drive mode: clients=N,duration=5s[,class=Name][,procs=N][,kill=site@t][,join=1@t][,drain=site@t] (closed-loop load over the wire protocol, then exit)")
		warmup       = flag.Duration("warmup", 250*time.Millisecond, "drive mode: warm-up before measuring")
		checkReplay  = flag.Bool("check-replay", true, "drive mode: verify serial-replay equivalence of the commit log")
		verbose      = flag.Bool("v", false, "drive mode: also print per-site store counters")
	)
	flag.Var(&registers, "register", "register a transaction class from a JSON file (wire ClassRequest; repeatable; drive mode registers over HTTP)")
	flag.Parse()

	mode, err := homeo.ParseMode(*modeName)
	if err != nil {
		fatal(err)
	}
	alloc, err := homeo.ParseAlloc(*allocName)
	if err != nil {
		fatal(err)
	}
	base, err := buildWorkload(*workloadName, *sites, *items, *refill, *warehouses, *stock, *seed, *drift)
	if err != nil {
		fatal(err)
	}

	opts := homeo.Options{
		Runtime:       homeo.RuntimeLive,
		Mode:          mode,
		Alloc:         alloc,
		Sites:         *sites,
		RTT:           *rtt,
		Workload:      base,
		CPUPerSite:    *cpu,
		LocalExecTime: *execTime,
		LockTimeout:   *lockTimeout,
		Seed:          *seed,
		MaxInflight:   *maxInflight,
		EnableLog:     *enableLog,
		WAL:           homeo.WALOptions{Dir: *walDir, Sync: *walSync},
	}
	if *ec2 {
		opts.Topology = homeo.EC2(*sites)
	}

	listenAddr := *addr
	if *site >= 0 {
		// Multi-process mode: this process owns exactly one site; the
		// cleanup phase's rounds travel over the HTTP peer fabric.
		peers := splitPeers(*peersFlag)
		if len(peers) < 2 {
			fatal(fmt.Errorf("-site requires -peers naming at least two sites"))
		}
		if *site >= len(peers) {
			fatal(fmt.Errorf("-site %d out of range for %d peers", *site, len(peers)))
		}
		// The peer list fixes the cluster width; -sites is ignored here.
		opts.Sites = len(peers)
		if opts.Workload != nil {
			// Rebuild the workload at the peer-derived width so every
			// process draws an identical instance.
			if opts.Workload, err = buildWorkload(*workloadName, opts.Sites, *items, *refill, *warehouses, *stock, *seed, *drift); err != nil {
				fatal(err)
			}
		}
		if *ec2 {
			opts.Topology = homeo.EC2(opts.Sites)
		}
		opts.Fabric = &homeo.FabricOptions{Site: *site, Peers: peers, Token: *peerToken}
		if listenAddr == ":8080" {
			// Default the listen address to this site's peer URL.
			if u, perr := url.Parse(peers[*site]); perr == nil && u.Host != "" {
				listenAddr = u.Host
			}
		}
	}

	if *joinSeed != "" {
		// Elastic join: derive the peer list and our own site index from
		// the seed member's topology; -site/-peers/-sites don't apply.
		if *site >= 0 || *peersFlag != "" {
			fatal(fmt.Errorf("-join derives -site and -peers from the seed's topology; don't pass them"))
		}
		if *drive != "" {
			fatal(fmt.Errorf("-join cannot be combined with -drive (the drive mode's join=1 knob spawns its own joiner)"))
		}
		if opts.Workload != nil {
			fatal(fmt.Errorf("-join requires -workload none: the joiner receives its state from the cluster's partition cut, and transaction classes must match via -register"))
		}
		runJoin(opts, *joinSeed, listenAddr, *peerToken, *ec2, registers)
		return
	}

	if *drive != "" {
		cfg, err := parseDrive(*drive)
		if err != nil {
			fatal(err)
		}
		cfg.warmup = *warmup
		cfg.checkReplay = *checkReplay && mode != homeo.ModeLocal
		cfg.verbose = *verbose
		cfg.registers = registers
		opts.EnableLog = cfg.checkReplay
		if cfg.killSite > 0 && cfg.procs == 0 {
			fatal(fmt.Errorf("drive: kill=%d needs procs=N (only spawned peer processes can be killed)", cfg.killSite))
		}
		if (cfg.joinProcs > 0 || cfg.drainSet) && cfg.procs == 0 {
			fatal(fmt.Errorf("drive: join=/drain= need procs=N (elastic chaos runs over the multi-process fabric)"))
		}
		if cfg.procs > 0 {
			if *site >= 0 {
				fatal(fmt.Errorf("-drive procs=N spawns its own peer processes; it cannot be combined with -site"))
			}
			if strings.ToLower(*workloadName) != "none" || cfg.class == "" {
				fatal(fmt.Errorf("drive: procs=N needs -workload none plus -register/class= (merged replay reconstructs commits through registered classes)"))
			}
			os.Exit(runDriveProcs(opts, cfg))
		}
		runDrive(opts, cfg)
		return
	}
	runServe(opts, listenAddr, registers)
}

// splitPeers parses the -peers list, normalizing entries to base URLs.
func splitPeers(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		if !strings.Contains(p, "://") {
			p = "http://" + p
		}
		out = append(out, strings.TrimSuffix(p, "/"))
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "homeostasis-serve:", err)
	os.Exit(1)
}

func buildWorkload(name string, sites, items int, refill int64, warehouses, stock int, seed int64, drift bool) (homeo.Workload, error) {
	switch strings.ToLower(name) {
	case "none", "":
		return nil, nil
	case "micro":
		cfg := micro.Config{Items: items, Refill: refill, NSites: sites}
		if drift {
			// Hot-site rotation: 90% of each site's orders hit its hot
			// window (1/10th of the items); the rotation period scales
			// with the table so per-item demand per hot phase spans
			// multiple negotiation rounds (matching the drift sweep).
			cfg.HotFrac = 0.9
			cfg.RotateEvery = 20 * items
		}
		return micro.New(cfg)
	case "tpcc":
		cfg := tpcc.Config{
			Warehouses:            warehouses,
			DistrictsPerWarehouse: 2,
			StockPerWarehouse:     stock,
			Customers:             200,
			NSites:                sites,
			Seed:                  seed,
		}
		if drift {
			// Skewed warehouse: 95% of each site's New Orders target its
			// rotating home warehouse; rotation scales with the stock
			// table (matching the drift sweep).
			cfg.WarehouseAffinity = 95
			cfg.RotateEvery = 100 * stock
		}
		return tpcc.New(cfg)
	}
	return nil, fmt.Errorf("unknown workload %q (want micro, tpcc, or none)", name)
}

// driveConfig is the parsed drive mode.
type driveConfig struct {
	clients     int
	duration    time.Duration
	class       string
	procs       int
	killSite    int
	killAt      time.Duration
	joinProcs   int
	joinAt      time.Duration
	drainSite   int
	drainSet    bool
	drainAt     time.Duration
	warmup      time.Duration
	checkReplay bool
	verbose     bool
	registers   classFiles
}

// parseChaosAt parses the optional "@when" suffix of a chaos knob: ""
// and "mid" mean the knob's default offset (reported as 0), anything
// else is a positive duration from the start of the drive.
func parseChaosAt(at string) (time.Duration, error) {
	if at == "" || at == "mid" {
		return 0, nil
	}
	d, err := time.ParseDuration(at)
	if err != nil || d <= 0 {
		return 0, fmt.Errorf("drive: bad chaos time %q (want mid or a positive duration)", at)
	}
	return d, nil
}

// parseDrive parses
// "clients=N,duration=5s[,class=Name][,procs=N][,kill=site@t][,join=1@t][,drain=site@t]".
func parseDrive(s string) (driveConfig, error) {
	cfg := driveConfig{clients: 4, duration: 5 * time.Second}
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return cfg, fmt.Errorf("drive: bad option %q (want clients=N,duration=5s[,class=Name][,procs=N][,kill=site@t][,join=1@t][,drain=site@t])", part)
		}
		switch kv[0] {
		case "clients":
			n, err := strconv.Atoi(kv[1])
			if err != nil || n <= 0 {
				return cfg, fmt.Errorf("drive: bad clients %q", kv[1])
			}
			cfg.clients = n
		case "duration":
			d, err := time.ParseDuration(kv[1])
			if err != nil || d <= 0 {
				return cfg, fmt.Errorf("drive: bad duration %q", kv[1])
			}
			cfg.duration = d
		case "class":
			cfg.class = kv[1]
		case "procs":
			n, err := strconv.Atoi(kv[1])
			if err != nil || n < 2 {
				return cfg, fmt.Errorf("drive: bad procs %q (want >= 2)", kv[1])
			}
			cfg.procs = n
		case "kill":
			// kill=site[@when]: SIGKILL the spawned peer process serving
			// that site mid-drive, restart it, and let it recover from its
			// WAL. when is "mid" (the default — halfway through the drive)
			// or a duration offset from the start of the drive.
			v, at, _ := strings.Cut(kv[1], "@")
			n, err := strconv.Atoi(v)
			if err != nil || n < 1 {
				return cfg, fmt.Errorf("drive: bad kill site %q (want a spawned peer site >= 1)", kv[1])
			}
			cfg.killSite = n
			if cfg.killAt, err = parseChaosAt(at); err != nil {
				return cfg, err
			}
		case "join":
			// join=1[@when]: spawn a fresh joiner process mid-drive; it is
			// admitted through the two-phase join handshake and starts
			// taking client traffic as the new highest site. when is "mid"
			// (the default) or a duration offset from the drive's start.
			v, at, _ := strings.Cut(kv[1], "@")
			n, err := strconv.Atoi(v)
			if err != nil || n != 1 {
				return cfg, fmt.Errorf("drive: bad join %q (only join=1 is supported)", kv[1])
			}
			cfg.joinProcs = 1
			if cfg.joinAt, err = parseChaosAt(at); err != nil {
				return cfg, err
			}
		case "drain":
			// drain=site[@when]: drain the given original site mid-drive —
			// its deltas are absorbed into the replicated base, the slot is
			// fenced, and its clients stop. when defaults to 3/4 through the
			// drive (after a join=1@mid has landed).
			v, at, _ := strings.Cut(kv[1], "@")
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				return cfg, fmt.Errorf("drive: bad drain site %q", kv[1])
			}
			cfg.drainSite, cfg.drainSet = n, true
			if cfg.drainAt, err = parseChaosAt(at); err != nil {
				return cfg, err
			}
		default:
			return cfg, fmt.Errorf("drive: unknown option %q", kv[0])
		}
	}
	return cfg, nil
}

// loadClassRequest reads a wire.ClassRequest JSON file.
func loadClassRequest(path string) (wire.ClassRequest, error) {
	var spec wire.ClassRequest
	data, err := os.ReadFile(path)
	if err != nil {
		return spec, err
	}
	if err := json.Unmarshal(data, &spec); err != nil {
		return spec, fmt.Errorf("%s: %w", path, err)
	}
	return spec, nil
}

// boot builds the cluster and reports how long it took.
func boot(opts homeo.Options) *homeo.Cluster {
	bootStart := time.Now()
	c, err := homeo.New(opts)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("booted %s on %d sites in %v (mode %s, alloc %s)\n",
		c.WorkloadName(), c.Sites(), time.Since(bootStart).Round(time.Millisecond),
		opts.Mode, opts.Alloc)
	return c
}

// registerLocal registers -register class files directly on the cluster
// (the boot path; drive mode registers over HTTP instead).
func registerLocal(c *homeo.Cluster, registers classFiles) {
	for _, path := range registers {
		spec, err := loadClassRequest(path)
		if err != nil {
			fatal(err)
		}
		t, err := c.Register(homeo.ClassSpec{
			Name: spec.Name, L: spec.L, SQL: spec.SQL,
			Bounds: spec.Bounds, Initial: spec.Initial, Rows: spec.Rows,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("registered class %s(%s)\n", t.Name(), strings.Join(t.Params(), ", "))
	}
}

// advertiseURL normalizes a listen address or base URL into an
// advertised peer base URL.
func advertiseURL(addr string) string {
	if strings.Contains(addr, "://") {
		return strings.TrimSuffix(addr, "/")
	}
	if strings.HasPrefix(addr, ":") {
		return "http://127.0.0.1" + addr
	}
	return "http://" + strings.TrimSuffix(addr, "/")
}

// runServe serves the wire protocol until SIGINT/SIGTERM, then shuts down
// gracefully: stop admitting, drain in-flight transactions, print final
// stats, exit 0.
func runServe(opts homeo.Options, addr string, registers classFiles) {
	c := boot(opts)
	registerLocal(c, registers)
	// Durability: replay the WAL (if any) on top of the deterministic boot
	// state and rejoin the fabric, before the listener opens.
	if rec, err := c.Recover(); err != nil {
		fatal(err)
	} else if rec > 0 {
		fmt.Printf("recovered %d WAL records\n", rec)
	}
	serveCluster(c, addr)
}

// runJoin boots this process as a fresh site of a running multi-process
// cluster: fetch the seed member's topology (with backoff — the seed may
// itself still be booting), boot one site wider with the peers' address
// list plus our own, run the two-phase join handshake, then serve as a
// full member. The listener opens only after the join completes, so
// "healthy" implies "admitted".
func runJoin(opts homeo.Options, seed, listenAddr, token string, useEC2 bool, registers classFiles) {
	seedURL := advertiseURL(seed)
	ownURL := advertiseURL(listenAddr)
	ctx := context.Background()
	seedCl := client.New(seedURL, client.Options{PeerToken: token})

	var topo wire.TopologyResponse
	var terr error
	deadline := time.Now().Add(60 * time.Second)
	for wait := 100 * time.Millisecond; ; {
		if topo, terr = seedCl.Topology(ctx); terr == nil {
			break
		}
		if time.Now().After(deadline) {
			fatal(fmt.Errorf("join: seed %s never answered the topology query: %v", seedURL, terr))
		}
		time.Sleep(wait)
		if wait *= 2; wait > 2*time.Second {
			wait = 2 * time.Second
		}
	}
	if topo.Sites < 1 || len(topo.SiteAddrs) != topo.Sites || len(topo.SiteStatus) != topo.Sites {
		fatal(fmt.Errorf("join: seed %s reported an incomplete topology (%d sites, %d addresses): every member of a joinable cluster needs an advertised peer base URL",
			seedURL, topo.Sites, len(topo.SiteAddrs)))
	}
	selfSite := topo.Sites
	peers := make([]string, selfSite+1)
	for k, a := range topo.SiteAddrs {
		if a == "" && topo.SiteStatus[k] == "active" {
			fatal(fmt.Errorf("join: seed %s has no advertised address for active site %d (an in-process cluster cannot admit process joins)", seedURL, k))
		}
		peers[k] = a // "" only for gone slots, fenced before any scatter
	}
	peers[selfSite] = ownURL
	opts.Sites = selfSite + 1
	opts.Fabric = &homeo.FabricOptions{Site: selfSite, Peers: peers, Token: token}
	if useEC2 {
		opts.Topology = homeo.EC2(opts.Sites)
	}

	c := boot(opts)
	registerLocal(c, registers)
	// Fence slots that drained before we existed: they are excluded from
	// scatters and get zero treaty slack, exactly as if we had watched
	// the drain.
	for k, st := range topo.SiteStatus {
		if st == "gone" {
			c.MarkSiteGone(k)
		}
	}
	if rec, err := c.Recover(); err != nil {
		fatal(err)
	} else if rec > 0 {
		fmt.Printf("recovered %d WAL records\n", rec)
	}
	joinStart := time.Now()
	idx, err := c.Join(ownURL)
	if err != nil {
		fatal(fmt.Errorf("join via %s: %v", seedURL, err))
	}
	fmt.Printf("joined as site %d in %v (epoch %d, %d sites, %d active)\n",
		idx, time.Since(joinStart).Round(time.Millisecond), c.TopologyEpoch(), c.Sites(), c.ActiveSites())

	addr := listenAddr
	if u, perr := url.Parse(ownURL); perr == nil && u.Host != "" {
		addr = u.Host
	}
	serveCluster(c, addr)
}

// serveCluster mounts the HTTP API on a booted (and, for joiners,
// admitted) cluster and serves until SIGINT/SIGTERM.
func serveCluster(c *homeo.Cluster, addr string) {
	handler := httpapi.NewHandler(c)
	httpSrv := &http.Server{Addr: addr, Handler: handler}
	fmt.Printf("serving on %s  (POST /v1/classes, POST /v1/txn, GET /v1/stats, GET /healthz)\n", addr)

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		fatal(err)
	case sig := <-sigc:
		fmt.Printf("\n%s: shutting down...\n", sig)
	}
	// Graceful shutdown: refuse new work with 503, let in-flight requests
	// finish (bounded), then cancel whatever is still running (abandoned
	// per-call-timeout transactions) via the runtime drain.
	handler.Drain()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		_ = httpSrv.Close()
	}
	c.Close()
	st := c.Stats()
	fmt.Printf("final: committed=%d dropped=%d sync=%.2f%% store: commits=%d aborts=%d deadlocks=%d timeouts=%d\n",
		st.Committed, st.Dropped, st.SyncRatioPct,
		st.Store.Commits, st.Store.Aborts, st.Store.Deadlocks, st.Store.Timeouts)
}

// runDrive boots the server on a listener, registers classes over HTTP,
// and runs the closed-loop driver through the wire client — the exact
// code path external users take.
func runDrive(opts homeo.Options, cfg driveConfig) {
	c := boot(opts)
	handler := httpapi.NewHandler(c)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fatal(err)
	}
	httpSrv := &http.Server{Handler: handler}
	go httpSrv.Serve(ln)
	baseURL := "http://" + ln.Addr().String()

	ctx := context.Background()
	cl := client.New(baseURL, client.Options{Seed: opts.Seed})
	if err := cl.Health(ctx); err != nil {
		fatal(err)
	}

	// Register class files over HTTP: the online path a real client uses.
	specByName := map[string]wire.ClassRequest{}
	for _, path := range cfg.registers {
		spec, err := loadClassRequest(path)
		if err != nil {
			fatal(err)
		}
		info, err := cl.RegisterClass(ctx, spec)
		if err != nil {
			fatal(err)
		}
		specByName[info.Name] = spec
		pinned := ""
		if info.Pinned {
			pinned = " [pinned: " + info.PinReason + "]"
		}
		fmt.Printf("registered class %s(%s) over HTTP%s\n", info.Name, strings.Join(info.Params, ", "), pinned)
	}
	var driveParams []string
	var driveBounds map[string][2]int64
	if cfg.class != "" {
		spec, ok := specByName[cfg.class]
		if !ok {
			fatal(fmt.Errorf("drive: class %q was not registered via -register", cfg.class))
		}
		info, err := cl.ListClasses(ctx)
		if err != nil {
			fatal(err)
		}
		for _, ci := range info {
			if ci.Name == cfg.class {
				driveParams = ci.Params
			}
		}
		driveBounds = spec.Bounds
	}
	// Durability: classes are registered, so WAL replay can land on top.
	if rec, err := c.Recover(); err != nil {
		fatal(err)
	} else if rec > 0 {
		fmt.Printf("recovered %d WAL records\n", rec)
	}

	fmt.Printf("driving %d clients/site for %v over %s (warmup %v)...\n",
		cfg.clients, cfg.duration, baseURL, cfg.warmup)

	var stop atomic.Bool
	var submitted, failed atomic.Int64
	var wg sync.WaitGroup
	for site := 0; site < c.Sites(); site++ {
		for k := 0; k < cfg.clients; k++ {
			site := site
			id := site*cfg.clients + k
			wg.Add(1)
			go func() {
				defer wg.Done()
				rng := rand.New(rand.NewSource(opts.Seed*1_000_003 + int64(id)))
				for !stop.Load() {
					req := wire.TxnRequest{Site: &site}
					if cfg.class != "" {
						req.Class = cfg.class
						req.Args = drawArgs(rng, driveParams, driveBounds)
					}
					res, err := cl.Submit(ctx, req)
					submitted.Add(1)
					if err != nil || res.Error != nil {
						failed.Add(1)
					}
				}
			}()
		}
	}
	time.Sleep(cfg.warmup)
	c.BeginMeasure()
	time.Sleep(cfg.duration)
	stop.Store(true)
	wg.Wait()

	// Report through the wire protocol, like any external observer.
	st, err := cl.Stats(ctx)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\nsubmitted:        %d (%d failed client-side)\n", submitted.Load(), failed.Load())
	fmt.Printf("committed:        %d (%.1f txn/s real)\n", st.Committed, st.ThroughputTxnS)
	fmt.Printf("sync ratio:       %.2f%%\n", st.SyncRatioPct)
	fmt.Printf("conflict aborts:  %d\n", st.ConflictAborts)
	fmt.Printf("dropped:          %d (livelocked %d)\n", st.Dropped, st.Livelocked)
	if opts.Alloc != homeo.AllocDefault {
		fmt.Printf("co-winners:       %d (batched cleanup commits)\n", st.CoWinnerCommits)
	}
	if st.TreatyGenFailures > 0 {
		fmt.Printf("gen failures:     %d (units degraded to pin treaties)\n", st.TreatyGenFailures)
	}
	fmt.Printf("latency:          p50=%.3fms p90=%.3fms p99=%.3fms max=%.3fms\n",
		st.LatencyP50MS, st.LatencyP90MS, st.LatencyP99MS, st.LatencyMaxMS)
	fmt.Printf("store (cluster):  commits=%d aborts=%d deadlocks=%d timeouts=%d\n",
		st.StoreCluster.Commits, st.StoreCluster.Aborts, st.StoreCluster.Deadlocks, st.StoreCluster.Timeouts)
	if cfg.verbose {
		for site, s := range st.StorePerSite {
			fmt.Printf("store (site %d):   commits=%d aborts=%d deadlocks=%d timeouts=%d\n",
				site, s.Commits, s.Aborts, s.Deadlocks, s.Timeouts)
		}
		fmt.Printf("analysis cache:   hits=%d misses=%d\n",
			st.AnalysisCacheHits, st.AnalysisCacheMisses)
		fmt.Printf("solver:           warm-starts=%d fallbacks=%d\n",
			st.SolverWarmStarts, st.SolverFallbacks)
	}

	handler.Drain()
	_ = httpSrv.Close()
	c.Close()

	exit := 0
	if st.Committed == 0 {
		fmt.Println("FAIL: no transactions committed in the measurement window")
		exit = 1
	}
	if cfg.checkReplay {
		if err := c.CheckReplayEquivalence(); err != nil {
			fmt.Println("FAIL: replay equivalence:", err)
			exit = 1
		} else {
			fmt.Printf("replay check:     OK (%d committed transactions observationally equivalent under serial replay)\n",
				c.Committed())
		}
	}
	if live := c.System().E.Live(); live != 0 {
		fmt.Printf("FAIL: %d processes still alive after drain\n", live)
		exit = 1
	}
	os.Exit(exit)
}

// drawArgs draws an argument vector for the driven class: uniform within
// the declared bounds, zero for unbounded parameters.
func drawArgs(rng *rand.Rand, params []string, bounds map[string][2]int64) []int64 {
	args := make([]int64, len(params))
	for i, p := range params {
		if b, ok := bounds[p]; ok && b[1] >= b[0] {
			args[i] = b[0] + rng.Int63n(b[1]-b[0]+1)
		}
	}
	return args
}

// childFlagSkip lists flags runDriveProcs must not forward verbatim to
// the peer processes it spawns (they get their own
// -site/-peers/-addr/-wal-dir, and must not re-enter drive mode).
// -register IS forwarded: every process registers the same class files in
// the same order at boot, so a peer restarted by the kill= chaos knob
// re-derives identical units before replaying its WAL.
var childFlagSkip = map[string]bool{
	"drive": true, "addr": true, "site": true, "peers": true,
	"enable-log": true, "warmup": true, "wal-dir": true,
	"check-replay": true, "v": true, "peer-token": true, "join": true,
}

// reservePorts picks n distinct free loopback ports by binding and
// releasing them together.
func reservePorts(n int) ([]string, error) {
	lns := make([]net.Listener, 0, n)
	addrs := make([]string, 0, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			break
		}
		lns = append(lns, ln)
		addrs = append(addrs, ln.Addr().String())
	}
	for _, ln := range lns {
		_ = ln.Close()
	}
	if len(addrs) < n {
		return nil, fmt.Errorf("could not reserve %d loopback ports", n)
	}
	return addrs, nil
}

// runDriveProcs is the multi-process drive mode: spawn procs-1 peer
// processes (this binary with -site k -peers ...), serve site 0 itself,
// run the closed-loop driver against each site's own server, and verify
// the merged commit log (ordered by Lamport clock across processes) is
// observationally equivalent under serial replay. Every process —
// including the spawned peers — registers the same -register class files
// in the same order at boot. With kill=site@t one peer is SIGKILLed
// mid-drive and restarted; it replays its write-ahead log, rejoins the
// fabric, and the replay check runs over the merged post-recovery logs.
func runDriveProcs(opts homeo.Options, cfg driveConfig) (exit int) {
	n := cfg.procs
	total := n + cfg.joinProcs // joiner (if any) becomes site n
	fail := func(err error) int {
		fmt.Fprintln(os.Stderr, "homeostasis-serve:", err)
		return 1
	}
	if cfg.killSite >= n {
		return fail(fmt.Errorf("drive: kill=%d out of range (procs=%d spawns peer sites 1..%d)", cfg.killSite, n, n-1))
	}
	if cfg.drainSet {
		if cfg.drainSite >= n {
			return fail(fmt.Errorf("drive: drain=%d out of range (procs=%d runs original sites 0..%d)", cfg.drainSite, n, n-1))
		}
		if cfg.drainSite == cfg.killSite && cfg.killSite > 0 {
			return fail(fmt.Errorf("drive: drain=%d and kill=%d name the same site", cfg.drainSite, cfg.killSite))
		}
	}
	if cfg.killSite > 0 && opts.WAL.Dir == "" {
		// A kill without durability would just lose the site's history;
		// give the cluster a scratch WAL when the operator didn't.
		dir, err := os.MkdirTemp("", "homeo-wal-")
		if err != nil {
			return fail(err)
		}
		defer os.RemoveAll(dir)
		opts.WAL.Dir = dir
		fmt.Printf("kill=%d: write-ahead logs in %s\n", cfg.killSite, dir)
	}
	// Reserve one port per original site, plus the joiner's (assigned up
	// front so its advertised URL is stable across the whole run).
	addrs, err := reservePorts(total)
	if err != nil {
		return fail(err)
	}
	allPeers := make([]string, total)
	for k := range allPeers {
		allPeers[k] = "http://" + addrs[k]
	}
	peers := allPeers[:n] // the boot membership; the joiner announces itself
	// One shared secret for the whole spawned cluster, fresh per run.
	tokenBytes := make([]byte, 16)
	if _, err := cryptorand.Read(tokenBytes); err != nil {
		return fail(err)
	}
	token := hex.EncodeToString(tokenBytes)
	opts.Sites = n
	opts.Fabric = &homeo.FabricOptions{Site: 0, Peers: peers, Token: token}
	opts.EnableLog = true

	// Forward the protocol/workload flags the operator set; each peer is
	// one site of the same cluster and must be configured identically.
	var inherited []string
	flag.Visit(func(f *flag.Flag) {
		if !childFlagSkip[f.Name] {
			inherited = append(inherited, "-"+f.Name+"="+f.Value.String())
		}
	})
	self, err := os.Executable()
	if err != nil {
		return fail(err)
	}
	childArgs := make([][]string, total)
	for k := 1; k < n; k++ {
		args := append([]string{}, inherited...)
		args = append(args,
			"-site", strconv.Itoa(k),
			"-peers", strings.Join(addrs[:n], ","),
			"-addr", addrs[k],
			"-peer-token", token,
			"-enable-log")
		if opts.WAL.Dir != "" {
			args = append(args, "-wal-dir", opts.WAL.Dir)
		}
		childArgs[k] = args
	}
	if cfg.joinProcs > 0 {
		// The joiner derives its own -site/-peers from the seed's topology
		// (site 0, this process) at spawn time.
		args := append([]string{}, inherited...)
		args = append(args,
			"-join", allPeers[0],
			"-addr", addrs[n],
			"-peer-token", token,
			"-enable-log")
		if opts.WAL.Dir != "" {
			args = append(args, "-wal-dir", opts.WAL.Dir)
		}
		childArgs[n] = args
	}
	// Each child gets its own process group, and the deferred reaper
	// SIGKILLs whatever is still running on any exit path — a driver
	// failure must not leak orphan site processes.
	children := make([]*exec.Cmd, total)
	startChild := func(k int) (*exec.Cmd, error) {
		ch := exec.Command(self, childArgs[k]...)
		ch.Stdout = os.Stderr
		ch.Stderr = os.Stderr
		ch.SysProcAttr = &syscall.SysProcAttr{Setpgid: true}
		if err := ch.Start(); err != nil {
			return nil, err
		}
		return ch, nil
	}
	defer func() {
		for _, ch := range children {
			if ch != nil && ch.Process != nil && ch.ProcessState == nil {
				_ = syscall.Kill(-ch.Process.Pid, syscall.SIGKILL)
				_ = ch.Wait()
			}
		}
	}()
	for k := 1; k < n; k++ {
		ch, err := startChild(k)
		if err != nil {
			return fail(err)
		}
		children[k] = ch
	}

	// Site 0 lives in this process, mounted on its reserved address. It
	// registers the class files locally in file order — the same order
	// every child registers them at boot — then recovers its WAL (classes
	// first: replay needs the derived units).
	bootStart := time.Now()
	c, err := homeo.New(opts)
	if err != nil {
		return fail(err)
	}
	fmt.Printf("booted %s on %d sites in %v (mode %s, alloc %s)\n",
		c.WorkloadName(), c.Sites(), time.Since(bootStart).Round(time.Millisecond),
		opts.Mode, opts.Alloc)
	var driveParams []string
	var driveBounds map[string][2]int64
	for _, path := range cfg.registers {
		spec, err := loadClassRequest(path)
		if err != nil {
			return fail(err)
		}
		t, err := c.Register(homeo.ClassSpec{
			Name: spec.Name, L: spec.L, SQL: spec.SQL,
			Bounds: spec.Bounds, Initial: spec.Initial, Rows: spec.Rows,
		})
		if err != nil {
			return fail(fmt.Errorf("registering %s: %v", path, err))
		}
		if t.Name() == cfg.class {
			driveParams = t.Params()
			driveBounds = spec.Bounds
		}
	}
	if driveParams == nil {
		return fail(fmt.Errorf("drive: class %q was not registered via -register", cfg.class))
	}
	if _, err := c.Recover(); err != nil {
		return fail(err)
	}
	handler := httpapi.NewHandler(c)
	ln, err := net.Listen("tcp", addrs[0])
	if err != nil {
		return fail(err)
	}
	httpSrv := &http.Server{Handler: handler}
	go httpSrv.Serve(ln)

	ctx := context.Background()
	// Health polling backs off exponentially: on a loaded 1-core box the
	// siblings boot serially, so a late-started process is normal, not an
	// error — keep retrying within the budget instead of fataling early.
	waitHealthy := func(k int, cl *client.Client, budget time.Duration) error {
		deadline := time.Now().Add(budget)
		wait := 25 * time.Millisecond
		for {
			if err := cl.Health(ctx); err == nil {
				return nil
			} else if time.Now().After(deadline) {
				return fmt.Errorf("site %d (%s) never became healthy: %v", k, allPeers[k], err)
			}
			time.Sleep(wait)
			if wait *= 2; wait > 500*time.Millisecond {
				wait = 500 * time.Millisecond
			}
		}
	}
	clients := make([]*client.Client, total)
	for k := 0; k < n; k++ {
		clients[k] = client.New(allPeers[k], client.Options{Seed: opts.Seed + int64(k), PeerToken: token})
		if err := waitHealthy(k, clients[k], 30*time.Second); err != nil {
			return fail(err)
		}
	}
	fmt.Printf("site fabric up: %d processes (%s), %d class files registered at every site\n",
		n, strings.Join(addrs[:n], " "), len(cfg.registers))

	fmt.Printf("driving %d clients/site against %d site processes for %v...\n",
		cfg.clients, n, cfg.duration)
	fmt.Println("(note: per-site stats windows start at process boot — -warmup does not apply across processes)")
	var stop atomic.Bool
	stopSite := make([]atomic.Bool, total) // drained sites stop their clients
	var submitted, failed atomic.Int64
	var wg sync.WaitGroup
	startClients := func(siteIdx int) {
		for kk := 0; kk < cfg.clients; kk++ {
			cl := clients[siteIdx]
			id := siteIdx*cfg.clients + kk
			halt := &stopSite[siteIdx]
			wg.Add(1)
			go func() {
				defer wg.Done()
				rng := rand.New(rand.NewSource(opts.Seed*1_000_003 + int64(id)))
				for !stop.Load() && !halt.Load() {
					req := wire.TxnRequest{Class: cfg.class, Args: drawArgs(rng, driveParams, driveBounds)}
					res, err := cl.Submit(ctx, req)
					submitted.Add(1)
					if err != nil || res.Error != nil {
						failed.Add(1)
					}
				}
			}()
		}
	}
	for siteIdx := 0; siteIdx < n; siteIdx++ {
		startClients(siteIdx)
	}

	// Chaos timeline: each knob is one event at an offset into the drive,
	// run in order on this goroutine while the clients hammer away.
	type chaosEvent struct {
		at  time.Duration
		run func(at time.Duration) error
	}
	clampAt := func(at, dflt time.Duration) time.Duration {
		if at <= 0 || at >= cfg.duration {
			return dflt
		}
		return at
	}
	var events []chaosEvent
	if cfg.killSite > 0 {
		events = append(events, chaosEvent{clampAt(cfg.killAt, cfg.duration/2), func(at time.Duration) error {
			k := cfg.killSite
			pid := children[k].Process.Pid
			fmt.Printf("chaos: SIGKILL site %d (pid %d) %v into the drive\n", k, pid, at)
			_ = syscall.Kill(-pid, syscall.SIGKILL)
			_ = children[k].Wait()
			ch, err := startChild(k)
			if err != nil {
				return fmt.Errorf("restarting site %d: %v", k, err)
			}
			children[k] = ch
			if err := waitHealthy(k, clients[k], 30*time.Second); err != nil {
				return fmt.Errorf("site %d did not recover: %v", k, err)
			}
			fmt.Printf("chaos: site %d restarted, recovered, and rejoined\n", k)
			return nil
		}})
	}
	if cfg.joinProcs > 0 {
		events = append(events, chaosEvent{clampAt(cfg.joinAt, cfg.duration/2), func(at time.Duration) error {
			k := n
			fmt.Printf("chaos: spawning joiner site %d (%s) %v into the drive\n", k, addrs[k], at)
			ch, err := startChild(k)
			if err != nil {
				return fmt.Errorf("starting joiner: %v", err)
			}
			children[k] = ch
			clients[k] = client.New(allPeers[k], client.Options{Seed: opts.Seed + int64(k), PeerToken: token})
			// The joiner's listener opens only after the join handshake
			// completes, so healthy implies admitted.
			if err := waitHealthy(k, clients[k], 60*time.Second); err != nil {
				return fmt.Errorf("joiner never became healthy: %v", err)
			}
			st, serr := clients[k].Stats(ctx)
			if serr != nil {
				return fmt.Errorf("joiner stats: %v", serr)
			}
			fmt.Printf("chaos: site %d joined (epoch %d, %d sites) — starting its clients\n", k, st.TopologyEpoch, st.Sites)
			startClients(k)
			return nil
		}})
	}
	if cfg.drainSet {
		events = append(events, chaosEvent{clampAt(cfg.drainAt, 3*cfg.duration/4), func(at time.Duration) error {
			s := cfg.drainSite
			fmt.Printf("chaos: draining site %d %v into the drive\n", s, at)
			var derr error
			if s == 0 {
				// Site 0 is this process: drain it directly.
				derr = c.Drain(0)
			} else {
				dctx, cancel := context.WithTimeout(ctx, 60*time.Second)
				_, derr = clients[s].DrainSite(dctx, s)
				cancel()
			}
			if derr != nil {
				return fmt.Errorf("draining site %d: %v", s, derr)
			}
			stopSite[s].Store(true)
			fmt.Printf("chaos: site %d drained (deltas absorbed into the base, slot fenced)\n", s)
			return nil
		}})
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].at < events[j].at })
	elapsed := time.Duration(0)
	for _, ev := range events {
		if ev.at > elapsed {
			time.Sleep(ev.at - elapsed)
			elapsed = ev.at
		}
		if err := ev.run(ev.at); err != nil {
			stop.Store(true)
			wg.Wait()
			return fail(err)
		}
	}
	if cfg.duration > elapsed {
		time.Sleep(cfg.duration - elapsed)
	}
	stop.Store(true)
	wg.Wait()

	// Gather per-process stats, logs, and partitions over the wire — from
	// every process that ran, including a drained site (its partition is
	// the absorbed base) and a mid-drive joiner.
	procsRan := 0
	var totalCommitted, totalSynced, totalNeg int64
	logs := make([][]wire.LogEntry, total)
	parts := make([]wire.PartitionResponse, 0, total)
	for k, cl := range clients {
		if cl == nil {
			continue // joiner slot when the join event never fired
		}
		procsRan++
		st, err := cl.Stats(ctx)
		if err != nil {
			return fail(fmt.Errorf("stats from site %d: %v", k, err))
		}
		totalCommitted += st.Committed
		totalSynced += st.Synced
		totalNeg += st.Negotiations
		fmt.Printf("site %d: committed=%d synced=%d negotiations=%d neg-p50=%.3fms neg-p99=%.3fms fabric-errors=%d\n",
			k, st.Committed, st.Synced, st.Negotiations, st.NegLatencyP50MS, st.NegLatencyP99MS, st.FabricErrors)
		if st.RecoveredWALRecords > 0 || st.RoundsAdopted > 0 || st.RoundsAborted > 0 {
			fmt.Printf("site %d: recovered %d WAL records, failover rounds adopted=%d aborted=%d\n",
				k, st.RecoveredWALRecords, st.RoundsAdopted, st.RoundsAborted)
		}
		lr, err := cl.PeerLog(ctx)
		if err != nil {
			return fail(fmt.Errorf("commit log from site %d: %v", k, err))
		}
		logs[k] = lr.Entries
		pt, err := cl.PeerDB(ctx)
		if err != nil {
			return fail(fmt.Errorf("partition from site %d: %v", k, err))
		}
		parts = append(parts, pt)
	}
	fmt.Printf("\nsubmitted:        %d (%d failed client-side)\n", submitted.Load(), failed.Load())
	fmt.Printf("committed:        %d across %d processes (%.1f txn/s)\n",
		totalCommitted, procsRan, float64(totalCommitted)/cfg.duration.Seconds())
	fmt.Printf("sync rounds:      %d (each = 2 peer message rounds over the HTTP fabric)\n", totalNeg)

	if totalCommitted == 0 {
		fmt.Println("FAIL: no transactions committed")
		exit = 1
	}
	if cfg.checkReplay {
		if err := c.CheckMergedReplay(logs, parts); err != nil {
			fmt.Println("FAIL: merged replay equivalence:", err)
			exit = 1
		} else {
			committedEntries := 0
			for _, l := range logs {
				committedEntries += len(l)
			}
			fmt.Printf("replay check:     OK (%d commits from %d processes observationally equivalent under serial replay)\n",
				committedEntries, procsRan)
		}
	}

	// Graceful teardown: children first (they may still hold peer
	// connections to us), then our own server. The deferred reaper skips
	// anything already waited on here.
	for _, ch := range children {
		if ch != nil {
			_ = ch.Process.Signal(syscall.SIGTERM)
		}
	}
	for _, ch := range children {
		if ch != nil {
			_ = ch.Wait()
		}
	}
	handler.Drain()
	_ = httpSrv.Close()
	c.Close()
	return exit
}
