// Command homeostasis-serve boots a live multi-site homeostasis cluster
// and serves transactions in real time. It is the wall-clock counterpart
// of cmd/homeostasis-bench: the same protocol core (internal/store,
// internal/homeostasis) runs on internal/rtlive instead of the simulator,
// so site CPU caps, lock timeouts, and WAN round trips are real waits and
// real concurrency limits.
//
// Serving mode (default) exposes HTTP/JSON:
//
//	homeostasis-serve -workload tpcc -sites 3 -addr :8080
//	curl -s -X POST localhost:8080/txn -d '{"site":0}'
//	curl -s localhost:8080/stats
//
// POST /txn executes one transaction drawn from the workload's request
// mix at the given site (round-robin when omitted) and reports its name,
// latency, and whether it triggered a treaty synchronization. GET /stats
// reports cluster-wide throughput, latency percentiles, dropped requests,
// and per-site 2PL store counters. GET /healthz is a liveness probe.
//
// Drive mode runs a built-in closed-loop load driver instead of serving:
//
//	homeostasis-serve -workload tpcc -drive clients=8,duration=5s
//
// It starts the given number of clients per site, measures for the given
// duration, prints real throughput and latency percentiles through the
// same metrics collector the experiments use, verifies the commit log is
// observationally equivalent under serial replay (Theorem 3.8), and exits
// nonzero on zero commits or a failed check.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/homeostasis"
	"repro/internal/micro"
	"repro/internal/rt"
	"repro/internal/rtlive"
	"repro/internal/tpcc"
	"repro/internal/workload"
)

func main() {
	var (
		workloadName = flag.String("workload", "tpcc", "workload: micro or tpcc")
		modeName     = flag.String("mode", "homeo", "protocol: homeo, opt, homeo-default, 2pc, or local")
		allocName    = flag.String("alloc", "default", "treaty allocation: default (mode's builtin), equal, model, or adaptive (non-default also enables batched renegotiation)")
		drift        = flag.Bool("drift", false, "enable the workload's drift scenario (micro: hot-site rotation; tpcc: skewed warehouse)")
		sites        = flag.Int("sites", 2, "number of replica sites")
		rtt          = flag.Duration("rtt", 50*time.Millisecond, "uniform inter-site round-trip time (really slept)")
		cpu          = flag.Int("cpu", 4, "CPU slots per site (a real concurrency limit)")
		execTime     = flag.Duration("exec-time", 2*time.Millisecond, "local execution service time per transaction")
		lockTimeout  = flag.Duration("lock-timeout", time.Second, "2PL lock-wait timeout")
		items        = flag.Int("items", 200, "micro: stock items")
		refill       = flag.Int64("refill", 100, "micro: REFILL constant")
		warehouses   = flag.Int("warehouses", 2, "tpcc: warehouses")
		stock        = flag.Int("stock", 30, "tpcc: stock rows per warehouse")
		seed         = flag.Int64("seed", 1, "seed for treaty optimization and request draws")
		addr         = flag.String("addr", ":8080", "serving mode: HTTP listen address")
		drive        = flag.String("drive", "", "drive mode: clients=N,duration=5s (closed-loop load, then exit)")
		warmup       = flag.Duration("warmup", 250*time.Millisecond, "drive mode: warm-up before measuring")
		checkReplay  = flag.Bool("check-replay", true, "drive mode: verify serial-replay equivalence of the commit log")
		verbose      = flag.Bool("v", false, "drive mode: also print per-site store counters")
	)
	flag.Parse()

	mode, err := parseMode(*modeName)
	if err != nil {
		fatal(err)
	}
	alloc, err := parseAlloc(*allocName)
	if err != nil {
		fatal(err)
	}
	w, err := buildWorkload(*workloadName, *sites, *items, *refill, *warehouses, *stock, *seed, *drift)
	if err != nil {
		fatal(err)
	}

	opts := homeostasis.Options{
		Mode:          mode,
		Alloc:         alloc,
		Topo:          cluster.Uniform(*sites, rt.Duration(*rtt)),
		CPUPerSite:    *cpu,
		LocalExecTime: rt.Duration(*execTime),
		LockTimeout:   rt.Duration(*lockTimeout),
		// On the live runtime the cleanup phase's consolidated T'
		// executions are real work: charge them a CPU slot and their
		// service time (the simulator's goldens keep the seed model, so
		// this is a serve-only default).
		CleanupExec:      true,
		Seed:             *seed,
		MaxTxnsPerClient: 0,
	}

	if *drive != "" {
		clients, duration, err := parseDrive(*drive)
		if err != nil {
			fatal(err)
		}
		opts.ClientsPerSite = clients
		opts.Warmup = rt.Duration(*warmup)
		opts.Measure = rt.Duration(duration)
		opts.EnableLog = *checkReplay && mode != homeostasis.ModeLocal
		runDrive(w, opts, *checkReplay, *verbose)
		return
	}

	opts.EnableLog = false
	runServe(w, opts, *addr)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "homeostasis-serve:", err)
	os.Exit(1)
}

func parseMode(s string) (homeostasis.Mode, error) {
	switch strings.ToLower(s) {
	case "homeo":
		return homeostasis.ModeHomeo, nil
	case "opt":
		return homeostasis.ModeOpt, nil
	case "homeo-default":
		return homeostasis.ModeHomeoDefault, nil
	case "2pc":
		return homeostasis.ModeTwoPC, nil
	case "local":
		return homeostasis.ModeLocal, nil
	}
	return 0, fmt.Errorf("unknown mode %q", s)
}

func parseAlloc(s string) (homeostasis.Alloc, error) {
	switch strings.ToLower(s) {
	case "", "default":
		return homeostasis.AllocDefault, nil
	case "equal":
		return homeostasis.AllocEqualSplit, nil
	case "model":
		return homeostasis.AllocModel, nil
	case "adaptive":
		return homeostasis.AllocAdaptive, nil
	}
	return 0, fmt.Errorf("unknown alloc %q (want default, equal, model, or adaptive)", s)
}

func buildWorkload(name string, sites, items int, refill int64, warehouses, stock int, seed int64, drift bool) (workload.Workload, error) {
	switch strings.ToLower(name) {
	case "micro":
		cfg := micro.Config{Items: items, Refill: refill, NSites: sites}
		if drift {
			// Hot-site rotation: 90% of each site's orders hit its hot
			// window (1/10th of the items); the rotation period scales
			// with the table so per-item demand per hot phase spans
			// multiple negotiation rounds (matching the drift sweep).
			cfg.HotFrac = 0.9
			cfg.RotateEvery = 20 * items
		}
		return micro.New(cfg)
	case "tpcc":
		cfg := tpcc.Config{
			Warehouses:            warehouses,
			DistrictsPerWarehouse: 2,
			StockPerWarehouse:     stock,
			Customers:             200,
			NSites:                sites,
			Seed:                  seed,
		}
		if drift {
			// Skewed warehouse: 95% of each site's New Orders target its
			// rotating home warehouse; rotation scales with the stock
			// table (matching the drift sweep).
			cfg.WarehouseAffinity = 95
			cfg.RotateEvery = 100 * stock
		}
		return tpcc.New(cfg)
	}
	return nil, fmt.Errorf("unknown workload %q (want micro or tpcc)", name)
}

// parseDrive parses "clients=N,duration=5s".
func parseDrive(s string) (clients int, duration time.Duration, err error) {
	clients, duration = 4, 5*time.Second
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return 0, 0, fmt.Errorf("drive: bad option %q (want clients=N,duration=5s)", part)
		}
		switch kv[0] {
		case "clients":
			clients, err = strconv.Atoi(kv[1])
			if err != nil || clients <= 0 {
				return 0, 0, fmt.Errorf("drive: bad clients %q", kv[1])
			}
		case "duration":
			duration, err = time.ParseDuration(kv[1])
			if err != nil || duration <= 0 {
				return 0, 0, fmt.Errorf("drive: bad duration %q", kv[1])
			}
		default:
			return 0, 0, fmt.Errorf("drive: unknown option %q", kv[0])
		}
	}
	return clients, duration, nil
}

// runDrive boots the cluster and runs the closed-loop load driver: the
// same System.Run path the experiments use, except the runtime is real.
func runDrive(w workload.Workload, opts homeostasis.Options, checkReplay, verbose bool) {
	live := rtlive.New(opts.Seed)
	bootStart := time.Now()
	sys, err := homeostasis.New(live, w, opts)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("booted %s on %d sites in %v (mode %v, alloc %v, %d units)\n",
		w.Name(), opts.Topo.NSites(), time.Since(bootStart).Round(time.Millisecond), opts.Mode, opts.Alloc, w.NumUnits())
	fmt.Printf("driving %d clients/site for %v (warmup %v)...\n",
		opts.ClientsPerSite, rt.Duration(opts.Measure), rt.Duration(opts.Warmup))

	col := sys.Run()

	fmt.Printf("\ncommitted:        %d (%.1f txn/s real)\n", col.Committed, col.Throughput())
	fmt.Printf("sync ratio:       %.2f%%\n", col.SyncRatio())
	fmt.Printf("conflict aborts:  %d\n", col.AbortedConflicts)
	fmt.Printf("dropped:          %d (livelocked %d)\n", col.Dropped, col.Livelocked)
	if opts.Alloc != homeostasis.AllocDefault {
		fmt.Printf("co-winners:       %d (batched cleanup commits)\n", col.CoWinnerCommits)
	}
	if col.TreatyGenFailures > 0 {
		fmt.Printf("gen failures:     %d (units degraded to pin treaties)\n", col.TreatyGenFailures)
	}
	fmt.Printf("latency:          p50=%v p90=%v p99=%v max=%v\n",
		col.Latency.Percentile(50), col.Latency.Percentile(90),
		col.Latency.Percentile(99), col.Latency.Max())
	fmt.Printf("store (cluster):  %s\n", sys.StoreStats())
	if verbose {
		for site, s := range sys.SiteStats() {
			fmt.Printf("store (site %d):   %s\n", site, s)
		}
	}

	failed := false
	if col.Committed == 0 {
		fmt.Println("FAIL: no transactions committed in the measurement window")
		failed = true
	}
	if checkReplay && opts.Mode != homeostasis.ModeLocal {
		if err := sys.CheckReplayEquivalence(); err != nil {
			fmt.Println("FAIL: replay equivalence:", err)
			failed = true
		} else {
			fmt.Printf("replay check:     OK (%d committed transactions observationally equivalent under serial replay)\n",
				len(sys.CommitLog))
		}
	}
	if live.Live() != 0 {
		fmt.Printf("FAIL: %d processes still alive after drain\n", live.Live())
		failed = true
	}
	if failed {
		os.Exit(1)
	}
}

// server is the HTTP serving state: the live system plus per-request
// bookkeeping that lives outside the runtime's execution contract.
type server struct {
	live *rtlive.Runtime
	sys  *homeostasis.System
	w    workload.Workload

	mu  sync.Mutex // guards rng (request draws happen on handler goroutines)
	rng *rand.Rand

	nextID   atomic.Int64
	nextSite atomic.Int64
	start    time.Time
}

// txnRequest is the POST /txn body. All fields are optional.
type txnRequest struct {
	// Site executes the transaction at a specific site; -1 or absent
	// round-robins.
	Site *int `json:"site,omitempty"`
}

// txnResponse reports one executed transaction.
type txnResponse struct {
	Name      string  `json:"name"`
	Args      []int64 `json:"args"`
	Site      int     `json:"site"`
	Committed bool    `json:"committed"`
	Synced    bool    `json:"synced"`
	LatencyMS float64 `json:"latency_ms"`
	Error     string  `json:"error,omitempty"`
}

func (s *server) handleTxn(rw http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		http.Error(rw, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var body txnRequest
	if req.Body != nil {
		// An empty body is fine; decode errors on present bodies are not.
		if err := json.NewDecoder(req.Body).Decode(&body); err != nil && !errors.Is(err, io.EOF) {
			http.Error(rw, "bad request body: "+err.Error(), http.StatusBadRequest)
			return
		}
	}
	n := s.sys.Opts.Topo.NSites()
	site := int(s.nextSite.Add(1)-1) % n
	if body.Site != nil {
		site = *body.Site
		if site < 0 || site >= n {
			http.Error(rw, fmt.Sprintf("site %d out of range [0,%d)", site, n), http.StatusBadRequest)
			return
		}
	}
	s.mu.Lock()
	txn := s.w.Next(s.rng, site)
	s.mu.Unlock()

	resp := txnResponse{Name: txn.Name, Args: txn.Args, Site: site}
	ran := s.live.Exec(int(s.nextID.Add(1)), func(p rt.Proc) {
		start := p.Now()
		synced, err := s.sys.ExecRequest(p, site, txn)
		lat := rt.Duration(p.Now() - start)
		resp.LatencyMS = float64(lat) / float64(rt.Millisecond)
		if err != nil {
			resp.Error = err.Error()
			s.sys.Col.RecordDropped()
			return
		}
		resp.Committed = true
		resp.Synced = synced
		s.sys.Col.RecordCommit(lat, synced)
	})
	if !ran {
		http.Error(rw, "server draining", http.StatusServiceUnavailable)
		return
	}
	writeJSON(rw, resp)
}

// statsResponse is the GET /stats body.
type statsResponse struct {
	Workload  string  `json:"workload"`
	Mode      string  `json:"mode"`
	Sites     int     `json:"sites"`
	UptimeSec float64 `json:"uptime_sec"`

	Committed      int64            `json:"committed"`
	Synced         int64            `json:"synced"`
	SyncRatioPct   float64          `json:"sync_ratio_pct"`
	ConflictAborts int64            `json:"conflict_aborts"`
	Dropped        int64            `json:"dropped"`
	ThroughputTxnS float64          `json:"throughput_txn_s"`
	LatencyP50MS   float64          `json:"latency_p50_ms"`
	LatencyP90MS   float64          `json:"latency_p90_ms"`
	LatencyP99MS   float64          `json:"latency_p99_ms"`
	LatencyMaxMS   float64          `json:"latency_max_ms"`
	StoreCluster   storeStatsJSON   `json:"store_cluster"`
	StorePerSite   []storeStatsJSON `json:"store_per_site"`
}

type storeStatsJSON struct {
	Commits   int64 `json:"commits"`
	Aborts    int64 `json:"aborts"`
	Deadlocks int64 `json:"deadlocks"`
	Timeouts  int64 `json:"timeouts"`
}

func toJSONStats(s homeostasis.StoreStats) storeStatsJSON {
	return storeStatsJSON{Commits: s.Commits, Aborts: s.Aborts, Deadlocks: s.Deadlocks, Timeouts: s.Timeouts}
}

func (s *server) handleStats(rw http.ResponseWriter, _ *http.Request) {
	resp := statsResponse{
		Workload:  s.w.Name(),
		Mode:      s.sys.Opts.Mode.String(),
		Sites:     s.sys.Opts.Topo.NSites(),
		UptimeSec: time.Since(s.start).Seconds(),
	}
	// Snapshot under the execution contract: the collector and stores are
	// shared protocol state. Strictly read-only — a GET must not mutate
	// the collector, so the rolling throughput window is computed without
	// touching Collector.End.
	s.live.Locked(func() {
		col := s.sys.Col
		resp.Committed = col.Committed
		resp.Synced = col.Synced
		resp.SyncRatioPct = col.SyncRatio()
		resp.ConflictAborts = col.AbortedConflicts
		resp.Dropped = col.Dropped
		resp.ThroughputTxnS = col.ThroughputAt(s.live.Now())
		resp.LatencyP50MS = ms(col.Latency.Percentile(50))
		resp.LatencyP90MS = ms(col.Latency.Percentile(90))
		resp.LatencyP99MS = ms(col.Latency.Percentile(99))
		resp.LatencyMaxMS = ms(col.Latency.Max())
		resp.StoreCluster = toJSONStats(s.sys.StoreStats())
		for _, st := range s.sys.SiteStats() {
			resp.StorePerSite = append(resp.StorePerSite, toJSONStats(st))
		}
	})
	writeJSON(rw, resp)
}

func ms(d rt.Duration) float64 { return float64(d) / float64(rt.Millisecond) }

func writeJSON(rw http.ResponseWriter, v any) {
	rw.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(rw)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// runServe boots the cluster and serves transactions over HTTP until
// SIGINT/SIGTERM.
func runServe(w workload.Workload, opts homeostasis.Options, addr string) {
	live := rtlive.New(opts.Seed)
	bootStart := time.Now()
	sys, err := homeostasis.New(live, w, opts)
	if err != nil {
		fatal(err)
	}
	// No warm-up window in serving mode: measure from the start.
	sys.Col.Measuring = true
	sys.Col.Start = live.Now()

	srv := &server{
		live:  live,
		sys:   sys,
		w:     w,
		rng:   rand.New(rand.NewSource(opts.Seed + 101)),
		start: time.Now(),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/txn", srv.handleTxn)
	mux.HandleFunc("/stats", srv.handleStats)
	mux.HandleFunc("/healthz", func(rw http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(rw, "ok")
	})

	httpSrv := &http.Server{Addr: addr, Handler: mux}
	fmt.Printf("booted %s on %d sites in %v (mode %v, %d units)\n",
		w.Name(), opts.Topo.NSites(), time.Since(bootStart).Round(time.Millisecond), opts.Mode, w.NumUnits())
	fmt.Printf("serving on %s  (POST /txn, GET /stats, GET /healthz)\n", addr)

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		fatal(err)
	case <-sigc:
	}
	fmt.Println("\nshutting down...")
	httpSrv.Close()
	live.Drain()
	fmt.Printf("final: committed=%d dropped=%d store: %s\n",
		sys.Col.Committed, sys.Col.Dropped, sys.StoreStats())
}
