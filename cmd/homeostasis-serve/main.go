// Command homeostasis-serve boots a live multi-site homeostasis cluster
// and serves the versioned /v1 wire protocol. It is a thin shell over the
// public embeddable API: repro/homeo builds and runs the cluster,
// repro/homeo/httpapi serves the protocol, repro/homeo/client drives it.
//
// Serving mode (default) exposes HTTP/JSON:
//
//	homeostasis-serve -workload tpcc -sites 3 -addr :8080
//	curl -s -X POST localhost:8080/v1/classes -d '{"l":"transaction Deposit(n) { v := read(acct); write(acct = v + n) }"}'
//	curl -s -X POST localhost:8080/v1/txn -d '{"class":"Deposit","args":[5]}'
//	curl -s -X POST localhost:8080/v1/txn -d '{"site":0}'        # base workload mix
//	curl -s localhost:8080/v1/stats
//	curl -N localhost:8080/v1/stats?stream=1                      # SSE stream
//
// POST /v1/classes registers a transaction class from L or SQL source:
// the server parses and analyzes it and generates treaties online, so
// transactions never seen at compile time serve coordination-free where
// the analysis allows. POST /v1/txn invokes a registered class (or draws
// from the base workload's mix), singly or in batch, with 429
// backpressure on queue overflow and structured error codes
// distinguishing abort, timeout, and livelock. On SIGINT/SIGTERM the
// server stops admitting (503), drains in-flight work, prints final
// stats, and exits 0.
//
// Drive mode runs a closed-loop load driver over the same wire protocol:
//
//	homeostasis-serve -workload tpcc -drive clients=8,duration=5s
//	homeostasis-serve -workload none -register class.json -drive clients=4,duration=5s,class=Deposit
//
// The driver boots the server on a loopback listener, registers any
// -register class files over HTTP, and runs the given number of
// closed-loop clients per site through homeo/client — the same code path
// external users take. It prints real throughput and latency through the
// same collector the experiments use, verifies the commit log is
// observationally equivalent under serial replay (Theorem 3.8), and exits
// nonzero on zero commits or a failed check.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/homeo"
	"repro/homeo/client"
	"repro/homeo/httpapi"
	"repro/homeo/wire"
	"repro/internal/micro"
	"repro/internal/tpcc"
)

// classFiles collects repeatable -register flags.
type classFiles []string

func (c *classFiles) String() string { return strings.Join(*c, ",") }
func (c *classFiles) Set(s string) error {
	*c = append(*c, s)
	return nil
}

func main() {
	var registers classFiles
	var (
		workloadName = flag.String("workload", "tpcc", "base workload: micro, tpcc, or none (serve only registered classes)")
		modeName     = flag.String("mode", "homeo", "protocol: homeo, opt, homeo-default, 2pc, or local")
		allocName    = flag.String("alloc", "default", "treaty allocation: default (mode's builtin), equal, model, or adaptive (non-default also enables batched renegotiation)")
		drift        = flag.Bool("drift", false, "enable the workload's drift scenario (micro: hot-site rotation; tpcc: skewed warehouse)")
		sites        = flag.Int("sites", 2, "number of replica sites")
		rtt          = flag.Duration("rtt", 50*time.Millisecond, "uniform inter-site round-trip time (really slept)")
		ec2          = flag.Bool("ec2", false, "use the paper's Table 1 EC2 inter-region RTTs instead of -rtt")
		cpu          = flag.Int("cpu", 4, "CPU slots per site (a real concurrency limit)")
		execTime     = flag.Duration("exec-time", 2*time.Millisecond, "local execution service time per transaction")
		lockTimeout  = flag.Duration("lock-timeout", time.Second, "2PL lock-wait timeout")
		items        = flag.Int("items", 200, "micro: stock items")
		refill       = flag.Int64("refill", 100, "micro: REFILL constant")
		warehouses   = flag.Int("warehouses", 2, "tpcc: warehouses")
		stock        = flag.Int("stock", 30, "tpcc: stock rows per warehouse")
		seed         = flag.Int64("seed", 1, "seed for treaty optimization and request draws")
		maxInflight  = flag.Int("max-inflight", 1024, "submissions in flight before 429 backpressure")
		addr         = flag.String("addr", ":8080", "serving mode: HTTP listen address (drive mode: loopback default)")
		drive        = flag.String("drive", "", "drive mode: clients=N,duration=5s[,class=Name] (closed-loop load over the wire protocol, then exit)")
		warmup       = flag.Duration("warmup", 250*time.Millisecond, "drive mode: warm-up before measuring")
		checkReplay  = flag.Bool("check-replay", true, "drive mode: verify serial-replay equivalence of the commit log")
		verbose      = flag.Bool("v", false, "drive mode: also print per-site store counters")
	)
	flag.Var(&registers, "register", "register a transaction class from a JSON file (wire ClassRequest; repeatable; drive mode registers over HTTP)")
	flag.Parse()

	mode, err := homeo.ParseMode(*modeName)
	if err != nil {
		fatal(err)
	}
	alloc, err := homeo.ParseAlloc(*allocName)
	if err != nil {
		fatal(err)
	}
	base, err := buildWorkload(*workloadName, *sites, *items, *refill, *warehouses, *stock, *seed, *drift)
	if err != nil {
		fatal(err)
	}

	opts := homeo.Options{
		Runtime:       homeo.RuntimeLive,
		Mode:          mode,
		Alloc:         alloc,
		Sites:         *sites,
		RTT:           *rtt,
		Workload:      base,
		CPUPerSite:    *cpu,
		LocalExecTime: *execTime,
		LockTimeout:   *lockTimeout,
		Seed:          *seed,
		MaxInflight:   *maxInflight,
	}
	if *ec2 {
		opts.Topology = homeo.EC2(*sites)
	}

	if *drive != "" {
		cfg, err := parseDrive(*drive)
		if err != nil {
			fatal(err)
		}
		cfg.warmup = *warmup
		cfg.checkReplay = *checkReplay && mode != homeo.ModeLocal
		cfg.verbose = *verbose
		cfg.registers = registers
		opts.EnableLog = cfg.checkReplay
		runDrive(opts, cfg)
		return
	}
	runServe(opts, *addr, registers)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "homeostasis-serve:", err)
	os.Exit(1)
}

func buildWorkload(name string, sites, items int, refill int64, warehouses, stock int, seed int64, drift bool) (homeo.Workload, error) {
	switch strings.ToLower(name) {
	case "none", "":
		return nil, nil
	case "micro":
		cfg := micro.Config{Items: items, Refill: refill, NSites: sites}
		if drift {
			// Hot-site rotation: 90% of each site's orders hit its hot
			// window (1/10th of the items); the rotation period scales
			// with the table so per-item demand per hot phase spans
			// multiple negotiation rounds (matching the drift sweep).
			cfg.HotFrac = 0.9
			cfg.RotateEvery = 20 * items
		}
		return micro.New(cfg)
	case "tpcc":
		cfg := tpcc.Config{
			Warehouses:            warehouses,
			DistrictsPerWarehouse: 2,
			StockPerWarehouse:     stock,
			Customers:             200,
			NSites:                sites,
			Seed:                  seed,
		}
		if drift {
			// Skewed warehouse: 95% of each site's New Orders target its
			// rotating home warehouse; rotation scales with the stock
			// table (matching the drift sweep).
			cfg.WarehouseAffinity = 95
			cfg.RotateEvery = 100 * stock
		}
		return tpcc.New(cfg)
	}
	return nil, fmt.Errorf("unknown workload %q (want micro, tpcc, or none)", name)
}

// driveConfig is the parsed drive mode.
type driveConfig struct {
	clients     int
	duration    time.Duration
	class       string
	warmup      time.Duration
	checkReplay bool
	verbose     bool
	registers   classFiles
}

// parseDrive parses "clients=N,duration=5s[,class=Name]".
func parseDrive(s string) (driveConfig, error) {
	cfg := driveConfig{clients: 4, duration: 5 * time.Second}
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return cfg, fmt.Errorf("drive: bad option %q (want clients=N,duration=5s[,class=Name])", part)
		}
		switch kv[0] {
		case "clients":
			n, err := strconv.Atoi(kv[1])
			if err != nil || n <= 0 {
				return cfg, fmt.Errorf("drive: bad clients %q", kv[1])
			}
			cfg.clients = n
		case "duration":
			d, err := time.ParseDuration(kv[1])
			if err != nil || d <= 0 {
				return cfg, fmt.Errorf("drive: bad duration %q", kv[1])
			}
			cfg.duration = d
		case "class":
			cfg.class = kv[1]
		default:
			return cfg, fmt.Errorf("drive: unknown option %q", kv[0])
		}
	}
	return cfg, nil
}

// loadClassRequest reads a wire.ClassRequest JSON file.
func loadClassRequest(path string) (wire.ClassRequest, error) {
	var spec wire.ClassRequest
	data, err := os.ReadFile(path)
	if err != nil {
		return spec, err
	}
	if err := json.Unmarshal(data, &spec); err != nil {
		return spec, fmt.Errorf("%s: %w", path, err)
	}
	return spec, nil
}

// boot builds the cluster and reports how long it took.
func boot(opts homeo.Options) *homeo.Cluster {
	bootStart := time.Now()
	c, err := homeo.New(opts)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("booted %s on %d sites in %v (mode %s, alloc %s)\n",
		c.WorkloadName(), c.Sites(), time.Since(bootStart).Round(time.Millisecond),
		opts.Mode, opts.Alloc)
	return c
}

// runServe serves the wire protocol until SIGINT/SIGTERM, then shuts down
// gracefully: stop admitting, drain in-flight transactions, print final
// stats, exit 0.
func runServe(opts homeo.Options, addr string, registers classFiles) {
	c := boot(opts)
	for _, path := range registers {
		spec, err := loadClassRequest(path)
		if err != nil {
			fatal(err)
		}
		t, err := c.Register(homeo.ClassSpec{
			Name: spec.Name, L: spec.L, SQL: spec.SQL,
			Bounds: spec.Bounds, Initial: spec.Initial, Rows: spec.Rows,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("registered class %s(%s)\n", t.Name(), strings.Join(t.Params(), ", "))
	}

	handler := httpapi.NewHandler(c)
	httpSrv := &http.Server{Addr: addr, Handler: handler}
	fmt.Printf("serving on %s  (POST /v1/classes, POST /v1/txn, GET /v1/stats, GET /healthz)\n", addr)

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		fatal(err)
	case sig := <-sigc:
		fmt.Printf("\n%s: shutting down...\n", sig)
	}
	// Graceful shutdown: refuse new work with 503, let in-flight requests
	// finish (bounded), then cancel whatever is still running (abandoned
	// per-call-timeout transactions) via the runtime drain.
	handler.Drain()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		httpSrv.Close()
	}
	c.Close()
	st := c.Stats()
	fmt.Printf("final: committed=%d dropped=%d sync=%.2f%% store: commits=%d aborts=%d deadlocks=%d timeouts=%d\n",
		st.Committed, st.Dropped, st.SyncRatioPct,
		st.Store.Commits, st.Store.Aborts, st.Store.Deadlocks, st.Store.Timeouts)
}

// runDrive boots the server on a listener, registers classes over HTTP,
// and runs the closed-loop driver through the wire client — the exact
// code path external users take.
func runDrive(opts homeo.Options, cfg driveConfig) {
	c := boot(opts)
	handler := httpapi.NewHandler(c)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fatal(err)
	}
	httpSrv := &http.Server{Handler: handler}
	go httpSrv.Serve(ln)
	baseURL := "http://" + ln.Addr().String()

	ctx := context.Background()
	cl := client.New(baseURL, client.Options{Seed: opts.Seed})
	if err := cl.Health(ctx); err != nil {
		fatal(err)
	}

	// Register class files over HTTP: the online path a real client uses.
	specByName := map[string]wire.ClassRequest{}
	for _, path := range cfg.registers {
		spec, err := loadClassRequest(path)
		if err != nil {
			fatal(err)
		}
		info, err := cl.RegisterClass(ctx, spec)
		if err != nil {
			fatal(err)
		}
		specByName[info.Name] = spec
		pinned := ""
		if info.Pinned {
			pinned = " [pinned: " + info.PinReason + "]"
		}
		fmt.Printf("registered class %s(%s) over HTTP%s\n", info.Name, strings.Join(info.Params, ", "), pinned)
	}
	var driveParams []string
	var driveBounds map[string][2]int64
	if cfg.class != "" {
		spec, ok := specByName[cfg.class]
		if !ok {
			fatal(fmt.Errorf("drive: class %q was not registered via -register", cfg.class))
		}
		info, err := cl.ListClasses(ctx)
		if err != nil {
			fatal(err)
		}
		for _, ci := range info {
			if ci.Name == cfg.class {
				driveParams = ci.Params
			}
		}
		driveBounds = spec.Bounds
	}

	fmt.Printf("driving %d clients/site for %v over %s (warmup %v)...\n",
		cfg.clients, cfg.duration, baseURL, cfg.warmup)

	var stop atomic.Bool
	var submitted, failed atomic.Int64
	var wg sync.WaitGroup
	for site := 0; site < c.Sites(); site++ {
		for k := 0; k < cfg.clients; k++ {
			site := site
			id := site*cfg.clients + k
			wg.Add(1)
			go func() {
				defer wg.Done()
				rng := rand.New(rand.NewSource(opts.Seed*1_000_003 + int64(id)))
				for !stop.Load() {
					req := wire.TxnRequest{Site: &site}
					if cfg.class != "" {
						req.Class = cfg.class
						req.Args = drawArgs(rng, driveParams, driveBounds)
					}
					res, err := cl.Submit(ctx, req)
					submitted.Add(1)
					if err != nil || res.Error != nil {
						failed.Add(1)
					}
				}
			}()
		}
	}
	time.Sleep(cfg.warmup)
	c.BeginMeasure()
	time.Sleep(cfg.duration)
	stop.Store(true)
	wg.Wait()

	// Report through the wire protocol, like any external observer.
	st, err := cl.Stats(ctx)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\nsubmitted:        %d (%d failed client-side)\n", submitted.Load(), failed.Load())
	fmt.Printf("committed:        %d (%.1f txn/s real)\n", st.Committed, st.ThroughputTxnS)
	fmt.Printf("sync ratio:       %.2f%%\n", st.SyncRatioPct)
	fmt.Printf("conflict aborts:  %d\n", st.ConflictAborts)
	fmt.Printf("dropped:          %d (livelocked %d)\n", st.Dropped, st.Livelocked)
	if opts.Alloc != homeo.AllocDefault {
		fmt.Printf("co-winners:       %d (batched cleanup commits)\n", st.CoWinnerCommits)
	}
	if st.TreatyGenFailures > 0 {
		fmt.Printf("gen failures:     %d (units degraded to pin treaties)\n", st.TreatyGenFailures)
	}
	fmt.Printf("latency:          p50=%.3fms p90=%.3fms p99=%.3fms max=%.3fms\n",
		st.LatencyP50MS, st.LatencyP90MS, st.LatencyP99MS, st.LatencyMaxMS)
	fmt.Printf("store (cluster):  commits=%d aborts=%d deadlocks=%d timeouts=%d\n",
		st.StoreCluster.Commits, st.StoreCluster.Aborts, st.StoreCluster.Deadlocks, st.StoreCluster.Timeouts)
	if cfg.verbose {
		for site, s := range st.StorePerSite {
			fmt.Printf("store (site %d):   commits=%d aborts=%d deadlocks=%d timeouts=%d\n",
				site, s.Commits, s.Aborts, s.Deadlocks, s.Timeouts)
		}
	}

	handler.Drain()
	httpSrv.Close()
	c.Close()

	exit := 0
	if st.Committed == 0 {
		fmt.Println("FAIL: no transactions committed in the measurement window")
		exit = 1
	}
	if cfg.checkReplay {
		if err := c.CheckReplayEquivalence(); err != nil {
			fmt.Println("FAIL: replay equivalence:", err)
			exit = 1
		} else {
			fmt.Printf("replay check:     OK (%d committed transactions observationally equivalent under serial replay)\n",
				c.Committed())
		}
	}
	if live := c.System().E.Live(); live != 0 {
		fmt.Printf("FAIL: %d processes still alive after drain\n", live)
		exit = 1
	}
	os.Exit(exit)
}

// drawArgs draws an argument vector for the driven class: uniform within
// the declared bounds, zero for unbounded parameters.
func drawArgs(rng *rand.Rand, params []string, bounds map[string][2]int64) []int64 {
	args := make([]int64, len(params))
	for i, p := range params {
		if b, ok := bounds[p]; ok && b[1] >= b[0] {
			args[i] = b[0] + rng.Int63n(b[1]-b[0]+1)
		}
	}
	return args
}
