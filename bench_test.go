// Package repro_test holds the repository-level benchmark harness: one
// testing.B benchmark per table and figure of the paper's evaluation
// (Section 6 and Appendix F), each regenerating the experiment end to end
// at a reduced scale. Use cmd/homeostasis-bench for full-scale runs.
package repro_test

import (
	"strings"
	"testing"

	"repro/internal/experiments"
)

// benchExperimentAt regenerates the experiment with the given sweep
// parallelism (0 = GOMAXPROCS, the engine default).
func benchExperimentAt(b *testing.B, name string, parallel int) {
	b.Helper()
	fn, ok := experiments.ByName(name)
	if !ok {
		b.Fatalf("unknown experiment %q", name)
	}
	sc := experiments.Bench
	sc.Parallel = parallel
	var lines int
	for i := 0; i < b.N; i++ {
		r, err := fn(sc)
		if err != nil {
			b.Fatalf("%s: %v", name, err)
		}
		lines = len(r.Lines)
		if lines == 0 {
			b.Fatalf("%s produced no output", name)
		}
	}
	b.ReportMetric(float64(lines), "series")
}

func benchExperiment(b *testing.B, name string) {
	b.Helper()
	benchExperimentAt(b, name, 0)
}

func BenchmarkTable1RTTMatrix(b *testing.B)            { benchExperiment(b, "table1") }
func BenchmarkFig10LatencyVsRTT(b *testing.B)          { benchExperiment(b, "fig10") }
func BenchmarkFig11ThroughputVsRTT(b *testing.B)       { benchExperiment(b, "fig11") }
func BenchmarkFig12SyncRatioVsRTT(b *testing.B)        { benchExperiment(b, "fig12") }
func BenchmarkFig13LatencyVsReplicas(b *testing.B)     { benchExperiment(b, "fig13") }
func BenchmarkFig14ThroughputVsReplicas(b *testing.B)  { benchExperiment(b, "fig14") }
func BenchmarkFig15SyncRatioVsReplicas(b *testing.B)   { benchExperiment(b, "fig15") }
func BenchmarkFig16LatencyVsClients(b *testing.B)      { benchExperiment(b, "fig16") }
func BenchmarkFig17ThroughputVsClients(b *testing.B)   { benchExperiment(b, "fig17") }
func BenchmarkFig18SyncRatioVsClients(b *testing.B)    { benchExperiment(b, "fig18") }
func BenchmarkFig19TPCCLatencyVsSkew(b *testing.B)     { benchExperiment(b, "fig19") }
func BenchmarkFig20TPCCThroughputVsSkew(b *testing.B)  { benchExperiment(b, "fig20") }
func BenchmarkFig21TPCCLatencyVsReplicas(b *testing.B) { benchExperiment(b, "fig21") }
func BenchmarkFig22TPCCThroughputVsReplicas(b *testing.B) {
	benchExperiment(b, "fig22")
}
func BenchmarkFig24LatencyBreakdownVsLookahead(b *testing.B) {
	benchExperiment(b, "fig24")
}
func BenchmarkFig25ThroughputVsLookahead(b *testing.B) { benchExperiment(b, "fig25") }
func BenchmarkFig26SyncRatioVsLookahead(b *testing.B)  { benchExperiment(b, "fig26") }
func BenchmarkFig27LatencyVsItemsPerTxn(b *testing.B)  { benchExperiment(b, "fig27") }
func BenchmarkFig28DistTPCCThroughputVsSkew(b *testing.B) {
	benchExperiment(b, "fig28")
}
func BenchmarkFig29DistTPCCSyncRatioVsSkew(b *testing.B) { benchExperiment(b, "fig29") }
func BenchmarkAblationOptimizerVsDefault(b *testing.B)   { benchExperiment(b, "ablation") }
func BenchmarkDriftAllocationStrategies(b *testing.B)    { benchExperiment(b, "drift") }

// Serial counterparts of the largest multi-cell sweeps, for measuring the
// parallel engine's speedup (compare against the default benchmarks
// above, which fan cells across GOMAXPROCS workers).
func BenchmarkFig17ThroughputVsClientsSerial(b *testing.B) {
	benchExperimentAt(b, "fig17", 1)
}
func BenchmarkFig20TPCCThroughputVsSkewSerial(b *testing.B) {
	benchExperimentAt(b, "fig20", 1)
}
func BenchmarkFig25ThroughputVsLookaheadSerial(b *testing.B) {
	benchExperimentAt(b, "fig25", 1)
}

// TestExperimentNamesResolve pins the experiment registry: every listed
// name resolves and ids are unique.
func TestExperimentNamesResolve(t *testing.T) {
	seen := map[string]bool{}
	for _, name := range experiments.Names() {
		if seen[name] {
			t.Fatalf("duplicate experiment %q", name)
		}
		seen[name] = true
		if _, ok := experiments.ByName(name); !ok {
			t.Fatalf("experiment %q does not resolve", name)
		}
	}
	if len(seen) != 22 {
		t.Fatalf("registry has %d experiments, want 22", len(seen))
	}
}

// TestTable1MatchesPaper spot-checks the encoded RTT matrix.
func TestTable1MatchesPaper(t *testing.T) {
	fn, _ := experiments.ByName("table1")
	r, err := fn(experiments.Bench)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(r.Lines, "\n")
	for _, want := range []string{"64", "243", "372", "UE", "BR"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("Table 1 output missing %q:\n%s", want, joined)
		}
	}
}
