// Package fabric is the site fabric: the explicit message-passing layer
// the homeostasis cleanup phase (Section 3.3 of the paper) runs over.
// Each site owns its store partition behind a Node — an actor answering
// the peer protocol's typed messages — and the coordinator (the violating
// site) drives its two communication rounds through a Transport instead
// of reaching into other sites' memory:
//
//	round 1   CollectState scatter/gather: every site contributes its
//	          delta values for the round's object footprint, and the
//	          folded consolidated state comes back as InstallState.
//	round 2   InstallTreaties scatter: each site receives its new local
//	          treaties, closing the round.
//
// Two transports ship with the repository. Local keeps every site
// in-process: messages are direct calls, with communication latency
// charged to the coordinating process per message from the cluster
// topology (the round completes when the slowest peer's reply is back).
// HTTP ships the same messages as JSON over real sockets (homeo/wire
// peer types, served under /v1/peer/*), so a cluster can run as one OS
// process per site on different machines.
package fabric

import (
	"errors"
	"fmt"

	"repro/internal/lang"
	"repro/internal/rt"
	"repro/internal/treaty"
)

// RoundID names one synchronization round cluster-wide: the coordinating
// site plus a coordinator-local sequence number.
type RoundID struct {
	Site int
	Seq  uint64
}

// String renders the round id as "round <site>.<seq>".
func (r RoundID) String() string { return fmt.Sprintf("round %d.%d", r.Site, r.Seq) }

// CollectState is the round-1 scatter message: freeze the units and
// return the site's delta values for the round's object footprint.
type CollectState struct {
	Round RoundID
	// Clock is the sender's Lamport clock.
	Clock int64
	// Units are the treaty units the round renegotiates.
	Units []int
	// Objs is the round's logical footprint: the units' objects plus
	// everything the winning transaction touches outside them.
	Objs []lang.ObjID
}

// StateReply is one site's CollectState answer: its own delta object
// values for the requested footprint.
type StateReply struct {
	Clock  int64
	Values lang.Database
}

// InstallState closes round 1: the folded consolidated state (with the
// winning transaction already applied) to install at the site.
type InstallState struct {
	Round  RoundID
	Clock  int64
	Objs   []lang.ObjID
	Folded lang.Database
	// Winner identifies the round's winning transaction, already applied
	// inside Folded. Sites remember it with the round grant: if the
	// coordinator dies between this message and round 2, the granted site
	// adopts the commit into its own log (instead of losing it) when the
	// grant fails over.
	Winner *WinnerCommit
}

// WinnerCommit is the winning transaction's identity, carried by
// InstallState so a site can adopt the commit if the coordinator vanishes
// after round 1 completed.
type WinnerCommit struct {
	Class string
	Args  []int64
	Site  int
	Units []int
	Log   []int64
}

// UnitTreaty is one unit's new local treaty for the destination site.
type UnitTreaty struct {
	Unit    int
	Version int64
	Local   treaty.Local
}

// InstallTreaties is the round-2 message for one site: its share of the
// round's new treaties. Installing them closes the round at the site.
type InstallTreaties struct {
	Round RoundID
	Clock int64
	// Site is the destination site (the treaties are its locals).
	Site  int
	Units []UnitTreaty
}

// AbortRound releases a granted round that will not complete (the
// coordinator lost a busy race or failed mid-round).
type AbortRound struct {
	Round RoundID
	Clock int64
}

// Rejoin is the recovery handshake: a site that restarted from its WAL
// announces itself and the treaty versions it recovered, so peers can
// (a) fail over any round the dead incarnation was coordinating and
// (b) report units whose treaty generation moved past the rejoiner.
type Rejoin struct {
	// Site is the rejoining site.
	Site  int
	Clock int64
	// Versions maps unit id to the treaty version the rejoining site
	// holds after replay.
	Versions map[int]int64
}

// RejoinUnit is one unit the rejoining site must repair before serving:
// the peer's treaty version and the unit objects' replicated base values.
type RejoinUnit struct {
	Unit    int
	Version int64
	// Base holds the unit objects' base values at the answering peer.
	Base lang.Database
	// Force marks repair info from a round the rejoining site itself
	// coordinated whose state install completed at the peer: the base
	// moved even though no new treaty generation was distributed, so the
	// rejoiner must adopt the base regardless of version comparison.
	Force bool
}

// RejoinReply answers a Rejoin: the units the rejoining site must repair
// (empty when its recovered state is already current).
type RejoinReply struct {
	Clock int64
	Units []RejoinUnit
}

// JoinSite phases. A join is a two-phase handshake coordinated by the
// joining site: prepare quiesces every unit at the peer and streams back
// a consistent partition cut; activate grows the peer's membership table
// and releases the quiesce. The quiesce is held under the peer's round
// grant table, so a joiner that dies between the phases is failed over by
// the ordinary grant expiry (the units unfreeze, the join aborts).
const (
	// JoinPrepare freezes the peer's units and returns the partition cut.
	JoinPrepare = 1
	// JoinActivate admits the joiner into the membership epoch and
	// releases the prepare quiesce.
	JoinActivate = 2
)

// JoinSite is the membership handshake from a joining site to one
// existing peer. Sent twice per join (JoinPrepare then JoinActivate),
// both under the same Round, which keys the prepare quiesce in the
// peer's grant table.
type JoinSite struct {
	Round RoundID
	Clock int64
	// Site is the joining site's index: the cluster width before the join.
	Site int
	// Addr is the joining site's peer base URL ("" on in-process fabrics).
	Addr string
	// Phase is JoinPrepare or JoinActivate.
	Phase int
}

// JoinUnit is one treaty unit's slice of the partition cut streamed to a
// joining site: the unit's treaty generation and its objects' replicated
// base values at the answering peer.
type JoinUnit struct {
	Unit    int
	Version int64
	Base    lang.Database
}

// JoinReply answers a JoinSite. The prepare reply carries the quiesced
// partition cut; the activate reply carries the peer's new membership
// epoch.
type JoinReply struct {
	Clock int64
	// Epoch is the peer's membership epoch after handling the message.
	Epoch int64
	// Units is the partition cut (JoinPrepare replies only).
	Units []JoinUnit
}

// DrainSite announces that a site has drained: its deltas are absorbed
// into the replicated base and it commits nothing further. Peers mark the
// site gone, bump their membership epoch, and exclude it from future
// rounds. The site keeps its index (membership slots are never reused, so
// per-site state and the merged log stay stably indexed).
type DrainSite struct {
	// Site is the drained site.
	Site  int
	Clock int64
}

// DrainReply acknowledges a DrainSite with the peer's new epoch.
type DrainReply struct {
	Clock int64
	Epoch int64
}

// MigrateUnit ships one unit's folded state during a demand-driven
// migration round: the coordinator froze the unit via CollectState,
// folded the cut, and installs it at every site with the unit's new
// demand home. Handling mirrors InstallState (exactly-once under the
// round grant), so a coordinator death mid-migration aborts or repairs
// like any round.
type MigrateUnit struct {
	Round RoundID
	Clock int64
	// Unit is the migrating unit.
	Unit int
	// To is the unit's new demand home: the site the repaired treaty
	// configuration concentrates slack on.
	To     int
	Objs   []lang.ObjID
	Folded lang.Database
}

// MigrateReply acknowledges a MigrateUnit with the peer's epoch.
type MigrateReply struct {
	Clock int64
	Epoch int64
}

// ErrBusy is returned by a Node refusing CollectState because one of the
// round's units is already negotiating. The coordinator aborts the round,
// backs off, and retries.
var ErrBusy = errors.New("fabric: unit busy in another round")

// ErrSiteGone is returned by a Node refusing a message because the
// addressed site has been drained from the membership.
var ErrSiteGone = errors.New("fabric: site drained from membership")

// SiteError attributes a transport or handler failure to one site, so
// partial scatter failures surface with their origin. Unwrap exposes the
// underlying error (errors.Is sees ErrBusy through it).
type SiteError struct {
	Site int
	Err  error
}

// Error renders the failing site and the underlying error.
func (e *SiteError) Error() string { return fmt.Sprintf("fabric: site %d: %v", e.Site, e.Err) }

// Unwrap exposes the underlying error for errors.Is / errors.As.
func (e *SiteError) Unwrap() error { return e.Err }

// Node is the per-site actor: it owns the site's store partition and
// local treaty state and answers the peer protocol's typed messages.
// Handlers run under the site runtime's execution right, never park, and
// must therefore be fast and non-blocking.
type Node interface {
	// CollectState begins a round at the site: freeze the units (or
	// refuse with ErrBusy) and reply with the site's delta values for the
	// footprint.
	CollectState(m CollectState) (StateReply, error)
	// InstallState installs the folded consolidated state.
	InstallState(m InstallState) error
	// InstallTreaties installs the site's new local treaties and closes
	// the round.
	InstallTreaties(m InstallTreaties) error
	// AbortRound releases a granted round without installing anything.
	AbortRound(m AbortRound) error
	// Rejoin answers a restarted site's recovery handshake: fail over any
	// round it was coordinating and report the units it must repair.
	Rejoin(m Rejoin) (RejoinReply, error)
	// JoinSite handles one phase of a joining site's membership handshake
	// (quiesce + cut on JoinPrepare, admit + release on JoinActivate).
	JoinSite(m JoinSite) (JoinReply, error)
	// DrainSite marks the drained site gone and bumps the epoch.
	DrainSite(m DrainSite) (DrainReply, error)
	// MigrateUnit installs a migrating unit's folded state (exactly-once
	// under the round grant, like InstallState).
	MigrateUnit(m MigrateUnit) (MigrateReply, error)
}

// Transport ships the coordinator's messages to every site's Node and
// charges the coordinating process the communication cost. All methods
// are called from process context (the caller holds its runtime's
// execution right); implementations that wait for real I/O park the
// process while requests are in flight.
type Transport interface {
	// NSites reports the cluster width.
	NSites() int

	// Collect runs the round-1 scatter/gather: deliver the CollectState
	// message to every site and gather the replies, indexed by site. The
	// message is built by mkMsg when the round's membership is final:
	// the Local transport materializes it at round completion (so
	// violators that join the in-flight round are folded too), HTTP at
	// send time. A failure is returned as a *SiteError naming the first
	// failed site; ErrBusy from any site surfaces through it.
	Collect(p rt.Proc, from int, mkMsg func() CollectState) ([]StateReply, error)

	// Install delivers the folded state to every site as the closing
	// half of round 1. Under the paper's model round 1 is an all-to-all
	// state broadcast — every site holds the consolidated state when the
	// round completes — so Local charges no additional latency here; HTTP
	// pays real network time.
	Install(p rt.Proc, from int, m InstallState) error

	// Distribute runs round 2: deliver each site its InstallTreaties
	// message (ms is indexed by site). One communication round is
	// charged.
	Distribute(p rt.Proc, from int, ms []InstallTreaties) error

	// Abort releases a round at every site.
	Abort(p rt.Proc, from int, m AbortRound) error

	// Rejoin delivers the recovery handshake to every peer of the
	// rejoining site (the from site itself is skipped — it is the
	// sender) and gathers the replies, indexed by site; the rejoiner's
	// own entry is the zero RejoinReply.
	Rejoin(p rt.Proc, from int, m Rejoin) ([]RejoinReply, error)

	// Join delivers a join-handshake phase to every member site except
	// from (the joining site itself) and gathers the replies, indexed by
	// site; the joiner's own entry is the zero JoinReply.
	Join(p rt.Proc, from int, m JoinSite) ([]JoinReply, error)

	// Drain announces a drained site to every member except from (the
	// drained site itself) and gathers the acks, indexed by site.
	Drain(p rt.Proc, from int, m DrainSite) ([]DrainReply, error)

	// Migrate delivers a migrating unit's folded state to every member
	// site (from included, handled locally) and gathers the acks,
	// indexed by site.
	Migrate(p rt.Proc, from int, m MigrateUnit) ([]MigrateReply, error)

	// AddSite grows the transport by one site at the next index: Local
	// gains the node, HTTP gains the peer address. Call under the site
	// runtime's execution right, never mid-scatter.
	AddSite(addr string, node Node)

	// MarkGone excludes a drained site from every future scatter (its
	// reply slots stay present and zero, keeping site indexing stable).
	MarkGone(site int)
}
