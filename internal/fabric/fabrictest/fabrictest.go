// Package fabrictest is a conformance suite for implementations of the
// fabric.Transport contract, mirroring internal/rt/rttest. Both shipped
// transports run it: fabric.Local (in-process, simulator) and fabric.HTTP
// (real sockets, wall-clock runtime). The suite checks the behaviors the
// coordinator depends on: scatter/gather delivery and reply ordering,
// partial-failure surfacing with site attribution (busy refusals
// included), per-site treaty distribution, and message round-trip
// encoding (values, object names, treaty constraints).
package fabrictest

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/fabric"
	"repro/internal/lang"
	"repro/internal/lia"
	"repro/internal/logic"
	"repro/internal/rt"
	"repro/internal/treaty"
)

// Harness is one transport under test.
type Harness struct {
	// Transport is the implementation under test, wired to Nodes.
	Transport fabric.Transport
	// Nodes are the stub site actors the transport delivers to, indexed
	// by site.
	Nodes []*StubNode
	// Exec runs fn on a process of the transport's runtime and waits for
	// it to finish (transport methods need process context).
	Exec func(fn func(p rt.Proc))
}

// Factory builds a fresh n-site harness for one subtest.
type Factory func(t *testing.T, n int) *Harness

// StubNode is a scripted fabric.Node recording every message it handles.
// It is self-synchronized, so harnesses may deliver from any goroutine.
type StubNode struct {
	Site int

	mu       sync.Mutex
	Collects []fabric.CollectState
	Installs []fabric.InstallState
	Treaties []fabric.InstallTreaties
	Aborts   []fabric.AbortRound
	Rejoins  []fabric.Rejoin
	Joins    []fabric.JoinSite
	Drains   []fabric.DrainSite
	Migrates []fabric.MigrateUnit

	// CollectErr, when set, makes CollectState fail with it.
	CollectErr error
	// JoinErr, when set, makes JoinSite fail with it.
	JoinErr error
}

// CollectState implements fabric.Node: it replies with one delta value
// per requested object, derived deterministically from the site and the
// object name length (negative for odd sites, exercising sign encoding).
func (s *StubNode) CollectState(m fabric.CollectState) (fabric.StateReply, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.CollectErr != nil {
		return fabric.StateReply{}, s.CollectErr
	}
	s.Collects = append(s.Collects, m)
	vals := lang.Database{}
	for _, obj := range m.Objs {
		v := int64(s.Site*100 + len(obj))
		if s.Site%2 == 1 {
			v = -v
		}
		vals[lang.DeltaObj(obj, s.Site)] = v
	}
	return fabric.StateReply{Clock: m.Clock + int64(s.Site) + 1, Values: vals}, nil
}

func (s *StubNode) InstallState(m fabric.InstallState) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.Installs = append(s.Installs, m)
	return nil
}

func (s *StubNode) InstallTreaties(m fabric.InstallTreaties) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.Treaties = append(s.Treaties, m)
	return nil
}

func (s *StubNode) AbortRound(m fabric.AbortRound) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.Aborts = append(s.Aborts, m)
	return nil
}

// Rejoin implements fabric.Node: it records the handshake and answers
// with one deterministically-derived repair unit, exercising the reply's
// full round-trip encoding (version, force flag, base values).
func (s *StubNode) Rejoin(m fabric.Rejoin) (fabric.RejoinReply, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.Rejoins = append(s.Rejoins, m)
	return fabric.RejoinReply{
		Clock: m.Clock + int64(s.Site) + 1,
		Units: []fabric.RejoinUnit{{
			Unit:    s.Site,
			Version: int64(10 + s.Site),
			Force:   s.Site%2 == 1,
			Base:    lang.Database{lang.ObjID(fmt.Sprintf("stock_%d", s.Site)): int64(-5 * s.Site)},
		}},
	}, nil
}

// JoinSite implements fabric.Node: it records the handshake and answers
// with a deterministic partition cut on the prepare phase (exercising the
// reply's unit/version/base round-trip) and an epoch on activate.
func (s *StubNode) JoinSite(m fabric.JoinSite) (fabric.JoinReply, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.JoinErr != nil {
		return fabric.JoinReply{}, s.JoinErr
	}
	s.Joins = append(s.Joins, m)
	rep := fabric.JoinReply{Clock: m.Clock + int64(s.Site) + 1, Epoch: int64(100 + s.Site)}
	if m.Phase == fabric.JoinPrepare {
		rep.Units = []fabric.JoinUnit{{
			Unit:    s.Site,
			Version: int64(20 + s.Site),
			Base:    lang.Database{lang.ObjID(fmt.Sprintf("stock_%d", s.Site)): int64(7 * s.Site)},
		}}
	}
	return rep, nil
}

// DrainSite implements fabric.Node: it records the announcement and
// replies with a deterministic epoch.
func (s *StubNode) DrainSite(m fabric.DrainSite) (fabric.DrainReply, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.Drains = append(s.Drains, m)
	return fabric.DrainReply{Clock: m.Clock + int64(s.Site) + 1, Epoch: int64(200 + s.Site)}, nil
}

// MigrateUnit implements fabric.Node: it records the install and replies
// with a deterministic epoch.
func (s *StubNode) MigrateUnit(m fabric.MigrateUnit) (fabric.MigrateReply, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.Migrates = append(s.Migrates, m)
	return fabric.MigrateReply{Clock: m.Clock + int64(s.Site) + 1, Epoch: int64(300 + s.Site)}, nil
}

// Snapshot returns copies of the recorded messages.
func (s *StubNode) Snapshot() (c []fabric.CollectState, i []fabric.InstallState, t []fabric.InstallTreaties, a []fabric.AbortRound) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append(c, s.Collects...), append(i, s.Installs...), append(t, s.Treaties...), append(a, s.Aborts...)
}

var _ fabric.Node = (*StubNode)(nil)

// Run executes the conformance suite against harnesses built by mk.
func Run(t *testing.T, mk Factory) {
	t.Run("CollectScatterGather", func(t *testing.T) { testCollect(t, mk(t, 3)) })
	t.Run("CollectPartialFailure", func(t *testing.T) { testPartialFailure(t, mk(t, 3)) })
	t.Run("CollectBusy", func(t *testing.T) { testBusy(t, mk(t, 3)) })
	t.Run("InstallStateDelivery", func(t *testing.T) { testInstallState(t, mk(t, 3)) })
	t.Run("DistributePerSite", func(t *testing.T) { testDistribute(t, mk(t, 3)) })
	t.Run("AbortDelivery", func(t *testing.T) { testAbort(t, mk(t, 2)) })
	t.Run("RejoinHandshake", func(t *testing.T) { testRejoin(t, mk(t, 3)) })
	t.Run("JoinHandshake", func(t *testing.T) { testJoin(t, mk(t, 3)) })
	t.Run("DrainBroadcast", func(t *testing.T) { testDrain(t, mk(t, 3)) })
	t.Run("MigrateDelivery", func(t *testing.T) { testMigrate(t, mk(t, 3)) })
}

func round(site int) fabric.RoundID { return fabric.RoundID{Site: site, Seq: 7} }

// testCollect checks the round-1 scatter/gather: every site sees exactly
// one CollectState carrying the full message, and the gathered replies
// are indexed by site with values intact (round-trip encoding).
func testCollect(t *testing.T, h *Harness) {
	objs := []lang.ObjID{"stock_1", "s", "a_longer_object_name"}
	var replies []fabric.StateReply
	var err error
	h.Exec(func(p rt.Proc) {
		replies, err = h.Transport.Collect(p, 0, func() fabric.CollectState {
			return fabric.CollectState{Round: round(0), Clock: 42, Units: []int{3, 5}, Objs: objs}
		})
	})
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	if len(replies) != len(h.Nodes) {
		t.Fatalf("Collect returned %d replies, want %d", len(replies), len(h.Nodes))
	}
	for site, n := range h.Nodes {
		cs, _, _, _ := n.Snapshot()
		if len(cs) != 1 {
			t.Fatalf("site %d handled %d collects, want 1", site, len(cs))
		}
		m := cs[0]
		if m.Round != round(0) || m.Clock != 42 {
			t.Errorf("site %d collect header = %+v", site, m)
		}
		if fmt.Sprint(m.Units) != fmt.Sprint([]int{3, 5}) || fmt.Sprint(m.Objs) != fmt.Sprint(objs) {
			t.Errorf("site %d collect payload: units=%v objs=%v", site, m.Units, m.Objs)
		}
		// The reply at index `site` must be that site's values, verbatim
		// (the stub's deterministic derivation, negatives included).
		wantVals := lang.Database{}
		for _, obj := range objs {
			v := int64(site*100 + len(obj))
			if site%2 == 1 {
				v = -v
			}
			wantVals[lang.DeltaObj(obj, site)] = v
		}
		if !replies[site].Values.Equal(wantVals) {
			t.Errorf("site %d reply values = %v, want %v", site, replies[site].Values, wantVals)
		}
		if want := int64(42 + site + 1); replies[site].Clock != want {
			t.Errorf("site %d reply clock = %d, want %d", site, replies[site].Clock, want)
		}
	}
}

// testPartialFailure checks that one failing site surfaces as a
// *fabric.SiteError naming it.
func testPartialFailure(t *testing.T, h *Harness) {
	h.Nodes[2].CollectErr = errors.New("disk on fire")
	var err error
	h.Exec(func(p rt.Proc) {
		_, err = h.Transport.Collect(p, 0, func() fabric.CollectState {
			return fabric.CollectState{Round: round(0), Objs: []lang.ObjID{"x"}}
		})
	})
	if err == nil {
		t.Fatal("Collect succeeded despite a failing site")
	}
	var se *fabric.SiteError
	if !errors.As(err, &se) {
		t.Fatalf("Collect error %v is not a *fabric.SiteError", err)
	}
	if se.Site != 2 {
		t.Errorf("failure attributed to site %d, want 2", se.Site)
	}
}

// testBusy checks that a busy refusal keeps its identity through the
// transport (errors.Is must see fabric.ErrBusy) and wins over other
// failures.
func testBusy(t *testing.T, h *Harness) {
	h.Nodes[1].CollectErr = fabric.ErrBusy
	h.Nodes[2].CollectErr = errors.New("also broken")
	var err error
	h.Exec(func(p rt.Proc) {
		_, err = h.Transport.Collect(p, 0, func() fabric.CollectState {
			return fabric.CollectState{Round: round(0), Objs: []lang.ObjID{"x"}}
		})
	})
	if !errors.Is(err, fabric.ErrBusy) {
		t.Fatalf("Collect error %v does not unwrap to ErrBusy", err)
	}
	var se *fabric.SiteError
	if errors.As(err, &se) && se.Site != 1 {
		t.Errorf("busy attributed to site %d, want 1", se.Site)
	}
}

// testInstallState checks folded-state delivery to every site.
func testInstallState(t *testing.T, h *Harness) {
	folded := lang.Database{"x": 41, "y": -7}
	var err error
	h.Exec(func(p rt.Proc) {
		err = h.Transport.Install(p, 1, fabric.InstallState{
			Round: round(1), Clock: 9, Objs: []lang.ObjID{"x", "y"}, Folded: folded,
		})
	})
	if err != nil {
		t.Fatalf("Install: %v", err)
	}
	for site, n := range h.Nodes {
		_, is, _, _ := n.Snapshot()
		if len(is) != 1 {
			t.Fatalf("site %d handled %d installs, want 1", site, len(is))
		}
		if !is[0].Folded.Equal(folded) || is[0].Round != round(1) {
			t.Errorf("site %d install = %+v", site, is[0])
		}
	}
}

// testDistribute checks round 2: each site receives exactly its own
// message, and treaty constraints survive the trip intact.
func testDistribute(t *testing.T, h *Harness) {
	n := len(h.Nodes)
	ms := make([]fabric.InstallTreaties, n)
	for k := 0; k < n; k++ {
		term := lia.NewTerm()
		term.AddVar(logic.Obj(lang.ObjID(fmt.Sprintf("stock_%d", k))), 2)
		term.AddVar(logic.Obj(lang.DeltaObj("stock_9", k)), -1)
		term.Const = int64(-10 * (k + 1))
		ms[k] = fabric.InstallTreaties{
			Round: round(0), Clock: 5, Site: k,
			Units: []fabric.UnitTreaty{{
				Unit: 4, Version: 2,
				Local: treaty.Local{Site: k, Constraints: []lia.Constraint{{Term: term, Op: lia.LE}}},
			}},
		}
	}
	var err error
	h.Exec(func(p rt.Proc) { err = h.Transport.Distribute(p, 0, ms) })
	if err != nil {
		t.Fatalf("Distribute: %v", err)
	}
	for site, node := range h.Nodes {
		_, _, ts, _ := node.Snapshot()
		if len(ts) != 1 {
			t.Fatalf("site %d handled %d treaty installs, want 1", site, len(ts))
		}
		got := ts[0]
		if got.Site != site {
			t.Errorf("site %d received a message addressed to site %d", site, got.Site)
		}
		if len(got.Units) != 1 || got.Units[0].Unit != 4 || got.Units[0].Version != 2 {
			t.Fatalf("site %d unit payload = %+v", site, got.Units)
		}
		want := ms[site].Units[0].Local
		if got.Units[0].Local.String() != want.String() {
			t.Errorf("site %d treaty round-trip:\n got %s\nwant %s", site, got.Units[0].Local, want)
		}
	}
}

// testRejoin checks the recovery handshake: every peer of the rejoining
// site receives the message (the sender itself is skipped), and the
// gathered replies are indexed by site with payloads intact.
func testRejoin(t *testing.T, h *Harness) {
	m := fabric.Rejoin{Site: 1, Clock: 17, Versions: map[int]int64{0: 3, 4: 9}}
	var replies []fabric.RejoinReply
	var err error
	h.Exec(func(p rt.Proc) { replies, err = h.Transport.Rejoin(p, 1, m) })
	if err != nil {
		t.Fatalf("Rejoin: %v", err)
	}
	if len(replies) != len(h.Nodes) {
		t.Fatalf("Rejoin returned %d replies, want %d", len(replies), len(h.Nodes))
	}
	for site, n := range h.Nodes {
		n.mu.Lock()
		rs := append([]fabric.Rejoin(nil), n.Rejoins...)
		n.mu.Unlock()
		if site == 1 {
			if len(rs) != 0 {
				t.Errorf("the rejoining site handled its own handshake (%d messages)", len(rs))
			}
			continue
		}
		if len(rs) != 1 {
			t.Fatalf("site %d handled %d rejoins, want 1", site, len(rs))
		}
		got := rs[0]
		if got.Site != 1 || got.Clock != 17 || len(got.Versions) != 2 || got.Versions[0] != 3 || got.Versions[4] != 9 {
			t.Errorf("site %d rejoin payload = %+v", site, got)
		}
		rep := replies[site]
		if want := int64(17 + site + 1); rep.Clock != want {
			t.Errorf("site %d reply clock = %d, want %d", site, rep.Clock, want)
		}
		if len(rep.Units) != 1 {
			t.Fatalf("site %d reply units = %+v", site, rep.Units)
		}
		u := rep.Units[0]
		wantBase := lang.Database{lang.ObjID(fmt.Sprintf("stock_%d", site)): int64(-5 * site)}
		if u.Unit != site || u.Version != int64(10+site) || u.Force != (site%2 == 1) || !u.Base.Equal(wantBase) {
			t.Errorf("site %d reply unit = %+v", site, u)
		}
	}
	if replies[1].Clock != 0 || len(replies[1].Units) != 0 {
		t.Errorf("the rejoiner's own reply slot is non-zero: %+v", replies[1])
	}
}

// testJoin checks the membership handshake: each phase reaches every
// member except the joiner itself, the phase and address survive the
// trip, and the prepare replies carry the partition cut intact.
func testJoin(t *testing.T, h *Harness) {
	for _, phase := range []int{fabric.JoinPrepare, fabric.JoinActivate} {
		m := fabric.JoinSite{Round: round(1), Clock: 23, Site: 1, Addr: "http://joiner:7", Phase: phase}
		var replies []fabric.JoinReply
		var err error
		h.Exec(func(p rt.Proc) { replies, err = h.Transport.Join(p, 1, m) })
		if err != nil {
			t.Fatalf("Join phase %d: %v", phase, err)
		}
		if len(replies) != len(h.Nodes) {
			t.Fatalf("Join phase %d returned %d replies, want %d", phase, len(replies), len(h.Nodes))
		}
		for site, n := range h.Nodes {
			n.mu.Lock()
			js := append([]fabric.JoinSite(nil), n.Joins...)
			n.mu.Unlock()
			if site == 1 {
				if len(js) != 0 {
					t.Errorf("the joining site handled its own handshake (%d messages)", len(js))
				}
				continue
			}
			// One message per completed phase so far.
			if len(js) != phase {
				t.Fatalf("site %d handled %d joins after phase %d", site, len(js), phase)
			}
			got := js[phase-1]
			if got.Round != round(1) || got.Clock != 23 || got.Site != 1 || got.Addr != "http://joiner:7" || got.Phase != phase {
				t.Errorf("site %d join payload = %+v", site, got)
			}
			rep := replies[site]
			if want := int64(23 + site + 1); rep.Clock != want {
				t.Errorf("site %d reply clock = %d, want %d", site, rep.Clock, want)
			}
			if want := int64(100 + site); rep.Epoch != want {
				t.Errorf("site %d reply epoch = %d, want %d", site, rep.Epoch, want)
			}
			if phase == fabric.JoinPrepare {
				if len(rep.Units) != 1 {
					t.Fatalf("site %d prepare cut = %+v", site, rep.Units)
				}
				u := rep.Units[0]
				wantBase := lang.Database{lang.ObjID(fmt.Sprintf("stock_%d", site)): int64(7 * site)}
				if u.Unit != site || u.Version != int64(20+site) || !u.Base.Equal(wantBase) {
					t.Errorf("site %d cut unit = %+v", site, u)
				}
			} else if len(rep.Units) != 0 {
				t.Errorf("site %d activate reply carries a cut: %+v", site, rep.Units)
			}
		}
		if replies[1].Clock != 0 || replies[1].Epoch != 0 || len(replies[1].Units) != 0 {
			t.Errorf("the joiner's own reply slot is non-zero: %+v", replies[1])
		}
	}
}

// testDrain checks the drain announcement: every member except the
// drained site receives it, and the epoch acks are indexed by site.
func testDrain(t *testing.T, h *Harness) {
	m := fabric.DrainSite{Site: 2, Clock: 31}
	var replies []fabric.DrainReply
	var err error
	h.Exec(func(p rt.Proc) { replies, err = h.Transport.Drain(p, 2, m) })
	if err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if len(replies) != len(h.Nodes) {
		t.Fatalf("Drain returned %d replies, want %d", len(replies), len(h.Nodes))
	}
	for site, n := range h.Nodes {
		n.mu.Lock()
		ds := append([]fabric.DrainSite(nil), n.Drains...)
		n.mu.Unlock()
		if site == 2 {
			if len(ds) != 0 {
				t.Errorf("the drained site handled its own announcement (%d messages)", len(ds))
			}
			continue
		}
		if len(ds) != 1 {
			t.Fatalf("site %d handled %d drains, want 1", site, len(ds))
		}
		if ds[0].Site != 2 || ds[0].Clock != 31 {
			t.Errorf("site %d drain payload = %+v", site, ds[0])
		}
		rep := replies[site]
		if rep.Clock != int64(31+site+1) || rep.Epoch != int64(200+site) {
			t.Errorf("site %d drain ack = %+v", site, rep)
		}
	}
	if replies[2].Clock != 0 || replies[2].Epoch != 0 {
		t.Errorf("the drained site's own reply slot is non-zero: %+v", replies[2])
	}
}

// testMigrate checks migration delivery: every member site (the
// coordinator included) receives the folded cut with the new demand home
// intact, and the epoch acks are indexed by site.
func testMigrate(t *testing.T, h *Harness) {
	folded := lang.Database{"stock_1": 19, "stock_2": -4}
	m := fabric.MigrateUnit{
		Round: round(0), Clock: 11, Unit: 5, To: 2,
		Objs: []lang.ObjID{"stock_1", "stock_2"}, Folded: folded,
	}
	var replies []fabric.MigrateReply
	var err error
	h.Exec(func(p rt.Proc) { replies, err = h.Transport.Migrate(p, 0, m) })
	if err != nil {
		t.Fatalf("Migrate: %v", err)
	}
	if len(replies) != len(h.Nodes) {
		t.Fatalf("Migrate returned %d replies, want %d", len(replies), len(h.Nodes))
	}
	for site, n := range h.Nodes {
		n.mu.Lock()
		ms := append([]fabric.MigrateUnit(nil), n.Migrates...)
		n.mu.Unlock()
		if len(ms) != 1 {
			t.Fatalf("site %d handled %d migrates, want 1", site, len(ms))
		}
		got := ms[0]
		if got.Round != round(0) || got.Clock != 11 || got.Unit != 5 || got.To != 2 {
			t.Errorf("site %d migrate header = %+v", site, got)
		}
		if fmt.Sprint(got.Objs) != fmt.Sprint(m.Objs) || !got.Folded.Equal(folded) {
			t.Errorf("site %d migrate payload: objs=%v folded=%v", site, got.Objs, got.Folded)
		}
		rep := replies[site]
		if rep.Clock != int64(11+site+1) || rep.Epoch != int64(300+site) {
			t.Errorf("site %d migrate ack = %+v", site, rep)
		}
	}
}

// testAbort checks abort delivery to every site.
func testAbort(t *testing.T, h *Harness) {
	var err error
	h.Exec(func(p rt.Proc) {
		err = h.Transport.Abort(p, 0, fabric.AbortRound{Round: round(0), Clock: 3})
	})
	if err != nil {
		t.Fatalf("Abort: %v", err)
	}
	for site, n := range h.Nodes {
		_, _, _, as := n.Snapshot()
		if len(as) != 1 || as[0].Round != round(0) {
			t.Fatalf("site %d aborts = %+v", site, as)
		}
	}
}
