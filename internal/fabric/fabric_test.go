package fabric_test

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/cluster"
	"repro/internal/fabric"
	"repro/internal/fabric/codec"
	"repro/internal/fabric/fabrictest"
	"repro/internal/lang"
	"repro/internal/rt"
	"repro/internal/rtlive"
	"repro/internal/sim"
)

// TestLocalConformance runs the transport conformance suite against the
// in-process transport on the deterministic simulator.
func TestLocalConformance(t *testing.T) {
	fabrictest.Run(t, func(t *testing.T, n int) *fabrictest.Harness {
		eng := sim.NewEngine(1)
		nodes := make([]*fabrictest.StubNode, n)
		fnodes := make([]fabric.Node, n)
		for k := range nodes {
			nodes[k] = &fabrictest.StubNode{Site: k}
			fnodes[k] = nodes[k]
		}
		tr := fabric.NewLocal(cluster.Uniform(n, 50*rt.Millisecond), fnodes)
		return &fabrictest.Harness{
			Transport: tr,
			Nodes:     nodes,
			Exec: func(fn func(p rt.Proc)) {
				eng.Spawn(0, fn)
				eng.Run()
			},
		}
	})
}

// runHTTPConformance runs the conformance suite against the
// multi-process transport: site 0 is local, every other site is a real
// HTTP server mounting the peer handler — so the whole round trip is
// exercised. cfg tweaks the transport (e.g. DisableBinary) and wrap
// interposes middleware on each peer server (e.g. an old build refusing
// the binary content type).
func runHTTPConformance(t *testing.T, cfg func(*fabric.HTTP), wrap func(http.Handler) http.Handler) {
	fabrictest.Run(t, func(t *testing.T, n int) *fabrictest.Harness {
		live := rtlive.New(1)
		nodes := make([]*fabrictest.StubNode, n)
		peers := make([]string, n)
		for k := range nodes {
			nodes[k] = &fabrictest.StubNode{Site: k}
		}
		for k := 1; k < n; k++ {
			var h http.Handler = fabric.NewPeerHandler(nodes[k], nil, "")
			if wrap != nil {
				h = wrap(h)
			}
			srv := httptest.NewServer(h)
			t.Cleanup(srv.Close)
			peers[k] = srv.URL
		}
		peers[0] = "http://invalid.localhost:0" // self: never dialed
		tr := fabric.NewHTTP(live, 0, peers, nodes[0], nil)
		if cfg != nil {
			cfg(tr)
		}
		return &fabrictest.Harness{
			Transport: tr,
			Nodes:     nodes,
			Exec: func(fn func(p rt.Proc)) {
				done := make(chan struct{})
				live.Spawn(0, func(p rt.Proc) {
					defer close(done)
					fn(p)
				})
				<-done
			},
		}
	})
}

// TestHTTPConformance: default negotiation, so every peer body rides the
// binary codec.
func TestHTTPConformance(t *testing.T) { runHTTPConformance(t, nil, nil) }

// TestHTTPConformanceJSON forces the JSON encoding end to end — the
// legacy wire format must keep passing the same suite.
func TestHTTPConformanceJSON(t *testing.T) {
	runHTTPConformance(t, func(tr *fabric.HTTP) { tr.DisableBinary() }, nil)
}

// TestHTTPConformanceFallback simulates a mixed-version cluster: every
// peer refuses the binary content type with 415, the way a build that
// predates the codec fails. The transport must notice, remember each
// peer as JSON-only, and pass the whole suite over the fallback.
func TestHTTPConformanceFallback(t *testing.T) {
	var refused atomic.Int64
	runHTTPConformance(t, nil, func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(rw http.ResponseWriter, req *http.Request) {
			if req.Header.Get("Content-Type") == codec.ContentType {
				refused.Add(1)
				http.Error(rw, "unsupported media type", http.StatusUnsupportedMediaType)
				return
			}
			next.ServeHTTP(rw, req)
		})
	})
	if refused.Load() == 0 {
		t.Fatal("no binary request was refused: the fallback path never ran")
	}
}

// chargeNode answers collects with empty values (latency test only).
type chargeNode struct{}

func (chargeNode) CollectState(fabric.CollectState) (fabric.StateReply, error) {
	return fabric.StateReply{Values: lang.Database{}}, nil
}
func (chargeNode) InstallState(fabric.InstallState) error       { return nil }
func (chargeNode) InstallTreaties(fabric.InstallTreaties) error { return nil }
func (chargeNode) AbortRound(fabric.AbortRound) error           { return nil }
func (chargeNode) Rejoin(fabric.Rejoin) (fabric.RejoinReply, error) {
	return fabric.RejoinReply{}, nil
}
func (chargeNode) JoinSite(fabric.JoinSite) (fabric.JoinReply, error) {
	return fabric.JoinReply{}, nil
}
func (chargeNode) DrainSite(fabric.DrainSite) (fabric.DrainReply, error) {
	return fabric.DrainReply{}, nil
}
func (chargeNode) MigrateUnit(fabric.MigrateUnit) (fabric.MigrateReply, error) {
	return fabric.MigrateReply{}, nil
}

// TestLocalLatencyMatchesTopology pins the Local transport's virtual-time
// charges — the property the experiment goldens depend on: Collect and
// Distribute each cost exactly the coordinator's worst pairwise round
// trip (RoundLatency == MaxRTTFrom), and Install costs nothing.
func TestLocalLatencyMatchesTopology(t *testing.T) {
	topo := cluster.EC2(3) // asymmetric RTTs: UE, UW, IE
	for from := 0; from < 3; from++ {
		eng := sim.NewEngine(1)
		nodes := []fabric.Node{chargeNode{}, chargeNode{}, chargeNode{}}
		tr := fabric.NewLocal(topo, nodes)
		var collect, install, distribute rt.Duration
		eng.Spawn(0, func(p rt.Proc) {
			start := p.Now()
			if _, err := tr.Collect(p, from, func() fabric.CollectState {
				return fabric.CollectState{Objs: []lang.ObjID{"x"}}
			}); err != nil {
				t.Errorf("Collect: %v", err)
			}
			collect = rt.Duration(p.Now() - start)
			start = p.Now()
			tr.Install(p, from, fabric.InstallState{})
			install = rt.Duration(p.Now() - start)
			start = p.Now()
			tr.Distribute(p, from, make([]fabric.InstallTreaties, 3))
			distribute = rt.Duration(p.Now() - start)
		})
		eng.Run()
		want := topo.MaxRTTFrom(from)
		if topo.RoundLatency(from) != want {
			t.Fatalf("RoundLatency(%d) = %v, want MaxRTTFrom = %v", from, topo.RoundLatency(from), want)
		}
		if collect != want {
			t.Errorf("from %d: Collect charged %v, want %v", from, collect, want)
		}
		if install != 0 {
			t.Errorf("from %d: Install charged %v, want 0", from, install)
		}
		if distribute != want {
			t.Errorf("from %d: Distribute charged %v, want %v", from, distribute, want)
		}
	}
}

// TestPeerTokenAuth: with a token configured, peer mutations without the
// shared secret are refused before touching the node, and a transport
// carrying the right token passes.
func TestPeerTokenAuth(t *testing.T) {
	live := rtlive.New(1)
	good := &fabrictest.StubNode{Site: 1}
	srv := httptest.NewServer(fabric.NewPeerHandler(good, nil, "s3cret"))
	defer srv.Close()

	// Raw POST without the token: 401, node untouched.
	resp, err := http.Post(srv.URL+"/v1/peer/install-state", "application/json",
		strings.NewReader(`{"from":0,"round":1,"objs":["x"],"folded":{"x":999}}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("tokenless install-state = %d, want 401", resp.StatusCode)
	}

	self := &fabrictest.StubNode{Site: 0}
	peers := []string{"http://unused.invalid", srv.URL}
	tr := fabric.NewHTTP(live, 0, peers, self, nil)

	// Wrong token: refused with the failure attributed to the peer.
	tr.SetToken("wrong")
	var werr error
	exec(t, live, func(p rt.Proc) {
		werr = tr.Install(p, 0, fabric.InstallState{Round: fabric.RoundID{Site: 0, Seq: 1}})
	})
	if werr == nil {
		t.Fatal("wrong token accepted")
	}

	// Right token: delivered.
	tr.SetToken("s3cret")
	var gerr error
	exec(t, live, func(p rt.Proc) {
		gerr = tr.Install(p, 0, fabric.InstallState{Round: fabric.RoundID{Site: 0, Seq: 2}})
	})
	if gerr != nil {
		t.Fatalf("right token refused: %v", gerr)
	}
	if _, is, _, _ := good.Snapshot(); len(is) != 1 {
		t.Fatalf("peer node handled %d installs, want exactly 1 (the authorized one)", len(is))
	}
}

// exec runs fn on a fresh process of the live runtime and waits.
func exec(t *testing.T, live *rtlive.Runtime, fn func(p rt.Proc)) {
	t.Helper()
	done := make(chan struct{})
	live.Spawn(0, func(p rt.Proc) {
		defer close(done)
		fn(p)
	})
	<-done
}
