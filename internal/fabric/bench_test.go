package fabric_test

import (
	"net/http/httptest"
	"testing"

	"repro/internal/fabric"
	"repro/internal/fabric/fabrictest"
	"repro/internal/lang"
	"repro/internal/lia"
	"repro/internal/logic"
	"repro/internal/rt"
	"repro/internal/rtlive"
	"repro/internal/treaty"
)

// BenchmarkNegotiationRoundTrip measures one full cleanup-phase exchange
// over fabric.HTTP on loopback: round 1 (CollectState scatter/gather +
// InstallState close) and round 2 (InstallTreaties distribute). Site 0
// is local, site 1 a real HTTP server, so every message pays the whole
// encode → socket → decode → handle → encode → decode trip.
func BenchmarkNegotiationRoundTrip(b *testing.B) {
	live := rtlive.New(1)
	nodes := []*fabrictest.StubNode{{Site: 0}, {Site: 1}}
	srv := httptest.NewServer(fabric.NewPeerHandler(nodes[1], nil, ""))
	defer srv.Close()
	peers := []string{"http://invalid.localhost:0", srv.URL}
	tr := fabric.NewHTTP(live, 0, peers, nodes[0], nil)

	objs := []lang.ObjID{"stock_1", "stock_2", "stock_3"}
	rid := fabric.RoundID{Site: 0, Seq: 1}
	collect := func() fabric.CollectState {
		return fabric.CollectState{Round: rid, Clock: 10, Units: []int{0}, Objs: objs}
	}
	install := fabric.InstallState{
		Round: rid, Clock: 12, Objs: objs,
		Folded: lang.Database{"stock_1": 40, "stock_2": 41, "stock_3": 42},
		Winner: &fabric.WinnerCommit{Class: "Order", Args: []int64{1}, Site: 0, Units: []int{0}},
	}
	ms := make([]fabric.InstallTreaties, 2)
	for k := range ms {
		term := lia.NewTerm()
		term.AddVar(logic.Obj(objs[0]), 1)
		term.AddVar(logic.Obj(lang.DeltaObj(objs[0], k)), 1)
		term.Const = -20
		ms[k] = fabric.InstallTreaties{
			Round: rid, Clock: 14, Site: k,
			Units: []fabric.UnitTreaty{{
				Unit: 0, Version: 2,
				Local: treaty.Local{Site: k, Constraints: []lia.Constraint{{Term: term, Op: lia.LE}}},
			}},
		}
	}

	roundTrip := func(p rt.Proc) error {
		if _, err := tr.Collect(p, 0, collect); err != nil {
			return err
		}
		if err := tr.Install(p, 0, install); err != nil {
			return err
		}
		return tr.Distribute(p, 0, ms)
	}

	var benchErr error
	done := make(chan struct{})
	live.Spawn(0, func(p rt.Proc) {
		defer close(done)
		for i := 0; i < 16; i++ {
			if err := roundTrip(p); err != nil {
				benchErr = err
				return
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := roundTrip(p); err != nil {
				benchErr = err
				return
			}
		}
	})
	<-done
	live.Drain()
	if benchErr != nil {
		b.Fatal(benchErr)
	}
}
