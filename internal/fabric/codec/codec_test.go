package codec_test

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"repro/homeo/wire"
	"repro/internal/fabric/codec"
)

// samples is one representative value per peer message kind, with the
// awkward corners included: nil and non-nil optional winner, empty and
// multi-entry maps, negative values, every constraint op.
func samples() []any {
	return []any{
		&wire.PeerCollect{From: 1, Round: 7, Clock: 99, Units: []int{0, 2}, Objs: []string{"stock(0)", "stock(1)"}},
		&wire.PeerState{Clock: 100, Values: map[string]int64{"stock(0)": 5, "delta:1:stock(0)": -2}},
		&wire.PeerInstallState{From: 0, Round: 8, Clock: 101, Objs: []string{"a"},
			Folded: map[string]int64{"a": 42},
			Winner: &wire.PeerWinner{Class: "Order", Args: []int64{1, -2}, Site: 1, Units: []int{0}, Log: []int64{3}}},
		&wire.PeerInstallState{From: 2, Round: 9, Clock: 50},
		&wire.PeerInstallTreaties{From: 0, Round: 8, Clock: 102, Site: 1, Units: []wire.PeerUnitTreaty{{
			Unit: 0, Version: 3, Constraints: []wire.PeerConstraint{
				{Coeffs: map[string]int64{"stock(0)": 1}, Const: -10, Op: "<="},
				{Coeffs: map[string]int64{"x": 2, "y": -1}, Const: 0, Op: "<"},
				{Const: 5, Op: "=="},
			}}}},
		&wire.PeerAbort{From: 1, Round: 7, Clock: 103},
		&wire.PeerAck{Clock: 104},
		&wire.PeerRejoin{Site: 2, Clock: 105, Units: []wire.PeerUnitVersion{{Unit: 0, Version: 1}, {Unit: 1, Version: 2}}},
		&wire.PeerRejoinReply{Clock: 106, Units: []wire.PeerRejoinUnit{
			{Unit: 0, Version: 4, Force: true, Base: map[string]int64{"a": 1}},
			{Unit: 1, Version: 5},
		}},
	}
}

// fresh returns a zero value of m's concrete type, as a pointer.
func fresh(m any) any {
	return reflect.New(reflect.TypeOf(m).Elem()).Interface()
}

func TestMessageRoundTrip(t *testing.T) {
	for _, m := range samples() {
		enc, err := codec.AppendMessage(nil, m)
		if err != nil {
			t.Fatalf("%T: encode: %v", m, err)
		}
		if !codec.IsBinary(enc) {
			t.Fatalf("%T: encoding does not start with the codec magic", m)
		}
		out := fresh(m)
		if err := codec.DecodeMessage(enc, out); err != nil {
			t.Fatalf("%T: decode: %v", m, err)
		}
		if !reflect.DeepEqual(m, out) {
			t.Errorf("%T: round trip mismatch:\n got %+v\nwant %+v", m, out, m)
		}
	}
}

// TestEncodingDeterministic: the same value always encodes to the same
// bytes (maps are key-sorted), which negotiation tests and the WAL's CRC
// framing rely on.
func TestEncodingDeterministic(t *testing.T) {
	for _, m := range samples() {
		a, _ := codec.AppendMessage(nil, m)
		for i := 0; i < 8; i++ {
			b, _ := codec.AppendMessage(nil, m)
			if !bytes.Equal(a, b) {
				t.Fatalf("%T: encoding differs across runs", m)
			}
		}
	}
}

// TestDecodeWrongKind: a body posted to the wrong endpoint (kind/type
// mismatch) fails loudly instead of misparsing.
func TestDecodeWrongKind(t *testing.T) {
	enc, _ := codec.AppendMessage(nil, &wire.PeerCollect{From: 1})
	var st wire.PeerState
	if err := codec.DecodeMessage(enc, &st); err == nil {
		t.Fatal("collect body decoded as PeerState without error")
	}
}

// TestDecodeNotBinary: JSON bodies are identified as such, so the
// transport can fall back instead of misparsing.
func TestDecodeNotBinary(t *testing.T) {
	var c wire.PeerCollect
	err := codec.DecodeMessage([]byte(`{"from":1}`), &c)
	if !errors.Is(err, codec.ErrNotBinary) {
		t.Fatalf("JSON body: got %v, want ErrNotBinary", err)
	}
}

// TestDecodeCorruption is the codec's analogue of the WAL torn-tail
// corpus: every truncation of a valid message must fail cleanly, and
// every single-byte flip must decode without panicking or huge
// allocations (a flipped count must not become an allocation request).
func TestDecodeCorruption(t *testing.T) {
	for _, m := range samples() {
		enc, err := codec.AppendMessage(nil, m)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < len(enc); i++ {
			if err := codec.DecodeMessage(enc[:i], fresh(m)); err == nil {
				t.Errorf("%T: truncation to %d/%d bytes decoded cleanly", m, i, len(enc))
			}
		}
		for i := 0; i < len(enc); i++ {
			mut := append([]byte(nil), enc...)
			mut[i] ^= 0xFF
			// Must not panic; an error or a different value are both fine.
			err := codec.DecodeMessage(mut, fresh(m))
			if i == 0 && !errors.Is(err, codec.ErrNotBinary) {
				t.Errorf("%T: flipped magic: got %v, want ErrNotBinary", m, err)
			}
		}
	}
}

// FuzzDecodeMessage drives arbitrary bytes through every decoder. The
// properties: no panic, and anything that decodes cleanly re-encodes to
// a message that decodes back to the same value (the codec is closed
// under its own round trip even for non-canonical varint input).
func FuzzDecodeMessage(f *testing.F) {
	for _, m := range samples() {
		enc, _ := codec.AppendMessage(nil, m)
		f.Add(enc)
	}
	f.Add([]byte(`{"from":1}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, m := range samples() {
			v := fresh(m)
			if err := codec.DecodeMessage(data, v); err != nil {
				continue
			}
			enc, err := codec.AppendMessage(nil, v)
			if err != nil {
				t.Fatalf("%T: decoded value does not re-encode: %v", v, err)
			}
			again := fresh(m)
			if err := codec.DecodeMessage(enc, again); err != nil {
				t.Fatalf("%T: re-encoded value does not decode: %v", v, err)
			}
			if !reflect.DeepEqual(v, again) {
				t.Fatalf("%T: re-encode round trip mismatch:\n got %+v\nwant %+v", v, again, v)
			}
		}
	})
}

// BenchmarkPeerCodec measures one encode+decode of each negotiation
// message into a reused buffer — the transport's per-body codec cost.
func BenchmarkPeerCodec(b *testing.B) {
	msgs := samples()
	outs := make([]any, len(msgs))
	for i, m := range msgs {
		outs[i] = fresh(m)
	}
	var buf []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := msgs[i%len(msgs)]
		var err error
		buf, err = codec.AppendMessage(buf[:0], m)
		if err != nil {
			b.Fatal(err)
		}
		if err := codec.DecodeMessage(buf, outs[i%len(msgs)]); err != nil {
			b.Fatal(err)
		}
	}
}
