package codec

import (
	"fmt"

	"repro/homeo/wire"
)

// Message kinds of the peer protocol. The kind byte in the header is
// checked against the expected type on decode, so a request body posted
// to the wrong endpoint fails loudly instead of misparsing.
const (
	KindCollect byte = iota + 1
	KindState
	KindInstallState
	KindInstallTreaties
	KindAbort
	KindAck
	KindRejoin
	KindRejoinReply
	KindJoin
	KindJoinReply
	KindDrain
	KindDrainReply
	KindMigrate
	KindMigrateReply
)

// Constraint op bytes ("<=", "<", "==" in the JSON encoding).
const (
	opLE byte = iota
	opLT
	opEQ
)

func appendOp(dst []byte, op string) ([]byte, error) {
	switch op {
	case "<=":
		return append(dst, opLE), nil
	case "<":
		return append(dst, opLT), nil
	case "==":
		return append(dst, opEQ), nil
	}
	return nil, fmt.Errorf("codec: unknown constraint op %q", op)
}

func (r *Reader) op() string {
	switch b := r.Byte(); b {
	case opLE:
		return "<="
	case opLT:
		return "<"
	case opEQ:
		return "=="
	default:
		if r.err == nil {
			r.fail("unknown constraint op byte %d", b)
		}
		return ""
	}
}

// AppendMessage appends the binary encoding of a peer message. The
// concrete type selects the kind; unknown types are an error.
//
//homeo:hotpath
func AppendMessage(dst []byte, m any) ([]byte, error) {
	switch m := m.(type) {
	case *wire.PeerCollect:
		dst = AppendHeader(dst, KindCollect)
		dst = AppendInt(dst, m.From)
		dst = AppendUvarint(dst, m.Round)
		dst = AppendVarint(dst, m.Clock)
		dst = AppendInts(dst, m.Units)
		return AppendStrings(dst, m.Objs), nil
	case *wire.PeerState:
		dst = AppendHeader(dst, KindState)
		dst = AppendVarint(dst, m.Clock)
		return AppendStringMap(dst, m.Values), nil
	case *wire.PeerInstallState:
		dst = AppendHeader(dst, KindInstallState)
		dst = AppendInt(dst, m.From)
		dst = AppendUvarint(dst, m.Round)
		dst = AppendVarint(dst, m.Clock)
		dst = AppendStrings(dst, m.Objs)
		dst = AppendStringMap(dst, m.Folded)
		if m.Winner == nil {
			return AppendBool(dst, false), nil
		}
		dst = AppendBool(dst, true)
		dst = AppendString(dst, m.Winner.Class)
		dst = AppendInt64s(dst, m.Winner.Args)
		dst = AppendInt(dst, m.Winner.Site)
		dst = AppendInts(dst, m.Winner.Units)
		return AppendInt64s(dst, m.Winner.Log), nil
	case *wire.PeerInstallTreaties:
		dst = AppendHeader(dst, KindInstallTreaties)
		dst = AppendInt(dst, m.From)
		dst = AppendUvarint(dst, m.Round)
		dst = AppendVarint(dst, m.Clock)
		dst = AppendInt(dst, m.Site)
		dst = AppendUvarint(dst, uint64(len(m.Units)))
		for _, u := range m.Units {
			dst = AppendInt(dst, u.Unit)
			dst = AppendVarint(dst, u.Version)
			dst = AppendUvarint(dst, uint64(len(u.Constraints)))
			for _, c := range u.Constraints {
				dst = AppendStringMap(dst, c.Coeffs)
				dst = AppendVarint(dst, c.Const)
				var err error
				if dst, err = appendOp(dst, c.Op); err != nil {
					return nil, err
				}
			}
		}
		return dst, nil
	case *wire.PeerAbort:
		dst = AppendHeader(dst, KindAbort)
		dst = AppendInt(dst, m.From)
		dst = AppendUvarint(dst, m.Round)
		return AppendVarint(dst, m.Clock), nil
	case *wire.PeerAck:
		dst = AppendHeader(dst, KindAck)
		return AppendVarint(dst, m.Clock), nil
	case *wire.PeerRejoin:
		dst = AppendHeader(dst, KindRejoin)
		dst = AppendInt(dst, m.Site)
		dst = AppendVarint(dst, m.Clock)
		dst = AppendUvarint(dst, uint64(len(m.Units)))
		for _, u := range m.Units {
			dst = AppendInt(dst, u.Unit)
			dst = AppendVarint(dst, u.Version)
		}
		return dst, nil
	case *wire.PeerRejoinReply:
		dst = AppendHeader(dst, KindRejoinReply)
		dst = AppendVarint(dst, m.Clock)
		dst = AppendUvarint(dst, uint64(len(m.Units)))
		for _, u := range m.Units {
			dst = AppendInt(dst, u.Unit)
			dst = AppendVarint(dst, u.Version)
			dst = AppendBool(dst, u.Force)
			dst = AppendStringMap(dst, u.Base)
		}
		return dst, nil
	case *wire.PeerJoin:
		dst = AppendHeader(dst, KindJoin)
		dst = AppendInt(dst, m.Site)
		dst = AppendUvarint(dst, m.Round)
		dst = AppendVarint(dst, m.Clock)
		dst = AppendString(dst, m.Addr)
		return AppendInt(dst, m.Phase), nil
	case *wire.PeerJoinReply:
		dst = AppendHeader(dst, KindJoinReply)
		dst = AppendVarint(dst, m.Clock)
		dst = AppendVarint(dst, m.Epoch)
		dst = AppendUvarint(dst, uint64(len(m.Units)))
		for _, u := range m.Units {
			dst = AppendInt(dst, u.Unit)
			dst = AppendVarint(dst, u.Version)
			dst = AppendStringMap(dst, u.Base)
		}
		return dst, nil
	case *wire.PeerDrain:
		dst = AppendHeader(dst, KindDrain)
		dst = AppendInt(dst, m.Site)
		return AppendVarint(dst, m.Clock), nil
	case *wire.PeerDrainReply:
		dst = AppendHeader(dst, KindDrainReply)
		dst = AppendVarint(dst, m.Clock)
		return AppendVarint(dst, m.Epoch), nil
	case *wire.PeerMigrate:
		dst = AppendHeader(dst, KindMigrate)
		dst = AppendInt(dst, m.From)
		dst = AppendUvarint(dst, m.Round)
		dst = AppendVarint(dst, m.Clock)
		dst = AppendInt(dst, m.Unit)
		dst = AppendInt(dst, m.To)
		dst = AppendStrings(dst, m.Objs)
		return AppendStringMap(dst, m.Folded), nil
	case *wire.PeerMigrateReply:
		dst = AppendHeader(dst, KindMigrateReply)
		dst = AppendVarint(dst, m.Clock)
		return AppendVarint(dst, m.Epoch), nil
	}
	return nil, errUnencodable(m)
}

// errUnencodable formats the cold-path error for a message type the
// codec does not know, kept out of the //homeo:hotpath body.
func errUnencodable(m any) error { return fmt.Errorf("codec: cannot encode %T", m) }

// DecodeMessage decodes a binary peer message into m, whose concrete
// type must match the encoded kind. Returns ErrNotBinary when the
// payload is not codec-encoded (a JSON fallback body).
func DecodeMessage(data []byte, m any) error {
	r := NewReader(data)
	kind := r.Header()
	if r.err != nil {
		return r.err
	}
	want := func(k byte) bool {
		if kind != k {
			r.fail("message kind %d decoded as %T", kind, m)
			return false
		}
		return true
	}
	switch m := m.(type) {
	case *wire.PeerCollect:
		if want(KindCollect) {
			m.From = r.Int()
			m.Round = r.Uvarint()
			m.Clock = r.Varint()
			m.Units = r.Ints()
			m.Objs = r.Strings()
		}
	case *wire.PeerState:
		if want(KindState) {
			m.Clock = r.Varint()
			m.Values = r.StringMap()
		}
	case *wire.PeerInstallState:
		if want(KindInstallState) {
			m.From = r.Int()
			m.Round = r.Uvarint()
			m.Clock = r.Varint()
			m.Objs = r.Strings()
			m.Folded = r.StringMap()
			if r.Bool() {
				m.Winner = &wire.PeerWinner{
					Class: r.String(),
					Args:  r.Int64s(),
					Site:  r.Int(),
					Units: r.Ints(),
					Log:   r.Int64s(),
				}
			} else {
				m.Winner = nil
			}
		}
	case *wire.PeerInstallTreaties:
		if want(KindInstallTreaties) {
			m.From = r.Int()
			m.Round = r.Uvarint()
			m.Clock = r.Varint()
			m.Site = r.Int()
			if n := r.Count(); r.err == nil && n > 0 {
				m.Units = make([]wire.PeerUnitTreaty, n)
				for i := range m.Units {
					u := &m.Units[i]
					u.Unit = r.Int()
					u.Version = r.Varint()
					if nc := r.Count(); r.err == nil && nc > 0 {
						u.Constraints = make([]wire.PeerConstraint, nc)
						for j := range u.Constraints {
							u.Constraints[j] = wire.PeerConstraint{
								Coeffs: r.StringMap(),
								Const:  r.Varint(),
								Op:     r.op(),
							}
						}
					}
				}
			}
		}
	case *wire.PeerAbort:
		if want(KindAbort) {
			m.From = r.Int()
			m.Round = r.Uvarint()
			m.Clock = r.Varint()
		}
	case *wire.PeerAck:
		if want(KindAck) {
			m.Clock = r.Varint()
		}
	case *wire.PeerRejoin:
		if want(KindRejoin) {
			m.Site = r.Int()
			m.Clock = r.Varint()
			if n := r.Count(); r.err == nil && n > 0 {
				m.Units = make([]wire.PeerUnitVersion, n)
				for i := range m.Units {
					m.Units[i] = wire.PeerUnitVersion{Unit: r.Int(), Version: r.Varint()}
				}
			}
		}
	case *wire.PeerRejoinReply:
		if want(KindRejoinReply) {
			m.Clock = r.Varint()
			if n := r.Count(); r.err == nil && n > 0 {
				m.Units = make([]wire.PeerRejoinUnit, n)
				for i := range m.Units {
					m.Units[i] = wire.PeerRejoinUnit{
						Unit:    r.Int(),
						Version: r.Varint(),
						Force:   r.Bool(),
						Base:    r.StringMap(),
					}
				}
			}
		}
	case *wire.PeerJoin:
		if want(KindJoin) {
			m.Site = r.Int()
			m.Round = r.Uvarint()
			m.Clock = r.Varint()
			m.Addr = r.String()
			m.Phase = r.Int()
		}
	case *wire.PeerJoinReply:
		if want(KindJoinReply) {
			m.Clock = r.Varint()
			m.Epoch = r.Varint()
			if n := r.Count(); r.err == nil && n > 0 {
				m.Units = make([]wire.PeerJoinUnit, n)
				for i := range m.Units {
					m.Units[i] = wire.PeerJoinUnit{
						Unit:    r.Int(),
						Version: r.Varint(),
						Base:    r.StringMap(),
					}
				}
			}
		}
	case *wire.PeerDrain:
		if want(KindDrain) {
			m.Site = r.Int()
			m.Clock = r.Varint()
		}
	case *wire.PeerDrainReply:
		if want(KindDrainReply) {
			m.Clock = r.Varint()
			m.Epoch = r.Varint()
		}
	case *wire.PeerMigrate:
		if want(KindMigrate) {
			m.From = r.Int()
			m.Round = r.Uvarint()
			m.Clock = r.Varint()
			m.Unit = r.Int()
			m.To = r.Int()
			m.Objs = r.Strings()
			m.Folded = r.StringMap()
		}
	case *wire.PeerMigrateReply:
		if want(KindMigrateReply) {
			m.Clock = r.Varint()
			m.Epoch = r.Varint()
		}
	default:
		return fmt.Errorf("codec: cannot decode into %T", m)
	}
	return r.Close()
}
