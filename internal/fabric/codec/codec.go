// Package codec is the length-prefixed binary encoding shared by the
// site-fabric peer protocol (/v1/peer/* bodies, negotiated via content
// type with a JSON fallback) and the write-ahead log's record payloads.
//
// Every encoded value starts with a three-byte header — magic, format
// version, message kind — followed by the kind's fields in a fixed
// order. Integers are varints (zigzag for signed), strings and byte
// blobs are length-prefixed, and maps are written as sorted key/value
// runs so encoding is deterministic: the same value always produces the
// same bytes, which the WAL's CRC framing and the golden tests rely on.
//
// The magic byte (0xB5) never collides with '{' or a space, so a
// decoder can sniff binary versus legacy JSON from the first payload
// byte; that is how mixed-version clusters and old WAL files keep
// working.
package codec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"
)

const (
	// Magic is the first byte of every binary-encoded value.
	Magic = 0xB5
	// Version is the encoding format version.
	Version = 1
	// ContentType negotiates the binary encoding on the peer surface.
	ContentType = "application/x-homeo-peer"
)

// ErrNotBinary reports a payload that does not start with the codec
// magic (a legacy JSON body, typically).
var ErrNotBinary = errors.New("codec: payload is not binary-encoded")

// IsBinary reports whether a payload starts with the codec magic.
func IsBinary(b []byte) bool { return len(b) > 0 && b[0] == Magic }

// AppendHeader appends the three-byte header for a message kind.
func AppendHeader(dst []byte, kind byte) []byte {
	return append(dst, Magic, Version, kind)
}

// AppendUvarint appends an unsigned varint.
func AppendUvarint(dst []byte, v uint64) []byte {
	return binary.AppendUvarint(dst, v)
}

// AppendVarint appends a zigzag-encoded signed varint.
func AppendVarint(dst []byte, v int64) []byte {
	return binary.AppendVarint(dst, v)
}

// AppendInt appends a signed int as a varint.
func AppendInt(dst []byte, v int) []byte {
	return binary.AppendVarint(dst, int64(v))
}

// AppendBool appends a bool as one byte.
func AppendBool(dst []byte, v bool) []byte {
	if v {
		return append(dst, 1)
	}
	return append(dst, 0)
}

// AppendString appends a length-prefixed string.
func AppendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// AppendBytes appends a length-prefixed byte blob.
func AppendBytes(dst []byte, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

// AppendInt64s appends a count-prefixed slice of signed varints.
func AppendInt64s(dst []byte, vs []int64) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(vs)))
	for _, v := range vs {
		dst = binary.AppendVarint(dst, v)
	}
	return dst
}

// AppendInts appends a count-prefixed slice of signed varints.
func AppendInts(dst []byte, vs []int) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(vs)))
	for _, v := range vs {
		dst = binary.AppendVarint(dst, int64(v))
	}
	return dst
}

// AppendStrings appends a count-prefixed slice of strings.
func AppendStrings(dst []byte, ss []string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(ss)))
	for _, s := range ss {
		dst = AppendString(dst, s)
	}
	return dst
}

// keyScratch pools the sorted-key scratch AppendStringMap uses, so the
// encode path does not allocate a fresh slice per map.
var keyScratch = sync.Pool{New: func() any { s := make([]string, 0, 64); return &s }}

// AppendStringMap appends a map[string]int64 as a count prefix followed
// by key-sorted (string, varint) pairs. The sort makes the encoding
// deterministic.
//
//homeo:hotpath
func AppendStringMap(dst []byte, m map[string]int64) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(m)))
	if len(m) == 0 {
		return dst
	}
	kp := keyScratch.Get().(*[]string)
	keys := (*kp)[:0]
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		dst = AppendString(dst, k)
		dst = binary.AppendVarint(dst, m[k])
	}
	*kp = keys
	keyScratch.Put(kp)
	return dst
}

// Reader decodes codec-encoded bytes. Methods are sticky on error: the
// first malformed field poisons the reader and every later read returns
// a zero value, so call sites can decode a whole message and check Err
// once at the end.
type Reader struct {
	b   []byte
	off int
	err error
}

// NewReader returns a reader over b.
func NewReader(b []byte) *Reader { return &Reader{b: b} }

// Err returns the first decode error, if any.
func (r *Reader) Err() error { return r.err }

// Len returns the number of unread bytes.
func (r *Reader) Len() int { return len(r.b) - r.off }

func (r *Reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("codec: "+format, args...)
	}
}

// Header consumes the three-byte header and returns the message kind.
func (r *Reader) Header() byte {
	if r.err != nil {
		return 0
	}
	if r.Len() < 3 {
		r.fail("short header (%d bytes)", r.Len())
		return 0
	}
	if r.b[r.off] != Magic {
		r.err = ErrNotBinary
		return 0
	}
	if r.b[r.off+1] != Version {
		r.fail("unsupported version %d", r.b[r.off+1])
		return 0
	}
	kind := r.b[r.off+2]
	r.off += 3
	return kind
}

// Byte consumes one byte.
func (r *Reader) Byte() byte {
	if r.err != nil {
		return 0
	}
	if r.Len() < 1 {
		r.fail("unexpected end of input")
		return 0
	}
	b := r.b[r.off]
	r.off++
	return b
}

// Bool consumes one byte as a bool.
func (r *Reader) Bool() bool { return r.Byte() != 0 }

// Uvarint consumes an unsigned varint.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail("bad uvarint at offset %d", r.off)
		return 0
	}
	r.off += n
	return v
}

// Varint consumes a zigzag-encoded signed varint.
func (r *Reader) Varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		r.fail("bad varint at offset %d", r.off)
		return 0
	}
	r.off += n
	return v
}

// Int consumes a signed varint as an int.
func (r *Reader) Int() int { return int(r.Varint()) }

// Count consumes a collection count and bounds it by the remaining
// input (every element takes at least one byte), so corrupt lengths
// cannot drive huge allocations.
func (r *Reader) Count() int {
	n := r.Uvarint()
	if r.err != nil {
		return 0
	}
	if n > uint64(r.Len()) {
		r.fail("count %d exceeds %d remaining bytes", n, r.Len())
		return 0
	}
	return int(n)
}

// String consumes a length-prefixed string.
func (r *Reader) String() string {
	n := r.Uvarint()
	if r.err != nil {
		return ""
	}
	if n > uint64(r.Len()) {
		r.fail("string length %d exceeds %d remaining bytes", n, r.Len())
		return ""
	}
	s := string(r.b[r.off : r.off+int(n)])
	r.off += int(n)
	return s
}

// Bytes consumes a length-prefixed byte blob (copied out of the input).
func (r *Reader) Bytes() []byte {
	n := r.Uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(r.Len()) {
		r.fail("blob length %d exceeds %d remaining bytes", n, r.Len())
		return nil
	}
	if n == 0 {
		return nil
	}
	b := make([]byte, n)
	copy(b, r.b[r.off:])
	r.off += int(n)
	return b
}

// Int64s consumes a count-prefixed slice of signed varints.
func (r *Reader) Int64s() []int64 {
	n := r.Count()
	if r.err != nil || n == 0 {
		return nil
	}
	vs := make([]int64, n)
	for i := range vs {
		vs[i] = r.Varint()
	}
	if r.err != nil {
		return nil
	}
	return vs
}

// Ints consumes a count-prefixed slice of signed varints as ints.
func (r *Reader) Ints() []int {
	n := r.Count()
	if r.err != nil || n == 0 {
		return nil
	}
	vs := make([]int, n)
	for i := range vs {
		vs[i] = int(r.Varint())
	}
	if r.err != nil {
		return nil
	}
	return vs
}

// Strings consumes a count-prefixed slice of strings.
func (r *Reader) Strings() []string {
	n := r.Count()
	if r.err != nil || n == 0 {
		return nil
	}
	ss := make([]string, n)
	for i := range ss {
		ss[i] = r.String()
	}
	if r.err != nil {
		return nil
	}
	return ss
}

// StringMap consumes a map encoded by AppendStringMap. An empty map
// decodes as nil, matching the JSON round trip of omitted fields.
func (r *Reader) StringMap() map[string]int64 {
	n := r.Count()
	if r.err != nil || n == 0 {
		return nil
	}
	m := make(map[string]int64, n)
	for i := 0; i < n; i++ {
		k := r.String()
		v := r.Varint()
		if r.err != nil {
			return nil
		}
		m[k] = v
	}
	return m
}

// Close checks that the input was consumed exactly.
func (r *Reader) Close() error {
	if r.err != nil {
		return r.err
	}
	if r.Len() != 0 {
		return fmt.Errorf("codec: %d trailing bytes", r.Len())
	}
	return nil
}
