package fabric

import (
	"repro/internal/cluster"
	"repro/internal/rt"
)

// Local is the in-process transport: every site's Node lives in the same
// process and messages are direct calls. Communication latency is charged
// per message from the cluster topology: a round's cost is the slowest
// peer's round trip from the coordinating site, which is exactly the
// paper's model of the cleanup phase's two communication rounds (and
// byte-identical, on the simulator, to the seed implementation's
// lump-sum MaxRTTFrom sleep).
//
// Handlers run at the round's completion point: under the paper's
// all-to-all state broadcast, every site holds the round's consolidated
// view when the slowest message lands, and the simulator's execution
// contract makes the whole exchange atomic in virtual time at that
// instant.
type Local struct {
	topo  *cluster.Topology
	nodes []Node
	gone  []bool
}

// NewLocal builds the in-process transport over the topology's sites.
// nodes[k] is site k's actor.
func NewLocal(topo *cluster.Topology, nodes []Node) *Local {
	if len(nodes) != topo.NSites() {
		panic("fabric: NewLocal needs one node per topology site")
	}
	return &Local{topo: topo, nodes: nodes, gone: make([]bool, len(nodes))}
}

// NSites reports the cluster width.
func (l *Local) NSites() int { return len(l.nodes) }

// AddSite grows the transport by one site: the node becomes the next
// index's actor (addr is unused in-process). The shared topology must
// already cover the new width.
func (l *Local) AddSite(addr string, node Node) {
	_ = addr
	l.nodes = append(l.nodes, node)
	l.gone = append(l.gone, false)
}

// MarkGone excludes a drained site from future scatters; its reply slots
// stay present and zero.
func (l *Local) MarkGone(site int) {
	if site >= 0 && site < len(l.gone) {
		l.gone[site] = true
	}
}

// Collect charges the round's communication latency, then delivers the
// materialized message to every site and gathers the replies.
func (l *Local) Collect(p rt.Proc, from int, mkMsg func() CollectState) ([]StateReply, error) {
	p.Sleep(l.topo.RoundLatency(from))
	m := mkMsg()
	replies := make([]StateReply, len(l.nodes))
	for k, n := range l.nodes {
		if l.gone[k] {
			continue
		}
		rep, err := n.CollectState(m)
		if err != nil {
			return nil, &SiteError{Site: k, Err: err}
		}
		replies[k] = rep
	}
	return replies, nil
}

// Install delivers the folded state everywhere. No additional latency is
// charged: the state travels with round 1 (see Transport.Install).
func (l *Local) Install(p rt.Proc, from int, m InstallState) error {
	for k, n := range l.nodes {
		if l.gone[k] {
			continue
		}
		if err := n.InstallState(m); err != nil {
			return &SiteError{Site: k, Err: err}
		}
	}
	return nil
}

// Distribute delivers each site its treaties, then charges the round's
// communication latency. Treaties take effect at round start — the
// seed's model, which the experiment goldens pin down — while the round
// trip (message out, acks back) is paid in full before the coordinator
// releases the units.
func (l *Local) Distribute(p rt.Proc, from int, ms []InstallTreaties) error {
	var firstErr error
	for k, n := range l.nodes {
		if l.gone[k] {
			continue
		}
		if err := n.InstallTreaties(ms[k]); err != nil && firstErr == nil {
			firstErr = &SiteError{Site: k, Err: err}
		}
	}
	p.Sleep(l.topo.RoundLatency(from))
	return firstErr
}

// Rejoin delivers the recovery handshake to every other site and charges
// one communication round (in-process this only runs in tests — a crash
// cannot take down a single site of a one-process cluster).
func (l *Local) Rejoin(p rt.Proc, from int, m Rejoin) ([]RejoinReply, error) {
	p.Sleep(l.topo.RoundLatency(from))
	replies := make([]RejoinReply, len(l.nodes))
	for k, n := range l.nodes {
		if k == from || l.gone[k] {
			continue
		}
		rep, err := n.Rejoin(m)
		if err != nil {
			return nil, &SiteError{Site: k, Err: err}
		}
		replies[k] = rep
	}
	return replies, nil
}

// Join delivers a join-handshake phase to every member except the
// joining site and gathers the replies. One communication round is
// charged per phase. During the prepare phase the joiner is not yet in
// the topology (it is admitted on activate), so an out-of-range sender
// is modeled at the cluster's edge: the worst round trip any member
// pays.
func (l *Local) Join(p rt.Proc, from int, m JoinSite) ([]JoinReply, error) {
	if from < l.topo.NSites() {
		p.Sleep(l.topo.RoundLatency(from))
	} else {
		var worst rt.Duration
		for k := 0; k < l.topo.NSites(); k++ {
			if d := l.topo.RoundLatency(k); d > worst {
				worst = d
			}
		}
		p.Sleep(worst)
	}
	replies := make([]JoinReply, len(l.nodes))
	for k, n := range l.nodes {
		if k == from || l.gone[k] {
			continue
		}
		rep, err := n.JoinSite(m)
		if err != nil {
			return nil, &SiteError{Site: k, Err: err}
		}
		replies[k] = rep
	}
	return replies, nil
}

// Drain announces the drained site to every other member and gathers the
// acks, charging one communication round.
func (l *Local) Drain(p rt.Proc, from int, m DrainSite) ([]DrainReply, error) {
	p.Sleep(l.topo.RoundLatency(from))
	replies := make([]DrainReply, len(l.nodes))
	for k, n := range l.nodes {
		if k == from || l.gone[k] {
			continue
		}
		rep, err := n.DrainSite(m)
		if err != nil {
			return nil, &SiteError{Site: k, Err: err}
		}
		replies[k] = rep
	}
	return replies, nil
}

// Migrate delivers the migrating unit's folded state everywhere. Like
// Install, the state travels with the round already paid for, so no
// additional latency is charged.
func (l *Local) Migrate(p rt.Proc, from int, m MigrateUnit) ([]MigrateReply, error) {
	replies := make([]MigrateReply, len(l.nodes))
	for k, n := range l.nodes {
		if l.gone[k] {
			continue
		}
		rep, err := n.MigrateUnit(m)
		if err != nil {
			return nil, &SiteError{Site: k, Err: err}
		}
		replies[k] = rep
	}
	return replies, nil
}

// Abort releases the round everywhere. In-process rounds only abort on a
// coordinator bug (the Local transport cannot fail mid-round), so no
// latency is modeled.
func (l *Local) Abort(p rt.Proc, from int, m AbortRound) error {
	var firstErr error
	for k, n := range l.nodes {
		if l.gone[k] {
			continue
		}
		if err := n.AbortRound(m); err != nil && firstErr == nil {
			firstErr = &SiteError{Site: k, Err: err}
		}
	}
	return firstErr
}

// compile-time conformance
var _ Transport = (*Local)(nil)
