package fabric

import (
	"bytes"
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/homeo/wire"
	"repro/internal/fabric/codec"
	"repro/internal/lang"
	"repro/internal/lia"
	"repro/internal/logic"
	"repro/internal/rt"
	"repro/internal/treaty"
)

// HTTP is the multi-process transport: the local site's Node is called
// directly, every other site is reached over real sockets with the peer
// messages of homeo/wire (served under /v1/peer/* by NewPeerHandler,
// which homeo/httpapi mounts). Communication latency is whatever the
// network charges.
//
// Bodies are sent in the length-prefixed binary codec by default,
// negotiated per peer via content type: a peer that rejects the binary
// content type (an older build answering 400 or 415) is remembered as
// JSON-only and every later message to it is JSON, so mixed-version
// clusters keep working. Servers answer in the request's content type;
// error envelopes are always JSON.
//
// While remote requests are in flight the coordinating process parks, so
// the site's runtime keeps executing local transactions — exactly the
// disconnected execution the protocol promises.
type HTTP struct {
	rt    rt.Runtime
	self  int
	node  Node
	hc    *http.Client
	token string
	noBin bool
	// ps is the current membership snapshot. Scatters load it once per
	// round, so AddSite/MarkGone (which publish a fresh snapshot) never
	// race the goroutines of an in-flight scatter.
	ps atomic.Pointer[peerSet]

	// Messages counts peer HTTP requests sent (an observability surface
	// for "no peer traffic outside violations").
	Messages atomic.Int64
}

// peerSet is one immutable membership snapshot: peer addresses plus the
// per-peer flags. The flag cells are pointers shared across snapshots,
// so a peer remembered as JSON-only (or marked gone) stays that way when
// the membership grows.
type peerSet struct {
	addrs []string
	// jsonOnly[k] is set once peer k rejects the binary content type;
	// later requests to it skip straight to JSON.
	jsonOnly []*atomic.Bool
	// gone[k] is set when site k drains; scatters skip it.
	gone []*atomic.Bool
}

func newPeerSet(addrs []string) *peerSet {
	ps := &peerSet{
		addrs:    append([]string(nil), addrs...),
		jsonOnly: make([]*atomic.Bool, len(addrs)),
		gone:     make([]*atomic.Bool, len(addrs)),
	}
	for k := range addrs {
		ps.jsonOnly[k] = new(atomic.Bool)
		ps.gone[k] = new(atomic.Bool)
	}
	return ps
}

// NewHTTP builds the multi-process transport. self is this process's
// site, peers[k] is site k's base URL (peers[self] is unused), node is
// the local site's actor, and hc optionally overrides the pooled HTTP
// client.
func NewHTTP(r rt.Runtime, self int, peers []string, node Node, hc *http.Client) *HTTP {
	if hc == nil {
		hc = &http.Client{
			Timeout: 15 * time.Second,
			Transport: &http.Transport{
				MaxIdleConns:        64,
				MaxIdleConnsPerHost: 16,
				IdleConnTimeout:     90 * time.Second,
			},
		}
	}
	t := &HTTP{rt: r, self: self, node: node, hc: hc}
	t.ps.Store(newPeerSet(peers))
	return t
}

// AddSite grows the membership by one peer at the next index (node is
// unused — this process's own site is fixed). Existing per-peer flags
// carry over; in-flight scatters keep their own snapshot.
func (t *HTTP) AddSite(addr string, node Node) {
	_ = node
	old := t.ps.Load()
	ps := &peerSet{
		addrs:    append(append([]string(nil), old.addrs...), addr),
		jsonOnly: append(append([]*atomic.Bool(nil), old.jsonOnly...), new(atomic.Bool)),
		gone:     append(append([]*atomic.Bool(nil), old.gone...), new(atomic.Bool)),
	}
	t.ps.Store(ps)
}

// MarkGone excludes a drained site from every future scatter.
func (t *HTTP) MarkGone(site int) {
	ps := t.ps.Load()
	if site >= 0 && site < len(ps.gone) {
		ps.gone[site].Store(true)
	}
}

// DisableBinary forces every outgoing request to the JSON encoding (the
// fabrictest conformance suite runs the transport both ways).
func (t *HTTP) DisableBinary() { t.noBin = true }

// PeerTokenHeader carries the cluster's shared peer secret on every
// fabric request. The peer endpoints mutate site state, so any
// deployment beyond a trusted loopback should set a token.
const PeerTokenHeader = "X-Homeo-Peer-Token"

// SetToken makes every outgoing peer request carry the shared secret
// (see NewPeerHandler's token parameter for the server half).
func (t *HTTP) SetToken(token string) { t.token = token }

// NSites reports the cluster width.
func (t *HTTP) NSites() int { return len(t.ps.Load().addrs) }

// scatter delivers one request per site of the ps snapshot: the self
// site inline (the caller holds the execution right; Node handlers never
// park), remote sites on goroutines while the calling process parks.
// Drained sites are skipped; their error slots stay nil. The wake is
// scheduled through the runtime so it runs under the execution right; it
// cannot fire before Park because the scheduler lock is held from
// PrepPark until Park releases it.
func (t *HTTP) scatter(p rt.Proc, ps *peerSet, do func(site int) error) error {
	n := len(ps.addrs)
	errs := make([]error, n)
	remotes := int32(0)
	for k := 0; k < n; k++ {
		if k != t.self && !ps.gone[k].Load() {
			remotes++
		}
	}
	selfLive := t.self >= 0 && t.self < n && !ps.gone[t.self].Load()
	if remotes > 0 {
		token := p.PrepPark()
		pending := remotes
		for k := 0; k < n; k++ {
			if k == t.self || ps.gone[k].Load() {
				continue
			}
			k := k
			go func() {
				errs[k] = do(k)
				if atomic.AddInt32(&pending, -1) == 0 {
					t.rt.At(t.rt.Now(), func() { p.WakeIf(token) })
				}
			}()
		}
		if selfLive {
			errs[t.self] = do(t.self)
		}
		p.Park()
	} else if selfLive {
		errs[t.self] = do(t.self)
	}
	// Surface a busy refusal first (it means "retry", and must win over
	// secondary failures), then the first error in site order.
	var firstErr error
	for k, err := range errs {
		if err == nil {
			continue
		}
		se := &SiteError{Site: k, Err: err}
		if errors.Is(err, ErrBusy) {
			return se
		}
		if firstErr == nil {
			firstErr = se
		}
	}
	return firstErr
}

// Collect materializes the message, scatters it, and gathers the replies.
func (t *HTTP) Collect(p rt.Proc, from int, mkMsg func() CollectState) ([]StateReply, error) {
	m := mkMsg()
	w := CollectToWire(m)
	ps := t.ps.Load()
	replies := make([]StateReply, len(ps.addrs))
	err := t.scatter(p, ps, func(k int) error {
		if k == t.self {
			rep, herr := t.node.CollectState(m)
			replies[k] = rep
			return herr
		}
		var out wire.PeerState
		if perr := t.post(ps, k, "collect", &w, &out); perr != nil {
			return perr
		}
		replies[k] = StateReply{Clock: out.Clock, Values: dbFromWire(out.Values)}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return replies, nil
}

// Install delivers the folded state everywhere.
func (t *HTTP) Install(p rt.Proc, from int, m InstallState) error {
	w := InstallStateToWire(m)
	ps := t.ps.Load()
	return t.scatter(p, ps, func(k int) error {
		if k == t.self {
			return t.node.InstallState(m)
		}
		var ack wire.PeerAck
		return t.post(ps, k, "install-state", &w, &ack)
	})
}

// Distribute delivers each site its treaties.
func (t *HTTP) Distribute(p rt.Proc, from int, ms []InstallTreaties) error {
	// Encode up front so a non-serializable treaty surfaces before any
	// site has been touched.
	ws := make([]wire.PeerInstallTreaties, len(ms))
	for k := range ms {
		w, err := InstallTreatiesToWire(ms[k])
		if err != nil {
			return &SiteError{Site: k, Err: err}
		}
		ws[k] = w
	}
	ps := t.ps.Load()
	return t.scatter(p, ps, func(k int) error {
		if k == t.self {
			return t.node.InstallTreaties(ms[k])
		}
		var ack wire.PeerAck
		return t.post(ps, k, "install-treaties", &ws[k], &ack)
	})
}

// Rejoin delivers the recovery handshake to every peer of the rejoining
// site (the from site is the sender, so it is skipped).
func (t *HTTP) Rejoin(p rt.Proc, from int, m Rejoin) ([]RejoinReply, error) {
	w := RejoinToWire(m)
	ps := t.ps.Load()
	replies := make([]RejoinReply, len(ps.addrs))
	err := t.scatter(p, ps, func(k int) error {
		if k == from {
			return nil
		}
		if k == t.self {
			rep, herr := t.node.Rejoin(m)
			if herr != nil {
				return herr
			}
			replies[k] = rep
			return nil
		}
		var out wire.PeerRejoinReply
		if perr := t.post(ps, k, "rejoin", &w, &out); perr != nil {
			return perr
		}
		replies[k] = RejoinReplyFromWire(out)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return replies, nil
}

// Join delivers a join-handshake phase to every member except the
// joining site (the sender) and gathers the replies.
func (t *HTTP) Join(p rt.Proc, from int, m JoinSite) ([]JoinReply, error) {
	w := JoinToWire(m)
	ps := t.ps.Load()
	replies := make([]JoinReply, len(ps.addrs))
	err := t.scatter(p, ps, func(k int) error {
		if k == from {
			return nil
		}
		if k == t.self {
			rep, herr := t.node.JoinSite(m)
			if herr != nil {
				return herr
			}
			replies[k] = rep
			return nil
		}
		var out wire.PeerJoinReply
		if perr := t.post(ps, k, "join", &w, &out); perr != nil {
			return perr
		}
		replies[k] = JoinReplyFromWire(out)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return replies, nil
}

// Drain announces the drained site to every other member and gathers
// the acks.
func (t *HTTP) Drain(p rt.Proc, from int, m DrainSite) ([]DrainReply, error) {
	w := DrainToWire(m)
	ps := t.ps.Load()
	replies := make([]DrainReply, len(ps.addrs))
	err := t.scatter(p, ps, func(k int) error {
		if k == from {
			return nil
		}
		if k == t.self {
			rep, herr := t.node.DrainSite(m)
			if herr != nil {
				return herr
			}
			replies[k] = rep
			return nil
		}
		var out wire.PeerDrainReply
		if perr := t.post(ps, k, "drain", &w, &out); perr != nil {
			return perr
		}
		replies[k] = DrainReply{Clock: out.Clock, Epoch: out.Epoch}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return replies, nil
}

// Migrate delivers a migrating unit's folded state to every member site
// and gathers the acks.
func (t *HTTP) Migrate(p rt.Proc, from int, m MigrateUnit) ([]MigrateReply, error) {
	w := MigrateToWire(m)
	ps := t.ps.Load()
	replies := make([]MigrateReply, len(ps.addrs))
	err := t.scatter(p, ps, func(k int) error {
		if k == t.self {
			rep, herr := t.node.MigrateUnit(m)
			if herr != nil {
				return herr
			}
			replies[k] = rep
			return nil
		}
		var out wire.PeerMigrateReply
		if perr := t.post(ps, k, "migrate", &w, &out); perr != nil {
			return perr
		}
		replies[k] = MigrateReply{Clock: out.Clock, Epoch: out.Epoch}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return replies, nil
}

// Abort releases the round everywhere.
func (t *HTTP) Abort(p rt.Proc, from int, m AbortRound) error {
	w := wire.PeerAbort{From: m.Round.Site, Round: m.Round.Seq, Clock: m.Clock}
	ps := t.ps.Load()
	return t.scatter(p, ps, func(k int) error {
		if k == t.self {
			return t.node.AbortRound(m)
		}
		var ack wire.PeerAck
		return t.post(ps, k, "abort", &w, &ack)
	})
}

// bufPool recycles the request/response buffers of the peer surface, so
// a round trip does not allocate a body per message.
var bufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

func getBuf() *bytes.Buffer { return bufPool.Get().(*bytes.Buffer) }

func putBuf(b *bytes.Buffer) {
	b.Reset()
	bufPool.Put(b)
}

// peerStatusError is a non-200, non-busy peer reply. post inspects the
// status to decide whether a binary request should fall back to JSON.
type peerStatusError struct {
	endpoint string
	status   int
	body     string
}

func (e *peerStatusError) Error() string {
	return fmt.Sprintf("peer %s: HTTP %d: %s", e.endpoint, e.status, e.body)
}

// binaryRejected reports a reply that means "this peer does not speak
// the binary content type" — an older build's decoder choking on the
// body (400) or an explicit unsupported-media-type refusal (415).
func binaryRejected(err error) bool {
	var se *peerStatusError
	return errors.As(err, &se) &&
		(se.status == http.StatusBadRequest || se.status == http.StatusUnsupportedMediaType)
}

// post performs one round trip to a peer endpoint: binary codec by
// default, falling back to JSON — and remembering the peer as JSON-only
// — when the peer rejects the binary content type.
func (t *HTTP) post(ps *peerSet, site int, endpoint string, in, out any) error {
	bin := !t.noBin && !ps.jsonOnly[site].Load()
	err := t.postOnce(ps, site, endpoint, in, out, bin)
	if bin && binaryRejected(err) {
		ps.jsonOnly[site].Store(true)
		return t.postOnce(ps, site, endpoint, in, out, false)
	}
	return err
}

func (t *HTTP) postOnce(ps *peerSet, site int, endpoint string, in, out any, bin bool) error {
	t.Messages.Add(1)
	body := getBuf()
	defer putBuf(body)
	contentType := "application/json"
	if bin {
		contentType = codec.ContentType
		b, err := codec.AppendMessage(body.AvailableBuffer(), in)
		if err != nil {
			return err
		}
		body.Write(b)
	} else if err := json.NewEncoder(body).Encode(in); err != nil {
		return err
	}
	req, err := http.NewRequest(http.MethodPost, ps.addrs[site]+"/v1/peer/"+endpoint, bytes.NewReader(body.Bytes()))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", contentType)
	if t.token != "" {
		req.Header.Set(PeerTokenHeader, t.token)
	}
	resp, err := t.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	reply := getBuf()
	defer putBuf(reply)
	if resp.StatusCode == http.StatusOK {
		if _, err := reply.ReadFrom(resp.Body); err != nil {
			return err
		}
		if resp.Header.Get("Content-Type") == codec.ContentType {
			return codec.DecodeMessage(reply.Bytes(), out)
		}
		return json.Unmarshal(reply.Bytes(), out)
	}
	if _, err := reply.ReadFrom(io.LimitReader(resp.Body, 16<<10)); err != nil {
		return err
	}
	var envelope wire.ErrorResponse
	if json.Unmarshal(reply.Bytes(), &envelope) == nil {
		switch envelope.Error.Code {
		case "busy":
			return ErrBusy
		case "site_gone":
			return ErrSiteGone
		}
	}
	return &peerStatusError{
		endpoint: endpoint, status: resp.StatusCode,
		body: string(bytes.TrimSpace(reply.Bytes())),
	}
}

var _ Transport = (*HTTP)(nil)

// NewPeerHandler serves the peer protocol over a node: the server half
// of the HTTP transport. The handler owns the full /v1/peer/* paths, so
// it can be mounted on any mux (homeo/httpapi merges it into the /v1
// surface) or serve standalone. exec runs each handler under the site
// runtime's execution right (e.g. via rtlive.Runtime.Locked); nil calls
// handlers directly, for nodes that synchronize themselves. A non-empty
// token makes every request prove the shared secret (PeerTokenHeader)
// before touching the node — these endpoints mutate site state, so set
// one whenever peers talk over anything but a trusted loopback.
func NewPeerHandler(node Node, exec func(func()), token string) http.Handler {
	if exec == nil {
		exec = func(fn func()) { fn() }
	}
	h := &peerHandler{node: node, exec: exec, token: token}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/peer/collect", h.collect)
	mux.HandleFunc("/v1/peer/install-state", h.installState)
	mux.HandleFunc("/v1/peer/install-treaties", h.installTreaties)
	mux.HandleFunc("/v1/peer/abort", h.abort)
	mux.HandleFunc("/v1/peer/rejoin", h.rejoin)
	mux.HandleFunc("/v1/peer/join", h.join)
	mux.HandleFunc("/v1/peer/drain", h.drain)
	mux.HandleFunc("/v1/peer/migrate", h.migrate)
	return mux
}

type peerHandler struct {
	node  Node
	exec  func(func())
	token string
}

// peerJSON writes a JSON response. The body is encoded into a pooled
// buffer first so an encode failure can still become a 500 instead of a
// half-written 200 with the status already on the wire.
func peerJSON(rw http.ResponseWriter, status int, v any) {
	buf := getBuf()
	defer putBuf(buf)
	if err := json.NewEncoder(buf).Encode(v); err != nil {
		http.Error(rw, `{"error":{"code":"internal","message":"response encoding failed"}}`,
			http.StatusInternalServerError)
		return
	}
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(status)
	// A short write here means the client hung up; there is no channel
	// left to report it on.
	_, _ = rw.Write(buf.Bytes())
}

// peerReply answers a successful handler call in the request's content
// type: binary when the request was binary, JSON otherwise. v must be a
// pointer to a wire message. Encode failures degrade to the JSON path,
// which can still report them.
func peerReply(rw http.ResponseWriter, bin bool, v any) {
	if !bin {
		peerJSON(rw, http.StatusOK, v)
		return
	}
	buf := getBuf()
	defer putBuf(buf)
	b, err := codec.AppendMessage(buf.AvailableBuffer(), v)
	if err != nil {
		peerError(rw, err)
		return
	}
	buf.Write(b)
	rw.Header().Set("Content-Type", codec.ContentType)
	rw.WriteHeader(http.StatusOK)
	_, _ = rw.Write(buf.Bytes())
}

// peerError answers a failed handler call. Errors are always JSON, in
// every negotiation mode, so the busy envelope stays recognizable to
// clients of any version.
func peerError(rw http.ResponseWriter, err error) {
	status, code := http.StatusInternalServerError, "internal"
	switch {
	case errors.Is(err, ErrBusy):
		status, code = http.StatusConflict, "busy"
	case errors.Is(err, ErrSiteGone):
		status, code = http.StatusGone, "site_gone"
	}
	peerJSON(rw, status, wire.ErrorResponse{Error: wire.Error{Code: code, Message: err.Error()}})
}

// decodePeer authenticates and decodes a peer request into v, branching
// on the content type: the binary codec when the client negotiated it,
// JSON otherwise. The returned bin flag tells the handler which encoding
// to answer in.
func (h *peerHandler) decodePeer(rw http.ResponseWriter, req *http.Request, v any) (bin, ok bool) {
	if req.Method != http.MethodPost {
		peerJSON(rw, http.StatusMethodNotAllowed, wire.ErrorResponse{Error: wire.Error{
			Code: "method_not_allowed", Message: "POST only"}})
		return false, false
	}
	if h.token != "" &&
		subtle.ConstantTimeCompare([]byte(req.Header.Get(PeerTokenHeader)), []byte(h.token)) != 1 {
		peerJSON(rw, http.StatusUnauthorized, wire.ErrorResponse{Error: wire.Error{
			Code: "unauthorized", Message: "missing or wrong peer token"}})
		return false, false
	}
	badRequest := func(err error) {
		peerJSON(rw, http.StatusBadRequest, wire.ErrorResponse{Error: wire.Error{
			Code: "bad_request", Message: err.Error()}})
	}
	if req.Header.Get("Content-Type") == codec.ContentType {
		buf := getBuf()
		defer putBuf(buf)
		if _, err := buf.ReadFrom(req.Body); err != nil {
			badRequest(err)
			return false, false
		}
		if err := codec.DecodeMessage(buf.Bytes(), v); err != nil {
			badRequest(err)
			return false, false
		}
		return true, true
	}
	if err := json.NewDecoder(req.Body).Decode(v); err != nil {
		badRequest(err)
		return false, false
	}
	return false, true
}

func (h *peerHandler) collect(rw http.ResponseWriter, req *http.Request) {
	var in wire.PeerCollect
	bin, ok := h.decodePeer(rw, req, &in)
	if !ok {
		return
	}
	var (
		rep StateReply
		err error
	)
	h.exec(func() { rep, err = h.node.CollectState(CollectFromWire(in)) })
	if err != nil {
		peerError(rw, err)
		return
	}
	peerReply(rw, bin, &wire.PeerState{Clock: rep.Clock, Values: dbToWire(rep.Values)})
}

func (h *peerHandler) installState(rw http.ResponseWriter, req *http.Request) {
	var in wire.PeerInstallState
	bin, ok := h.decodePeer(rw, req, &in)
	if !ok {
		return
	}
	var err error
	h.exec(func() { err = h.node.InstallState(InstallStateFromWire(in)) })
	if err != nil {
		peerError(rw, err)
		return
	}
	peerReply(rw, bin, &wire.PeerAck{Clock: in.Clock})
}

func (h *peerHandler) installTreaties(rw http.ResponseWriter, req *http.Request) {
	var in wire.PeerInstallTreaties
	bin, ok := h.decodePeer(rw, req, &in)
	if !ok {
		return
	}
	m, err := InstallTreatiesFromWire(in)
	if err != nil {
		peerError(rw, err)
		return
	}
	h.exec(func() { err = h.node.InstallTreaties(m) })
	if err != nil {
		peerError(rw, err)
		return
	}
	peerReply(rw, bin, &wire.PeerAck{Clock: in.Clock})
}

func (h *peerHandler) abort(rw http.ResponseWriter, req *http.Request) {
	var in wire.PeerAbort
	bin, ok := h.decodePeer(rw, req, &in)
	if !ok {
		return
	}
	var err error
	h.exec(func() {
		err = h.node.AbortRound(AbortRound{
			Round: RoundID{Site: in.From, Seq: in.Round}, Clock: in.Clock})
	})
	if err != nil {
		peerError(rw, err)
		return
	}
	peerReply(rw, bin, &wire.PeerAck{Clock: in.Clock})
}

func (h *peerHandler) rejoin(rw http.ResponseWriter, req *http.Request) {
	var in wire.PeerRejoin
	bin, ok := h.decodePeer(rw, req, &in)
	if !ok {
		return
	}
	var (
		rep RejoinReply
		err error
	)
	h.exec(func() { rep, err = h.node.Rejoin(RejoinFromWire(in)) })
	if err != nil {
		peerError(rw, err)
		return
	}
	w := RejoinReplyToWire(rep)
	peerReply(rw, bin, &w)
}

func (h *peerHandler) join(rw http.ResponseWriter, req *http.Request) {
	var in wire.PeerJoin
	bin, ok := h.decodePeer(rw, req, &in)
	if !ok {
		return
	}
	var (
		rep JoinReply
		err error
	)
	h.exec(func() { rep, err = h.node.JoinSite(JoinFromWire(in)) })
	if err != nil {
		peerError(rw, err)
		return
	}
	w := JoinReplyToWire(rep)
	peerReply(rw, bin, &w)
}

func (h *peerHandler) drain(rw http.ResponseWriter, req *http.Request) {
	var in wire.PeerDrain
	bin, ok := h.decodePeer(rw, req, &in)
	if !ok {
		return
	}
	var (
		rep DrainReply
		err error
	)
	h.exec(func() { rep, err = h.node.DrainSite(DrainFromWire(in)) })
	if err != nil {
		peerError(rw, err)
		return
	}
	peerReply(rw, bin, &wire.PeerDrainReply{Clock: rep.Clock, Epoch: rep.Epoch})
}

func (h *peerHandler) migrate(rw http.ResponseWriter, req *http.Request) {
	var in wire.PeerMigrate
	bin, ok := h.decodePeer(rw, req, &in)
	if !ok {
		return
	}
	var (
		rep MigrateReply
		err error
	)
	h.exec(func() { rep, err = h.node.MigrateUnit(MigrateFromWire(in)) })
	if err != nil {
		peerError(rw, err)
		return
	}
	peerReply(rw, bin, &wire.PeerMigrateReply{Clock: rep.Clock, Epoch: rep.Epoch})
}

// --- wire codecs ---------------------------------------------------------

func dbToWire(d lang.Database) map[string]int64 {
	out := make(map[string]int64, len(d))
	for obj, v := range d {
		out[string(obj)] = v
	}
	return out
}

func dbFromWire(m map[string]int64) lang.Database {
	out := make(lang.Database, len(m))
	for name, v := range m {
		out[lang.ObjID(name)] = v
	}
	return out
}

func objsToWire(objs []lang.ObjID) []string {
	out := make([]string, len(objs))
	for i, o := range objs {
		out[i] = string(o)
	}
	return out
}

func objsFromWire(names []string) []lang.ObjID {
	out := make([]lang.ObjID, len(names))
	for i, n := range names {
		out[i] = lang.ObjID(n)
	}
	return out
}

// CollectToWire encodes a CollectState message.
func CollectToWire(m CollectState) wire.PeerCollect {
	return wire.PeerCollect{
		From: m.Round.Site, Round: m.Round.Seq, Clock: m.Clock,
		Units: m.Units, Objs: objsToWire(m.Objs),
	}
}

// CollectFromWire decodes a CollectState message.
func CollectFromWire(w wire.PeerCollect) CollectState {
	return CollectState{
		Round: RoundID{Site: w.From, Seq: w.Round}, Clock: w.Clock,
		Units: w.Units, Objs: objsFromWire(w.Objs),
	}
}

// InstallStateToWire encodes an InstallState message.
func InstallStateToWire(m InstallState) wire.PeerInstallState {
	out := wire.PeerInstallState{
		From: m.Round.Site, Round: m.Round.Seq, Clock: m.Clock,
		Objs: objsToWire(m.Objs), Folded: dbToWire(m.Folded),
	}
	if m.Winner != nil {
		out.Winner = &wire.PeerWinner{
			Class: m.Winner.Class, Args: m.Winner.Args, Site: m.Winner.Site,
			Units: m.Winner.Units, Log: m.Winner.Log,
		}
	}
	return out
}

// InstallStateFromWire decodes an InstallState message.
func InstallStateFromWire(w wire.PeerInstallState) InstallState {
	out := InstallState{
		Round: RoundID{Site: w.From, Seq: w.Round}, Clock: w.Clock,
		Objs: objsFromWire(w.Objs), Folded: dbFromWire(w.Folded),
	}
	if w.Winner != nil {
		out.Winner = &WinnerCommit{
			Class: w.Winner.Class, Args: w.Winner.Args, Site: w.Winner.Site,
			Units: w.Winner.Units, Log: w.Winner.Log,
		}
	}
	return out
}

// RejoinToWire encodes a Rejoin handshake.
func RejoinToWire(m Rejoin) wire.PeerRejoin {
	out := wire.PeerRejoin{Site: m.Site, Clock: m.Clock}
	for unit, v := range m.Versions {
		out.Units = append(out.Units, wire.PeerUnitVersion{Unit: unit, Version: v})
	}
	sort.Slice(out.Units, func(i, j int) bool { return out.Units[i].Unit < out.Units[j].Unit })
	return out
}

// RejoinFromWire decodes a Rejoin handshake.
func RejoinFromWire(w wire.PeerRejoin) Rejoin {
	out := Rejoin{Site: w.Site, Clock: w.Clock, Versions: make(map[int]int64, len(w.Units))}
	for _, uv := range w.Units {
		out.Versions[uv.Unit] = uv.Version
	}
	return out
}

// RejoinReplyToWire encodes a Rejoin reply.
func RejoinReplyToWire(m RejoinReply) wire.PeerRejoinReply {
	out := wire.PeerRejoinReply{Clock: m.Clock}
	for _, ru := range m.Units {
		out.Units = append(out.Units, wire.PeerRejoinUnit{
			Unit: ru.Unit, Version: ru.Version, Force: ru.Force, Base: dbToWire(ru.Base),
		})
	}
	return out
}

// RejoinReplyFromWire decodes a Rejoin reply.
func RejoinReplyFromWire(w wire.PeerRejoinReply) RejoinReply {
	out := RejoinReply{Clock: w.Clock}
	for _, ru := range w.Units {
		out.Units = append(out.Units, RejoinUnit{
			Unit: ru.Unit, Version: ru.Version, Force: ru.Force, Base: dbFromWire(ru.Base),
		})
	}
	return out
}

// JoinToWire encodes a JoinSite handshake phase.
func JoinToWire(m JoinSite) wire.PeerJoin {
	return wire.PeerJoin{
		Site: m.Site, Round: m.Round.Seq, Clock: m.Clock,
		Addr: m.Addr, Phase: m.Phase,
	}
}

// JoinFromWire decodes a JoinSite handshake phase. The round is keyed by
// the joining site (it coordinates its own admission).
func JoinFromWire(w wire.PeerJoin) JoinSite {
	return JoinSite{
		Round: RoundID{Site: w.Site, Seq: w.Round}, Clock: w.Clock,
		Site: w.Site, Addr: w.Addr, Phase: w.Phase,
	}
}

// JoinReplyToWire encodes a JoinSite reply.
func JoinReplyToWire(m JoinReply) wire.PeerJoinReply {
	out := wire.PeerJoinReply{Clock: m.Clock, Epoch: m.Epoch}
	for _, u := range m.Units {
		out.Units = append(out.Units, wire.PeerJoinUnit{
			Unit: u.Unit, Version: u.Version, Base: dbToWire(u.Base),
		})
	}
	return out
}

// JoinReplyFromWire decodes a JoinSite reply.
func JoinReplyFromWire(w wire.PeerJoinReply) JoinReply {
	out := JoinReply{Clock: w.Clock, Epoch: w.Epoch}
	for _, u := range w.Units {
		out.Units = append(out.Units, JoinUnit{
			Unit: u.Unit, Version: u.Version, Base: dbFromWire(u.Base),
		})
	}
	return out
}

// DrainToWire encodes a DrainSite announcement.
func DrainToWire(m DrainSite) wire.PeerDrain {
	return wire.PeerDrain{Site: m.Site, Clock: m.Clock}
}

// DrainFromWire decodes a DrainSite announcement.
func DrainFromWire(w wire.PeerDrain) DrainSite {
	return DrainSite{Site: w.Site, Clock: w.Clock}
}

// MigrateToWire encodes a MigrateUnit install.
func MigrateToWire(m MigrateUnit) wire.PeerMigrate {
	return wire.PeerMigrate{
		From: m.Round.Site, Round: m.Round.Seq, Clock: m.Clock,
		Unit: m.Unit, To: m.To,
		Objs: objsToWire(m.Objs), Folded: dbToWire(m.Folded),
	}
}

// MigrateFromWire decodes a MigrateUnit install.
func MigrateFromWire(w wire.PeerMigrate) MigrateUnit {
	return MigrateUnit{
		Round: RoundID{Site: w.From, Seq: w.Round}, Clock: w.Clock,
		Unit: w.Unit, To: w.To,
		Objs: objsFromWire(w.Objs), Folded: dbFromWire(w.Folded),
	}
}

func opToWire(op lia.RelOp) string {
	switch op {
	case lia.LE:
		return "<="
	case lia.LT:
		return "<"
	default:
		return "=="
	}
}

func opFromWire(s string) (lia.RelOp, error) {
	switch s {
	case "<=":
		return lia.LE, nil
	case "<":
		return lia.LT, nil
	case "==":
		return lia.EQ, nil
	}
	return 0, fmt.Errorf("fabric: unknown constraint op %q", s)
}

// localToWire encodes a local treaty. Local treaties are fully
// instantiated (configuration values folded into constants), so every
// variable must be a database object; anything else is a protocol error
// caught here rather than at the receiving site.
func localToWire(l treaty.Local) ([]wire.PeerConstraint, error) {
	out := make([]wire.PeerConstraint, 0, len(l.Constraints))
	for _, c := range l.Constraints {
		pc := wire.PeerConstraint{Const: c.Term.Const, Op: opToWire(c.Op)}
		if len(c.Term.Coeffs) > 0 {
			pc.Coeffs = make(map[string]int64, len(c.Term.Coeffs))
		}
		for v, coeff := range c.Term.Coeffs {
			if v.Kind != logic.ObjVar {
				return nil, fmt.Errorf("fabric: treaty constraint mentions non-object variable %s", v)
			}
			pc.Coeffs[v.Name] = coeff
		}
		out = append(out, pc)
	}
	return out, nil
}

// ConstraintsToWire encodes a local treaty's constraint list in the peer
// protocol's wire form. Exported for the WAL's treaty records, which
// persist the same encoding.
func ConstraintsToWire(l treaty.Local) ([]wire.PeerConstraint, error) { return localToWire(l) }

// ConstraintsFromWire decodes a wire constraint list back into a local
// treaty for the given site (the inverse of ConstraintsToWire).
func ConstraintsFromWire(site int, cs []wire.PeerConstraint) (treaty.Local, error) {
	return localFromWire(site, cs)
}

func localFromWire(site int, cs []wire.PeerConstraint) (treaty.Local, error) {
	out := treaty.Local{Site: site}
	for _, pc := range cs {
		term := lia.NewTerm()
		term.Const = pc.Const
		for name, coeff := range pc.Coeffs {
			term.AddVar(logic.Obj(lang.ObjID(name)), coeff)
		}
		op, err := opFromWire(pc.Op)
		if err != nil {
			return treaty.Local{}, err
		}
		out.Constraints = append(out.Constraints, lia.Constraint{Term: term, Op: op})
	}
	return out, nil
}

// InstallTreatiesToWire encodes an InstallTreaties message.
func InstallTreatiesToWire(m InstallTreaties) (wire.PeerInstallTreaties, error) {
	out := wire.PeerInstallTreaties{
		From: m.Round.Site, Round: m.Round.Seq, Clock: m.Clock, Site: m.Site,
	}
	for _, ut := range m.Units {
		cs, err := localToWire(ut.Local)
		if err != nil {
			return out, fmt.Errorf("unit %d: %w", ut.Unit, err)
		}
		out.Units = append(out.Units, wire.PeerUnitTreaty{
			Unit: ut.Unit, Version: ut.Version, Constraints: cs,
		})
	}
	return out, nil
}

// InstallTreatiesFromWire decodes an InstallTreaties message.
func InstallTreatiesFromWire(w wire.PeerInstallTreaties) (InstallTreaties, error) {
	out := InstallTreaties{
		Round: RoundID{Site: w.From, Seq: w.Round}, Clock: w.Clock, Site: w.Site,
	}
	for _, ut := range w.Units {
		l, err := localFromWire(w.Site, ut.Constraints)
		if err != nil {
			return out, fmt.Errorf("unit %d: %w", ut.Unit, err)
		}
		out.Units = append(out.Units, UnitTreaty{Unit: ut.Unit, Version: ut.Version, Local: l})
	}
	return out, nil
}
