// Package analysis is a dependency-free miniature of the
// golang.org/x/tools/go/analysis framework: an Analyzer inspects one
// type-checked package through a Pass and reports Diagnostics. The repo
// cannot vendor x/tools (the build is fully offline), so homeovet — the
// invariant-checker suite under internal/analysis/... and cmd/homeovet —
// carries this shim instead. The API mirrors the upstream shape closely
// enough that the analyzers would port to the real framework by changing
// an import path.
//
// # Directives
//
// The analyzers are configured and suppressed through //homeo: comment
// directives (written like //go: directives — no space after the
// slashes). The catalogue lives in docs/DEVELOPMENT.md; this package
// provides the shared scanner. A directive attaches to a function when
// it appears in the function's doc comment, and to a statement when it
// appears on the statement's line or on the line immediately above it.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one invariant checker: a name (used in diagnostics
// and docs), a short Doc string, and the Run function applied to each
// package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Pass is one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report receives each diagnostic. The drivers set it; analyzers
	// call Reportf.
	Report func(Diagnostic)

	directives map[string][]Directive // filename -> directives, lazily built
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...), Analyzer: p.Analyzer.Name})
}

// Directive is one //homeo: comment: its name (the word after the
// colon), the remainder of the line (arguments / rationale), and where
// it sits.
type Directive struct {
	Name string // e.g. "hotpath", "leak", "nondet"
	Args string // rest of the comment line, space-trimmed
	Pos  token.Pos
	Line int // line the comment sits on
}

// ParseDirective splits one comment's text into a directive, reporting
// ok=false for ordinary comments.
func ParseDirective(c *ast.Comment) (Directive, bool) {
	text, found := strings.CutPrefix(c.Text, "//homeo:")
	if !found {
		return Directive{}, false
	}
	name, args, _ := strings.Cut(text, " ")
	if name == "" {
		return Directive{}, false
	}
	return Directive{Name: name, Args: strings.TrimSpace(args), Pos: c.Pos()}, true
}

// fileDirectives scans (and memoizes) every //homeo: directive in the
// file holding pos.
func (p *Pass) fileDirectives(file *ast.File) []Directive {
	if p.directives == nil {
		p.directives = make(map[string][]Directive)
	}
	name := p.Fset.Position(file.Pos()).Filename
	if ds, ok := p.directives[name]; ok {
		return ds
	}
	var ds []Directive
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if d, ok := ParseDirective(c); ok {
				d.Line = p.Fset.Position(c.Pos()).Line
				ds = append(ds, d)
			}
		}
	}
	p.directives[name] = ds
	return ds
}

// File returns the *ast.File containing pos, or nil.
func (p *Pass) File(pos token.Pos) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	return nil
}

// DirectiveAt reports the named directive attached to the statement at
// pos: on the same line, or alone on the line immediately above.
func (p *Pass) DirectiveAt(pos token.Pos, name string) (Directive, bool) {
	file := p.File(pos)
	if file == nil {
		return Directive{}, false
	}
	line := p.Fset.Position(pos).Line
	for _, d := range p.fileDirectives(file) {
		if d.Name == name && (d.Line == line || d.Line == line-1) {
			return d, true
		}
	}
	return Directive{}, false
}

// FuncDirective reports the named directive in fn's doc comment.
func FuncDirective(fn *ast.FuncDecl, name string) (Directive, bool) {
	if fn.Doc == nil {
		return Directive{}, false
	}
	for _, c := range fn.Doc.List {
		if d, ok := ParseDirective(c); ok && d.Name == name {
			return d, true
		}
	}
	return Directive{}, false
}

// DeclDirective reports the named directive attached to a GenDecl or one
// of its specs (doc comment or trailing line comment).
func DeclDirective(decl *ast.GenDecl, name string) (Directive, bool) {
	groups := []*ast.CommentGroup{decl.Doc}
	for _, spec := range decl.Specs {
		switch s := spec.(type) {
		case *ast.ValueSpec:
			groups = append(groups, s.Doc, s.Comment)
		case *ast.TypeSpec:
			groups = append(groups, s.Doc, s.Comment)
		}
	}
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			if d, ok := ParseDirective(c); ok && d.Name == name {
				return d, true
			}
		}
	}
	return Directive{}, false
}

// PkgMatches reports whether the package path is, or ends with, one of
// the given suffixes ("internal/sim" matches both "internal/sim" in
// testdata and "repro/internal/sim" in the module).
func PkgMatches(pkgPath string, suffixes ...string) bool {
	for _, s := range suffixes {
		if pkgPath == s || strings.HasSuffix(pkgPath, "/"+s) {
			return true
		}
	}
	return false
}

// InTestFile reports whether pos sits in a *_test.go file; the vet
// driver analyzes test-augmented packages, but the invariants govern
// production code only.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// CalleeFunc resolves a call expression to the declared *types.Func it
// invokes (package function or method), or nil for calls through
// function values, built-ins, and conversions.
func (p *Pass) CalleeFunc(call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := p.TypesInfo.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel := p.TypesInfo.Selections[fun]; sel != nil {
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		fn, _ := p.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// IsPkgFunc reports whether the call invokes the package-level function
// pkgPath.name (e.g. "time".Now).
func (p *Pass) IsPkgFunc(call *ast.CallExpr, pkgPath, name string) bool {
	fn := p.CalleeFunc(call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	if fn.Name() != name || fn.Pkg().Path() != pkgPath {
		return false
	}
	sig, _ := fn.Type().(*types.Signature)
	return sig == nil || sig.Recv() == nil
}

// SortDiagnostics orders diagnostics by position for stable output.
func SortDiagnostics(fset *token.FileSet, ds []Diagnostic) {
	sort.SliceStable(ds, func(i, j int) bool {
		pi, pj := fset.Position(ds[i].Pos), fset.Position(ds[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return pi.Column < pj.Column
	})
}
