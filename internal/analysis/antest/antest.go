// Package antest is the analysistest-style harness for the homeovet
// analyzers. A test names packages under the analyzer's testdata/src
// tree; antest parses and type-checks them hermetically (imports resolve
// to sibling testdata packages, so testdata carries tiny stand-ins for
// the stdlib packages the analyzers match by path — "time", "sync",
// "fmt", "math/rand"), runs the analyzer, and compares its diagnostics
// against // want "regexp" comments: every diagnostic must be matched by
// a want on its line, and every want must be matched by a diagnostic.
package antest

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// loader resolves testdata import paths to type-checked packages.
type loader struct {
	t    *testing.T
	root string // testdata/src
	fset *token.FileSet
	pkgs map[string]*pkg
}

type pkg struct {
	path  string
	files []*ast.File
	tpkg  *types.Package
	info  *types.Info
}

// Run loads each named package from testdata/src and checks the
// analyzer's diagnostics against its want comments.
func Run(t *testing.T, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	ld := &loader{t: t, root: root, fset: token.NewFileSet(), pkgs: make(map[string]*pkg)}
	for _, path := range pkgPaths {
		path := path
		t.Run(strings.ReplaceAll(path, "/", "_"), func(t *testing.T) {
			p := ld.load(t, path)
			var diags []analysis.Diagnostic
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      ld.fset,
				Files:     p.files,
				Pkg:       p.tpkg,
				TypesInfo: p.info,
				Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
			}
			if err := a.Run(pass); err != nil {
				t.Fatalf("%s: analyzer error: %v", path, err)
			}
			analysis.SortDiagnostics(ld.fset, diags)
			check(t, ld.fset, p, diags)
		})
	}
}

// load parses and type-checks testdata/src/<path>, memoized so shared
// fake stdlib packages check once.
func (ld *loader) load(t *testing.T, path string) *pkg {
	t.Helper()
	if p, ok := ld.pkgs[path]; ok {
		return p
	}
	dir := filepath.Join(ld.root, filepath.FromSlash(path))
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("load %s: %v", path, err)
	}
	p := &pkg{path: path}
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse %s: %v", e.Name(), err)
		}
		p.files = append(p.files, f)
	}
	if len(p.files) == 0 {
		t.Fatalf("load %s: no Go files in %s", path, dir)
	}
	p.info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: (*tdImporter)(ld)}
	p.tpkg, err = conf.Check(path, ld.fset, p.files, p.info)
	if err != nil {
		t.Fatalf("typecheck %s: %v", path, err)
	}
	ld.pkgs[path] = p
	return p
}

// tdImporter resolves imports to sibling testdata packages, falling back
// to source-importing the real stdlib only if no fake exists.
type tdImporter loader

// Import resolves one import path for the type checker.
func (im *tdImporter) Import(path string) (*types.Package, error) {
	ld := (*loader)(im)
	if _, err := os.Stat(filepath.Join(ld.root, filepath.FromSlash(path))); err == nil {
		return ld.load(ld.t, path).tpkg, nil
	}
	return importer.ForCompiler(ld.fset, "source", nil).Import(path)
}

// want is one expectation: a diagnostic whose message matches re on the
// given file line.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	hit  bool
}

var wantRE = regexp.MustCompile("// want (.*)$")

func check(t *testing.T, fset *token.FileSet, p *pkg, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*want
	for _, f := range p.files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, raw := range splitQuoted(t, pos.String(), m[1]) {
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, raw, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re, raw: raw})
				}
			}
		}
	}
	sort.SliceStable(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.raw)
		}
	}
}

// splitQuoted parses the space-separated regexps of a want comment; each
// is double- or backtick-quoted.
func splitQuoted(t *testing.T, pos, s string) []string {
	t.Helper()
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		quote := s[0]
		if quote != '"' && quote != '`' {
			t.Fatalf("%s: malformed want clause %q (expect space-separated quoted regexps)", pos, s)
		}
		end := 1
		for end < len(s) && (s[end] != quote || (quote == '"' && s[end-1] == '\\')) {
			end++
		}
		if end == len(s) {
			t.Fatalf("%s: unterminated quote in want clause %q", pos, s)
		}
		raw, err := strconv.Unquote(s[:end+1])
		if err != nil {
			t.Fatalf("%s: bad quoted regexp %q: %v", pos, s[:end+1], err)
		}
		out = append(out, raw)
		s = strings.TrimSpace(s[end+1:])
	}
	return out
}
