// Package poolhygiene checks that pooled objects go back to their pools.
// PR 7's free lists (store transactions, lock requests, exec frames,
// pending submissions, codec buffers) only stay zero-allocation if every
// checkout is matched by a release on the paths that finish with the
// object — and the two deliberate leak-to-GC cases (timeout-armed lock
// requests, abandoned pending submissions) stay deliberate, visible, and
// reviewed.
//
// Checkout/release pairs are declared where the pool lives:
//
//	//homeo:checkout <pair>   on the Get/Begin-style function
//	//homeo:release <pair>    on the Put/Recycle-style function
//
// (Both sides of a pair share the same <pair> token.) Two pairs are
// built in, because their checkout side is declared outside the package
// being analyzed where directives are invisible: (*sync.Pool).Get/Put
// and internal/store's Store.Begin/Recycle.
//
// Within one function, a checked-out value must be released (passed to
// or the receiver of the matching release, defers included), returned,
// stored away, sent, or handed to another function — local ownership
// must visibly end somewhere. A checkout whose result is discarded, or
// used purely locally with no release, is flagged. A deliberate
// leak-to-GC carries //homeo:leak <reason> on the checkout line.
//
// The check is intraprocedural by design: it catches the classic
// "checked out, used, forgot to put back" without whole-program escape
// analysis, and the annotations double as documentation of ownership
// transfer points.
package poolhygiene

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the pool checkout/release checker.
var Analyzer = &analysis.Analyzer{
	Name: "poolhygiene",
	Doc:  "every pool checkout (//homeo:checkout) is released (//homeo:release), returned, or transferred on all paths, with //homeo:leak marking deliberate leaks",
	Run:  run,
}

// builtinPair returns the pair token for cross-package checkout/release
// functions the analyzer knows natively, or "".
func builtinPair(fn *types.Func, wantCheckout bool) string {
	if fn.Pkg() == nil {
		return ""
	}
	path, name := fn.Pkg().Path(), fn.Name()
	switch {
	case path == "sync" && ((wantCheckout && name == "Get") || (!wantCheckout && name == "Put")):
		if recvNamed(fn) == "Pool" {
			return "sync.Pool"
		}
	case analysis.PkgMatches(path, "internal/store") && ((wantCheckout && name == "Begin") || (!wantCheckout && name == "Recycle")):
		if recvNamed(fn) == "Store" {
			return "store.txn"
		}
	}
	return ""
}

func recvNamed(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

func run(pass *analysis.Pass) error {
	c := &checker{
		pass:      pass,
		checkouts: map[*types.Func]string{},
		releases:  map[*types.Func]string{},
	}
	// Collect the pairs declared in this package.
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			if d, ok := analysis.FuncDirective(fd, "checkout"); ok {
				c.checkouts[fn] = pairToken(d)
			}
			if d, ok := analysis.FuncDirective(fd, "release"); ok {
				c.releases[fn] = pairToken(d)
			}
		}
	}
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				c.checkFunc(fd)
			}
		}
	}
	return nil
}

func pairToken(d analysis.Directive) string {
	tok, _, _ := strings.Cut(d.Args, " ")
	if tok == "" {
		tok = "pool"
	}
	return tok
}

type checker struct {
	pass      *analysis.Pass
	checkouts map[*types.Func]string
	releases  map[*types.Func]string
}

// pairOf classifies a call as a checkout or release and returns its pair
// token.
func (c *checker) pairOf(call *ast.CallExpr, wantCheckout bool) (string, bool) {
	fn := c.pass.CalleeFunc(call)
	if fn == nil {
		return "", false
	}
	m := c.releases
	if wantCheckout {
		m = c.checkouts
	}
	if tok, ok := m[fn]; ok {
		return tok, true
	}
	if tok := builtinPair(fn, wantCheckout); tok != "" {
		return tok, true
	}
	// A release function annotated in this package may be called as a
	// method whose declaration we collected; calls through interfaces
	// are not resolved. That is fine: interface-typed pools do not
	// exist in this codebase.
	return "", false
}

// checkFunc inspects one function body for checkout calls and verifies
// each has a visible end of ownership.
func (c *checker) checkFunc(fd *ast.FuncDecl) {
	// Skip the release functions themselves: Recycle's append to the
	// free list is the release.
	if fn, ok := c.pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
		if _, isRelease := c.releases[fn]; isRelease {
			return
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := checkoutCall(rhs)
				if !ok {
					continue
				}
				tok, ok := c.pairOf(call, true)
				if !ok {
					continue
				}
				if _, ok := c.pass.DirectiveAt(call.Pos(), "leak"); ok {
					continue
				}
				// Identify the variable receiving the checkout.
				var name string
				if len(n.Lhs) == len(n.Rhs) {
					if id, ok := n.Lhs[i].(*ast.Ident); ok && id.Name != "_" {
						name = id.Name
					}
				}
				if name == "" {
					c.pass.Reportf(call.Pos(), "pool checkout (%s) result discarded; release it, or annotate //homeo:leak <why>", tok)
					continue
				}
				if !c.ownershipEnds(fd, name, call, tok) {
					c.pass.Reportf(call.Pos(), "pool checkout %s (%s) is never released, returned, or transferred in %s; call the matching release on every completion path or annotate //homeo:leak <why>", name, tok, fd.Name.Name)
				}
			}
		case *ast.ExprStmt:
			if call, ok := checkoutCall(n.X); ok {
				if tok, ok := c.pairOf(call, true); ok {
					if _, leak := c.pass.DirectiveAt(call.Pos(), "leak"); !leak {
						c.pass.Reportf(call.Pos(), "pool checkout (%s) result discarded; release it, or annotate //homeo:leak <why>", tok)
					}
				}
			}
		}
		return true
	})
}

// checkoutCall unwraps parens and a trailing type assertion
// (pool.Get().(*T)) down to the underlying call.
func checkoutCall(e ast.Expr) (*ast.CallExpr, bool) {
	e = ast.Unparen(e)
	if ta, ok := e.(*ast.TypeAssertExpr); ok {
		e = ast.Unparen(ta.X)
	}
	call, ok := e.(*ast.CallExpr)
	return call, ok
}

// ownershipEnds reports whether the named checked-out variable visibly
// ends its local ownership: released through the matching pair,
// returned, stored into a longer-lived structure, sent on a channel, or
// passed to another call.
func (c *checker) ownershipEnds(fd *ast.FuncDecl, name string, checkout *ast.CallExpr, tok string) bool {
	ends := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if ends {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if n == checkout {
				return true
			}
			// Release via receiver: sub.release(); via argument:
			// pool.Put(sub), putFrame(f).
			if rtok, ok := c.pairOf(n, false); ok && rtok == tok {
				if callUsesIdent(n, name) {
					ends = true
					return false
				}
			}
			// Any other call taking the value is an ownership transfer.
			for _, arg := range n.Args {
				if usesIdent(arg, name) {
					ends = true
					return false
				}
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if usesIdent(r, name) {
					ends = true
					return false
				}
			}
		case *ast.SendStmt:
			if usesIdent(n.Value, name) {
				ends = true
				return false
			}
		case *ast.AssignStmt:
			// Storing the value anywhere (field, slice append, map
			// entry) transfers ownership to the stored-into structure.
			for i, rhs := range n.Rhs {
				if rhs == ast.Expr(checkout) {
					continue
				}
				if usesIdent(rhs, name) {
					// A plain copy (x := v, _ = v) does not end
					// ownership; storing into a field, index, or
					// composite does.
					if i < len(n.Lhs) && len(n.Lhs) == len(n.Rhs) {
						_, lhsIdent := n.Lhs[i].(*ast.Ident)
						_, rhsPlain := ast.Unparen(rhs).(*ast.Ident)
						if lhsIdent && rhsPlain {
							continue
						}
					}
					ends = true
					return false
				}
			}
		}
		return true
	})
	return ends
}

// callUsesIdent reports whether the call's receiver or arguments mention
// the identifier.
func callUsesIdent(call *ast.CallExpr, name string) bool {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && usesIdent(sel.X, name) {
		return true
	}
	for _, a := range call.Args {
		if usesIdent(a, name) {
			return true
		}
	}
	return false
}

func usesIdent(e ast.Expr, name string) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			found = true
		}
		return !found
	})
	return found
}
