// Package consumer exercises the built-in cross-package
// store.Begin/Recycle pair, whose directives live out of sight.
package consumer

import "internal/store"

func forgotten(s *store.Store) {
	t := s.Begin() // want `pool checkout t \(store.txn\) is never released, returned, or transferred in forgotten`
	_ = t
}

func roundTrip(s *store.Store) {
	t := s.Begin()
	s.Recycle(t)
}
