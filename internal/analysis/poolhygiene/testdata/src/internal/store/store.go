// Package store is a hermetic stand-in for internal/store's pooled
// transactions.
package store

// Txn is a pooled transaction.
type Txn struct{}

// Store owns the free list.
type Store struct {
	free []*Txn
}

// Begin checks a transaction out of the free list.
func (s *Store) Begin() *Txn { return &Txn{} }

// Recycle returns a finished transaction to the free list.
func (s *Store) Recycle(t *Txn) { s.free = append(s.free, t) }
