// Package pools exercises directive-declared checkout/release pairs and
// the built-in sync.Pool pair.
package pools

import "sync"

type frame struct{ used bool }

type sys struct {
	frames []*frame
	pool   sync.Pool
	cur    *frame
}

// getFrame checks a frame out of the free list.
//
//homeo:checkout frame
func (s *sys) getFrame() *frame {
	if n := len(s.frames); n > 0 {
		f := s.frames[n-1]
		s.frames = s.frames[:n-1]
		return f
	}
	return &frame{}
}

// putFrame returns a frame to the free list.
//
//homeo:release frame
func (s *sys) putFrame(f *frame) {
	f.used = false
	s.frames = append(s.frames, f)
}

func (s *sys) releasedViaDefer() {
	f := s.getFrame()
	defer s.putFrame(f)
	f.used = true
}

func (s *sys) forgotten() {
	f := s.getFrame() // want `pool checkout f \(frame\) is never released, returned, or transferred in forgotten`
	f.used = true
}

func (s *sys) discarded() {
	s.getFrame() // want `pool checkout \(frame\) result discarded`
}

func (s *sys) deliberateLeak() {
	f := s.getFrame() //homeo:leak abandoned on the timeout path, GC reclaims
	f.used = true
}

func (s *sys) returned() *frame {
	f := s.getFrame()
	return f
}

func (s *sys) stored() {
	f := s.getFrame()
	s.cur = f
}

func (s *sys) poolForgotten() {
	v := s.pool.Get() // want `pool checkout v \(sync.Pool\) is never released, returned, or transferred in poolForgotten`
	_ = v
}

func (s *sys) poolRoundTrip() {
	v := s.pool.Get()
	s.pool.Put(v)
}

type item struct{ n int }

func (s *sys) typedForgotten() {
	v := s.pool.Get().(*item) // want `pool checkout v \(sync.Pool\) is never released, returned, or transferred in typedForgotten`
	v.n++
}

func (s *sys) typedRoundTrip() {
	v := s.pool.Get().(*item)
	v.n++
	s.pool.Put(v)
}
