// Package sync is a hermetic stand-in for the stdlib package.
package sync

// Pool is a fake sync.Pool.
type Pool struct {
	// New fills an empty pool.
	New func() any
}

// Get checks an object out.
func (p *Pool) Get() any { return p.New() }

// Put returns an object.
func (p *Pool) Put(x any) {}
