package poolhygiene_test

import (
	"testing"

	"repro/internal/analysis/antest"
	"repro/internal/analysis/poolhygiene"
)

func TestPoolhygiene(t *testing.T) {
	antest.Run(t, poolhygiene.Analyzer, "pools", "consumer")
}
