// Package determinism enforces the repo's replayability contract: the
// protocol core and everything whose bytes land in golden reports,
// treaty generation, or the peer/WAL codec must be a pure function of
// its seeds. Two package sets are checked (suffix-matched so the
// analyzer is testable under antest):
//
//   - Strict packages (StrictPkgs: internal/sim, internal/homeostasis,
//     internal/treaty, internal/fabric/codec, internal/experiments) may
//     not touch wall-clock APIs (time.Now/Since/Until and the timer
//     constructors) or the global math/rand stream (package-level
//     functions share an unseeded source; seeded rand.New(rand.NewSource)
//     streams are fine), and may not range over maps — map iteration
//     order would leak into report bytes and treaty layouts — unless the
//     loop only collects keys/values that are sorted by the statement
//     immediately following it, or carries a reviewed //homeo:nondet
//     directive stating why order cannot escape.
//
//   - Clock packages (ClockPkgs: internal/rtlive, homeo, homeo/client —
//     the wall-clock runtimes) may read the clock through exactly one
//     //homeo:wallclock-annotated declaration per package; every other
//     code path takes the injected clock, so tests and future analyses
//     can substitute it. Timers and sleeps are their business.
package determinism

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// StrictPkgs are the package path suffixes under the full determinism
// contract.
var StrictPkgs = []string{
	"internal/sim",
	"internal/homeostasis",
	"internal/treaty",
	"internal/fabric/codec",
	"internal/experiments",
}

// ClockPkgs are the wall-clock runtime packages limited to a single
// annotated clock construction site.
var ClockPkgs = []string{
	"internal/rtlive",
	"homeo",
	"homeo/client",
}

// Analyzer is the determinism checker.
var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc:  "forbid wall-clock reads, global math/rand, and unsorted map iteration in replay-critical packages",
	Run:  run,
}

// wallFuncs read the wall clock; forbidden in strict packages and
// allowed only at the //homeo:wallclock site in clock packages.
var wallFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// timerFuncs are the further time APIs forbidden in strict packages.
var timerFuncs = map[string]bool{
	"Sleep": true, "After": true, "Tick": true,
	"NewTimer": true, "NewTicker": true, "AfterFunc": true,
}

// randConstructors are the seeded math/rand entry points strict packages
// may use; every other package-level rand function draws from the global
// stream.
var randConstructors = map[string]bool{"New": true, "NewSource": true, "NewZipf": true}

func run(pass *analysis.Pass) error {
	strict := analysis.PkgMatches(pass.Pkg.Path(), StrictPkgs...)
	clock := analysis.PkgMatches(pass.Pkg.Path(), ClockPkgs...)
	if !strict && !clock {
		return nil
	}
	var wallclockSite token.Pos
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		checkWallclockCount(pass, file, &wallclockSite)
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				checkUse(pass, n.Sel, strict)
			case *ast.RangeStmt:
				if strict {
					checkMapRange(pass, file, n)
				}
			}
			return true
		})
	}
	return nil
}

// checkWallclockCount counts //homeo:wallclock sites per package so a
// second runtime clock construction site is flagged wherever it lands.
func checkWallclockCount(pass *analysis.Pass, file *ast.File, first *token.Pos) {
	for _, decl := range file.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok {
			continue
		}
		if d, ok := analysis.DeclDirective(gd, "wallclock"); ok {
			if *first != token.NoPos {
				pass.Reportf(d.Pos, "second //homeo:wallclock site in package %s (first at %s); each runtime gets exactly one sanctioned clock construction site", pass.Pkg.Path(), pass.Fset.Position(*first))
			} else {
				*first = d.Pos
			}
		}
	}
}

// checkUse flags references (calls or values) to forbidden time and
// math/rand functions.
func checkUse(pass *analysis.Pass, sel *ast.Ident, strict bool) {
	fn, ok := pass.TypesInfo.Uses[sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return // methods (t.Sub, r.Intn on a seeded *rand.Rand) are fine
	}
	switch fn.Pkg().Path() {
	case "time":
		name := fn.Name()
		if wallFuncs[name] {
			if _, ok := pass.DirectiveAt(sel.Pos(), "wallclock"); ok {
				return
			}
			if _, ok := pass.DirectiveAt(sel.Pos(), "nondet"); ok {
				return
			}
			pass.Reportf(sel.Pos(), "wall-clock read time.%s in replay-critical package; route through the //homeo:wallclock injection point", name)
			return
		}
		if strict && timerFuncs[name] {
			pass.Reportf(sel.Pos(), "wall-clock timer time.%s in deterministic package; use the rt runtime clock", name)
		}
	case "math/rand", "math/rand/v2":
		if strict && !randConstructors[fn.Name()] {
			pass.Reportf(sel.Pos(), "global math/rand stream rand.%s in deterministic package; draw from a seeded *rand.Rand", fn.Name())
		}
	}
}

// checkMapRange flags range statements over maps unless sorted-after or
// suppressed.
func checkMapRange(pass *analysis.Pass, file *ast.File, rs *ast.RangeStmt) {
	tv, ok := pass.TypesInfo.Types[rs.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	if _, ok := pass.DirectiveAt(rs.Pos(), "nondet"); ok {
		return
	}
	if sortedCollect(pass, file, rs) {
		return
	}
	pass.Reportf(rs.Pos(), "nondeterministic iteration over map %s; sort the keys first (or annotate //homeo:nondet with why order cannot escape)", exprString(rs.X))
}

// sortedCollect recognizes the blessed pattern: the loop body only
// appends loop variables (or simple expressions of them) to local
// slices, and the statement immediately after the loop sorts one of
// those slices.
func sortedCollect(pass *analysis.Pass, file *ast.File, rs *ast.RangeStmt) bool {
	targets := collectTargets(rs)
	if len(targets) == 0 {
		return false
	}
	next := nextStmt(file, rs)
	if next == nil {
		return false
	}
	es, ok := next.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := pass.CalleeFunc(call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
		return false
	}
	for _, arg := range call.Args {
		if id, ok := ast.Unparen(arg).(*ast.Ident); ok && targets[id.Name] {
			return true
		}
	}
	return false
}

// collectTargets returns the slice variables the loop body appends to,
// or nil if the body does anything else. Appends guarded by a filtering
// if (no else) still count — filtering before sorting is order-safe.
func collectTargets(rs *ast.RangeStmt) map[string]bool {
	targets := make(map[string]bool)
	if !collectAppends(rs.Body.List, targets) {
		return nil
	}
	return targets
}

func collectAppends(stmts []ast.Stmt, targets map[string]bool) bool {
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.IfStmt:
			if s.Else != nil || s.Init != nil || !collectAppends(s.Body.List, targets) {
				return false
			}
		case *ast.AssignStmt:
			if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
				return false
			}
			lhs, ok := s.Lhs[0].(*ast.Ident)
			if !ok {
				return false
			}
			call, ok := s.Rhs[0].(*ast.CallExpr)
			if !ok {
				return false
			}
			if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "append" {
				return false
			}
			targets[lhs.Name] = true
		default:
			return false
		}
	}
	return true
}

// nextStmt finds the statement immediately following rs in its enclosing
// block.
func nextStmt(file *ast.File, rs *ast.RangeStmt) ast.Stmt {
	var next ast.Stmt
	ast.Inspect(file, func(n ast.Node) bool {
		if next != nil {
			return false
		}
		var list []ast.Stmt
		switch b := n.(type) {
		case *ast.BlockStmt:
			list = b.List
		case *ast.CaseClause:
			list = b.Body
		case *ast.CommClause:
			list = b.Body
		default:
			return true
		}
		for i, s := range list {
			if s == ast.Stmt(rs) && i+1 < len(list) {
				next = list[i+1]
				return false
			}
		}
		return true
	})
	return next
}

func exprString(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	}
	return "value"
}
