// Package sort is a hermetic stand-in for the stdlib package.
package sort

// Strings sorts in place.
func Strings(s []string) {}

// Ints sorts in place.
func Ints(s []int) {}

// Slice sorts in place.
func Slice(x any, less func(i, j int) bool) {}
