// Package time is a hermetic stand-in for the stdlib package: the
// analyzers match by import path and function name only.
package time

// Time is a fake instant.
type Time struct{}

// Duration is a fake duration.
type Duration int64

// Timer is a fake timer.
type Timer struct{}

// Now reads the wall clock.
func Now() Time { return Time{} }

// Since reads the wall clock.
func Since(t Time) Duration { return 0 }

// Until reads the wall clock.
func Until(t Time) Duration { return 0 }

// Sleep blocks.
func Sleep(d Duration) {}

// After returns a timer channel.
func After(d Duration) chan Time { return nil }

// Tick returns a ticker channel.
func Tick(d Duration) chan Time { return nil }

// NewTimer makes a timer.
func NewTimer(d Duration) *Timer { return nil }

// NewTicker makes a ticker.
func NewTicker(d Duration) *Timer { return nil }

// AfterFunc schedules fn.
func AfterFunc(d Duration, fn func()) *Timer { return nil }

// UnixNano is a method, always fine.
func (t Time) UnixNano() int64 { return 0 }

// Sub is a method, always fine.
func (t Time) Sub(u Time) Duration { return 0 }
