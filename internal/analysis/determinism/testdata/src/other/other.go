// Package other is outside every determinism set; nothing is flagged.
package other

import (
	"math/rand"
	"time"
)

func free(m map[int]int) {
	_ = time.Now()
	_ = rand.Intn(9)
	for range m {
	}
}
