// Package homeo exercises the one-wallclock-site-per-package rule.
package homeo

import "time"

// clockA is the sanctioned site.
var clockA = time.Now //homeo:wallclock

// clockB is one too many.
var clockB = time.Now //homeo:wallclock // want `second //homeo:wallclock site in package homeo`

func use() (time.Time, time.Time) { return clockA(), clockB() }
