// Package rtlive exercises the clock-package rules: one sanctioned
// //homeo:wallclock site, everything else injected.
package rtlive

import "time"

// wallClock is the runtime's single sanctioned clock read.
var wallClock = time.Now //homeo:wallclock

func now() time.Time { return wallClock() }

func strayRead() time.Time {
	return time.Now() // want `wall-clock read time.Now in replay-critical package`
}

func timersAreFine() {
	time.Sleep(1)
	time.AfterFunc(1, func() {})
}
