// Package sim exercises the strict determinism rules.
package sim

import (
	"math/rand"
	"sort"
	"time"
)

func wallClockReads() {
	_ = time.Now()         // want `wall-clock read time.Now in replay-critical package`
	_ = time.Since         // want `wall-clock read time.Since in replay-critical package`
	time.Sleep(1)          // want `wall-clock timer time.Sleep in deterministic package`
	_ = time.After(1)      // want `wall-clock timer time.After in deterministic package`
	time.AfterFunc(1, nil) // want `wall-clock timer time.AfterFunc in deterministic package`
}

func globalRand() {
	_ = rand.Intn(4)                   // want `global math/rand stream rand.Intn in deterministic package`
	rand.Shuffle(2, func(i, j int) {}) // want `global math/rand stream rand.Shuffle in deterministic package`
}

func seededRand(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(4)
}

func mapIteration(m map[string]int) int {
	sum := 0
	for _, v := range m { // want `nondeterministic iteration over map m`
		sum += v
	}

	// Sorted-collect is the blessed fix.
	keys := []string{}
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		sum += m[k]
	}

	// Filtered sorted-collect is still the blessed pattern.
	picked := []string{}
	for k, v := range m {
		if v > 0 {
			picked = append(picked, k)
		}
	}
	sort.Strings(picked)

	// An order-insensitive reduction carries a reviewed directive.
	//homeo:nondet commutative sum, order cannot escape
	for _, v := range m {
		sum += v
	}
	return sum
}

func sliceIterationIsFine(s []int) int {
	sum := 0
	for _, v := range s {
		sum += v
	}
	return sum
}
