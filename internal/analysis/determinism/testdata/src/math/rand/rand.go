// Package rand is a hermetic stand-in for math/rand.
package rand

// Source is a fake seed source.
type Source interface {
	Int63() int64
}

// Rand is a seeded stream; its methods are always fine.
type Rand struct{}

// New is a sanctioned seeded constructor.
func New(src Source) *Rand { return &Rand{} }

// NewSource is a sanctioned seeded constructor.
func NewSource(seed int64) Source { return nil }

// Int draws from the global stream.
func Int() int { return 0 }

// Intn draws from the global stream.
func Intn(n int) int { return 0 }

// Float64 draws from the global stream.
func Float64() float64 { return 0 }

// Shuffle permutes via the global stream.
func Shuffle(n int, swap func(i, j int)) {}

// Intn on a seeded stream is fine.
func (r *Rand) Intn(n int) int { return 0 }
