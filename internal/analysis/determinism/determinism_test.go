package determinism_test

import (
	"testing"

	"repro/internal/analysis/antest"
	"repro/internal/analysis/determinism"
)

func TestDeterminism(t *testing.T) {
	antest.Run(t, determinism.Analyzer,
		"internal/sim",
		"internal/rtlive",
		"homeo",
		"other",
	)
}
