// Package wal is a hermetic stand-in for internal/wal.
package wal

// Log is a fake write-ahead log.
type Log struct{}

// Flush flushes the batch.
func (l *Log) Flush() error { return nil }
