// Package homeostasis exercises the flush-before-externalize rule.
package homeostasis

import "internal/wal"

type reply struct{}

type siteNode struct {
	log  *wal.Log
	busy bool
}

// walFlush flushes the site's log.
//
//homeo:flushes
func (n *siteNode) walFlush() {
	_ = n.log.Flush()
}

// CollectState replies with a consistent cut.
//
//homeo:externalizes
func (n *siteNode) CollectState() (reply, error) {
	if n.busy {
		return reply{}, nil // want `return externalizes protocol state without a dominating WAL flush`
	}
	n.walFlush()
	return reply{}, nil
}

// InstallState installs folded state and acks.
//
//homeo:externalizes
func (n *siteNode) InstallState(ok bool) error {
	if !ok {
		//homeo:noexternalize validation refusal ships no state
		return nil
	}
	n.walFlush()
	return nil
}

// InstallTreaties is a handler someone forgot to annotate.
func (n *siteNode) InstallTreaties() error { // want `peer handler InstallTreaties on a fabric node type must be annotated`
	return nil
}

// AbortRound releases a grant; nothing externalized depends on durable
// state.
//
//homeo:noexternalize abort installs nothing a peer can act on
func (n *siteNode) AbortRound() error { return nil }

// branchy shows the path-sensitivity: a flush in one branch does not
// dominate the join.
//
//homeo:externalizes
func (n *siteNode) branchy(x int) error {
	if x > 0 {
		n.walFlush()
	}
	return nil // want `return externalizes protocol state without a dominating WAL flush`
}

// bothBranches flushes on every fallthrough path, so the join is
// dominated.
//
//homeo:externalizes
func (n *siteNode) bothBranches(x int) error {
	if x > 0 {
		n.walFlush()
	} else {
		_ = n.log.Flush()
	}
	return nil
}

// deferred flushes via defer, which runs before the reply leaves the
// process.
//
//homeo:externalizes
func (n *siteNode) deferred() error {
	defer n.walFlush()
	return nil
}

// terminatingBranch: the unflushed branch returns (and is exempt), so
// the tail return only follows the flushed path.
//
//homeo:externalizes
func (n *siteNode) terminatingBranch(x int) error {
	if x < 0 {
		//homeo:noexternalize invalid input ships no state
		return nil
	}
	n.walFlush()
	return nil
}

// loops are conservative: a flush inside the body does not dominate the
// statement after the loop.
//
//homeo:externalizes
func (n *siteNode) loopFlush(xs []int) error {
	for range xs {
		n.walFlush()
	}
	return nil // want `return externalizes protocol state without a dominating WAL flush`
}

// unannotated functions are not checked.
func (n *siteNode) helper() error { return nil }
