package walflush_test

import (
	"testing"

	"repro/internal/analysis/antest"
	"repro/internal/analysis/walflush"
)

func TestWalflush(t *testing.T) {
	antest.Run(t, walflush.Analyzer, "internal/homeostasis")
}
