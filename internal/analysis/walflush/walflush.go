// Package walflush enforces PR 6's flush-before-externalize rule in
// internal/homeostasis: any path that externalizes protocol state — peer
// replies (CollectState), install and treaty acks, the coordinator's
// round-2 Distribute — must flush the site's write-ahead log first, so a
// crash after the bytes leave the process can never lose a transition a
// peer has already acted on.
//
// The contract is annotation-driven and mechanically closed:
//
//   - A function whose return value (or ack) leaves the process carries
//     //homeo:externalizes in its doc comment. The analyzer then checks
//     every return statement is dominated by a WAL flush: a call to a
//     //homeo:flushes-annotated helper (walFlush) or to (*wal.Log).Flush,
//     on every fallthrough path, defers included. Early returns that
//     ship no state (busy refusals, validation errors) are marked
//     //homeo:noexternalize <reason> on the return line.
//
//   - Coverage cannot rot: any type that looks like a fabric.Node
//     (implements three or more of the peer handler methods) must carry
//     //homeo:externalizes or a function-level //homeo:noexternalize on
//     each handler, so new handlers opt in or explain themselves.
//
// The domination analysis is a conservative abstract interpretation over
// the AST (branches must all flush before a fallthrough counts; loop
// bodies do not leak state past the loop; function literals are opaque),
// so a clean report is trustworthy and the rare false positive is
// silenced with a reviewed //homeo:noexternalize.
package walflush

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the flush-before-externalize checker.
var Analyzer = &analysis.Analyzer{
	Name: "walflush",
	Doc:  "externalizing protocol state (peer replies, acks, round-2 distribute) requires a dominating WAL flush",
	Run:  run,
}

// nodeMethods are the peer-protocol handler names whose presence marks a
// type as a fabric node; each present handler must be annotated.
var nodeMethods = map[string]bool{
	"CollectState":    true,
	"InstallState":    true,
	"InstallTreaties": true,
	"AbortRound":      true,
	"Rejoin":          true,
}

func run(pass *analysis.Pass) error {
	if !analysis.PkgMatches(pass.Pkg.Path(), "internal/homeostasis") {
		return nil
	}
	c := &checker{pass: pass, flushers: map[*types.Func]bool{}}
	// First pass: collect //homeo:flushes helpers declared in this
	// package.
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if _, ok := analysis.FuncDirective(fd, "flushes"); ok {
				if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					c.flushers[fn] = true
				}
			}
		}
	}
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			_, externalizes := analysis.FuncDirective(fd, "externalizes")
			_, exempt := analysis.FuncDirective(fd, "noexternalize")
			if fd.Recv != nil && nodeMethods[fd.Name.Name] && !externalizes && !exempt && c.isNodeType(fd) {
				pass.Reportf(fd.Name.Pos(), "peer handler %s on a fabric node type must be annotated //homeo:externalizes (flush-before-externalize) or //homeo:noexternalize <why>", fd.Name.Name)
				continue
			}
			if externalizes {
				c.checkFunc(fd)
			}
		}
	}
	return nil
}

type checker struct {
	pass     *analysis.Pass
	flushers map[*types.Func]bool
}

// isNodeType reports whether the method's receiver type declares three
// or more of the peer handler methods.
func (c *checker) isNodeType(fd *ast.FuncDecl) bool {
	fn, ok := c.pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	n := 0
	for i := 0; i < named.NumMethods(); i++ {
		if nodeMethods[named.Method(i).Name()] {
			n++
		}
	}
	return n >= 3
}

// isFlush reports whether the call flushes the WAL: a local
// //homeo:flushes helper or (*internal/wal.Log).Flush.
func (c *checker) isFlush(call *ast.CallExpr) bool {
	fn := c.pass.CalleeFunc(call)
	if fn == nil {
		return false
	}
	if c.flushers[fn] {
		return true
	}
	if fn.Name() != "Flush" || fn.Pkg() == nil {
		return false
	}
	return strings.HasSuffix(fn.Pkg().Path(), "internal/wal") || fn.Pkg().Path() == "internal/wal"
}

// checkFunc verifies every return in an annotated function is dominated
// by a flush.
func (c *checker) checkFunc(fd *ast.FuncDecl) {
	c.stmts(fd.Body.List, false)
}

// stmts interprets a statement list, threading the flushed state;
// returns (flushed at fallthrough, list always terminates).
func (c *checker) stmts(list []ast.Stmt, flushed bool) (bool, bool) {
	for _, s := range list {
		var term bool
		flushed, term = c.stmt(s, flushed)
		if term {
			return flushed, true
		}
	}
	return flushed, false
}

// stmt interprets one statement; returns (flushed after, terminates).
func (c *checker) stmt(s ast.Stmt, flushed bool) (bool, bool) {
	switch s := s.(type) {
	case *ast.LabeledStmt:
		return c.stmt(s.Stmt, flushed)
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if c.isFlush(call) {
				return true, false
			}
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return flushed, true
			}
		}
		return flushed, false
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			if call, ok := rhs.(*ast.CallExpr); ok && c.isFlush(call) {
				return true, false
			}
		}
		return flushed, false
	case *ast.DeferStmt:
		// A deferred flush runs before the returned value leaves the
		// process, so it dominates every return after this point.
		if c.isFlush(s.Call) {
			return true, false
		}
		return flushed, false
	case *ast.ReturnStmt:
		if !flushed {
			if _, ok := c.pass.DirectiveAt(s.Pos(), "noexternalize"); !ok {
				c.pass.Reportf(s.Pos(), "return externalizes protocol state without a dominating WAL flush; call walFlush first or annotate //homeo:noexternalize <why this path ships no state>")
			}
		}
		return flushed, true
	case *ast.BlockStmt:
		return c.stmts(s.List, flushed)
	case *ast.IfStmt:
		if s.Init != nil {
			flushed, _ = c.stmt(s.Init, flushed)
		}
		thenF, thenT := c.stmts(s.Body.List, flushed)
		elseF, elseT := flushed, false
		if s.Else != nil {
			elseF, elseT = c.stmt(s.Else, flushed)
		}
		switch {
		case thenT && elseT:
			return flushed, true
		case thenT:
			return elseF, false
		case elseT:
			return thenF, false
		default:
			return thenF && elseF, false
		}
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return c.clauses(s, flushed)
	case *ast.ForStmt:
		// The body may run zero times: check returns inside with the
		// entry state, propagate nothing out.
		c.stmts(s.Body.List, flushed)
		return flushed, false
	case *ast.RangeStmt:
		c.stmts(s.Body.List, flushed)
		return flushed, false
	case *ast.GoStmt:
		return flushed, false
	default:
		return flushed, false
	}
}

// clauses handles switch/type-switch/select bodies: the fallthrough
// state flushes only if every clause flushes and a default exists.
func (c *checker) clauses(s ast.Stmt, flushed bool) (bool, bool) {
	var body *ast.BlockStmt
	hasDefault := false
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			flushed, _ = c.stmt(s.Init, flushed)
		}
		body = s.Body
	case *ast.TypeSwitchStmt:
		body = s.Body
	case *ast.SelectStmt:
		body = s.Body
	}
	allFlush, allTerm := true, true
	for _, cl := range body.List {
		var list []ast.Stmt
		switch cl := cl.(type) {
		case *ast.CaseClause:
			if cl.List == nil {
				hasDefault = true
			}
			list = cl.Body
		case *ast.CommClause:
			if cl.Comm == nil {
				hasDefault = true
			}
			list = cl.Body
		}
		f, t := c.stmts(list, flushed)
		if !t {
			allTerm = false
			allFlush = allFlush && f
		}
	}
	if len(body.List) == 0 {
		return flushed, false
	}
	if hasDefault && allTerm {
		return flushed, true
	}
	return flushed || (hasDefault && allFlush), false
}
