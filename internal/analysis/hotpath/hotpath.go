// Package hotpath keeps the zero-allocation paths zero-allocation at the
// source level. PR 7 flattened submit→exec→commit, WAL append, and codec
// encode to 0 allocs/op, and CI's allocs/op gate catches regressions —
// but only with a number, not an explanation. This analyzer names the
// usual suspects in any function whose doc comment carries
// //homeo:hotpath:
//
//   - calls into package fmt (Sprintf/Errorf/... all allocate); move
//     cold-path error construction into an unannotated helper instead
//   - string concatenation inside loops (quadratic garbage)
//   - map composite literals anywhere, and slice/array composite
//     literals inside loops (per-iteration allocations that escape the
//     pool discipline)
//
// Function literals declared inside a hot function are scanned too —
// they run on the same path. A reviewed exception carries
// //homeo:allowalloc <reason> on the offending line.
package hotpath

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the hot-path allocation checker.
var Analyzer = &analysis.Analyzer{
	Name: "hotpath",
	Doc:  "//homeo:hotpath functions may not format, concatenate in loops, or build map/slice literals",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if _, ok := analysis.FuncDirective(fd, "hotpath"); ok {
				check(pass, fd)
			}
		}
	}
	return nil
}

func check(pass *analysis.Pass, fd *ast.FuncDecl) {
	var walk func(n ast.Node, inLoop bool)
	walk = func(n ast.Node, inLoop bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.ForStmt:
				if m.Init != nil {
					walk(m.Init, inLoop)
				}
				if m.Cond != nil {
					walk(m.Cond, true)
				}
				if m.Post != nil {
					walk(m.Post, true)
				}
				walk(m.Body, true)
				return false
			case *ast.RangeStmt:
				walk(m.X, inLoop)
				walk(m.Body, true)
				return false
			case *ast.CallExpr:
				if fn := pass.CalleeFunc(m); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
					report(pass, m.Pos(), fd, "call to fmt.%s allocates; hoist cold-path formatting into an unannotated helper", fn.Name())
				}
			case *ast.BinaryExpr:
				if inLoop && m.Op == token.ADD && isString(pass, m.X) {
					report(pass, m.Pos(), fd, "string concatenation in a loop allocates per iteration; use a preallocated buffer")
				}
			case *ast.AssignStmt:
				if inLoop && m.Tok == token.ADD_ASSIGN && len(m.Lhs) == 1 && isString(pass, m.Lhs[0]) {
					report(pass, m.Pos(), fd, "string += in a loop allocates per iteration; use a preallocated buffer")
				}
			case *ast.CompositeLit:
				tv, ok := pass.TypesInfo.Types[m]
				if !ok {
					return true
				}
				switch tv.Type.Underlying().(type) {
				case *types.Map:
					report(pass, m.Pos(), fd, "map literal allocates; reuse a pooled map or index structure")
				case *types.Slice:
					if inLoop {
						report(pass, m.Pos(), fd, "slice literal in a loop allocates per iteration; hoist or pool it")
					}
				}
			}
			return true
		})
	}
	walk(fd.Body, false)
}

func isString(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func report(pass *analysis.Pass, pos token.Pos, fd *ast.FuncDecl, format string, args ...any) {
	if _, ok := pass.DirectiveAt(pos, "allowalloc"); ok {
		return
	}
	pass.Reportf(pos, "hot path %s: "+format, append([]any{fd.Name.Name}, args...)...)
}
