// Package hot exercises the hot-path allocation rules.
package hot

import "fmt"

type table struct {
	idx map[string]int
}

// Exec is the annotated hot path.
//
//homeo:hotpath
func (t *table) Exec(names []string) string {
	s := fmt.Sprintf("x%d", 1) // want `call to fmt.Sprintf allocates`
	out := ""
	for _, n := range names {
		out += n         // want `string \+= in a loop allocates per iteration`
		_ = n + "suffix" // want `string concatenation in a loop allocates per iteration`
		_ = []int{1, 2}  // want `slice literal in a loop allocates per iteration`
	}
	m := map[string]int{} // want `map literal allocates`
	_ = m
	_ = []int{1} // slice literal outside a loop is fine
	//homeo:allowalloc boot-time fill, runs once
	cold := fmt.Sprintf("cold")
	_ = cold
	return s + out // concatenation outside a loop is fine
}

// closures inside a hot function run on the same path.
//
//homeo:hotpath
func (t *table) ExecFn(names []string) func() error {
	return func() error {
		return fmt.Errorf("boom") // want `call to fmt.Errorf allocates`
	}
}

// cold is unannotated; nothing is checked.
func cold(names []string) string {
	out := ""
	for _, n := range names {
		out += n
	}
	return fmt.Sprintf("%s", out)
}
