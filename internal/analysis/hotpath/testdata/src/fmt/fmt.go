// Package fmt is a hermetic stand-in for the stdlib package.
package fmt

// Sprintf formats (and allocates).
func Sprintf(format string, args ...any) string { return format }

// Errorf formats an error (and allocates).
func Errorf(format string, args ...any) error { return nil }

// Println prints.
func Println(args ...any) (int, error) { return 0, nil }
