package schedlock_test

import (
	"testing"

	"repro/internal/analysis/antest"
	"repro/internal/analysis/schedlock"
)

func TestSchedlock(t *testing.T) {
	antest.Run(t, schedlock.Analyzer, "internal/rtlive")
}
