// Package sync is a hermetic stand-in for the stdlib package.
package sync

// Mutex is a fake mutex.
type Mutex struct{}

// Lock locks.
func (m *Mutex) Lock() {}

// Unlock unlocks.
func (m *Mutex) Unlock() {}

// WaitGroup is a fake waitgroup.
type WaitGroup struct{}

// Add adds.
func (wg *WaitGroup) Add(n int) {}

// Done subtracts.
func (wg *WaitGroup) Done() {}

// Wait blocks.
func (wg *WaitGroup) Wait() {}

// Cond is a fake condition variable.
type Cond struct{}

// NewCond makes one.
func NewCond(l *Mutex) *Cond { return &Cond{} }

// Wait blocks.
func (c *Cond) Wait() {}

// Broadcast wakes everyone.
func (c *Cond) Broadcast() {}
