// Package time is a hermetic stand-in for the stdlib package.
package time

// Duration is a fake duration.
type Duration int64

// Sleep blocks.
func Sleep(d Duration) {}
