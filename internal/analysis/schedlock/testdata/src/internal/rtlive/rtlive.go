// Package rtlive exercises the scheduler-lock discipline.
package rtlive

import (
	"sync"
	"time"
)

// Runtime mirrors the real runtime's lock layout.
type Runtime struct {
	// mu is the scheduler lock.
	mu sync.Mutex //homeo:schedlock
	wg sync.WaitGroup
}

// Proc mirrors the real process: its own pmu/cond are not the scheduler
// lock.
type Proc struct {
	r      *Runtime
	pmu    sync.Mutex
	cond   *sync.Cond
	parked bool
}

func (r *Runtime) blockingWhileHeld(ch chan int) {
	r.mu.Lock()
	time.Sleep(1) // want `time.Sleep while holding the scheduler lock`
	ch <- 1       // want `channel send while holding the scheduler lock`
	<-ch          // want `channel receive while holding the scheduler lock`
	r.wg.Wait()   // want `Wait while holding the scheduler lock`
	r.mu.Unlock()
	time.Sleep(1) // released: fine
	ch <- 2
}

func (r *Runtime) deferredUnlockStaysHeld(ch chan int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	<-ch // want `channel receive while holding the scheduler lock`
}

func (r *Runtime) selectWhileHeld(ch chan int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	select { // want `select while holding the scheduler lock`
	case <-ch:
	default:
	}
}

func (r *Runtime) suppressed(ch chan int) {
	r.mu.Lock()
	//homeo:nonblocking buffered by construction, never blocks
	ch <- 1
	r.mu.Unlock()
}

// Park releases the scheduler lock before blocking, exactly like the
// real park helper; the cond.Wait happens unlocked.
//
//homeo:schedlocked
func (p *Proc) Park() {
	p.r.mu.Unlock()
	p.pmu.Lock()
	for p.parked {
		p.cond.Wait()
	}
	p.pmu.Unlock()
	p.r.mu.Lock()
}

// badHelper documents itself as running under the lock and then blocks.
//
//homeo:schedlocked
func (p *Proc) badHelper() {
	p.cond.Wait() // want `Wait while holding the scheduler lock`
}

// goroutines start unlocked; taking the lock inside is tracked fresh.
func (r *Runtime) spawn(ch chan int) {
	go func() {
		<-ch // fresh goroutine: fine
		r.mu.Lock()
		ch <- 1 // want `channel send while holding the scheduler lock`
		r.mu.Unlock()
	}()
}

// timer-style callbacks passed as literals are walked too.
func (r *Runtime) callback(ch chan int, schedule func(fn func())) {
	schedule(func() {
		r.mu.Lock()
		defer r.mu.Unlock()
		<-ch // want `channel receive while holding the scheduler lock`
	})
}
