// Package schedlock enforces the rtlive scheduler-lock discipline: the
// wall-clock runtime provides the simulator's execution atomicity with
// one mutex, and any real blocking while it is held stalls every
// process, timer callback, and stats reader in the runtime. The lock is
// declared by marking the mutex field with a trailing //homeo:schedlock
// comment; the analyzer then tracks Lock/Unlock calls on that exact
// field object through each function (defers included) and flags, while
// the lock is held:
//
//   - channel sends, receives, and range-over-channel
//   - select statements
//   - time.Sleep
//   - sync.Cond.Wait and sync.WaitGroup.Wait
//
// Park points are not special-cased: Proc.Park releases the scheduler
// lock before blocking on its condition variable, which the tracker sees
// directly — the cond.Wait happens in the unlocked region. Function
// literals are walked as independent bodies (timer callbacks take the
// lock themselves). A deliberate exception carries //homeo:nonblocking
// <reason> on the offending line.
package schedlock

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the scheduler-lock discipline checker.
var Analyzer = &analysis.Analyzer{
	Name: "schedlock",
	Doc:  "no blocking operations while the rtlive scheduler lock (//homeo:schedlock) is held",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !analysis.PkgMatches(pass.Pkg.Path(), "internal/rtlive") {
		return nil
	}
	lock := findLockField(pass)
	if lock == nil {
		return nil
	}
	c := &checker{pass: pass, lock: lock}
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				// //homeo:schedlocked marks helpers whose callers hold
				// the lock; their bodies start in the held state.
				_, lockedOnEntry := analysis.FuncDirective(fd, "schedlocked")
				c.stmts(fd.Body.List, lockedOnEntry)
			}
		}
	}
	return nil
}

// findLockField locates the struct field marked //homeo:schedlock and
// returns its types object.
func findLockField(pass *analysis.Pass) types.Object {
	var lock types.Object
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, f := range st.Fields.List {
				for _, g := range []*ast.CommentGroup{f.Doc, f.Comment} {
					if g == nil {
						continue
					}
					for _, cm := range g.List {
						if d, ok := analysis.ParseDirective(cm); ok && d.Name == "schedlock" && len(f.Names) > 0 {
							lock = pass.TypesInfo.Defs[f.Names[0]]
						}
					}
				}
			}
			return true
		})
	}
	return lock
}

type checker struct {
	pass *analysis.Pass
	lock types.Object
}

// walkBody interprets a function (or function literal) body starting
// unlocked.
func (c *checker) walkBody(body *ast.BlockStmt) {
	c.stmts(body.List, false)
}

// lockOp classifies a call as Lock/Unlock on the scheduler-lock field.
func (c *checker) lockOp(call *ast.CallExpr) (op string, onLock bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "Unlock") {
		return "", false
	}
	// The receiver must be a selector chain ending at the marked field:
	// r.mu, p.r.mu, s.r.mu.
	inner, ok := sel.X.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if c.pass.TypesInfo.Selections[inner] == nil || c.fieldObj(inner) != c.lock {
		return "", false
	}
	return sel.Sel.Name, true
}

func (c *checker) fieldObj(sel *ast.SelectorExpr) types.Object {
	if s := c.pass.TypesInfo.Selections[sel]; s != nil {
		return s.Obj()
	}
	return nil
}

// stmts threads the held state through a statement list, returning the
// state at fallthrough.
func (c *checker) stmts(list []ast.Stmt, held bool) bool {
	for _, s := range list {
		held = c.stmt(s, held)
	}
	return held
}

// stmt interprets one statement and returns the held state after it.
func (c *checker) stmt(s ast.Stmt, held bool) bool {
	switch s := s.(type) {
	case *ast.LabeledStmt:
		return c.stmt(s.Stmt, held)
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if op, ok := c.lockOp(call); ok {
				return op == "Lock"
			}
		}
		c.checkExpr(s.X, held)
		return held
	case *ast.DeferStmt:
		// defer mu.Unlock() keeps the lock held for the remainder; the
		// unlocked region never reappears in this body.
		if op, ok := c.lockOp(s.Call); ok && op == "Lock" {
			return true
		}
		return held
	case *ast.SendStmt:
		if held {
			c.report(s.Pos(), "channel send")
		}
		c.checkExpr(s.Value, held)
		return held
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			c.checkExpr(e, held)
		}
		return held
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			c.checkExpr(e, held)
		}
		return held
	case *ast.IfStmt:
		if s.Init != nil {
			held = c.stmt(s.Init, held)
		}
		c.checkExpr(s.Cond, held)
		thenHeld := c.stmts(s.Body.List, held)
		elseHeld := held
		if s.Else != nil {
			elseHeld = c.stmt(s.Else, held)
		}
		return thenHeld || elseHeld
	case *ast.BlockStmt:
		return c.stmts(s.List, held)
	case *ast.ForStmt:
		if s.Cond != nil {
			c.checkExpr(s.Cond, held)
		}
		c.stmts(s.Body.List, held)
		return held
	case *ast.RangeStmt:
		if held {
			if tv, ok := c.pass.TypesInfo.Types[s.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					c.report(s.Pos(), "range over channel")
				}
			}
		}
		c.stmts(s.Body.List, held)
		return held
	case *ast.SelectStmt:
		if held {
			c.report(s.Pos(), "select")
		}
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CommClause); ok {
				c.stmts(cc.Body, held)
			}
		}
		return held
	case *ast.SwitchStmt:
		if s.Tag != nil {
			c.checkExpr(s.Tag, held)
		}
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				c.stmts(cc.Body, held)
			}
		}
		return held
	case *ast.TypeSwitchStmt:
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				c.stmts(cc.Body, held)
			}
		}
		return held
	case *ast.GoStmt:
		c.walkFuncLits(s.Call)
		return held
	default:
		return held
	}
}

// checkExpr scans one expression (evaluated while held or not) for
// blocking operations; nested function literals are walked as fresh
// unlocked bodies.
func (c *checker) checkExpr(e ast.Expr, held bool) {
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			c.walkBody(n.Body)
			return false
		case *ast.UnaryExpr:
			if held && n.Op == token.ARROW {
				c.report(n.Pos(), "channel receive")
			}
		case *ast.CallExpr:
			if held {
				c.checkCall(n)
			}
		}
		return true
	})
}

// checkCall flags blocking calls made while the lock is held.
func (c *checker) checkCall(call *ast.CallExpr) {
	fn := c.pass.CalleeFunc(call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	switch {
	case fn.Pkg().Path() == "time" && fn.Name() == "Sleep":
		c.report(call.Pos(), "time.Sleep")
	case fn.Pkg().Path() == "sync" && fn.Name() == "Wait":
		recv := fn.Type().(*types.Signature).Recv()
		if recv != nil {
			c.report(call.Pos(), "sync "+types.TypeString(recv.Type(), nil)+".Wait")
		}
	}
}

// walkFuncLits walks function literals in a go statement's call.
func (c *checker) walkFuncLits(call *ast.CallExpr) {
	ast.Inspect(call, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			c.walkBody(fl.Body)
			return false
		}
		return true
	})
}

func (c *checker) report(pos token.Pos, what string) {
	if _, ok := c.pass.DirectiveAt(pos, "nonblocking"); ok {
		return
	}
	c.pass.Reportf(pos, "%s while holding the scheduler lock stalls every process in the runtime; release the lock or park through the rt contract (//homeo:nonblocking <why> if provably short)", what)
}
