// Package unchecked flags call statements that silently drop an error
// result. It is homeovet's stand-in for the staticcheck/x/tools
// hardening layer (nilness, unusedwrite need SSA from
// golang.org/x/tools, which this repo cannot vendor offline): a focused
// errcheck that keeps the module's error-taxonomy discipline — PR 4
// introduced typed errors precisely so callers would route them — from
// eroding at the edges (HTTP handlers, CLI shells).
//
// A bare expression statement whose call returns an error (alone or in a
// tuple) is flagged. Acknowledged drops are written explicitly:
//
//	_ = l.Flush()        // single error
//	_, _ = w.Write(b)    // tuple
//
// which is also the fix the analyzer suggests. Deferred calls are not
// flagged (defer f.Close() is idiomatic teardown), and neither are the
// stdlib sinks whose errors are contractually nil or unrecoverable:
// package fmt printers and (*bytes.Buffer)/(*strings.Builder) writers.
package unchecked

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the dropped-error checker.
var Analyzer = &analysis.Analyzer{
	Name: "unchecked",
	Doc:  "expression statements may not silently drop an error result; assign to _ to acknowledge",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			es, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := ast.Unparen(es.X).(*ast.CallExpr)
			if !ok {
				return true
			}
			check(pass, call)
			return true
		})
	}
	return nil
}

func check(pass *analysis.Pass, call *ast.CallExpr) {
	tv, ok := pass.TypesInfo.Types[call]
	if !ok || !returnsError(tv.Type) {
		return
	}
	if allowed(pass, call) {
		return
	}
	name := calleeName(pass, call)
	pass.Reportf(call.Pos(), "%s returns an error that is silently dropped; handle it or acknowledge with an explicit _ assignment", name)
}

// returnsError reports whether the call's result type is or contains
// error.
func returnsError(t types.Type) bool {
	if tup, ok := t.(*types.Tuple); ok {
		for i := 0; i < tup.Len(); i++ {
			if isError(tup.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isError(t)
}

func isError(t types.Type) bool {
	n, ok := t.(*types.Named)
	return ok && n.Obj().Pkg() == nil && n.Obj().Name() == "error"
}

// allowed reports the contractually-safe sinks: fmt printers and
// in-memory buffer writers.
func allowed(pass *analysis.Pass, call *ast.CallExpr) bool {
	fn := pass.CalleeFunc(call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	if fn.Pkg().Path() == "fmt" {
		return true
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil {
			full := named.Obj().Pkg().Path() + "." + named.Obj().Name()
			if full == "bytes.Buffer" || full == "strings.Builder" {
				return true
			}
		}
	}
	return false
}

func calleeName(pass *analysis.Pass, call *ast.CallExpr) string {
	if fn := pass.CalleeFunc(call); fn != nil {
		return fn.Name()
	}
	return "call"
}
