package unchecked_test

import (
	"testing"

	"repro/internal/analysis/antest"
	"repro/internal/analysis/unchecked"
)

func TestUnchecked(t *testing.T) {
	antest.Run(t, unchecked.Analyzer, "web")
}
