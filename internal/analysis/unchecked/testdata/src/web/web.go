// Package web exercises the unchecked-error rules.
package web

import (
	"bytes"
	"fmt"
)

type enc struct{}

// Encode writes a value and can fail.
func (e *enc) Encode(v any) error { return nil }

// Close releases the encoder and can fail.
func (e *enc) Close() error { return nil }

// multi returns a value and an error.
func multi() (int, error) { return 0, nil }

// onlyInt returns no error at all.
func onlyInt() int { return 0 }

func handler(e *enc, buf *bytes.Buffer) {
	e.Encode(1) // want `returns an error that is silently dropped`
	multi()     // want `returns an error that is silently dropped`
	if err := e.Encode(2); err != nil {
		return
	}
	_ = e.Encode(3)
	_, _ = multi()
	onlyInt()
	defer e.Close()
	fmt.Println("served")        // fmt is allowlisted
	fmt.Fprintf(nil, "x")        // fmt is allowlisted
	buf.WriteString("body")      // bytes.Buffer never fails
	buf.Write([]byte("trailer")) // bytes.Buffer never fails
}
