// Package bytes is a hermetic stand-in for the stdlib package.
package bytes

// Buffer is a fake bytes.Buffer.
type Buffer struct{ b []byte }

// WriteString appends a string; the error is always nil.
func (b *Buffer) WriteString(s string) (int, error) {
	b.b = append(b.b, s...)
	return len(s), nil
}

// Write appends bytes; the error is always nil.
func (b *Buffer) Write(p []byte) (int, error) {
	b.b = append(b.b, p...)
	return len(p), nil
}
