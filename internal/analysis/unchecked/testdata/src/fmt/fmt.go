// Package fmt is a hermetic stand-in for the stdlib package.
package fmt

// Println prints and returns a count and an error.
func Println(args ...any) (int, error) { return 0, nil }

// Fprintf formats to a writer.
func Fprintf(w any, format string, args ...any) (int, error) { return 0, nil }
