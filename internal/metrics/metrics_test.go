package metrics

import (
	"math/rand"
	"testing"

	"repro/internal/sim"
)

func TestPercentiles(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Add(sim.Duration(i) * sim.Millisecond)
	}
	if got := h.Percentile(50); got != 51*sim.Millisecond {
		t.Fatalf("p50 = %v", got)
	}
	if got := h.Percentile(0); got != 1*sim.Millisecond {
		t.Fatalf("p0 = %v", got)
	}
	if got := h.Percentile(100); got != 100*sim.Millisecond {
		t.Fatalf("p100 = %v", got)
	}
	if got := h.Max(); got != 100*sim.Millisecond {
		t.Fatalf("max = %v", got)
	}
	if got := h.Mean(); got != 50*sim.Millisecond+500*sim.Microsecond {
		t.Fatalf("mean = %v", got)
	}
}

func TestPercentileUnsortedInput(t *testing.T) {
	var h Histogram
	rng := rand.New(rand.NewSource(1))
	vals := rng.Perm(1000)
	for _, v := range vals {
		h.Add(sim.Duration(v+1) * sim.Microsecond)
	}
	if got := h.Percentile(99); got < 980*sim.Microsecond {
		t.Fatalf("p99 = %v on shuffled input", got)
	}
	if h.N() != 1000 {
		t.Fatalf("n = %d", h.N())
	}
}

func TestEmptyHistogram(t *testing.T) {
	var h Histogram
	if h.Percentile(50) != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
}

func TestAddAfterPercentileResorts(t *testing.T) {
	var h Histogram
	h.Add(10 * sim.Millisecond)
	_ = h.Percentile(50)
	h.Add(1 * sim.Millisecond) // must trigger re-sort
	if got := h.Percentile(0); got != 1*sim.Millisecond {
		t.Fatalf("p0 = %v after late insert", got)
	}
}

func TestCDF(t *testing.T) {
	var h Histogram
	for i := 1; i <= 10; i++ {
		h.Add(sim.Duration(i) * sim.Millisecond)
	}
	cdf := h.CDF(10)
	if len(cdf) != 10 {
		t.Fatalf("points = %d", len(cdf))
	}
	// Monotone in both coordinates.
	for i := 1; i < len(cdf); i++ {
		if cdf[i][0] < cdf[i-1][0] || cdf[i][1] <= cdf[i-1][1] {
			t.Fatalf("CDF not monotone: %v", cdf)
		}
	}
	if cdf[9][1] != 1.0 {
		t.Fatalf("CDF does not reach 1: %v", cdf[9])
	}
}

func TestBreakdown(t *testing.T) {
	var b Breakdown
	b.Add(2*sim.Millisecond, 50*sim.Millisecond, 200*sim.Millisecond)
	b.Add(4*sim.Millisecond, 30*sim.Millisecond, 200*sim.Millisecond)
	local, solver, comm := b.Avg()
	if local != 3*sim.Millisecond || solver != 40*sim.Millisecond || comm != 200*sim.Millisecond {
		t.Fatalf("avg = %v %v %v", local, solver, comm)
	}
	var empty Breakdown
	l, s, c := empty.Avg()
	if l != 0 || s != 0 || c != 0 {
		t.Fatal("empty breakdown should average to zero")
	}
}

func TestCollectorGating(t *testing.T) {
	c := &Collector{}
	c.RecordCommit(5*sim.Millisecond, false) // warm-up: ignored
	c.RecordConflictAbort()
	if c.Committed != 0 || c.AbortedConflicts != 0 {
		t.Fatal("warm-up events must not be recorded")
	}
	c.Measuring = true
	c.Start = 0
	c.RecordCommit(5*sim.Millisecond, true)
	c.RecordCommit(5*sim.Millisecond, false)
	c.RecordConflictAbort()
	c.End = sim.Time(2 * sim.Second)
	if c.Committed != 2 || c.Synced != 1 || c.AbortedConflicts != 1 {
		t.Fatalf("counters: %d %d %d", c.Committed, c.Synced, c.AbortedConflicts)
	}
	if got := c.Throughput(); got != 1.0 {
		t.Fatalf("throughput = %f, want 1.0", got)
	}
	if got := c.SyncRatio(); got != 50 {
		t.Fatalf("sync ratio = %f, want 50", got)
	}
}

func TestThroughputZeroWindow(t *testing.T) {
	c := &Collector{}
	if c.Throughput() != 0 || c.SyncRatio() != 0 {
		t.Fatal("zero-window collector should report zeros")
	}
}

func TestProfileString(t *testing.T) {
	var h Histogram
	h.Add(sim.Millisecond)
	s := h.ProfileString()
	if s == "" {
		t.Fatal("empty profile")
	}
}

// TestThroughputAtIsReadOnly: the rolling-window rate must not touch the
// collector (a GET endpoint computes it on a live system).
func TestThroughputAtIsReadOnly(t *testing.T) {
	c := &Collector{Measuring: true, Start: 0}
	for i := 0; i < 10; i++ {
		c.RecordCommit(sim.Millisecond, false)
	}
	endBefore := c.End
	got := c.ThroughputAt(sim.Time(2 * sim.Second))
	if got != 5 {
		t.Fatalf("ThroughputAt = %v txn/s, want 5", got)
	}
	if c.End != endBefore {
		t.Fatalf("ThroughputAt mutated End: %v -> %v", endBefore, c.End)
	}
	if c.ThroughputAt(0) != 0 {
		t.Fatal("empty window must report 0")
	}
}

// TestDistinctFailureCounters: the livelock, generation-failure, and
// co-winner counters record independently and honor the measuring gate.
func TestDistinctFailureCounters(t *testing.T) {
	c := &Collector{}
	c.RecordLivelock()
	c.RecordTreatyGenFailure()
	c.RecordCoWinner()
	if c.Livelocked != 0 || c.TreatyGenFailures != 0 || c.CoWinnerCommits != 0 {
		t.Fatal("counters recorded during warm-up")
	}
	c.Measuring = true
	c.RecordLivelock()
	c.RecordDropped()
	c.RecordTreatyGenFailure()
	c.RecordCoWinner()
	c.RecordCoWinner()
	if c.Livelocked != 1 || c.Dropped != 1 || c.TreatyGenFailures != 1 || c.CoWinnerCommits != 2 {
		t.Fatalf("counters = livelock %d dropped %d genfail %d cowinner %d",
			c.Livelocked, c.Dropped, c.TreatyGenFailures, c.CoWinnerCommits)
	}
}

// TestHistogramAddAll: merged histograms report percentiles over the
// union of samples.
func TestHistogramAddAll(t *testing.T) {
	var a, b Histogram
	for i := 1; i <= 50; i++ {
		a.Add(sim.Duration(i))
	}
	for i := 51; i <= 100; i++ {
		b.Add(sim.Duration(i))
	}
	a.AddAll(&b)
	a.AddAll(nil)
	if a.N() != 100 {
		t.Fatalf("N = %d, want 100", a.N())
	}
	if p := a.Percentile(50); p != sim.Duration(51) {
		t.Fatalf("p50 = %v, want 51", p)
	}
	if m := a.Max(); m != sim.Duration(100) {
		t.Fatalf("max = %v", m)
	}
}

// TestNegotiationLatencyGatedAndSnapshot: negotiation samples respect the
// measuring gate and surface in snapshots.
func TestNegotiationLatencyGatedAndSnapshot(t *testing.T) {
	var c Collector
	c.RecordNegotiation(sim.Millisecond) // warm-up: dropped
	c.Measuring = true
	c.RecordNegotiation(100 * sim.Millisecond)
	c.RecordNegotiation(300 * sim.Millisecond)
	c.RecordFabricError()
	snap := c.SnapshotAt(sim.Time(sim.Second))
	if snap.Negotiations != 2 {
		t.Fatalf("negotiations = %d, want 2", snap.Negotiations)
	}
	if snap.NegLatencyP50 != 300*sim.Millisecond && snap.NegLatencyP50 != 100*sim.Millisecond {
		t.Fatalf("p50 = %v", snap.NegLatencyP50)
	}
	if snap.NegLatencyP99 != 300*sim.Millisecond {
		t.Fatalf("p99 = %v, want 300ms", snap.NegLatencyP99)
	}
	if snap.FabricErrors != 1 {
		t.Fatalf("fabric errors = %d, want 1", snap.FabricErrors)
	}
}
