// Package metrics collects the measurements the paper's evaluation
// reports: per-transaction latency percentiles (Figures 10, 13, 16, 19,
// 21, 27), throughput (Figures 11, 14, 17, 20, 22, 25, 28), synchronization
// ratio (Figures 12, 15, 18, 26, 29), and time breakdowns (Figure 24).
package metrics

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/rt"
)

// histChunk is the fixed sample-chunk size. Chunks make the record path
// allocation-free in steady state: Add writes into the current chunk's
// preallocated capacity, and growing never copies existing samples (the
// old flat-slice design re-copied the whole run's samples on every
// doubling). A fresh chunk is allocated only once per histChunk samples.
const histChunk = 8192

// Histogram records latency samples and reports percentiles.
type Histogram struct {
	chunks [][]rt.Duration // all full except possibly the last
	n      int
	// flat is the reused sort scratch for the read side (percentiles are
	// computed over a flattened copy). Valid while sorted is true; any Add
	// invalidates it. Readers hold the runtime's execution right, so the
	// shared scratch is not a race.
	flat   []rt.Duration
	sorted bool
}

// Add records a sample.
func (h *Histogram) Add(d rt.Duration) {
	if k := len(h.chunks); k == 0 || len(h.chunks[k-1]) == cap(h.chunks[k-1]) {
		h.chunks = append(h.chunks, make([]rt.Duration, 0, histChunk))
	}
	k := len(h.chunks) - 1
	h.chunks[k] = append(h.chunks[k], d)
	h.n++
	h.sorted = false
}

// N returns the sample count.
func (h *Histogram) N() int { return h.n }

// AddAll merges another histogram's samples (used to aggregate per-cell
// histograms across a sweep).
func (h *Histogram) AddAll(o *Histogram) {
	if o == nil || o.n == 0 {
		return
	}
	for _, c := range o.chunks {
		for _, d := range c {
			h.Add(d)
		}
	}
}

// ensureSorted (re)builds the flat sorted view of all samples.
func (h *Histogram) ensureSorted() {
	if h.sorted {
		return
	}
	if cap(h.flat) < h.n {
		h.flat = make([]rt.Duration, 0, h.n)
	}
	h.flat = h.flat[:0]
	for _, c := range h.chunks {
		h.flat = append(h.flat, c...)
	}
	sort.Slice(h.flat, func(i, j int) bool { return h.flat[i] < h.flat[j] })
	h.sorted = true
}

// Percentile returns the p-th percentile (0 <= p <= 100) using
// nearest-rank; zero when empty.
func (h *Histogram) Percentile(p float64) rt.Duration {
	if h.n == 0 {
		return 0
	}
	h.ensureSorted()
	rank := int(p / 100 * float64(h.n))
	if rank >= h.n {
		rank = h.n - 1
	}
	if rank < 0 {
		rank = 0
	}
	return h.flat[rank]
}

// Mean returns the arithmetic mean.
func (h *Histogram) Mean() rt.Duration {
	if h.n == 0 {
		return 0
	}
	var sum rt.Duration
	for _, c := range h.chunks {
		for _, s := range c {
			sum += s
		}
	}
	return sum / rt.Duration(h.n)
}

// Max returns the largest sample.
func (h *Histogram) Max() rt.Duration {
	var max rt.Duration
	for _, c := range h.chunks {
		for _, s := range c {
			if s > max {
				max = s
			}
		}
	}
	return max
}

// ProfileString renders the percentile profile used in the paper's
// latency figures.
func (h *Histogram) ProfileString() string {
	ps := []float64{10, 30, 50, 70, 90, 92, 94, 96, 97, 98, 99, 100}
	parts := make([]string, len(ps))
	for i, p := range ps {
		parts[i] = fmt.Sprintf("p%.0f=%v", p, h.Percentile(p))
	}
	return strings.Join(parts, " ")
}

// CDF returns (latency, cumulative probability) pairs at the given
// quantile resolution, for Figure 27's CDF plot.
func (h *Histogram) CDF(points int) [][2]float64 {
	h.ensureSorted()
	out := make([][2]float64, 0, points)
	for i := 1; i <= points; i++ {
		q := float64(i) / float64(points)
		idx := int(q*float64(h.n)) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= h.n {
			idx = h.n - 1
		}
		ms := float64(h.flat[idx]) / float64(rt.Millisecond)
		out = append(out, [2]float64{ms, q})
	}
	return out
}

// Breakdown accumulates where violating transactions spend time
// (Figure 24): local execution, treaty solving, and communication.
type Breakdown struct {
	Local  rt.Duration
	Solver rt.Duration
	Comm   rt.Duration
	N      int64
}

// Add accumulates one transaction's breakdown.
func (b *Breakdown) Add(local, solver, comm rt.Duration) {
	b.Local += local
	b.Solver += solver
	b.Comm += comm
	b.N++
}

// Avg returns the per-transaction averages.
func (b *Breakdown) Avg() (local, solver, comm rt.Duration) {
	if b.N == 0 {
		return 0, 0, 0
	}
	n := rt.Duration(b.N)
	return b.Local / n, b.Solver / n, b.Comm / n
}

// Collector aggregates a run's measurements.
type Collector struct {
	// Latency histogram over committed transactions.
	Latency Histogram
	// Committed counts successful transactions; Synced counts those that
	// triggered treaty renegotiation; AbortedConflicts counts
	// lock-timeout/deadlock aborts (2PC conflicts).
	Committed        int64
	Synced           int64
	AbortedConflicts int64
	// Dropped counts requests abandoned on unrecoverable execution errors
	// (livelock bailouts, protocol errors) rather than retried.
	Dropped int64
	// Livelocked counts requests that hit the retry-attempt bound in the
	// homeostasis executor. Every livelocked request is also Dropped by
	// its caller; the distinct counter separates livelock bailouts from
	// other unrecoverable errors.
	Livelocked int64
	// TreatyGenFailures counts cleanup rounds whose treaty generation
	// failed after the winning transaction had already committed at every
	// site. The protocol installs safe pin treaties and continues (the
	// commit stands); the counter surfaces the degradation.
	TreatyGenFailures int64
	// CoWinnerCommits counts transactions committed as co-winners of a
	// batched cleanup round (Options.Alloc enabled): queued violators
	// folded into another winner's synchronization instead of paying
	// their own two communication rounds.
	CoWinnerCommits int64
	// NegotiationLatency records each cleanup round's total communication
	// time (state-synchronization round plus treaty-distribution round)
	// as observed by the coordinating site — the per-negotiation
	// round-trip cost the site fabric actually paid.
	NegotiationLatency Histogram
	// FabricErrors counts site-fabric degradations outside the request
	// path: failed state/treaty installs at a peer and expired remote
	// round grants. The protocol keeps running (the next violation
	// resynchronizes); the counter surfaces that it happened.
	FabricErrors int64
	// RoundsAdopted counts remote rounds whose coordinator vanished after
	// their state install completed here: the granted site adopted the
	// winning commit into its own log and degraded the units to pin
	// treaties. RoundsAborted counts coordinator-failover releases where
	// round 1 never closed locally — nothing was committed, so the grant
	// was dropped with state and treaties untouched.
	RoundsAdopted int64
	RoundsAborted int64
	// AnalysisCacheHits/Misses count class registrations served by the
	// artifact cache (an isomorphic family shared its symbolic table and
	// guard preprocessing) vs. analyzed from scratch.
	AnalysisCacheHits   int64
	AnalysisCacheMisses int64
	// SolverWarmStarts counts negotiation solves where the warm-start
	// fast path produced the configuration without entering the MaxSAT
	// loop; SolverFallbacks counts warm attempts that hit a theory
	// conflict and fell back to the full solve.
	SolverWarmStarts int64
	SolverFallbacks  int64
	// ViolationBreakdown is the Figure 24 split for transactions that
	// required synchronization.
	ViolationBreakdown Breakdown
	// Measuring gates collection (warm-up phase records nothing).
	Measuring bool
	// Start/End of the measuring window (virtual time).
	Start, End rt.Time
}

// RecordCommit records a committed transaction's latency.
func (c *Collector) RecordCommit(lat rt.Duration, synced bool) {
	if !c.Measuring {
		return
	}
	c.Committed++
	c.Latency.Add(lat)
	if synced {
		c.Synced++
	}
}

// RecordConflictAbort records an abort due to contention.
func (c *Collector) RecordConflictAbort() {
	if !c.Measuring {
		return
	}
	c.AbortedConflicts++
}

// RecordDropped records a request abandoned on an unrecoverable
// execution error.
func (c *Collector) RecordDropped() {
	if !c.Measuring {
		return
	}
	c.Dropped++
}

// RecordLivelock records a request that hit the executor's retry-attempt
// bound. The caller still records the drop; this is the distinct counter.
func (c *Collector) RecordLivelock() {
	if !c.Measuring {
		return
	}
	c.Livelocked++
}

// RecordTreatyGenFailure records a cleanup round that committed its
// winning transaction but failed to generate fresh treaties (the system
// installed safe pin treaties instead).
func (c *Collector) RecordTreatyGenFailure() {
	if !c.Measuring {
		return
	}
	c.TreatyGenFailures++
}

// RecordNegotiation records one cleanup round's communication latency.
func (c *Collector) RecordNegotiation(d rt.Duration) {
	if !c.Measuring {
		return
	}
	c.NegotiationLatency.Add(d)
}

// RecordFabricError records a site-fabric degradation (failed peer
// install, expired round grant). Not gated on Measuring: degradations are
// operational signals, not workload measurements.
func (c *Collector) RecordFabricError() {
	c.FabricErrors++
}

// RecordRoundAdopted records a coordinator failover that adopted the
// round's winning commit (its state install had completed locally). Not
// gated on Measuring: failovers are operational signals.
func (c *Collector) RecordRoundAdopted() {
	c.RoundsAdopted++
}

// RecordRoundAborted records a coordinator failover that released the
// round without effects (its state install never arrived). Not gated on
// Measuring: failovers are operational signals.
func (c *Collector) RecordRoundAborted() {
	c.RoundsAborted++
}

// RecordAnalysisCache records one class registration's artifact-cache
// outcome. Not gated on Measuring: cache behavior is an operational
// signal, not a workload measurement.
func (c *Collector) RecordAnalysisCache(hit bool) {
	if hit {
		c.AnalysisCacheHits++
	} else {
		c.AnalysisCacheMisses++
	}
}

// RecordSolverWarm records one warm-started negotiation solve: started
// reports whether the fast path held, fellBack whether it conflicted
// into the full solve. Not gated on Measuring: solver behavior is an
// operational signal.
func (c *Collector) RecordSolverWarm(started, fellBack bool) {
	if started {
		c.SolverWarmStarts++
	}
	if fellBack {
		c.SolverFallbacks++
	}
}

// RecordCoWinner records a transaction committed by joining another
// violator's cleanup round instead of running its own.
func (c *Collector) RecordCoWinner() {
	if !c.Measuring {
		return
	}
	c.CoWinnerCommits++
}

// Throughput returns committed transactions per second of virtual time in
// the measuring window.
func (c *Collector) Throughput() float64 {
	window := rt.Duration(c.End - c.Start)
	if window <= 0 {
		return 0
	}
	return float64(c.Committed) / window.Seconds()
}

// ThroughputAt returns committed transactions per second over the window
// [Start, now] without mutating the collector, for read-only observers
// (e.g. a stats endpoint computing a rolling rate on a live system).
func (c *Collector) ThroughputAt(now rt.Time) float64 {
	window := rt.Duration(now - c.Start)
	if window <= 0 {
		return 0
	}
	return float64(c.Committed) / window.Seconds()
}

// SyncRatio returns the percentage of committed transactions that
// required synchronization.
func (c *Collector) SyncRatio() float64 {
	if c.Committed == 0 {
		return 0
	}
	return 100 * float64(c.Synced) / float64(c.Committed)
}

// Snapshot is a point-in-time, read-only copy of a collector's counters
// and latency percentiles, safe to marshal and ship after the collector
// lock (the runtime's execution right) is released. It backs the public
// API's Stats and the /v1/stats wire format.
type Snapshot struct {
	Committed         int64
	Synced            int64
	ConflictAborts    int64
	Dropped           int64
	Livelocked        int64
	TreatyGenFailures int64
	CoWinnerCommits   int64

	SyncRatioPct float64
	Throughput   float64 // committed txn/s over [Start, now]

	LatencyP50  rt.Duration
	LatencyP90  rt.Duration
	LatencyP99  rt.Duration
	LatencyMax  rt.Duration
	LatencyMean rt.Duration

	// Negotiations is the number of cleanup rounds this collector timed;
	// NegLatencyP50/P99 are percentiles of their communication cost.
	Negotiations  int64
	NegLatencyP50 rt.Duration
	NegLatencyP99 rt.Duration
	FabricErrors  int64

	// RoundsAdopted/RoundsAborted count coordinator failovers resolved by
	// adopting the round's winner vs. releasing the grant untouched.
	RoundsAdopted int64
	RoundsAborted int64

	// AnalysisCacheHits/Misses count registrations served by the artifact
	// cache vs. analyzed from scratch; SolverWarmStarts/SolverFallbacks
	// split warm-started negotiation solves by whether the fast path held.
	AnalysisCacheHits   int64
	AnalysisCacheMisses int64
	SolverWarmStarts    int64
	SolverFallbacks     int64
}

// SnapshotAt captures the collector's state with the throughput window
// closed at now. It never changes any counter (see ThroughputAt), so a
// read-only observer (stats endpoint, SSE stream) can call it repeatedly;
// call it while holding the runtime's execution right — the percentile
// computation re-sorts the histogram's internal sample buffer.
func (c *Collector) SnapshotAt(now rt.Time) Snapshot {
	return Snapshot{
		Committed:         c.Committed,
		Synced:            c.Synced,
		ConflictAborts:    c.AbortedConflicts,
		Dropped:           c.Dropped,
		Livelocked:        c.Livelocked,
		TreatyGenFailures: c.TreatyGenFailures,
		CoWinnerCommits:   c.CoWinnerCommits,
		SyncRatioPct:      c.SyncRatio(),
		Throughput:        c.ThroughputAt(now),
		LatencyP50:        c.Latency.Percentile(50),
		LatencyP90:        c.Latency.Percentile(90),
		LatencyP99:        c.Latency.Percentile(99),
		LatencyMax:        c.Latency.Max(),
		LatencyMean:       c.Latency.Mean(),
		Negotiations:      int64(c.NegotiationLatency.N()),
		NegLatencyP50:     c.NegotiationLatency.Percentile(50),
		NegLatencyP99:     c.NegotiationLatency.Percentile(99),
		FabricErrors:      c.FabricErrors,
		RoundsAdopted:     c.RoundsAdopted,
		RoundsAborted:     c.RoundsAborted,

		AnalysisCacheHits:   c.AnalysisCacheHits,
		AnalysisCacheMisses: c.AnalysisCacheMisses,
		SolverWarmStarts:    c.SolverWarmStarts,
		SolverFallbacks:     c.SolverFallbacks,
	}
}
