// Package store implements each site's local transactional storage: an
// in-memory object->int64 store guarded by a strict two-phase-locking
// manager with shared/exclusive locks, lock upgrades, wait-for-graph
// deadlock detection, and a configurable lock-wait timeout (the paper's
// MySQL deployment used innodb_lock_wait_timeout = 1s, which produces the
// long latency tail discussed in Section 6.2).
//
// The store also tracks the set of objects written since the start of the
// current protocol round; the homeostasis cleanup phase broadcasts exactly
// this dirty set (Section 3.3).
package store

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/lang"
	"repro/internal/rt"
)

// Lock-acquisition failures. Both abort the requesting transaction.
var (
	// ErrLockTimeout is returned when a lock wait exceeds the store's
	// timeout.
	ErrLockTimeout = errors.New("store: lock wait timeout exceeded")
	// ErrDeadlock is returned when granting the request would create a
	// wait-for cycle; the requester is chosen as the victim.
	ErrDeadlock = errors.New("store: deadlock detected")
)

// LockMode distinguishes shared from exclusive locks.
type LockMode int

const (
	// LockS is a shared (read) lock.
	LockS LockMode = iota
	// LockX is an exclusive (write) lock.
	LockX
)

func (m LockMode) String() string {
	if m == LockS {
		return "S"
	}
	return "X"
}

// Store is one site's local database.
type Store struct {
	e  rt.Runtime
	db lang.Database

	locks *lockTable

	// dirty is the set of objects written by committed transactions since
	// the last ResetDirty (i.e. since the current round began).
	dirty map[lang.ObjID]bool

	// LockTimeout bounds lock waits; zero means wait forever.
	LockTimeout rt.Duration

	nextTxnID int

	// Stats.
	Commits   int64
	Aborts    int64
	Deadlocks int64
	Timeouts  int64
}

// New creates a store with a copy of the initial database.
func New(e rt.Runtime, initial lang.Database) *Store {
	return &Store{
		e:     e,
		db:    initial.Clone(),
		locks: newLockTable(e),
		dirty: make(map[lang.ObjID]bool),
	}
}

// Get reads an object without any locking (used by the protocol layer
// outside transaction scope, e.g. when assembling synchronization
// messages).
func (s *Store) Get(obj lang.ObjID) int64 { return s.db.Get(obj) }

// Apply installs a value without locking or dirty tracking (used when
// applying remote synchronization state during cleanup).
func (s *Store) Apply(obj lang.ObjID, v int64) { s.db.Set(obj, v) }

// Snapshot returns a copy of the full database.
func (s *Store) Snapshot() lang.Database { return s.db.Clone() }

// DirtySet returns the objects written since the last ResetDirty, with
// their current values, in deterministic order.
func (s *Store) DirtySet() []ObjValue {
	out := make([]ObjValue, 0, len(s.dirty))
	for obj := range s.dirty {
		out = append(out, ObjValue{Obj: obj, Value: s.db.Get(obj)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Obj < out[j].Obj })
	return out
}

// ResetDirty clears the dirty set (start of a new round).
func (s *Store) ResetDirty() { s.dirty = make(map[lang.ObjID]bool) }

// ObjValue is an (object, value) pair used in synchronization messages.
type ObjValue struct {
	Obj   lang.ObjID
	Value int64
}

// Txn is an open transaction holding locks. All methods must be called
// from the owning process.
type Txn struct {
	s      *Store
	p      rt.Proc
	id     int
	undo   []ObjValue
	wrote  map[lang.ObjID]bool
	closed bool
}

// Begin opens a transaction.
func (s *Store) Begin(p rt.Proc) *Txn {
	s.nextTxnID++
	return &Txn{
		s:     s,
		p:     p,
		id:    s.nextTxnID,
		wrote: make(map[lang.ObjID]bool),
	}
}

// ID returns the transaction's store-local identifier.
func (t *Txn) ID() int { return t.id }

// Read acquires a shared lock and returns the object's value.
func (t *Txn) Read(obj lang.ObjID) (int64, error) {
	if t.closed {
		return 0, fmt.Errorf("store: read on closed transaction")
	}
	if err := t.s.locks.acquire(t.p, t, obj, LockS, t.s.LockTimeout); err != nil {
		return 0, err
	}
	return t.s.db.Get(obj), nil
}

// Write acquires an exclusive lock and installs the value, recording undo
// information.
func (t *Txn) Write(obj lang.ObjID, v int64) error {
	if t.closed {
		return fmt.Errorf("store: write on closed transaction")
	}
	if err := t.s.locks.acquire(t.p, t, obj, LockX, t.s.LockTimeout); err != nil {
		return err
	}
	if !t.wrote[obj] {
		t.undo = append(t.undo, ObjValue{Obj: obj, Value: t.s.db.Get(obj)})
		t.wrote[obj] = true
	}
	t.s.db.Set(obj, v)
	return nil
}

// Commit makes the transaction's writes durable in the dirty set and
// releases all locks.
func (t *Txn) Commit() {
	if t.closed {
		return
	}
	t.closed = true
	for obj := range t.wrote {
		t.s.dirty[obj] = true
	}
	t.s.Commits++
	t.s.locks.releaseAll(t)
}

// Abort rolls back the transaction's writes and releases all locks.
func (t *Txn) Abort() {
	if t.closed {
		return
	}
	t.closed = true
	for i := len(t.undo) - 1; i >= 0; i-- {
		t.s.db.Set(t.undo[i].Obj, t.undo[i].Value)
	}
	t.s.Aborts++
	t.s.locks.releaseAll(t)
}

// lockReq is one entry in an object's lock queue.
type lockReq struct {
	txn     *Txn
	proc    rt.Proc
	mode    LockMode
	granted bool
	// upgrade marks an S->X upgrade request.
	upgrade bool
	// timedOut is set by the timeout event so the waiter can distinguish
	// wake reasons.
	timedOut bool
}

type lockTable struct {
	e      rt.Runtime
	queues map[lang.ObjID][]*lockReq
	// held maps txn id -> objects it holds locks on (for release).
	held map[int]map[lang.ObjID]bool
}

func newLockTable(e rt.Runtime) *lockTable {
	return &lockTable{
		e:      e,
		queues: make(map[lang.ObjID][]*lockReq),
		held:   make(map[int]map[lang.ObjID]bool),
	}
}

func compatible(a, b LockMode) bool { return a == LockS && b == LockS }

// findReq returns the queue entry of txn for obj, if any.
func findReq(q []*lockReq, txn *Txn) *lockReq {
	for _, r := range q {
		if r.txn.id == txn.id {
			return r
		}
	}
	return nil
}

// canGrant decides whether req (in q) can be granted now.
func canGrant(q []*lockReq, req *lockReq) bool {
	if req.upgrade {
		// Upgrade succeeds when req's transaction is the only granted
		// holder.
		for _, r := range q {
			if r != req && r.granted && r.txn.id != req.txn.id {
				return false
			}
		}
		return true
	}
	// FIFO: all earlier queue entries must be compatible granted holders
	// or compatible waiting requests (no barging past waiters).
	for _, r := range q {
		if r == req {
			return true
		}
		if r.txn.id == req.txn.id {
			continue
		}
		if !compatible(r.mode, req.mode) {
			return false
		}
	}
	return true
}

func (lt *lockTable) acquire(p rt.Proc, txn *Txn, obj lang.ObjID, mode LockMode, timeout rt.Duration) error {
	q := lt.queues[obj]
	if existing := findReq(q, txn); existing != nil && existing.granted {
		if existing.mode >= mode {
			return nil // already held at sufficient strength
		}
		// S -> X upgrade.
		existing.upgrade = true
		existing.mode = LockX
		if canGrant(lt.queues[obj], existing) {
			existing.upgrade = false
			return nil
		}
		return lt.wait(p, txn, obj, existing, timeout)
	}
	req := &lockReq{txn: txn, proc: p, mode: mode}
	lt.queues[obj] = append(lt.queues[obj], req)
	if canGrant(lt.queues[obj], req) {
		req.granted = true
		lt.noteHeld(txn, obj)
		return nil
	}
	return lt.wait(p, txn, obj, req, timeout)
}

func (lt *lockTable) noteHeld(txn *Txn, obj lang.ObjID) {
	m, ok := lt.held[txn.id]
	if !ok {
		m = make(map[lang.ObjID]bool)
		lt.held[txn.id] = m
	}
	m[obj] = true
}

// wait parks until the request is granted, times out, or would deadlock.
func (lt *lockTable) wait(p rt.Proc, txn *Txn, obj lang.ObjID, req *lockReq, timeout rt.Duration) error {
	if lt.wouldDeadlock(txn, obj) {
		lt.removeReq(obj, req)
		txn.s.Deadlocks++
		return ErrDeadlock
	}
	var deadline rt.Time = -1
	if timeout > 0 {
		deadline = lt.e.Now() + rt.Time(timeout)
	}
	for {
		token := p.PrepPark()
		if deadline >= 0 {
			lt.e.At(deadline, func() {
				if !req.granted {
					req.timedOut = true
					p.WakeIf(token)
				}
			})
		}
		p.Park()
		if req.granted && !req.upgrade {
			lt.noteHeld(txn, obj)
			return nil
		}
		if req.granted && req.upgrade {
			// Upgrade completed by grantWaiters.
			req.upgrade = false
			return nil
		}
		if req.timedOut || (deadline >= 0 && lt.e.Now() >= deadline) {
			lt.removeReq(obj, req)
			txn.s.Timeouts++
			return ErrLockTimeout
		}
	}
}

// wouldDeadlock reports whether txn waiting on obj creates a wait-for
// cycle. Edges: a waiting transaction waits for every incompatible granted
// holder of the object it wants.
func (lt *lockTable) wouldDeadlock(txn *Txn, obj lang.ObjID) bool {
	// Build the wait-for graph.
	waitsFor := make(map[int][]int)
	addEdges := func(waiter *lockReq, o lang.ObjID) {
		for _, r := range lt.queues[o] {
			if r.granted && r.txn.id != waiter.txn.id && !compatible(r.mode, waiter.mode) {
				waitsFor[waiter.txn.id] = append(waitsFor[waiter.txn.id], r.txn.id)
			}
		}
	}
	for o, q := range lt.queues {
		for _, r := range q {
			if !r.granted || r.upgrade {
				addEdges(r, o)
			}
		}
	}
	// Hypothetical edge set for txn waiting on obj.
	for _, r := range lt.queues[obj] {
		if r.granted && r.txn.id != txn.id {
			waitsFor[txn.id] = append(waitsFor[txn.id], r.txn.id)
		}
	}
	// DFS from txn looking for a cycle back to txn.
	seen := make(map[int]bool)
	var dfs func(id int) bool
	dfs = func(id int) bool {
		if seen[id] {
			return false
		}
		seen[id] = true
		for _, next := range waitsFor[id] {
			if next == txn.id || dfs(next) {
				return true
			}
		}
		return false
	}
	for _, next := range waitsFor[txn.id] {
		if next == txn.id || dfs(next) {
			return true
		}
	}
	return false
}

func (lt *lockTable) removeReq(obj lang.ObjID, req *lockReq) {
	q := lt.queues[obj]
	for i, r := range q {
		if r == req {
			lt.queues[obj] = append(q[:i], q[i+1:]...)
			break
		}
	}
	lt.grantWaiters(obj)
}

// releaseAll frees every lock txn holds and re-evaluates waiters.
func (lt *lockTable) releaseAll(txn *Txn) {
	objs := lt.held[txn.id]
	delete(lt.held, txn.id)
	// Also remove any pending (ungranted) requests.
	var pendingObjs []lang.ObjID
	for o, q := range lt.queues {
		for _, r := range q {
			if r.txn.id == txn.id && !r.granted {
				pendingObjs = append(pendingObjs, o)
			}
		}
	}
	for _, o := range pendingObjs {
		q := lt.queues[o]
		out := q[:0]
		for _, r := range q {
			if r.txn.id != txn.id || r.granted {
				out = append(out, r)
			}
		}
		lt.queues[o] = out
	}
	for o := range objs {
		q := lt.queues[o]
		out := q[:0]
		for _, r := range q {
			if r.txn.id != txn.id {
				out = append(out, r)
			}
		}
		if len(out) == 0 {
			delete(lt.queues, o)
		} else {
			lt.queues[o] = out
		}
		lt.grantWaiters(o)
	}
	sortObjs(pendingObjs)
	for _, o := range pendingObjs {
		lt.grantWaiters(o)
	}
}

func sortObjs(objs []lang.ObjID) {
	sort.Slice(objs, func(i, j int) bool { return objs[i] < objs[j] })
}

// grantWaiters grants every request that has become grantable and wakes
// its process.
func (lt *lockTable) grantWaiters(obj lang.ObjID) {
	q := lt.queues[obj]
	for _, r := range q {
		if r.granted && !r.upgrade {
			continue
		}
		if canGrant(q, r) {
			r.granted = true
			if r.upgrade {
				// Leave r.upgrade set; wait() clears it on wake so the
				// waiter can distinguish upgrade completion.
				lt.noteHeld(r.txn, obj)
			}
			proc := r.proc
			token := proc != nil
			if token {
				tok := procToken(proc)
				lt.e.At(lt.e.Now(), func() { proc.WakeIf(tok) })
			}
		}
	}
}

// procToken exposes the current park token of a process for deferred
// wakes. (Relies on the rt execution contract: the process is parked
// while this runs, and wake events hold the execution right.)
func procToken(p rt.Proc) int64 { return p.Token() }
