// Package store implements each site's local transactional storage: an
// in-memory object->int64 store guarded by a strict two-phase-locking
// manager with shared/exclusive locks, lock upgrades, wait-for-graph
// deadlock detection, and a configurable lock-wait timeout (the paper's
// MySQL deployment used innodb_lock_wait_timeout = 1s, which produces the
// long latency tail discussed in Section 6.2).
//
// The store also tracks the set of objects written since the start of the
// current protocol round; the homeostasis cleanup phase broadcasts exactly
// this dirty set (Section 3.3).
package store

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/lang"
	"repro/internal/rt"
)

// Lock-acquisition failures. Both abort the requesting transaction.
var (
	// ErrLockTimeout is returned when a lock wait exceeds the store's
	// timeout.
	ErrLockTimeout = errors.New("store: lock wait timeout exceeded")
	// ErrDeadlock is returned when granting the request would create a
	// wait-for cycle; the requester is chosen as the victim.
	ErrDeadlock = errors.New("store: deadlock detected")
)

// LockMode distinguishes shared from exclusive locks.
type LockMode int

const (
	// LockS is a shared (read) lock.
	LockS LockMode = iota
	// LockX is an exclusive (write) lock.
	LockX
)

func (m LockMode) String() string {
	if m == LockS {
		return "S"
	}
	return "X"
}

// Store is one site's local database.
type Store struct {
	e  rt.Runtime
	db lang.Database

	locks *lockTable

	// dirty is the set of objects written by committed transactions since
	// the last ResetDirty (i.e. since the current round began).
	dirty map[lang.ObjID]bool

	// freeTxns recycles finished transactions (see Recycle) so the
	// commit fast path does not allocate a Txn per request. Accessed
	// only under the runtime's execution right, like all store state.
	freeTxns []*Txn

	// LockTimeout bounds lock waits; zero means wait forever.
	LockTimeout rt.Duration

	nextTxnID int

	// Stats.
	Commits   int64
	Aborts    int64
	Deadlocks int64
	Timeouts  int64
}

// New creates a store with a copy of the initial database.
func New(e rt.Runtime, initial lang.Database) *Store {
	return &Store{
		e:     e,
		db:    initial.Clone(),
		locks: newLockTable(e),
		dirty: make(map[lang.ObjID]bool),
	}
}

// Get reads an object without any locking (used by the protocol layer
// outside transaction scope, e.g. when assembling synchronization
// messages).
func (s *Store) Get(obj lang.ObjID) int64 { return s.db.Get(obj) }

// Apply installs a value without locking or dirty tracking (used when
// applying remote synchronization state during cleanup).
func (s *Store) Apply(obj lang.ObjID, v int64) { s.db.Set(obj, v) }

// Snapshot returns a copy of the full database.
func (s *Store) Snapshot() lang.Database { return s.db.Clone() }

// DirtySet returns the objects written since the last ResetDirty, with
// their current values, in deterministic order.
func (s *Store) DirtySet() []ObjValue {
	out := make([]ObjValue, 0, len(s.dirty))
	for obj := range s.dirty {
		out = append(out, ObjValue{Obj: obj, Value: s.db.Get(obj)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Obj < out[j].Obj })
	return out
}

// ResetDirty clears the dirty set (start of a new round).
func (s *Store) ResetDirty() {
	for obj := range s.dirty {
		delete(s.dirty, obj)
	}
}

// ObjValue is an (object, value) pair used in synchronization messages.
type ObjValue struct {
	Obj   lang.ObjID
	Value int64
}

// Txn is an open transaction holding locks. All methods must be called
// from the owning process.
type Txn struct {
	s    *Store
	p    rt.Proc
	id   int
	undo []ObjValue
	// held lists the objects this transaction holds granted locks on,
	// in grant order; releaseAll walks it instead of a per-txn map.
	held []lang.ObjID
	// waitObj/waiting name the single lock wait in progress (a process
	// waits on at most one lock at a time). releaseAll uses them to
	// clear the pending queue entry a cancelled wait leaves behind.
	waitObj lang.ObjID
	waiting bool
	closed  bool
}

// Begin opens a transaction, reusing a recycled one when available.
//
//homeo:hotpath
//homeo:checkout store.txn
func (s *Store) Begin(p rt.Proc) *Txn {
	s.nextTxnID++
	var t *Txn
	if n := len(s.freeTxns); n > 0 {
		t = s.freeTxns[n-1]
		s.freeTxns[n-1] = nil
		s.freeTxns = s.freeTxns[:n-1]
		t.undo = t.undo[:0]
		t.held = t.held[:0]
		t.waiting = false
		t.closed = false
	} else {
		t = &Txn{s: s}
	}
	t.p = p
	t.id = s.nextTxnID
	return t
}

// Recycle returns a finished (committed or aborted) transaction to the
// store's free list for reuse by a later Begin. The caller must hold no
// further references; recycling an open transaction is a no-op.
//
//homeo:release store.txn
func (s *Store) Recycle(t *Txn) {
	if t == nil || !t.closed {
		return
	}
	s.freeTxns = append(s.freeTxns, t)
}

// ID returns the transaction's store-local identifier.
func (t *Txn) ID() int { return t.id }

// Read acquires a shared lock and returns the object's value.
func (t *Txn) Read(obj lang.ObjID) (int64, error) {
	if t.closed {
		return 0, fmt.Errorf("store: read on closed transaction")
	}
	if err := t.s.locks.acquire(t.p, t, obj, LockS, t.s.LockTimeout); err != nil {
		return 0, err
	}
	return t.s.db.Get(obj), nil
}

// Write acquires an exclusive lock and installs the value, recording undo
// information.
func (t *Txn) Write(obj lang.ObjID, v int64) error {
	if t.closed {
		return fmt.Errorf("store: write on closed transaction")
	}
	if err := t.s.locks.acquire(t.p, t, obj, LockX, t.s.LockTimeout); err != nil {
		return err
	}
	if !t.wroteObj(obj) {
		t.undo = append(t.undo, ObjValue{Obj: obj, Value: t.s.db.Get(obj)})
	}
	t.s.db.Set(obj, v)
	return nil
}

// wroteObj reports whether the transaction already wrote obj (one undo
// entry per object). Transactions touch a handful of objects, so a
// linear scan beats a per-txn map.
func (t *Txn) wroteObj(obj lang.ObjID) bool {
	for i := range t.undo {
		if t.undo[i].Obj == obj {
			return true
		}
	}
	return false
}

// Commit makes the transaction's writes durable in the dirty set and
// releases all locks.
func (t *Txn) Commit() {
	if t.closed {
		return
	}
	t.closed = true
	for i := range t.undo {
		t.s.dirty[t.undo[i].Obj] = true
	}
	t.s.Commits++
	t.s.locks.releaseAll(t)
}

// Abort rolls back the transaction's writes and releases all locks.
func (t *Txn) Abort() {
	if t.closed {
		return
	}
	t.closed = true
	for i := len(t.undo) - 1; i >= 0; i-- {
		t.s.db.Set(t.undo[i].Obj, t.undo[i].Value)
	}
	t.s.Aborts++
	t.s.locks.releaseAll(t)
}

// lockReq is one entry in an object's lock queue.
type lockReq struct {
	txn     *Txn
	proc    rt.Proc
	mode    LockMode
	granted bool
	// upgrade marks an S->X upgrade request.
	upgrade bool
	// timedOut is set by the timeout event so the waiter can distinguish
	// wake reasons.
	timedOut bool
	// waited marks a request whose wait armed a timeout event. The
	// event's closure retains the request past its removal from the
	// queue, so waited requests must not return to the free list.
	waited bool
}

type lockTable struct {
	e      rt.Runtime
	queues map[lang.ObjID][]*lockReq
	// freeReqs and freeQs recycle queue entries and emptied queue
	// slices so the uncontended acquire/release cycle does not allocate.
	freeReqs []*lockReq
	freeQs   [][]*lockReq
}

func newLockTable(e rt.Runtime) *lockTable {
	return &lockTable{
		e:      e,
		queues: make(map[lang.ObjID][]*lockReq),
	}
}

// newReq checks a queue entry out of the free list.
//
//homeo:checkout store.lockreq
func (lt *lockTable) newReq() *lockReq {
	if n := len(lt.freeReqs); n > 0 {
		r := lt.freeReqs[n-1]
		lt.freeReqs[n-1] = nil
		lt.freeReqs = lt.freeReqs[:n-1]
		return r
	}
	return &lockReq{}
}

// freeReq returns a queue entry to the free list, unless a timeout
// closure may still hold it (see lockReq.waited).
//
//homeo:release store.lockreq
func (lt *lockTable) freeReq(r *lockReq) {
	if r.waited {
		// A pending timeout closure may still hold this request; let the
		// GC reclaim it instead of risking a reused entry being mutated.
		//homeo:leak timeout closure may still hold r; GC reclaims it
		return
	}
	*r = lockReq{}
	lt.freeReqs = append(lt.freeReqs, r)
}

func compatible(a, b LockMode) bool { return a == LockS && b == LockS }

// findReq returns the queue entry of txn for obj, if any.
func findReq(q []*lockReq, txn *Txn) *lockReq {
	for _, r := range q {
		if r.txn.id == txn.id {
			return r
		}
	}
	return nil
}

// canGrant decides whether req (in q) can be granted now.
func canGrant(q []*lockReq, req *lockReq) bool {
	if req.upgrade {
		// Upgrade succeeds when req's transaction is the only granted
		// holder.
		for _, r := range q {
			if r != req && r.granted && r.txn.id != req.txn.id {
				return false
			}
		}
		return true
	}
	// FIFO: all earlier queue entries must be compatible granted holders
	// or compatible waiting requests (no barging past waiters).
	for _, r := range q {
		if r == req {
			return true
		}
		if r.txn.id == req.txn.id {
			continue
		}
		if !compatible(r.mode, req.mode) {
			return false
		}
	}
	return true
}

func (lt *lockTable) acquire(p rt.Proc, txn *Txn, obj lang.ObjID, mode LockMode, timeout rt.Duration) error {
	q := lt.queues[obj]
	if existing := findReq(q, txn); existing != nil && existing.granted {
		if existing.mode >= mode {
			return nil // already held at sufficient strength
		}
		// S -> X upgrade.
		existing.upgrade = true
		existing.mode = LockX
		if canGrant(lt.queues[obj], existing) {
			existing.upgrade = false
			return nil
		}
		return lt.wait(p, txn, obj, existing, timeout)
	}
	req := lt.newReq()
	req.txn, req.proc, req.mode = txn, p, mode
	if q == nil {
		if n := len(lt.freeQs); n > 0 {
			q = lt.freeQs[n-1]
			lt.freeQs[n-1] = nil
			lt.freeQs = lt.freeQs[:n-1]
		}
	}
	lt.queues[obj] = append(q, req)
	if canGrant(lt.queues[obj], req) {
		req.granted = true
		txn.held = append(txn.held, obj)
		return nil
	}
	return lt.wait(p, txn, obj, req, timeout)
}

// wait parks until the request is granted, times out, or would deadlock.
func (lt *lockTable) wait(p rt.Proc, txn *Txn, obj lang.ObjID, req *lockReq, timeout rt.Duration) error {
	if lt.wouldDeadlock(txn, obj) {
		lt.removeReq(obj, req)
		lt.freeReq(req)
		txn.s.Deadlocks++
		return ErrDeadlock
	}
	var deadline rt.Time = -1
	if timeout > 0 {
		deadline = lt.e.Now() + rt.Time(timeout)
	}
	txn.waitObj, txn.waiting = obj, true
	defer func() { txn.waiting = false }()
	for {
		token := p.PrepPark()
		if deadline >= 0 {
			req.waited = true
			lt.e.At(deadline, func() {
				if !req.granted {
					req.timedOut = true
					p.WakeIf(token)
				}
			})
		}
		p.Park()
		if req.granted && !req.upgrade {
			txn.held = append(txn.held, obj)
			return nil
		}
		if req.granted && req.upgrade {
			// Upgrade completed by grantWaiters.
			req.upgrade = false
			return nil
		}
		if req.timedOut || (deadline >= 0 && lt.e.Now() >= deadline) {
			lt.removeReq(obj, req)
			txn.s.Timeouts++
			return ErrLockTimeout
		}
	}
}

// wouldDeadlock reports whether txn waiting on obj creates a wait-for
// cycle. Edges: a waiting transaction waits for every incompatible granted
// holder of the object it wants.
func (lt *lockTable) wouldDeadlock(txn *Txn, obj lang.ObjID) bool {
	// Build the wait-for graph.
	waitsFor := make(map[int][]int)
	addEdges := func(waiter *lockReq, o lang.ObjID) {
		for _, r := range lt.queues[o] {
			if r.granted && r.txn.id != waiter.txn.id && !compatible(r.mode, waiter.mode) {
				waitsFor[waiter.txn.id] = append(waitsFor[waiter.txn.id], r.txn.id)
			}
		}
	}
	for o, q := range lt.queues {
		for _, r := range q {
			if !r.granted || r.upgrade {
				addEdges(r, o)
			}
		}
	}
	// Hypothetical edge set for txn waiting on obj.
	for _, r := range lt.queues[obj] {
		if r.granted && r.txn.id != txn.id {
			waitsFor[txn.id] = append(waitsFor[txn.id], r.txn.id)
		}
	}
	// DFS from txn looking for a cycle back to txn.
	seen := make(map[int]bool)
	var dfs func(id int) bool
	dfs = func(id int) bool {
		if seen[id] {
			return false
		}
		seen[id] = true
		for _, next := range waitsFor[id] {
			if next == txn.id || dfs(next) {
				return true
			}
		}
		return false
	}
	for _, next := range waitsFor[txn.id] {
		if next == txn.id || dfs(next) {
			return true
		}
	}
	return false
}

func (lt *lockTable) removeReq(obj lang.ObjID, req *lockReq) {
	q := lt.queues[obj]
	for i, r := range q {
		if r == req {
			lt.queues[obj] = append(q[:i], q[i+1:]...)
			break
		}
	}
	lt.grantWaiters(obj)
}

// releaseAll frees every lock txn holds and re-evaluates waiters. The
// transaction's held list replaces the old table-wide scan: release cost
// is proportional to the locks the transaction took, not to the number
// of live lock queues.
func (lt *lockTable) releaseAll(txn *Txn) {
	// A cancelled wait (process killed while parked) leaves one pending
	// request behind; wait() never returned to remove it.
	pendingObj := lang.ObjID("")
	hasPending := false
	if txn.waiting {
		txn.waiting = false
		pendingObj, hasPending = txn.waitObj, true
		q := lt.queues[pendingObj]
		out := q[:0]
		for _, r := range q {
			if r.txn.id != txn.id || r.granted {
				out = append(out, r)
			} else {
				lt.freeReq(r)
			}
		}
		lt.queues[pendingObj] = out
	}
	for _, o := range txn.held {
		q, ok := lt.queues[o]
		if !ok {
			// The entry was already removed (e.g. a timed-out upgrade
			// dropped the grant and the queue emptied meanwhile).
			continue
		}
		out := q[:0]
		for _, r := range q {
			if r.txn.id != txn.id {
				out = append(out, r)
			} else {
				lt.freeReq(r)
			}
		}
		if len(out) == 0 {
			delete(lt.queues, o)
			lt.freeQs = append(lt.freeQs, out)
		} else {
			lt.queues[o] = out
		}
		lt.grantWaiters(o)
	}
	txn.held = txn.held[:0]
	if hasPending {
		lt.grantWaiters(pendingObj)
	}
}

// grantWaiters grants every request that has become grantable and wakes
// its process.
func (lt *lockTable) grantWaiters(obj lang.ObjID) {
	q := lt.queues[obj]
	for _, r := range q {
		if r.granted && !r.upgrade {
			continue
		}
		if canGrant(q, r) {
			r.granted = true
			// An upgrade keeps r.upgrade set; wait() clears it on wake so
			// the waiter can distinguish upgrade completion. The object is
			// already on the transaction's held list from the S grant.
			proc := r.proc
			token := proc != nil
			if token {
				tok := procToken(proc)
				lt.e.At(lt.e.Now(), func() { proc.WakeIf(tok) })
			}
		}
	}
}

// procToken exposes the current park token of a process for deferred
// wakes. (Relies on the rt execution contract: the process is parked
// while this runs, and wake events hold the execution right.)
func procToken(p rt.Proc) int64 { return p.Token() }
