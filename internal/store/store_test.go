package store

import (
	"testing"

	"repro/internal/lang"
	"repro/internal/rt"
	"repro/internal/sim"
)

func TestBasicReadWriteCommit(t *testing.T) {
	e := sim.NewEngine(1)
	s := New(e, lang.Database{"x": 10})
	var got int64
	e.Spawn(0, func(p rt.Proc) {
		txn := s.Begin(p)
		v, err := txn.Read("x")
		if err != nil {
			t.Errorf("read: %v", err)
		}
		if err := txn.Write("x", v+1); err != nil {
			t.Errorf("write: %v", err)
		}
		txn.Commit()
		got = s.Get("x")
	})
	e.Run()
	if got != 11 {
		t.Fatalf("x = %d, want 11", got)
	}
	if s.Commits != 1 {
		t.Fatalf("commits = %d", s.Commits)
	}
}

func TestAbortRollsBack(t *testing.T) {
	e := sim.NewEngine(1)
	s := New(e, lang.Database{"x": 10, "y": 20})
	e.Spawn(0, func(p rt.Proc) {
		txn := s.Begin(p)
		_ = txn.Write("x", 99)
		_ = txn.Write("y", 98)
		_ = txn.Write("x", 97) // second write to same object
		txn.Abort()
	})
	e.Run()
	if s.Get("x") != 10 || s.Get("y") != 20 {
		t.Fatalf("rollback failed: x=%d y=%d", s.Get("x"), s.Get("y"))
	}
	if len(s.DirtySet()) != 0 {
		t.Fatalf("aborted txn polluted dirty set: %v", s.DirtySet())
	}
}

func TestDirtySetTracksCommittedWrites(t *testing.T) {
	e := sim.NewEngine(1)
	s := New(e, lang.Database{"a": 1, "b": 2, "c": 3})
	e.Spawn(0, func(p rt.Proc) {
		t1 := s.Begin(p)
		_ = t1.Write("a", 10)
		t1.Commit()
		t2 := s.Begin(p)
		_ = t2.Write("b", 20)
		t2.Abort()
	})
	e.Run()
	ds := s.DirtySet()
	if len(ds) != 1 || ds[0].Obj != "a" || ds[0].Value != 10 {
		t.Fatalf("dirty set = %v, want [{a 10}]", ds)
	}
	s.ResetDirty()
	if len(s.DirtySet()) != 0 {
		t.Fatal("ResetDirty did not clear")
	}
}

func TestSharedLocksCoexist(t *testing.T) {
	e := sim.NewEngine(1)
	s := New(e, lang.Database{"x": 5})
	reads := 0
	for i := 0; i < 3; i++ {
		e.Spawn(i, func(p rt.Proc) {
			txn := s.Begin(p)
			if _, err := txn.Read("x"); err != nil {
				t.Errorf("read: %v", err)
			}
			reads++
			p.Sleep(10 * sim.Millisecond) // hold the S lock
			txn.Commit()
		})
	}
	end := e.Run()
	if reads != 3 {
		t.Fatalf("reads = %d", reads)
	}
	// All three held S locks concurrently: total time 10ms, not 30ms.
	if end != sim.Time(10*sim.Millisecond) {
		t.Fatalf("end = %v, want 10ms (concurrent shared locks)", sim.Duration(end))
	}
}

func TestExclusiveBlocksAndFIFO(t *testing.T) {
	e := sim.NewEngine(1)
	s := New(e, lang.Database{"x": 0})
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		e.Spawn(i, func(p rt.Proc) {
			p.Sleep(sim.Duration(i) * sim.Millisecond) // stagger arrival
			txn := s.Begin(p)
			if err := txn.Write("x", int64(i)); err != nil {
				t.Errorf("write: %v", err)
				return
			}
			order = append(order, i)
			p.Sleep(10 * sim.Millisecond)
			txn.Commit()
		})
	}
	e.Run()
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("grant order = %v, want FIFO [0 1 2]", order)
	}
	if s.Get("x") != 2 {
		t.Fatalf("x = %d, want 2", s.Get("x"))
	}
}

func TestWriterBlocksReader(t *testing.T) {
	e := sim.NewEngine(1)
	s := New(e, lang.Database{"x": 1})
	var readAt sim.Time
	var readVal int64
	e.Spawn(0, func(p rt.Proc) {
		txn := s.Begin(p)
		_ = txn.Write("x", 42)
		p.Sleep(20 * sim.Millisecond)
		txn.Commit()
	})
	e.Spawn(1, func(p rt.Proc) {
		p.Sleep(1 * sim.Millisecond)
		txn := s.Begin(p)
		v, err := txn.Read("x")
		if err != nil {
			t.Errorf("read: %v", err)
		}
		readAt = p.Now()
		readVal = v
		txn.Commit()
	})
	e.Run()
	if readAt != sim.Time(20*sim.Millisecond) {
		t.Fatalf("reader unblocked at %v, want 20ms", sim.Duration(readAt))
	}
	// Strict 2PL: the reader sees the committed value, never dirty data.
	if readVal != 42 {
		t.Fatalf("read %d, want 42", readVal)
	}
}

func TestLockTimeout(t *testing.T) {
	e := sim.NewEngine(1)
	s := New(e, lang.Database{"x": 1})
	s.LockTimeout = 50 * sim.Millisecond
	var gotErr error
	var at sim.Time
	e.Spawn(0, func(p rt.Proc) {
		txn := s.Begin(p)
		_ = txn.Write("x", 2)
		p.Sleep(sim.Second) // hold X lock a long time
		txn.Commit()
	})
	e.Spawn(1, func(p rt.Proc) {
		p.Sleep(1 * sim.Millisecond)
		txn := s.Begin(p)
		_, gotErr = txn.Read("x")
		at = p.Now()
		txn.Abort()
	})
	e.Run()
	if gotErr != ErrLockTimeout {
		t.Fatalf("err = %v, want ErrLockTimeout", gotErr)
	}
	if at != sim.Time(51*sim.Millisecond) {
		t.Fatalf("timed out at %v, want 51ms", sim.Duration(at))
	}
	if s.Timeouts != 1 {
		t.Fatalf("timeouts = %d", s.Timeouts)
	}
}

func TestDeadlockDetection(t *testing.T) {
	e := sim.NewEngine(1)
	s := New(e, lang.Database{"a": 1, "b": 2})
	var errs []error
	e.Spawn(0, func(p rt.Proc) {
		txn := s.Begin(p)
		_ = txn.Write("a", 10)
		p.Sleep(5 * sim.Millisecond)
		err := txn.Write("b", 11) // t1 holds a, wants b
		if err != nil {
			errs = append(errs, err)
			txn.Abort()
			return
		}
		txn.Commit()
	})
	e.Spawn(1, func(p rt.Proc) {
		p.Sleep(1 * sim.Millisecond)
		txn := s.Begin(p)
		_ = txn.Write("b", 20)
		p.Sleep(10 * sim.Millisecond)
		err := txn.Write("a", 21) // t2 holds b, wants a: cycle
		if err != nil {
			errs = append(errs, err)
			txn.Abort()
			return
		}
		txn.Commit()
	})
	e.Run()
	if len(errs) != 1 || errs[0] != ErrDeadlock {
		t.Fatalf("errs = %v, want one ErrDeadlock", errs)
	}
	if s.Deadlocks != 1 {
		t.Fatalf("deadlocks = %d", s.Deadlocks)
	}
	// The victim aborted; the survivor committed both writes.
	if s.Get("a") == 1 {
		t.Fatal("no transaction won the deadlock")
	}
}

func TestLockUpgrade(t *testing.T) {
	e := sim.NewEngine(1)
	s := New(e, lang.Database{"x": 1})
	e.Spawn(0, func(p rt.Proc) {
		txn := s.Begin(p)
		if _, err := txn.Read("x"); err != nil {
			t.Errorf("read: %v", err)
		}
		// Upgrade S -> X with no other holders: immediate.
		if err := txn.Write("x", 2); err != nil {
			t.Errorf("upgrade write: %v", err)
		}
		txn.Commit()
	})
	e.Run()
	if s.Get("x") != 2 {
		t.Fatalf("x = %d", s.Get("x"))
	}
}

func TestLockUpgradeWaitsForReaders(t *testing.T) {
	e := sim.NewEngine(1)
	s := New(e, lang.Database{"x": 1})
	var writeAt sim.Time
	e.Spawn(0, func(p rt.Proc) {
		txn := s.Begin(p)
		_, _ = txn.Read("x")
		p.Sleep(30 * sim.Millisecond)
		txn.Commit() // release S at 30ms
	})
	e.Spawn(1, func(p rt.Proc) {
		p.Sleep(1 * sim.Millisecond)
		txn := s.Begin(p)
		_, _ = txn.Read("x")                      // shared with proc 0
		if err := txn.Write("x", 7); err != nil { // upgrade: must wait for proc 0
			t.Errorf("upgrade: %v", err)
			txn.Abort()
			return
		}
		writeAt = p.Now()
		txn.Commit()
	})
	e.Run()
	if writeAt != sim.Time(30*sim.Millisecond) {
		t.Fatalf("upgrade completed at %v, want 30ms", sim.Duration(writeAt))
	}
	if s.Get("x") != 7 {
		t.Fatalf("x = %d, want 7", s.Get("x"))
	}
}

// TestSerializabilityCounter: concurrent increments through 2PL never lose
// updates.
func TestSerializabilityCounter(t *testing.T) {
	e := sim.NewEngine(1)
	s := New(e, lang.Database{"ctr": 0})
	const n = 50
	for i := 0; i < n; i++ {
		e.Spawn(i, func(p rt.Proc) {
			// Retry on deadlock/timeout like a real client; upgrade storms
			// are expected under read-then-write contention.
			for attempt := 0; attempt < 10; attempt++ {
				txn := s.Begin(p)
				v, err := txn.Read("ctr")
				if err != nil {
					txn.Abort()
					p.Sleep(sim.Millisecond)
					continue
				}
				p.Sleep(1 * sim.Millisecond) // force interleaving pressure
				if err := txn.Write("ctr", v+1); err != nil {
					txn.Abort()
					p.Sleep(sim.Millisecond)
					continue
				}
				txn.Commit()
				return
			}
		})
	}
	e.Run()
	// All 50 increments must be applied: with 2PL and upgrades, some may
	// deadlock-abort... here all readers acquire S simultaneously and
	// upgrades conflict; ensure committed increments equal commits count.
	if s.Get("ctr") != int64(s.Commits) {
		t.Fatalf("ctr = %d but commits = %d (lost update)", s.Get("ctr"), s.Commits)
	}
	if s.Commits == 0 {
		t.Fatal("no transaction committed")
	}
}

func TestClosedTxnRejected(t *testing.T) {
	e := sim.NewEngine(1)
	s := New(e, lang.Database{"x": 1})
	e.Spawn(0, func(p rt.Proc) {
		txn := s.Begin(p)
		txn.Commit()
		if _, err := txn.Read("x"); err == nil {
			t.Error("read after commit should fail")
		}
		if err := txn.Write("x", 2); err == nil {
			t.Error("write after commit should fail")
		}
		txn.Commit() // double commit is a no-op
		txn.Abort()  // abort after commit is a no-op
	})
	e.Run()
	if s.Commits != 1 || s.Aborts != 0 {
		t.Fatalf("commits=%d aborts=%d", s.Commits, s.Aborts)
	}
}
