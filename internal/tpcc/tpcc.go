// Package tpcc implements the Section 6.2 evaluation workload: the three
// most frequent TPC-C transactions (New Order, Payment, Delivery) over a
// replicated warehouse database, with the treaties of Appendix E:
//
//   - New Order is governed by a per-stock-entry treaty derived from
//     program analysis of the (replica-rewritten) transaction, bounding
//     the stock quantity away from the branch boundary; parameters are
//     strengthened to their worst case (order quantity 1..5).
//   - Payment updates warehouse/district/customer balances that no
//     transaction reads; after the Appendix B delta rewrite it performs
//     only blind local writes and needs no treaty — it never synchronizes.
//   - Delivery must fulfill the globally-lowest unprocessed order id, so
//     its treaty pins that id to its current value (the Appendix C.3
//     treatment of remote reads) and requires the unfulfilled-order count
//     to stay positive; every productive Delivery violates the pin and
//     synchronizes, exactly as the paper describes.
//
// Order ids are generated site-striped (id = n*K + site) so New Order
// never needs synchronization for id assignment, per the paper's
// replicated-ordering design in Appendix E.1.
package tpcc

import (
	"fmt"
	"math/rand"

	"repro/internal/lang"
	"repro/internal/lia"
	"repro/internal/logic"
	"repro/internal/symtab"
	"repro/internal/treaty"
	"repro/internal/workload"
)

// canonStock is the canonical stock object analyzed once and renamed per
// concrete stock entry.
const canonStock = lang.ObjID("q")

// NewOrderSource is the L++ source of the (single-item) New Order stock
// update, following the TPC-C stock rule: subtract the quantity, adding
// 91 when the result would drop below 10.
const NewOrderSource = `
transaction NewOrder(qty) {
	s := read(q);
	if (s - qty >= 10) then
		write(q = s - qty)
	else
		write(q = s - qty + 91)
}`

// PaymentSource is the L++ source of the balance updates (canonical
// objects wbal, dbal, cbal).
const PaymentSource = `
transaction Payment(amount) {
	w := read(wbal);
	d := read(dbal);
	c := read(cbal);
	write(wbal = w + amount);
	write(dbal = d + amount);
	write(cbal = c - amount)
}`

// DeliverySource is the L++ source of the order-fulfillment step
// (canonical objects unful and low).
const DeliverySource = `
transaction Delivery() {
	n := read(unful);
	if (n > 0) then {
		l := read(low);
		write(low = l + 1);
		write(unful = n - 1);
		print(l)
	} else
		skip
}`

// Config scales the benchmark.
type Config struct {
	// Warehouses, DistrictsPerWarehouse, and StockPerWarehouse set the
	// schema scale. The paper uses 10 warehouses, 10 districts, and
	// 100,000 total stock entries; defaults are smaller so simulations
	// stay fast, with identical structure.
	Warehouses            int
	DistrictsPerWarehouse int
	StockPerWarehouse     int
	Customers             int
	NSites                int
	// InitialStock range: uniform in [StockMin, StockMax] (paper: 0..100).
	StockMin, StockMax int64
	// HotPercent marks this percentage of items as hot (paper: 1%).
	HotPercent float64
	// H is the percentage of New Order transactions that order hot items.
	H float64
	// Mix gives the transaction percentages (NewOrder, Payment, Delivery);
	// the paper uses 45/45/10 and 49/49/2.
	MixNewOrder, MixPayment, MixDelivery int
	// Seed controls data generation.
	Seed int64
	// WarehouseAffinity enables the skewed-warehouse drift scenario: this
	// percentage of each site's New Orders target the site's current home
	// warehouse instead of the global item distribution, so stock demand
	// is heavily skewed toward one site per warehouse. Zero disables it.
	WarehouseAffinity float64
	// RotateEvery advances every site's home warehouse by one after this
	// many request draws, drifting the skew across the cluster. Zero
	// never rotates.
	RotateEvery int
}

// Workload implements workload.Workload for TPC-C.
type Workload struct {
	cfg        Config
	stockCount int
	hotCount   int
	table      *symtab.Table // canonical rewritten New Order table
	initial    lang.Database
	rotor      *workload.Rotor // drift clock (skewed-warehouse rotation)
}

// New generates the database and runs the offline analysis.
func New(cfg Config) (*Workload, error) {
	if cfg.Warehouses == 0 {
		cfg.Warehouses = 10
	}
	if cfg.DistrictsPerWarehouse == 0 {
		cfg.DistrictsPerWarehouse = 10
	}
	if cfg.StockPerWarehouse == 0 {
		cfg.StockPerWarehouse = 100
	}
	if cfg.Customers == 0 {
		cfg.Customers = 1000
	}
	if cfg.NSites <= 0 {
		return nil, fmt.Errorf("tpcc: NSites must be positive")
	}
	if cfg.StockMax == 0 {
		cfg.StockMax = 100
	}
	if cfg.HotPercent == 0 {
		cfg.HotPercent = 1
	}
	if cfg.MixNewOrder == 0 && cfg.MixPayment == 0 && cfg.MixDelivery == 0 {
		cfg.MixNewOrder, cfg.MixPayment, cfg.MixDelivery = 45, 45, 10
	}
	w := &Workload{
		cfg:        cfg,
		stockCount: cfg.Warehouses * cfg.StockPerWarehouse,
	}
	w.hotCount = int(float64(w.stockCount) * cfg.HotPercent / 100)
	if w.hotCount < 1 {
		w.hotCount = 1
	}
	// Offline analysis of the canonical New Order transaction: replica
	// rewrite, then symbolic table.
	txn, err := lang.ParseTransaction(NewOrderSource)
	if err != nil {
		return nil, err
	}
	lang.ResolveParams(txn)
	rw := lang.Simplify(lang.ReplicaRewrite(txn, 0, cfg.NSites, map[lang.ObjID]bool{canonStock: true}))
	table, err := symtab.Build(rw)
	if err != nil {
		return nil, err
	}
	w.table = table

	// Data generation.
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	db := lang.Database{}
	for s := 0; s < w.stockCount; s++ {
		span := cfg.StockMax - cfg.StockMin + 1
		db[StockObj(s)] = cfg.StockMin + rng.Int63n(span)
	}
	for wd := 0; wd < cfg.Warehouses*cfg.DistrictsPerWarehouse; wd++ {
		db[UnfulObj(wd)] = 0
		db[LowObj(wd)] = 0
	}
	w.initial = db
	w.rotor = workload.NewRotor(cfg.RotateEvery)
	return w, nil
}

// Object naming.

// StockObj names a stock entry's quantity.
func StockObj(s int) lang.ObjID { return lang.ObjID(fmt.Sprintf("stock[%d]", s)) }

// UnfulObj names the unfulfilled-order count of a (warehouse, district).
func UnfulObj(wd int) lang.ObjID { return lang.ObjID(fmt.Sprintf("unful[%d]", wd)) }

// LowObj names the lowest unprocessed order id of a (warehouse,
// district).
func LowObj(wd int) lang.ObjID { return lang.ObjID(fmt.Sprintf("low[%d]", wd)) }

// WBalObj, DBalObj and CBalObj name the Payment balances.
func WBalObj(w int) lang.ObjID  { return lang.ObjID(fmt.Sprintf("wbal[%d]", w)) }
func DBalObj(wd int) lang.ObjID { return lang.ObjID(fmt.Sprintf("dbal[%d]", wd)) }
func CBalObj(c int) lang.ObjID  { return lang.ObjID(fmt.Sprintf("cbal[%d]", c)) }

// Name implements workload.Workload.
func (w *Workload) Name() string { return "tpcc" }

// Config returns the configuration.
func (w *Workload) Config() Config { return w.cfg }

// Table exposes the canonical New Order symbolic table.
func (w *Workload) Table() *symtab.Table { return w.table }

// InitialDB implements workload.Workload.
func (w *Workload) InitialDB() lang.Database { return w.initial.Clone() }

// Unit layout: stock units first, then one delivery unit per
// (warehouse, district).
func (w *Workload) NumUnits() int {
	return w.stockCount + w.cfg.Warehouses*w.cfg.DistrictsPerWarehouse
}

func (w *Workload) deliveryUnit(wd int) int { return w.stockCount + wd }

// UnitObjects implements workload.Workload.
func (w *Workload) UnitObjects(unit int) []lang.ObjID {
	if unit < w.stockCount {
		return []lang.ObjID{StockObj(unit)}
	}
	wd := unit - w.stockCount
	return []lang.ObjID{UnfulObj(wd), LowObj(wd)}
}

// BuildGlobal implements workload.Workload.
func (w *Workload) BuildGlobal(unit int, folded lang.Database) (treaty.Global, error) {
	if unit < w.stockCount {
		return w.buildStockGlobal(unit, folded)
	}
	return w.buildDeliveryGlobal(unit-w.stockCount, folded)
}

// buildStockGlobal matches the New Order symbolic table on the
// consolidated stock value and preprocesses the guard with the order
// quantity's worst case (Appendix C.1 + parameter bounds).
func (w *Workload) buildStockGlobal(unit int, folded lang.Database) (treaty.Global, error) {
	canonical := lang.Database{canonStock: folded.Get(StockObj(unit))}
	// The guard mentions the qty parameter; match with a representative
	// value and strengthen over [1,5].
	params := map[string]int64{"qty": 1}
	row, err := w.table.MatchRow(canonical, params)
	if err != nil {
		// The low-stock region: match with the worst-case parameter.
		params["qty"] = 5
		row, err = w.table.MatchRow(canonical, params)
		if err != nil {
			return treaty.Global{}, err
		}
	}
	g, err := treaty.Preprocess(w.table.Rows[row].Guard, canonical, params,
		treaty.ParamBounds{"qty": {1, 5}})
	if err != nil {
		// The guard holds for the representative parameter but not for the
		// whole range: fall back to pinning the value (forces
		// synchronization until the state leaves the boundary region).
		pin := lia.NewTerm()
		pin.AddVar(logic.Obj(canonStock), 1)
		for k := 0; k < w.cfg.NSites; k++ {
			pin.AddVar(logic.Obj(lang.DeltaObj(canonStock, k)), 1)
		}
		pin.Const = -canonical.Get(canonStock)
		g = treaty.Global{Constraints: []lia.Constraint{{Term: pin, Op: lia.EQ}}}
	}
	concrete := StockObj(unit)
	return g.Rename(func(obj lang.ObjID) lang.ObjID {
		if base, site, ok := lang.IsDeltaObj(obj); ok && base == canonStock {
			return lang.DeltaObj(concrete, site)
		}
		if obj == canonStock {
			return concrete
		}
		return obj
	}), nil
}

// buildDeliveryGlobal constructs the Appendix E delivery treaty directly:
// the lowest unprocessed order id is fixed to its current value (the
// Appendix C.3 pin for remote reads), and when unfulfilled orders exist,
// their count must remain at least one so Delivery never sees a
// spuriously empty queue.
func (w *Workload) buildDeliveryGlobal(wd int, folded lang.Database) (treaty.Global, error) {
	low := LowObj(wd)
	unful := UnfulObj(wd)
	var cs []lia.Constraint

	// low + sum_k dlow_k = current.
	pin := lia.NewTerm()
	pin.AddVar(logic.Obj(low), 1)
	for k := 0; k < w.cfg.NSites; k++ {
		pin.AddVar(logic.Obj(lang.DeltaObj(low, k)), 1)
	}
	pin.Const = -folded.Get(low)
	cs = append(cs, lia.Constraint{Term: pin, Op: lia.EQ})

	// The unfulfilled count: at least one while orders exist (so a
	// Delivery consuming the last order it is aware of violates and
	// synchronizes), and pinned to exactly zero while the queue is empty
	// (so the first insert into an empty queue synchronizes and every
	// site learns the queue is nonempty — "Delivery never sees an empty
	// NEWORDER table unless the table is truly empty", Appendix E).
	cnt := lia.NewTerm()
	cnt.AddVar(logic.Obj(unful), -1)
	for k := 0; k < w.cfg.NSites; k++ {
		cnt.AddVar(logic.Obj(lang.DeltaObj(unful, k)), -1)
	}
	if folded.Get(unful) >= 1 {
		cnt.Const = 1 // count >= 1
		cs = append(cs, lia.Constraint{Term: cnt, Op: lia.LE})
	} else {
		cnt.Const = 0 // count = 0
		cs = append(cs, lia.Constraint{Term: cnt, Op: lia.EQ})
	}
	return treaty.Global{Constraints: cs}, nil
}

// stockModel samples future New Order demand for one stock entry
// (Algorithm 1's workload model). Hot items receive proportionally more
// sampled orders, which is how the optimizer adapts treaties to skew.
type stockModel struct {
	w    *Workload
	unit int
}

// Model implements workload.Workload.
func (w *Workload) Model(unit int) treaty.WorkloadModel {
	if unit < w.stockCount {
		return &stockModel{w: w, unit: unit}
	}
	return deliveryModel{}
}

// SampleFuture simulates l New Orders against the stock entry.
func (m *stockModel) SampleFuture(rng *rand.Rand, db lang.Database, l int) []lang.Database {
	obj := StockObj(m.unit)
	cur := db.Clone()
	out := make([]lang.Database, 0, l)
	for i := 0; i < l; i++ {
		site := rng.Intn(m.w.cfg.NSites)
		qty := 1 + rng.Int63n(5)
		logical := lang.LogicalValue(cur, obj, m.w.cfg.NSites)
		if logical-qty >= 10 {
			d := lang.DeltaObj(obj, site)
			cur[d] = cur.Get(d) - qty
		} else {
			cur = lang.Database{obj: logical - qty + 91}
		}
		out = append(out, cur.Clone())
	}
	return out
}

// deliveryModel: Delivery always synchronizes (the pin treaty admits no
// slack), so sampling futures is pointless; return none and let the
// default/optimizer keep the pinned configuration.
type deliveryModel struct{}

func (deliveryModel) SampleFuture(*rand.Rand, lang.Database, int) []lang.Database {
	return nil
}

// pickItem selects a stock entry honoring the hot-item skew: with
// probability H% the order goes to one of the hot items (the first
// hotCount entries), otherwise to the cold range.
func (w *Workload) pickItem(rng *rand.Rand) int {
	if w.cfg.H > 0 && rng.Float64()*100 < w.cfg.H {
		return rng.Intn(w.hotCount)
	}
	if w.stockCount == w.hotCount {
		return rng.Intn(w.stockCount)
	}
	return w.hotCount + rng.Intn(w.stockCount-w.hotCount)
}

// pickDriftItem selects a stock entry for the skewed-warehouse scenario:
// with probability WarehouseAffinity% the order targets the site's current
// home warehouse (home = (site + epoch) mod Warehouses), otherwise it
// falls back to the global hot/cold distribution.
func (w *Workload) pickDriftItem(rng *rand.Rand, site, epoch int) int {
	if rng.Float64()*100 < w.cfg.WarehouseAffinity {
		home := (site + epoch) % w.cfg.Warehouses
		return home*w.cfg.StockPerWarehouse + rng.Intn(w.cfg.StockPerWarehouse)
	}
	return w.pickItem(rng)
}

// Next implements workload.Workload: draw from the transaction mix.
func (w *Workload) Next(rng *rand.Rand, site int) workload.Request {
	drift := w.cfg.WarehouseAffinity > 0
	epoch := 0
	if drift {
		epoch = w.rotor.Tick()
	}
	total := w.cfg.MixNewOrder + w.cfg.MixPayment + w.cfg.MixDelivery
	r := rng.Intn(total)
	switch {
	case r < w.cfg.MixNewOrder:
		var item int
		if drift {
			item = w.pickDriftItem(rng, site, epoch)
		} else {
			item = w.pickItem(rng)
		}
		qty := 1 + rng.Int63n(5)
		return w.NewOrderRequest(item, qty, rng.Intn(w.cfg.Warehouses*w.cfg.DistrictsPerWarehouse))
	case r < w.cfg.MixNewOrder+w.cfg.MixPayment:
		c := rng.Intn(w.cfg.Customers)
		wh := rng.Intn(w.cfg.Warehouses)
		d := wh*w.cfg.DistrictsPerWarehouse + rng.Intn(w.cfg.DistrictsPerWarehouse)
		amount := 1 + rng.Int63n(100)
		return w.PaymentRequest(wh, d, c, amount)
	default:
		wd := rng.Intn(w.cfg.Warehouses * w.cfg.DistrictsPerWarehouse)
		return w.DeliveryRequest(wd)
	}
}

// NewOrderRequest orders qty of a stock entry and records the order in
// the district's unfulfilled queue.
func (w *Workload) NewOrderRequest(item int, qty int64, wd int) workload.Request {
	stockObj := StockObj(item)
	unful := UnfulObj(wd)
	// New Order belongs to both the item's stock unit and the district's
	// delivery unit: its insert must be checked against the queue treaty
	// (inserting into an empty queue violates the count = 0 pin and
	// synchronizes; inserts into a nonempty queue never violate).
	return workload.Request{
		Name:    "NewOrder",
		Args:    []int64{int64(item), qty, int64(wd)},
		Units:   []int{item, w.deliveryUnit(wd)},
		Objects: []lang.ObjID{stockObj, unful},
		Exec: func(v workload.SiteView) error {
			s, err := v.ReadLogical(stockObj)
			if err != nil {
				return err
			}
			if s-qty >= 10 {
				if err := v.WriteLogical(stockObj, s-qty); err != nil {
					return err
				}
			} else {
				if err := v.WriteLogical(stockObj, s-qty+91); err != nil {
					return err
				}
			}
			// Record the order: increment the unfulfilled count. This is a
			// blind increment through the delta encoding; it cannot violate
			// the count >= floor treaty and needs no unit membership.
			n, err := v.ReadLogical(unful)
			if err != nil {
				return err
			}
			return v.WriteLogical(unful, n+1)
		},
		Apply: func(db lang.Database) []int64 {
			s := db.Get(stockObj)
			if s-qty >= 10 {
				db.Set(stockObj, s-qty)
			} else {
				db.Set(stockObj, s-qty+91)
			}
			db.Set(unful, db.Get(unful)+1)
			return nil
		},
	}
}

// PaymentRequest updates the warehouse, district, and customer balances.
// After the delta rewrite these are blind local writes; no treaty unit.
func (w *Workload) PaymentRequest(wh, wd, c int, amount int64) workload.Request {
	wbal, dbal, cbal := WBalObj(wh), DBalObj(wd), CBalObj(c)
	return workload.Request{
		Name: "Payment",
		Args: []int64{int64(wh), int64(wd), int64(c), amount},
		Exec: func(v workload.SiteView) error {
			bw, err := v.ReadLogical(wbal)
			if err != nil {
				return err
			}
			if err := v.WriteLogical(wbal, bw+amount); err != nil {
				return err
			}
			bd, err := v.ReadLogical(dbal)
			if err != nil {
				return err
			}
			if err := v.WriteLogical(dbal, bd+amount); err != nil {
				return err
			}
			bc, err := v.ReadLogical(cbal)
			if err != nil {
				return err
			}
			return v.WriteLogical(cbal, bc-amount)
		},
		Apply: func(db lang.Database) []int64 {
			db.Set(wbal, db.Get(wbal)+amount)
			db.Set(dbal, db.Get(dbal)+amount)
			db.Set(cbal, db.Get(cbal)-amount)
			return nil
		},
	}
}

// DeliveryRequest fulfills the oldest unprocessed order of a district:
// it advances the lowest-order-id cursor, which violates the pin treaty
// and forces synchronization on every productive execution (Appendix E).
func (w *Workload) DeliveryRequest(wd int) workload.Request {
	unful := UnfulObj(wd)
	low := LowObj(wd)
	return workload.Request{
		Name:    "Delivery",
		Args:    []int64{int64(wd)},
		Units:   []int{w.deliveryUnit(wd)},
		Objects: []lang.ObjID{unful, low},
		Exec: func(v workload.SiteView) error {
			n, err := v.ReadLogical(unful)
			if err != nil {
				return err
			}
			if n <= 0 {
				return nil
			}
			l, err := v.ReadLogical(low)
			if err != nil {
				return err
			}
			if err := v.WriteLogical(low, l+1); err != nil {
				return err
			}
			if err := v.WriteLogical(unful, n-1); err != nil {
				return err
			}
			v.Print(l)
			return nil
		},
		Apply: func(db lang.Database) []int64 {
			n := db.Get(unful)
			if n <= 0 {
				return nil
			}
			l := db.Get(low)
			db.Set(low, l+1)
			db.Set(unful, n-1)
			return []int64{l}
		},
	}
}
