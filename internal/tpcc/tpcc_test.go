package tpcc

import (
	"math/rand"
	"testing"

	"repro/internal/lang"
	"repro/internal/treaty"
	"repro/internal/workload"
)

func mustNew(t *testing.T, cfg Config) *Workload {
	t.Helper()
	w, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func small(t *testing.T, nSites int) *Workload {
	return mustNew(t, Config{
		Warehouses:            2,
		DistrictsPerWarehouse: 2,
		StockPerWarehouse:     10,
		Customers:             20,
		NSites:                nSites,
		StockMin:              0,
		StockMax:              100,
		H:                     10,
		Seed:                  1,
	})
}

func TestSymbolicTableShape(t *testing.T) {
	w := small(t, 2)
	if n := len(w.Table().Rows); n != 2 {
		t.Fatalf("New Order table rows = %d, want 2\n%s", n, w.Table())
	}
}

// fakeView for stored-procedure vs L++ comparison.
type fakeView struct {
	db  lang.Database
	log []int64
}

func (v *fakeView) Site() int   { return 0 }
func (v *fakeView) NSites() int { return 1 }
func (v *fakeView) ReadLogical(obj lang.ObjID) (int64, error) {
	return v.db.Get(obj), nil
}
func (v *fakeView) WriteLogical(obj lang.ObjID, val int64) error {
	v.db.Set(obj, val)
	return nil
}
func (v *fakeView) Print(x int64) { v.log = append(v.log, x) }

// TestNewOrderMatchesSource: the Go stored procedure implements the same
// stock rule as the analyzed L++ transaction.
func TestNewOrderMatchesSource(t *testing.T) {
	w := small(t, 2)
	src, err := lang.ParseTransaction(NewOrderSource)
	if err != nil {
		t.Fatal(err)
	}
	lang.ResolveParams(src)
	for stock := int64(0); stock <= 120; stock += 3 {
		for qty := int64(1); qty <= 5; qty++ {
			res, err := lang.Eval(src, lang.Database{canonStock: stock}, qty)
			if err != nil {
				t.Fatal(err)
			}
			view := &fakeView{db: lang.Database{StockObj(3): stock}}
			req := w.NewOrderRequest(3, qty, 0)
			if err := req.Exec(view); err != nil {
				t.Fatal(err)
			}
			if got, want := view.db.Get(StockObj(3)), res.DB.Get(canonStock); got != want {
				t.Fatalf("stock=%d qty=%d: stored proc %d, L++ %d", stock, qty, got, want)
			}
			// Apply agrees with Exec on the stock object.
			applied := lang.Database{StockObj(3): stock}
			req.Apply(applied)
			if applied.Get(StockObj(3)) != res.DB.Get(canonStock) {
				t.Fatalf("Apply diverges at stock=%d qty=%d", stock, qty)
			}
		}
	}
}

// TestDeliveryMatchesSource: same for Delivery, including the print log.
func TestDeliveryMatchesSource(t *testing.T) {
	w := small(t, 2)
	src, err := lang.ParseTransaction(DeliverySource)
	if err != nil {
		t.Fatal(err)
	}
	lang.ResolveParams(src)
	for n := int64(0); n <= 5; n++ {
		for low := int64(0); low <= 3; low++ {
			res, err := lang.Eval(src, lang.Database{"unful": n, "low": low})
			if err != nil {
				t.Fatal(err)
			}
			view := &fakeView{db: lang.Database{UnfulObj(1): n, LowObj(1): low}}
			req := w.DeliveryRequest(1)
			if err := req.Exec(view); err != nil {
				t.Fatal(err)
			}
			if got, want := view.db.Get(UnfulObj(1)), res.DB.Get("unful"); got != want {
				t.Fatalf("n=%d: unful %d, want %d", n, got, want)
			}
			if got, want := view.db.Get(LowObj(1)), res.DB.Get("low"); got != want {
				t.Fatalf("n=%d: low %d, want %d", n, got, want)
			}
			if !lang.LogsEqual(view.log, res.Log) {
				t.Fatalf("n=%d low=%d: log %v, want %v", n, low, view.log, res.Log)
			}
		}
	}
}

// TestPaymentMatchesSource: balances move identically.
func TestPaymentMatchesSource(t *testing.T) {
	w := small(t, 2)
	src, err := lang.ParseTransaction(PaymentSource)
	if err != nil {
		t.Fatal(err)
	}
	lang.ResolveParams(src)
	res, err := lang.Eval(src, lang.Database{"wbal": 100, "dbal": 50, "cbal": 10}, 7)
	if err != nil {
		t.Fatal(err)
	}
	view := &fakeView{db: lang.Database{WBalObj(0): 100, DBalObj(1): 50, CBalObj(2): 10}}
	req := w.PaymentRequest(0, 1, 2, 7)
	if err := req.Exec(view); err != nil {
		t.Fatal(err)
	}
	if view.db.Get(WBalObj(0)) != res.DB.Get("wbal") ||
		view.db.Get(DBalObj(1)) != res.DB.Get("dbal") ||
		view.db.Get(CBalObj(2)) != res.DB.Get("cbal") {
		t.Fatalf("payment mismatch: %v vs %v", view.db, res.DB)
	}
	if len(req.Units) != 0 {
		t.Fatal("Payment must have no treaty units (never synchronizes)")
	}
}

func TestStockTreatyHighRegion(t *testing.T) {
	w := small(t, 2)
	g, err := w.BuildGlobal(0, lang.Database{StockObj(0): 60})
	if err != nil {
		t.Fatal(err)
	}
	obj := StockObj(0)
	// Worst case qty = 5: the treaty is logical stock >= 15.
	mk := func(base, d0, d1 int64) lang.Database {
		return lang.Database{obj: base, lang.DeltaObj(obj, 0): d0, lang.DeltaObj(obj, 1): d1}
	}
	if !g.Holds(mk(60, -30, -15)) { // logical 15
		t.Fatalf("treaty should hold at logical 15: %s", g)
	}
	if g.Holds(mk(60, -30, -16)) { // logical 14
		t.Fatalf("treaty should fail at logical 14: %s", g)
	}
}

func TestStockTreatyLowRegion(t *testing.T) {
	w := small(t, 2)
	// Logical stock 8: in the refill region for every qty (8 - 1 < 10),
	// guard is s - qty < 10 strengthened over qty in [1,5] -> s <= 10.
	g, err := w.BuildGlobal(0, lang.Database{StockObj(0): 8})
	if err != nil {
		t.Fatal(err)
	}
	obj := StockObj(0)
	if !g.Holds(lang.Database{obj: 8}) {
		t.Fatalf("low-region treaty should hold at 8: %s", g)
	}
	if g.Holds(lang.Database{obj: 30}) {
		t.Fatalf("low-region treaty should fail at 30: %s", g)
	}
}

func TestStockTreatyBoundaryRegionPins(t *testing.T) {
	w := small(t, 2)
	// Logical stock 12: qty=1 takes the high branch (11 >= 10) but qty=5
	// takes the low branch (7 < 10); no single region covers [1,5], so
	// preprocessing falls back to pinning the value.
	g, err := w.BuildGlobal(0, lang.Database{StockObj(0): 12})
	if err != nil {
		t.Fatal(err)
	}
	obj := StockObj(0)
	if !g.Holds(lang.Database{obj: 12}) {
		t.Fatalf("boundary treaty should hold at 12: %s", g)
	}
	if g.Holds(lang.Database{obj: 11}) || g.Holds(lang.Database{obj: 13}) {
		t.Fatalf("boundary treaty should pin the value: %s", g)
	}
}

func TestDeliveryTreatyPinsLowId(t *testing.T) {
	w := small(t, 2)
	unit := w.deliveryUnit(1)
	folded := lang.Database{UnfulObj(1): 5, LowObj(1): 42}
	g, err := w.BuildGlobal(unit, folded)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Holds(folded) {
		t.Fatal("delivery treaty must hold on current state")
	}
	// Advancing low violates the pin.
	moved := folded.Clone()
	moved[LowObj(1)] = 43
	if g.Holds(moved) {
		t.Fatal("delivery treaty must pin the lowest order id")
	}
	// Dropping the count to zero violates count >= 1.
	drained := folded.Clone()
	drained[UnfulObj(1)] = 0
	if g.Holds(drained) {
		t.Fatal("delivery treaty must keep unfulfilled count >= 1")
	}
	// New orders (count increases) never violate.
	more := folded.Clone()
	more[lang.DeltaObj(UnfulObj(1), 0)] = 3
	if !g.Holds(more) {
		t.Fatal("new orders must not violate the delivery treaty")
	}
}

func TestDeliveryTreatyEmptyQueue(t *testing.T) {
	w := small(t, 2)
	unit := w.deliveryUnit(0)
	folded := lang.Database{UnfulObj(0): 0, LowObj(0): 7}
	g, err := w.BuildGlobal(unit, folded)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Holds(folded) {
		t.Fatal("empty-queue treaty must hold")
	}
	// Inserting into an empty queue violates the count = 0 pin, forcing
	// the synchronization that tells every site the queue is nonempty.
	ins := folded.Clone()
	ins[lang.DeltaObj(UnfulObj(0), 1)] = 1
	if g.Holds(ins) {
		t.Fatal("insert into an empty queue must violate the pin")
	}
}

func TestHotItemSkew(t *testing.T) {
	w := mustNew(t, Config{
		Warehouses: 2, DistrictsPerWarehouse: 2, StockPerWarehouse: 100,
		Customers: 20, NSites: 2, H: 50, HotPercent: 1, Seed: 3,
		MixNewOrder: 100, MixPayment: 0, MixDelivery: 0,
	})
	// 200 items, 1% hot = 2 hot items. With H=50, about half the New
	// Orders hit those 2 items.
	rng := rand.New(rand.NewSource(11))
	hot := 0
	const n = 5000
	for i := 0; i < n; i++ {
		req := w.Next(rng, 0)
		if req.Name != "NewOrder" {
			t.Fatalf("mix broken: got %s", req.Name)
		}
		if int(req.Args[0]) < w.hotCount {
			hot++
		}
	}
	frac := float64(hot) / n * 100
	if frac < 40 || frac > 60 {
		t.Fatalf("hot fraction = %.1f%%, want ~50%%", frac)
	}
}

func TestMixProportions(t *testing.T) {
	w := small(t, 2) // default 45/45/10
	rng := rand.New(rand.NewSource(5))
	counts := map[string]int{}
	const n = 10000
	for i := 0; i < n; i++ {
		counts[w.Next(rng, 0).Name]++
	}
	frac := func(name string) float64 { return float64(counts[name]) / n * 100 }
	if f := frac("NewOrder"); f < 42 || f > 48 {
		t.Fatalf("NewOrder = %.1f%%, want ~45%%", f)
	}
	if f := frac("Payment"); f < 42 || f > 48 {
		t.Fatalf("Payment = %.1f%%, want ~45%%", f)
	}
	if f := frac("Delivery"); f < 8 || f > 12 {
		t.Fatalf("Delivery = %.1f%%, want ~10%%", f)
	}
}

func TestStockModelRespectsSemantics(t *testing.T) {
	w := small(t, 2)
	m := w.Model(0)
	rng := rand.New(rand.NewSource(2))
	futures := m.SampleFuture(rng, lang.Database{StockObj(0): 80}, 20)
	if len(futures) != 20 {
		t.Fatalf("len = %d", len(futures))
	}
	prev := int64(80)
	for i, db := range futures {
		logical := lang.LogicalValue(db, StockObj(0), 2)
		drop := prev - logical
		if drop < 1 || drop > 5 {
			if logical <= prev+91 && logical > prev {
				// refill happened
				prev = logical
				continue
			}
			t.Fatalf("step %d: drop %d outside qty range", i, drop)
		}
		prev = logical
	}
}

func TestUnitLayout(t *testing.T) {
	w := small(t, 2) // 2 warehouses x 10 stock = 20 stock units + 4 delivery
	if w.NumUnits() != 24 {
		t.Fatalf("units = %d, want 24", w.NumUnits())
	}
	if objs := w.UnitObjects(5); len(objs) != 1 || objs[0] != StockObj(5) {
		t.Fatalf("stock unit objects = %v", objs)
	}
	if objs := w.UnitObjects(21); len(objs) != 2 {
		t.Fatalf("delivery unit objects = %v", objs)
	}
}

func TestInitialStockRange(t *testing.T) {
	w := small(t, 2)
	db := w.InitialDB()
	for s := 0; s < 20; s++ {
		v := db.Get(StockObj(s))
		if v < 0 || v > 100 {
			t.Fatalf("stock[%d] = %d outside [0,100]", s, v)
		}
	}
}

var _ workload.Workload = (*Workload)(nil)
var _ treaty.WorkloadModel = (*stockModel)(nil)

// TestSkewedWarehouseDrift: with warehouse affinity enabled, a site's
// New Orders concentrate in its current home warehouse, and the home
// rotates with the drift epoch.
func TestSkewedWarehouseDrift(t *testing.T) {
	w, err := New(Config{
		Warehouses: 4, DistrictsPerWarehouse: 2, StockPerWarehouse: 25,
		Customers: 50, NSites: 2, MixNewOrder: 100, MixPayment: 0, MixDelivery: 0,
		WarehouseAffinity: 95, RotateEvery: 1000, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	warehouseOf := func(item int64) int { return int(item) / 25 }
	// Epoch 0: site 0's home warehouse is 0.
	home := 0
	for i := 0; i < 500; i++ {
		req := w.Next(rng, 0)
		if req.Name != "NewOrder" {
			t.Fatalf("pure New Order mix drew %s", req.Name)
		}
		if warehouseOf(req.Args[0]) == 0 {
			home++
		}
		w.Next(rng, 1)
	}
	if home < 420 { // 95% affinity less sampling slop
		t.Fatalf("only %d/500 New Orders hit site 0's home warehouse", home)
	}
	// The 1000 draws advanced one epoch: site 0's home is warehouse 1.
	moved := 0
	for i := 0; i < 500; i++ {
		req := w.Next(rng, 0)
		if warehouseOf(req.Args[0]) == 1 {
			moved++
		}
		w.Next(rng, 1)
	}
	if moved < 420 {
		t.Fatalf("after rotation only %d/500 New Orders hit the new home warehouse", moved)
	}
}
