package workload_test

import (
	"math/rand"
	"testing"

	"repro/internal/lang"
	"repro/internal/micro"
	"repro/internal/rt"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/tpcc"
	"repro/internal/workload"
)

// dbView is a scratch SiteView over a plain logical database: reads and
// writes go straight to the map (the single-site / post-fold semantics).
type dbView struct {
	db  lang.Database
	log []int64
}

func (v *dbView) Site() int   { return 0 }
func (v *dbView) NSites() int { return 1 }
func (v *dbView) ReadLogical(obj lang.ObjID) (int64, error) {
	return v.db.Get(obj), nil
}
func (v *dbView) WriteLogical(obj lang.ObjID, val int64) error {
	v.db.Set(obj, val)
	return nil
}
func (v *dbView) Print(x int64) { v.log = append(v.log, x) }

// storeView is a SiteView over a real store transaction, so Exec goes
// through the 2PL lock manager.
type storeView struct {
	tx  *store.Txn
	log []int64
}

func (v *storeView) Site() int   { return 0 }
func (v *storeView) NSites() int { return 1 }
func (v *storeView) ReadLogical(obj lang.ObjID) (int64, error) {
	return v.tx.Read(obj)
}
func (v *storeView) WriteLogical(obj lang.ObjID, val int64) error {
	return v.tx.Write(obj, val)
}
func (v *storeView) Print(x int64) { v.log = append(v.log, x) }

func newMicro(t *testing.T) *micro.Workload {
	t.Helper()
	w, err := micro.New(micro.Config{Items: 16, Refill: 100, ItemsPerTxn: 2, NSites: 2})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestMicroRequestConstruction pins the shape of a microbenchmark order:
// units and objects line up with the requested items.
func TestMicroRequestConstruction(t *testing.T) {
	w := newMicro(t)
	req := w.MakeRequest([]int{3, 5})
	if req.Name != "Order" {
		t.Fatalf("Name = %q, want Order", req.Name)
	}
	if len(req.Args) != 2 || req.Args[0] != 3 || req.Args[1] != 5 {
		t.Fatalf("Args = %v, want [3 5]", req.Args)
	}
	if len(req.Units) != 2 || req.Units[0] != 3 || req.Units[1] != 5 {
		t.Fatalf("Units = %v, want [3 5]", req.Units)
	}
	want := []lang.ObjID{micro.ItemObj(3), micro.ItemObj(5)}
	if len(req.Objects) != 2 || req.Objects[0] != want[0] || req.Objects[1] != want[1] {
		t.Fatalf("Objects = %v, want %v", req.Objects, want)
	}
	for _, unit := range req.Units {
		if unit < 0 || unit >= w.NumUnits() {
			t.Fatalf("unit %d out of range [0, %d)", unit, w.NumUnits())
		}
	}
}

// TestMicroNextDrawsValidRequests: every request drawn from the stream
// has in-range units matching its objects.
func TestMicroNextDrawsValidRequests(t *testing.T) {
	w := newMicro(t)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		req := w.Next(rng, i%2)
		if len(req.Units) != 2 || len(req.Objects) != 2 {
			t.Fatalf("request %d: %d units, %d objects, want 2 and 2", i, len(req.Units), len(req.Objects))
		}
		if req.Units[0] == req.Units[1] {
			t.Fatalf("request %d orders the same item twice: %v", i, req.Units)
		}
		for j, unit := range req.Units {
			if req.Objects[j] != micro.ItemObj(unit) {
				t.Fatalf("request %d: object %s does not match unit %d", i, req.Objects[j], unit)
			}
		}
	}
}

// TestMicroExecMatchesApply: the stored procedure (Exec against a view)
// and the logical effect (Apply against a folded database) agree,
// including the refill edge at qty <= 1.
func TestMicroExecMatchesApply(t *testing.T) {
	w, err := micro.New(micro.Config{Items: 4, Refill: 50, NSites: 1, InitialQty: 2})
	if err != nil {
		t.Fatal(err)
	}
	req := w.MakeRequest([]int{0})
	execDB := w.InitialDB()
	applyDB := w.InitialDB()
	// Drive item 0 down through the refill boundary:
	// 2 -> 1 -> 49 -> 48 -> 47 -> 46.
	for step := 0; step < 5; step++ {
		if err := req.Exec(&dbView{db: execDB}); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		req.Apply(applyDB)
		if got, want := execDB.Get(micro.ItemObj(0)), applyDB.Get(micro.ItemObj(0)); got != want {
			t.Fatalf("step %d: Exec state %d, Apply state %d", step, got, want)
		}
	}
	if got := execDB.Get(micro.ItemObj(0)); got != 46 {
		t.Fatalf("after 5 orders from qty 2 with refill 50: qty = %d, want 46", got)
	}
}

// TestMicroExecAgainstStore runs the stored procedure through a real
// store transaction inside the simulation engine: writes must be
// tentative until commit and durable after.
func TestMicroExecAgainstStore(t *testing.T) {
	w, err := micro.New(micro.Config{Items: 4, Refill: 100, NSites: 1})
	if err != nil {
		t.Fatal(err)
	}
	e := sim.NewEngine(1)
	s := store.New(e, w.InitialDB())
	req := w.MakeRequest([]int{2})
	var ran bool
	e.Spawn(0, func(p rt.Proc) {
		// Aborted execution leaves no trace.
		tx := s.Begin(p)
		if err := req.Exec(&storeView{tx: tx}); err != nil {
			t.Errorf("Exec: %v", err)
			return
		}
		tx.Abort()
		if got := s.Get(micro.ItemObj(2)); got != 100 {
			t.Errorf("after abort: qty = %d, want 100", got)
			return
		}
		// Committed execution is durable.
		tx = s.Begin(p)
		if err := req.Exec(&storeView{tx: tx}); err != nil {
			t.Errorf("Exec: %v", err)
			return
		}
		tx.Commit()
		if got := s.Get(micro.ItemObj(2)); got != 99 {
			t.Errorf("after commit: qty = %d, want 99", got)
			return
		}
		ran = true
	})
	e.Run()
	if !ran {
		t.Fatal("store transaction process did not complete")
	}
}

func newTPCC(t *testing.T) *tpcc.Workload {
	t.Helper()
	w, err := tpcc.New(tpcc.Config{
		Warehouses: 2, DistrictsPerWarehouse: 2, StockPerWarehouse: 10,
		Customers: 20, NSites: 2, H: 10,
		MixNewOrder: 45, MixPayment: 45, MixDelivery: 10, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestTPCCRequestConstruction checks units and logical footprints of the
// three TPC-C transaction types.
func TestTPCCRequestConstruction(t *testing.T) {
	w := newTPCC(t)
	no := w.NewOrderRequest(1, 3, 2)
	if no.Name != "NewOrder" || len(no.Units) != 2 || len(no.Objects) != 2 {
		t.Fatalf("NewOrder = %+v, want 2 units and 2 objects", no)
	}
	pay := w.PaymentRequest(0, 1, 5, 10)
	if pay.Name != "Payment" || len(pay.Units) != 0 {
		t.Fatalf("Payment = %+v, want no treaty units", pay)
	}
	del := w.DeliveryRequest(3)
	if del.Name != "Delivery" || len(del.Units) != 1 || len(del.Objects) != 2 {
		t.Fatalf("Delivery = %+v, want 1 unit and 2 objects", del)
	}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 300; i++ {
		req := w.Next(rng, i%2)
		for _, unit := range req.Units {
			if unit < 0 || unit >= w.NumUnits() {
				t.Fatalf("request %d (%s): unit %d out of range [0, %d)",
					i, req.Name, unit, w.NumUnits())
			}
		}
	}
}

// TestTPCCExecMatchesApply cross-checks Exec and Apply for each TPC-C
// transaction type on the initial database.
func TestTPCCExecMatchesApply(t *testing.T) {
	w := newTPCC(t)
	reqs := []workload.Request{
		w.NewOrderRequest(0, 4, 1),
		w.PaymentRequest(1, 2, 7, 25),
		w.DeliveryRequest(0), // empty queue: must be a no-op
	}
	for _, req := range reqs {
		execDB := w.InitialDB()
		applyDB := w.InitialDB()
		if err := req.Exec(&dbView{db: execDB}); err != nil {
			t.Fatalf("%s: Exec: %v", req.Name, err)
		}
		req.Apply(applyDB)
		for _, obj := range execDB.Objects() {
			if execDB.Get(obj) != applyDB.Get(obj) {
				t.Fatalf("%s: %s = %d after Exec, %d after Apply",
					req.Name, obj, execDB.Get(obj), applyDB.Get(obj))
			}
		}
	}
}

// TestTPCCNewOrderRestockRule pins the TPC-C stock rule: subtract the
// quantity, adding 91 when the result would drop below 10.
func TestTPCCNewOrderRestockRule(t *testing.T) {
	w := newTPCC(t)
	stock := tpcc.StockObj(3)
	req := w.NewOrderRequest(3, 5, 0)
	v := &dbView{db: lang.Database{stock: 12}}
	if err := req.Exec(v); err != nil {
		t.Fatal(err)
	}
	if got := v.db.Get(stock); got != 12-5+91 {
		t.Fatalf("stock after restock order = %d, want %d", got, 12-5+91)
	}
	v = &dbView{db: lang.Database{stock: 50}}
	if err := req.Exec(v); err != nil {
		t.Fatal(err)
	}
	if got := v.db.Get(stock); got != 45 {
		t.Fatalf("stock after plain order = %d, want 45", got)
	}
}

// TestRotor: epochs advance exactly every period ticks; non-positive
// periods never rotate.
func TestRotor(t *testing.T) {
	r := workload.NewRotor(3)
	var got []int
	for i := 0; i < 7; i++ {
		got = append(got, r.Tick())
	}
	want := []int{0, 0, 0, 1, 1, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("tick %d: epoch %d, want %d (%v)", i, got[i], want[i], got)
		}
	}
	frozen := workload.NewRotor(0)
	for i := 0; i < 5; i++ {
		if e := frozen.Tick(); e != 0 {
			t.Fatalf("period-0 rotor rotated to epoch %d", e)
		}
	}
}
