// Package workload defines the interface between benchmark workloads
// (the Section 6.1 microbenchmark, Section 6.2 TPC-C) and the protocol
// runtimes: stored procedures executing against a site-local view, treaty
// units governing groups of objects, and the future-execution models
// Algorithm 1 samples.
package workload

import (
	"math/rand"

	"repro/internal/lang"
	"repro/internal/treaty"
)

// SiteView is what a stored procedure sees while executing at one site.
// Under the homeostasis protocol, logical reads and writes of replicated
// objects go through the Appendix B delta encoding (base value plus the
// site's own delta object); under 2PC/local they access objects directly.
type SiteView interface {
	// Site returns the executing site's id.
	Site() int
	// NSites returns the number of sites.
	NSites() int
	// ReadLogical returns the site's view of a replicated object's logical
	// value.
	ReadLogical(obj lang.ObjID) (int64, error)
	// WriteLogical updates the site's view of a replicated object's
	// logical value (a delta write under homeostasis).
	WriteLogical(obj lang.ObjID, v int64) error
	// Print appends to the transaction's observable log.
	Print(v int64)
}

// Request is one transaction invocation issued by a client.
type Request struct {
	// Name identifies the transaction type (for reporting).
	Name string
	// Args are the invocation's parameter values (for replay/logging).
	Args []int64
	// Units lists the treaty units the transaction is governed by (empty
	// for transactions that never require synchronization, such as TPC-C
	// Payment; several for multi-item orders).
	Units []int
	// Objects is the transaction's full logical footprint: every object
	// Apply reads or writes, including objects outside the treaty units
	// (e.g. the unfulfilled-order count a New Order bumps). The cleanup
	// phase folds and consolidates exactly these objects before running
	// the transaction as T' on every site.
	Objects []lang.ObjID
	// Exec runs the stored procedure against a site view. Errors indicate
	// lock failures; the runtime aborts and retries.
	Exec func(v SiteView) error
	// Apply performs the transaction's logical effect on a folded
	// (consolidated) database. The cleanup phase uses it to run the
	// treaty-violating transaction T' at every site, and correctness tests
	// use it for serial replay.
	Apply func(db lang.Database) []int64
}

// Rotor is the drift clock shared by the workload drift scenarios (micro
// hot-site rotation, TPC-C skewed-warehouse): it counts request draws and
// reports the current rotation epoch. Each workload instance owns its own
// rotor, and Next is only ever called under the runtime's execution right
// (or the serving handler's request lock), so no further synchronization
// is needed and sweeps stay deterministic.
type Rotor struct {
	period int
	calls  int
}

// NewRotor returns a rotor advancing one epoch every period draws; a
// non-positive period never rotates (epoch stays 0).
func NewRotor(period int) *Rotor { return &Rotor{period: period} }

// Tick counts one request draw and returns the epoch it falls in.
func (r *Rotor) Tick() int {
	if r.period <= 0 {
		return 0
	}
	epoch := r.calls / r.period
	r.calls++
	return epoch
}

// Workload supplies initial state, treaty units, and a request stream.
type Workload interface {
	// Name identifies the workload.
	Name() string
	// InitialDB returns the logical (pre-replication) database.
	InitialDB() lang.Database
	// NumUnits returns the number of treaty units (independence groups;
	// Section 5.1's factorized encoding).
	NumUnits() int
	// UnitObjects lists the logical objects governed by a unit.
	UnitObjects(unit int) []lang.ObjID
	// BuildGlobal derives the unit's global treaty from the current folded
	// database: it matches the joint symbolic table row and preprocesses
	// it into linear constraints (Sections 4.1, Appendix C.1).
	BuildGlobal(unit int, folded lang.Database) (treaty.Global, error)
	// Model returns the Algorithm 1 future-sampling model for a unit. The
	// databases it produces are in store shape (base objects plus per-site
	// delta objects).
	Model(unit int) treaty.WorkloadModel
	// Next draws the next request for a client at the given site.
	Next(rng *rand.Rand, site int) Request
}
