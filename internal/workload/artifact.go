package workload

import (
	"fmt"
	"strconv"
	"strings"
	"sync"

	"repro/internal/lang"
	"repro/internal/sqlfront"
	"repro/internal/symtab"
	"repro/internal/treaty"
)

// famGlobalBound caps each family's preprocessed-Global memo; past it
// the memo is cleared (misses recompute deterministically, so clearing
// only costs time).
const famGlobalBound = 128

// classFamily is the shared analysis-artifact set of one isomorphism
// class of transactions: all members differ only in transaction,
// parameter, temporary, and object names (symtab.Canonicalize). The
// first-registered member is the representative; its symbolic table
// serves every member through the positional object mapping, and its
// guard preprocessing results are memoized per distinct folded-value
// vector so re-deriving a member's global treaty is a rename, not a
// re-analysis.
type classFamily struct {
	rep *Class

	mu sync.Mutex
	// globals memoizes rep-namespace preprocessed globals keyed by the
	// folded values in canonical object order. ok=false records a
	// preprocessing failure at those values (the member pins).
	globals map[string]famGlobal
}

type famGlobal struct {
	g  treaty.Global
	ok bool
}

// ArtifactCache shares registration-time analysis artifacts across
// isomorphic transaction classes. Keys are generation-free by
// construction: a family key is the exact canonical structure encoding
// plus the site count and positional parameter bounds, all of which are
// immutable inputs of the analysis, so entries never go stale and the
// cache only ever grows by one family per distinct structure.
//
// The cache is safe for concurrent use; in practice registrations are
// serialized by the cluster lock and only the lazily built per-family
// artifacts see concurrency (negotiation-time model sampling).
type ArtifactCache struct {
	mu       sync.Mutex
	families map[string]*classFamily
}

// NewArtifactCache returns an empty cache.
func NewArtifactCache() *ArtifactCache {
	return &ArtifactCache{families: make(map[string]*classFamily)}
}

// Families reports the number of distinct structure families cached.
func (ac *ArtifactCache) Families() int {
	ac.mu.Lock()
	defer ac.mu.Unlock()
	return len(ac.families)
}

// CompileL is CompileLClass through the cache. The boolean reports
// whether an existing family served the class (a cache hit).
func (ac *ArtifactCache) CompileL(src string, nSites int, bounds treaty.ParamBounds) (*Class, bool, error) {
	txns, err := lang.ParseProgram(src)
	if err != nil {
		return nil, false, fmt.Errorf("workload: parsing class source: %w", err)
	}
	if len(txns) != 1 {
		return nil, false, fmt.Errorf("workload: class source must contain exactly one transaction, got %d", len(txns))
	}
	lang.ResolveParams(txns[0])
	return ac.Compile(txns[0], nSites, bounds)
}

// CompileSQL is CompileSQLClass through the cache.
func (ac *ArtifactCache) CompileSQL(name, script string, nSites int, bounds treaty.ParamBounds) (*Class, bool, error) {
	if name == "" {
		return nil, false, fmt.Errorf("workload: SQL class needs a name")
	}
	txn, schema, err := sqlfront.Compile(name, script)
	if err != nil {
		return nil, false, err
	}
	c, hit, err := ac.Compile(txn, nSites, bounds)
	if err != nil {
		return nil, false, err
	}
	c.Schema = schema
	return c, hit, nil
}

// Compile analyzes txn into a class, serving the symbolic table and
// guard preprocessing from an existing isomorphic family when one is
// cached and founding a new family otherwise.
func (ac *ArtifactCache) Compile(txn *lang.Transaction, nSites int, bounds treaty.ParamBounds) (*Class, bool, error) {
	// Validate exactly what NewClass validates, so a cache hit rejects
	// the same inputs scratch compilation rejects.
	if err := validateClassInputs(txn, nSites, bounds); err != nil {
		return nil, false, err
	}
	lowered := txn
	if len(txn.Arrays) > 0 {
		var err error
		lowered, err = lang.Lower(txn)
		if err != nil {
			return nil, false, fmt.Errorf("workload: class %s: %w", txn.Name, err)
		}
	}
	canon := symtab.Canonicalize(lowered)
	key := familyKey(canon.Key, nSites, txn.Params, bounds)

	ac.mu.Lock()
	fam := ac.families[key]
	ac.mu.Unlock()
	if fam != nil {
		c, err := newClassFromFamily(fam, txn, lowered, canon, nSites, bounds)
		if err != nil {
			return nil, false, err
		}
		return c, true, nil
	}

	c, err := NewClass(txn, nSites, bounds)
	if err != nil {
		return nil, false, err
	}
	fam = &classFamily{rep: c, globals: make(map[string]famGlobal)}
	c.fam = fam
	c.canonObjs = canon.Objs
	ac.mu.Lock()
	if existing := ac.families[key]; existing == nil {
		ac.families[key] = fam
	}
	ac.mu.Unlock()
	return c, false, nil
}

// familyKey extends the canonical structure encoding with the remaining
// analysis inputs: site count and parameter bounds by declaration
// position (bounds strengthen guards, so families with different bounds
// must not share preprocessing).
func familyKey(canonKey string, nSites int, params []string, bounds treaty.ParamBounds) string {
	var sb strings.Builder
	sb.Grow(len(canonKey) + 16 + 24*len(params))
	sb.WriteString(canonKey)
	sb.WriteString("|n")
	sb.WriteString(strconv.Itoa(nSites))
	sb.WriteString("|b")
	for _, p := range params {
		if b, ok := bounds[p]; ok {
			sb.WriteString(strconv.FormatInt(b[0], 10))
			sb.WriteString(",")
			sb.WriteString(strconv.FormatInt(b[1], 10))
		} else {
			sb.WriteString("_")
		}
		sb.WriteString(";")
	}
	return sb.String()
}

// validateClassInputs mirrors NewClass's input checks (shared by the
// cache-hit path, which never reaches NewClass).
func validateClassInputs(txn *lang.Transaction, nSites int, bounds treaty.ParamBounds) error {
	if nSites <= 0 {
		return fmt.Errorf("workload: class %s: nSites must be positive", txn.Name)
	}
	if txn.Name == "" {
		return fmt.Errorf("workload: class has no transaction name")
	}
	for p := range bounds {
		found := false
		for _, q := range txn.Params {
			if q == p {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("workload: class %s: bound for unknown parameter %q", txn.Name, p)
		}
		if b := bounds[p]; b[0] > b[1] {
			return fmt.Errorf("workload: class %s: empty bound [%d,%d] for %q", txn.Name, b[0], b[1], p)
		}
	}
	return nil
}

// newClassFromFamily builds a member class from its family's shared
// artifacts: the representative's symbolic table is reused through the
// positional object mapping, the per-site replica rewrites are deferred
// until the workload model first samples (negotiation time), and guard
// preprocessing goes through the family memo in buildGlobal.
func newClassFromFamily(fam *classFamily, txn, lowered *lang.Transaction, canon symtab.Canon, nSites int, bounds treaty.ParamBounds) (*Class, error) {
	rep := fam.rep
	if len(canon.Objs) == 0 {
		return nil, fmt.Errorf("workload: class %s touches no database objects", txn.Name)
	}
	fromRep := make(map[lang.ObjID]lang.ObjID, len(canon.Objs))
	for i, obj := range canon.Objs {
		if base, site, ok := lang.IsDeltaObj(obj); ok {
			return nil, fmt.Errorf("workload: class %s: object %q collides with the delta encoding (%s@site%d)",
				txn.Name, obj, base, site)
		}
		fromRep[rep.canonObjs[i]] = obj
	}
	mapObjs := func(objs []lang.ObjID) []lang.ObjID {
		out := make([]lang.ObjID, len(objs))
		for i, obj := range objs {
			out[i] = fromRep[obj]
		}
		sortObjIDs(out)
		return out
	}
	c := &Class{
		Name:      txn.Name,
		Params:    append([]string(nil), txn.Params...),
		Bounds:    bounds,
		Source:    txn,
		Lowered:   lowered,
		nSites:    nSites,
		writes:    mapObjs(rep.writes),
		footprint: mapObjs(rep.footprint),
		table:     rep.table,
		pinned:    rep.pinned,
		pinReason: rep.pinReason,
		fam:       fam,
		canonObjs: canon.Objs,
		fromRep:   fromRep,
	}
	c.repArgs = make([]int64, len(c.Params))
	for i, p := range c.Params {
		if b, ok := bounds[p]; ok {
			c.repArgs[i] = b[0]
		}
	}
	return c, nil
}
