package workload

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/lang"
	"repro/internal/treaty"
)

// ErrDuplicateClass marks a registration under a name already taken
// (classify with errors.Is; the wire layer maps it to 409 Conflict).
var ErrDuplicateClass = errors.New("workload: duplicate class")

// Registry hosts dynamically registered transaction classes on top of an
// optional base workload. It implements Workload: base units keep their
// ids, each registered class appends one unit covering its footprint, and
// requests for a class are governed by every registered unit that shares
// an object with it (so overlapping classes check each other's treaties
// before committing — the soundness condition for concurrent classes).
//
// Registration and request construction are not internally synchronized:
// callers invoke them under the runtime's execution contract (the public
// API serializes registration behind the scheduler lock on live
// runtimes), matching every other Workload implementation.
type Registry struct {
	base      Workload
	nSites    int
	baseUnits int
	classes   []*Class
	byName    map[string]*Class
	// objUnits indexes registered units by footprint object; base units
	// are not indexed (base overlap is rejected at registration).
	objUnits map[lang.ObjID][]int
	// baseObjs is every object the base workload owns (initial database
	// plus unit objects); class footprints must be disjoint from it.
	baseObjs map[lang.ObjID]bool
	// extra accumulates the initial values installed by registrations, so
	// InitialDB reflects them for serial replay.
	extra lang.Database
	// gen counts registrations and unregistrations; each class caches its
	// governing unit set keyed by gen, so steady-state request construction
	// (no class churn) rebuilds nothing.
	gen int
}

// NewRegistry wraps base (which may be nil for a cluster serving only
// registered classes) for nSites sites.
func NewRegistry(base Workload, nSites int) (*Registry, error) {
	if nSites <= 0 {
		return nil, fmt.Errorf("workload: registry needs a positive site count")
	}
	r := &Registry{
		base:     base,
		nSites:   nSites,
		byName:   make(map[string]*Class),
		objUnits: make(map[lang.ObjID][]int),
		baseObjs: make(map[lang.ObjID]bool),
		extra:    lang.Database{},
	}
	if base != nil {
		r.baseUnits = base.NumUnits()
		for obj := range base.InitialDB() {
			r.baseObjs[obj] = true
		}
		for u := 0; u < r.baseUnits; u++ {
			for _, obj := range base.UnitObjects(u) {
				r.baseObjs[obj] = true
			}
		}
	}
	return r, nil
}

// Base returns the wrapped base workload (nil when serving only
// registered classes).
func (r *Registry) Base() Workload { return r.base }

// Register adds a compiled class. initial gives starting logical values
// for footprint objects (absent objects start at zero); the caller is
// responsible for installing them into a running system
// (homeostasis.System.AddUnits). The class is assigned the next unit id.
func (r *Registry) Register(c *Class, initial lang.Database) error {
	if c.nSites != r.nSites {
		return fmt.Errorf("workload: class %s compiled for %d sites, registry has %d", c.Name, c.nSites, r.nSites)
	}
	if _, dup := r.byName[c.Name]; dup {
		return fmt.Errorf("%w: %s already registered", ErrDuplicateClass, c.Name)
	}
	for _, obj := range c.footprint {
		if r.baseObjs[obj] {
			return fmt.Errorf("workload: class %s touches %q, owned by the %s workload (base objects cannot be governed by registered classes)",
				c.Name, obj, r.base.Name())
		}
	}
	for obj := range initial {
		// Footprints are tiny (a handful of objects); a scan beats
		// building a set on every registration.
		inFoot := false
		for _, fo := range c.footprint {
			if fo == obj {
				inFoot = true
				break
			}
		}
		if !inFoot {
			return fmt.Errorf("workload: class %s: initial value for %q, which the class never touches", c.Name, obj)
		}
	}
	c.unit = r.baseUnits + len(r.classes)
	c.cachedUnits, c.cachedGen = nil, -1 // gen is never negative: forces a rebuild
	r.classes = append(r.classes, c)
	r.byName[c.Name] = c
	for _, obj := range c.footprint {
		r.objUnits[obj] = append(r.objUnits[obj], c.unit)
	}
	for obj, v := range initial {
		r.extra[obj] = v
	}
	r.gen++
	return nil
}

// Unregister removes the most recently registered class (the rollback
// path when installing its unit into the running system fails). It must
// only be called before any request for the class was built.
func (r *Registry) Unregister(c *Class) error {
	if len(r.classes) == 0 || r.classes[len(r.classes)-1] != c {
		return fmt.Errorf("workload: %s is not the most recently registered class", c.Name)
	}
	r.classes = r.classes[:len(r.classes)-1]
	delete(r.byName, c.Name)
	for _, obj := range c.footprint {
		units := r.objUnits[obj]
		if len(units) > 0 && units[len(units)-1] == c.unit {
			units = units[:len(units)-1]
		}
		if len(units) == 0 {
			delete(r.objUnits, obj)
		} else {
			r.objUnits[obj] = units
		}
	}
	// Initial values stay in extra: the objects were already installed in
	// the stores when the rollback happens, and re-registering under the
	// same name re-validates them.
	r.gen++
	return nil
}

// Class returns a registered class by name (nil when absent).
func (r *Registry) Class(name string) *Class { return r.byName[name] }

// CanDraw reports whether Next has anything to draw from (a base
// workload or at least one registered class). Callers on the serving
// path check it instead of letting Next panic.
func (r *Registry) CanDraw() bool { return r.base != nil || len(r.classes) > 0 }

// Classes returns the registered classes in registration order.
func (r *Registry) Classes() []*Class { return append([]*Class(nil), r.classes...) }

// Request builds one invocation of a registered class, resolving the full
// unit set governing it at call time (its own unit plus every registered
// unit sharing a footprint object, so later-registered overlapping
// classes are checked too).
func (r *Registry) Request(c *Class, args []int64) (Request, error) {
	if r.byName[c.Name] != c {
		return Request{}, fmt.Errorf("workload: class %s is not registered", c.Name)
	}
	return c.request(r.unitsFor(c), args)
}

// unitsFor collects the deduplicated, ascending unit set sharing any of
// the class's footprint objects. The class's own unit is always included
// (its footprint objects index it). The result is cached on the class
// until the registered-class set changes; a fresh slice is built on each
// cache miss (never rewriting the old backing array) because in-flight
// requests hold the previous slice across park points.
func (r *Registry) unitsFor(c *Class) []int {
	if c.cachedGen == r.gen {
		return c.cachedUnits
	}
	var units []int
	for _, obj := range c.footprint {
		for _, u := range r.objUnits[obj] {
			dup := false
			for _, have := range units {
				if have == u {
					dup = true
					break
				}
			}
			if !dup {
				units = append(units, u)
			}
		}
	}
	for i := 1; i < len(units); i++ {
		for j := i; j > 0 && units[j] < units[j-1]; j-- {
			units[j], units[j-1] = units[j-1], units[j]
		}
	}
	c.cachedUnits, c.cachedGen = units, r.gen
	return units
}

// InitialValues returns the initial logical values accumulated by
// registrations (the install set for homeostasis.System.AddUnits).
func (r *Registry) InitialValues(c *Class) lang.Database {
	out := lang.Database{}
	for _, obj := range c.footprint {
		if v, ok := r.extra[obj]; ok {
			out[obj] = v
		}
	}
	return out
}

// Name implements Workload.
func (r *Registry) Name() string {
	if r.base != nil {
		return r.base.Name()
	}
	return "custom"
}

// InitialDB implements Workload: the base initial database plus every
// registered class's initial values. Because registered objects are
// disjoint from base objects and were never written before their
// registration point, serially replaying the commit log against this
// database is equivalent to installing each class's values at its
// registration time.
func (r *Registry) InitialDB() lang.Database {
	db := lang.Database{}
	if r.base != nil {
		db = r.base.InitialDB()
	}
	for obj, v := range r.extra {
		db[obj] = v
	}
	return db
}

// NumUnits implements Workload.
func (r *Registry) NumUnits() int { return r.baseUnits + len(r.classes) }

// UnitObjects implements Workload.
func (r *Registry) UnitObjects(unit int) []lang.ObjID {
	if unit < r.baseUnits {
		return r.base.UnitObjects(unit)
	}
	return r.classes[unit-r.baseUnits].footprint
}

// BuildGlobal implements Workload.
func (r *Registry) BuildGlobal(unit int, folded lang.Database) (treaty.Global, error) {
	if unit < r.baseUnits {
		return r.base.BuildGlobal(unit, folded)
	}
	return r.classes[unit-r.baseUnits].buildGlobal(folded)
}

// Model implements Workload.
func (r *Registry) Model(unit int) treaty.WorkloadModel {
	if unit < r.baseUnits {
		return r.base.Model(unit)
	}
	return classModel{c: r.classes[unit-r.baseUnits]}
}

// Next implements Workload: base workloads keep their request mix; a
// registry without a base draws a uniformly random registered class with
// arguments uniform in its declared bounds (the closed-loop driver path
// for pure-custom clusters).
func (r *Registry) Next(rng *rand.Rand, site int) Request {
	if r.base != nil {
		return r.base.Next(rng, site)
	}
	if len(r.classes) == 0 {
		panic("workload: registry has no base workload and no registered classes to draw from")
	}
	c := r.classes[rng.Intn(len(r.classes))]
	req, err := r.Request(c, c.randArgs(rng))
	if err != nil {
		panic(err) // unreachable: randArgs matches the class's arity
	}
	return req
}
