package workload

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"sync"

	"repro/internal/lang"
	"repro/internal/lia"
	"repro/internal/logic"
	"repro/internal/sqlfront"
	"repro/internal/symtab"
	"repro/internal/treaty"
)

// maxTableRows bounds the symbolic table of a registered class. Guards
// over many independent objects multiply rows; past this bound the class
// is served with pin treaties (always synchronize on write) instead of a
// derived treaty — correct, just without coordination-free commits.
const maxTableRows = 4096

// Class is a transaction class registered at runtime: an L (or lowered
// L++/SQL) transaction analyzed through the same pipeline the built-in
// workloads use at compile time — replica rewrite (Appendix B), symbolic
// table (Section 2), guard preprocessing into a treaty (Appendix C.1).
// One Class owns one treaty unit covering its whole object footprint.
//
// When any stage of the analysis does not apply (unbounded parameters in
// the guard, a table past maxTableRows, preprocessing failure), the class
// degrades to pin treaties: every object is held at its consolidated
// value, so every write triggers a synchronization round whose cleanup
// phase applies the transaction on the folded state. That path is always
// observationally correct; the analysis, when it succeeds, is what makes
// commits coordination-free.
type Class struct {
	// Name identifies the class (Request.Name of its invocations).
	Name string
	// Params are the transaction's parameters in declaration order.
	Params []string
	// Bounds are the declared inclusive parameter ranges used to
	// strengthen parameterized guards (treaty.ParamBounds).
	Bounds treaty.ParamBounds
	// Source is the transaction as registered (before lowering).
	Source *lang.Transaction
	// Lowered is the pure-L form executed and replayed.
	Lowered *lang.Transaction
	// Schema is the relational schema for SQL-registered classes (nil
	// otherwise).
	Schema sqlfront.Schema

	nSites    int
	writes    []lang.ObjID // sorted write set
	footprint []lang.ObjID // sorted read ∪ write set = the unit's objects
	table     *symtab.Table
	rwBySite  []*lang.Transaction
	repArgs   []int64 // representative argument vector for row matching
	pinned    bool    // analysis fallback: pin treaties only
	pinReason string

	unit int // assigned by the Registry

	// fam links the class to its isomorphism family when it was compiled
	// through an ArtifactCache (nil for scratch-compiled classes).
	// canonObjs is the class's own object footprint in canonical
	// first-occurrence order; fromRep maps the representative's objects
	// onto this class's (nil for the representative itself). rwMu guards
	// the lazy construction of rwBySite for family members, which defer
	// the per-site replica rewrites until the workload model first
	// samples.
	fam       *classFamily
	canonObjs []lang.ObjID
	fromRep   map[lang.ObjID]lang.ObjID
	rwMu      sync.Mutex

	// cachedUnits/cachedGen memoize the registry's unitsFor result for the
	// registry generation cachedGen (see Registry.gen).
	cachedUnits []int
	cachedGen   int

	// envs is a free-list of pooled execution environments. Guarded by the
	// runtime's execution contract (exec only runs while holding the
	// execution right); entries checked out survive park points because
	// each executing proc owns its own classEnv.
	envs []*classEnv
}

// NewClass analyzes an already-parsed transaction into a registrable
// class. The transaction may use L++ arrays (they are lowered); bounds
// may be nil when the transaction has no parameters or their values do
// not reach branch guards.
func NewClass(txn *lang.Transaction, nSites int, bounds treaty.ParamBounds) (*Class, error) {
	if nSites <= 0 {
		return nil, fmt.Errorf("workload: class %s: nSites must be positive", txn.Name)
	}
	if txn.Name == "" {
		return nil, fmt.Errorf("workload: class has no transaction name")
	}
	for p := range bounds {
		found := false
		for _, q := range txn.Params {
			if q == p {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("workload: class %s: bound for unknown parameter %q", txn.Name, p)
		}
		if b := bounds[p]; b[0] > b[1] {
			return nil, fmt.Errorf("workload: class %s: empty bound [%d,%d] for %q", txn.Name, b[0], b[1], p)
		}
	}
	lowered := txn
	if len(txn.Arrays) > 0 {
		var err error
		lowered, err = lang.Lower(txn)
		if err != nil {
			return nil, fmt.Errorf("workload: class %s: %w", txn.Name, err)
		}
	}
	writeSet := lang.WriteSet(lowered.Body, nil)
	readSet := lang.ReadSet(lowered.Body, nil)
	if len(writeSet) == 0 && len(readSet) == 0 {
		return nil, fmt.Errorf("workload: class %s touches no database objects", txn.Name)
	}
	foot := make(map[lang.ObjID]bool, len(writeSet)+len(readSet))
	replicated := make(map[lang.ObjID]bool, len(foot))
	for obj := range readSet {
		foot[obj] = true
	}
	for obj := range writeSet {
		foot[obj] = true
	}
	for obj := range foot {
		if base, site, ok := lang.IsDeltaObj(obj); ok {
			return nil, fmt.Errorf("workload: class %s: object %q collides with the delta encoding (%s@site%d)",
				txn.Name, obj, base, site)
		}
		replicated[obj] = true
	}
	c := &Class{
		Name:      txn.Name,
		Params:    append([]string(nil), txn.Params...),
		Bounds:    bounds,
		Source:    txn,
		Lowered:   lowered,
		nSites:    nSites,
		writes:    sortedObjs(writeSet),
		footprint: sortedObjs(foot),
	}
	// Representative arguments: the lower bound when declared, zero
	// otherwise. Used to match a symbolic-table row before strengthening
	// over the whole range.
	c.repArgs = make([]int64, len(c.Params))
	for i, p := range c.Params {
		if b, ok := bounds[p]; ok {
			c.repArgs[i] = b[0]
		}
	}
	// The Appendix B rewrite per executing site; site 0's symbolic table
	// drives treaty generation (guards range over logical values, which
	// are site-symmetric).
	c.rwBySite = make([]*lang.Transaction, nSites)
	for k := 0; k < nSites; k++ {
		c.rwBySite[k] = lang.Simplify(lang.ReplicaRewrite(lowered, k, nSites, replicated))
	}
	table, err := symtab.Build(c.rwBySite[0])
	switch {
	case err != nil:
		c.pinned = true
		c.pinReason = fmt.Sprintf("symbolic table: %v", err)
	case len(table.Rows) > maxTableRows:
		c.pinned = true
		c.pinReason = fmt.Sprintf("symbolic table has %d rows (> %d)", len(table.Rows), maxTableRows)
	default:
		c.table = table
	}
	return c, nil
}

// CompileLClass parses an L/L++ source containing exactly one transaction
// and analyzes it into a class.
func CompileLClass(src string, nSites int, bounds treaty.ParamBounds) (*Class, error) {
	txns, err := lang.ParseProgram(src)
	if err != nil {
		return nil, fmt.Errorf("workload: parsing class source: %w", err)
	}
	if len(txns) != 1 {
		return nil, fmt.Errorf("workload: class source must contain exactly one transaction, got %d", len(txns))
	}
	lang.ResolveParams(txns[0])
	return NewClass(txns[0], nSites, bounds)
}

// CompileSQLClass compiles a sqlfront script (CREATE TABLE + DML) into a
// class named name. The returned class carries the relational schema so
// callers can load initial rows with sqlfront.LoadRow.
func CompileSQLClass(name, script string, nSites int, bounds treaty.ParamBounds) (*Class, error) {
	if name == "" {
		return nil, fmt.Errorf("workload: SQL class needs a name")
	}
	txn, schema, err := sqlfront.Compile(name, script)
	if err != nil {
		return nil, err
	}
	c, err := NewClass(txn, nSites, bounds)
	if err != nil {
		return nil, err
	}
	c.Schema = schema
	return c, nil
}

// Unit returns the treaty unit assigned to the class at registration.
func (c *Class) Unit() int { return c.unit }

// Footprint returns the class's full object footprint (the unit's
// objects), sorted.
func (c *Class) Footprint() []lang.ObjID { return c.footprint }

// Writes returns the class's write set, sorted.
func (c *Class) Writes() []lang.ObjID { return c.writes }

// Pinned reports whether the class fell back to pin treaties, and why.
func (c *Class) Pinned() (bool, string) { return c.pinned, c.pinReason }

// TableString renders the class's symbolic table (empty when the class is
// pinned without analysis).
func (c *Class) TableString() string {
	if c.table == nil {
		return ""
	}
	return c.table.String()
}

// buildGlobal derives the unit's global treaty from the folded database
// restricted to the class's footprint. Analysis failures at any stage
// fall back to the always-valid pin treaty, exactly like the TPC-C
// boundary regions. Family-cached classes route through the family's
// preprocessing memo: the guard is analyzed once per distinct
// folded-value vector in the representative's namespace, and each
// member's global is a rename of that shared result.
func (c *Class) buildGlobal(folded lang.Database) (treaty.Global, error) {
	if c.pinned {
		return c.pinGlobal(folded), nil
	}
	if c.fam != nil {
		return c.familyGlobal(folded)
	}
	params := make(map[string]int64, len(c.Params))
	for i, p := range c.Params {
		params[p] = c.repArgs[i]
	}
	row, err := c.table.MatchRow(folded, params)
	if err == nil {
		g, perr := treaty.Preprocess(c.table.Rows[row].Guard, folded, params, c.Bounds)
		if perr == nil {
			return g, nil
		}
	}
	// Representative arguments sit in a boundary region (or the guard
	// cannot be strengthened over the declared ranges): pin until the
	// state moves on.
	return c.pinGlobal(folded), nil
}

// familyGlobal is buildGlobal through the family memo. On a miss the
// folded values are translated into the representative's namespace
// (positionally, via the canonical object order), matched and
// preprocessed there exactly as the scratch path would, and the result
// — success or pin decision — is memoized for every member at those
// values. Hits and misses both end in a Rename, which copies, so the
// memoized Global is never aliased by callers.
func (c *Class) familyGlobal(folded lang.Database) (treaty.Global, error) {
	rep := c.fam.rep
	kb := make([]byte, 0, 16*len(c.canonObjs))
	for _, obj := range c.canonObjs {
		kb = strconv.AppendInt(kb, folded.Get(obj), 10)
		kb = append(kb, ',')
	}
	key := string(kb)
	c.fam.mu.Lock()
	e, ok := c.fam.globals[key]
	c.fam.mu.Unlock()
	if !ok {
		repFolded := folded
		if c.fromRep != nil {
			repFolded = make(lang.Database, len(c.canonObjs))
			for i, obj := range c.canonObjs {
				repFolded[rep.canonObjs[i]] = folded.Get(obj)
			}
		}
		params := make(map[string]int64, len(rep.Params))
		for i, p := range rep.Params {
			params[p] = rep.repArgs[i]
		}
		if row, err := rep.table.MatchRow(repFolded, params); err == nil {
			if g, perr := treaty.Preprocess(rep.table.Rows[row].Guard, repFolded, params, rep.Bounds); perr == nil {
				e = famGlobal{g: g, ok: true}
			}
		}
		c.fam.mu.Lock()
		if len(c.fam.globals) >= famGlobalBound {
			clear(c.fam.globals)
		}
		c.fam.globals[key] = e
		c.fam.mu.Unlock()
	}
	if !e.ok {
		return c.pinGlobal(folded), nil
	}
	return e.g.Rename(c.mapFromRep), nil
}

// mapFromRep renames one representative-namespace object (base or
// delta-encoded) into this class's namespace; the identity for the
// representative itself.
func (c *Class) mapFromRep(obj lang.ObjID) lang.ObjID {
	if c.fromRep == nil {
		return obj
	}
	if base, site, ok := lang.IsDeltaObj(obj); ok {
		if m, ok2 := c.fromRep[base]; ok2 {
			return lang.DeltaObj(m, site)
		}
		return obj
	}
	if m, ok := c.fromRep[obj]; ok {
		return m
	}
	return obj
}

// pinGlobal pins every footprint object's logical value at its folded
// value: base + sum of deltas = folded. Any write violates and enters the
// cleanup phase, which applies the transaction on consolidated state —
// always observationally correct.
func (c *Class) pinGlobal(folded lang.Database) treaty.Global {
	var g treaty.Global
	for _, obj := range c.footprint {
		pin := lia.NewTerm()
		pin.AddVar(logic.Obj(obj), 1)
		for k := 0; k < c.nSites; k++ {
			pin.AddVar(logic.Obj(lang.DeltaObj(obj, k)), 1)
		}
		pin.Const = -folded.Get(obj)
		g.Constraints = append(g.Constraints, lia.Constraint{Term: pin, Op: lia.EQ})
	}
	return g
}

// model samples futures for Algorithm 1 by replaying the class itself:
// random sites invoke the replica-rewritten transaction with arguments
// drawn uniformly from the declared bounds.
type classModel struct{ c *Class }

// SampleFuture implements treaty.WorkloadModel.
func (m classModel) SampleFuture(rng *rand.Rand, db lang.Database, l int) []lang.Database {
	cur := db.Clone()
	out := make([]lang.Database, 0, l)
	for i := 0; i < l; i++ {
		site := rng.Intn(m.c.nSites)
		if res, err := lang.Eval(m.c.rw(site), cur, m.c.randArgs(rng)...); err == nil {
			cur = res.DB
		}
		out = append(out, cur.Clone())
	}
	return out
}

// rw returns the site-k replica rewrite. Scratch-compiled classes build
// all rewrites at compile time (the symbolic table needs site 0's
// form); family members defer them to first use here — typically the
// first workload-model sample of a negotiation, long after
// registration, and never at all while the configuration cache keeps
// serving isomorphic units.
func (c *Class) rw(site int) *lang.Transaction {
	c.rwMu.Lock()
	defer c.rwMu.Unlock()
	if c.rwBySite == nil {
		replicated := make(map[lang.ObjID]bool, len(c.footprint))
		for _, obj := range c.footprint {
			replicated[obj] = true
		}
		c.rwBySite = make([]*lang.Transaction, c.nSites)
		for k := 0; k < c.nSites; k++ {
			c.rwBySite[k] = lang.Simplify(lang.ReplicaRewrite(c.Lowered, k, c.nSites, replicated))
		}
	}
	return c.rwBySite[site]
}

// randArgs draws an argument vector uniformly from the declared bounds
// (parameters without bounds use their representative value).
func (c *Class) randArgs(rng *rand.Rand) []int64 {
	args := make([]int64, len(c.Params))
	for i, p := range c.Params {
		if b, ok := c.Bounds[p]; ok && b[1] > b[0] {
			args[i] = b[0] + rng.Int63n(b[1]-b[0]+1)
		} else {
			args[i] = c.repArgs[i]
		}
	}
	return args
}

// execAbort carries a SiteView error out of the evaluator, which has no
// error channel in its read/write hooks.
type execAbort struct{ err error }

// classEnv is a reusable execution environment: the lang.Env and its
// read/write hook closures are built once and recycled through the
// class's free-list, so the exec hot path allocates nothing. The hooks
// are bound to the classEnv and dispatch through its current view.
type classEnv struct {
	v   SiteView
	env lang.Env
}

func (ce *classEnv) read(obj lang.ObjID) int64 {
	x, err := ce.v.ReadLogical(obj)
	if err != nil {
		panic(execAbort{err})
	}
	return x
}

func (ce *classEnv) write(obj lang.ObjID, val int64) {
	if err := ce.v.WriteLogical(obj, val); err != nil {
		panic(execAbort{err})
	}
}

// getEnv checks out a pooled environment targeting v. Params and Arrays
// are left as-is (EvalIn fully overwrites them for this class); Temps and
// the print log are cleared so no state leaks between invocations.
func (c *Class) getEnv(v SiteView) *classEnv {
	var ce *classEnv
	if n := len(c.envs); n > 0 {
		ce = c.envs[n-1]
		c.envs[n-1] = nil
		c.envs = c.envs[:n-1]
		for k := range ce.env.Temps {
			delete(ce.env.Temps, k)
		}
		ce.env.Log = ce.env.Log[:0]
	} else {
		ce = &classEnv{}
		ce.env.ReadFn = ce.read
		ce.env.WriteFn = ce.write
	}
	ce.v = v
	return ce
}

func (c *Class) putEnv(ce *classEnv) {
	ce.v = nil
	c.envs = append(c.envs, ce)
}

// exec runs the lowered transaction against a site view: every database
// read and write goes through the view's logical accessors (the delta
// encoding under homeostasis, direct access under 2PC/local), and the
// print log is forwarded after successful evaluation.
func (c *Class) exec(v SiteView, args []int64) (err error) {
	ce := c.getEnv(v)
	defer c.putEnv(ce)
	defer func() {
		if r := recover(); r != nil {
			a, ok := r.(execAbort)
			if !ok {
				panic(r)
			}
			err = a.err
		}
	}()
	if err := lang.EvalIn(c.Lowered, &ce.env, args...); err != nil {
		return err
	}
	for _, x := range ce.env.Log {
		v.Print(x)
	}
	return nil
}

// apply performs the transaction's logical effect on a folded database
// (the cleanup phase's T' execution and serial replay).
func (c *Class) apply(db lang.Database, args []int64) []int64 {
	res, err := lang.Eval(c.Lowered, db, args...)
	if err != nil {
		// Unreachable after successful compilation: evaluation of a pure
		// lowered transaction has no failing operations.
		return nil
	}
	for obj, v := range res.DB {
		db[obj] = v
	}
	return res.Log
}

// request builds one invocation of the class. units is the full set of
// treaty units governing the request (the class's own unit plus any other
// registered unit sharing footprint objects).
func (c *Class) request(units []int, args []int64) (Request, error) {
	if len(args) != len(c.Params) {
		return Request{}, fmt.Errorf("workload: class %s expects %d args (%v), got %d",
			c.Name, len(c.Params), c.Params, len(args))
	}
	args = append([]int64(nil), args...)
	return Request{
		Name:    c.Name,
		Args:    args,
		Units:   units,
		Objects: c.footprint,
		Exec:    func(v SiteView) error { return c.exec(v, args) },
		Apply:   func(db lang.Database) []int64 { return c.apply(db, args) },
	}, nil
}

func sortedObjs(set map[lang.ObjID]bool) []lang.ObjID {
	out := make([]lang.ObjID, 0, len(set))
	for obj := range set {
		out = append(out, obj)
	}
	sortObjIDs(out)
	return out
}

func sortObjIDs(objs []lang.ObjID) {
	sort.Slice(objs, func(i, j int) bool { return objs[i] < objs[j] })
}
