package workload

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/lang"
	"repro/internal/treaty"
)

// TestArtifactCacheMatchesScratch is the registration-cache soundness
// property: a class compiled through the artifact cache (sharing an
// isomorphic family's symbolic table and guard preprocessing) must be
// indistinguishable from the same source compiled from scratch —
// footprint, write set, pin decision, and, for randomized folded
// states, the derived global treaty, constraint for constraint.
func TestArtifactCacheMatchesScratch(t *testing.T) {
	const nSites = 4
	rng := rand.New(rand.NewSource(5))
	ac := NewArtifactCache()
	for trial := 0; trial < 30; trial++ {
		// Isomorphic structure under fresh names every trial: only the
		// object and transaction names vary (bounds are part of the
		// family key, so they stay fixed).
		obj := fmt.Sprintf("acct_%c%d", 'a'+byte(trial%26), rng.Intn(1000))
		src := fmt.Sprintf(
			"transaction T%d(amt) { v := read(%s); if (v - amt > 0) then write(%s = v - amt) else skip }",
			trial, obj, obj)
		bounds := treaty.ParamBounds{"amt": {1, 5}}

		cached, hit, err := ac.CompileL(src, nSites, bounds)
		if err != nil {
			t.Fatalf("trial %d: cached compile: %v", trial, err)
		}
		if (trial > 0) != hit {
			t.Fatalf("trial %d: cache hit = %v, want %v", trial, hit, trial > 0)
		}
		scratch, err := CompileLClass(src, nSites, bounds)
		if err != nil {
			t.Fatalf("trial %d: scratch compile: %v", trial, err)
		}

		if got, want := fmt.Sprint(cached.Footprint()), fmt.Sprint(scratch.Footprint()); got != want {
			t.Fatalf("trial %d: footprint %s, scratch %s", trial, got, want)
		}
		if got, want := fmt.Sprint(cached.Writes()), fmt.Sprint(scratch.Writes()); got != want {
			t.Fatalf("trial %d: writes %s, scratch %s", trial, got, want)
		}
		cp, cr := cached.Pinned()
		sp, sr := scratch.Pinned()
		if cp != sp || cr != sr {
			t.Fatalf("trial %d: pinned (%v,%q), scratch (%v,%q)", trial, cp, cr, sp, sr)
		}

		// Globals must agree at randomized folded states, including ones
		// that cross the guard boundary into the pin fallback.
		for probe := 0; probe < 8; probe++ {
			folded := lang.Database{lang.ObjID(obj): rng.Int63n(40) - 5}
			for k := 0; k < nSites; k++ {
				folded[lang.DeltaObj(lang.ObjID(obj), k)] = 0
			}
			cg, cerr := cached.buildGlobal(folded)
			sg, serr := scratch.buildGlobal(folded)
			if (cerr != nil) != (serr != nil) {
				t.Fatalf("trial %d probe %d: cached err %v, scratch err %v", trial, probe, cerr, serr)
			}
			if cg.String() != sg.String() {
				t.Fatalf("trial %d probe %d (folded %v):\ncached:  %s\nscratch: %s",
					trial, probe, folded, cg.String(), sg.String())
			}
		}

		// The lazily built replica rewrites must execute identically.
		for k := 0; k < nSites; k++ {
			if got, want := cached.rw(k).String(), scratch.rw(k).String(); got != want {
				t.Fatalf("trial %d site %d rewrite:\ncached:  %s\nscratch: %s", trial, k, got, want)
			}
		}
	}
	if ac.Families() != 1 {
		t.Fatalf("families = %d, want 1 (every trial is isomorphic)", ac.Families())
	}
}

// TestArtifactCacheSplitsNonIsomorphic: structural or bounds differences
// must land in distinct families — sharing there would be unsound.
func TestArtifactCacheSplitsNonIsomorphic(t *testing.T) {
	ac := NewArtifactCache()
	srcs := []string{
		// The family everything else must NOT join.
		"transaction A(n) { v := read(x); if (v - n > 0) then write(x = v - n) else skip }",
		// Different guard shape (>= via > over v-n+1... actually distinct constant).
		"transaction B(n) { v := read(y); if (v - n > 1) then write(y = v - n) else skip }",
		// Two-object footprint.
		"transaction C(n) { v := read(p); if (v - n > 0) then write(q = v - n) else skip }",
		// No branch at all.
		"transaction D(n) { v := read(z); write(z = v - n) }",
	}
	for i, src := range srcs {
		if _, hit, err := ac.CompileL(src, 2, treaty.ParamBounds{"n": {1, 5}}); err != nil {
			t.Fatalf("class %d: %v", i, err)
		} else if hit {
			t.Fatalf("class %d: unexpectedly joined an existing family", i)
		}
	}
	// Same structure as A but different bounds: its own family too.
	if _, hit, err := ac.CompileL(
		"transaction E(n) { v := read(w); if (v - n > 0) then write(w = v - n) else skip }",
		2, treaty.ParamBounds{"n": {1, 9}}); err != nil {
		t.Fatal(err)
	} else if hit {
		t.Fatal("bounds change unexpectedly joined the family")
	}
	if ac.Families() != 5 {
		t.Fatalf("families = %d, want 5", ac.Families())
	}
}
