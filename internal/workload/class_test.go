package workload_test

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/homeostasis"
	"repro/internal/lang"
	"repro/internal/micro"
	"repro/internal/rt"
	"repro/internal/sim"
	"repro/internal/treaty"
	"repro/internal/workload"
)

const orderSrc = `
transaction Order() {
	v := read(q);
	if (v > 1) then
		write(q = v - 1)
	else
		write(q = 99)
}`

const depositSrc = `
transaction Deposit(n) {
	v := read(acct);
	write(acct = v + n)
}`

const withdrawSrc = `
transaction Withdraw(n) {
	v := read(bal);
	if (v - n > 0) then
		write(bal = v - n)
	else
		skip
}`

func TestCompileLClass(t *testing.T) {
	c, err := workload.CompileLClass(orderSrc, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != "Order" {
		t.Fatalf("name = %q", c.Name)
	}
	if pinned, why := c.Pinned(); pinned {
		t.Fatalf("Order pinned: %s", why)
	}
	if got := c.Footprint(); len(got) != 1 || got[0] != "q" {
		t.Fatalf("footprint = %v", got)
	}
	if c.TableString() == "" {
		t.Fatal("no symbolic table")
	}
}

func TestCompileLClassErrors(t *testing.T) {
	if _, err := workload.CompileLClass("transaction T() { skip }", 2, nil); err == nil {
		t.Fatal("no-object class accepted")
	}
	if _, err := workload.CompileLClass(depositSrc, 2, treaty.ParamBounds{"zz": {0, 1}}); err == nil {
		t.Fatal("bound for unknown parameter accepted")
	}
	if _, err := workload.CompileLClass(depositSrc+orderSrc, 2, nil); err == nil {
		t.Fatal("two-transaction source accepted")
	}
	if _, err := workload.CompileLClass("transaction D() { write(x@d1 = 1) }", 2, nil); err == nil {
		t.Fatal("delta-named object accepted")
	}
}

func TestCompileSQLClass(t *testing.T) {
	c, err := workload.CompileSQLClass("AddStock", `
CREATE TABLE inv (item, qty) SIZE 4
UPDATE inv SET qty = qty + @d WHERE item = @k
SELECT SUM(qty) FROM inv WHERE item = @k
`, 2, treaty.ParamBounds{"d": {1, 3}, "k": {1, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Params) != 2 || c.Params[0] != "d" || c.Params[1] != "k" {
		t.Fatalf("params = %v", c.Params)
	}
	if c.Schema["inv"] == nil {
		t.Fatal("schema not carried")
	}
	if len(c.Footprint()) != 8 {
		t.Fatalf("footprint = %v, want the 8 inv cells", c.Footprint())
	}
}

// registerLive registers a class on a running system the way the public
// API does: compile, add to the registry, install units.
func register(t *testing.T, sys *homeostasis.System, reg *workload.Registry, src string, bounds treaty.ParamBounds, initial lang.Database) *workload.Class {
	t.Helper()
	c, err := workload.CompileLClass(src, sys.Opts.Topo.NSites(), bounds)
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(c, initial); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddUnits(initial); err != nil {
		t.Fatal(err)
	}
	return c
}

// TestRegisteredClassOnSim registers classes never seen at construction
// time on a simulated 2-site cluster, executes them, and verifies serial
// replay equivalence — the core acceptance path of the dynamic
// registration design.
func TestRegisteredClassOnSim(t *testing.T) {
	for _, mode := range []homeostasis.Mode{homeostasis.ModeHomeo, homeostasis.ModeOpt, homeostasis.ModeTwoPC} {
		t.Run(mode.String(), func(t *testing.T) {
			reg, err := workload.NewRegistry(nil, 2)
			if err != nil {
				t.Fatal(err)
			}
			e := sim.NewEngine(1)
			sys, err := homeostasis.New(e, reg, homeostasis.Options{
				Mode:      mode,
				Topo:      cluster.Uniform(2, 100*sim.Millisecond),
				EnableLog: true,
				Seed:      7,
			})
			if err != nil {
				t.Fatal(err)
			}

			dep := register(t, sys, reg, depositSrc, nil, lang.Database{"acct": 10})
			wd := register(t, sys, reg, withdrawSrc, treaty.ParamBounds{"n": {1, 5}}, nil)
			// Withdraw starts at zero balance; deposit into it first.
			dep2 := register(t, sys, reg,
				strings.NewReplacer("acct", "bal", "Deposit", "Fund").Replace(depositSrc),
				nil, lang.Database{"bal": 50})

			rng := rand.New(rand.NewSource(3))
			var execErr error
			for i := 0; i < 200; i++ {
				site := i % 2
				var req workload.Request
				switch i % 3 {
				case 0:
					req, err = reg.Request(dep, []int64{int64(rng.Intn(7) - 3)})
				case 1:
					req, err = reg.Request(wd, []int64{int64(1 + rng.Intn(5))})
				case 2:
					req, err = reg.Request(dep2, []int64{int64(rng.Intn(4))})
				}
				if err != nil {
					t.Fatal(err)
				}
				e.Spawn(i, func(p rt.Proc) {
					if _, err := sys.ExecRequest(p, site, req); err != nil && execErr == nil {
						execErr = err
					}
				})
				e.Run()
			}
			if execErr != nil {
				t.Fatal(execErr)
			}
			if err := sys.CheckReplayEquivalence(); err != nil {
				t.Fatal(err)
			}
			if got := len(sys.CommitLog); got != 200 {
				t.Fatalf("committed %d of 200", got)
			}
		})
	}
}

// TestRegisteredSQLClassOnSim drives the full SQL path — sqlfront →
// lang → symtab → treaty generation → execution — for a client-registered
// class, checking SELECT results and replay equivalence.
func TestRegisteredSQLClassOnSim(t *testing.T) {
	reg, err := workload.NewRegistry(nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	e := sim.NewEngine(1)
	sys, err := homeostasis.New(e, reg, homeostasis.Options{
		Mode:      homeostasis.ModeHomeo,
		Topo:      cluster.Uniform(2, 100*sim.Millisecond),
		EnableLog: true,
		Seed:      7,
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := workload.CompileSQLClass("Restock", `
CREATE TABLE inv (item, qty) SIZE 2
UPDATE inv SET qty = qty + @d WHERE item = @k
SELECT SUM(qty) FROM inv WHERE item = @k
`, 2, treaty.ParamBounds{"d": {1, 3}, "k": {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	initial := lang.Database{}
	if err := sqlLoad(initial, c, 0, 1, 10); err != nil {
		t.Fatal(err)
	}
	if err := sqlLoad(initial, c, 1, 2, 20); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(c, initial); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddUnits(initial); err != nil {
		t.Fatal(err)
	}

	want := map[int64]int64{1: 10, 2: 20}
	var execErr error
	for i := 0; i < 60; i++ {
		site := i % 2
		k := int64(1 + i%2)
		d := int64(1 + i%3)
		req, err := reg.Request(c, []int64{d, k})
		if err != nil {
			t.Fatal(err)
		}
		want[k] += d
		wantSum := want[k]
		e.Spawn(i, func(p rt.Proc) {
			res, err := sys.ExecRequest(p, site, req)
			if err != nil && execErr == nil {
				execErr = err
				return
			}
			if len(res.Log) != 1 || res.Log[0] != wantSum {
				t.Errorf("txn %d: SELECT log = %v, want [%d]", i, res.Log, wantSum)
			}
		})
		e.Run()
	}
	if execErr != nil {
		t.Fatal(execErr)
	}
	if err := sys.CheckReplayEquivalence(); err != nil {
		t.Fatal(err)
	}
}

// sqlLoad loads a row into the class's table via the carried schema.
func sqlLoad(db lang.Database, c *workload.Class, slot int64, values ...int64) error {
	return sqlfrontLoad(db, c, "inv", slot, values...)
}

func sqlfrontLoad(db lang.Database, c *workload.Class, table string, slot int64, values ...int64) error {
	tbl := c.Schema[table]
	if tbl == nil {
		return errors.New("no such table")
	}
	for col, v := range values {
		db[lang.ArrayObj(table, slot*int64(len(tbl.Cols))+int64(col))] = v
	}
	return nil
}

// TestRegistryConflicts verifies base-object protection and duplicate
// names.
func TestRegistryConflicts(t *testing.T) {
	base, err := micro.New(micro.Config{Items: 10, Refill: 100, NSites: 2})
	if err != nil {
		t.Fatal(err)
	}
	reg, err := workload.NewRegistry(base, 2)
	if err != nil {
		t.Fatal(err)
	}
	if reg.NumUnits() != 10 {
		t.Fatalf("base units = %d", reg.NumUnits())
	}
	// A class touching a base stock object must be rejected. Micro's
	// object names are not expressible in L source, so build the AST
	// directly.
	item := micro.ItemObj(3)
	clash, err := workload.NewClass(&lang.Transaction{
		Name: "Clash",
		Body: lang.SeqOf(
			lang.Assign{Var: "v", E: lang.Read{Obj: item}},
			lang.WriteCmd{Obj: item, E: lang.Bin{Op: lang.OpSub, L: lang.TempVar{Name: "v"}, R: lang.IntLit{Value: 1}}},
		),
	}, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(clash, nil); err == nil {
		t.Fatal("base-object clash accepted")
	}
	dep, err := workload.CompileLClass(depositSrc, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(dep, nil); err != nil {
		t.Fatal(err)
	}
	dup, _ := workload.CompileLClass(depositSrc, 2, nil)
	if err := reg.Register(dup, nil); err == nil {
		t.Fatal("duplicate name accepted")
	}
	if dep.Unit() != 10 {
		t.Fatalf("unit = %d, want 10", dep.Unit())
	}
}

// TestOverlappingClassesShareUnits: two classes over the same object must
// each check the other's treaty (units resolved at request time).
func TestOverlappingClassesShareUnits(t *testing.T) {
	reg, err := workload.NewRegistry(nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	a, err := workload.CompileLClass(depositSrc, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(a, lang.Database{"acct": 5}); err != nil {
		t.Fatal(err)
	}
	b, err := workload.CompileLClass(
		strings.NewReplacer("bal", "acct", "Withdraw", "Spend").Replace(withdrawSrc), 2,
		treaty.ParamBounds{"n": {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(b, nil); err != nil {
		t.Fatal(err)
	}
	reqA, err := reg.Request(a, []int64{1})
	if err != nil {
		t.Fatal(err)
	}
	reqB, err := reg.Request(b, []int64{1})
	if err != nil {
		t.Fatal(err)
	}
	if len(reqA.Units) != 2 || len(reqB.Units) != 2 {
		t.Fatalf("units A=%v B=%v, want both to span both units", reqA.Units, reqB.Units)
	}
}
