package micro

import (
	"math/rand"
	"testing"

	"repro/internal/lang"
	"repro/internal/treaty"
	"repro/internal/workload"
)

func mustNew(t *testing.T, cfg Config) *Workload {
	t.Helper()
	w, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestSymbolicTableShape(t *testing.T) {
	w := mustNew(t, Config{Items: 4, Refill: 100, NSites: 2})
	if n := len(w.Table().Rows); n != 2 {
		t.Fatalf("rows = %d, want 2 (decrement / refill)\n%s", n, w.Table())
	}
}

// fakeView runs stored procedures directly against a plain database, for
// semantics comparison with the L++ source.
type fakeView struct {
	db  lang.Database
	log []int64
}

func (v *fakeView) Site() int   { return 0 }
func (v *fakeView) NSites() int { return 1 }
func (v *fakeView) ReadLogical(obj lang.ObjID) (int64, error) {
	return v.db.Get(obj), nil
}
func (v *fakeView) WriteLogical(obj lang.ObjID, val int64) error {
	v.db.Set(obj, val)
	return nil
}
func (v *fakeView) Print(x int64) { v.log = append(v.log, x) }

// TestStoredProcedureMatchesSource: the compiled Go stored procedure must
// behave exactly like the L++ transaction it was derived from.
func TestStoredProcedureMatchesSource(t *testing.T) {
	w := mustNew(t, Config{Items: 1, Refill: 17, NSites: 2})
	src, err := lang.ParseTransaction(Source(17))
	if err != nil {
		t.Fatal(err)
	}
	lang.ResolveParams(src)
	for qty := int64(-3); qty <= 20; qty++ {
		// L++ semantics on the canonical object.
		res, err := lang.Eval(src, lang.Database{canonObj: qty})
		if err != nil {
			t.Fatal(err)
		}
		// Stored procedure on the concrete object.
		view := &fakeView{db: lang.Database{ItemObj(0): qty}}
		req := w.MakeRequest([]int{0})
		if err := req.Exec(view); err != nil {
			t.Fatal(err)
		}
		if got, want := view.db.Get(ItemObj(0)), res.DB.Get(canonObj); got != want {
			t.Fatalf("qty=%d: stored procedure wrote %d, L++ wrote %d", qty, got, want)
		}
		// Apply (the cleanup-phase form) must agree too.
		applied := lang.Database{ItemObj(0): qty}
		req.Apply(applied)
		if got := applied.Get(ItemObj(0)); got != res.DB.Get(canonObj) {
			t.Fatalf("qty=%d: Apply wrote %d, L++ wrote %d", qty, got, res.DB.Get(canonObj))
		}
	}
}

func TestBuildGlobalDecrementRegion(t *testing.T) {
	w := mustNew(t, Config{Items: 2, Refill: 100, NSites: 3})
	folded := lang.Database{ItemObj(1): 50}
	g, err := w.BuildGlobal(1, folded)
	if err != nil {
		t.Fatal(err)
	}
	// The treaty governs the logical value q + sum of deltas: it must hold
	// while logical > 1 and fail at logical <= 1.
	obj := ItemObj(1)
	mk := func(base, d0, d1, d2 int64) lang.Database {
		return lang.Database{
			obj:                   base,
			lang.DeltaObj(obj, 0): d0,
			lang.DeltaObj(obj, 1): d1,
			lang.DeltaObj(obj, 2): d2,
		}
	}
	if !g.Holds(mk(50, 0, 0, 0)) {
		t.Fatal("treaty should hold at q=50")
	}
	if !g.Holds(mk(50, -20, -18, -10)) { // logical 2
		t.Fatal("treaty should hold at logical 2")
	}
	if g.Holds(mk(50, -20, -19, -10)) { // logical 1
		t.Fatal("treaty should fail at logical 1")
	}
}

func TestBuildGlobalRefillRegion(t *testing.T) {
	w := mustNew(t, Config{Items: 2, Refill: 100, NSites: 2})
	// At logical quantity 1 the refill row matches; its guard is q <= 1.
	g, err := w.BuildGlobal(0, lang.Database{ItemObj(0): 1})
	if err != nil {
		t.Fatal(err)
	}
	obj := ItemObj(0)
	if !g.Holds(lang.Database{obj: 1}) {
		t.Fatal("refill-region treaty should hold at q=1")
	}
	if g.Holds(lang.Database{obj: 5}) {
		t.Fatal("refill-region treaty should fail at q=5")
	}
}

func TestTreatyPipelineEndToEnd(t *testing.T) {
	// Full per-unit pipeline: guard -> global -> template -> equal-split
	// config -> local treaties; decrements within the slack hold, beyond
	// it violate.
	const nSites = 2
	w := mustNew(t, Config{Items: 1, Refill: 10, NSites: nSites})
	folded := lang.Database{ItemObj(0): 10}
	g, err := w.BuildGlobal(0, folded)
	if err != nil {
		t.Fatal(err)
	}
	place := func(obj lang.ObjID) int {
		if _, site, ok := lang.IsDeltaObj(obj); ok {
			return site
		}
		return 0
	}
	tmpl, err := treaty.BuildTemplate(g, nSites, place)
	if err != nil {
		t.Fatal(err)
	}
	cfg := tmpl.EqualSplitConfig(folded)
	if err := tmpl.Validate(cfg, folded); err != nil {
		t.Fatal(err)
	}
	locals, _ := tmpl.LocalTreaties(cfg)
	obj := ItemObj(0)
	// Slack = 10 - 2 = 8, split 4/4. Site 1's treaty is over its delta
	// only: 4 decrements fine, 5 violate.
	site1 := lang.Database{lang.DeltaObj(obj, 1): -4}
	if !locals[1].Holds(site1) {
		t.Fatalf("4 decrements should satisfy site 1 treaty: %s", locals[1])
	}
	site1[lang.DeltaObj(obj, 1)] = -5
	if locals[1].Holds(site1) {
		t.Fatalf("5 decrements should violate site 1 treaty: %s", locals[1])
	}
}

func TestModelSampleFuture(t *testing.T) {
	w := mustNew(t, Config{Items: 1, Refill: 100, NSites: 2})
	m := w.Model(0)
	rng := rand.New(rand.NewSource(1))
	futures := m.SampleFuture(rng, lang.Database{ItemObj(0): 100}, 30)
	if len(futures) != 30 {
		t.Fatalf("len = %d, want 30", len(futures))
	}
	// Each step decrements the logical value by one (no refill in range).
	for i, db := range futures {
		logical := lang.LogicalValue(db, ItemObj(0), 2)
		if logical != int64(100-i-1) {
			t.Fatalf("step %d: logical = %d, want %d", i, logical, 100-i-1)
		}
	}
}

func TestModelRefillInFuture(t *testing.T) {
	w := mustNew(t, Config{Items: 1, Refill: 50, NSites: 2})
	m := w.Model(0)
	rng := rand.New(rand.NewSource(1))
	futures := m.SampleFuture(rng, lang.Database{ItemObj(0): 3}, 5)
	// Steps: 3 -> 2 -> 1 -> refill(49) -> 48 (the transaction decrements
	// whenever the value it reads is > 1, so it reaches 1 before
	// refilling).
	logical := func(db lang.Database) int64 { return lang.LogicalValue(db, ItemObj(0), 2) }
	want := []int64{2, 1, 49, 48, 47}
	for i, wv := range want {
		if got := logical(futures[i]); got != wv {
			t.Fatalf("step %d: logical = %d, want %d", i, got, wv)
		}
	}
}

func TestNextDistinctItems(t *testing.T) {
	w := mustNew(t, Config{Items: 10, Refill: 100, NSites: 2, ItemsPerTxn: 5})
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		req := w.Next(rng, 0)
		if len(req.Units) != 5 {
			t.Fatalf("units = %d, want 5", len(req.Units))
		}
		seen := map[int]bool{}
		for _, u := range req.Units {
			if seen[u] {
				t.Fatalf("duplicate item in request: %v", req.Units)
			}
			seen[u] = true
		}
	}
}

func TestInitialDB(t *testing.T) {
	w := mustNew(t, Config{Items: 7, Refill: 42, NSites: 2})
	db := w.InitialDB()
	if len(db) != 7 {
		t.Fatalf("items = %d", len(db))
	}
	for i := 0; i < 7; i++ {
		if db.Get(ItemObj(i)) != 42 {
			t.Fatalf("item %d qty = %d, want 42", i, db.Get(ItemObj(i)))
		}
	}
}

var _ workload.Workload = (*Workload)(nil)

// TestHotSiteRotationDrift: with drift enabled, each site's draws
// concentrate in its current hot window, and the window moves when the
// rotor advances an epoch.
func TestHotSiteRotationDrift(t *testing.T) {
	w, err := New(Config{Items: 100, Refill: 100, NSites: 2,
		HotFrac: 0.9, HotWindow: 10, RotateEvery: 1000})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	inWindow := func(item, start, width int) bool {
		for k := 0; k < width; k++ {
			if item == (start+k)%100 {
				return true
			}
		}
		return false
	}
	// Epoch 0: site 0's window is items [0,10), site 1's is [50,60).
	hot0, hot1 := 0, 0
	for i := 0; i < 500; i++ {
		r0 := w.Next(rng, 0)
		if inWindow(int(r0.Args[0]), 0, 10) {
			hot0++
		}
		r1 := w.Next(rng, 1)
		if inWindow(int(r1.Args[0]), 50, 10) {
			hot1++
		}
	}
	// 90% target; allow sampling slop (the uniform 10% also lands in the
	// window 10% of the time, pushing the expectation to ~91%).
	if hot0 < 400 || hot1 < 400 {
		t.Fatalf("hot-window hits = %d/%d of 500 each, want >= 400", hot0, hot1)
	}
	// The 1000 draws above advanced the rotor one epoch: site 0's window
	// is now [10,20).
	moved := 0
	for i := 0; i < 500; i++ {
		r := w.Next(rng, 0)
		if inWindow(int(r.Args[0]), 10, 10) {
			moved++
		}
		w.Next(rng, 1) // keep both sites drawing, as a real run would
	}
	if moved < 400 {
		t.Fatalf("after rotation only %d/500 draws in the moved window", moved)
	}
}

// TestNoDriftIsSeedDistribution: HotFrac 0 must leave the request
// stream untouched — same rng consumption, same draws as the seed.
func TestNoDriftIsSeedDistribution(t *testing.T) {
	a, err := New(Config{Items: 50, Refill: 100, NSites: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(Config{Items: 50, Refill: 100, NSites: 2, RotateEvery: 7})
	if err != nil {
		t.Fatal(err)
	}
	r1 := rand.New(rand.NewSource(9))
	r2 := rand.New(rand.NewSource(9))
	for i := 0; i < 200; i++ {
		x, y := a.Next(r1, i%2), b.Next(r2, i%2)
		if x.Args[0] != y.Args[0] {
			t.Fatalf("draw %d differs without HotFrac: %d vs %d", i, x.Args[0], y.Args[0])
		}
	}
}
