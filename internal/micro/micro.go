// Package micro implements the Section 6.1 microbenchmark: a replicated
// Stock(itemid, qty) table and a single parameterized order transaction
// (Listing 1) that decrements an item's quantity, refilling it when it
// reaches the floor:
//
//	SELECT qty FROM stock WHERE itemid=@itemid;
//	if (qty > 1) then new_qty = qty - 1 else new_qty = REFILL - 1
//	UPDATE stock SET qty = new_qty WHERE itemid = @itemid;
//
// The transaction is analyzed for real: the L++ source is rewritten for
// replication (Appendix B delta objects), its symbolic table is computed
// (Section 2), and each item's treaty is derived from the matched row
// (Section 4). All 10,000 items share one canonical analysis via renaming
// (the paper's parameterized compression, Section 5.1).
package micro

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/lang"
	"repro/internal/symtab"
	"repro/internal/treaty"
	"repro/internal/workload"
)

// canonObj is the canonical stock object the analysis runs over.
const canonObj = lang.ObjID("q")

// Source returns the L++ source of the order transaction for a given
// REFILL constant.
func Source(refill int64) string {
	return strings.ReplaceAll(`
transaction Order() {
	v := read(q);
	if (v > 1) then
		write(q = v - 1)
	else
		write(q = REFILL - 1)
}`, "REFILL", fmt.Sprintf("%d", refill))
}

// Config parameterizes the workload.
type Config struct {
	// Items is the number of stock items (paper: 10,000).
	Items int
	// Refill is the REFILL constant (paper default: 100).
	Refill int64
	// ItemsPerTxn is the number of distinct items one order touches
	// (Figure 27 varies 1..5).
	ItemsPerTxn int
	// NSites is the replication degree.
	NSites int
	// InitialQty is the starting quantity of every item (defaults to
	// Refill).
	InitialQty int64
	// HotFrac enables the hot-site rotation drift scenario: each site
	// directs this fraction of its orders at a site-specific hot window of
	// HotWindow items, so per-item demand is heavily skewed toward one
	// site at a time. Zero disables drift (the seed's uniform draw).
	HotFrac float64
	// HotWindow is the width of each site's hot window in items (defaults
	// to 1/10th of Items when HotFrac is set).
	HotWindow int
	// RotateEvery advances every hot window by one window width after
	// this many request draws, so the hot site of any given item changes
	// over time and allocations must adapt. Zero never rotates.
	RotateEvery int
}

// Workload is the microbenchmark; it implements workload.Workload.
type Workload struct {
	cfg   Config
	txn   *lang.Transaction // canonical L++ order transaction
	rw    *lang.Transaction // replica-rewritten form (site 0)
	table *symtab.Table     // symbolic table of the rewritten form
	rotor *workload.Rotor   // drift clock (hot-site rotation)
}

// New analyzes the transaction and builds the workload.
func New(cfg Config) (*Workload, error) {
	if cfg.Items <= 0 {
		cfg.Items = 10000
	}
	if cfg.Refill == 0 {
		cfg.Refill = 100
	}
	if cfg.ItemsPerTxn <= 0 {
		cfg.ItemsPerTxn = 1
	}
	if cfg.NSites <= 0 {
		return nil, fmt.Errorf("micro: NSites must be positive")
	}
	if cfg.InitialQty == 0 {
		cfg.InitialQty = cfg.Refill
	}
	txn, err := lang.ParseTransaction(Source(cfg.Refill))
	if err != nil {
		return nil, err
	}
	lang.ResolveParams(txn)
	// Appendix B: rewrite writes into per-site delta objects. The guard of
	// the rewritten transaction mentions the logical value
	// q + sum_j dq_j, which is what the treaty must bound.
	rw := lang.Simplify(lang.ReplicaRewrite(txn, 0, cfg.NSites, map[lang.ObjID]bool{canonObj: true}))
	table, err := symtab.Build(rw)
	if err != nil {
		return nil, err
	}
	if cfg.HotFrac > 0 && cfg.HotWindow <= 0 {
		cfg.HotWindow = cfg.Items / 10
		if cfg.HotWindow < 1 {
			cfg.HotWindow = 1
		}
	}
	return &Workload{cfg: cfg, txn: txn, rw: rw, table: table,
		rotor: workload.NewRotor(cfg.RotateEvery)}, nil
}

// Name implements workload.Workload.
func (w *Workload) Name() string { return "micro" }

// Config returns the workload's configuration.
func (w *Workload) Config() Config { return w.cfg }

// Table exposes the canonical symbolic table (for the analyzer CLI and
// tests).
func (w *Workload) Table() *symtab.Table { return w.table }

// ItemObj names the stock object of an item.
func ItemObj(item int) lang.ObjID {
	return lang.ObjID(fmt.Sprintf("stock[%d]", item))
}

// InitialDB implements workload.Workload.
func (w *Workload) InitialDB() lang.Database {
	db := lang.Database{}
	for i := 0; i < w.cfg.Items; i++ {
		db[ItemObj(i)] = w.cfg.InitialQty
	}
	return db
}

// NumUnits implements workload.Workload: one treaty unit per item.
func (w *Workload) NumUnits() int { return w.cfg.Items }

// UnitObjects implements workload.Workload.
func (w *Workload) UnitObjects(unit int) []lang.ObjID {
	return []lang.ObjID{ItemObj(unit)}
}

// toCanonical maps a folded unit database onto the canonical object
// names.
func (w *Workload) toCanonical(unit int, folded lang.Database) lang.Database {
	db := lang.Database{canonObj: folded.Get(ItemObj(unit))}
	return db
}

// BuildGlobal implements workload.Workload: match the symbolic-table row
// for the current consolidated state, preprocess its guard into linear
// constraints (Appendix C.1), and rename to the item's concrete objects.
func (w *Workload) BuildGlobal(unit int, folded lang.Database) (treaty.Global, error) {
	canonical := w.toCanonical(unit, folded)
	row, err := w.table.MatchRow(canonical, nil)
	if err != nil {
		return treaty.Global{}, err
	}
	g, err := treaty.Preprocess(w.table.Rows[row].Guard, canonical, nil, nil)
	if err != nil {
		return treaty.Global{}, err
	}
	concrete := ItemObj(unit)
	return g.Rename(func(obj lang.ObjID) lang.ObjID {
		if base, site, ok := lang.IsDeltaObj(obj); ok && base == canonObj {
			return lang.DeltaObj(concrete, site)
		}
		if obj == canonObj {
			return concrete
		}
		return obj
	}), nil
}

// model samples future executions for Algorithm 1: L orders spread
// uniformly across sites, each applied with the real transaction
// semantics to per-site delta objects.
type model struct {
	w    *Workload
	unit int
}

// Model implements workload.Workload.
func (w *Workload) Model(unit int) treaty.WorkloadModel {
	return &model{w: w, unit: unit}
}

// SampleFuture implements treaty.WorkloadModel.
func (m *model) SampleFuture(rng *rand.Rand, db lang.Database, l int) []lang.Database {
	obj := ItemObj(m.unit)
	cur := db.Clone()
	out := make([]lang.Database, 0, l)
	for i := 0; i < l; i++ {
		site := rng.Intn(m.w.cfg.NSites)
		logical := lang.LogicalValue(cur, obj, m.w.cfg.NSites)
		if logical > 1 {
			d := lang.DeltaObj(obj, site)
			cur[d] = cur.Get(d) - 1
		} else {
			// Refill consolidates at a synchronization point.
			cur = lang.Database{obj: m.w.cfg.Refill - 1}
		}
		out = append(out, cur.Clone())
	}
	return out
}

// Next implements workload.Workload: an order for ItemsPerTxn distinct
// random items — uniform by default; under the hot-site rotation drift
// scenario (HotFrac > 0), HotFrac of each site's draws land in the site's
// current hot window instead.
func (w *Workload) Next(rng *rand.Rand, site int) workload.Request {
	hotStart := -1
	if w.cfg.HotFrac > 0 {
		epoch := w.rotor.Tick()
		hotStart = (site*w.cfg.Items/w.cfg.NSites + epoch*w.cfg.HotWindow) % w.cfg.Items
	}
	items := make([]int, 0, w.cfg.ItemsPerTxn)
	seen := make(map[int]bool, w.cfg.ItemsPerTxn)
	for len(items) < w.cfg.ItemsPerTxn {
		var it int
		if hotStart >= 0 && rng.Float64() < w.cfg.HotFrac {
			it = (hotStart + rng.Intn(w.cfg.HotWindow)) % w.cfg.Items
		} else {
			it = rng.Intn(w.cfg.Items)
		}
		if !seen[it] {
			seen[it] = true
			items = append(items, it)
		}
	}
	return w.MakeRequest(items)
}

// MakeRequest builds the order request for explicit items (exported for
// tests and examples).
func (w *Workload) MakeRequest(items []int) workload.Request {
	args := make([]int64, len(items))
	units := make([]int, len(items))
	objs := make([]lang.ObjID, len(items))
	for i, it := range items {
		args[i] = int64(it)
		units[i] = it
		objs[i] = ItemObj(it)
	}
	refill := w.cfg.Refill
	return workload.Request{
		Name:    "Order",
		Args:    args,
		Units:   units,
		Objects: objs,
		Exec: func(v workload.SiteView) error {
			for i := range items {
				obj := objs[i] // precomputed: ItemObj formats a fresh string per call
				qty, err := v.ReadLogical(obj)
				if err != nil {
					return err
				}
				if qty > 1 {
					if err := v.WriteLogical(obj, qty-1); err != nil {
						return err
					}
				} else {
					if err := v.WriteLogical(obj, refill-1); err != nil {
						return err
					}
				}
			}
			return nil
		},
		Apply: func(db lang.Database) []int64 {
			for i := range items {
				obj := objs[i]
				qty := db.Get(obj)
				if qty > 1 {
					db.Set(obj, qty-1)
				} else {
					db.Set(obj, refill-1)
				}
			}
			return nil
		},
	}
}
