// Package topk implements the paper's Section 1 motivating system as a
// protocol workload: item sites receive (key, value) insertions and an
// aggregated top-2 list must stay correct across all replicas
// (Figures 1-2).
//
// The analysis of the aggregator's insert transaction (see
// examples/topk) shows inserts with v <= min(top-2) leave the list
// unchanged: those commit locally with no communication. The top-2 list
// itself is a maximum-structure, which has no Abelian merge function, so
// the Appendix B delta encoding cannot absorb concurrent updates; per the
// paper ("if the data type does not come with a suitable merge function
// ... it is necessary to synchronize on every update"), its treaty pins
// both entries to their current values and every list-changing insert
// triggers the cleanup phase — which is exactly the improved distributed
// top-k algorithm of Figure 2: sites stay silent below the cached
// minimum and broadcast a new treaty whenever the list changes.
package topk

import (
	"fmt"
	"math/rand"

	"repro/internal/lang"
	"repro/internal/lia"
	"repro/internal/logic"
	"repro/internal/symtab"
	"repro/internal/treaty"
	"repro/internal/workload"
)

// InsertSource is the aggregator's top-2 update in L++ (analyzed by the
// symbolic-table pipeline; the Go stored procedure below is its compiled
// form, equivalence-tested).
const InsertSource = `
transaction Insert(v) {
	t1 := read(top1);
	t2 := read(top2);
	if (v > t2) then {
		if (v > t1) then {
			write(top1 = v);
			write(top2 = t1)
		} else
			write(top2 = v)
	} else
		skip
}`

// The aggregated list's objects.
const (
	Top1 = lang.ObjID("top1")
	Top2 = lang.ObjID("top2")
)

// Config parameterizes the workload.
type Config struct {
	NSites int
	// MaxValue bounds inserted values (uniform in [1, MaxValue]).
	MaxValue int64
	// Initial list contents.
	InitialTop1, InitialTop2 int64
}

// Workload implements workload.Workload.
type Workload struct {
	cfg   Config
	table *symtab.Table
}

// New analyzes the insert transaction and builds the workload.
func New(cfg Config) (*Workload, error) {
	if cfg.NSites <= 0 {
		return nil, fmt.Errorf("topk: NSites must be positive")
	}
	if cfg.MaxValue == 0 {
		cfg.MaxValue = 1000
	}
	txn, err := lang.ParseTransaction(InsertSource)
	if err != nil {
		return nil, err
	}
	lang.ResolveParams(txn)
	table, err := symtab.Build(txn)
	if err != nil {
		return nil, err
	}
	return &Workload{cfg: cfg, table: table}, nil
}

// Name implements workload.Workload.
func (w *Workload) Name() string { return "topk" }

// Table exposes the insert transaction's symbolic table.
func (w *Workload) Table() *symtab.Table { return w.table }

// SilentGuard returns the guard of the row whose residual performs no
// writes — the "v <= min" region that needs no communication.
func (w *Workload) SilentGuard() (logic.Formula, error) {
	for _, row := range w.table.Rows {
		if len(lang.WriteSet(row.Residual, nil)) == 0 {
			return row.Guard, nil
		}
	}
	return nil, fmt.Errorf("topk: no silent row in the symbolic table")
}

// InitialDB implements workload.Workload.
func (w *Workload) InitialDB() lang.Database {
	return lang.Database{Top1: w.cfg.InitialTop1, Top2: w.cfg.InitialTop2}
}

// NumUnits implements workload.Workload: one unit governing the list.
func (w *Workload) NumUnits() int { return 1 }

// UnitObjects implements workload.Workload.
func (w *Workload) UnitObjects(int) []lang.ObjID { return []lang.ObjID{Top1, Top2} }

// BuildGlobal pins both list entries: a maximum-structure has no merge
// function, so correctness requires synchronizing on every change
// (Appendix B). Inserts below the minimum write nothing and commit
// locally under the pins.
func (w *Workload) BuildGlobal(_ int, folded lang.Database) (treaty.Global, error) {
	var cs []lia.Constraint
	for _, obj := range []lang.ObjID{Top1, Top2} {
		pin := lia.NewTerm()
		pin.AddVar(logic.Obj(obj), 1)
		for k := 0; k < w.cfg.NSites; k++ {
			pin.AddVar(logic.Obj(lang.DeltaObj(obj, k)), 1)
		}
		pin.Const = -folded.Get(obj)
		cs = append(cs, lia.Constraint{Term: pin, Op: lia.EQ})
	}
	return treaty.Global{Constraints: cs}, nil
}

// Model implements workload.Workload: pin treaties admit no slack, so
// future sampling has nothing to optimize.
func (w *Workload) Model(int) treaty.WorkloadModel { return nopModel{} }

type nopModel struct{}

func (nopModel) SampleFuture(*rand.Rand, lang.Database, int) []lang.Database { return nil }

// Next implements workload.Workload: insert a uniform random value.
func (w *Workload) Next(rng *rand.Rand, _ int) workload.Request {
	return w.InsertRequest(1 + rng.Int63n(w.cfg.MaxValue))
}

// InsertRequest builds the insert for a specific value (the compiled form
// of InsertSource; equivalence with the L++ source is tested).
func (w *Workload) InsertRequest(v int64) workload.Request {
	apply := func(db lang.Database) []int64 {
		t1, t2 := db.Get(Top1), db.Get(Top2)
		switch {
		case v > t1:
			db.Set(Top1, v)
			db.Set(Top2, t1)
		case v > t2:
			db.Set(Top2, v)
		}
		return nil
	}
	return workload.Request{
		Name:    "Insert",
		Args:    []int64{v},
		Units:   []int{0},
		Objects: []lang.ObjID{Top1, Top2},
		Exec: func(view workload.SiteView) error {
			t1, err := view.ReadLogical(Top1)
			if err != nil {
				return err
			}
			t2, err := view.ReadLogical(Top2)
			if err != nil {
				return err
			}
			if v <= t2 {
				return nil // below the cached minimum: stay silent
			}
			if v > t1 {
				if err := view.WriteLogical(Top1, v); err != nil {
					return err
				}
				return view.WriteLogical(Top2, t1)
			}
			return view.WriteLogical(Top2, v)
		},
		Apply: apply,
	}
}
