package topk

import (
	"math/rand"
	"testing"

	"repro/internal/lang"
	"repro/internal/logic"
	"repro/internal/workload"
)

func mustNew(t *testing.T, nSites int) *Workload {
	t.Helper()
	w, err := New(Config{NSites: nSites, MaxValue: 200, InitialTop1: 100, InitialTop2: 91})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestSymbolicTableShape(t *testing.T) {
	w := mustNew(t, 2)
	if n := len(w.Table().Rows); n != 3 {
		t.Fatalf("rows = %d, want 3 (new max / new second / silent)\n%s", n, w.Table())
	}
	g, err := w.SilentGuard()
	if err != nil {
		t.Fatal(err)
	}
	// The silent region is v <= top2 (Figure 2's cached-min check).
	for _, tc := range []struct {
		v    int64
		want bool
	}{{50, true}, {91, true}, {92, false}, {150, false}} {
		ok, err := logic.EvalFormula(g, logic.DBBinding(
			lang.Database{Top1: 100, Top2: 91}, map[string]int64{"v": tc.v}, nil))
		if err != nil {
			t.Fatal(err)
		}
		if ok != tc.want {
			t.Errorf("silent guard at v=%d: %v, want %v", tc.v, ok, tc.want)
		}
	}
}

// fakeView for stored-procedure vs L++ equivalence.
type fakeView struct{ db lang.Database }

func (v *fakeView) Site() int   { return 0 }
func (v *fakeView) NSites() int { return 1 }
func (v *fakeView) ReadLogical(obj lang.ObjID) (int64, error) {
	return v.db.Get(obj), nil
}
func (v *fakeView) WriteLogical(obj lang.ObjID, val int64) error {
	v.db.Set(obj, val)
	return nil
}
func (v *fakeView) Print(int64) {}

func TestStoredProcedureMatchesSource(t *testing.T) {
	w := mustNew(t, 2)
	src, err := lang.ParseTransaction(InsertSource)
	if err != nil {
		t.Fatal(err)
	}
	lang.ResolveParams(src)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 300; trial++ {
		t2 := int64(rng.Intn(100))
		t1 := t2 + int64(rng.Intn(50))
		v := int64(rng.Intn(200))
		want, err := lang.Eval(src, lang.Database{Top1: t1, Top2: t2}, v)
		if err != nil {
			t.Fatal(err)
		}
		req := w.InsertRequest(v)
		view := &fakeView{db: lang.Database{Top1: t1, Top2: t2}}
		if err := req.Exec(view); err != nil {
			t.Fatal(err)
		}
		if !view.db.Equal(want.DB) {
			t.Fatalf("trial %d (t1=%d t2=%d v=%d): Exec %v, L++ %v",
				trial, t1, t2, v, view.db, want.DB)
		}
		applied := lang.Database{Top1: t1, Top2: t2}
		req.Apply(applied)
		if !applied.Equal(want.DB) {
			t.Fatalf("trial %d: Apply %v, L++ %v", trial, applied, want.DB)
		}
	}
}

func TestPinTreaty(t *testing.T) {
	w := mustNew(t, 2)
	folded := lang.Database{Top1: 100, Top2: 91}
	g, err := w.BuildGlobal(0, folded)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Holds(folded) {
		t.Fatal("pin treaty must hold on the current list")
	}
	changed := folded.Clone()
	changed[Top2] = 95
	if g.Holds(changed) {
		t.Fatal("changing the list must violate the pin")
	}
	// Delta writes violate too (no merge function for maxima).
	viaDelta := folded.Clone()
	viaDelta[lang.DeltaObj(Top2, 1)] = 4
	if g.Holds(viaDelta) {
		t.Fatal("delta-encoded change must violate the pin")
	}
}

var _ workload.Workload = (*Workload)(nil)
