package sqlfront

import (
	"math/rand"
	"testing"

	"repro/internal/lang"
	"repro/internal/symtab"
)

const stockSchema = `
CREATE TABLE stock (key, qty) SIZE 4
`

func compile(t *testing.T, script string) (*lang.Transaction, Schema) {
	t.Helper()
	txn, schema, err := Compile("T", script)
	if err != nil {
		t.Fatal(err)
	}
	lang.ResolveParams(txn)
	return txn, schema
}

func loadStock(t *testing.T, schema Schema, rows [][2]int64) lang.Database {
	t.Helper()
	db := lang.Database{}
	for i, r := range rows {
		if err := LoadRow(db, schema["stock"], int64(i), r[0], r[1]); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func TestSelectSum(t *testing.T) {
	txn, schema := compile(t, stockSchema+`SELECT SUM(qty) FROM stock WHERE key = @k`)
	db := loadStock(t, schema, [][2]int64{{1, 10}, {2, 20}, {1, 30}, {0, 0}})
	cases := map[int64]int64{1: 40, 2: 20, 5: 0}
	for k, want := range cases {
		res, err := lang.Eval(txn, db, k)
		if err != nil {
			t.Fatal(err)
		}
		if !lang.LogsEqual(res.Log, []int64{want}) {
			t.Errorf("SUM WHERE key=%d: got %v, want [%d]", k, res.Log, want)
		}
	}
}

func TestSelectCount(t *testing.T) {
	txn, schema := compile(t, stockSchema+`SELECT COUNT(*) FROM stock WHERE qty > @min`)
	db := loadStock(t, schema, [][2]int64{{1, 10}, {2, 20}, {3, 30}, {0, 99}})
	// The free slot (key 0) must not count even though its qty matches.
	res, err := lang.Eval(txn, db, 15)
	if err != nil {
		t.Fatal(err)
	}
	if !lang.LogsEqual(res.Log, []int64{2}) {
		t.Fatalf("COUNT qty>15 = %v, want [2] (free slots excluded)", res.Log)
	}
}

func TestUpdateWhere(t *testing.T) {
	txn, schema := compile(t, stockSchema+`UPDATE stock SET qty = qty - @d WHERE key = @k`)
	db := loadStock(t, schema, [][2]int64{{1, 10}, {2, 20}, {1, 30}, {0, 0}})
	res, err := lang.Eval(txn, db, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	tab := schema["stock"]
	get := func(row, col int64) int64 {
		return res.DB.Get(lang.ArrayObj(tab.Name, row*2+col))
	}
	if get(0, 1) != 7 || get(2, 1) != 27 {
		t.Fatalf("UPDATE missed rows: %d, %d", get(0, 1), get(2, 1))
	}
	if get(1, 1) != 20 {
		t.Fatalf("UPDATE touched wrong row: %d", get(1, 1))
	}
}

func TestInsertAndDelete(t *testing.T) {
	txn, schema := compile(t, stockSchema+`INSERT INTO stock VALUES (@k, @v)`)
	db := loadStock(t, schema, [][2]int64{{1, 10}, {0, 0}, {2, 20}, {0, 0}})
	res, err := lang.Eval(txn, db, 7, 70)
	if err != nil {
		t.Fatal(err)
	}
	if !lang.LogsEqual(res.Log, []int64{1}) {
		t.Fatalf("insert log = %v", res.Log)
	}
	tab := schema["stock"]
	if res.DB.Get(lang.ArrayObj(tab.Name, 2)) != 7 || res.DB.Get(lang.ArrayObj(tab.Name, 3)) != 70 {
		t.Fatal("insert did not use the first free slot")
	}
	// Fill the table, then a further insert reports failure.
	full := loadStock(t, schema, [][2]int64{{1, 1}, {2, 2}, {3, 3}, {4, 4}})
	res, err = lang.Eval(txn, full, 7, 70)
	if err != nil {
		t.Fatal(err)
	}
	if !lang.LogsEqual(res.Log, []int64{0}) {
		t.Fatalf("full-table insert log = %v", res.Log)
	}

	// DELETE frees the slot again.
	del, schema2 := compile(t, stockSchema+`DELETE FROM stock WHERE key = @k`)
	db2 := loadStock(t, schema2, [][2]int64{{1, 1}, {2, 2}, {3, 3}, {4, 4}})
	res, err = lang.Eval(del, db2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.DB.Get(lang.ArrayObj("stock", 2)) != 0 {
		t.Fatal("delete did not clear the key")
	}
}

func TestMultiStatementTransaction(t *testing.T) {
	// A read-modify-write transaction: decrement then report the total.
	txn, schema := compile(t, stockSchema+`
UPDATE stock SET qty = qty - 1 WHERE key = @k
SELECT SUM(qty) FROM stock WHERE key = @k`)
	db := loadStock(t, schema, [][2]int64{{5, 10}, {6, 20}, {0, 0}, {0, 0}})
	res, err := lang.Eval(txn, db, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !lang.LogsEqual(res.Log, []int64{9}) {
		t.Fatalf("log = %v, want [9]", res.Log)
	}
}

func TestParamsCollectedInOrder(t *testing.T) {
	txn, _ := compile(t, stockSchema+`
UPDATE stock SET qty = qty + @a WHERE key = @b
SELECT SUM(qty) FROM stock WHERE key = @a`)
	want := []string{"a", "b"}
	if len(txn.Params) != 2 || txn.Params[0] != want[0] || txn.Params[1] != want[1] {
		t.Fatalf("params = %v, want %v", txn.Params, want)
	}
}

func TestCompileErrors(t *testing.T) {
	bad := []string{
		`SELECT SUM(qty) FROM nowhere`,
		stockSchema + `SELECT MAX(qty) FROM stock`,
		stockSchema + `UPDATE stock SET nosuch = 1`,
		stockSchema + `INSERT INTO stock VALUES (1)`,
		stockSchema + `BEGIN TRANSACTION`,
		`CREATE TABLE t (a) SIZE 0`,
		stockSchema + stockSchema + `SELECT COUNT(*) FROM stock`, // duplicate table
	}
	for _, script := range bad {
		if _, _, err := Compile("T", script); err == nil {
			t.Errorf("Compile(%q) succeeded, want error", script)
		}
	}
}

// TestCompiledTransactionsAnalyzable: the compiled L++ feeds the full
// analysis pipeline — symbolic tables build, guards partition, and
// residuals stay equivalent. This closes the Appendix A loop: SQL ->
// L++ -> L -> symbolic table.
func TestCompiledTransactionsAnalyzable(t *testing.T) {
	txn, schema := compile(t, `
CREATE TABLE s (key, qty) SIZE 2
UPDATE s SET qty = qty - @d WHERE key = @k`)
	tbl, err := symtab.Build(txn)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) == 0 {
		t.Fatal("empty symbolic table")
	}
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 150; trial++ {
		db := lang.Database{}
		if err := LoadRow(db, schema["s"], 0, int64(1+rng.Intn(3)), int64(rng.Intn(20))); err != nil {
			t.Fatal(err)
		}
		if err := LoadRow(db, schema["s"], 1, int64(1+rng.Intn(3)), int64(rng.Intn(20))); err != nil {
			t.Fatal(err)
		}
		k, d := int64(1+rng.Intn(3)), int64(rng.Intn(5))
		params := map[string]int64{"d": d, "k": k}
		row, err := tbl.MatchRow(db, params)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want, err := lang.Eval(txn, db, d, k)
		if err != nil {
			t.Fatal(err)
		}
		got, err := tbl.EvalResidual(row, db, d, k)
		if err != nil {
			t.Fatal(err)
		}
		if !want.DB.Equal(got.DB) {
			t.Fatalf("trial %d: residual mismatch", trial)
		}
	}
}

func TestLowerCompiledSQL(t *testing.T) {
	txn, schema := compile(t, stockSchema+`SELECT SUM(qty) FROM stock WHERE key = @k`)
	lowered, err := lang.Lower(txn)
	if err != nil {
		t.Fatal(err)
	}
	db := loadStock(t, schema, [][2]int64{{1, 5}, {1, 6}, {2, 7}, {0, 0}})
	a, _ := lang.Eval(txn, db, 1)
	b, err := lang.Eval(lowered, db, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !lang.LogsEqual(a.Log, b.Log) {
		t.Fatalf("lowered SQL diverges: %v vs %v", a.Log, b.Log)
	}
}
