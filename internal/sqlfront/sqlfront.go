// Package sqlfront compiles a small SQL dialect into L++ transactions,
// automating the Appendix A encoding: bounded relations become 2-D
// arrays, SELECT-FROM-WHERE becomes a sequential scan with if-then-else
// filtering, UPDATE ... WHERE becomes a guarded write per row, INSERT
// uses preallocated free slots tracked with a placeholder key, and
// DELETE resets the slot to the placeholder.
//
// The dialect (one statement per line, a trailing semicolon optional):
//
//	CREATE TABLE t (key, val) SIZE 8
//	SELECT SUM(val) FROM t WHERE key = @k
//	SELECT COUNT(*) FROM t WHERE val > 10
//	UPDATE t SET val = val + @d WHERE key = @k
//	INSERT INTO t VALUES (@k, @v)
//	DELETE FROM t WHERE key = @k
//
// Every column holds an integer; the first column is the key column and
// the placeholder key 0 marks free slots (so user keys must be nonzero,
// as in the Appendix A "suitable placeholder values" scheme). SELECT
// results are emitted with print, making them part of the transaction's
// observable log. Parameters are written @name and become L++
// transaction parameters.
package sqlfront

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/lang"
)

// Table describes a bounded relation.
type Table struct {
	Name string
	Cols []string
	Size int64
}

func (t *Table) colIndex(name string) (int64, error) {
	for i, c := range t.Cols {
		if c == name {
			return int64(i), nil
		}
	}
	return 0, fmt.Errorf("sqlfront: table %s has no column %q", t.Name, name)
}

// Schema is a collection of tables.
type Schema map[string]*Table

// Compile turns a script (CREATE TABLE statements followed by one or
// more DML statements) into a single L++ transaction executing the DML
// in order. The transaction's parameters are the @names in order of
// first appearance.
func Compile(name, script string) (*lang.Transaction, Schema, error) {
	c := &compiler{schema: Schema{}, paramSeen: map[string]bool{}}
	var body []lang.Cmd
	for _, line := range strings.Split(script, "\n") {
		stmt := strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(line), ";"))
		if stmt == "" || strings.HasPrefix(stmt, "--") {
			continue
		}
		cmd, err := c.statement(stmt)
		if err != nil {
			return nil, nil, fmt.Errorf("sqlfront: %q: %w", stmt, err)
		}
		if cmd != nil {
			body = append(body, cmd)
		}
	}
	if len(body) == 0 {
		return nil, nil, fmt.Errorf("sqlfront: script has no DML statements")
	}
	txn := &lang.Transaction{
		Name:   name,
		Params: c.params,
		Arrays: c.arrays,
		Body:   lang.SeqOf(body...),
	}
	return txn, c.schema, nil
}

type compiler struct {
	schema    Schema
	arrays    []lang.ArrayDecl
	params    []string
	paramSeen map[string]bool
	nTemp     int
}

func (c *compiler) fresh(prefix string) string {
	c.nTemp++
	return fmt.Sprintf("_%s%d", prefix, c.nTemp)
}

func (c *compiler) statement(stmt string) (lang.Cmd, error) {
	upper := strings.ToUpper(stmt)
	switch {
	case strings.HasPrefix(upper, "CREATE TABLE"):
		return nil, c.createTable(stmt)
	case strings.HasPrefix(upper, "SELECT"):
		return c.selectStmt(stmt)
	case strings.HasPrefix(upper, "UPDATE"):
		return c.updateStmt(stmt)
	case strings.HasPrefix(upper, "INSERT"):
		return c.insertStmt(stmt)
	case strings.HasPrefix(upper, "DELETE"):
		return c.deleteStmt(stmt)
	}
	return nil, fmt.Errorf("unsupported statement")
}

// createTable parses CREATE TABLE t (a, b, c) SIZE n.
func (c *compiler) createTable(stmt string) error {
	open := strings.Index(stmt, "(")
	close := strings.Index(stmt, ")")
	if open < 0 || close < open {
		return fmt.Errorf("malformed CREATE TABLE")
	}
	head := strings.Fields(stmt[:open])
	if len(head) < 3 {
		return fmt.Errorf("malformed CREATE TABLE")
	}
	name := head[2]
	var cols []string
	for _, col := range strings.Split(stmt[open+1:close], ",") {
		cols = append(cols, strings.TrimSpace(col))
	}
	rest := strings.Fields(strings.ToUpper(stmt[close+1:]))
	if len(rest) != 2 || rest[0] != "SIZE" {
		return fmt.Errorf("missing SIZE clause")
	}
	size, err := strconv.ParseInt(rest[1], 10, 64)
	if err != nil || size <= 0 {
		return fmt.Errorf("bad SIZE")
	}
	if _, dup := c.schema[name]; dup {
		return fmt.Errorf("duplicate table %s", name)
	}
	t := &Table{Name: name, Cols: cols, Size: size}
	c.schema[name] = t
	c.arrays = append(c.arrays, lang.ArrayDecl{
		Name: name, Len: size, Cols: int64(len(cols)),
	})
	return nil
}

// operand compiles a literal, @param, or column reference (within row i
// of table t) into an expression.
func (c *compiler) operand(tok string, t *Table, row int64) (lang.Expr, error) {
	tok = strings.TrimSpace(tok)
	if tok == "" {
		return nil, fmt.Errorf("empty operand")
	}
	if strings.HasPrefix(tok, "@") {
		name := tok[1:]
		if !c.paramSeen[name] {
			c.paramSeen[name] = true
			c.params = append(c.params, name)
		}
		return lang.Param{Name: name}, nil
	}
	if v, err := strconv.ParseInt(tok, 10, 64); err == nil {
		return lang.IntLit{Value: v}, nil
	}
	if t == nil {
		return nil, fmt.Errorf("column %q outside a table context", tok)
	}
	col, err := t.colIndex(tok)
	if err != nil {
		return nil, err
	}
	return cellExpr(t, row, col), nil
}

// cellExpr reads row/col of a table (row-major flat index).
func cellExpr(t *Table, row, col int64) lang.Expr {
	return lang.ArrayRead{
		Array: t.Name,
		Index: lang.IntLit{Value: row*int64(len(t.Cols)) + col},
	}
}

// cellWrite writes row/col of a table.
func cellWrite(t *Table, row, col int64, e lang.Expr) lang.Cmd {
	return lang.ArrayWrite{
		Array: t.Name,
		Index: lang.IntLit{Value: row*int64(len(t.Cols)) + col},
		E:     e,
	}
}

// wherePredicate compiles "col OP operand" for one row.
func (c *compiler) wherePredicate(where string, t *Table, row int64) (lang.BoolExpr, error) {
	where = strings.TrimSpace(where)
	if where == "" {
		return lang.BoolLit{Value: true}, nil
	}
	ops := []struct {
		text string
		op   lang.CmpOp
	}{
		{"<=", lang.CmpLE}, {">=", lang.CmpGE}, {"!=", lang.CmpNE},
		{"<", lang.CmpLT}, {">", lang.CmpGT}, {"=", lang.CmpEQ},
	}
	for _, o := range ops {
		if i := strings.Index(where, o.text); i >= 0 {
			l, err := c.operand(where[:i], t, row)
			if err != nil {
				return nil, err
			}
			r, err := c.operand(where[i+len(o.text):], t, row)
			if err != nil {
				return nil, err
			}
			// Exclude free slots: a row participates only when occupied
			// (key column != placeholder 0).
			occupied := lang.Cmp{Op: lang.CmpNE, L: cellExpr(t, row, 0), R: lang.IntLit{Value: 0}}
			return lang.And{L: occupied, R: lang.Cmp{Op: o.op, L: l, R: r}}, nil
		}
	}
	return nil, fmt.Errorf("unsupported WHERE clause %q", where)
}

// selectStmt compiles SELECT SUM(col)|COUNT(*) FROM t WHERE ... into an
// accumulating scan ending in print.
func (c *compiler) selectStmt(stmt string) (lang.Cmd, error) {
	rest := strings.TrimSpace(stmt[len("SELECT"):])
	fromIdx := strings.Index(strings.ToUpper(rest), "FROM")
	if fromIdx < 0 {
		return nil, fmt.Errorf("missing FROM")
	}
	agg := strings.TrimSpace(rest[:fromIdx])
	tail := strings.TrimSpace(rest[fromIdx+len("FROM"):])
	tableName, where := splitWhere(tail)
	t, ok := c.schema[tableName]
	if !ok {
		return nil, fmt.Errorf("unknown table %q", tableName)
	}

	var colFor func(row int64) (lang.Expr, error)
	upperAgg := strings.ToUpper(agg)
	switch {
	case strings.HasPrefix(upperAgg, "SUM(") && strings.HasSuffix(agg, ")"):
		col := strings.TrimSpace(agg[4 : len(agg)-1])
		idx, err := t.colIndex(col)
		if err != nil {
			return nil, err
		}
		colFor = func(row int64) (lang.Expr, error) { return cellExpr(t, row, idx), nil }
	case upperAgg == "COUNT(*)":
		colFor = func(int64) (lang.Expr, error) { return lang.IntLit{Value: 1}, nil }
	default:
		return nil, fmt.Errorf("unsupported projection %q (want SUM(col) or COUNT(*))", agg)
	}

	acc := c.fresh("acc")
	cmds := []lang.Cmd{lang.Assign{Var: acc, E: lang.IntLit{Value: 0}}}
	for row := int64(0); row < t.Size; row++ {
		pred, err := c.wherePredicate(where, t, row)
		if err != nil {
			return nil, err
		}
		val, err := colFor(row)
		if err != nil {
			return nil, err
		}
		cmds = append(cmds, lang.If{
			Cond: pred,
			Then: lang.Assign{Var: acc, E: lang.Bin{Op: lang.OpAdd, L: lang.TempVar{Name: acc}, R: val}},
			Else: lang.Skip{},
		})
	}
	cmds = append(cmds, lang.PrintCmd{E: lang.TempVar{Name: acc}})
	return lang.SeqOf(cmds...), nil
}

// updateStmt compiles UPDATE t SET col = expr WHERE ... into guarded
// writes per row. The SET expression may be "col OP operand" or a single
// operand.
func (c *compiler) updateStmt(stmt string) (lang.Cmd, error) {
	rest := strings.TrimSpace(stmt[len("UPDATE"):])
	setIdx := strings.Index(strings.ToUpper(rest), "SET")
	if setIdx < 0 {
		return nil, fmt.Errorf("missing SET")
	}
	tableName := strings.TrimSpace(rest[:setIdx])
	t, ok := c.schema[tableName]
	if !ok {
		return nil, fmt.Errorf("unknown table %q", tableName)
	}
	tail := strings.TrimSpace(rest[setIdx+len("SET"):])
	assignment, where := splitWhere(tail)
	eq := strings.Index(assignment, "=")
	if eq < 0 {
		return nil, fmt.Errorf("malformed SET")
	}
	colName := strings.TrimSpace(assignment[:eq])
	colIdx, err := t.colIndex(colName)
	if err != nil {
		return nil, err
	}
	rhs := strings.TrimSpace(assignment[eq+1:])

	var cmds []lang.Cmd
	for row := int64(0); row < t.Size; row++ {
		// Compile the SET expression before the WHERE predicate so
		// parameters are collected in textual order.
		val, err := c.arith(rhs, t, row)
		if err != nil {
			return nil, err
		}
		pred, err := c.wherePredicate(where, t, row)
		if err != nil {
			return nil, err
		}
		cmds = append(cmds, lang.If{
			Cond: pred,
			Then: cellWrite(t, row, colIdx, val),
			Else: lang.Skip{},
		})
	}
	return lang.SeqOf(cmds...), nil
}

// arith compiles "a", "a + b" or "a - b" over operands.
func (c *compiler) arith(expr string, t *Table, row int64) (lang.Expr, error) {
	for _, o := range []struct {
		text string
		op   lang.BinOp
	}{{"+", lang.OpAdd}, {"-", lang.OpSub}, {"*", lang.OpMul}} {
		if i := strings.Index(expr, o.text); i > 0 {
			l, err := c.operand(expr[:i], t, row)
			if err != nil {
				return nil, err
			}
			r, err := c.operand(expr[i+1:], t, row)
			if err != nil {
				return nil, err
			}
			return lang.Bin{Op: o.op, L: l, R: r}, nil
		}
	}
	return c.operand(expr, t, row)
}

// insertStmt compiles INSERT INTO t VALUES (v1, v2, ...) into a scan for
// the first free slot (key column = 0); print(1) reports success,
// print(0) a full table.
func (c *compiler) insertStmt(stmt string) (lang.Cmd, error) {
	upper := strings.ToUpper(stmt)
	intoIdx := strings.Index(upper, "INTO")
	valuesIdx := strings.Index(upper, "VALUES")
	if intoIdx < 0 || valuesIdx < intoIdx {
		return nil, fmt.Errorf("malformed INSERT")
	}
	tableName := strings.TrimSpace(stmt[intoIdx+len("INTO") : valuesIdx])
	t, ok := c.schema[tableName]
	if !ok {
		return nil, fmt.Errorf("unknown table %q", tableName)
	}
	vals := strings.TrimSpace(stmt[valuesIdx+len("VALUES"):])
	vals = strings.TrimPrefix(vals, "(")
	vals = strings.TrimSuffix(vals, ")")
	parts := strings.Split(vals, ",")
	if len(parts) != len(t.Cols) {
		return nil, fmt.Errorf("INSERT arity %d, table has %d columns", len(parts), len(t.Cols))
	}
	exprs := make([]lang.Expr, len(parts))
	for i, p := range parts {
		e, err := c.operand(p, nil, 0)
		if err != nil {
			return nil, err
		}
		exprs[i] = e
	}
	done := c.fresh("done")
	cmds := []lang.Cmd{lang.Assign{Var: done, E: lang.IntLit{Value: 0}}}
	for row := int64(0); row < t.Size; row++ {
		free := lang.And{
			L: lang.Cmp{Op: lang.CmpEQ, L: lang.TempVar{Name: done}, R: lang.IntLit{Value: 0}},
			R: lang.Cmp{Op: lang.CmpEQ, L: cellExpr(t, row, 0), R: lang.IntLit{Value: 0}},
		}
		var writes []lang.Cmd
		for col := range t.Cols {
			writes = append(writes, cellWrite(t, row, int64(col), exprs[col]))
		}
		writes = append(writes, lang.Assign{Var: done, E: lang.IntLit{Value: 1}})
		cmds = append(cmds, lang.If{Cond: free, Then: lang.SeqOf(writes...), Else: lang.Skip{}})
	}
	cmds = append(cmds, lang.PrintCmd{E: lang.TempVar{Name: done}})
	return lang.SeqOf(cmds...), nil
}

// deleteStmt compiles DELETE FROM t WHERE ... by resetting matching rows
// to the free-slot placeholder.
func (c *compiler) deleteStmt(stmt string) (lang.Cmd, error) {
	upper := strings.ToUpper(stmt)
	fromIdx := strings.Index(upper, "FROM")
	if fromIdx < 0 {
		return nil, fmt.Errorf("missing FROM")
	}
	tail := strings.TrimSpace(stmt[fromIdx+len("FROM"):])
	tableName, where := splitWhere(tail)
	t, ok := c.schema[tableName]
	if !ok {
		return nil, fmt.Errorf("unknown table %q", tableName)
	}
	var cmds []lang.Cmd
	for row := int64(0); row < t.Size; row++ {
		pred, err := c.wherePredicate(where, t, row)
		if err != nil {
			return nil, err
		}
		var clears []lang.Cmd
		for col := range t.Cols {
			clears = append(clears, cellWrite(t, row, int64(col), lang.IntLit{Value: 0}))
		}
		cmds = append(cmds, lang.If{Cond: pred, Then: lang.SeqOf(clears...), Else: lang.Skip{}})
	}
	return lang.SeqOf(cmds...), nil
}

// splitWhere splits "t WHERE cond" into the head and the condition.
func splitWhere(s string) (head, where string) {
	upper := strings.ToUpper(s)
	if i := strings.Index(upper, "WHERE"); i >= 0 {
		return strings.TrimSpace(s[:i]), strings.TrimSpace(s[i+len("WHERE"):])
	}
	return strings.TrimSpace(s), ""
}

// LoadRow writes a row's values into a database at the given slot, the
// test/setup helper counterpart of the compiled transactions.
func LoadRow(db lang.Database, t *Table, slot int64, values ...int64) error {
	if len(values) != len(t.Cols) {
		return fmt.Errorf("sqlfront: row arity %d, table has %d columns", len(values), len(t.Cols))
	}
	if slot < 0 || slot >= t.Size {
		return fmt.Errorf("sqlfront: slot %d out of range", slot)
	}
	for col, v := range values {
		db[lang.ArrayObj(t.Name, slot*int64(len(t.Cols))+int64(col))] = v
	}
	return nil
}
