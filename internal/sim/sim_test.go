package sim

import (
	"repro/internal/rt"

	"testing"
)

func TestSleepAdvancesVirtualTime(t *testing.T) {
	e := NewEngine(1)
	var wake Time
	e.Spawn(0, func(p rt.Proc) {
		p.Sleep(100 * Millisecond)
		wake = p.Now()
	})
	end := e.Run()
	if wake != Time(100*Millisecond) {
		t.Fatalf("woke at %v, want 100ms", Duration(wake))
	}
	if end != wake {
		t.Fatalf("run ended at %v", Duration(end))
	}
}

func TestDeterministicInterleaving(t *testing.T) {
	run := func() []int {
		e := NewEngine(7)
		var order []int
		for i := 0; i < 5; i++ {
			i := i
			e.Spawn(i, func(p rt.Proc) {
				p.Sleep(Duration(10-i) * Millisecond)
				order = append(order, i)
				p.Sleep(Duration(i+1) * Millisecond)
				order = append(order, i+100)
			})
		}
		e.Run()
		return order
	}
	a, b := run(), run()
	if len(a) != 10 {
		t.Fatalf("events = %d, want 10", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic at %d: %v vs %v", i, a, b)
		}
	}
	// Proc 4 sleeps 6ms, wakes first.
	if a[0] != 4 {
		t.Fatalf("first waker = %d, want 4", a[0])
	}
}

func TestSameTimeFIFO(t *testing.T) {
	e := NewEngine(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Spawn(i, func(p rt.Proc) {
			p.Sleep(5 * Millisecond) // all wake at the same instant
			order = append(order, i)
		})
	}
	e.Run()
	for i := range order {
		if order[i] != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestChanSendRecv(t *testing.T) {
	e := NewEngine(1)
	ch := NewChan(e)
	var got []any
	e.Spawn(0, func(p rt.Proc) {
		got = append(got, ch.Recv(p))
		got = append(got, ch.Recv(p))
	})
	e.Spawn(1, func(p rt.Proc) {
		p.Sleep(10 * Millisecond)
		ch.Send("a")
		p.Sleep(10 * Millisecond)
		ch.Send("b")
	})
	e.Run()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("got %v", got)
	}
}

func TestChanRecvBeforeSend(t *testing.T) {
	e := NewEngine(1)
	ch := NewChan(e)
	var at Time
	e.Spawn(0, func(p rt.Proc) {
		ch.Recv(p)
		at = p.Now()
	})
	e.Spawn(1, func(p rt.Proc) {
		p.Sleep(42 * Millisecond)
		ch.Send(1)
	})
	e.Run()
	if at != Time(42*Millisecond) {
		t.Fatalf("received at %v, want 42ms", Duration(at))
	}
}

func TestChanTimeout(t *testing.T) {
	e := NewEngine(1)
	ch := NewChan(e)
	var ok bool
	var at Time
	e.Spawn(0, func(p rt.Proc) {
		_, ok = ch.RecvTimeout(p, 50*Millisecond)
		at = p.Now()
	})
	e.Run()
	if ok {
		t.Fatal("expected timeout")
	}
	if at != Time(50*Millisecond) {
		t.Fatalf("timed out at %v, want 50ms", Duration(at))
	}
}

func TestChanTimeoutBeatenBySend(t *testing.T) {
	e := NewEngine(1)
	ch := NewChan(e)
	var ok bool
	e.Spawn(0, func(p rt.Proc) {
		_, ok = ch.RecvTimeout(p, 100*Millisecond)
	})
	e.Spawn(1, func(p rt.Proc) {
		p.Sleep(10 * Millisecond)
		ch.Send(7)
	})
	e.Run()
	if !ok {
		t.Fatal("send should beat timeout")
	}
}

func TestResourceCapacity(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, 2)
	var maxInUse int
	var finish []Time
	for i := 0; i < 4; i++ {
		e.Spawn(i, func(p rt.Proc) {
			r.Acquire(p)
			if r.InUse() > maxInUse {
				maxInUse = r.InUse()
			}
			p.Sleep(10 * Millisecond)
			r.Release()
			finish = append(finish, p.Now())
		})
	}
	e.Run()
	if maxInUse != 2 {
		t.Fatalf("max in use = %d, want 2", maxInUse)
	}
	// Two waves: 10ms and 20ms.
	if finish[0] != Time(10*Millisecond) || finish[3] != Time(20*Millisecond) {
		t.Fatalf("finish times = %v", finish)
	}
}

func TestWaitGroup(t *testing.T) {
	e := NewEngine(1)
	wg := NewWaitGroup(e)
	wg.Add(3)
	var doneAt Time
	e.Spawn(0, func(p rt.Proc) {
		wg.Wait(p)
		doneAt = p.Now()
	})
	for i := 1; i <= 3; i++ {
		i := i
		e.Spawn(i, func(p rt.Proc) {
			p.Sleep(Duration(i*10) * Millisecond)
			wg.Done()
		})
	}
	e.Run()
	if doneAt != Time(30*Millisecond) {
		t.Fatalf("wait finished at %v, want 30ms", Duration(doneAt))
	}
}

func TestDeadlineStopsRun(t *testing.T) {
	e := NewEngine(1)
	e.Deadline = Time(100 * Millisecond)
	count := 0
	e.Spawn(0, func(p rt.Proc) {
		for i := 0; i < 1000; i++ {
			p.Sleep(10 * Millisecond)
			count++
		}
	})
	end := e.Run()
	if end != e.Deadline {
		t.Fatalf("ended at %v, want deadline", Duration(end))
	}
	// Wakeups at 10ms..100ms run (events at exactly the deadline fire);
	// the 110ms event is past the deadline.
	if count != 10 {
		t.Fatalf("count = %d, want 10", count)
	}
}

func TestNestedSpawn(t *testing.T) {
	e := NewEngine(1)
	var childRan bool
	e.Spawn(0, func(p rt.Proc) {
		p.Sleep(5 * Millisecond)
		e.Spawn(1, func(q rt.Proc) {
			q.Sleep(5 * Millisecond)
			childRan = true
		})
		p.Sleep(20 * Millisecond)
	})
	e.Run()
	if !childRan {
		t.Fatal("nested spawn did not run")
	}
	if e.Live() != 0 {
		t.Fatalf("live = %d, want 0", e.Live())
	}
}

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{1500 * Millisecond, "1.500s"},
		{2 * Millisecond, "2.000ms"},
		{3 * Microsecond, "3.000us"},
		{42, "42ns"},
	}
	for _, tc := range cases {
		if got := tc.d.String(); got != tc.want {
			t.Errorf("%d: got %q want %q", int64(tc.d), got, tc.want)
		}
	}
}

func TestDrainKillsParkedAndUnstarted(t *testing.T) {
	e := NewEngine(1)
	e.Deadline = Time(50 * Millisecond)
	var cleanupRan int
	// A proc parked past the deadline.
	e.Spawn(0, func(p rt.Proc) {
		defer func() { cleanupRan++ }()
		p.Sleep(Second)
	})
	// A proc waiting on a channel nobody sends to.
	ch := NewChan(e)
	e.Spawn(1, func(p rt.Proc) {
		defer func() { cleanupRan++ }()
		ch.Recv(p)
	})
	e.Run()
	e.Drain()
	if e.Live() != 0 {
		t.Fatalf("live = %d after drain, want 0", e.Live())
	}
	// Deferred cleanup must have run in killed procs (panic-based unwind).
	if cleanupRan != 2 {
		t.Fatalf("cleanup ran %d times, want 2", cleanupRan)
	}
}
