package sim_test

import (
	"testing"

	"repro/internal/rt"
	"repro/internal/rt/rttest"
	"repro/internal/sim"
)

// TestRuntimeConformance runs the shared rt conformance suite against the
// simulator, pinning the exact contract internal/rtlive must also meet.
func TestRuntimeConformance(t *testing.T) {
	rttest.Run(t, func() rt.Runtime { return sim.NewEngine(1) })
}
