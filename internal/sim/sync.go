package sim

import "repro/internal/rt"

// Chan is an unbounded FIFO message queue in virtual time. Any process
// may Send; receiving processes park until a message (or their timeout)
// arrives. Sends from non-process context (event callbacks) are allowed.
type Chan struct {
	e       *Engine
	q       []any
	waiters []rt.Proc
}

// NewChan creates a channel on the engine.
func NewChan(e *Engine) *Chan { return &Chan{e: e} }

// Len returns the number of queued messages.
func (c *Chan) Len() int { return len(c.q) }

// Send enqueues a message and wakes one waiting receiver (at the current
// virtual time, after the sender next parks).
func (c *Chan) Send(v any) {
	c.q = append(c.q, v)
	if len(c.waiters) > 0 {
		w := c.waiters[0]
		c.waiters = c.waiters[1:]
		token := w.Token()
		c.e.At(c.e.now, func() { w.WakeIf(token) })
	}
}

// Recv blocks until a message is available and returns it.
func (c *Chan) Recv(p rt.Proc) any {
	v, ok := c.RecvTimeout(p, -1)
	if !ok {
		panic("sim: Recv returned without a value")
	}
	return v
}

// RecvTimeout blocks until a message arrives or d elapses (d < 0 means no
// timeout). Returns ok=false on timeout.
func (c *Chan) RecvTimeout(p rt.Proc, d Duration) (any, bool) {
	var deadline Time = -1
	if d >= 0 {
		deadline = c.e.now + Time(d)
	}
	for {
		if len(c.q) > 0 {
			v := c.q[0]
			c.q = c.q[1:]
			return v, true
		}
		if deadline >= 0 && c.e.now >= deadline {
			c.unwait(p)
			return nil, false
		}
		c.waiters = append(c.waiters, p)
		token := p.PrepPark()
		if deadline >= 0 {
			c.e.At(deadline, func() { p.WakeIf(token) })
		}
		p.Park()
		c.unwait(p)
	}
}

func (c *Chan) unwait(p rt.Proc) {
	for i, w := range c.waiters {
		if w == p {
			c.waiters = append(c.waiters[:i], c.waiters[i+1:]...)
			return
		}
	}
}

// Resource is a counting semaphore in virtual time, used to model a
// site's CPU capacity: transactions acquire a slot for their service time,
// so throughput saturates when all slots are busy (the Figure 17 client
// plateau).
type Resource struct {
	e       *Engine
	cap     int
	inUse   int
	waiters []rt.Proc
}

// NewResource creates a resource with the given capacity.
func NewResource(e *Engine, capacity int) *Resource {
	return &Resource{e: e, cap: capacity}
}

// Acquire blocks until a slot is free and takes it.
func (r *Resource) Acquire(p rt.Proc) {
	for r.inUse >= r.cap {
		r.waiters = append(r.waiters, p)
		p.PrepPark()
		p.Park()
	}
	r.inUse++
}

// Release frees a slot and wakes one waiter.
func (r *Resource) Release() {
	r.inUse--
	if len(r.waiters) > 0 {
		w := r.waiters[0]
		r.waiters = r.waiters[1:]
		token := w.Token()
		r.e.At(r.e.now, func() { w.WakeIf(token) })
	}
}

// InUse returns the number of held slots.
func (r *Resource) InUse() int { return r.inUse }

// WaitGroup lets one process wait for N completions in virtual time.
type WaitGroup struct {
	e       *Engine
	count   int
	waiters []rt.Proc
}

// NewWaitGroup creates a wait group.
func NewWaitGroup(e *Engine) *WaitGroup { return &WaitGroup{e: e} }

// Add increments the completion counter.
func (wg *WaitGroup) Add(n int) { wg.count += n }

// Done decrements the counter, waking waiters at zero.
func (wg *WaitGroup) Done() {
	wg.count--
	if wg.count <= 0 {
		for _, w := range wg.waiters {
			token := w.Token()
			wg.e.At(wg.e.now, func() { w.WakeIf(token) })
		}
		wg.waiters = nil
	}
}

// Wait parks until the counter reaches zero.
func (wg *WaitGroup) Wait(p rt.Proc) {
	for wg.count > 0 {
		wg.waiters = append(wg.waiters, p)
		p.PrepPark()
		p.Park()
	}
}
