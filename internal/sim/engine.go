// Package sim is a deterministic discrete-event simulation engine with
// cooperative processes. It replaces the paper's EC2 deployment: virtual
// time advances only through scheduled events, so experiments with
// hundreds of simulated seconds of WAN latency run in milliseconds of
// wall-clock time and are exactly reproducible.
//
// Concurrency model: exactly one goroutine (either the engine or a single
// process) runs at any moment. A process runs until it parks (Sleep,
// channel receive, resource acquire), at which point control returns to
// the engine, which pops the next event off the virtual-time heap. Events
// at equal times fire in schedule order, making runs deterministic.
//
// The engine is one implementation of the internal/rt runtime contract
// (the other is internal/rtlive's wall-clock runtime); the protocol core
// programs against rt and runs unchanged on either.
package sim

import (
	"container/heap"
	"math/rand"

	"repro/internal/rt"
)

// Time is virtual time in nanoseconds since simulation start.
type Time = rt.Time

// Duration is a virtual time span in nanoseconds.
type Duration = rt.Duration

// Common durations.
const (
	Nanosecond  = rt.Nanosecond
	Microsecond = rt.Microsecond
	Millisecond = rt.Millisecond
	Second      = rt.Second
)

// Compile-time checks that the engine implements the runtime contract.
var (
	_ rt.Runtime = (*Engine)(nil)
	_ rt.Proc    = (*Proc)(nil)
)

// event is one scheduled occurrence: either a callback (fn) or, for the
// allocation-free Sleep wake path, a direct (proc, token) wake target.
type event struct {
	t     Time
	seq   int64
	fn    func()
	proc  *Proc
	token int64
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

type ctlMsg int

const (
	ctlParked ctlMsg = iota
	ctlDone
)

// Engine owns the virtual clock and event queue.
type Engine struct {
	now    Time
	events eventHeap
	seq    int64
	ctl    chan ctlMsg
	rng    *rand.Rand
	live   int // processes started and not finished
	procs  []*Proc

	// free recycles fired events so the steady-state schedule/fire cycle
	// (one wake per Sleep) does not allocate.
	free []*event

	// Deadline, when nonzero, stops Run once virtual time would pass it.
	Deadline Time
}

// NewEngine returns an engine whose random stream is seeded
// deterministically.
func NewEngine(seed int64) *Engine {
	return &Engine{
		ctl: make(chan ctlMsg),
		rng: rand.New(rand.NewSource(seed)),
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random stream.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// alloc pops a recycled event or allocates a fresh one.
func (e *Engine) alloc() *event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		return ev
	}
	return &event{}
}

// At schedules fn to run at the given virtual time (clamped to now).
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	ev := e.alloc()
	ev.t, ev.seq, ev.fn = t, e.seq, fn
	heap.Push(&e.events, ev)
}

// wakeAt schedules a direct process wake — Sleep's path, which carries no
// closure so a recycled event makes it allocation-free.
func (e *Engine) wakeAt(t Time, p *Proc, token int64) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	ev := e.alloc()
	ev.t, ev.seq, ev.proc, ev.token = t, e.seq, p, token
	heap.Push(&e.events, ev)
}

// After schedules fn to run after d elapses.
func (e *Engine) After(d Duration, fn func()) { e.At(e.now+Time(d), fn) }

// Proc is a cooperative process. All Proc methods must be called from the
// process's own goroutine.
type Proc struct {
	e       *Engine
	ID      int
	resume  chan struct{}
	parked  bool
	started bool
	done    bool
	killed  bool
	token   int64
}

type killedError struct{}

func (killedError) Error() string { return "sim: process killed by Drain" }

// Spawn starts a new process running fn at the current virtual time.
func (e *Engine) Spawn(id int, fn func(p rt.Proc)) {
	p := &Proc{e: e, ID: id, resume: make(chan struct{})}
	e.live++
	e.procs = append(e.procs, p)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(killedError); !ok {
					panic(r)
				}
			}
			p.done = true
			e.ctl <- ctlDone
		}()
		<-p.resume
		if p.killed {
			return
		}
		p.started = true
		fn(p)
	}()
	e.At(e.now, func() {
		if !p.done && !p.started {
			e.resumeProc(p)
		}
	})
}

// NewResource creates a counting semaphore on the engine (rt.Runtime).
func (e *Engine) NewResource(capacity int) rt.Resource { return NewResource(e, capacity) }

// SetDeadline bounds Run (rt.Runtime): virtual time never passes t.
func (e *Engine) SetDeadline(t Time) { e.Deadline = t }

// Drain terminates every process that has not finished: parked processes
// are woken into a cancellation panic recovered by the spawn wrapper, and
// unstarted processes exit immediately. Call after Run returns (at the
// deadline) to avoid leaking goroutines across experiments.
func (e *Engine) Drain() {
	for {
		progress := false
		for _, p := range e.procs {
			if p.done {
				continue
			}
			p.killed = true
			if p.parked || !p.started {
				p.parked = false
				p.token++
				e.resumeProc(p)
				progress = true
			}
		}
		if !progress {
			return
		}
	}
}

// resumeProc hands control to p and waits until it parks or finishes.
// Must only be called from the engine's goroutine (inside an event fn).
func (e *Engine) resumeProc(p *Proc) {
	p.resume <- struct{}{}
	msg := <-e.ctl
	if msg == ctlDone {
		e.live--
	}
}

// prepPark marks the process as about to park and returns the wake token.
func (p *Proc) prepPark() int64 {
	p.parked = true
	return p.token
}

// park yields control to the engine until woken.
func (p *Proc) park() {
	p.e.ctl <- ctlParked
	<-p.resume
	if p.killed {
		panic(killedError{})
	}
}

// wakeIf resumes the process if it is still parked with the given token.
// Returns whether the wake took effect. Must be called from an event fn.
func (p *Proc) wakeIf(token int64) bool {
	if !p.parked || p.token != token {
		return false
	}
	p.parked = false
	p.token++
	p.e.resumeProc(p)
	return true
}

// Sleep suspends the process for d of virtual time.
func (p *Proc) Sleep(d Duration) {
	token := p.prepPark()
	p.e.wakeAt(p.e.now+Time(d), p, token)
	p.park()
}

// Now returns the current virtual time (valid while the process runs).
func (p *Proc) Now() Time { return p.e.Now() }

// Token returns the process's current park token, for building
// synchronization primitives outside this package. Capture it while the
// process is parked and pass it to WakeIf.
func (p *Proc) Token() int64 { return p.token }

// PrepPark marks the process as about to park and returns the wake token,
// for building synchronization primitives outside this package. Call
// Park immediately after scheduling any wake events.
func (p *Proc) PrepPark() int64 { return p.prepPark() }

// Park yields control to the engine until another event wakes the process
// via WakeIf with the token PrepPark returned.
func (p *Proc) Park() { p.park() }

// WakeIf resumes the process if it is still parked with the given token,
// reporting whether the wake took effect. Must be called from an event
// callback (engine context), not from another process.
func (p *Proc) WakeIf(token int64) bool { return p.wakeIf(token) }

// Engine returns the owning engine.
func (p *Proc) Engine() *Engine { return p.e }

// Run processes events until the queue empties or the deadline passes.
// It returns the final virtual time.
func (e *Engine) Run() Time {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*event)
		if e.Deadline != 0 && ev.t > e.Deadline {
			e.now = e.Deadline
			return e.now
		}
		e.now = ev.t
		fn, proc, token := ev.fn, ev.proc, ev.token
		ev.fn, ev.proc = nil, nil
		e.free = append(e.free, ev)
		if fn != nil {
			fn()
		} else if proc != nil {
			proc.wakeIf(token)
		}
	}
	return e.now
}

// Live returns the number of processes that have started but not
// finished (parked processes included).
func (e *Engine) Live() int { return e.live }
