// Package rtlive is the wall-clock implementation of the internal/rt
// runtime contract: processes are real goroutines, timers are time.Timer,
// and parking blocks on a sync.Cond, so rt.Resource capacities (site CPU
// caps) and lock timeouts become real concurrency limits. It powers
// cmd/homeostasis-serve, which runs the same protocol core the simulator
// runs — internal/store, internal/homeostasis, and the baselines are
// byte-for-byte shared — against real traffic and real time.
//
// # How the execution contract is provided
//
// The rt contract promises that at most one spawned process executes
// protocol code at a time, with the execution right released at park
// points. The simulator gets this for free from cooperative scheduling;
// this runtime provides it with a scheduler lock: a process holds the
// lock while running, and Park/Sleep/Resource waits release it while
// blocked. Timer callbacks scheduled through At/After also run holding
// the lock. Shared protocol state (lock tables, treaty units, metrics)
// therefore needs no additional synchronization, exactly as on the
// simulator, while real concurrency still happens wherever the protocol
// waits: local execution service times, WAN round trips, lock waits, and
// CPU-slot queues all overlap for real.
//
// The cost is that pure in-memory protocol sections serialize on one
// lock. Those sections are short (a few microseconds of map and slice
// work per transaction) compared to the modeled waits (milliseconds), so
// the serving runtime saturates its configured CPU caps long before the
// scheduler lock saturates a core. Sharding the scheduler lock is the
// natural next step once real deployments outgrow it.
package rtlive

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/rt"
)

// Compile-time checks against the runtime contract.
var (
	_ rt.Runtime = (*Runtime)(nil)
	_ rt.Proc    = (*Proc)(nil)
)

// Runtime is a wall-clock rt.Runtime.
type Runtime struct {
	// mu is the scheduler lock (see the package comment). A process runs
	// holding it; park points release it.
	mu    sync.Mutex //homeo:schedlock
	clock func() time.Time
	start time.Time
	rng   *rand.Rand

	// wg tracks live process goroutines; Drain and deadline-less Run wait
	// on it.
	wg sync.WaitGroup

	procMu   sync.Mutex
	procs    []*Proc
	draining bool

	live     atomic.Int64
	deadline atomic.Int64 // rt.Time; 0 = none
}

// wallClock is the package's sole sanctioned wall-clock source; every
// other read goes through a Runtime's injected clock so tests can pin
// time.
var wallClock = time.Now //homeo:wallclock sole clock construction site

// New returns a runtime whose clock starts now and whose random stream is
// seeded deterministically (stream order still depends on real
// scheduling, unlike the simulator's).
func New(seed int64) *Runtime { return NewClocked(seed, wallClock) }

// NewClocked is New with an injected clock source. Timers and sleeps
// still use real time; only Now readings route through clock.
func NewClocked(seed int64, clock func() time.Time) *Runtime {
	return &Runtime{
		clock: clock,
		start: clock(),
		rng:   rand.New(&lockedSource{src: rand.NewSource(seed).(rand.Source64)}),
	}
}

// lockedSource makes the shared rand stream safe for use from timer
// callbacks and processes on different goroutines.
type lockedSource struct {
	mu  sync.Mutex
	src rand.Source64
}

func (s *lockedSource) Int63() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.src.Int63()
}

func (s *lockedSource) Uint64() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.src.Uint64()
}

func (s *lockedSource) Seed(seed int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.src.Seed(seed)
}

// Now returns nanoseconds of wall-clock time since the runtime started.
func (r *Runtime) Now() rt.Time { return rt.Time(r.clock().Sub(r.start)) }

// Rand returns the runtime's seeded random stream.
func (r *Runtime) Rand() *rand.Rand { return r.rng }

// At schedules fn to run at the given time (clamped to now). The callback
// runs holding the scheduler lock, so it may inspect shared protocol
// state and wake processes, exactly like a simulator event.
func (r *Runtime) At(t rt.Time, fn func()) {
	d := time.Duration(t - r.Now())
	if d < 0 {
		d = 0
	}
	time.AfterFunc(d, func() {
		r.mu.Lock()
		defer r.mu.Unlock()
		fn()
	})
}

// After schedules fn to run after d elapses.
func (r *Runtime) After(d rt.Duration, fn func()) { r.At(r.Now()+rt.Time(d), fn) }

// SetDeadline bounds Run (zero means none).
func (r *Runtime) SetDeadline(t rt.Time) { r.deadline.Store(int64(t)) }

// Run blocks in real time: until the deadline when one is set, otherwise
// until every spawned process has finished. Processes run regardless of
// whether Run is called; Run is the driver's barrier, matching the
// simulator's event pump in the protocol's Run path.
func (r *Runtime) Run() rt.Time {
	if d := rt.Time(r.deadline.Load()); d != 0 {
		if wait := time.Duration(d - r.Now()); wait > 0 {
			time.Sleep(wait)
		}
		return r.Now()
	}
	r.wg.Wait()
	return r.Now()
}

// Drain cancels every process that has not finished: parked processes are
// woken into a cancellation panic recovered by the spawn wrapper (running
// their deferred cleanup), running processes are cancelled at their next
// park point. Drain blocks until all process goroutines have exited, so
// after it returns no process touches shared state.
func (r *Runtime) Drain() {
	r.procMu.Lock()
	r.draining = true
	procs := make([]*Proc, len(r.procs))
	copy(procs, r.procs)
	r.procMu.Unlock()
	for _, p := range procs {
		p.kill()
	}
	r.wg.Wait()
}

// Live returns the number of processes that have started but not
// finished.
func (r *Runtime) Live() int { return int(r.live.Load()) }

// Exec runs fn as a process and blocks until it returns, reporting
// whether it ran (false when the runtime is draining; a process drained
// mid-run still counts as ran). It is the bridge from external goroutines
// (HTTP handlers) into the runtime's execution contract.
func (r *Runtime) Exec(id int, fn func(p rt.Proc)) bool {
	done := make(chan struct{})
	if !r.spawn(id, func(p rt.Proc) {
		defer close(done)
		fn(p)
	}) {
		return false
	}
	<-done
	return true
}

// Locked runs fn holding the scheduler lock, for external goroutines that
// need a consistent snapshot of shared protocol state (stats endpoints).
func (r *Runtime) Locked(fn func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	fn()
}

type killedError struct{}

func (killedError) Error() string { return "rtlive: process killed by Drain" }

// Proc is a live process: a goroutine that holds the scheduler lock while
// it runs protocol code.
type Proc struct {
	r  *Runtime
	id int

	// pmu guards parked/killed; token is guarded by the scheduler lock
	// (all its readers and writers hold it).
	pmu    sync.Mutex
	cond   *sync.Cond
	parked bool
	killed bool
	token  int64

	// sleepTimer is the process's reusable Sleep timer; sleepToken is
	// the park token of the sleep that armed it. Both are accessed only
	// under the scheduler lock (Sleep runs holding it, and the timer
	// callback takes it), so the steady-state Sleep cycle is a timer
	// Reset instead of a fresh timer + closure per call.
	sleepTimer *time.Timer
	sleepToken int64
}

// Spawn starts a new process goroutine running fn. If the runtime is
// draining, the process is not started.
func (r *Runtime) Spawn(id int, fn func(p rt.Proc)) { r.spawn(id, fn) }

// SpawnOK is Spawn reporting whether the process started (false when the
// runtime is draining). Callers that need to distinguish an admitted
// submission from a refused one (the serving path's backpressure) use
// this instead of the fire-and-forget contract method.
func (r *Runtime) SpawnOK(id int, fn func(p rt.Proc)) bool { return r.spawn(id, fn) }

func (r *Runtime) spawn(id int, fn func(p rt.Proc)) bool {
	p := &Proc{r: r, id: id}
	p.cond = sync.NewCond(&p.pmu)
	r.procMu.Lock()
	if r.draining {
		r.procMu.Unlock()
		return false
	}
	r.procs = append(r.procs, p)
	r.procMu.Unlock()
	r.live.Add(1)
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		defer r.live.Add(-1)
		defer r.removeProc(p)
		r.mu.Lock()
		defer r.mu.Unlock()
		defer func() {
			if x := recover(); x != nil {
				if _, ok := x.(killedError); !ok {
					panic(x)
				}
			}
		}()
		fn(p)
	}()
	return true
}

// removeProc forgets a finished process so long-running servers do not
// accumulate dead entries.
func (r *Runtime) removeProc(p *Proc) {
	r.procMu.Lock()
	defer r.procMu.Unlock()
	for i, q := range r.procs {
		if q == p {
			r.procs[i] = r.procs[len(r.procs)-1]
			r.procs[len(r.procs)-1] = nil
			r.procs = r.procs[:len(r.procs)-1]
			return
		}
	}
}

// kill marks the process cancelled and wakes it if parked. The process
// unwinds via a panic at its next (or current) park point.
func (p *Proc) kill() {
	p.pmu.Lock()
	p.killed = true
	p.cond.Broadcast()
	p.pmu.Unlock()
}

// Now returns the current wall-clock runtime time.
func (p *Proc) Now() rt.Time { return p.r.Now() }

// Token returns the current park token. Callers hold the scheduler lock
// per the rt contract.
func (p *Proc) Token() int64 { return p.token }

// PrepPark marks the process as about to park and returns the wake token.
//
//homeo:schedlocked
func (p *Proc) PrepPark() int64 {
	p.pmu.Lock()
	p.parked = true
	p.pmu.Unlock()
	return p.token
}

// Park releases the scheduler lock, blocks until a WakeIf with the
// current token (or cancellation), and reacquires the lock. Deferred
// cleanup after a cancellation therefore still runs under the execution
// contract.
//
//homeo:schedlocked
func (p *Proc) Park() {
	p.r.mu.Unlock()
	p.pmu.Lock()
	for p.parked && !p.killed {
		p.cond.Wait()
	}
	killed := p.killed
	p.parked = false
	p.pmu.Unlock()
	p.r.mu.Lock()
	if killed {
		panic(killedError{})
	}
}

// WakeIf resumes the process if it is still parked with the given token.
// Callers hold the scheduler lock (timer callbacks and running
// processes), which serializes token accesses.
//
//homeo:schedlocked
func (p *Proc) WakeIf(token int64) bool {
	if p.token != token {
		return false
	}
	p.pmu.Lock()
	if !p.parked {
		p.pmu.Unlock()
		return false
	}
	p.parked = false
	p.token++
	p.cond.Broadcast()
	p.pmu.Unlock()
	return true
}

// Sleep suspends the process for d of real time.
//
//homeo:schedlocked
func (p *Proc) Sleep(d rt.Duration) {
	token := p.PrepPark()
	p.sleepToken = token
	wait := time.Duration(d)
	if wait < 0 {
		wait = 0
	}
	if p.sleepTimer == nil {
		p.sleepTimer = time.AfterFunc(wait, p.sleepWake)
	} else {
		// The previous wake ran to completion before this process could
		// re-enter Sleep (the callback releases the scheduler lock only
		// after WakeIf, and Park reacquires it), so Reset never races a
		// pending callback.
		p.sleepTimer.Reset(wait)
	}
	p.Park()
}

// sleepWake is the reusable timer callback for Sleep: like every timer it
// runs under the scheduler lock and wakes the process if it is still
// parked on the sleep that armed the timer.
func (p *Proc) sleepWake() {
	p.r.mu.Lock()
	defer p.r.mu.Unlock()
	p.WakeIf(p.sleepToken)
}

// resource is a counting semaphore whose waiters really block; its
// capacity is a true concurrency limit. State is guarded by the scheduler
// lock like all shared protocol state.
type resource struct {
	r       *Runtime
	cap     int
	inUse   int
	waiters []rt.Proc
}

// NewResource creates a bounded resource with the given capacity.
func (r *Runtime) NewResource(capacity int) rt.Resource {
	return &resource{r: r, cap: capacity}
}

// Acquire blocks the calling process until a slot is free (FIFO among
// waiters) and takes it.
//
//homeo:schedlocked
func (s *resource) Acquire(p rt.Proc) {
	for s.inUse >= s.cap {
		s.waiters = append(s.waiters, p)
		p.PrepPark()
		p.Park()
	}
	s.inUse++
}

// Release frees a slot and wakes the oldest waiter.
//
//homeo:schedlocked
func (s *resource) Release() {
	s.inUse--
	if len(s.waiters) > 0 {
		w := s.waiters[0]
		s.waiters = s.waiters[1:]
		token := w.Token()
		s.r.At(s.r.Now(), func() { w.WakeIf(token) })
	}
}

// InUse returns the number of held slots.
func (s *resource) InUse() int { return s.inUse }
