package rtlive_test

import (
	"sync"
	"testing"

	"repro/internal/rt"
	"repro/internal/rt/rttest"
	"repro/internal/rtlive"
)

// TestRuntimeConformance runs the shared rt conformance suite against the
// wall-clock runtime: the same contract the simulator pins, now with real
// goroutines, sync.Cond parking, and time.Timer wakes.
func TestRuntimeConformance(t *testing.T) {
	rttest.Run(t, func() rt.Runtime { return rtlive.New(1) })
}

// TestExecBridgesExternalGoroutines: Exec runs work from plain goroutines
// (the HTTP handler path) under the execution contract — mutations from
// concurrently Exec'd processes never race.
func TestExecBridgesExternalGoroutines(t *testing.T) {
	r := rtlive.New(1)
	const n = 16
	counter := 0
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if !r.Exec(i, func(p rt.Proc) {
				p.Sleep(2 * rt.Millisecond)
				counter++ // unsynchronized on purpose: the contract serializes it
			}) {
				t.Error("Exec refused while not draining")
			}
		}(i)
	}
	wg.Wait()
	// The bare counter++ from 16 goroutines is only safe (and only passes
	// -race) if processes really hold the execution right while running.
	if counter != n {
		t.Fatalf("counter = %d, want %d (broken execution contract)", counter, n)
	}
}

// TestExecRefusedWhileDraining: after Drain, Exec must not hang; it
// reports that the work did not run.
func TestExecRefusedWhileDraining(t *testing.T) {
	r := rtlive.New(1)
	r.Drain()
	if r.Exec(0, func(p rt.Proc) {}) {
		t.Fatal("Exec ran after Drain")
	}
}
