package lia

import (
	"math/rand"
	"testing"

	"repro/internal/logic"
)

var (
	ca = logic.Config("a")
	cb = logic.Config("b")
	cc = logic.Config("c")
)

func TestSolveModelSimpleBounds(t *testing.T) {
	// 3 <= a <= 7: model exists and is verified.
	cs := []Constraint{
		c(term(-7, ca, 1), LE), // a - 7 <= 0
		c(term(3, ca, -1), LE), // 3 - a <= 0
	}
	m, ok := SolveModel(cs)
	if !ok {
		t.Fatal("feasible system rejected")
	}
	if m[ca] < 3 || m[ca] > 7 {
		t.Fatalf("a = %d outside [3,7]", m[ca])
	}
	// Preference: the upper bound.
	if m[ca] != 7 {
		t.Fatalf("a = %d, want upper bound 7", m[ca])
	}
}

func TestSolveModelInfeasible(t *testing.T) {
	cs := []Constraint{
		c(term(-2, ca, 1), LE), // a <= 2
		c(term(3, ca, -1), LE), // a >= 3
	}
	if _, ok := SolveModel(cs); ok {
		t.Fatal("infeasible system accepted")
	}
}

func TestSolveModelTreatyShape(t *testing.T) {
	// The optimizer's instance shape: per-variable upper bounds plus a
	// sum lower bound (H1): a <= -12, b <= -7, a + b >= -20.
	cs := []Constraint{
		c(term(12, ca, 1), LE),           // a + 12 <= 0  => a <= -12
		c(term(7, cb, 1), LE),            // b <= -7
		c(term(-20, ca, -1, cb, -1), LE), // -a - b - 20 <= 0 => a + b >= -20
	}
	m, ok := SolveModel(cs)
	if !ok {
		t.Fatal("treaty-shaped system rejected")
	}
	if m[ca] > -12 || m[cb] > -7 || m[ca]+m[cb] < -20 {
		t.Fatalf("model a=%d b=%d violates constraints", m[ca], m[cb])
	}
}

func TestSolveModelEquality(t *testing.T) {
	// a = 5, b <= a, b >= 2.
	cs := []Constraint{
		c(term(-5, ca, 1), EQ),
		c(term(0, cb, 1, ca, -1), LE),
		c(term(2, cb, -1), LE),
	}
	m, ok := SolveModel(cs)
	if !ok {
		t.Fatal("rejected")
	}
	if m[ca] != 5 || m[cb] < 2 || m[cb] > 5 {
		t.Fatalf("model %v", m)
	}
}

func TestSolveModelStrict(t *testing.T) {
	// a < 5 over integers: a <= 4 expected with upper preference.
	cs := []Constraint{c(term(-5, ca, 1), LT)}
	m, ok := SolveModel(cs)
	if !ok {
		t.Fatal("rejected")
	}
	if m[ca] != 4 {
		t.Fatalf("a = %d, want 4", m[ca])
	}
}

func TestSolveModelEmpty(t *testing.T) {
	m, ok := SolveModel(nil)
	if !ok || len(m) != 0 {
		t.Fatal("empty system should yield the empty model")
	}
}

// TestSolveModelRandomConsistency: whenever SolveModel returns a model it
// satisfies the system (verified internally; double-check here) and
// whenever Feasible says no, SolveModel agrees.
func TestSolveModelRandomConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	vars := []logic.Var{ca, cb, cc}
	for trial := 0; trial < 400; trial++ {
		var cs []Constraint
		n := 1 + rng.Intn(6)
		for i := 0; i < n; i++ {
			tm := NewTerm()
			for _, v := range vars {
				if rng.Intn(2) == 0 {
					tm.AddVar(v, int64(rng.Intn(5)-2))
				}
			}
			tm.Const = int64(rng.Intn(21) - 10)
			op := []RelOp{LE, LT, EQ}[rng.Intn(3)]
			cs = append(cs, Constraint{Term: tm, Op: op})
		}
		m, ok := SolveModel(cs)
		if ok {
			bind := func(v logic.Var) (int64, bool) { val, ok := m[v]; return val, ok }
			for _, cst := range cs {
				holds, err := cst.Eval(bind)
				if err != nil || !holds {
					t.Fatalf("trial %d: model %v violates %v", trial, m, cst)
				}
			}
		} else if !ok && Feasible(cs) {
			// SolveModel is allowed to miss integer models in narrow
			// rational windows; tolerate only when strict constraints or
			// non-unit coefficients are present.
			hasHard := false
			for _, cst := range cs {
				if cst.Op == LT || cst.Op == EQ {
					hasHard = true
				}
				for _, co := range cst.Term.Coeffs {
					if co != 1 && co != -1 {
						hasHard = true
					}
				}
			}
			if !hasHard {
				t.Fatalf("trial %d: SolveModel missed a model for unit-coefficient system %v", trial, cs)
			}
		}
	}
}

func TestTightenBoundsCollapses(t *testing.T) {
	cs := []Constraint{
		c(term(-9, ca, 1), LE),           // a <= 9
		c(term(-5, ca, 1), LE),           // a <= 5 (tighter)
		c(term(-12, ca, 1), LE),          // a <= 12
		c(term(1, ca, -1), LE),           // a >= 1
		c(term(3, ca, -1), LE),           // a >= 3 (tighter)
		c(term(-20, ca, -1, cb, -1), LE), // multi-var: kept
		c(term(-4, cb, 1), EQ),           // equality: kept
	}
	out := TightenBounds(cs)
	// Expect: multi-var + equality + one upper + one lower = 4.
	if len(out) != 4 {
		t.Fatalf("tightened to %d constraints, want 4: %v", len(out), out)
	}
	// Semantics must be preserved: same feasibility and same bounds.
	lo, _, up, _ := Bounds(out, ca)
	if lo != 3 || up != 5 {
		t.Fatalf("bounds after tightening = [%d, %d], want [3, 5]", lo, up)
	}
}

func TestTightenBoundsStrict(t *testing.T) {
	cs := []Constraint{
		c(term(-5, ca, 1), LT), // a < 5 => a <= 4
		c(term(-6, ca, 1), LE), // a <= 6
	}
	out := TightenBounds(cs)
	if len(out) != 1 {
		t.Fatalf("len = %d", len(out))
	}
	_, _, up, hasUp := Bounds(out, ca)
	if !hasUp || up != 4 {
		t.Fatalf("up = %d, want 4", up)
	}
}

func TestTightenBoundsCoefficients(t *testing.T) {
	// 2a <= 9 => a <= 4; -3a <= -7 => a >= ceil(7/3) = 3.
	cs := []Constraint{
		c(term(-9, ca, 2), LE),
		c(term(7, ca, -3), LE),
	}
	out := TightenBounds(cs)
	lo, hasLo, up, hasUp := Bounds(out, ca)
	if !hasLo || !hasUp || lo != 3 || up != 4 {
		t.Fatalf("bounds = [%d(%v), %d(%v)], want [3, 4]", lo, hasLo, up, hasUp)
	}
}

// TestTightenBoundsEquisatisfiable: tightening never changes SolveModel's
// verdict on random bound-heavy systems.
func TestTightenBoundsEquisatisfiable(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 300; trial++ {
		var cs []Constraint
		for i := 0; i < 2+rng.Intn(10); i++ {
			v := []logic.Var{ca, cb}[rng.Intn(2)]
			tm := NewTerm()
			sign := int64(1)
			if rng.Intn(2) == 0 {
				sign = -1
			}
			tm.AddVar(v, sign)
			tm.Const = int64(rng.Intn(21) - 10)
			cs = append(cs, Constraint{Term: tm, Op: LE})
		}
		_, okFull := SolveModel(cs)
		_, okTight := SolveModel(TightenBounds(cs))
		if okFull != okTight {
			t.Fatalf("trial %d: tightening changed satisfiability (%v -> %v): %v",
				trial, okFull, okTight, cs)
		}
	}
}
