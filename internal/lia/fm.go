package lia

import (
	"math/big"

	"repro/internal/logic"
)

// This file implements Fourier–Motzkin elimination over the rationals for
// deciding feasibility of conjunctions of linear constraints. The rational
// relaxation is sound for refutation: if the relaxation is infeasible the
// integer system certainly is. For the treaty fragment we generate
// (single-variable bounds plus sum constraints) the relaxation is also
// complete in practice; the optimizer additionally verifies any model it
// commits to by direct evaluation.

// ratConstraint is a constraint with rational coefficients:
// sum coeffs*v + c (op) 0, op in {LE, LT, EQ}.
type ratConstraint struct {
	coeffs map[logic.Var]*big.Rat
	c      *big.Rat
	op     RelOp
}

func toRat(c Constraint) ratConstraint {
	rc := ratConstraint{
		coeffs: make(map[logic.Var]*big.Rat, len(c.Term.Coeffs)),
		c:      new(big.Rat).SetInt64(c.Term.Const),
		op:     c.Op,
	}
	for v, coeff := range c.Term.Coeffs {
		rc.coeffs[v] = new(big.Rat).SetInt64(coeff)
	}
	return rc
}

func (rc ratConstraint) clone() ratConstraint {
	out := ratConstraint{
		coeffs: make(map[logic.Var]*big.Rat, len(rc.coeffs)),
		c:      new(big.Rat).Set(rc.c),
		op:     rc.op,
	}
	for v, coeff := range rc.coeffs {
		out.coeffs[v] = new(big.Rat).Set(coeff)
	}
	return out
}

// addScaled adds scale*other into rc.
func (rc *ratConstraint) addScaled(other ratConstraint, scale *big.Rat) {
	for v, coeff := range other.coeffs {
		cur, ok := rc.coeffs[v]
		if !ok {
			cur = new(big.Rat)
			rc.coeffs[v] = cur
		}
		cur.Add(cur, new(big.Rat).Mul(coeff, scale))
		if cur.Sign() == 0 {
			delete(rc.coeffs, v)
		}
	}
	rc.c.Add(rc.c, new(big.Rat).Mul(other.c, scale))
}

// trivialStatus checks a variable-free constraint: returns (feasible,
// isTrivial).
func (rc ratConstraint) trivialStatus() (bool, bool) {
	if len(rc.coeffs) != 0 {
		return false, false
	}
	switch rc.op {
	case LE:
		return rc.c.Sign() <= 0, true
	case LT:
		return rc.c.Sign() < 0, true
	case EQ:
		return rc.c.Sign() == 0, true
	}
	return false, true
}

// Feasible reports whether the conjunction of constraints has a rational
// solution, using Fourier–Motzkin elimination. An empty system is
// feasible.
func Feasible(cs []Constraint) bool {
	system := make([]ratConstraint, 0, len(cs))
	vars := make(map[logic.Var]bool)
	for _, c := range cs {
		rc := toRat(c)
		for v := range rc.coeffs {
			vars[v] = true
		}
		system = append(system, rc)
	}
	order := logic.SortedVars(vars)
	for _, v := range order {
		next, ok := eliminate(system, v)
		if !ok {
			return false
		}
		system = next
	}
	for _, rc := range system {
		if ok, trivial := rc.trivialStatus(); trivial && !ok {
			return false
		}
	}
	return true
}

// eliminate removes variable v from the system. Equalities involving v are
// used as substitutions; otherwise the standard FM combination of upper
// and lower bounds applies. Returns ok=false if an immediate
// contradiction among variable-free constraints is found.
func eliminate(system []ratConstraint, v logic.Var) ([]ratConstraint, bool) {
	// First, try to find an equality mentioning v to use as a pivot.
	for i, rc := range system {
		if rc.op != EQ {
			continue
		}
		coeff, ok := rc.coeffs[v]
		if !ok {
			continue
		}
		// v = -(rest + c)/coeff; substitute into every other constraint.
		var out []ratConstraint
		for j, other := range system {
			if j == i {
				continue
			}
			oc, ok := other.coeffs[v]
			if !ok {
				out = append(out, other)
				continue
			}
			repl := other.clone()
			delete(repl.coeffs, v)
			// repl += (-oc/coeff) * (rc without making v explicit)
			scale := new(big.Rat).Quo(new(big.Rat).Neg(oc), coeff)
			pivot := rc.clone()
			delete(pivot.coeffs, v)
			repl.addScaled(pivot, scale)
			if feas, trivial := repl.trivialStatus(); trivial {
				if !feas {
					return nil, false
				}
				continue
			}
			out = append(out, repl)
		}
		return out, true
	}

	// No equality pivot: classify into lower bounds, upper bounds, and
	// constraints not involving v.
	var lowers, uppers, rest []ratConstraint
	strict := func(rc ratConstraint) bool { return rc.op == LT }
	for _, rc := range system {
		coeff, ok := rc.coeffs[v]
		if !ok {
			rest = append(rest, rc)
			continue
		}
		// Normalize so the constraint reads v <= bound (coeff>0) or
		// v >= bound (coeff<0). Keep raw form; combination below handles
		// scaling.
		if coeff.Sign() > 0 {
			uppers = append(uppers, rc)
		} else {
			lowers = append(lowers, rc)
		}
	}
	// Combine each lower with each upper, eliminating v.
	for _, lo := range lowers {
		for _, up := range uppers {
			lc := lo.coeffs[v] // negative
			uc := up.coeffs[v] // positive
			// combined = up*(-lc) + lo*uc, whose v coefficient is
			// uc*(-lc) + lc*uc = 0.
			combined := ratConstraint{
				coeffs: make(map[logic.Var]*big.Rat),
				c:      new(big.Rat),
				op:     LE,
			}
			if strict(lo) || strict(up) {
				combined.op = LT
			}
			negLc := new(big.Rat).Neg(lc)
			combined.addScaled(up, negLc)
			combined.addScaled(lo, uc)
			delete(combined.coeffs, v)
			if feas, trivial := combined.trivialStatus(); trivial {
				if !feas {
					return nil, false
				}
				continue
			}
			rest = append(rest, combined)
		}
	}
	return rest, true
}

// Implies reports whether the conjunction of premises implies the
// conclusion constraint, i.e. premises && !conclusion is infeasible.
// Because the negation of an equality is disjunctive, Implies splits it
// into the two strict cases.
func Implies(premises []Constraint, conclusion Constraint) bool {
	switch conclusion.Op {
	case LE:
		// !(t <= 0)  <=>  -t < 0
		neg := NewTerm()
		neg.AddTerm(conclusion.Term, -1)
		return !Feasible(append(clones(premises), Constraint{Term: neg, Op: LT}))
	case LT:
		// !(t < 0)  <=>  -t <= 0
		neg := NewTerm()
		neg.AddTerm(conclusion.Term, -1)
		return !Feasible(append(clones(premises), Constraint{Term: neg, Op: LE}))
	case EQ:
		// !(t = 0)  <=>  t < 0  ||  -t < 0
		lt := Constraint{Term: conclusion.Term.Clone(), Op: LT}
		neg := NewTerm()
		neg.AddTerm(conclusion.Term, -1)
		gt := Constraint{Term: neg, Op: LT}
		return !Feasible(append(clones(premises), lt)) &&
			!Feasible(append(clones(premises), gt))
	}
	return false
}

// ImpliesAll reports whether premises imply every conclusion.
func ImpliesAll(premises, conclusions []Constraint) bool {
	for _, c := range conclusions {
		if !Implies(premises, c) {
			return false
		}
	}
	return true
}

func clones(cs []Constraint) []Constraint {
	out := make([]Constraint, len(cs))
	for i, c := range cs {
		out[i] = c.Clone()
	}
	return out
}

// SubstVar replaces variable v with the given term throughout the
// constraints (used when fixing a variable's value: pass a constant term).
func SubstVar(cs []Constraint, v logic.Var, t Term) []Constraint {
	out := make([]Constraint, 0, len(cs))
	for _, c := range cs {
		coeff, ok := c.Term.Coeffs[v]
		if !ok {
			out = append(out, c.Clone())
			continue
		}
		nc := c.Clone()
		delete(nc.Term.Coeffs, v)
		nc.Term.AddTerm(t, coeff)
		out = append(out, nc)
	}
	return out
}

// Bounds computes the implied lower and upper bounds on variable v from a
// conjunction of constraints that mention only v (single-variable
// constraints). Constraints mentioning other variables are ignored.
// Returned bounds are inclusive; hasLo/hasUp report existence.
func Bounds(cs []Constraint, v logic.Var) (lo int64, hasLo bool, up int64, hasUp bool) {
	for _, c := range cs {
		coeff, ok := c.Term.Coeffs[v]
		if !ok || len(c.Term.Coeffs) != 1 {
			continue
		}
		// coeff*v + const (op) 0
		switch c.Op {
		case LE, LT:
			bound := -c.Term.Const
			if c.Op == LT {
				bound--
			}
			// coeff*v <= bound
			if coeff > 0 {
				b := floorDiv(bound, coeff)
				if !hasUp || b < up {
					up, hasUp = b, true
				}
			} else {
				b := ceilDiv(bound, coeff)
				if !hasLo || b > lo {
					lo, hasLo = b, true
				}
			}
		case EQ:
			if (-c.Term.Const)%coeff == 0 {
				b := -c.Term.Const / coeff
				if !hasLo || b > lo {
					lo, hasLo = b, true
				}
				if !hasUp || b < up {
					up, hasUp = b, true
				}
			} else {
				// No integer solution: contradictory bounds.
				lo, hasLo = 1, true
				up, hasUp = 0, true
			}
		}
	}
	return
}

func floorDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}

func ceilDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) == (b < 0)) {
		q++
	}
	return q
}
