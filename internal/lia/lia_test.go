package lia

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/lang"
	"repro/internal/logic"
)

func c(term Term, op RelOp) Constraint { return Constraint{Term: term, Op: op} }

func term(consts int64, pairs ...any) Term {
	t := NewTerm()
	t.Const = consts
	for i := 0; i < len(pairs); i += 2 {
		t.AddVar(pairs[i].(logic.Var), int64(pairs[i+1].(int)))
	}
	return t
}

var (
	vx = logic.Obj("x")
	vy = logic.Obj("y")
	vz = logic.Obj("z")
)

func TestLinearizeBasic(t *testing.T) {
	// 2*x + 3 - (y - x) = 3x - y + 3
	e := logic.Sub{
		L: logic.Add{L: logic.Mul{L: logic.Const{Value: 2}, R: logic.Ref{Var: vx}}, R: logic.Const{Value: 3}},
		R: logic.Sub{L: logic.Ref{Var: vy}, R: logic.Ref{Var: vx}},
	}
	lt, err := Linearize(e)
	if err != nil {
		t.Fatal(err)
	}
	if lt.Coeffs[vx] != 3 || lt.Coeffs[vy] != -1 || lt.Const != 3 {
		t.Fatalf("linearized = %v", lt)
	}
}

func TestLinearizeNonLinear(t *testing.T) {
	e := logic.Mul{L: logic.Ref{Var: vx}, R: logic.Ref{Var: vy}}
	if _, err := Linearize(e); err != ErrNonLinear {
		t.Fatalf("err = %v, want ErrNonLinear", err)
	}
	// Constant * variable is fine even nested.
	e2 := logic.Mul{L: logic.Sub{L: logic.Const{Value: 5}, R: logic.Const{Value: 2}}, R: logic.Ref{Var: vx}}
	lt, err := Linearize(e2)
	if err != nil || lt.Coeffs[vx] != 3 {
		t.Fatalf("got %v, %v", lt, err)
	}
}

func TestTermCancellation(t *testing.T) {
	tm := NewTerm()
	tm.AddVar(vx, 5)
	tm.AddVar(vx, -5)
	if !tm.IsConst() {
		t.Fatalf("term should be constant after cancellation: %v", tm)
	}
}

func TestAtomConstraintsAllOps(t *testing.T) {
	x := logic.Ref{Var: vx}
	ten := logic.Const{Value: 10}
	check := func(op lang.CmpOp, val int64, want bool) {
		cs, err := AtomConstraints(op, x, ten)
		if err != nil {
			t.Fatalf("op %v: %v", op, err)
		}
		b := logic.DBBinding(lang.Database{"x": val}, nil, nil)
		for _, cc := range cs {
			got, err := cc.Eval(b)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("op %v at x=%d: got %v, want %v (%v)", op, val, got, want, cc)
			}
		}
	}
	check(lang.CmpLT, 9, true)
	check(lang.CmpLT, 10, false)
	check(lang.CmpLE, 10, true)
	check(lang.CmpLE, 11, false)
	check(lang.CmpEQ, 10, true)
	check(lang.CmpEQ, 9, false)
	check(lang.CmpGT, 11, true)
	check(lang.CmpGT, 10, false)
	check(lang.CmpGE, 10, true)
	check(lang.CmpGE, 9, false)
	if _, err := AtomConstraints(lang.CmpNE, x, ten); err != ErrDisjunctive {
		t.Fatalf("NE should be ErrDisjunctive, got %v", err)
	}
}

func TestFeasibleSimple(t *testing.T) {
	// x <= 5 && x >= 3: feasible.
	cs := []Constraint{
		c(term(-5, vx, 1), LE), // x - 5 <= 0
		c(term(3, vx, -1), LE), // 3 - x <= 0
	}
	if !Feasible(cs) {
		t.Fatal("3 <= x <= 5 should be feasible")
	}
	// x <= 2 && x >= 3: infeasible.
	cs2 := []Constraint{
		c(term(-2, vx, 1), LE),
		c(term(3, vx, -1), LE),
	}
	if Feasible(cs2) {
		t.Fatal("3 <= x <= 2 should be infeasible")
	}
}

func TestFeasibleStrict(t *testing.T) {
	// x < 3 && x > 2 is rationally feasible (x = 2.5): the relaxation
	// accepts it, documenting the known incompleteness for integers.
	cs := []Constraint{
		c(term(-3, vx, 1), LT), // x - 3 < 0
		c(term(2, vx, -1), LT), // 2 - x < 0
	}
	if !Feasible(cs) {
		t.Fatal("rational relaxation should accept 2 < x < 3")
	}
	// x < 3 && x > 3 is infeasible even rationally.
	cs2 := []Constraint{
		c(term(-3, vx, 1), LT),
		c(term(3, vx, -1), LT),
	}
	if Feasible(cs2) {
		t.Fatal("x<3 && x>3 should be infeasible")
	}
}

func TestFeasibleEqualityPivot(t *testing.T) {
	// x + y = 10 && x >= 8 && y >= 3: infeasible.
	cs := []Constraint{
		c(term(-10, vx, 1, vy, 1), EQ),
		c(term(8, vx, -1), LE),
		c(term(3, vy, -1), LE),
	}
	if Feasible(cs) {
		t.Fatal("x+y=10, x>=8, y>=3 should be infeasible")
	}
	// Relax y >= 2: feasible (x=8, y=2).
	cs2 := []Constraint{
		c(term(-10, vx, 1, vy, 1), EQ),
		c(term(8, vx, -1), LE),
		c(term(2, vy, -1), LE),
	}
	if !Feasible(cs2) {
		t.Fatal("x+y=10, x>=8, y>=2 should be feasible")
	}
}

func TestFeasibleThreeVarChain(t *testing.T) {
	// x <= y && y <= z && z <= x - 1: infeasible cycle.
	cs := []Constraint{
		c(term(0, vx, 1, vy, -1), LE),
		c(term(0, vy, 1, vz, -1), LE),
		c(term(1, vz, 1, vx, -1), LE),
	}
	if Feasible(cs) {
		t.Fatal("cyclic chain with slack -1 should be infeasible")
	}
	// Without the -1 it is feasible (all equal).
	cs2 := []Constraint{
		c(term(0, vx, 1, vy, -1), LE),
		c(term(0, vy, 1, vz, -1), LE),
		c(term(0, vz, 1, vx, -1), LE),
	}
	if !Feasible(cs2) {
		t.Fatal("x<=y<=z<=x should be feasible")
	}
}

func TestFeasibleContradictoryEqualities(t *testing.T) {
	cs := []Constraint{
		c(term(-5, vx, 1), EQ), // x = 5
		c(term(-6, vx, 1), EQ), // x = 6
	}
	if Feasible(cs) {
		t.Fatal("x=5 && x=6 should be infeasible")
	}
}

func TestImplies(t *testing.T) {
	// x >= 5 implies x >= 3.
	prem := []Constraint{c(term(5, vx, -1), LE)}
	concl := c(term(3, vx, -1), LE)
	if !Implies(prem, concl) {
		t.Fatal("x>=5 should imply x>=3")
	}
	// x >= 3 does not imply x >= 5.
	if Implies([]Constraint{c(term(3, vx, -1), LE)}, c(term(5, vx, -1), LE)) {
		t.Fatal("x>=3 should not imply x>=5")
	}
	// x = 4 implies x >= 4 and x <= 4.
	eq := []Constraint{c(term(-4, vx, 1), EQ)}
	if !Implies(eq, c(term(4, vx, -1), LE)) || !Implies(eq, c(term(-4, vx, 1), LE)) {
		t.Fatal("x=4 should imply both inequalities")
	}
	// x >= 4 && x <= 4 implies x = 4 (equality conclusion).
	both := []Constraint{c(term(4, vx, -1), LE), c(term(-4, vx, 1), LE)}
	if !Implies(both, c(term(-4, vx, 1), EQ)) {
		t.Fatal("4<=x<=4 should imply x=4")
	}
}

// TestImpliesH1Shape mirrors the paper's running example: local treaties
// x >= 20 - cy and y >= 20 - cx with cx + cy <= 20 must imply the global
// treaty x + y >= 20 (Section 4.2).
func TestImpliesH1Shape(t *testing.T) {
	cy, cx := int64(12), int64(8)
	prem := []Constraint{
		c(term(20-cy, vx, -1), LE), // 20 - cy - x <= 0, i.e. x >= 20-cy
		c(term(20-cx, vy, -1), LE),
	}
	global := c(term(20, vx, -1, vy, -1), LE) // 20 - x - y <= 0
	if !Implies(prem, global) {
		t.Fatal("valid treaty configuration should imply global treaty")
	}
	// An invalid configuration (cx + cy > 20) must not imply it.
	cy, cx = 15, 8
	prem2 := []Constraint{
		c(term(20-cy, vx, -1), LE),
		c(term(20-cx, vy, -1), LE),
	}
	if Implies(prem2, global) {
		t.Fatal("invalid configuration should not imply global treaty")
	}
}

func TestSubstVar(t *testing.T) {
	cs := []Constraint{c(term(-10, vx, 1, vy, 2), LE)} // x + 2y - 10 <= 0
	fixed := NewTerm()
	fixed.Const = 3
	out := SubstVar(cs, vy, fixed) // x + 6 - 10 <= 0 => x - 4 <= 0
	if len(out) != 1 {
		t.Fatalf("len = %d", len(out))
	}
	if out[0].Term.Coeffs[vx] != 1 || out[0].Term.Const != -4 {
		t.Fatalf("subst result = %v", out[0])
	}
	if _, ok := out[0].Term.Coeffs[vy]; ok {
		t.Fatal("y should be eliminated")
	}
}

func TestBounds(t *testing.T) {
	cs := []Constraint{
		c(term(-9, vx, 2), LE),         // 2x <= 9  => x <= 4 (floor)
		c(term(3, vx, -1), LT),         // 3 - x < 0 => x > 3 => x >= 4
		c(term(-100, vy, 1), LEstub()), // ignored below
	}
	cs = cs[:2]
	lo, hasLo, up, hasUp := Bounds(cs, vx)
	if !hasLo || !hasUp || lo != 4 || up != 4 {
		t.Fatalf("bounds = [%d(%v), %d(%v)], want [4, 4]", lo, hasLo, up, hasUp)
	}
}

// LEstub works around wanting an RelOp value inline above.
func LEstub() RelOp { return LE }

func TestBoundsEquality(t *testing.T) {
	cs := []Constraint{c(term(-14, vx, 2), EQ)} // 2x = 14 => x = 7
	lo, hasLo, up, hasUp := Bounds(cs, vx)
	if !hasLo || !hasUp || lo != 7 || up != 7 {
		t.Fatalf("bounds = [%d, %d]", lo, up)
	}
	// 2x = 13 has no integer solution: bounds must be contradictory.
	cs2 := []Constraint{c(term(-13, vx, 2), EQ)}
	lo, _, up, _ = Bounds(cs2, vx)
	if lo <= up {
		t.Fatalf("non-integral equality should give empty bounds, got [%d, %d]", lo, up)
	}
}

func TestFormulaToConstraintsRoundTrip(t *testing.T) {
	f := logic.And(
		logic.Atom{Op: lang.CmpGE, L: logic.Add{L: logic.Ref{Var: vx}, R: logic.Ref{Var: vy}}, R: logic.Const{Value: 20}},
		logic.Atom{Op: lang.CmpLT, L: logic.Ref{Var: vx}, R: logic.Const{Value: 100}},
	)
	cs, err := FormulaToConstraints(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 2 {
		t.Fatalf("got %d constraints", len(cs))
	}
	back := ConstraintsToFormula(cs)
	// Check semantic agreement on a grid of points.
	for x := int64(-5); x <= 110; x += 5 {
		for y := int64(-5); y <= 30; y += 5 {
			b := logic.DBBinding(lang.Database{"x": x, "y": y}, nil, nil)
			want, err := logic.EvalFormula(f, b)
			if err != nil {
				t.Fatal(err)
			}
			got, err := logic.EvalFormula(back, b)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("round trip disagrees at (%d,%d): %v vs %v", x, y, got, want)
			}
		}
	}
}

// Property: if a random integer point satisfies all constraints, Feasible
// must return true (soundness of the relaxation in the satisfiable
// direction).
func TestFeasibleSoundOnModels(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func() bool {
		// Random point.
		px, py, pz := int64(rng.Intn(41)-20), int64(rng.Intn(41)-20), int64(rng.Intn(41)-20)
		bind := func(v logic.Var) (int64, bool) {
			switch v {
			case vx:
				return px, true
			case vy:
				return py, true
			case vz:
				return pz, true
			}
			return 0, false
		}
		// Random constraints that the point satisfies (generate then adjust
		// the constant so it holds).
		var cs []Constraint
		n := 1 + rng.Intn(5)
		for i := 0; i < n; i++ {
			tm := NewTerm()
			for _, v := range []logic.Var{vx, vy, vz} {
				if rng.Intn(2) == 0 {
					tm.AddVar(v, int64(rng.Intn(7)-3))
				}
			}
			val, _ := tm.Eval(bind)
			op := []RelOp{LE, LT, EQ}[rng.Intn(3)]
			switch op {
			case LE:
				tm.Const -= val // now evaluates to 0 <= 0
			case LT:
				tm.Const -= val + 1 // now evaluates to -1 < 0
			case EQ:
				tm.Const -= val
			}
			cs = append(cs, Constraint{Term: tm, Op: op})
		}
		return Feasible(cs)
	}
	wrapped := func(uint8) bool { return f() }
	if err := quick.Check(wrapped, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFloorCeilDiv(t *testing.T) {
	cases := []struct{ a, b, fl, ce int64 }{
		{7, 2, 3, 4},
		{-7, 2, -4, -3},
		{7, -2, -4, -3},
		{-7, -2, 3, 4},
		{6, 3, 2, 2},
		{0, 5, 0, 0},
	}
	for _, tc := range cases {
		if got := floorDiv(tc.a, tc.b); got != tc.fl {
			t.Errorf("floorDiv(%d,%d) = %d, want %d", tc.a, tc.b, got, tc.fl)
		}
		if got := ceilDiv(tc.a, tc.b); got != tc.ce {
			t.Errorf("ceilDiv(%d,%d) = %d, want %d", tc.a, tc.b, got, tc.ce)
		}
	}
}

func TestConstraintStringStable(t *testing.T) {
	cs := []Constraint{
		c(term(-5, vx, 1), LE),
		c(term(3, vy, -1), LT),
	}
	SortConstraints(cs)
	if cs[0].String() > cs[1].String() {
		t.Fatal("SortConstraints did not order by string")
	}
}
