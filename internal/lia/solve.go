package lia

import (
	"math/big"

	"repro/internal/logic"
)

// SolveModel searches for an integer model of a conjunction of linear
// constraints using Fourier-Motzkin elimination with back-substitution:
// variables are eliminated one at a time (recording the intermediate
// systems), then assigned in reverse order from the rational bounds the
// remaining constraints imply, rounding into the integer interval.
//
// The procedure is complete for the bound-plus-sum constraint systems the
// treaty optimizer generates. For general systems integrality gaps can make
// it miss models; it never returns an incorrect one (the result is
// verified by evaluation before returning).
func SolveModel(cs []Constraint) (map[logic.Var]int64, bool) {
	vars := make(map[logic.Var]bool)
	system := make([]ratConstraint, 0, len(cs))
	for _, c := range cs {
		rc := toRat(c)
		for v := range rc.coeffs {
			vars[v] = true
		}
		system = append(system, rc)
	}
	order := logic.SortedVars(vars)

	// Forward elimination, remembering the system at each stage.
	stages := make([][]ratConstraint, 0, len(order))
	cur := system
	for _, v := range order {
		stages = append(stages, cur)
		next, ok := eliminate(cur, v)
		if !ok {
			return nil, false
		}
		cur = next
	}
	for _, rc := range cur {
		if ok, trivial := rc.trivialStatus(); trivial && !ok {
			return nil, false
		}
	}

	// Back-substitution.
	model := make(map[logic.Var]int64, len(order))
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		val, ok := boundsFor(stages[i], v, model)
		if !ok {
			return nil, false
		}
		model[v] = val
	}

	// Verify the model satisfies the original constraints.
	bind := func(v logic.Var) (int64, bool) {
		val, ok := model[v]
		return val, ok
	}
	for _, c := range cs {
		ok, err := c.Eval(bind)
		if err != nil || !ok {
			return nil, false
		}
	}
	return model, true
}

// boundsFor computes the tightest rational bounds on v implied by the
// system once already-assigned variables are substituted, and picks an
// integer value inside them.
func boundsFor(system []ratConstraint, v logic.Var, assigned map[logic.Var]int64) (int64, bool) {
	var lo, hi *big.Rat
	loStrict, hiStrict := false, false
	for _, rc := range system {
		coeff, ok := rc.coeffs[v]
		if !ok {
			continue
		}
		// Substitute assigned variables into the rest of the constraint.
		rest := new(big.Rat).Set(rc.c)
		feasibleSub := true
		for ov, oc := range rc.coeffs {
			if ov == v {
				continue
			}
			val, ok := assigned[ov]
			if !ok {
				// Variable eliminated later than v should not appear in
				// this stage; bail out conservatively.
				feasibleSub = false
				break
			}
			rest.Add(rest, new(big.Rat).Mul(oc, new(big.Rat).SetInt64(val)))
		}
		if !feasibleSub {
			continue
		}
		// coeff*v + rest (op) 0  =>  v (op') -rest/coeff
		bound := new(big.Rat).Quo(new(big.Rat).Neg(rest), coeff)
		switch rc.op {
		case EQ:
			if (lo != nil && bound.Cmp(lo) < 0) || (hi != nil && bound.Cmp(hi) > 0) {
				return 0, false
			}
			lo, hi = bound, bound
			loStrict, hiStrict = false, false
		case LE, LT:
			strict := rc.op == LT
			if coeff.Sign() > 0 {
				// v <= bound
				if hi == nil || bound.Cmp(hi) < 0 || (bound.Cmp(hi) == 0 && strict) {
					hi, hiStrict = bound, strict
				}
			} else {
				// v >= bound
				if lo == nil || bound.Cmp(lo) > 0 || (bound.Cmp(lo) == 0 && strict) {
					lo, loStrict = bound, strict
				}
			}
		}
	}
	// Choose an integer in the interval. Prefer the upper bound (treaty
	// configurations want the largest allowed value; any in-range value is
	// valid for correctness).
	switch {
	case hi != nil:
		val := ratFloor(hi)
		if hiStrict && new(big.Rat).SetInt64(val).Cmp(hi) == 0 {
			val--
		}
		if lo != nil {
			loVal := ratCeil(lo)
			if loStrict && new(big.Rat).SetInt64(loVal).Cmp(lo) == 0 {
				loVal++
			}
			if val < loVal {
				return 0, false
			}
		}
		return val, true
	case lo != nil:
		val := ratCeil(lo)
		if loStrict && new(big.Rat).SetInt64(val).Cmp(lo) == 0 {
			val++
		}
		return val, true
	default:
		return 0, true
	}
}

func ratFloor(r *big.Rat) int64 {
	q := new(big.Int).Quo(r.Num(), r.Denom())
	// big.Int Quo truncates toward zero; adjust for negatives.
	if r.Sign() < 0 && new(big.Int).Mul(q, r.Denom()).Cmp(r.Num()) != 0 {
		q.Sub(q, big.NewInt(1))
	}
	return q.Int64()
}

func ratCeil(r *big.Rat) int64 {
	q := new(big.Int).Quo(r.Num(), r.Denom())
	if r.Sign() > 0 && new(big.Int).Mul(q, r.Denom()).Cmp(r.Num()) != 0 {
		q.Add(q, big.NewInt(1))
	}
	return q.Int64()
}
