// Package lia is a linear integer arithmetic toolkit: canonical linear
// terms and constraints, linearization of symbolic expressions, and a
// Fourier–Motzkin feasibility procedure. It underpins symbolic-table
// pruning and treaty generation (Section 4.2, Appendix C of the
// Homeostasis paper).
package lia

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/lang"
	"repro/internal/logic"
)

// Term is a linear combination of variables plus a constant:
// sum_i Coeffs[v_i] * v_i + Const.
type Term struct {
	Coeffs map[logic.Var]int64
	Const  int64
}

// NewTerm returns an empty (zero) term.
func NewTerm() Term {
	return Term{Coeffs: make(map[logic.Var]int64)}
}

// Clone deep-copies the term.
func (t Term) Clone() Term {
	out := Term{Coeffs: make(map[logic.Var]int64, len(t.Coeffs)), Const: t.Const}
	for v, c := range t.Coeffs {
		out.Coeffs[v] = c
	}
	return out
}

// AddVar adds coeff * v to the term.
func (t *Term) AddVar(v logic.Var, coeff int64) {
	if t.Coeffs == nil {
		t.Coeffs = make(map[logic.Var]int64)
	}
	c := t.Coeffs[v] + coeff
	if c == 0 {
		delete(t.Coeffs, v)
	} else {
		t.Coeffs[v] = c
	}
}

// AddTerm adds scale * other to the term.
func (t *Term) AddTerm(other Term, scale int64) {
	for v, c := range other.Coeffs {
		t.AddVar(v, c*scale)
	}
	t.Const += other.Const * scale
}

// IsConst reports whether the term has no variables.
func (t Term) IsConst() bool { return len(t.Coeffs) == 0 }

// Vars returns the term's variables in deterministic order.
func (t Term) Vars() []logic.Var {
	out := make([]logic.Var, 0, len(t.Coeffs))
	//homeo:nondet collected then sorted by SortVars below
	for v := range t.Coeffs {
		out = append(out, v)
	}
	logic.SortVars(out)
	return out
}

// Eval evaluates the term under a binding.
func (t Term) Eval(b logic.Binding) (int64, error) {
	sum := t.Const
	for v, c := range t.Coeffs {
		val, ok := b(v)
		if !ok {
			return 0, fmt.Errorf("lia: unbound variable %s", v)
		}
		sum += c * val
	}
	return sum, nil
}

func (t Term) String() string {
	var parts []string
	for _, v := range t.Vars() {
		c := t.Coeffs[v]
		switch c {
		case 1:
			parts = append(parts, v.String())
		case -1:
			parts = append(parts, "-"+v.String())
		default:
			parts = append(parts, fmt.Sprintf("%d*%s", c, v))
		}
	}
	if t.Const != 0 || len(parts) == 0 {
		parts = append(parts, fmt.Sprintf("%d", t.Const))
	}
	return strings.Join(parts, " + ")
}

// RelOp is the relation of a canonical constraint.
type RelOp int

const (
	// LE is Term <= 0.
	LE RelOp = iota
	// LT is Term < 0.
	LT
	// EQ is Term = 0.
	EQ
)

func (op RelOp) String() string {
	switch op {
	case LE:
		return "<="
	case LT:
		return "<"
	case EQ:
		return "="
	}
	return "?"
}

// Constraint is a canonical linear constraint: Term op 0.
type Constraint struct {
	Term Term
	Op   RelOp
}

func (c Constraint) String() string {
	return fmt.Sprintf("%s %s 0", c.Term, c.Op)
}

// Eval reports whether the constraint holds under a binding.
func (c Constraint) Eval(b logic.Binding) (bool, error) {
	v, err := c.Term.Eval(b)
	if err != nil {
		return false, err
	}
	switch c.Op {
	case LE:
		return v <= 0, nil
	case LT:
		return v < 0, nil
	case EQ:
		return v == 0, nil
	}
	return false, fmt.Errorf("lia: unknown relation %v", c.Op)
}

// Clone deep-copies the constraint.
func (c Constraint) Clone() Constraint {
	return Constraint{Term: c.Term.Clone(), Op: c.Op}
}

// ErrNonLinear is returned when an expression cannot be put into linear
// form (for example a product of two variables).
var ErrNonLinear = fmt.Errorf("lia: non-linear expression")

// Linearize converts a symbolic expression into a linear term, returning
// ErrNonLinear when the expression multiplies two non-constant subterms.
func Linearize(e logic.Expr) (Term, error) {
	switch e := e.(type) {
	case logic.Const:
		t := NewTerm()
		t.Const = e.Value
		return t, nil
	case logic.Ref:
		t := NewTerm()
		t.AddVar(e.Var, 1)
		return t, nil
	case logic.Add:
		l, err := Linearize(e.L)
		if err != nil {
			return Term{}, err
		}
		r, err := Linearize(e.R)
		if err != nil {
			return Term{}, err
		}
		l.AddTerm(r, 1)
		return l, nil
	case logic.Sub:
		l, err := Linearize(e.L)
		if err != nil {
			return Term{}, err
		}
		r, err := Linearize(e.R)
		if err != nil {
			return Term{}, err
		}
		l.AddTerm(r, -1)
		return l, nil
	case logic.Neg:
		inner, err := Linearize(e.E)
		if err != nil {
			return Term{}, err
		}
		out := NewTerm()
		out.AddTerm(inner, -1)
		return out, nil
	case logic.Mul:
		l, err := Linearize(e.L)
		if err != nil {
			return Term{}, err
		}
		r, err := Linearize(e.R)
		if err != nil {
			return Term{}, err
		}
		if l.IsConst() {
			out := NewTerm()
			out.AddTerm(r, l.Const)
			return out, nil
		}
		if r.IsConst() {
			out := NewTerm()
			out.AddTerm(l, r.Const)
			return out, nil
		}
		return Term{}, ErrNonLinear
	}
	return Term{}, fmt.Errorf("lia: unknown expression %T", e)
}

// AtomConstraints converts a comparison atom into one or two canonical
// constraints (a != b becomes the disjunction it is not, so CmpNE returns
// ErrDisjunctive; callers split on it).
var ErrDisjunctive = fmt.Errorf("lia: disequality is disjunctive")

// AtomConstraints canonicalizes "l op r" into constraints of the form
// Term {<=,<,=} 0 using integer arithmetic only.
func AtomConstraints(op lang.CmpOp, l, r logic.Expr) ([]Constraint, error) {
	lt, err := Linearize(l)
	if err != nil {
		return nil, err
	}
	rt, err := Linearize(r)
	if err != nil {
		return nil, err
	}
	diff := NewTerm()
	diff.AddTerm(lt, 1)
	diff.AddTerm(rt, -1) // diff = l - r
	switch op {
	case lang.CmpLT: // l - r < 0
		return []Constraint{{Term: diff, Op: LT}}, nil
	case lang.CmpLE:
		return []Constraint{{Term: diff, Op: LE}}, nil
	case lang.CmpEQ:
		return []Constraint{{Term: diff, Op: EQ}}, nil
	case lang.CmpGT: // r - l < 0
		neg := NewTerm()
		neg.AddTerm(diff, -1)
		return []Constraint{{Term: neg, Op: LT}}, nil
	case lang.CmpGE:
		neg := NewTerm()
		neg.AddTerm(diff, -1)
		return []Constraint{{Term: neg, Op: LE}}, nil
	case lang.CmpNE:
		return nil, ErrDisjunctive
	}
	return nil, fmt.Errorf("lia: unknown comparison %v", op)
}

// FormulaToConstraints converts a purely conjunctive formula into
// canonical constraints. Disjunctions, negations of non-atoms, and
// disequalities are rejected; use the treaty preprocessing (Appendix C.1)
// to eliminate them first.
func FormulaToConstraints(f logic.Formula) ([]Constraint, error) {
	switch f := f.(type) {
	case logic.TrueF:
		return nil, nil
	case logic.FalseF:
		// Encode false as 1 <= 0.
		t := NewTerm()
		t.Const = 1
		return []Constraint{{Term: t, Op: LE}}, nil
	case logic.Atom:
		return AtomConstraints(f.Op, f.L, f.R)
	case logic.AndF:
		var out []Constraint
		for _, p := range f.Parts {
			cs, err := FormulaToConstraints(p)
			if err != nil {
				return nil, err
			}
			out = append(out, cs...)
		}
		return out, nil
	case logic.NotF:
		if a, ok := f.F.(logic.Atom); ok {
			return AtomConstraints(a.Op.Negate(), a.L, a.R)
		}
		return nil, fmt.Errorf("lia: negation of non-atom %s", f.F)
	}
	return nil, fmt.Errorf("lia: non-conjunctive formula %T", f)
}

// ConstraintsToFormula converts canonical constraints back into a
// conjunction of atoms (Term op 0 rendered as Term' op const for
// readability is left to String; here we keep canonical shape).
func ConstraintsToFormula(cs []Constraint) logic.Formula {
	parts := make([]logic.Formula, 0, len(cs))
	for _, c := range cs {
		var e logic.Expr = logic.Const{Value: c.Term.Const}
		for _, v := range c.Term.Vars() {
			coeff := c.Term.Coeffs[v]
			var term logic.Expr = logic.Ref{Var: v}
			if coeff != 1 {
				term = logic.Mul{L: logic.Const{Value: coeff}, R: term}
			}
			e = logic.Add{L: e, R: term}
		}
		var op lang.CmpOp
		switch c.Op {
		case LE:
			op = lang.CmpLE
		case LT:
			op = lang.CmpLT
		case EQ:
			op = lang.CmpEQ
		}
		parts = append(parts, logic.Atom{Op: op, L: e, R: logic.Const{Value: 0}})
	}
	return logic.And(parts...)
}

// SortConstraints orders constraints deterministically (by string form);
// used to make downstream processing reproducible.
func SortConstraints(cs []Constraint) {
	sort.Slice(cs, func(i, j int) bool { return cs[i].String() < cs[j].String() })
}
