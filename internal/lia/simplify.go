package lia

import "repro/internal/logic"

// TightenBounds simplifies a conjunction by collapsing single-variable
// inequality constraints into the tightest bound per variable and
// direction, dropping the rest. Multi-variable constraints and equalities
// pass through unchanged. The result is equisatisfiable with the input
// and dramatically smaller for the bound-heavy systems the treaty
// optimizer generates.
func TightenBounds(cs []Constraint) []Constraint {
	type key struct {
		v     logic.Var
		upper bool
	}
	best := make(map[key]Constraint)
	var rest []Constraint
	for _, c := range cs {
		if c.Op == EQ || len(c.Term.Coeffs) != 1 {
			rest = append(rest, c)
			continue
		}
		var v logic.Var
		var coeff int64
		for vv, cc := range c.Term.Coeffs {
			v, coeff = vv, cc
		}
		// Normalize to v <= b or v >= b with b rational; compare via the
		// implied integer bound (coefficients here are small).
		var b int64
		strictAdj := int64(0)
		if c.Op == LT {
			strictAdj = 1
		}
		k := key{v: v, upper: coeff > 0}
		if coeff > 0 {
			// coeff*v + const (<|<=) 0 -> v <= floor((-const - strict)/coeff)
			b = floorDiv(-c.Term.Const-strictAdj, coeff)
		} else {
			// v >= ceil((-const - strict)/coeff) with negative coeff.
			b = ceilDiv(-c.Term.Const-strictAdj, coeff)
		}
		cur, ok := best[k]
		if !ok {
			best[k] = normalizedBound(v, b, k.upper)
			continue
		}
		curB := boundValue(cur, v, k.upper)
		if (k.upper && b < curB) || (!k.upper && b > curB) {
			best[k] = normalizedBound(v, b, k.upper)
		}
	}
	out := rest
	// Deterministic order.
	vars := make(map[logic.Var]bool)
	for k := range best {
		vars[k.v] = true
	}
	for _, v := range logic.SortedVars(vars) {
		if c, ok := best[key{v: v, upper: false}]; ok {
			out = append(out, c)
		}
		if c, ok := best[key{v: v, upper: true}]; ok {
			out = append(out, c)
		}
	}
	return out
}

// normalizedBound builds v <= b (upper) or v >= b (lower) in canonical
// form.
func normalizedBound(v logic.Var, b int64, upper bool) Constraint {
	t := NewTerm()
	if upper {
		t.AddVar(v, 1)
		t.Const = -b
	} else {
		t.AddVar(v, -1)
		t.Const = b
	}
	return Constraint{Term: t, Op: LE}
}

func boundValue(c Constraint, v logic.Var, upper bool) int64 {
	if upper {
		return -c.Term.Const
	}
	return c.Term.Const
}
