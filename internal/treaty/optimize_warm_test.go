package treaty_test

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/lang"
	"repro/internal/treaty"
)

// TestWarmStartMatchesScratch is the warm-start soundness property: for
// randomized folded states and rng seeds, Optimize with a Warm hint must
// return a configuration bit-identical to the scratch solve, and must
// consume exactly the same rng draws (so downstream decisions seeded
// from the shared stream cannot diverge between a warm and a cold
// process). The hint is drawn from a *different* folded state than the
// one being solved, the renegotiation shape: state moved since the
// previous solve.
func TestWarmStartMatchesScratch(t *testing.T) {
	warms, falls := 0, 0
	for _, nSites := range []int{2, 4} {
		tmpl, folded, model := solveInputs(t, 1000, nSites)
		base := baseObj(t, folded)
		src := rand.New(rand.NewSource(7))
		for trial := 0; trial < 25; trial++ {
			seed := src.Int63()
			prevState := lang.Database{}
			curState := lang.Database{}
			for obj, v := range folded {
				prevState[obj] = v
				curState[obj] = v
			}
			prevState[base] = 50 + src.Int63n(2000)
			curState[base] = 50 + src.Int63n(2000)
			opts := func() treaty.OptimizeOptions {
				return treaty.OptimizeOptions{
					Lookahead:  20,
					CostFactor: 3,
					Rng:        rand.New(rand.NewSource(seed)),
				}
			}
			hint, _ := treaty.Optimize(tmpl, prevState, model, opts())
			if hint == nil {
				t.Fatalf("nSites=%d trial %d: nil hint config", nSites, trial)
			}

			coldOpts := opts()
			cold, coldStats := treaty.Optimize(tmpl, curState, model, coldOpts)
			warmOpts := opts()
			warmOpts.Warm = hint
			warm, warmStats := treaty.Optimize(tmpl, curState, model, warmOpts)

			if !reflect.DeepEqual(cold, warm) {
				t.Fatalf("nSites=%d trial %d (seed %d): warm config diverges from scratch\ncold: %v\nwarm: %v\nwarm stats: %+v",
					nSites, trial, seed, cold, warm, warmStats)
			}
			// Identical rng consumption: the next draw from each stream
			// must match, or a warm process would fall out of sync with a
			// cold one sharing the optimizer stream.
			if c, w := coldOpts.Rng.Int63(), warmOpts.Rng.Int63(); c != w {
				t.Fatalf("nSites=%d trial %d: rng streams diverged after solve (cold next=%d warm next=%d, cold stats %+v, warm stats %+v)",
					nSites, trial, c, w, coldStats, warmStats)
			}
			if !warmStats.WarmStart && !warmStats.WarmFallback {
				t.Fatalf("nSites=%d trial %d: warm solve reported neither warm start nor fallback", nSites, trial)
			}
			if warmStats.WarmFallback {
				falls++
			} else {
				warms++
			}
		}
	}
	t.Logf("warm starts: %d, fallbacks: %d (fallback rate %.0f%%)",
		warms, falls, 100*float64(falls)/float64(warms+falls))
}

// TestWarmStartSelfHint: warm-starting from the solve's own output (no
// state movement at all) must also reproduce it and never fall back.
func TestWarmStartSelfHint(t *testing.T) {
	tmpl, folded, model := solveInputs(t, 500, 3)
	opts := func() treaty.OptimizeOptions {
		return treaty.OptimizeOptions{
			Lookahead:  20,
			CostFactor: 3,
			Rng:        rand.New(rand.NewSource(11)),
		}
	}
	cold, _ := treaty.Optimize(tmpl, folded, model, opts())
	warmOpts := opts()
	warmOpts.Warm = cold
	warm, stats := treaty.Optimize(tmpl, folded, model, warmOpts)
	if !reflect.DeepEqual(cold, warm) {
		t.Fatalf("self-hinted warm solve diverges:\ncold: %v\nwarm: %v", cold, warm)
	}
	if !stats.WarmStart || stats.WarmFallback {
		t.Fatalf("self-hinted warm solve fell back: %+v", stats)
	}
}

// baseObj returns the unit's replicated base object (the non-delta one).
func baseObj(t *testing.T, folded lang.Database) lang.ObjID {
	t.Helper()
	for obj := range folded {
		if _, _, ok := lang.IsDeltaObj(obj); !ok {
			return obj
		}
	}
	t.Fatal("no base object in folded state")
	return ""
}
