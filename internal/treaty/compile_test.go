package treaty

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/lang"
	"repro/internal/lia"
	"repro/internal/logic"
)

// term builds sum coeff_i*obj_i + konst from alternating (obj, coeff)
// pairs.
func testTerm(konst int64, pairs ...any) lia.Term {
	t := lia.NewTerm()
	t.Const = konst
	for i := 0; i < len(pairs); i += 2 {
		t.AddVar(logic.Obj(lang.ObjID(pairs[i].(string))), int64(pairs[i+1].(int)))
	}
	return t
}

func cons(op lia.RelOp, konst int64, pairs ...any) lia.Constraint {
	return lia.Constraint{Term: testTerm(konst, pairs...), Op: op}
}

// TestCompileIntervalFastPath pins the demarcation shape: upper and lower
// bounds on the same sum compile into a single interval check.
func TestCompileIntervalFastPath(t *testing.T) {
	// q + dq <= 66 && q + dq >= 1, written canonically:
	//   q + dq - 66 <= 0   and   -q - dq + 1 <= 0
	l := Local{Site: 0, Constraints: []lia.Constraint{
		cons(lia.LE, -66, "q", 1, "dq", 1),
		cons(lia.LE, 1, "q", -1, "dq", -1),
	}}
	c, err := Compile(l)
	if err != nil {
		t.Fatal(err)
	}
	if !c.interval {
		t.Fatalf("expected interval fast path, got %+v", c)
	}
	if c.lo != 1 || c.hi != 66 {
		t.Fatalf("interval = [%d, %d], want [1, 66]", c.lo, c.hi)
	}
	for _, tc := range []struct {
		q, dq int64
		want  bool
	}{
		{0, 0, false}, {1, 0, true}, {60, 6, true}, {60, 7, false}, {70, -4, true},
	} {
		db := lang.Database{"q": tc.q, "dq": tc.dq}
		if got := c.Holds(db); got != tc.want {
			t.Errorf("Holds(q=%d, dq=%d) = %v, want %v", tc.q, tc.dq, got, tc.want)
		}
	}
}

// TestCompileEqualityPin checks that EQ constraints pin the sum.
func TestCompileEqualityPin(t *testing.T) {
	// unful - 3 = 0.
	l := Local{Site: 1, Constraints: []lia.Constraint{
		cons(lia.EQ, -3, "unful", 1),
	}}
	c, err := Compile(l)
	if err != nil {
		t.Fatal(err)
	}
	if !c.interval || c.lo != 3 || c.hi != 3 {
		t.Fatalf("compiled = %+v, want interval [3, 3]", c)
	}
	if !c.Holds(lang.Database{"unful": 3}) || c.Holds(lang.Database{"unful": 2}) {
		t.Fatal("equality pin misevaluated")
	}
}

// TestCompileRejectsNonObjectVars: an uninstantiated configuration
// variable must surface as a compile error, not as a violation later.
func TestCompileRejectsNonObjectVars(t *testing.T) {
	bad := lia.NewTerm()
	bad.AddVar(logic.Config("c0_0"), 1)
	l := Local{Site: 0, Constraints: []lia.Constraint{{Term: bad, Op: lia.LE}}}
	if _, err := Compile(l); err == nil {
		t.Fatal("Compile accepted a config variable in a local treaty")
	}
}

// TestCompileValidatesPastGroundFalse: an unsatisfiable ground
// constraint must not short-circuit validation of later constraints — a
// malformed treaty has to surface as a compile error, never as
// perpetual violations.
func TestCompileValidatesPastGroundFalse(t *testing.T) {
	bad := lia.NewTerm()
	bad.AddVar(logic.Config("c0_0"), 1)
	l := Local{Site: 0, Constraints: []lia.Constraint{
		cons(lia.LE, 1), // ground false: 1 <= 0
		{Term: bad, Op: lia.LE},
	}}
	if _, err := Compile(l); err == nil {
		t.Fatal("Compile accepted a config variable hidden behind a ground-false constraint")
	}
}

// TestCompileExtremeBoundsSaturate: bound adjustments at the int64
// limits must saturate (vacuous or unsatisfiable), never wrap around and
// erase a constraint.
func TestCompileExtremeBoundsSaturate(t *testing.T) {
	// -s + MaxInt64 < 0, i.e. s > MaxInt64: unsatisfiable over int64.
	unsat := Local{Site: 0, Constraints: []lia.Constraint{
		cons(lia.LT, math.MaxInt64, "s", -1),
	}}
	c, err := Compile(unsat)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []int64{-5, 0, 5, math.MaxInt64} {
		if c.Holds(lang.Database{"s": v}) {
			t.Fatalf("s > MaxInt64 held for s = %d", v)
		}
	}
	// s + MinInt64 <= 0, i.e. s <= 2^63: vacuously true over int64.
	vacuous := Local{Site: 0, Constraints: []lia.Constraint{
		cons(lia.LE, math.MinInt64, "s", 1),
	}}
	c, err = Compile(vacuous)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []int64{math.MinInt64, 0, math.MaxInt64} {
		if !c.Holds(lang.Database{"s": v}) {
			t.Fatalf("s <= 2^63 did not hold for s = %d", v)
		}
	}
}

// TestCompileGroundConstraints: constant constraints fold at compile time.
func TestCompileGroundConstraints(t *testing.T) {
	sat := Local{Site: 0, Constraints: []lia.Constraint{cons(lia.LE, -1)}} // -1 <= 0
	c, err := Compile(sat)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Holds(lang.Database{}) {
		t.Fatal("satisfiable ground treaty evaluated false")
	}
	unsat := Local{Site: 0, Constraints: []lia.Constraint{cons(lia.LE, 1)}} // 1 <= 0
	c, err = Compile(unsat)
	if err != nil {
		t.Fatal(err)
	}
	if c.Holds(lang.Database{}) {
		t.Fatal("unsatisfiable ground treaty evaluated true")
	}
}

// TestCompileMatchesInterpreterRandomized cross-checks the compiled
// evaluator against the interpreted Local.Holds on random constraint
// systems (both interval-shaped and general).
func TestCompileMatchesInterpreterRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	objs := []string{"a", "b", "c", "d"}
	ops := []lia.RelOp{lia.LE, lia.LT, lia.EQ}
	for iter := 0; iter < 2000; iter++ {
		nc := 1 + rng.Intn(4)
		l := Local{Site: rng.Intn(3)}
		for j := 0; j < nc; j++ {
			term := lia.NewTerm()
			term.Const = int64(rng.Intn(21) - 10)
			for _, o := range objs {
				if rng.Intn(2) == 0 {
					term.AddVar(logic.Obj(lang.ObjID(o)), int64(rng.Intn(7)-3))
				}
			}
			l.Constraints = append(l.Constraints, lia.Constraint{Term: term, Op: ops[rng.Intn(len(ops))]})
		}
		c, err := Compile(l)
		if err != nil {
			t.Fatal(err)
		}
		for probe := 0; probe < 8; probe++ {
			db := lang.Database{}
			for _, o := range objs {
				db[lang.ObjID(o)] = int64(rng.Intn(31) - 15)
			}
			if got, want := c.Holds(db), l.Holds(db); got != want {
				t.Fatalf("iter %d: compiled %v, interpreted %v for %s on %v",
					iter, got, want, l, db)
			}
		}
	}
}

// microLocal is a realistic site-0 local treaty from the microbenchmark:
// bounds on the logical stock value q + dq_0.
func microLocal() Local {
	return Local{Site: 0, Constraints: []lia.Constraint{
		cons(lia.LE, -66, "stock[17]", 1, "stock[17]@d0", 1),
		cons(lia.LE, 1, "stock[17]", -1, "stock[17]@d0", -1),
	}}
}

var benchSink bool

// BenchmarkLocalHoldsInterpreted measures the seed's per-commit check:
// interpret the lia.Constraint trees through a Binding closure.
func BenchmarkLocalHoldsInterpreted(b *testing.B) {
	l := microLocal()
	db := lang.Database{"stock[17]": 60, "stock[17]@d0": -3}
	bind := func(v logic.Var) (int64, bool) {
		return db.Get(lang.ObjID(v.Name)), true
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ok := true
		for _, c := range l.Constraints {
			holds, err := c.Eval(bind)
			if err != nil || !holds {
				ok = false
				break
			}
		}
		benchSink = ok
	}
}

// BenchmarkLocalHoldsCompiled measures the compiled per-commit check.
func BenchmarkLocalHoldsCompiled(b *testing.B) {
	c, err := Compile(microLocal())
	if err != nil {
		b.Fatal(err)
	}
	db := lang.Database{"stock[17]": 60, "stock[17]@d0": -3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink = c.Holds(db)
	}
}
