package treaty

import (
	"fmt"
	"math"

	"repro/internal/lang"
	"repro/internal/lia"
	"repro/internal/logic"
)

// This file implements the compiled treaty-evaluation path. The local
// treaty is checked before every commit — it is the hot path of the
// homeostasis protocol — while treaties themselves only change at
// negotiation rounds. Instead of re-walking the lia.Constraint tree and
// resolving variables through a Binding closure on every check, a local
// treaty is compiled once per round into a form the runtime evaluates
// with pre-resolved ObjIDs, no per-eval allocation, and no error path
// (malformed constraints are rejected at compile time).

// ObjReader is the read-only state a compiled treaty evaluates against.
// Both lang.Database and the store's *Store satisfy it; absent objects
// read as zero.
type ObjReader interface {
	Get(obj lang.ObjID) int64
}

// compiledConstraint is one constraint flattened into parallel slices:
// sum_i coeffs[i] * objs[i] + konst op 0.
type compiledConstraint struct {
	objs   []lang.ObjID
	coeffs []int64
	konst  int64
	op     lia.RelOp
}

func (c *compiledConstraint) holds(db ObjReader) bool {
	sum := c.konst
	for i, obj := range c.objs {
		sum += c.coeffs[i] * db.Get(obj)
	}
	switch c.op {
	case lia.LE:
		return sum <= 0
	case lia.LT:
		return sum < 0
	default: // lia.EQ
		return sum == 0
	}
}

// CompiledLocal is one site's local treaty compiled for the per-commit
// check. The zero value is not meaningful; build with Compile.
type CompiledLocal struct {
	site int

	// alwaysFalse short-circuits treaties containing an unsatisfiable
	// ground constraint (or an empty interval).
	alwaysFalse bool

	// Demarcation fast path: every constraint bounds the same linear sum
	// s = sum_i coeffs[i]*objs[i] (up to sign), so the whole treaty is
	// lo <= s <= hi — one pass over the objects, two comparisons. This is
	// the common shape: local treaties instantiated from single-clause
	// global treaties like the microbenchmark's stock bound.
	interval bool
	objs     []lang.ObjID
	coeffs   []int64
	lo, hi   int64

	// general holds the remaining constraints when the sweep above does
	// not apply.
	general []compiledConstraint
}

// Site returns the site the treaty was compiled for.
func (c *CompiledLocal) Site() int { return c.site }

// Compile specializes a local treaty for repeated evaluation. It fails if
// a constraint mentions a non-object variable (a configuration variable
// left uninstantiated, for example), so that a malformed treaty surfaces
// as an error at generation time rather than masquerading as a violation
// on the commit path.
func Compile(l Local) (CompiledLocal, error) {
	out := CompiledLocal{site: l.Site}
	var cons []compiledConstraint
	for _, c := range l.Constraints {
		cc := compiledConstraint{konst: c.Term.Const, op: c.Op}
		vars := c.Term.Vars()
		if len(vars) > 0 {
			cc.objs = make([]lang.ObjID, 0, len(vars))
			cc.coeffs = make([]int64, 0, len(vars))
		}
		for _, v := range vars {
			if v.Kind != logic.ObjVar {
				return CompiledLocal{}, fmt.Errorf(
					"treaty: compile: site %d local treaty mentions non-object variable %s in %s",
					l.Site, v, c)
			}
			cc.objs = append(cc.objs, lang.ObjID(v.Name))
			cc.coeffs = append(cc.coeffs, c.Term.Coeffs[v])
		}
		if len(cc.objs) == 0 {
			// Ground constraint: fold it now. Keep scanning so a
			// malformed constraint later in the list is still rejected.
			if !cc.holds(lang.Database(nil)) {
				out.alwaysFalse = true
			}
			continue
		}
		cons = append(cons, cc)
	}
	if out.alwaysFalse {
		return out, nil
	}
	out.compileInterval(cons)
	return out, nil
}

// compileInterval detects the demarcation shape: every constraint bounds
// the same linear sum (up to sign). On success it fills the interval
// fields; otherwise it stores the constraints for the general path.
func (c *CompiledLocal) compileInterval(cons []compiledConstraint) {
	if len(cons) == 0 {
		// Vacuously true treaty.
		return
	}
	spec := cons[0]
	lo, hi := int64(math.MinInt64), int64(math.MaxInt64)
	for i := range cons {
		sign, ok := sumSign(&spec, &cons[i])
		if !ok {
			c.general = cons
			return
		}
		// The constraint is sign*s + konst op 0 for s = spec's sum. The
		// negations and ±1 adjustments saturate instead of wrapping: a
		// bound beyond the int64 range is either vacuous (no int64 sum
		// can violate it) or unsatisfiable (no int64 sum can meet it),
		// never a silently erased constraint.
		k := cons[i].konst
		switch cons[i].op {
		case lia.LE:
			if sign > 0 { // s <= -k
				if k == math.MinInt64 {
					break // s <= 2^63: vacuous over int64
				}
				hi = min(hi, -k)
			} else { // s >= k
				lo = max(lo, k)
			}
		case lia.LT:
			if sign > 0 { // s < -k, integer s
				if k == math.MinInt64 {
					break // s < 2^63: vacuous over int64
				}
				hi = min(hi, -k-1)
			} else { // s > k
				if k == math.MaxInt64 {
					c.alwaysFalse = true // s > 2^63-1: unsatisfiable
					return
				}
				lo = max(lo, k+1)
			}
		case lia.EQ:
			if k == math.MinInt64 && sign > 0 {
				c.alwaysFalse = true // s = 2^63: unsatisfiable over int64
				return
			}
			v := -sign * k
			lo = max(lo, v)
			hi = min(hi, v)
		}
	}
	c.interval = true
	c.objs = spec.objs
	c.coeffs = spec.coeffs
	c.lo, c.hi = lo, hi
	if lo > hi {
		c.alwaysFalse = true
	}
}

// sumSign reports whether b's linear part equals spec's (+1) or its
// negation (-1). Both are built from Term.Vars() so object order is
// canonical.
func sumSign(spec, b *compiledConstraint) (int64, bool) {
	if len(spec.objs) != len(b.objs) {
		return 0, false
	}
	var sign int64
	for i := range spec.objs {
		if spec.objs[i] != b.objs[i] {
			return 0, false
		}
		switch b.coeffs[i] {
		case spec.coeffs[i]:
			if sign == -1 {
				return 0, false
			}
			sign = 1
		case -spec.coeffs[i]:
			if sign == 1 {
				return 0, false
			}
			sign = -1
		default:
			return 0, false
		}
	}
	return sign, true
}

// Holds reports whether the compiled local treaty is satisfied by the
// given state. It cannot fail: non-object variables were rejected at
// compile time and missing objects read as zero.
func (c *CompiledLocal) Holds(db ObjReader) bool {
	if c.alwaysFalse {
		return false
	}
	if c.interval {
		s := int64(0)
		for i, obj := range c.objs {
			s += c.coeffs[i] * db.Get(obj)
		}
		return c.lo <= s && s <= c.hi
	}
	for i := range c.general {
		if !c.general[i].holds(db) {
			return false
		}
	}
	return true
}

// CompileLocals compiles every site's local treaty.
func CompileLocals(locals []Local) ([]CompiledLocal, error) {
	out := make([]CompiledLocal, len(locals))
	for i, l := range locals {
		c, err := Compile(l)
		if err != nil {
			return nil, err
		}
		out[i] = c
	}
	return out, nil
}
