package treaty_test

import (
	"math/rand"
	"testing"

	"repro/internal/lang"
	"repro/internal/micro"
	"repro/internal/treaty"
)

// benchSolveInputs builds one representative negotiation solve: the
// micro withdraw guard over a 4-site replica group, the exact template
// the protocol derives when a violated unit renegotiates.
func benchSolveInputs(b *testing.B) (*treaty.Template, lang.Database, treaty.WorkloadModel) {
	b.Helper()
	return solveInputs(b, 1000, 4)
}

// solveInputs derives the template for a micro withdraw unit with the
// given refill quantity and replica-group width (shared by the warm-start
// benchmark and the warm==cold equivalence tests).
func solveInputs(tb testing.TB, refill int64, nSites int) (*treaty.Template, lang.Database, treaty.WorkloadModel) {
	tb.Helper()
	w, err := micro.New(micro.Config{Items: 1, Refill: refill, NSites: nSites})
	if err != nil {
		tb.Fatal(err)
	}
	folded := lang.Database{}
	initial := w.InitialDB()
	for _, obj := range w.UnitObjects(0) {
		folded[obj] = initial.Get(obj)
	}
	g, err := w.BuildGlobal(0, folded)
	if err != nil {
		tb.Fatal(err)
	}
	place := func(obj lang.ObjID) int {
		if _, site, ok := lang.IsDeltaObj(obj); ok {
			return site
		}
		return 0
	}
	tmpl, err := treaty.BuildTemplate(g, nSites, place)
	if err != nil {
		tb.Fatal(err)
	}
	return tmpl, folded, w.Model(0)
}

// BenchmarkNegotiationSolve times the per-unit treaty solve on the
// renegotiation path. Cold runs the optimizer from scratch, exactly as
// a unit's first negotiation does. Warm passes the config the previous
// solve produced as a warm-start hint, the steady-state renegotiation
// shape once a unit has negotiated at least once. Both variants draw
// from a freshly seeded rng each iteration so the sampled futures are
// identical; recorded in BENCH_registration.json.
func BenchmarkNegotiationSolve(b *testing.B) {
	tmpl, folded, model := benchSolveInputs(b)
	opts := func() treaty.OptimizeOptions {
		return treaty.OptimizeOptions{
			Lookahead:  20,
			CostFactor: 3,
			Rng:        rand.New(rand.NewSource(42)),
		}
	}
	b.Run("Cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			o := opts()
			if cfg, _ := treaty.Optimize(tmpl, folded, model, o); cfg == nil {
				b.Fatal("nil config")
			}
		}
	})
	b.Run("Warm", func(b *testing.B) {
		prev, _ := treaty.Optimize(tmpl, folded, model, opts())
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			o := opts()
			o.Warm = prev
			if cfg, _ := treaty.Optimize(tmpl, folded, model, o); cfg == nil {
				b.Fatal("nil config")
			}
		}
	})
}
