package treaty

import (
	"math/rand"
	"strings"

	"repro/internal/lang"
	"repro/internal/lia"
	"repro/internal/maxsat"
	"repro/internal/sat"
)

// WorkloadModel is the "model of the expected future transaction
// workload" Algorithm 1 samples from. Implementations simulate the effect
// of L sampled transactions starting from db and return the sequence of
// databases visited (one entry per transactional write, D_1..D_L).
type WorkloadModel interface {
	SampleFuture(rng *rand.Rand, db lang.Database, l int) []lang.Database
}

// OptimizeOptions are Algorithm 1's tunable knobs.
type OptimizeOptions struct {
	// Lookahead is L, the length of each sampled future execution.
	Lookahead int
	// CostFactor is f, the number of futures to sample.
	CostFactor int
	// Rng drives the sampling; required.
	Rng *rand.Rand
	// MaxTheoryRounds bounds the lazy theory-refinement loop; past it the
	// optimizer finishes with a greedy feasible subset. Zero means the
	// default (8).
	MaxTheoryRounds int
	// Warm, when non-nil, marks this solve as a re-negotiation of a unit
	// that already holds a configuration. It is a hint, not a value
	// substitution: the optimizer skips the first MaxSAT round (which,
	// with no blocking clauses yet, always selects every soft constraint)
	// and attempts the all-softs theory check directly, falling back to
	// the full lazy loop on conflict. The returned configuration is
	// bit-identical to a cold solve with the same inputs and rng.
	Warm Config
}

// OptimizeStats reports the optimizer's work, used by the Figure 24
// latency-breakdown experiment.
type OptimizeStats struct {
	// SoftTotal and SoftSatisfied count Algorithm 1 soft constraints
	// (after deduplication).
	SoftTotal     int
	SoftSatisfied int
	// MaxSATIterations counts SAT-solver invocations inside Fu-Malik
	// across all theory rounds.
	MaxSATIterations int
	// TheoryRounds counts lazy theory-refinement loops.
	TheoryRounds int
	// GreedyFallback is true when the theory-round cap was hit.
	GreedyFallback bool
	// WarmStart is true when a warm hint was supplied and the all-softs
	// fast path succeeded without entering the MaxSAT loop.
	WarmStart bool
	// WarmFallback is true when a warm hint was supplied but the fast
	// path hit a theory conflict, forcing the full lazy loop.
	WarmFallback bool
	// UsedDefault is true when optimization fell back to the Theorem 4.3
	// default configuration.
	UsedDefault bool
}

// Optimize implements Algorithm 1: sample f futures of length L from the
// workload model, turn each visited database into a soft constraint
// ("the local treaty templates hold on D_j"), and find a valid
// configuration maximizing the number of satisfied soft constraints.
//
// The search runs Fu-Malik MaxSAT over soft-constraint selectors, lazily
// refined with linear-arithmetic theory conflicts (minimal infeasible
// subsets become blocking clauses). Because implicit-hitting-set loops
// can need many refinements on adversarial instances, the loop is bounded
// and degrades to a greedy feasible subset that preserves validity.
//
// The returned configuration always satisfies H1 and H2 (worst case it is
// the Theorem 4.3 default), so the caller may install it unconditionally.
func Optimize(t *Template, db lang.Database, model WorkloadModel, opt OptimizeOptions) (Config, OptimizeStats) {
	var stats OptimizeStats
	hard := t.HardConstraints(db)
	maxRounds := opt.MaxTheoryRounds
	if maxRounds <= 0 {
		maxRounds = 3
	}

	// Collect soft constraints from sampled futures, deduplicating
	// identical ones (futures often revisit the same states).
	var softs []SoftConstraint
	seen := make(map[string]bool)
	for i := 0; i < opt.CostFactor; i++ {
		future := model.SampleFuture(opt.Rng, db, opt.Lookahead)
		for _, dj := range future {
			sc := t.SoftFor(dj)
			if len(sc.Constraints) == 0 {
				continue
			}
			key := softKey(sc)
			if seen[key] {
				continue
			}
			seen[key] = true
			softs = append(softs, sc)
		}
	}
	stats.SoftTotal = len(softs)
	if len(softs) == 0 {
		cfg := t.DefaultConfig(db)
		stats.UsedDefault = true
		return cfg, stats
	}

	finish := func(selected []int) (Config, bool) {
		cs := append([]lia.Constraint(nil), hard...)
		for _, idx := range selected {
			cs = append(cs, softs[idx].Constraints...)
		}
		modelVals, ok := lia.SolveModel(lia.TightenBounds(cs))
		if !ok {
			return nil, false
		}
		cfg := make(Config)
		for _, v := range t.ConfigVars() {
			cfg[v] = modelVals[v]
		}
		// Redistribute unused H1 slack: lowering a configuration value only
		// loosens that site's local treaty and cannot violate the selected
		// soft constraints or H2 (both are upper bounds), so handing out
		// the leftover budget equally strictly lengthens expected rounds.
		t.relaxIntoSlack(cfg)
		if err := t.Validate(cfg, db); err != nil {
			return nil, false
		}
		stats.SoftSatisfied = len(selected)
		return cfg, true
	}

	// Lazy SMT loop: MaxSAT over selectors; check the selected set against
	// the linear theory; on conflict, block the minimal infeasible subset.
	var blocked [][]int

	// Warm start: with no blocking clauses, the first MaxSAT round is a
	// foregone conclusion — every selector is an independent unit soft
	// clause, so Fu-Malik selects all of them in one SAT call. When the
	// caller certifies a previous negotiation succeeded (Warm != nil),
	// skip that round and try the all-softs theory check directly. On
	// success this is bit-identical to the cold round-1 result; on
	// conflict, seed the blocking set with the same minimized core the
	// cold path would derive and rejoin the loop at round 2.
	if opt.Warm != nil {
		allIdx := make([]int, len(softs))
		for i := range softs {
			allIdx[i] = i
		}
		stats.TheoryRounds = 1
		if cfg, ok := finish(allIdx); ok {
			stats.WarmStart = true
			return cfg, stats
		}
		stats.WarmFallback = true
		blocked = append(blocked, minimizeConflict(hard, softs, allIdx))
	}

	for stats.TheoryRounds < maxRounds {
		stats.TheoryRounds++
		p := maxsat.NewProblem()
		selectors := make([]sat.Lit, len(softs))
		for i := range softs {
			selectors[i] = sat.Lit(p.NewVar())
			p.AddSoft(selectors[i])
		}
		for _, set := range blocked {
			clause := make([]sat.Lit, len(set))
			for i, idx := range set {
				clause[i] = selectors[idx].Neg()
			}
			p.AddHard(clause...)
		}
		res := maxsat.Solve(p)
		stats.MaxSATIterations += res.Iterations
		if !res.Feasible {
			break
		}
		var selected []int
		for i := range softs {
			if res.Model[selectors[i].Var()] {
				selected = append(selected, i)
			}
		}
		if cfg, ok := finish(selected); ok {
			return cfg, stats
		}
		if len(selected) == 0 {
			break
		}
		blocked = append(blocked, minimizeConflict(hard, softs, selected))
	}

	// Greedy fallback: add soft constraints one at a time, keeping the
	// running set feasible. Linear in the number of softs and always
	// terminates with a valid configuration.
	stats.GreedyFallback = true
	var kept []int
	cs := append([]lia.Constraint(nil), hard...)
	for i := range softs {
		trial := append(append([]lia.Constraint(nil), cs...), softs[i].Constraints...)
		if _, ok := lia.SolveModel(lia.TightenBounds(trial)); ok {
			cs = trial
			kept = append(kept, i)
		}
	}
	if cfg, ok := finish(kept); ok {
		return cfg, stats
	}
	cfg := t.DefaultConfig(db)
	stats.UsedDefault = true
	return cfg, stats
}

func softKey(sc SoftConstraint) string {
	parts := make([]string, len(sc.Constraints))
	for i, c := range sc.Constraints {
		parts[i] = c.String()
	}
	return strings.Join(parts, "|")
}

// minimizeConflict returns a small (not necessarily minimal) subset of
// the selected soft constraints that is infeasible together with the hard
// constraints, via bounded greedy deletion: after the work cap, whatever
// remains is returned — still a valid (if weaker) blocking set.
func minimizeConflict(hard []lia.Constraint, softs []SoftConstraint, selected []int) []int {
	feasible := func(idxs []int) bool {
		cs := append([]lia.Constraint(nil), hard...)
		for _, idx := range idxs {
			cs = append(cs, softs[idx].Constraints...)
		}
		_, ok := lia.SolveModel(lia.TightenBounds(cs))
		return ok
	}
	const maxDeletionChecks = 48
	core := append([]int(nil), selected...)
	checks := 0
	for i := 0; i < len(core) && checks < maxDeletionChecks; {
		checks++
		trial := make([]int, 0, len(core)-1)
		trial = append(trial, core[:i]...)
		trial = append(trial, core[i+1:]...)
		if !feasible(trial) {
			core = trial
		} else {
			i++
		}
	}
	return core
}
