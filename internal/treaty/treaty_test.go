package treaty

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/lang"
	"repro/internal/lia"
	"repro/internal/logic"
)

// The paper's running example (Section 4.2): psi is x + y >= 20, x on
// site 0, y on site 1, initial database x=10, y=13.
func exampleGlobal(t *testing.T) (Global, lang.Database, Placement) {
	t.Helper()
	psi := logic.Atom{
		Op: lang.CmpGE,
		L:  logic.Add{L: logic.Ref{Var: logic.Obj("x")}, R: logic.Ref{Var: logic.Obj("y")}},
		R:  logic.Const{Value: 20},
	}
	db := lang.Database{"x": 10, "y": 13}
	g, err := Preprocess(psi, db, nil, nil)
	if err != nil {
		t.Fatalf("Preprocess: %v", err)
	}
	place := func(obj lang.ObjID) int {
		if obj == "x" {
			return 0
		}
		return 1
	}
	return g, db, place
}

func TestPreprocessLinearGuard(t *testing.T) {
	g, db, _ := exampleGlobal(t)
	if len(g.Constraints) != 1 {
		t.Fatalf("constraints = %d, want 1", len(g.Constraints))
	}
	if !g.Holds(db) {
		t.Fatal("treaty must hold on initial database")
	}
	if g.Holds(lang.Database{"x": 5, "y": 5}) {
		t.Fatal("treaty should fail when x+y < 20")
	}
	if !g.Holds(lang.Database{"x": 20, "y": 0}) {
		t.Fatal("treaty should hold when x+y = 20")
	}
}

func TestPreprocessStrictNormalization(t *testing.T) {
	// x < 10 over integers must become x <= 9.
	psi := logic.Atom{Op: lang.CmpLT, L: logic.Ref{Var: logic.Obj("x")}, R: logic.Const{Value: 10}}
	g, err := Preprocess(psi, lang.Database{"x": 5}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Constraints) != 1 || g.Constraints[0].Op != lia.LE {
		t.Fatalf("constraints = %v", g.Constraints)
	}
	if !g.Holds(lang.Database{"x": 9}) || g.Holds(lang.Database{"x": 10}) {
		t.Fatal("x<10 should normalize to x<=9")
	}
}

func TestPreprocessParamWorstCase(t *testing.T) {
	// Guard: stock - qty >= 0 with qty in [1,5]: treaty must be
	// stock >= 5 (worst case).
	psi := logic.Atom{
		Op: lang.CmpGE,
		L:  logic.Sub{L: logic.Ref{Var: logic.Obj("stock")}, R: logic.Ref{Var: logic.Param("qty")}},
		R:  logic.Const{Value: 0},
	}
	db := lang.Database{"stock": 50}
	g, err := Preprocess(psi, db, map[string]int64{"qty": 3}, ParamBounds{"qty": {1, 5}})
	if err != nil {
		t.Fatal(err)
	}
	if !g.Holds(lang.Database{"stock": 5}) {
		t.Fatal("stock=5 should satisfy worst-case treaty")
	}
	if g.Holds(lang.Database{"stock": 4}) {
		t.Fatal("stock=4 should violate worst-case treaty")
	}
}

func TestPreprocessNonLinearFallback(t *testing.T) {
	// x*y > 5 is nonlinear: preprocessing must fix x and y to current
	// values.
	psi := logic.Atom{
		Op: lang.CmpGT,
		L:  logic.Mul{L: logic.Ref{Var: logic.Obj("x")}, R: logic.Ref{Var: logic.Obj("y")}},
		R:  logic.Const{Value: 5},
	}
	db := lang.Database{"x": 3, "y": 4}
	g, err := Preprocess(psi, db, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Holds(db) {
		t.Fatal("fixed treaty must hold on D")
	}
	if g.Holds(lang.Database{"x": 4, "y": 4}) {
		t.Fatal("fixed treaty must pin x to 3")
	}
}

func TestPreprocessDisjunctionFallback(t *testing.T) {
	psi := logic.Or(
		logic.Atom{Op: lang.CmpGE, L: logic.Ref{Var: logic.Obj("x")}, R: logic.Const{Value: 10}},
		logic.Atom{Op: lang.CmpLE, L: logic.Ref{Var: logic.Obj("x")}, R: logic.Const{Value: -10}},
	)
	db := lang.Database{"x": 15}
	g, err := Preprocess(psi, db, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Fallback pins x = 15, which implies the disjunction.
	if !g.Holds(db) || g.Holds(lang.Database{"x": 14}) {
		t.Fatal("disjunction fallback should pin x")
	}
}

func TestPreprocessRejectsFalseGuard(t *testing.T) {
	psi := logic.Atom{Op: lang.CmpGE, L: logic.Ref{Var: logic.Obj("x")}, R: logic.Const{Value: 100}}
	if _, err := Preprocess(psi, lang.Database{"x": 1}, nil, nil); err == nil {
		t.Fatal("expected error when psi fails on D")
	}
}

func TestDefaultConfigIsValid(t *testing.T) {
	g, db, place := exampleGlobal(t)
	tmpl, err := BuildTemplate(g, 2, place)
	if err != nil {
		t.Fatal(err)
	}
	cfg := tmpl.DefaultConfig(db)
	if err := tmpl.Validate(cfg, db); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	// Under the default, each site pins its local sum: x >= 10, y >= 13.
	locals, err := tmpl.LocalTreaties(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !locals[0].Holds(lang.Database{"x": 10}) || locals[0].Holds(lang.Database{"x": 9}) {
		t.Fatalf("site 0 default treaty should be x >= 10: %s", locals[0])
	}
	if !locals[1].Holds(lang.Database{"y": 13}) || locals[1].Holds(lang.Database{"y": 12}) {
		t.Fatalf("site 1 default treaty should be y >= 13: %s", locals[1])
	}
}

// TestLocalTreatiesImplyGlobalEmpirically: random databases satisfying all
// local treaties must satisfy the global treaty (H1, checked by sampling).
func TestLocalTreatiesImplyGlobalEmpirically(t *testing.T) {
	g, db, place := exampleGlobal(t)
	tmpl, err := BuildTemplate(g, 2, place)
	if err != nil {
		t.Fatal(err)
	}
	cfg := tmpl.DefaultConfig(db)
	locals, _ := tmpl.LocalTreaties(cfg)
	rng := rand.New(rand.NewSource(21))
	checked := 0
	for trial := 0; trial < 2000; trial++ {
		d := lang.Database{
			"x": int64(rng.Intn(61) - 20),
			"y": int64(rng.Intn(61) - 20),
		}
		all := true
		for _, l := range locals {
			if !l.Holds(d) {
				all = false
				break
			}
		}
		if !all {
			continue
		}
		checked++
		if !g.Holds(d) {
			t.Fatalf("H1 violated empirically at %v", d)
		}
	}
	if checked == 0 {
		t.Fatal("no sampled database satisfied the local treaties; test is vacuous")
	}
}

// TestValidateRejectsBadConfig: a configuration violating H1 must fail.
func TestValidateRejectsBadConfig(t *testing.T) {
	g, db, place := exampleGlobal(t)
	tmpl, err := BuildTemplate(g, 2, place)
	if err != nil {
		t.Fatal(err)
	}
	cfg := tmpl.DefaultConfig(db)
	// Loosen both sites beyond the H1 budget: sum of configs drops below
	// (K-1)*n.
	for v := range cfg {
		cfg[v] -= 100
	}
	if err := tmpl.Validate(cfg, db); err == nil {
		t.Fatal("expected H1 violation")
	}
	// A config that violates H2 (local treaty fails on D).
	cfg2 := tmpl.DefaultConfig(db)
	for v := range cfg2 {
		cfg2[v] += 100 // tighter than current state allows
	}
	if err := tmpl.Validate(cfg2, db); err == nil {
		t.Fatal("expected H2 violation")
	}
}

// TestTheorem43Property: for random linear >= treaties over randomly
// placed objects and random databases satisfying them, the default
// configuration always validates. This is the paper's Theorem 4.3.
func TestTheorem43Property(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	prop := func() bool {
		nSites := 2 + rng.Intn(3)
		nObjs := 1 + rng.Intn(4)
		objs := make([]lang.ObjID, nObjs)
		db := lang.Database{}
		placeMap := make(map[lang.ObjID]int)
		for i := range objs {
			objs[i] = lang.ObjID(string(rune('a' + i)))
			db[objs[i]] = int64(rng.Intn(41) - 10)
			placeMap[objs[i]] = rng.Intn(nSites)
		}
		// Random clause: sum d_i x_i <= n chosen to hold on D; sometimes an
		// equality.
		term := lia.NewTerm()
		for _, o := range objs {
			term.AddVar(logic.Obj(o), int64(rng.Intn(5)-2))
		}
		val, _ := term.Eval(logic.DBBinding(db, nil, nil))
		op := lia.LE
		if rng.Intn(4) == 0 {
			op = lia.EQ
		}
		switch op {
		case lia.LE:
			term.Const -= val - int64(rng.Intn(5)) // slack >= 0
		case lia.EQ:
			term.Const -= val
		}
		g := Global{Constraints: []lia.Constraint{{Term: term, Op: op}}}
		if !g.Holds(db) {
			return true // skip malformed sample
		}
		tmpl, err := BuildTemplate(g, nSites, func(o lang.ObjID) int { return placeMap[o] })
		if err != nil {
			return false
		}
		cfg := tmpl.DefaultConfig(db)
		return tmpl.Validate(cfg, db) == nil
	}
	wrapped := func(uint8) bool { return prop() }
	if err := quick.Check(wrapped, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// scriptedModel replays fixed future database sequences, reproducing the
// Appendix C.2 worked example.
type scriptedModel struct {
	futures [][]lang.Database
	next    int
}

func (m *scriptedModel) SampleFuture(_ *rand.Rand, _ lang.Database, _ int) []lang.Database {
	f := m.futures[m.next%len(m.futures)]
	m.next++
	return f
}

// TestOptimizeAppendixC2 replays the paper's worked example: futures
// S1 = [T1;T1;T2], S2 = [T1;T1;T1], S3 = [T1;T2;T1] from (x,y) = (10,13).
// The optimal configuration satisfies the soft constraints from S1 and S3
// and gives more slack to site 0 (where the more frequent T1 writes).
func TestOptimizeAppendixC2(t *testing.T) {
	g, db, place := exampleGlobal(t)
	tmpl, err := BuildTemplate(g, 2, place)
	if err != nil {
		t.Fatal(err)
	}
	model := &scriptedModel{futures: [][]lang.Database{
		{{"x": 9, "y": 13}, {"x": 8, "y": 13}, {"x": 8, "y": 12}}, // S1
		{{"x": 9, "y": 13}, {"x": 8, "y": 13}, {"x": 7, "y": 13}}, // S2
		{{"x": 9, "y": 13}, {"x": 9, "y": 12}, {"x": 8, "y": 12}}, // S3
	}}
	cfg, stats := Optimize(tmpl, db, model, OptimizeOptions{
		Lookahead:  3,
		CostFactor: 3,
		Rng:        rand.New(rand.NewSource(1)),
	})
	if err := tmpl.Validate(cfg, db); err != nil {
		t.Fatalf("optimized config invalid: %v", err)
	}
	if stats.UsedDefault {
		t.Fatal("optimizer fell back to default")
	}
	locals, _ := tmpl.LocalTreaties(cfg)
	// The optimum must keep every database of S1 and S3 inside the local
	// treaties (9 soft constraints; at most 1-2 falsified from S2's tail).
	for _, d := range model.futures[0] {
		if !locals[0].Holds(d) || !locals[1].Holds(d) {
			t.Fatalf("optimized treaties reject S1 database %v\nlocals: %s | %s",
				d, locals[0], locals[1])
		}
	}
	for _, d := range model.futures[2] {
		if !locals[0].Holds(d) || !locals[1].Holds(d) {
			t.Fatalf("optimized treaties reject S3 database %v", d)
		}
	}
	// Site 0 must be able to absorb x down to 8 (i.e. x >= 8 allowed);
	// the paper's optimum corresponds to cy = 12, cx = 8.
	if !locals[0].Holds(lang.Database{"x": 8}) {
		t.Fatalf("site 0 treaty should allow x = 8: %s", locals[0])
	}
	if locals[0].Holds(lang.Database{"x": 7}) {
		// Allowing x = 7 would require rejecting y = 12, contradicting the
		// S1/S3 optimum; the exact paper optimum stops at 8.
		t.Fatalf("site 0 treaty too loose: %s", locals[0])
	}
	if !locals[1].Holds(lang.Database{"y": 12}) {
		t.Fatalf("site 1 treaty should allow y = 12: %s", locals[1])
	}
	// After deduplication the 9 sampled databases collapse to 5 distinct
	// soft constraints: (9,13), (8,13), (8,12), (7,13), (9,12). The
	// optimum satisfies all but (7,13).
	if stats.SoftTotal != 5 {
		t.Fatalf("deduplicated soft total = %d, want 5", stats.SoftTotal)
	}
	if stats.SoftSatisfied != 4 {
		t.Fatalf("satisfied %d/%d soft constraints, expected 4",
			stats.SoftSatisfied, stats.SoftTotal)
	}
}

// TestOptimizeBeatsDefault: on a skewed workload the optimized treaty
// satisfies strictly more sampled futures than the default pin-everything
// configuration.
func TestOptimizeBeatsDefault(t *testing.T) {
	g, db, place := exampleGlobal(t)
	tmpl, err := BuildTemplate(g, 2, place)
	if err != nil {
		t.Fatal(err)
	}
	// Futures that only ever decrement x.
	model := &scriptedModel{futures: [][]lang.Database{
		{{"x": 9, "y": 13}, {"x": 8, "y": 13}},
		{{"x": 9, "y": 13}, {"x": 8, "y": 13}},
	}}
	cfg, stats := Optimize(tmpl, db, model, OptimizeOptions{
		Lookahead: 2, CostFactor: 2, Rng: rand.New(rand.NewSource(1)),
	})
	if stats.SoftSatisfied != stats.SoftTotal {
		t.Fatalf("all soft constraints should be satisfiable: %d/%d",
			stats.SoftSatisfied, stats.SoftTotal)
	}
	locals, _ := tmpl.LocalTreaties(cfg)
	if !locals[0].Holds(lang.Database{"x": 8}) {
		t.Fatalf("optimized treaty should allow x down to 8: %s", locals[0])
	}
	// Default config pins x >= 10: it would reject both futures.
	defCfg := tmpl.DefaultConfig(db)
	defLocals, _ := tmpl.LocalTreaties(defCfg)
	if defLocals[0].Holds(lang.Database{"x": 9}) {
		t.Fatal("default treaty unexpectedly loose")
	}
}

// TestEqualityClausePinning: equality clauses force configurations and
// remain valid.
func TestEqualityClausePinning(t *testing.T) {
	// psi: x + y = 23 with D = (10, 13).
	psi := logic.Atom{
		Op: lang.CmpEQ,
		L:  logic.Add{L: logic.Ref{Var: logic.Obj("x")}, R: logic.Ref{Var: logic.Obj("y")}},
		R:  logic.Const{Value: 23},
	}
	db := lang.Database{"x": 10, "y": 13}
	g, err := Preprocess(psi, db, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	place := func(obj lang.ObjID) int {
		if obj == "x" {
			return 0
		}
		return 1
	}
	tmpl, err := BuildTemplate(g, 2, place)
	if err != nil {
		t.Fatal(err)
	}
	cfg := tmpl.DefaultConfig(db)
	if err := tmpl.Validate(cfg, db); err != nil {
		t.Fatalf("equality default config invalid: %v", err)
	}
	locals, _ := tmpl.LocalTreaties(cfg)
	// Equality splits pin each side: x must stay 10, y must stay 13.
	if !locals[0].Holds(lang.Database{"x": 10}) || locals[0].Holds(lang.Database{"x": 11}) {
		t.Fatalf("site 0 equality treaty should pin x = 10: %s", locals[0])
	}
	if !locals[1].Holds(lang.Database{"y": 13}) || locals[1].Holds(lang.Database{"y": 12}) {
		t.Fatalf("site 1 equality treaty should pin y = 13: %s", locals[1])
	}
}

func TestBuildTemplateRejectsNonObjectVars(t *testing.T) {
	term := lia.NewTerm()
	term.AddVar(logic.Param("p"), 1)
	g := Global{Constraints: []lia.Constraint{{Term: term, Op: lia.LE}}}
	if _, err := BuildTemplate(g, 2, func(lang.ObjID) int { return 0 }); err == nil {
		t.Fatal("expected rejection of parameter variable in treaty")
	}
}

func TestConfigVarsDeterministic(t *testing.T) {
	g, _, place := exampleGlobal(t)
	tmpl, err := BuildTemplate(g, 2, place)
	if err != nil {
		t.Fatal(err)
	}
	v1 := tmpl.ConfigVars()
	v2 := tmpl.ConfigVars()
	if len(v1) != 2 {
		t.Fatalf("config vars = %d, want 2", len(v1))
	}
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatal("ConfigVars not deterministic")
		}
	}
}

// TestEqualSplitConfig: the OPT baseline configuration is valid and splits
// slack evenly (Section 6.1's hand-crafted demarcation variant).
func TestEqualSplitConfig(t *testing.T) {
	g, db, place := exampleGlobal(t) // x+y >= 20 at (10, 13): slack 3
	tmpl, err := BuildTemplate(g, 2, place)
	if err != nil {
		t.Fatal(err)
	}
	cfg := tmpl.EqualSplitConfig(db)
	if err := tmpl.Validate(cfg, db); err != nil {
		t.Fatalf("equal-split config invalid: %v", err)
	}
	locals, _ := tmpl.LocalTreaties(cfg)
	// Slack 3 split 2/1: site 0 may drop x by 2 (to 8), site 1 by 1.
	if !locals[0].Holds(lang.Database{"x": 8}) || locals[0].Holds(lang.Database{"x": 7}) {
		t.Fatalf("site 0 equal-split treaty should be x >= 8: %s", locals[0])
	}
	if !locals[1].Holds(lang.Database{"y": 12}) || locals[1].Holds(lang.Database{"y": 11}) {
		t.Fatalf("site 1 equal-split treaty should be y >= 12: %s", locals[1])
	}
}

// TestEqualSplitNoSlack: at the boundary the split pins every site.
func TestEqualSplitNoSlack(t *testing.T) {
	g, _, place := exampleGlobal(t)
	db := lang.Database{"x": 10, "y": 10} // x+y = 20 exactly
	tmpl, err := BuildTemplate(g, 2, place)
	if err != nil {
		t.Fatal(err)
	}
	cfg := tmpl.EqualSplitConfig(db)
	if err := tmpl.Validate(cfg, db); err != nil {
		t.Fatalf("boundary config invalid: %v", err)
	}
	locals, _ := tmpl.LocalTreaties(cfg)
	if locals[0].Holds(lang.Database{"x": 9}) || locals[1].Holds(lang.Database{"y": 9}) {
		t.Fatal("no-slack split must pin both sites")
	}
}

// TestOptimizeGreedyFallback: with the theory-round budget forced to one,
// an over-constrained instance must still terminate with a valid
// configuration via the greedy path.
func TestOptimizeGreedyFallback(t *testing.T) {
	g, db, place := exampleGlobal(t)
	tmpl, err := BuildTemplate(g, 2, place)
	if err != nil {
		t.Fatal(err)
	}
	// Futures demand far more slack than exists: every theory round
	// conflicts.
	model := &scriptedModel{futures: [][]lang.Database{
		{{"x": 2, "y": 13}, {"x": 1, "y": 13}},
		{{"x": 10, "y": 3}, {"x": 10, "y": 2}},
		{{"x": 0, "y": 0}},
	}}
	cfg, stats := Optimize(tmpl, db, model, OptimizeOptions{
		Lookahead:       2,
		CostFactor:      3,
		Rng:             rand.New(rand.NewSource(1)),
		MaxTheoryRounds: 1,
	})
	if err := tmpl.Validate(cfg, db); err != nil {
		t.Fatalf("fallback config invalid: %v", err)
	}
	if !stats.GreedyFallback {
		t.Fatal("expected the greedy fallback to trigger")
	}
	// Every sampled future here is individually infeasible against the H1
	// budget, so the optimum keeps none of them; validity is what matters.
	if stats.SoftSatisfied != 0 {
		t.Fatalf("satisfied %d softs, expected 0 for this instance", stats.SoftSatisfied)
	}
}

// TestOptimizeNoFutures: an empty model degrades to the Theorem 4.3
// default.
func TestOptimizeNoFutures(t *testing.T) {
	g, db, place := exampleGlobal(t)
	tmpl, err := BuildTemplate(g, 2, place)
	if err != nil {
		t.Fatal(err)
	}
	model := &scriptedModel{futures: [][]lang.Database{{}}}
	cfg, stats := Optimize(tmpl, db, model, OptimizeOptions{
		Lookahead: 5, CostFactor: 2, Rng: rand.New(rand.NewSource(1)),
	})
	if !stats.UsedDefault {
		t.Fatal("expected default fallback with no soft constraints")
	}
	if err := tmpl.Validate(cfg, db); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

// TestRelaxIntoSlackDistributesBudget: after relaxation the H1 budget is
// fully consumed (sum of configs equals (K-1)*n for LE clauses).
func TestRelaxIntoSlackDistributesBudget(t *testing.T) {
	g, db, place := exampleGlobal(t)
	tmpl, err := BuildTemplate(g, 2, place)
	if err != nil {
		t.Fatal(err)
	}
	cfg := tmpl.DefaultConfig(db) // sum = (K-1)*n + slack
	tmpl.relaxIntoSlack(cfg)
	for _, tc := range tmpl.Clauses {
		n := -tc.Global.Term.Const
		sum := int64(0)
		for _, sc := range tc.Sites {
			sum += cfg[sc.Config]
		}
		if sum != n { // (K-1)*n with K=2
			t.Fatalf("post-relax sum = %d, want %d", sum, n)
		}
	}
	if err := tmpl.Validate(cfg, db); err != nil {
		t.Fatalf("relaxed config invalid: %v", err)
	}
}

// TestAdaptiveConfigProportional: with demand weights 3:1 the slack goes
// mostly to the hot site, and the configuration stays valid.
func TestAdaptiveConfigProportional(t *testing.T) {
	g, _, place := exampleGlobal(t)       // x+y >= 20
	db := lang.Database{"x": 20, "y": 12} // slack 12
	tmpl, err := BuildTemplate(g, 2, place)
	if err != nil {
		t.Fatal(err)
	}
	cfg := tmpl.AdaptiveConfig(db, []int64{3, 1})
	if err := tmpl.Validate(cfg, db); err != nil {
		t.Fatalf("adaptive config invalid: %v", err)
	}
	locals, _ := tmpl.LocalTreaties(cfg)
	// Slack 12 split 9/3: site 0 may drop x to 11, site 1 y to 9.
	if !locals[0].Holds(lang.Database{"x": 11}) || locals[0].Holds(lang.Database{"x": 10}) {
		t.Fatalf("site 0 adaptive treaty should be x >= 11: %s", locals[0])
	}
	if !locals[1].Holds(lang.Database{"y": 9}) || locals[1].Holds(lang.Database{"y": 8}) {
		t.Fatalf("site 1 adaptive treaty should be y >= 9: %s", locals[1])
	}
}

// TestAdaptiveConfigZeroWeightsIsEqualSplit: no observed demand must
// reproduce the equal split exactly (the offline-initialization case).
func TestAdaptiveConfigZeroWeightsIsEqualSplit(t *testing.T) {
	g, db, place := exampleGlobal(t)
	tmpl, err := BuildTemplate(g, 2, place)
	if err != nil {
		t.Fatal(err)
	}
	want := tmpl.EqualSplitConfig(db)
	for _, weights := range [][]int64{nil, {0, 0}, {0}, {-1, -2}} {
		got := tmpl.AdaptiveConfig(db, weights)
		for v, val := range want {
			if got[v] != val {
				t.Fatalf("weights %v: config %s = %d, want equal-split %d", weights, v, got[v], val)
			}
		}
	}
}

// TestAdaptiveConfigValidRandomized: validity must not depend on the
// weights — random demand vectors over random databases always yield a
// configuration satisfying H1 and H2.
func TestAdaptiveConfigValidRandomized(t *testing.T) {
	g, _, place := exampleGlobal(t)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		x := rng.Int63n(30)
		y := 20 - x + rng.Int63n(25) // keep x+y >= 20
		db := lang.Database{"x": x, "y": y}
		tmpl, err := BuildTemplate(g, 2, place)
		if err != nil {
			t.Fatal(err)
		}
		weights := []int64{rng.Int63n(20) - 2, rng.Int63n(20) - 2}
		cfg := tmpl.AdaptiveConfig(db, weights)
		if err := tmpl.Validate(cfg, db); err != nil {
			t.Fatalf("weights %v on %v: %v", weights, db, err)
		}
	}
}

// TestAdaptiveConfigExtremeSkew: all demand on one site hands it the
// whole slack and pins the idle site at its current value.
func TestAdaptiveConfigExtremeSkew(t *testing.T) {
	g, _, place := exampleGlobal(t)
	db := lang.Database{"x": 25, "y": 15} // slack 20
	tmpl, err := BuildTemplate(g, 2, place)
	if err != nil {
		t.Fatal(err)
	}
	cfg := tmpl.AdaptiveConfig(db, []int64{7, 0})
	if err := tmpl.Validate(cfg, db); err != nil {
		t.Fatal(err)
	}
	locals, _ := tmpl.LocalTreaties(cfg)
	if !locals[0].Holds(lang.Database{"x": 5}) || locals[0].Holds(lang.Database{"x": 4}) {
		t.Fatalf("hot site should get the entire slack (x >= 5): %s", locals[0])
	}
	if locals[1].Holds(lang.Database{"y": 14}) {
		t.Fatalf("idle site should be pinned at y >= 15: %s", locals[1])
	}
}
