// Package treaty implements treaty generation for the homeostasis
// protocol (Section 4 and Appendix C of the paper): preprocessing a
// symbolic-table guard into a conjunction of linear constraints, deriving
// per-site local-treaty templates with configuration variables, the
// always-valid default configuration of Theorem 4.3, and the MaxSAT-based
// optimizer of Algorithm 1.
package treaty

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/lang"
	"repro/internal/lia"
	"repro/internal/logic"
)

// Placement maps each database object to the site that owns it.
type Placement func(lang.ObjID) int

// Global is a global treaty: a conjunction of linear constraints over
// database objects, each in canonical form Term op 0 with op in {LE, EQ}
// (strict inequalities are normalized away using integrality).
type Global struct {
	Constraints []lia.Constraint
}

// Holds reports whether the database satisfies the global treaty.
func (g Global) Holds(db lang.Database) bool {
	b := logic.DBBinding(db, nil, nil)
	for _, c := range g.Constraints {
		ok, err := c.Eval(b)
		if err != nil || !ok {
			return false
		}
	}
	return true
}

func (g Global) String() string {
	parts := make([]string, len(g.Constraints))
	for i, c := range g.Constraints {
		parts[i] = c.String()
	}
	return strings.Join(parts, " && ")
}

// Local is the local treaty of one site: constraints over that site's
// objects only, obtained by instantiating the template's configuration
// variables.
type Local struct {
	Site        int
	Constraints []lia.Constraint
}

// Holds reports whether the (site-local view of the) database satisfies
// the local treaty.
func (l Local) Holds(db lang.Database) bool {
	b := logic.DBBinding(db, nil, nil)
	for _, c := range l.Constraints {
		ok, err := c.Eval(b)
		if err != nil || !ok {
			return false
		}
	}
	return true
}

func (l Local) String() string {
	parts := make([]string, len(l.Constraints))
	for i, c := range l.Constraints {
		parts[i] = c.String()
	}
	return fmt.Sprintf("site %d: %s", l.Site, strings.Join(parts, " && "))
}

// SiteClause is one site's share of a global clause: the sum of the
// clause's terms over objects local to the site, plus a fresh
// configuration variable.
type SiteClause struct {
	Site      int
	LocalTerm lia.Term
	Config    logic.Var
}

// TemplateClause pairs a global clause with its per-site split.
type TemplateClause struct {
	Global lia.Constraint
	Sites  []SiteClause // indexed by site id 0..NSites-1
}

// Template is the set of local treaty templates for all sites
// (Section 4.2): a per-clause, per-site decomposition with configuration
// variables awaiting instantiation.
type Template struct {
	NSites  int
	Clauses []TemplateClause
}

// Config assigns integer values to configuration variables.
type Config map[logic.Var]int64

// BuildTemplate splits each global constraint by site ownership, creating
// one configuration variable per (clause, site) pair, exactly as in the
// paper: a clause sum d_i x_i (op) n becomes, at site k,
// sum_{Loc(x_i)=k} d_i x_i + c_k (op) n.
func BuildTemplate(g Global, nSites int, place Placement) (*Template, error) {
	t := &Template{NSites: nSites}
	for j, gc := range g.Constraints {
		if gc.Op == lia.LT {
			return nil, fmt.Errorf("treaty: clause %d not normalized (LT)", j)
		}
		tc := TemplateClause{Global: gc.Clone()}
		locals := make([]lia.Term, nSites)
		for k := range locals {
			locals[k] = lia.NewTerm()
		}
		for _, v := range gc.Term.Vars() {
			if v.Kind != logic.ObjVar {
				return nil, fmt.Errorf("treaty: clause %d mentions non-object variable %s", j, v)
			}
			site := place(lang.ObjID(v.Name))
			if site < 0 || site >= nSites {
				return nil, fmt.Errorf("treaty: object %s placed on invalid site %d", v.Name, site)
			}
			locals[site].AddVar(v, gc.Term.Coeffs[v])
		}
		for k := 0; k < nSites; k++ {
			tc.Sites = append(tc.Sites, SiteClause{
				Site:      k,
				LocalTerm: locals[k],
				Config:    logic.Config(fmt.Sprintf("c%d_%d", j, k)),
			})
		}
		t.Clauses = append(t.Clauses, tc)
	}
	return t, nil
}

// ConfigVars lists every configuration variable of the template in
// deterministic order.
func (t *Template) ConfigVars() []logic.Var {
	set := make(map[logic.Var]bool)
	for _, tc := range t.Clauses {
		for _, sc := range tc.Sites {
			set[sc.Config] = true
		}
	}
	return logic.SortedVars(set)
}

// localSum evaluates the site-local part of a clause on a database.
func localSum(term lia.Term, db lang.Database) int64 {
	sum := term.Const
	//homeo:nondet commutative int64 sum; order cannot escape
	for v, c := range term.Coeffs {
		sum += c * db.Get(lang.ObjID(v.Name))
	}
	return sum
}

// DefaultConfig is the Theorem 4.3 configuration, valid for any database
// satisfying the global treaty: c_k = n - S_k(D) for inequality clauses
// and the complementary-sum value (which coincides) for equalities. Under
// it, each site's local treaty pins its local sum at the current value.
func (t *Template) DefaultConfig(db lang.Database) Config {
	cfg := make(Config)
	for _, tc := range t.Clauses {
		// Canonical clause: Term + 0 (op) 0 with n = -Term.Const.
		n := -tc.Global.Term.Const
		for _, sc := range tc.Sites {
			cfg[sc.Config] = n - localSum(sc.LocalTerm, db)
		}
	}
	return cfg
}

// LocalTreaty instantiates site k's local treaty under the configuration:
// for each clause, sum_{local} d_i x_i + c_k + C (op) 0.
func (t *Template) LocalTreaty(site int, cfg Config) (Local, error) {
	out := Local{Site: site}
	for j, tc := range t.Clauses {
		sc := tc.Sites[site]
		val, ok := cfg[sc.Config]
		if !ok {
			return Local{}, fmt.Errorf("treaty: clause %d site %d: unassigned config %s",
				j, site, sc.Config)
		}
		term := sc.LocalTerm.Clone()
		term.Const += val + tc.Global.Term.Const
		out.Constraints = append(out.Constraints, lia.Constraint{Term: term, Op: tc.Global.Op})
	}
	return out, nil
}

// LocalTreaties instantiates every site's local treaty.
func (t *Template) LocalTreaties(cfg Config) ([]Local, error) {
	out := make([]Local, t.NSites)
	for k := 0; k < t.NSites; k++ {
		l, err := t.LocalTreaty(k, cfg)
		if err != nil {
			return nil, err
		}
		out[k] = l
	}
	return out, nil
}

// HardConstraints returns the constraints over configuration variables
// that make a configuration valid (requirement H1: the conjunction of
// local treaties must imply the global treaty):
//
//   - inequality clause with bound n: sum_k c_k >= (K-1) * n
//   - equality clause: each c_k is pinned to n - S_k(D)
//
// plus requirement H2 (each local treaty holds on the current database D):
// c_k <= n - S_k(D) for inequalities.
func (t *Template) HardConstraints(db lang.Database) []lia.Constraint {
	var out []lia.Constraint
	for _, tc := range t.Clauses {
		n := -tc.Global.Term.Const
		k := int64(t.NSites)
		switch tc.Global.Op {
		case lia.LE:
			// H1: (K-1)*n - sum_k c_k <= 0.
			h1 := lia.NewTerm()
			h1.Const = (k - 1) * n
			for _, sc := range tc.Sites {
				h1.AddVar(sc.Config, -1)
			}
			out = append(out, lia.Constraint{Term: h1, Op: lia.LE})
			// H2 per site: c_k - (n - S_k(D)) <= 0.
			for _, sc := range tc.Sites {
				h2 := lia.NewTerm()
				h2.AddVar(sc.Config, 1)
				h2.Const = localSum(sc.LocalTerm, db) - n
				out = append(out, lia.Constraint{Term: h2, Op: lia.LE})
			}
		case lia.EQ:
			for _, sc := range tc.Sites {
				eq := lia.NewTerm()
				eq.AddVar(sc.Config, 1)
				eq.Const = localSum(sc.LocalTerm, db) - n
				out = append(out, lia.Constraint{Term: eq, Op: lia.EQ})
			}
		}
	}
	return out
}

// Validate checks that a configuration is a valid treaty configuration:
// H2 directly on D, and H1 by linear-arithmetic implication (the
// conjunction of all local treaties implies every global clause). This is
// the Lemma 4.2 / Theorem 4.3 property.
func (t *Template) Validate(cfg Config, db lang.Database) error {
	locals, err := t.LocalTreaties(cfg)
	if err != nil {
		return err
	}
	var all []lia.Constraint
	for _, l := range locals {
		if !l.Holds(db) {
			return fmt.Errorf("treaty: H2 violated: %s does not hold on current database", l)
		}
		all = append(all, l.Constraints...)
	}
	var global []lia.Constraint
	for _, tc := range t.Clauses {
		global = append(global, tc.Global)
	}
	if !lia.ImpliesAll(all, global) {
		return fmt.Errorf("treaty: H1 violated: local treaties do not imply the global treaty")
	}
	return nil
}

// SoftConstraint is one Algorithm 1 soft constraint: "all local treaty
// templates hold on a sampled future database D_j", expressed as bounds on
// configuration variables.
type SoftConstraint struct {
	Constraints []lia.Constraint
}

// SoftFor builds the soft constraint for a future database: for each
// inequality clause and site, c_k <= n - S_k(D_j). Equality clauses are
// already pinned by the hard constraints and contribute nothing soft.
func (t *Template) SoftFor(db lang.Database) SoftConstraint {
	var out SoftConstraint
	for _, tc := range t.Clauses {
		if tc.Global.Op != lia.LE {
			continue
		}
		n := -tc.Global.Term.Const
		for _, sc := range tc.Sites {
			cterm := lia.NewTerm()
			cterm.AddVar(sc.Config, 1)
			cterm.Const = localSum(sc.LocalTerm, db) - n
			out.Constraints = append(out.Constraints, lia.Constraint{Term: cterm, Op: lia.LE})
		}
	}
	return out
}

// EqualSplitConfig is the hand-crafted demarcation-style configuration the
// paper uses as its OPT baseline (Section 6.1): for each inequality
// clause, the slack between the current state and the treaty boundary is
// split equally among the sites, which is optimal for uniform workloads.
// Equality clauses are pinned as in DefaultConfig.
func (t *Template) EqualSplitConfig(db lang.Database) Config {
	cfg := make(Config)
	for _, tc := range t.Clauses {
		n := -tc.Global.Term.Const
		switch tc.Global.Op {
		case lia.EQ:
			for _, sc := range tc.Sites {
				cfg[sc.Config] = n - localSum(sc.LocalTerm, db)
			}
		case lia.LE:
			total := int64(0)
			for _, sc := range tc.Sites {
				total += localSum(sc.LocalTerm, db)
			}
			slack := n - total
			if slack < 0 {
				slack = 0
			}
			k := int64(t.NSites)
			share := slack / k
			rem := slack - share*k
			for i, sc := range tc.Sites {
				extra := int64(0)
				if int64(i) < rem {
					extra = 1
				}
				cfg[sc.Config] = n - localSum(sc.LocalTerm, db) - share - extra
			}
		}
	}
	return cfg
}

// AdaptiveConfig is the demand-proportional allocation strategy: for each
// inequality clause, the slack between the current state and the treaty
// boundary is split across sites proportionally to the given per-site
// demand weights (observed burn rates since the last negotiation round),
// so a site consuming most of a unit's slack receives most of the next
// round's budget and skewed or drifting workloads renegotiate less often.
// Zero or missing weights degrade gracefully: an all-zero weight vector
// reproduces EqualSplitConfig exactly. Equality clauses are pinned as in
// DefaultConfig.
//
// Validity does not depend on the weights: every share is non-negative
// and the shares sum to at most the slack, so H2 (each local treaty holds
// on D) and H1 (the locals imply the global) hold for any weight vector,
// exactly as for the equal split.
func (t *Template) AdaptiveConfig(db lang.Database, weights []int64) Config {
	total := int64(0)
	for site := 0; site < t.NSites && site < len(weights); site++ {
		if weights[site] > 0 {
			total += weights[site]
		}
	}
	if total == 0 {
		return t.EqualSplitConfig(db)
	}
	cfg := make(Config)
	for _, tc := range t.Clauses {
		n := -tc.Global.Term.Const
		switch tc.Global.Op {
		case lia.EQ:
			for _, sc := range tc.Sites {
				cfg[sc.Config] = n - localSum(sc.LocalTerm, db)
			}
		case lia.LE:
			sum := int64(0)
			for _, sc := range tc.Sites {
				sum += localSum(sc.LocalTerm, db)
			}
			slack := n - sum
			if slack < 0 {
				slack = 0
			}
			// Proportional shares by integer division, then hand the
			// remainder out one unit at a time in descending-weight order
			// (ties by site index) so the split is deterministic and sums
			// exactly to the slack.
			w := make([]int64, t.NSites)
			for site := range w {
				if site < len(weights) && weights[site] > 0 {
					w[site] = weights[site]
				}
			}
			shares := make([]int64, t.NSites)
			given := int64(0)
			for site := range shares {
				shares[site] = slack * w[site] / total
				given += shares[site]
			}
			order := make([]int, t.NSites)
			for i := range order {
				order[i] = i
			}
			sort.SliceStable(order, func(a, b int) bool { return w[order[a]] > w[order[b]] })
			for rem := slack - given; rem > 0; rem-- {
				shares[order[int(slack-given-rem)%t.NSites]]++
			}
			for i, sc := range tc.Sites {
				cfg[sc.Config] = n - localSum(sc.LocalTerm, db) - shares[i]
			}
		}
	}
	return cfg
}

// Rename returns a copy of the global treaty with every object variable
// renamed through f. Workloads with many independent, identically-shaped
// units (e.g. one stock quantity per item) analyze a single canonical unit
// and rename the resulting treaty per concrete item — the parameterized
// compression of Section 5.1.
func (g Global) Rename(f func(lang.ObjID) lang.ObjID) Global {
	out := Global{Constraints: make([]lia.Constraint, len(g.Constraints))}
	for i, c := range g.Constraints {
		nc := lia.Constraint{Term: lia.NewTerm(), Op: c.Op}
		nc.Term.Const = c.Term.Const
		//homeo:nondet map-to-map rebuild; the renamed term is a map, order invisible
		for v, coeff := range c.Term.Coeffs {
			if v.Kind == logic.ObjVar {
				nc.Term.AddVar(logic.Obj(f(lang.ObjID(v.Name))), coeff)
			} else {
				nc.Term.AddVar(v, coeff)
			}
		}
		out.Constraints[i] = nc
	}
	return out
}

// relaxIntoSlack lowers configuration values to consume any slack left in
// the H1 budget of each inequality clause (sum_k c_k >= (K-1)*n), sharing
// it equally among sites. Lowering c_k loosens site k's local treaty and
// cannot break upper-bound constraints, so the result remains valid and
// strictly dominates the input configuration.
func (t *Template) relaxIntoSlack(cfg Config) {
	for _, tc := range t.Clauses {
		if tc.Global.Op != lia.LE {
			continue
		}
		n := -tc.Global.Term.Const
		k := int64(t.NSites)
		sum := int64(0)
		for _, sc := range tc.Sites {
			sum += cfg[sc.Config]
		}
		excess := sum - (k-1)*n
		if excess <= 0 {
			continue
		}
		share := excess / k
		rem := excess - share*k
		for i, sc := range tc.Sites {
			extra := int64(0)
			if int64(i) < rem {
				extra = 1
			}
			cfg[sc.Config] -= share + extra
		}
	}
}
