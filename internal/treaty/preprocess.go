package treaty

import (
	"fmt"

	"repro/internal/lang"
	"repro/internal/lia"
	"repro/internal/logic"
)

// ParamBounds gives the inclusive range a transaction parameter can take,
// used to strengthen parameterized guards into parameter-free treaties
// (the paper pushes parameters into symbolic tables; at treaty time the
// worst case over the workload's parameter domain is what must hold).
type ParamBounds map[string][2]int64

// Preprocess implements Appendix C.1: it strengthens an arbitrary guard
// formula psi (which holds on the current database D under the given
// parameter binding) into a conjunction of linear constraints over
// database objects only.
//
//   - Conjuncts that are linear atoms are kept; strict inequalities are
//     normalized to non-strict using integrality (t < 0 becomes t+1 <= 0).
//   - Parameter occurrences in inequality conjuncts are replaced by their
//     worst-case bound so the constraint holds for every parameter value in
//     range; if no bounds are known the parameter is fixed to its current
//     value.
//   - Any conjunct outside the linear fragment (disjunctions, negations of
//     non-atoms, disequalities, nonlinear atoms, equalities with
//     parameters) is replaced by constraints fixing each database object it
//     mentions to its current value — "any variables involved in the
//     subexpression have their values fixed to the current ones".
//
// The result implies psi, so enforcing it enforces psi.
func Preprocess(psi logic.Formula, db lang.Database, params map[string]int64, bounds ParamBounds) (Global, error) {
	// Verify psi actually holds on D (it is the matched symbolic-table
	// row, so this is an internal consistency check).
	holds, err := logic.EvalFormula(psi, logic.DBBinding(db, params, nil))
	if err != nil {
		return Global{}, fmt.Errorf("treaty: evaluating psi on D: %w", err)
	}
	if !holds {
		return Global{}, fmt.Errorf("treaty: psi does not hold on the current database")
	}

	var out []lia.Constraint
	fixed := make(map[logic.Var]bool)
	for _, conj := range logic.Conjuncts(psi) {
		cs, err := lia.FormulaToConstraints(conj)
		if err != nil {
			// Outside the linear fragment: fix every object it mentions.
			out = append(out, fixVars(conj, db, fixed)...)
			continue
		}
		ok := true
		var normalized []lia.Constraint
		for _, c := range cs {
			nc, convOK := strengthenParams(c, params, bounds)
			if !convOK {
				ok = false
				break
			}
			normalized = append(normalized, normalizeStrict(nc))
		}
		if !ok {
			out = append(out, fixVars(conj, db, fixed)...)
			continue
		}
		out = append(out, normalized...)
	}
	// Sanity: every remaining variable is an object variable.
	for _, c := range out {
		for _, v := range c.Term.Vars() {
			if v.Kind != logic.ObjVar {
				return Global{}, fmt.Errorf("treaty: preprocessing left non-object variable %s", v)
			}
		}
	}
	g := Global{Constraints: out}
	if !g.Holds(db) {
		return Global{}, fmt.Errorf("treaty: internal error: preprocessed treaty does not hold on D")
	}
	return g, nil
}

// strengthenParams eliminates parameter variables from a constraint. For
// inequalities each parameter contribution is replaced by its worst-case
// (largest) value over the parameter's range; for equalities any parameter
// makes the clause non-strengthenable and the caller falls back to fixing.
func strengthenParams(c lia.Constraint, params map[string]int64, bounds ParamBounds) (lia.Constraint, bool) {
	nc := c.Clone()
	for _, v := range c.Term.Vars() {
		switch v.Kind {
		case logic.ObjVar:
			continue
		case logic.ParamVar:
			coeff := nc.Term.Coeffs[v]
			delete(nc.Term.Coeffs, v)
			if nc.Op == lia.EQ {
				return lia.Constraint{}, false
			}
			if b, ok := bounds[v.Name]; ok {
				// Worst case for "term <= 0" maximizes coeff*p.
				lo, hi := b[0], b[1]
				w := coeff * hi
				if coeff < 0 {
					w = coeff * lo
				}
				nc.Term.Const += w
			} else if val, ok := params[v.Name]; ok {
				nc.Term.Const += coeff * val
			} else {
				return lia.Constraint{}, false
			}
		default:
			return lia.Constraint{}, false
		}
	}
	return nc, true
}

// normalizeStrict rewrites t < 0 as t + 1 <= 0 (valid over integers).
func normalizeStrict(c lia.Constraint) lia.Constraint {
	if c.Op != lia.LT {
		return c
	}
	nc := c.Clone()
	nc.Term.Const++
	nc.Op = lia.LE
	return nc
}

// fixVars emits x = D(x) constraints for every object variable mentioned
// by the formula, deduplicating across conjuncts.
func fixVars(f logic.Formula, db lang.Database, fixed map[logic.Var]bool) []lia.Constraint {
	vars := make(map[logic.Var]bool)
	logic.FormulaVars(f, vars)
	var out []lia.Constraint
	for _, v := range logic.SortedVars(vars) {
		if v.Kind != logic.ObjVar || fixed[v] {
			continue
		}
		fixed[v] = true
		t := lia.NewTerm()
		t.AddVar(v, 1)
		t.Const = -db.Get(lang.ObjID(v.Name))
		out = append(out, lia.Constraint{Term: t, Op: lia.EQ})
	}
	return out
}
