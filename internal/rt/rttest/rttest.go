// Package rttest is a conformance suite for implementations of the
// internal/rt runtime contract. Both runtimes run it: internal/sim (the
// deterministic discrete-event simulator) and internal/rtlive (the
// wall-clock serving runtime). The suite checks the behaviors the
// protocol core depends on: park/wake token semantics, stale-wake
// (timer-cancellation) no-ops, bounded-resource exclusion and FIFO
// fairness among waiters, deadline-bounded runs, and Drain unwinding
// deferred cleanup.
//
// All shared test state is written from process or timer context (under
// the runtime's execution right) and copied into result fields by
// processes before they finish, so reads after Run/Drain are ordered for
// the race detector on the live runtime too.
package rttest

import (
	"testing"

	"repro/internal/rt"
)

// Factory builds a fresh runtime for one subtest.
type Factory func() rt.Runtime

// Run executes the conformance suite against runtimes built by f.
//
// Durations are real milliseconds on live runtimes; keep them small
// enough for CI but large enough to dominate scheduling noise.
func Run(t *testing.T, f Factory) {
	t.Run("SleepAdvancesClock", func(t *testing.T) { testSleep(t, f()) })
	t.Run("ParkWake", func(t *testing.T) { testParkWake(t, f()) })
	t.Run("StaleWakeIsNoop", func(t *testing.T) { testStaleWake(t, f()) })
	t.Run("ResourceExclusion", func(t *testing.T) { testResourceExclusion(t, f()) })
	t.Run("ResourceFIFO", func(t *testing.T) { testResourceFIFO(t, f()) })
	t.Run("DeadlineAndDrain", func(t *testing.T) { testDeadlineDrain(t, f()) })
}

func testSleep(t *testing.T, r rt.Runtime) {
	var start, wake rt.Time
	r.Spawn(0, func(p rt.Proc) {
		start = p.Now()
		p.Sleep(20 * rt.Millisecond)
		wake = p.Now()
	})
	r.Run()
	if rt.Duration(wake-start) < 20*rt.Millisecond {
		t.Fatalf("slept %v, want >= 20ms", rt.Duration(wake-start))
	}
}

func testParkWake(t *testing.T, r rt.Runtime) {
	// A parks and publishes its wake token; B wakes it through a
	// scheduled event, as the protocol's lock grants and treaty-round
	// wakes do.
	var (
		a      rt.Proc
		token  int64
		ready  bool
		woken  bool
		result struct{ woken, wakeTook bool }
	)
	r.Spawn(0, func(p rt.Proc) {
		a = p
		token = p.PrepPark()
		ready = true
		p.Park()
		woken = true
	})
	r.Spawn(1, func(p rt.Proc) {
		for !ready {
			p.Sleep(2 * rt.Millisecond)
		}
		r.At(r.Now(), func() {
			result.wakeTook = a.WakeIf(token)
		})
		// Wait until A has resumed, then record what it saw.
		for !woken {
			p.Sleep(2 * rt.Millisecond)
		}
		result.woken = woken
	})
	r.Run()
	if !result.wakeTook {
		t.Fatal("WakeIf with a live token reported no effect")
	}
	if !result.woken {
		t.Fatal("parked process did not resume after WakeIf")
	}
}

func testStaleWake(t *testing.T, r rt.Runtime) {
	// A timer holding a stale token must not wake the process: after the
	// first wake the token is invalidated (this is how a granted lock's
	// pending timeout timer becomes a no-op).
	var result struct {
		staleSeen bool
		staleTook bool
		elapsed   rt.Duration
	}
	r.Spawn(0, func(p rt.Proc) {
		start := p.Now()
		token := p.PrepPark()
		r.After(5*rt.Millisecond, func() { p.WakeIf(token) })
		r.After(25*rt.Millisecond, func() {
			result.staleSeen = true
			result.staleTook = p.WakeIf(token) // stale: token consumed at 5ms
		})
		p.Park()
		// Sleep past the stale timer; a spurious wake would cut this
		// short. Then wait for the stale timer to really have fired (on a
		// loaded machine it can lag) so the assertions read settled state.
		p.Sleep(40 * rt.Millisecond)
		for !result.staleSeen {
			p.Sleep(5 * rt.Millisecond)
		}
		result.elapsed = rt.Duration(p.Now() - start)
	})
	r.Run()
	if !result.staleSeen {
		t.Fatal("stale timer never fired")
	}
	if result.staleTook {
		t.Fatal("stale token woke the process")
	}
	if result.elapsed < 45*rt.Millisecond {
		t.Fatalf("process ran %v, want >= 45ms (stale wake must not cut the sleep short)", result.elapsed)
	}
}

func testResourceExclusion(t *testing.T, r rt.Runtime) {
	const cap, procs = 2, 6
	res := r.NewResource(cap)
	var (
		inUse, maxInUse int
		done            int
	)
	for i := 0; i < procs; i++ {
		r.Spawn(i, func(p rt.Proc) {
			res.Acquire(p)
			inUse++
			if inUse > maxInUse {
				maxInUse = inUse
			}
			p.Sleep(5 * rt.Millisecond)
			inUse--
			res.Release()
			done++
		})
	}
	r.Run()
	if done != procs {
		t.Fatalf("%d/%d processes completed", done, procs)
	}
	if maxInUse > cap {
		t.Fatalf("max concurrent holders = %d, capacity %d", maxInUse, cap)
	}
	if maxInUse != cap {
		t.Fatalf("max concurrent holders = %d, want the full capacity %d", maxInUse, cap)
	}
	if res.InUse() != 0 {
		t.Fatalf("in-use = %d after all releases", res.InUse())
	}
}

func testResourceFIFO(t *testing.T, r rt.Runtime) {
	// With a capacity-1 resource and staggered arrivals, slots are
	// granted in arrival order.
	const procs = 4
	res := r.NewResource(1)
	var order []int
	for i := 0; i < procs; i++ {
		i := i
		r.Spawn(i, func(p rt.Proc) {
			// Stagger arrivals well beyond scheduling noise.
			p.Sleep(rt.Duration(i*10) * rt.Millisecond)
			res.Acquire(p)
			order = append(order, i)
			p.Sleep(25 * rt.Millisecond)
			res.Release()
		})
	}
	r.Run()
	if len(order) != procs {
		t.Fatalf("%d/%d acquisitions", len(order), procs)
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("grant order %v, want FIFO", order)
		}
	}
}

func testDeadlineDrain(t *testing.T, r rt.Runtime) {
	var cleanup int
	r.Spawn(0, func(p rt.Proc) {
		defer func() { cleanup++ }()
		p.Sleep(10 * rt.Second) // far past the deadline
	})
	r.Spawn(1, func(p rt.Proc) {
		defer func() { cleanup++ }()
		p.PrepPark()
		p.Park() // parked forever; only Drain can end it
	})
	r.SetDeadline(rt.Time(30 * rt.Millisecond))
	end := r.Run()
	if end >= rt.Time(rt.Second) {
		t.Fatalf("run ended at %v, deadline was 30ms", rt.Duration(end))
	}
	r.Drain()
	if r.Live() != 0 {
		t.Fatalf("live = %d after drain, want 0", r.Live())
	}
	if cleanup != 2 {
		t.Fatalf("deferred cleanup ran %d times, want 2 (drain must unwind stacks)", cleanup)
	}
}
