// Package rt defines the runtime abstraction the protocol core programs
// against. The homeostasis protocol (treaties, disconnected execution,
// the cleanup phase) is engine-independent: it needs a clock, cooperative
// processes with park/wake, bounded resources, and timers — nothing about
// whether time is virtual or real. This package captures exactly that
// contract so the same store, protocol, and baseline code runs unchanged
// on two runtimes:
//
//   - internal/sim: the deterministic discrete-event simulator. Time is
//     virtual, exactly one process runs at a time, and runs are exactly
//     reproducible (the repository's experiment goldens depend on this).
//   - internal/rtlive: a wall-clock runtime backed by real goroutines,
//     sync.Cond, and time.Timer, used by cmd/homeostasis-serve to serve
//     real traffic.
//
// # Execution contract
//
// Code spawned through Runtime.Spawn holds the runtime's execution right
// while it runs: at most one spawned process executes protocol code at
// any moment, and the right is released only at park points (Sleep, Park,
// Resource.Acquire waits). The simulator provides this by cooperative
// scheduling; the live runtime provides it with a scheduler lock released
// while a process waits. Protocol state shared between processes (lock
// tables, treaty units, metrics) therefore needs no further locking, and
// any code sequence without a park point is atomic with respect to other
// processes on both runtimes.
//
// Functions passed to At/After run with the same execution right (the
// simulator runs them on the engine goroutine; the live runtime runs them
// holding the scheduler lock), so timer callbacks may inspect and update
// shared protocol state and wake processes via Proc.WakeIf.
//
// # Park/wake protocol
//
// A process parks in three steps: call PrepPark to obtain a wake token,
// schedule whatever events should wake it (passing the token), then call
// Park. A waker calls WakeIf(token) from a timer/event callback; the wake
// takes effect only if the process is still parked with that exact token,
// so stale wakes (a lock grant racing a timeout timer, say) are no-ops.
// Every successful wake invalidates the token.
package rt

import (
	"fmt"
	"math/rand"
)

// Time is a runtime timestamp in nanoseconds since the runtime started
// (virtual in the simulator, wall-clock in the live runtime).
type Time int64

// Duration is a time span in nanoseconds.
type Duration int64

// Common durations.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

func (d Duration) String() string {
	switch {
	case d >= Second:
		return fmt.Sprintf("%.3fs", float64(d)/float64(Second))
	case d >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(d)/float64(Millisecond))
	case d >= Microsecond:
		return fmt.Sprintf("%.3fus", float64(d)/float64(Microsecond))
	}
	return fmt.Sprintf("%dns", int64(d))
}

// Seconds converts the duration to floating-point seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Proc is a schedulable process. All methods except WakeIf must be called
// from the process's own execution context; WakeIf must be called from a
// timer/event callback (see the package comment).
type Proc interface {
	// Now returns the current runtime time.
	Now() Time
	// Sleep suspends the process for d.
	Sleep(d Duration)
	// PrepPark marks the process as about to park and returns the wake
	// token. Schedule wake events, then call Park.
	PrepPark() int64
	// Park yields until another event wakes the process via WakeIf with
	// the token PrepPark returned.
	Park()
	// WakeIf resumes the process if it is still parked with the given
	// token, reporting whether the wake took effect.
	WakeIf(token int64) bool
	// Token returns the process's current park token, for deferred wakes
	// of a process known to be parked.
	Token() int64
}

// Resource is a counting semaphore: a bounded resource such as a site's
// CPU capacity. On the simulator slots are occupied in virtual time; on
// the live runtime Acquire really blocks, so the capacity is a true
// concurrency limit.
type Resource interface {
	// Acquire blocks the calling process until a slot is free and takes it.
	Acquire(p Proc)
	// Release frees a slot and wakes one waiter.
	Release()
	// InUse returns the number of held slots.
	InUse() int
}

// Runtime is the execution engine the protocol core runs on.
type Runtime interface {
	// Now returns the current runtime time.
	Now() Time
	// Rand returns the runtime's seeded random stream. It must only be
	// used from process or timer-callback context.
	Rand() *rand.Rand
	// At schedules fn to run at the given time (clamped to now).
	At(t Time, fn func())
	// After schedules fn to run after d elapses.
	After(d Duration, fn func())
	// Spawn starts a new process running fn. The id is informational
	// (used for deterministic per-client seeding).
	Spawn(id int, fn func(p Proc))
	// NewResource creates a bounded resource with the given capacity.
	NewResource(capacity int) Resource
	// SetDeadline bounds Run: the runtime stops processing once time
	// would pass t (zero means no deadline).
	SetDeadline(t Time)
	// Run executes until quiescence or the deadline: the simulator pumps
	// its event loop; the live runtime blocks in real time. It returns
	// the time it stopped at.
	Run() Time
	// Drain terminates every process that has not finished (parked
	// processes are woken into a cancellation that unwinds their stack,
	// running deferred cleanup). Call after Run to avoid leaking
	// processes across runs.
	Drain()
	// Live returns the number of processes that have started but not
	// finished (parked processes included).
	Live() int
}
