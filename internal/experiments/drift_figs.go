package experiments

import (
	"repro/internal/homeostasis"
	"repro/internal/micro"
	"repro/internal/tpcc"
	"repro/internal/workload"
)

// This file is the drift sweep: a workload class the paper does not
// evaluate. Both scenarios skew per-unit demand heavily toward one site
// and then rotate the skew over time, which is the worst case for
// allocation strategies computed from a static model (or an equal split):
// the hot site exhausts its share of the slack while the cold sites'
// shares sit idle, so the unit renegotiates far more often than its total
// demand requires. The sweep compares equal-split, model-optimized
// (Algorithm 1 with the workload's static future model), and adaptive
// (demand-proportional, treaty.AdaptiveConfig) allocation under identical
// load; all three run with batched renegotiation so the comparison
// isolates the allocation strategy.

// Drift scenario knobs. The rotation period scales with the table size
// so per-item demand during one hot phase stays comparable across
// scales, and it is slow relative to a unit's negotiation rounds on
// purpose: adaptation learns from the demand observed since the last
// round, so skew that flips faster than a round completes is
// unlearnable for any allocator — the scenario probes drift the
// protocol can in principle track, with the per-item skew intense
// (narrow hot windows, high affinity) so misallocated slack actually
// costs rounds.
const (
	driftHotFrac  = 0.9
	driftAffinity = 95
)

// driftMicroFactory builds the hot-site rotation microbenchmark.
func driftMicroFactory(sc Scale) workloadFactory {
	return func(nSites int) (workload.Workload, error) {
		return micro.New(micro.Config{
			Items:       sc.Items,
			Refill:      microDefaultRefill,
			NSites:      nSites,
			HotFrac:     driftHotFrac,
			HotWindow:   max(1, sc.Items/10),
			RotateEvery: 20 * sc.Items,
		})
	}
}

// driftTPCCFactory builds the skewed-warehouse TPC-C workload: nearly all
// New Orders target the site's rotating home warehouse, the paper's
// global hot items are turned down to 1% so the skew under test is the
// warehouse affinity, and warehouses start restocked (StockMin 40) so
// stock units carry allocatable slack instead of pinning at the refill
// boundary.
func driftTPCCFactory(sc Scale) workloadFactory {
	return func(nSites int) (workload.Workload, error) {
		return tpcc.New(tpcc.Config{
			Warehouses:            10,
			DistrictsPerWarehouse: 10,
			StockPerWarehouse:     sc.TPCCStockPerWarehouse,
			Customers:             1000,
			NSites:                nSites,
			H:                     1,
			StockMin:              40,
			WarehouseAffinity:     driftAffinity,
			RotateEvery:           100 * sc.TPCCStockPerWarehouse,
			Seed:                  sc.Seed,
		})
	}
}

// driftAllocs are the compared strategies, in report column order.
var driftAllocs = []homeostasis.Alloc{
	homeostasis.AllocEqualSplit, homeostasis.AllocModel, homeostasis.AllocAdaptive,
}

// Drift compares treaty allocation strategies under drifting skew: the
// micro hot-site rotation scenario (uniform 100ms topology) and the
// TPC-C skewed-warehouse scenario (EC2 UE/UW topology, New Order
// measurements), reporting synchronization ratio and throughput per
// replica for each strategy.
func Drift(sc Scale) (*Report, error) {
	r := &Report{ID: "Drift", Title: "Allocation strategies under drifting skew (Nr=2, batched cleanup)"}
	r.addf("%-14s %-10s %8s %8s %8s", "scenario", "metric", "equal", "model", "adaptive")
	type scenario struct {
		name    string
		factory workloadFactory
		cfg     runCfg
	}
	scenarios := []scenario{
		{
			name:    "micro-rotate",
			factory: driftMicroFactory(sc),
			cfg: runCfg{
				mode: homeostasis.ModeHomeo, nSites: microDefaultSites,
				rtt: microDefaultRTT, clients: microDefaultClients, scale: sc,
			},
		},
		{
			name:    "tpcc-wh",
			factory: driftTPCCFactory(sc),
			cfg: runCfg{
				mode: homeostasis.ModeHomeo, nSites: 2, ec2: true,
				clients: tpccDefaultClients, measureName: "NewOrder", scale: sc,
			},
		},
	}
	at, err := sweepGrid(sc, r, len(scenarios), len(driftAllocs), func(si, ai int) cell {
		cfg := scenarios[si].cfg
		cfg.alloc = driftAllocs[ai]
		return cell{cfg: cfg, factory: scenarios[si].factory}
	})
	if err != nil {
		return nil, err
	}
	for si, s := range scenarios {
		r.addf("%-14s %-10s %8.2f %8.2f %8.2f", s.name, "sync(%)",
			at(si, 0).col.SyncRatio(), at(si, 1).col.SyncRatio(), at(si, 2).col.SyncRatio())
		r.addf("%-14s %-10s %8.1f %8.1f %8.1f", s.name, "tput/rep",
			at(si, 0).throughputPerReplica(2), at(si, 1).throughputPerReplica(2),
			at(si, 2).throughputPerReplica(2))
	}
	return r, nil
}
