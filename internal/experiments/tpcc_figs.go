package experiments

import (
	"fmt"

	"repro/internal/homeostasis"
)

// TPC-C defaults (Section 6.2): two replicas at UE/UW, eight clients per
// replica, 45/45/10 New Order / Payment / Delivery mix, measurements over
// New Order only.
const tpccDefaultClients = 8

// tpccCell builds one TPC-C sweep cell on the EC2 topology.
func tpccCell(sc Scale, mode homeostasis.Mode, nSites, clients int, measureName string, h float64, mixNO, mixPay, mixDel int) cell {
	return cell{
		cfg: runCfg{
			mode: mode, nSites: nSites, ec2: true, clients: clients,
			measureName: measureName, scale: sc,
		},
		factory: tpccFactory(sc, h, mixNO, mixPay, mixDel),
	}
}

// tpccClients returns the client count per replica: 8 normally, but 1 for
// 2PC — the paper: "In our 2PC implementation, we only use a single
// client per replica: with a larger number of clients, conflicts caused
// frequent transaction aborts" (Section 6.2). Our simulation reproduces
// that collapse (cross-site lock deadlocks resolved only by the 1s
// timeout), so the same convention applies.
func tpccClients(mode homeostasis.Mode) int {
	if mode == homeostasis.ModeTwoPC {
		return 1
	}
	return tpccDefaultClients
}

// Fig19 reproduces "Latency with workload skew": New Order latency
// percentiles for H = 1 and H = 50 under opt, homeo, and 2PC.
func Fig19(sc Scale) (*Report, error) {
	r := &Report{ID: "Figure 19", Title: "TPC-C New Order latency by percentile vs skew H (Nr=2 UE/UW, Nc=8)"}
	modes := []homeostasis.Mode{
		homeostasis.ModeOpt, homeostasis.ModeHomeo, homeostasis.ModeTwoPC,
	}
	skews := []float64{1, 50}
	at, err := sweepGrid(sc, r, len(modes), len(skews), func(mi, hi int) cell {
		return tpccCell(sc, modes[mi], 2, tpccClients(modes[mi]), "NewOrder", skews[hi], 45, 45, 10)
	})
	if err != nil {
		return nil, err
	}
	for mi, mode := range modes {
		for hi, h := range skews {
			r.Lines = append(r.Lines, latencyProfile(fmt.Sprintf("%s-h%g", mode, h), &at(mi, hi).col.Latency))
		}
	}
	return r, nil
}

// Fig20 reproduces "Throughput with workload skew": New Order throughput
// per replica as H grows.
func Fig20(sc Scale) (*Report, error) {
	r := &Report{ID: "Figure 20", Title: "TPC-C New Order throughput per replica (txn/s) vs skew H (Nr=2 UE/UW, Nc=8)"}
	r.addf("%-6s %8s %8s %8s", "H", "opt", "homeo", "2pc-c1")
	skews := []float64{5, 10, 20, 30, 40, 50}
	modes := []homeostasis.Mode{
		homeostasis.ModeOpt, homeostasis.ModeHomeo, homeostasis.ModeTwoPC,
	}
	at, err := sweepGrid(sc, r, len(skews), len(modes), func(hi, mi int) cell {
		return tpccCell(sc, modes[mi], 2, tpccClients(modes[mi]), "NewOrder", skews[hi], 45, 45, 10)
	})
	if err != nil {
		return nil, err
	}
	for hi, h := range skews {
		r.addf("%-6g %8.1f %8.1f %8.1f", h,
			at(hi, 0).throughputPerReplica(2),
			at(hi, 1).throughputPerReplica(2),
			at(hi, 2).throughputPerReplica(2))
	}
	return r, nil
}

// Fig21 reproduces "Latency with the number of replicas" on the EC2
// topology (replicas added in Table 1 order) at H = 10.
func Fig21(sc Scale) (*Report, error) {
	r := &Report{ID: "Figure 21", Title: "TPC-C New Order latency by percentile vs replicas (EC2 topology, Nc=8, H=10)"}
	modes := []homeostasis.Mode{homeostasis.ModeHomeo, homeostasis.ModeTwoPC}
	replicas := []int{2, 5}
	at, err := sweepGrid(sc, r, len(modes), len(replicas), func(mi, ri int) cell {
		return tpccCell(sc, modes[mi], replicas[ri], tpccClients(modes[mi]), "NewOrder", 10, 45, 45, 10)
	})
	if err != nil {
		return nil, err
	}
	for mi, mode := range modes {
		for ri, nr := range replicas {
			r.Lines = append(r.Lines, latencyProfile(fmt.Sprintf("%s-r%d", mode, nr), &at(mi, ri).col.Latency))
		}
	}
	return r, nil
}

// Fig22 reproduces "Throughput with the number of replicas": homeo with 8
// clients vs 2PC with one client, plus the paper's x8 upper-bound
// estimate for 2PC.
func Fig22(sc Scale) (*Report, error) {
	r := &Report{ID: "Figure 22", Title: "TPC-C New Order throughput per replica (txn/s) vs replicas (EC2 topology, H=10)"}
	r.addf("%-8s %10s %10s %12s", "replicas", "homeo-c8", "2pc-c1", "2pc-c8(est)")
	replicas := []int{2, 3, 4, 5}
	modes := []homeostasis.Mode{homeostasis.ModeHomeo, homeostasis.ModeTwoPC}
	at, err := sweepGrid(sc, r, len(replicas), len(modes), func(ri, mi int) cell {
		return tpccCell(sc, modes[mi], replicas[ri], tpccClients(modes[mi]), "NewOrder", 10, 45, 45, 10)
	})
	if err != nil {
		return nil, err
	}
	for ri, nr := range replicas {
		t2 := at(ri, 1).throughputPerReplica(nr)
		r.addf("%-8d %10.1f %10.1f %12.1f", nr,
			at(ri, 0).throughputPerReplica(nr), t2, 8*t2)
	}
	return r, nil
}

// Fig28 reproduces the distributed-deployment throughput (Appendix F.2):
// overall system throughput with the 49/49/2 mix as skew grows, homeo vs
// opt vs the 2PC estimate.
func Fig28(sc Scale) (*Report, error) {
	r := &Report{ID: "Figure 28", Title: "Distributed TPC-C overall throughput (txn/s) vs H (2 DCs, mix 49/49/2)"}
	r.addf("%-6s %10s %10s %10s", "H", "homeo", "opt", "2pc(est)")
	skews := []float64{1, 10, 20, 30, 40, 50}
	modes := []homeostasis.Mode{
		homeostasis.ModeHomeo, homeostasis.ModeOpt, homeostasis.ModeTwoPC,
	}
	at, err := sweepGrid(sc, r, len(skews), len(modes), func(hi, mi int) cell {
		return tpccCell(sc, modes[mi], 2, tpccClients(modes[mi]), "", skews[hi], 49, 49, 2)
	})
	if err != nil {
		return nil, err
	}
	for hi, h := range skews {
		r.addf("%-6g %10.0f %10.0f %10.0f", h,
			at(hi, 0).col.Throughput(), at(hi, 1).col.Throughput(),
			8*at(hi, 2).col.Throughput())
	}
	return r, nil
}

// Fig29 reproduces the distributed-deployment synchronization ratio
// (Appendix F.2).
func Fig29(sc Scale) (*Report, error) {
	r := &Report{ID: "Figure 29", Title: "Distributed TPC-C synchronization ratio (%) vs H (2 DCs, mix 49/49/2)"}
	r.addf("%-6s %8s %8s", "H", "homeo", "opt")
	skews := []float64{1, 10, 20, 30, 40, 50}
	modes := []homeostasis.Mode{homeostasis.ModeHomeo, homeostasis.ModeOpt}
	at, err := sweepGrid(sc, r, len(skews), len(modes), func(hi, mi int) cell {
		return tpccCell(sc, modes[mi], 2, tpccDefaultClients, "", skews[hi], 49, 49, 2)
	})
	if err != nil {
		return nil, err
	}
	for hi, h := range skews {
		r.addf("%-6g %8.2f %8.2f", h, at(hi, 0).col.SyncRatio(), at(hi, 1).col.SyncRatio())
	}
	return r, nil
}
