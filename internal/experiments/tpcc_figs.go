package experiments

import (
	"fmt"

	"repro/internal/homeostasis"
)

// TPC-C defaults (Section 6.2): two replicas at UE/UW, eight clients per
// replica, 45/45/10 New Order / Payment / Delivery mix, measurements over
// New Order only.
const tpccDefaultClients = 8

// Fig19 reproduces "Latency with workload skew": New Order latency
// percentiles for H = 1 and H = 50 under opt, homeo, and 2PC.
func Fig19(sc Scale) (*Report, error) {
	r := &Report{ID: "Figure 19", Title: "TPC-C New Order latency by percentile vs skew H (Nr=2 UE/UW, Nc=8)"}
	for _, mode := range []homeostasis.Mode{
		homeostasis.ModeOpt, homeostasis.ModeHomeo, homeostasis.ModeTwoPC,
	} {
		for _, h := range []float64{1, 50} {
			res, err := run(runCfg{
				mode: mode, nSites: 2, ec2: true, clients: tpccClients(mode),
				measureName: "NewOrder", scale: sc,
			}, tpccFactory(sc, h, 45, 45, 10))
			if err != nil {
				return nil, err
			}
			r.Lines = append(r.Lines, latencyProfile(fmt.Sprintf("%s-h%g", mode, h), &res.col.Latency))
		}
	}
	return r, nil
}

// tpccClients returns the client count per replica: 8 normally, but 1 for
// 2PC — the paper: "In our 2PC implementation, we only use a single
// client per replica: with a larger number of clients, conflicts caused
// frequent transaction aborts" (Section 6.2). Our simulation reproduces
// that collapse (cross-site lock deadlocks resolved only by the 1s
// timeout), so the same convention applies.
func tpccClients(mode homeostasis.Mode) int {
	if mode == homeostasis.ModeTwoPC {
		return 1
	}
	return tpccDefaultClients
}

// Fig20 reproduces "Throughput with workload skew": New Order throughput
// per replica as H grows.
func Fig20(sc Scale) (*Report, error) {
	r := &Report{ID: "Figure 20", Title: "TPC-C New Order throughput per replica (txn/s) vs skew H (Nr=2 UE/UW, Nc=8)"}
	r.addf("%-6s %8s %8s %8s", "H", "opt", "homeo", "2pc-c1")
	for _, h := range []float64{5, 10, 20, 30, 40, 50} {
		vals := make([]float64, 0, 3)
		for _, mode := range []homeostasis.Mode{
			homeostasis.ModeOpt, homeostasis.ModeHomeo, homeostasis.ModeTwoPC,
		} {
			res, err := run(runCfg{
				mode: mode, nSites: 2, ec2: true, clients: tpccClients(mode),
				measureName: "NewOrder", scale: sc,
			}, tpccFactory(sc, h, 45, 45, 10))
			if err != nil {
				return nil, err
			}
			vals = append(vals, res.throughputPerReplica(2))
		}
		r.addf("%-6g %8.1f %8.1f %8.1f", h, vals[0], vals[1], vals[2])
	}
	return r, nil
}

// Fig21 reproduces "Latency with the number of replicas" on the EC2
// topology (replicas added in Table 1 order) at H = 10.
func Fig21(sc Scale) (*Report, error) {
	r := &Report{ID: "Figure 21", Title: "TPC-C New Order latency by percentile vs replicas (EC2 topology, Nc=8, H=10)"}
	for _, mode := range []homeostasis.Mode{homeostasis.ModeHomeo, homeostasis.ModeTwoPC} {
		for _, nr := range []int{2, 5} {
			clients := tpccDefaultClients
			if mode == homeostasis.ModeTwoPC {
				clients = 1 // the paper could only run one 2PC client per replica
			}
			res, err := run(runCfg{
				mode: mode, nSites: nr, ec2: true, clients: clients,
				measureName: "NewOrder", scale: sc,
			}, tpccFactory(sc, 10, 45, 45, 10))
			if err != nil {
				return nil, err
			}
			r.Lines = append(r.Lines, latencyProfile(fmt.Sprintf("%s-r%d", mode, nr), &res.col.Latency))
		}
	}
	return r, nil
}

// Fig22 reproduces "Throughput with the number of replicas": homeo with 8
// clients vs 2PC with one client, plus the paper's x8 upper-bound
// estimate for 2PC.
func Fig22(sc Scale) (*Report, error) {
	r := &Report{ID: "Figure 22", Title: "TPC-C New Order throughput per replica (txn/s) vs replicas (EC2 topology, H=10)"}
	r.addf("%-8s %10s %10s %12s", "replicas", "homeo-c8", "2pc-c1", "2pc-c8(est)")
	for nr := 2; nr <= 5; nr++ {
		homeoRes, err := run(runCfg{
			mode: homeostasis.ModeHomeo, nSites: nr, ec2: true,
			clients: tpccDefaultClients, measureName: "NewOrder", scale: sc,
		}, tpccFactory(sc, 10, 45, 45, 10))
		if err != nil {
			return nil, err
		}
		twoPCRes, err := run(runCfg{
			mode: homeostasis.ModeTwoPC, nSites: nr, ec2: true,
			clients: 1, measureName: "NewOrder", scale: sc,
		}, tpccFactory(sc, 10, 45, 45, 10))
		if err != nil {
			return nil, err
		}
		t2 := twoPCRes.throughputPerReplica(nr)
		r.addf("%-8d %10.1f %10.1f %12.1f", nr,
			homeoRes.throughputPerReplica(nr), t2, 8*t2)
	}
	return r, nil
}

// Fig28 reproduces the distributed-deployment throughput (Appendix F.2):
// overall system throughput with the 49/49/2 mix as skew grows, homeo vs
// opt vs the 2PC estimate.
func Fig28(sc Scale) (*Report, error) {
	r := &Report{ID: "Figure 28", Title: "Distributed TPC-C overall throughput (txn/s) vs H (2 DCs, mix 49/49/2)"}
	r.addf("%-6s %10s %10s %10s", "H", "homeo", "opt", "2pc(est)")
	for _, h := range []float64{1, 10, 20, 30, 40, 50} {
		vals := make([]float64, 0, 2)
		for _, mode := range []homeostasis.Mode{homeostasis.ModeHomeo, homeostasis.ModeOpt} {
			res, err := run(runCfg{
				mode: mode, nSites: 2, ec2: true, clients: tpccDefaultClients,
				scale: sc,
			}, tpccFactory(sc, h, 49, 49, 2))
			if err != nil {
				return nil, err
			}
			vals = append(vals, res.col.Throughput())
		}
		twoPC, err := run(runCfg{
			mode: homeostasis.ModeTwoPC, nSites: 2, ec2: true, clients: 1,
			scale: sc,
		}, tpccFactory(sc, h, 49, 49, 2))
		if err != nil {
			return nil, err
		}
		r.addf("%-6g %10.0f %10.0f %10.0f", h, vals[0], vals[1],
			8*twoPC.col.Throughput())
	}
	return r, nil
}

// Fig29 reproduces the distributed-deployment synchronization ratio
// (Appendix F.2).
func Fig29(sc Scale) (*Report, error) {
	r := &Report{ID: "Figure 29", Title: "Distributed TPC-C synchronization ratio (%) vs H (2 DCs, mix 49/49/2)"}
	r.addf("%-6s %8s %8s", "H", "homeo", "opt")
	for _, h := range []float64{1, 10, 20, 30, 40, 50} {
		vals := make([]float64, 0, 2)
		for _, mode := range []homeostasis.Mode{homeostasis.ModeHomeo, homeostasis.ModeOpt} {
			res, err := run(runCfg{
				mode: mode, nSites: 2, ec2: true, clients: tpccDefaultClients,
				scale: sc,
			}, tpccFactory(sc, h, 49, 49, 2))
			if err != nil {
				return nil, err
			}
			vals = append(vals, res.col.SyncRatio())
		}
		r.addf("%-6g %8.2f %8.2f", h, vals[0], vals[1])
	}
	return r, nil
}
