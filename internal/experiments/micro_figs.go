package experiments

import (
	"fmt"

	"repro/internal/homeostasis"
	"repro/internal/sim"
)

// Microbenchmark defaults (Section 6.1): RTT 100ms, 2 replicas, 16
// clients per replica, REFILL = 100.
const (
	microDefaultRTT     = 100 * sim.Millisecond
	microDefaultSites   = 2
	microDefaultClients = 16
	microDefaultRefill  = 100
)

var microModes = []homeostasis.Mode{
	homeostasis.ModeHomeo, homeostasis.ModeOpt,
	homeostasis.ModeTwoPC, homeostasis.ModeLocal,
}

// Fig10 reproduces "Latency with network RTT": latency percentiles for
// each mode at RTT 50ms and 200ms.
func Fig10(sc Scale) (*Report, error) {
	r := &Report{ID: "Figure 10", Title: "Latency by percentile vs network RTT (Nr=2, Nc=16)"}
	for _, mode := range microModes {
		for _, rtt := range []sim.Duration{50 * sim.Millisecond, 200 * sim.Millisecond} {
			res, err := run(runCfg{
				mode: mode, nSites: microDefaultSites, rtt: rtt,
				clients: microDefaultClients, scale: sc,
			}, microFactory(sc, microDefaultRefill, 1))
			if err != nil {
				return nil, err
			}
			label := fmt.Sprintf("%s-t%d", mode, int64(rtt/sim.Millisecond))
			r.Lines = append(r.Lines, latencyProfile(label, &res.col.Latency))
		}
	}
	return r, nil
}

// Fig11 reproduces "Throughput with network RTT".
func Fig11(sc Scale) (*Report, error) {
	r := &Report{ID: "Figure 11", Title: "Throughput per replica (txn/s) vs network RTT (Nr=2, Nc=16)"}
	r.addf("%-8s %8s %8s %8s %8s", "rtt(ms)", "homeo", "opt", "2pc", "local")
	for _, rttMs := range []int64{50, 100, 150, 200} {
		vals := make([]float64, 0, 4)
		for _, mode := range microModes {
			res, err := run(runCfg{
				mode: mode, nSites: microDefaultSites,
				rtt:     sim.Duration(rttMs) * sim.Millisecond,
				clients: microDefaultClients, scale: sc,
			}, microFactory(sc, microDefaultRefill, 1))
			if err != nil {
				return nil, err
			}
			vals = append(vals, res.throughputPerReplica(microDefaultSites))
		}
		r.addf("%-8d %8.0f %8.0f %8.0f %8.0f", rttMs, vals[0], vals[1], vals[2], vals[3])
	}
	return r, nil
}

// Fig12 reproduces "Synchronization ratio with RTT" (homeo vs opt).
func Fig12(sc Scale) (*Report, error) {
	r := &Report{ID: "Figure 12", Title: "Synchronization ratio (%) vs network RTT (Nr=2, Nc=16)"}
	r.addf("%-8s %8s %8s", "rtt(ms)", "homeo", "opt")
	for _, rttMs := range []int64{50, 100, 150, 200} {
		vals := make([]float64, 0, 2)
		for _, mode := range []homeostasis.Mode{homeostasis.ModeHomeo, homeostasis.ModeOpt} {
			res, err := run(runCfg{
				mode: mode, nSites: microDefaultSites,
				rtt:     sim.Duration(rttMs) * sim.Millisecond,
				clients: microDefaultClients, scale: sc,
			}, microFactory(sc, microDefaultRefill, 1))
			if err != nil {
				return nil, err
			}
			vals = append(vals, res.col.SyncRatio())
		}
		r.addf("%-8d %8.2f %8.2f", rttMs, vals[0], vals[1])
	}
	return r, nil
}

// Fig13 reproduces "Latency with the number of replicas".
func Fig13(sc Scale) (*Report, error) {
	r := &Report{ID: "Figure 13", Title: "Latency by percentile vs replicas (RTT=100ms, Nc=16)"}
	for _, mode := range microModes {
		for _, nr := range []int{2, 5} {
			res, err := run(runCfg{
				mode: mode, nSites: nr, rtt: microDefaultRTT,
				clients: microDefaultClients, scale: sc,
			}, microFactory(sc, microDefaultRefill, 1))
			if err != nil {
				return nil, err
			}
			r.Lines = append(r.Lines, latencyProfile(fmt.Sprintf("%s-r%d", mode, nr), &res.col.Latency))
		}
	}
	return r, nil
}

// Fig14 reproduces "Throughput with the number of replicas".
func Fig14(sc Scale) (*Report, error) {
	r := &Report{ID: "Figure 14", Title: "Throughput per replica (txn/s) vs replicas (RTT=100ms, Nc=16)"}
	r.addf("%-8s %8s %8s %8s %8s", "replicas", "homeo", "opt", "2pc", "local")
	for nr := 2; nr <= 5; nr++ {
		vals := make([]float64, 0, 4)
		for _, mode := range microModes {
			res, err := run(runCfg{
				mode: mode, nSites: nr, rtt: microDefaultRTT,
				clients: microDefaultClients, scale: sc,
			}, microFactory(sc, microDefaultRefill, 1))
			if err != nil {
				return nil, err
			}
			vals = append(vals, res.throughputPerReplica(nr))
		}
		r.addf("%-8d %8.0f %8.0f %8.0f %8.0f", nr, vals[0], vals[1], vals[2], vals[3])
	}
	return r, nil
}

// Fig15 reproduces "Synchronization ratio with the number of replicas".
func Fig15(sc Scale) (*Report, error) {
	r := &Report{ID: "Figure 15", Title: "Synchronization ratio (%) vs replicas (RTT=100ms, Nc=16)"}
	r.addf("%-8s %8s %8s", "replicas", "homeo", "opt")
	for nr := 2; nr <= 5; nr++ {
		vals := make([]float64, 0, 2)
		for _, mode := range []homeostasis.Mode{homeostasis.ModeHomeo, homeostasis.ModeOpt} {
			res, err := run(runCfg{
				mode: mode, nSites: nr, rtt: microDefaultRTT,
				clients: microDefaultClients, scale: sc,
			}, microFactory(sc, microDefaultRefill, 1))
			if err != nil {
				return nil, err
			}
			vals = append(vals, res.col.SyncRatio())
		}
		r.addf("%-8d %8.2f %8.2f", nr, vals[0], vals[1])
	}
	return r, nil
}

// Fig16 reproduces "Latency with the number of clients".
func Fig16(sc Scale) (*Report, error) {
	r := &Report{ID: "Figure 16", Title: "Latency by percentile vs clients per replica (Nr=2, RTT=100ms)"}
	for _, mode := range microModes {
		for _, nc := range []int{1, 32} {
			res, err := run(runCfg{
				mode: mode, nSites: microDefaultSites, rtt: microDefaultRTT,
				clients: nc, scale: sc,
			}, microFactory(sc, microDefaultRefill, 1))
			if err != nil {
				return nil, err
			}
			r.Lines = append(r.Lines, latencyProfile(fmt.Sprintf("%s-c%d", mode, nc), &res.col.Latency))
		}
	}
	return r, nil
}

// Fig17 reproduces "Throughput with the number of clients".
func Fig17(sc Scale) (*Report, error) {
	r := &Report{ID: "Figure 17", Title: "Throughput per replica (txn/s) vs clients per replica (Nr=2, RTT=100ms)"}
	r.addf("%-8s %8s %8s %8s %8s", "clients", "homeo", "opt", "2pc", "local")
	for _, nc := range []int{1, 2, 4, 8, 16, 32, 64, 128} {
		vals := make([]float64, 0, 4)
		for _, mode := range microModes {
			res, err := run(runCfg{
				mode: mode, nSites: microDefaultSites, rtt: microDefaultRTT,
				clients: nc, scale: sc,
			}, microFactory(sc, microDefaultRefill, 1))
			if err != nil {
				return nil, err
			}
			vals = append(vals, res.throughputPerReplica(microDefaultSites))
		}
		r.addf("%-8d %8.0f %8.0f %8.0f %8.0f", nc, vals[0], vals[1], vals[2], vals[3])
	}
	return r, nil
}

// Fig18 reproduces "Synchronization ratio with the number of clients".
func Fig18(sc Scale) (*Report, error) {
	r := &Report{ID: "Figure 18", Title: "Synchronization ratio (%) vs clients per replica (Nr=2, RTT=100ms)"}
	r.addf("%-8s %8s %8s", "clients", "homeo", "opt")
	for _, nc := range []int{1, 2, 4, 8, 16, 32, 64, 128} {
		vals := make([]float64, 0, 2)
		for _, mode := range []homeostasis.Mode{homeostasis.ModeHomeo, homeostasis.ModeOpt} {
			res, err := run(runCfg{
				mode: mode, nSites: microDefaultSites, rtt: microDefaultRTT,
				clients: nc, scale: sc,
			}, microFactory(sc, microDefaultRefill, 1))
			if err != nil {
				return nil, err
			}
			vals = append(vals, res.col.SyncRatio())
		}
		r.addf("%-8d %8.2f %8.2f", nc, vals[0], vals[1])
	}
	return r, nil
}

// Fig24 reproduces the Appendix F latency breakdown of violating
// transactions as the lookahead interval L grows: local execution, solver
// time, and communication.
func Fig24(sc Scale) (*Report, error) {
	r := &Report{ID: "Figure 24", Title: "Violation latency breakdown vs lookahead L (RTT=100ms, Nc=16, REFILL=100)"}
	r.addf("%-6s %10s %10s %10s", "L", "local", "solver", "comm")
	for l := 10; l <= 100; l += 10 {
		res, err := run(runCfg{
			mode: homeostasis.ModeHomeo, nSites: microDefaultSites,
			rtt: microDefaultRTT, clients: microDefaultClients,
			lookahead: l, scale: sc,
		}, microFactory(sc, microDefaultRefill, 1))
		if err != nil {
			return nil, err
		}
		local, solver, comm := res.col.ViolationBreakdown.Avg()
		r.addf("%-6d %10v %10v %10v", l, local, solver, comm)
	}
	return r, nil
}

// Fig25 reproduces throughput vs lookahead L for REFILL 10/100/1000.
func Fig25(sc Scale) (*Report, error) {
	r := &Report{ID: "Figure 25", Title: "Throughput per replica (txn/s) vs lookahead L for REFILL values (RTT=100ms, Nc=16)"}
	r.addf("%-6s %8s %8s %8s", "L", "rf10", "rf100", "rf1000")
	for l := 10; l <= 100; l += 30 {
		vals := make([]float64, 0, 3)
		for _, rf := range []int64{10, 100, 1000} {
			res, err := run(runCfg{
				mode: homeostasis.ModeHomeo, nSites: microDefaultSites,
				rtt: microDefaultRTT, clients: microDefaultClients,
				lookahead: l, scale: sc,
			}, microFactory(sc, rf, 1))
			if err != nil {
				return nil, err
			}
			vals = append(vals, res.throughputPerReplica(microDefaultSites))
		}
		r.addf("%-6d %8.0f %8.0f %8.0f", l, vals[0], vals[1], vals[2])
	}
	return r, nil
}

// Fig26 reproduces synchronization ratio vs lookahead L for REFILL
// 10/100/1000.
func Fig26(sc Scale) (*Report, error) {
	r := &Report{ID: "Figure 26", Title: "Synchronization ratio (%) vs lookahead L for REFILL values (Nr=2, RTT=100ms, Nc=16)"}
	r.addf("%-6s %8s %8s %8s", "L", "rf10", "rf100", "rf1000")
	for l := 10; l <= 100; l += 30 {
		vals := make([]float64, 0, 3)
		for _, rf := range []int64{10, 100, 1000} {
			res, err := run(runCfg{
				mode: homeostasis.ModeHomeo, nSites: microDefaultSites,
				rtt: microDefaultRTT, clients: microDefaultClients,
				lookahead: l, scale: sc,
			}, microFactory(sc, rf, 1))
			if err != nil {
				return nil, err
			}
			vals = append(vals, res.col.SyncRatio())
		}
		r.addf("%-6d %8.2f %8.2f %8.2f", l, vals[0], vals[1], vals[2])
	}
	return r, nil
}

// Fig27 reproduces the latency CDF as the number of items per transaction
// grows (homeostasis 1..5 items, 2PC at 1 and 5).
func Fig27(sc Scale) (*Report, error) {
	r := &Report{ID: "Figure 27", Title: "Latency CDF vs items per transaction (RTT=100ms, REFILL=100, Nc=20, L=20)"}
	quantiles := []float64{50, 90, 95, 98, 99, 100}
	header := "series        "
	for _, q := range quantiles {
		header += fmt.Sprintf(" %9s", fmt.Sprintf("p%g", q))
	}
	r.Lines = append(r.Lines, header)
	series := func(mode homeostasis.Mode, items int) error {
		res, err := run(runCfg{
			mode: mode, nSites: microDefaultSites, rtt: microDefaultRTT,
			clients: 20, scale: sc,
		}, microFactory(sc, microDefaultRefill, items))
		if err != nil {
			return err
		}
		line := fmt.Sprintf("%s-items%d    ", mode, items)
		for _, q := range quantiles {
			line += fmt.Sprintf(" %9v", res.col.Latency.Percentile(q))
		}
		r.Lines = append(r.Lines, line)
		return nil
	}
	for items := 1; items <= 5; items++ {
		if err := series(homeostasis.ModeHomeo, items); err != nil {
			return nil, err
		}
	}
	for _, items := range []int{1, 5} {
		if err := series(homeostasis.ModeTwoPC, items); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// AblationOptimizer compares treaty-generation strategies: Algorithm 1
// (homeo), equal-split (opt), and the Theorem 4.3 default that pins every
// site (degenerating to synchronization on every write).
func AblationOptimizer(sc Scale) (*Report, error) {
	r := &Report{ID: "Ablation", Title: "Treaty generation strategies (micro, Nr=2, RTT=100ms, Nc=16)"}
	r.addf("%-16s %10s %10s %10s", "strategy", "tput/rep", "sync(%)", "p50")
	for _, mode := range []homeostasis.Mode{
		homeostasis.ModeHomeo, homeostasis.ModeOpt, homeostasis.ModeHomeoDefault,
	} {
		res, err := run(runCfg{
			mode: mode, nSites: microDefaultSites, rtt: microDefaultRTT,
			clients: microDefaultClients, scale: sc,
		}, microFactory(sc, microDefaultRefill, 1))
		if err != nil {
			return nil, err
		}
		r.addf("%-16s %10.0f %10.2f %10v", mode,
			res.throughputPerReplica(microDefaultSites),
			res.col.SyncRatio(), res.col.Latency.Percentile(50))
	}
	return r, nil
}
