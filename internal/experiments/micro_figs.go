package experiments

import (
	"fmt"

	"repro/internal/homeostasis"
	"repro/internal/sim"
)

// Microbenchmark defaults (Section 6.1): RTT 100ms, 2 replicas, 16
// clients per replica, REFILL = 100.
const (
	microDefaultRTT     = 100 * sim.Millisecond
	microDefaultSites   = 2
	microDefaultClients = 16
	microDefaultRefill  = 100
)

var microModes = []homeostasis.Mode{
	homeostasis.ModeHomeo, homeostasis.ModeOpt,
	homeostasis.ModeTwoPC, homeostasis.ModeLocal,
}

var microSyncModes = []homeostasis.Mode{homeostasis.ModeHomeo, homeostasis.ModeOpt}

// microCell builds one microbenchmark sweep cell.
func microCell(sc Scale, mode homeostasis.Mode, nSites int, rtt sim.Duration, clients, lookahead int, refill int64, itemsPerTxn int) cell {
	return cell{
		cfg: runCfg{
			mode: mode, nSites: nSites, rtt: rtt,
			clients: clients, lookahead: lookahead, scale: sc,
		},
		factory: microFactory(sc, refill, itemsPerTxn),
	}
}

// Fig10 reproduces "Latency with network RTT": latency percentiles for
// each mode at RTT 50ms and 200ms.
func Fig10(sc Scale) (*Report, error) {
	r := &Report{ID: "Figure 10", Title: "Latency by percentile vs network RTT (Nr=2, Nc=16)"}
	rtts := []sim.Duration{50 * sim.Millisecond, 200 * sim.Millisecond}
	at, err := sweepGrid(sc, r, len(microModes), len(rtts), func(mi, ti int) cell {
		return microCell(sc, microModes[mi], microDefaultSites, rtts[ti], microDefaultClients, 0, microDefaultRefill, 1)
	})
	if err != nil {
		return nil, err
	}
	for mi, mode := range microModes {
		for ti, rtt := range rtts {
			label := fmt.Sprintf("%s-t%d", mode, int64(rtt/sim.Millisecond))
			r.Lines = append(r.Lines, latencyProfile(label, &at(mi, ti).col.Latency))
		}
	}
	return r, nil
}

// Fig11 reproduces "Throughput with network RTT".
func Fig11(sc Scale) (*Report, error) {
	r := &Report{ID: "Figure 11", Title: "Throughput per replica (txn/s) vs network RTT (Nr=2, Nc=16)"}
	r.addf("%-8s %8s %8s %8s %8s", "rtt(ms)", "homeo", "opt", "2pc", "local")
	rtts := []int64{50, 100, 150, 200}
	at, err := sweepGrid(sc, r, len(rtts), len(microModes), func(ti, mi int) cell {
		return microCell(sc, microModes[mi], microDefaultSites, sim.Duration(rtts[ti])*sim.Millisecond, microDefaultClients, 0, microDefaultRefill, 1)
	})
	if err != nil {
		return nil, err
	}
	for ti, rttMs := range rtts {
		r.addf("%-8d %8.0f %8.0f %8.0f %8.0f", rttMs,
			at(ti, 0).throughputPerReplica(microDefaultSites),
			at(ti, 1).throughputPerReplica(microDefaultSites),
			at(ti, 2).throughputPerReplica(microDefaultSites),
			at(ti, 3).throughputPerReplica(microDefaultSites))
	}
	return r, nil
}

// Fig12 reproduces "Synchronization ratio with RTT" (homeo vs opt).
func Fig12(sc Scale) (*Report, error) {
	r := &Report{ID: "Figure 12", Title: "Synchronization ratio (%) vs network RTT (Nr=2, Nc=16)"}
	r.addf("%-8s %8s %8s", "rtt(ms)", "homeo", "opt")
	rtts := []int64{50, 100, 150, 200}
	at, err := sweepGrid(sc, r, len(rtts), len(microSyncModes), func(ti, mi int) cell {
		return microCell(sc, microSyncModes[mi], microDefaultSites, sim.Duration(rtts[ti])*sim.Millisecond, microDefaultClients, 0, microDefaultRefill, 1)
	})
	if err != nil {
		return nil, err
	}
	for ti, rttMs := range rtts {
		r.addf("%-8d %8.2f %8.2f", rttMs, at(ti, 0).col.SyncRatio(), at(ti, 1).col.SyncRatio())
	}
	return r, nil
}

// Fig13 reproduces "Latency with the number of replicas".
func Fig13(sc Scale) (*Report, error) {
	r := &Report{ID: "Figure 13", Title: "Latency by percentile vs replicas (RTT=100ms, Nc=16)"}
	replicas := []int{2, 5}
	at, err := sweepGrid(sc, r, len(microModes), len(replicas), func(mi, ri int) cell {
		return microCell(sc, microModes[mi], replicas[ri], microDefaultRTT, microDefaultClients, 0, microDefaultRefill, 1)
	})
	if err != nil {
		return nil, err
	}
	for mi, mode := range microModes {
		for ri, nr := range replicas {
			r.Lines = append(r.Lines, latencyProfile(fmt.Sprintf("%s-r%d", mode, nr), &at(mi, ri).col.Latency))
		}
	}
	return r, nil
}

// Fig14 reproduces "Throughput with the number of replicas".
func Fig14(sc Scale) (*Report, error) {
	r := &Report{ID: "Figure 14", Title: "Throughput per replica (txn/s) vs replicas (RTT=100ms, Nc=16)"}
	r.addf("%-8s %8s %8s %8s %8s", "replicas", "homeo", "opt", "2pc", "local")
	replicas := []int{2, 3, 4, 5}
	at, err := sweepGrid(sc, r, len(replicas), len(microModes), func(ri, mi int) cell {
		return microCell(sc, microModes[mi], replicas[ri], microDefaultRTT, microDefaultClients, 0, microDefaultRefill, 1)
	})
	if err != nil {
		return nil, err
	}
	for ri, nr := range replicas {
		r.addf("%-8d %8.0f %8.0f %8.0f %8.0f", nr,
			at(ri, 0).throughputPerReplica(nr),
			at(ri, 1).throughputPerReplica(nr),
			at(ri, 2).throughputPerReplica(nr),
			at(ri, 3).throughputPerReplica(nr))
	}
	return r, nil
}

// Fig15 reproduces "Synchronization ratio with the number of replicas".
func Fig15(sc Scale) (*Report, error) {
	r := &Report{ID: "Figure 15", Title: "Synchronization ratio (%) vs replicas (RTT=100ms, Nc=16)"}
	r.addf("%-8s %8s %8s", "replicas", "homeo", "opt")
	replicas := []int{2, 3, 4, 5}
	at, err := sweepGrid(sc, r, len(replicas), len(microSyncModes), func(ri, mi int) cell {
		return microCell(sc, microSyncModes[mi], replicas[ri], microDefaultRTT, microDefaultClients, 0, microDefaultRefill, 1)
	})
	if err != nil {
		return nil, err
	}
	for ri, nr := range replicas {
		r.addf("%-8d %8.2f %8.2f", nr, at(ri, 0).col.SyncRatio(), at(ri, 1).col.SyncRatio())
	}
	return r, nil
}

// Fig16 reproduces "Latency with the number of clients".
func Fig16(sc Scale) (*Report, error) {
	r := &Report{ID: "Figure 16", Title: "Latency by percentile vs clients per replica (Nr=2, RTT=100ms)"}
	clients := []int{1, 32}
	at, err := sweepGrid(sc, r, len(microModes), len(clients), func(mi, ci int) cell {
		return microCell(sc, microModes[mi], microDefaultSites, microDefaultRTT, clients[ci], 0, microDefaultRefill, 1)
	})
	if err != nil {
		return nil, err
	}
	for mi, mode := range microModes {
		for ci, nc := range clients {
			r.Lines = append(r.Lines, latencyProfile(fmt.Sprintf("%s-c%d", mode, nc), &at(mi, ci).col.Latency))
		}
	}
	return r, nil
}

// Fig17 reproduces "Throughput with the number of clients".
func Fig17(sc Scale) (*Report, error) {
	r := &Report{ID: "Figure 17", Title: "Throughput per replica (txn/s) vs clients per replica (Nr=2, RTT=100ms)"}
	r.addf("%-8s %8s %8s %8s %8s", "clients", "homeo", "opt", "2pc", "local")
	clients := []int{1, 2, 4, 8, 16, 32, 64, 128}
	at, err := sweepGrid(sc, r, len(clients), len(microModes), func(ci, mi int) cell {
		return microCell(sc, microModes[mi], microDefaultSites, microDefaultRTT, clients[ci], 0, microDefaultRefill, 1)
	})
	if err != nil {
		return nil, err
	}
	for ci, nc := range clients {
		r.addf("%-8d %8.0f %8.0f %8.0f %8.0f", nc,
			at(ci, 0).throughputPerReplica(microDefaultSites),
			at(ci, 1).throughputPerReplica(microDefaultSites),
			at(ci, 2).throughputPerReplica(microDefaultSites),
			at(ci, 3).throughputPerReplica(microDefaultSites))
	}
	return r, nil
}

// Fig18 reproduces "Synchronization ratio with the number of clients".
func Fig18(sc Scale) (*Report, error) {
	r := &Report{ID: "Figure 18", Title: "Synchronization ratio (%) vs clients per replica (Nr=2, RTT=100ms)"}
	r.addf("%-8s %8s %8s", "clients", "homeo", "opt")
	clients := []int{1, 2, 4, 8, 16, 32, 64, 128}
	at, err := sweepGrid(sc, r, len(clients), len(microSyncModes), func(ci, mi int) cell {
		return microCell(sc, microSyncModes[mi], microDefaultSites, microDefaultRTT, clients[ci], 0, microDefaultRefill, 1)
	})
	if err != nil {
		return nil, err
	}
	for ci, nc := range clients {
		r.addf("%-8d %8.2f %8.2f", nc, at(ci, 0).col.SyncRatio(), at(ci, 1).col.SyncRatio())
	}
	return r, nil
}

// Fig24 reproduces the Appendix F latency breakdown of violating
// transactions as the lookahead interval L grows: local execution, solver
// time, and communication.
func Fig24(sc Scale) (*Report, error) {
	r := &Report{ID: "Figure 24", Title: "Violation latency breakdown vs lookahead L (RTT=100ms, Nc=16, REFILL=100)"}
	r.addf("%-6s %10s %10s %10s", "L", "local", "solver", "comm")
	var lookaheads []int
	for l := 10; l <= 100; l += 10 {
		lookaheads = append(lookaheads, l)
	}
	at, err := sweepGrid(sc, r, len(lookaheads), 1, func(li, _ int) cell {
		return microCell(sc, homeostasis.ModeHomeo, microDefaultSites, microDefaultRTT, microDefaultClients, lookaheads[li], microDefaultRefill, 1)
	})
	if err != nil {
		return nil, err
	}
	for li, l := range lookaheads {
		local, solver, comm := at(li, 0).col.ViolationBreakdown.Avg()
		r.addf("%-6d %10v %10v %10v", l, local, solver, comm)
	}
	return r, nil
}

// Fig25 reproduces throughput vs lookahead L for REFILL 10/100/1000.
func Fig25(sc Scale) (*Report, error) {
	r := &Report{ID: "Figure 25", Title: "Throughput per replica (txn/s) vs lookahead L for REFILL values (RTT=100ms, Nc=16)"}
	r.addf("%-6s %8s %8s %8s", "L", "rf10", "rf100", "rf1000")
	refills := []int64{10, 100, 1000}
	var lookaheads []int
	for l := 10; l <= 100; l += 30 {
		lookaheads = append(lookaheads, l)
	}
	at, err := sweepGrid(sc, r, len(lookaheads), len(refills), func(li, fi int) cell {
		return microCell(sc, homeostasis.ModeHomeo, microDefaultSites, microDefaultRTT, microDefaultClients, lookaheads[li], refills[fi], 1)
	})
	if err != nil {
		return nil, err
	}
	for li, l := range lookaheads {
		r.addf("%-6d %8.0f %8.0f %8.0f", l,
			at(li, 0).throughputPerReplica(microDefaultSites),
			at(li, 1).throughputPerReplica(microDefaultSites),
			at(li, 2).throughputPerReplica(microDefaultSites))
	}
	return r, nil
}

// Fig26 reproduces synchronization ratio vs lookahead L for REFILL
// 10/100/1000.
func Fig26(sc Scale) (*Report, error) {
	r := &Report{ID: "Figure 26", Title: "Synchronization ratio (%) vs lookahead L for REFILL values (Nr=2, RTT=100ms, Nc=16)"}
	r.addf("%-6s %8s %8s %8s", "L", "rf10", "rf100", "rf1000")
	refills := []int64{10, 100, 1000}
	var lookaheads []int
	for l := 10; l <= 100; l += 30 {
		lookaheads = append(lookaheads, l)
	}
	at, err := sweepGrid(sc, r, len(lookaheads), len(refills), func(li, fi int) cell {
		return microCell(sc, homeostasis.ModeHomeo, microDefaultSites, microDefaultRTT, microDefaultClients, lookaheads[li], refills[fi], 1)
	})
	if err != nil {
		return nil, err
	}
	for li, l := range lookaheads {
		r.addf("%-6d %8.2f %8.2f %8.2f", l,
			at(li, 0).col.SyncRatio(), at(li, 1).col.SyncRatio(), at(li, 2).col.SyncRatio())
	}
	return r, nil
}

// Fig27 reproduces the latency CDF as the number of items per transaction
// grows (homeostasis 1..5 items, 2PC at 1 and 5).
func Fig27(sc Scale) (*Report, error) {
	r := &Report{ID: "Figure 27", Title: "Latency CDF vs items per transaction (RTT=100ms, REFILL=100, Nc=20, L=20)"}
	quantiles := []float64{50, 90, 95, 98, 99, 100}
	header := "series        "
	for _, q := range quantiles {
		header += fmt.Sprintf(" %9s", fmt.Sprintf("p%g", q))
	}
	r.Lines = append(r.Lines, header)
	type seriesSpec struct {
		mode  homeostasis.Mode
		items int
	}
	var specs []seriesSpec
	for items := 1; items <= 5; items++ {
		specs = append(specs, seriesSpec{homeostasis.ModeHomeo, items})
	}
	for _, items := range []int{1, 5} {
		specs = append(specs, seriesSpec{homeostasis.ModeTwoPC, items})
	}
	at, err := sweepGrid(sc, r, len(specs), 1, func(si, _ int) cell {
		return microCell(sc, specs[si].mode, microDefaultSites, microDefaultRTT, 20, 0, microDefaultRefill, specs[si].items)
	})
	if err != nil {
		return nil, err
	}
	for si, s := range specs {
		line := fmt.Sprintf("%s-items%d    ", s.mode, s.items)
		for _, q := range quantiles {
			line += fmt.Sprintf(" %9v", at(si, 0).col.Latency.Percentile(q))
		}
		r.Lines = append(r.Lines, line)
	}
	return r, nil
}

// AblationOptimizer compares treaty-generation strategies: Algorithm 1
// (homeo), equal-split (opt), and the Theorem 4.3 default that pins every
// site (degenerating to synchronization on every write).
func AblationOptimizer(sc Scale) (*Report, error) {
	r := &Report{ID: "Ablation", Title: "Treaty generation strategies (micro, Nr=2, RTT=100ms, Nc=16)"}
	r.addf("%-16s %10s %10s %10s", "strategy", "tput/rep", "sync(%)", "p50")
	modes := []homeostasis.Mode{
		homeostasis.ModeHomeo, homeostasis.ModeOpt, homeostasis.ModeHomeoDefault,
	}
	at, err := sweepGrid(sc, r, len(modes), 1, func(mi, _ int) cell {
		return microCell(sc, modes[mi], microDefaultSites, microDefaultRTT, microDefaultClients, 0, microDefaultRefill, 1)
	})
	if err != nil {
		return nil, err
	}
	for mi, mode := range modes {
		r.addf("%-16s %10.0f %10.2f %10v", mode,
			at(mi, 0).throughputPerReplica(microDefaultSites),
			at(mi, 0).col.SyncRatio(), at(mi, 0).col.Latency.Percentile(50))
	}
	return r, nil
}
