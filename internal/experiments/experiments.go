// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 6 and Appendix F). Each FigNN function runs the
// corresponding parameter sweep on the simulated cluster and returns a
// Report with the same rows/series the paper plots. The cmd/homeostasis-
// bench CLI and the repository-root benchmarks are thin wrappers around
// these functions.
//
// Sweeps run on the parallel experiment engine (runner.go): every sweep
// point is an independent cell — an isolated simulated cluster — fanned
// out across Scale.Parallel worker goroutines with ordered result
// aggregation, so reports are byte-identical for any parallelism
// setting.
package experiments

import (
	"fmt"
	"strings"

	"repro/internal/cluster"
	"repro/internal/homeostasis"
	"repro/internal/metrics"
	"repro/internal/micro"
	"repro/internal/sim"
	"repro/internal/tpcc"
	"repro/internal/workload"
)

// Scale shrinks or grows experiment durations and database sizes.
// Scale 1.0 approximates the paper's setup at simulation-friendly size;
// benchmarks use smaller scales for quick regression runs.
type Scale struct {
	// Items is the microbenchmark Stock table size (paper: 10,000).
	Items int
	// Measure is the measurement window in virtual time (paper: 300s).
	Measure sim.Duration
	// Warmup precedes measurement (paper: 5s micro / 100s TPC-C).
	Warmup sim.Duration
	// TPCCStockPerWarehouse scales the TPC-C stock table (paper: 10,000
	// rows per warehouse across 10 districts).
	TPCCStockPerWarehouse int
	// Seed drives all randomness.
	Seed int64
	// Alloc, when not AllocDefault, overrides the treaty allocation
	// strategy (and enables batched renegotiation) for every cell that
	// does not pin its own strategy — the CLI's -alloc flag. The default
	// keeps the seed behavior and the golden reports.
	Alloc homeostasis.Alloc
	// Parallel bounds how many sweep cells the experiment engine
	// simulates concurrently; 0 means GOMAXPROCS. Every cell is an
	// isolated simulation with a seed derived only from the scale, so
	// reports are byte-identical for any Parallel setting.
	Parallel int
	// OnProgress, when non-nil, is called as sweep cells complete. Calls
	// are serialized by the engine but may come from worker goroutines.
	OnProgress func(done, total int)
}

// Full is the default scale used by the CLI.
var Full = Scale{
	Items:                 2000,
	Measure:               30 * sim.Second,
	Warmup:                2 * sim.Second,
	TPCCStockPerWarehouse: 200,
	Seed:                  1,
}

// Quick is a reduced scale for regression benchmarks.
var Quick = Scale{
	Items:                 400,
	Measure:               8 * sim.Second,
	Warmup:                1 * sim.Second,
	TPCCStockPerWarehouse: 50,
	Seed:                  1,
}

// Bench is the smallest scale, used by the repository's testing.B
// benchmarks so `go test -bench=.` finishes promptly while still
// exercising every experiment end to end.
var Bench = Scale{
	Items:                 100,
	Measure:               2 * sim.Second,
	Warmup:                500 * sim.Millisecond,
	TPCCStockPerWarehouse: 20,
	Seed:                  1,
}

// Report is one regenerated table/figure.
type Report struct {
	ID    string
	Title string
	Lines []string
	// Cells is the number of independent simulation cells the sweep ran
	// and Workers the worker-pool size that ran them. Both are metadata
	// for the CLI's metrics surface; String() excludes them so rendered
	// output is identical across parallelism settings.
	Cells   int
	Workers int
	// Totals aggregates per-cell run counters across the sweep. Metadata
	// for the CLI's -v surface; String() excludes it so rendered reports
	// stay byte-identical to the goldens.
	Totals RunTotals
}

// RunTotals sums a sweep's per-cell measurement counters: the collector's
// commit/sync/drop counts, the cluster-wide 2PL store counters, and the
// merged per-negotiation communication-latency histogram (the cost of
// the site fabric's two message rounds per cleanup).
type RunTotals struct {
	Committed        int64
	Synced           int64
	AbortedConflicts int64
	Dropped          int64
	Livelocked       int64
	CoWinnerCommits  int64
	Store            homeostasis.StoreStats
	NegLatency       metrics.Histogram
}

func (t *RunTotals) String() string {
	s := fmt.Sprintf("committed=%d synced=%d conflict-aborts=%d dropped=%d livelocked=%d co-winners=%d | store: %s",
		t.Committed, t.Synced, t.AbortedConflicts, t.Dropped, t.Livelocked, t.CoWinnerCommits, t.Store)
	if n := t.NegLatency.N(); n > 0 {
		s += fmt.Sprintf(" | neg: n=%d p50=%v p99=%v", n,
			t.NegLatency.Percentile(50), t.NegLatency.Percentile(99))
	}
	return s
}

func (t *RunTotals) add(r *runResult) {
	t.Committed += r.col.Committed
	t.Synced += r.col.Synced
	t.AbortedConflicts += r.col.AbortedConflicts
	t.Dropped += r.col.Dropped
	t.Livelocked += r.col.Livelocked
	t.CoWinnerCommits += r.col.CoWinnerCommits
	t.Store.Commits += r.stats.Commits
	t.Store.Aborts += r.stats.Aborts
	t.Store.Deadlocks += r.stats.Deadlocks
	t.Store.Timeouts += r.stats.Timeouts
	t.NegLatency.AddAll(&r.col.NegotiationLatency)
}

func (r *Report) addf(format string, args ...any) {
	r.Lines = append(r.Lines, fmt.Sprintf(format, args...))
}

// String renders the report.
func (r *Report) String() string {
	return fmt.Sprintf("=== %s: %s ===\n%s\n", r.ID, r.Title, strings.Join(r.Lines, "\n"))
}

// runCfg describes one simulated run.
type runCfg struct {
	mode    homeostasis.Mode
	nSites  int
	rtt     sim.Duration // uniform topology when > 0
	ec2     bool         // Table 1 topology
	clients int
	// optimizer knobs; zero = package defaults (L=20, f=3)
	lookahead, costFactor int
	measureName           string
	scale                 Scale
	seedBump              int64
	// alloc pins the cell's allocation strategy; AllocDefault defers to
	// the scale-wide override (Scale.Alloc), which itself defaults to the
	// mode's built-in strategy.
	alloc homeostasis.Alloc
}

// runResult keeps only the measurements of a finished cell. It must not
// reference the System: the parallel engine holds every cell's result
// until ordered aggregation, and retaining the simulated cluster (stores,
// treaties, units) would inflate the live heap across the whole sweep.
type runResult struct {
	col    *metrics.Collector
	window sim.Duration
	// stats is the cluster-wide store-counter summary, captured before
	// the System is released (see the type comment).
	stats homeostasis.StoreStats
}

// run executes one configuration over the given workload factory (the
// factory is invoked per run because workloads capture NSites).
func run(cfg runCfg, makeWorkload workloadFactory) (*runResult, error) {
	w, err := makeWorkload(cfg.nSites)
	if err != nil {
		return nil, err
	}
	var topo *cluster.Topology
	if cfg.ec2 {
		topo = cluster.EC2(cfg.nSites)
	} else {
		topo = cluster.Uniform(cfg.nSites, cfg.rtt)
	}
	alloc := cfg.alloc
	if alloc == homeostasis.AllocDefault {
		alloc = cfg.scale.Alloc
	}
	e := sim.NewEngine(cfg.scale.Seed + cfg.seedBump)
	opts := homeostasis.Options{
		Mode:           cfg.mode,
		Alloc:          alloc,
		Topo:           topo,
		ClientsPerSite: cfg.clients,
		// The paper ran all microbenchmark replicas on one 32-core host;
		// splitting the cores across replicas reproduces the client
		// plateau of Figure 17.
		CPUPerSite:  max(1, 32/cfg.nSites),
		Lookahead:   cfg.lookahead,
		CostFactor:  cfg.costFactor,
		Warmup:      cfg.scale.Warmup,
		Measure:     cfg.scale.Measure,
		Seed:        cfg.scale.Seed + cfg.seedBump,
		MeasureName: cfg.measureName,
	}
	sys, err := homeostasis.New(e, w, opts)
	if err != nil {
		return nil, err
	}
	col := sys.Run()
	return &runResult{col: col, window: cfg.scale.Measure, stats: sys.StoreStats()}, nil
}

func (r *runResult) throughputPerReplica(nSites int) float64 {
	return r.col.Throughput() / float64(nSites)
}

// latencyProfile renders the percentile series of a latency figure.
func latencyProfile(label string, h *metrics.Histogram) string {
	ps := []float64{10, 30, 50, 70, 90, 94, 96, 97, 98, 99, 100}
	parts := make([]string, 0, len(ps))
	for _, p := range ps {
		parts = append(parts, fmt.Sprintf("p%g=%v", p, h.Percentile(p)))
	}
	return fmt.Sprintf("%-14s %s", label, strings.Join(parts, " "))
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// microFactory builds the Section 6.1 workload.
func microFactory(sc Scale, refill int64, itemsPerTxn int) workloadFactory {
	return func(nSites int) (workload.Workload, error) {
		return micro.New(micro.Config{
			Items:       sc.Items,
			Refill:      refill,
			ItemsPerTxn: itemsPerTxn,
			NSites:      nSites,
		})
	}
}

// tpccFactory builds the Section 6.2 workload.
func tpccFactory(sc Scale, h float64, mixNO, mixPay, mixDel int) workloadFactory {
	return func(nSites int) (workload.Workload, error) {
		return tpcc.New(tpcc.Config{
			Warehouses:            10,
			DistrictsPerWarehouse: 10,
			StockPerWarehouse:     sc.TPCCStockPerWarehouse,
			Customers:             1000,
			NSites:                nSites,
			H:                     h,
			MixNewOrder:           mixNO,
			MixPayment:            mixPay,
			MixDelivery:           mixDel,
			Seed:                  sc.Seed,
		})
	}
}

// All runs every experiment at the given scale, in paper order.
func All(sc Scale) ([]*Report, error) {
	type gen struct {
		name string
		fn   func(Scale) (*Report, error)
	}
	gens := []gen{
		{"table1", Table1},
		{"fig10", Fig10}, {"fig11", Fig11}, {"fig12", Fig12},
		{"fig13", Fig13}, {"fig14", Fig14}, {"fig15", Fig15},
		{"fig16", Fig16}, {"fig17", Fig17}, {"fig18", Fig18},
		{"fig19", Fig19}, {"fig20", Fig20}, {"fig21", Fig21}, {"fig22", Fig22},
		{"fig24", Fig24}, {"fig25", Fig25}, {"fig26", Fig26}, {"fig27", Fig27},
		{"fig28", Fig28}, {"fig29", Fig29},
		{"ablation", AblationOptimizer},
		{"drift", Drift},
	}
	var out []*Report
	for _, g := range gens {
		r, err := g.fn(sc)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", g.name, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// ByName returns the experiment runner with the given id.
func ByName(name string) (func(Scale) (*Report, error), bool) {
	m := map[string]func(Scale) (*Report, error){
		"table1": Table1,
		"fig10":  Fig10, "fig11": Fig11, "fig12": Fig12,
		"fig13": Fig13, "fig14": Fig14, "fig15": Fig15,
		"fig16": Fig16, "fig17": Fig17, "fig18": Fig18,
		"fig19": Fig19, "fig20": Fig20, "fig21": Fig21, "fig22": Fig22,
		"fig24": Fig24, "fig25": Fig25, "fig26": Fig26, "fig27": Fig27,
		"fig28": Fig28, "fig29": Fig29,
		"ablation": AblationOptimizer,
		"drift":    Drift,
	}
	f, ok := m[name]
	return f, ok
}

// Names lists the available experiment ids in paper order.
func Names() []string {
	return []string{
		"table1",
		"fig10", "fig11", "fig12", "fig13", "fig14", "fig15",
		"fig16", "fig17", "fig18",
		"fig19", "fig20", "fig21", "fig22",
		"fig24", "fig25", "fig26", "fig27", "fig28", "fig29",
		"ablation", "drift",
	}
}

// Table1 prints the EC2 RTT matrix (an input, reproduced for
// completeness).
func Table1(Scale) (*Report, error) {
	r := &Report{ID: "Table 1", Title: "Average RTTs between Amazon datacenters (ms)"}
	for _, line := range strings.Split(strings.TrimRight(cluster.Table1String(), "\n"), "\n") {
		r.Lines = append(r.Lines, line)
	}
	return r, nil
}
