package experiments

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/workload"
)

// This file implements the parallel experiment engine. Every figure's
// parameter sweep is a list of independent cells — one simulated cluster
// per (mode, topology, clients, knobs) point — and each cell owns its
// engine, stores, and random streams, so cells can run on separate
// goroutines with no shared mutable state. Results are aggregated in
// declaration order and each cell's seed is a pure function of the scale,
// so the rendered report is byte-identical for any parallelism setting.

// workloadFactory builds a cell's workload for a given replication
// degree (workloads capture NSites).
type workloadFactory func(nSites int) (workload.Workload, error)

// cell is one independent simulation point of a sweep.
type cell struct {
	cfg     runCfg
	factory workloadFactory
}

// totalCells counts simulation cells completed process-wide since start;
// part of the engine's metrics surface (see TotalCells).
var totalCells atomic.Int64

// TotalCells returns the cumulative number of simulation cells the
// engine has completed in this process. Safe to read concurrently with
// running experiments.
func TotalCells() int64 { return totalCells.Load() }

// workers returns the worker-pool size for a sweep of n cells:
// Scale.Parallel when positive, otherwise GOMAXPROCS, never more than n.
func (sc Scale) workers(n int) int {
	par := sc.Parallel
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par > n {
		par = n
	}
	if par < 1 {
		par = 1
	}
	return par
}

// runCells executes every cell of a sweep, fanning them out across
// Scale.Parallel worker goroutines (GOMAXPROCS when zero), and returns
// the results in cell order. Errors are reported deterministically: the
// lowest-index failing cell wins regardless of completion order.
func runCells(sc Scale, cells []cell) ([]*runResult, error) {
	results := make([]*runResult, len(cells))
	errs := make([]error, len(cells))
	par := sc.workers(len(cells))

	var mu sync.Mutex
	done := 0
	cellDone := func() {
		totalCells.Add(1)
		if sc.OnProgress == nil {
			return
		}
		// Serialize progress callbacks so observers need no locking.
		mu.Lock()
		done++
		sc.OnProgress(done, len(cells))
		mu.Unlock()
	}

	if par == 1 {
		for i := range cells {
			results[i], errs[i] = run(cells[i].cfg, cells[i].factory)
			cellDone()
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < par; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					results[i], errs[i] = run(cells[i].cfg, cells[i].factory)
					cellDone()
				}
			}()
		}
		for i := range cells {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}

	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("cell %d/%d (%s): %w", i+1, len(cells), cells[i].cfg.mode, err)
		}
	}
	return results, nil
}

// sweep runs a figure's cells through the parallel engine and tags the
// report with the sweep's cell count and worker-pool size (metadata only;
// Report.String never includes it, keeping output independent of the
// parallelism setting).
func sweep(sc Scale, r *Report, cells []cell) ([]*runResult, error) {
	res, err := runCells(sc, cells)
	if err != nil {
		return nil, err
	}
	r.Cells = len(cells)
	r.Workers = sc.workers(len(cells))
	for _, cell := range res {
		r.Totals.add(cell)
	}
	return res, nil
}

// sweepGrid runs a rows x cols sweep (row-major) and returns an accessor
// over the results. Figures build cells and read results through the
// same (ri, ci) coordinates, so labels cannot drift out of lockstep with
// the cell order.
func sweepGrid(sc Scale, r *Report, rows, cols int, build func(ri, ci int) cell) (func(ri, ci int) *runResult, error) {
	cells := make([]cell, 0, rows*cols)
	for ri := 0; ri < rows; ri++ {
		for ci := 0; ci < cols; ci++ {
			cells = append(cells, build(ri, ci))
		}
	}
	res, err := sweep(sc, r, cells)
	if err != nil {
		return nil, err
	}
	return func(ri, ci int) *runResult { return res[ri*cols+ci] }, nil
}
