package experiments_test

import (
	"sync/atomic"
	"testing"

	"repro/internal/experiments"
)

// runAt regenerates one experiment at Bench scale with the given
// parallelism, checking the report is well-formed and non-empty.
func runAt(t *testing.T, name string, parallel int) *experiments.Report {
	t.Helper()
	fn, ok := experiments.ByName(name)
	if !ok {
		t.Fatalf("experiment %q does not resolve", name)
	}
	sc := experiments.Bench
	sc.Parallel = parallel
	r, err := fn(sc)
	if err != nil {
		t.Fatalf("%s (parallel=%d): %v", name, parallel, err)
	}
	if len(r.Lines) == 0 {
		t.Fatalf("%s (parallel=%d): empty report", name, parallel)
	}
	for i, line := range r.Lines {
		if line == "" {
			t.Fatalf("%s (parallel=%d): empty line %d", name, parallel, i)
		}
	}
	return r
}

// TestExperimentsDeterministicAcrossParallelism runs every registered
// experiment at Bench scale under the serial and the parallel engine and
// requires byte-identical output: each sweep cell is an isolated
// simulation whose seed depends only on the scale, so the worker count
// must never leak into results. In -short mode only a representative
// subset runs (one micro throughput sweep, one TPC-C sweep, the
// ablation).
func TestExperimentsDeterministicAcrossParallelism(t *testing.T) {
	names := experiments.Names()
	if testing.Short() {
		names = []string{"fig11", "fig20", "ablation"}
	}
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			serial := runAt(t, name, 1)
			parallel := runAt(t, name, 4)
			if serial.String() != parallel.String() {
				t.Errorf("output differs between -parallel 1 and -parallel 4:\n--- serial ---\n%s\n--- parallel ---\n%s",
					serial, parallel)
			}
			if serial.Cells != parallel.Cells {
				t.Errorf("cell counts differ: %d vs %d", serial.Cells, parallel.Cells)
			}
			if name != "table1" && parallel.Cells == 0 {
				t.Errorf("%s reports zero sweep cells", name)
			}
		})
	}
}

// TestProgressCallback checks the engine's progress surface: callbacks
// are serialized, monotonic, and end exactly at the cell count.
func TestProgressCallback(t *testing.T) {
	fn, _ := experiments.ByName("ablation")
	sc := experiments.Bench
	sc.Parallel = 4
	var calls int32
	last := 0
	total := 0
	sc.OnProgress = func(done, n int) {
		atomic.AddInt32(&calls, 1)
		if done != last+1 {
			t.Errorf("progress jumped from %d to %d", last, done)
		}
		last = done
		total = n
	}
	r, err := fn(sc)
	if err != nil {
		t.Fatal(err)
	}
	if int(calls) != r.Cells || last != r.Cells || total != r.Cells {
		t.Errorf("progress saw %d/%d of %d cells", calls, last, r.Cells)
	}
}

// TestWorkerCountMetadata pins the worker-pool sizing: explicit Parallel
// wins, and the pool never exceeds the cell count.
func TestWorkerCountMetadata(t *testing.T) {
	fn, _ := experiments.ByName("ablation") // 3 cells
	sc := experiments.Bench
	sc.Parallel = 8
	r, err := fn(sc)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cells != 3 {
		t.Fatalf("ablation ran %d cells, want 3", r.Cells)
	}
	if r.Workers != 3 {
		t.Fatalf("ablation used %d workers, want 3 (capped by cells)", r.Workers)
	}
	if experiments.TotalCells() < int64(r.Cells) {
		t.Fatalf("TotalCells() = %d, want >= %d", experiments.TotalCells(), r.Cells)
	}
}
