// Package maxsat implements the Fu-Malik partial MaxSAT algorithm (Fu &
// Malik, SAT'06) on top of internal/sat, as used by the Homeostasis
// paper's treaty optimizer ("we use the Fu-Malik Max SAT procedure in the
// Microsoft Z3 SMT solver", Section 5.2).
//
// Partial MaxSAT: given hard clauses that must hold and soft clauses to
// satisfy as many of as possible, Fu-Malik iteratively solves, extracts an
// unsatisfiable core of soft clauses, relaxes every soft clause in the
// core with a fresh blocking variable, adds an at-most-one constraint over
// the new blocking variables, and repeats until satisfiable. The number of
// iterations equals the number of falsified soft clauses in the optimum.
package maxsat

import (
	"fmt"

	"repro/internal/sat"
)

// Clause is a disjunction of literals.
type Clause []sat.Lit

// Problem is a partial MaxSAT instance. Variables are 1-based; use NewVar
// to allocate.
type Problem struct {
	nVars int
	hard  []Clause
	soft  []Clause
}

// NewProblem returns an empty instance.
func NewProblem() *Problem { return &Problem{} }

// NewVar allocates a fresh variable.
func (p *Problem) NewVar() int {
	p.nVars++
	return p.nVars
}

// AddHard adds a clause that any solution must satisfy.
func (p *Problem) AddHard(lits ...sat.Lit) {
	p.track(lits)
	p.hard = append(p.hard, Clause(lits))
}

// AddSoft adds a clause the solver should satisfy if possible. All soft
// clauses have unit weight (the paper's instances are unweighted).
func (p *Problem) AddSoft(lits ...sat.Lit) {
	p.track(lits)
	p.soft = append(p.soft, Clause(lits))
}

func (p *Problem) track(lits []sat.Lit) {
	for _, l := range lits {
		if v := l.Var(); v > p.nVars {
			p.nVars = v
		}
	}
}

// NumSoft returns the number of soft clauses.
func (p *Problem) NumSoft() int { return len(p.soft) }

// Result is the outcome of a MaxSAT solve.
type Result struct {
	// Feasible is false when the hard clauses alone are unsatisfiable.
	Feasible bool
	// Model is the satisfying assignment (indexed by variable, entry 0
	// unused) over the original variables.
	Model []bool
	// SatisfiedSoft[i] reports whether soft clause i is satisfied by
	// Model.
	SatisfiedSoft []bool
	// Cost is the number of falsified soft clauses (the Fu-Malik
	// iteration count).
	Cost int
	// Iterations counts SAT-solver invocations performed.
	Iterations int
}

// Solve runs the Fu-Malik algorithm and returns the optimal result. The
// problem is not modified.
func Solve(p *Problem) Result {
	// Working copies: soft clauses accumulate relaxation literals across
	// rounds, hard clauses accumulate cardinality constraints, and nVars
	// grows with blocking variables. The caller's Problem stays untouched.
	origVars := p.nVars
	nVars := p.nVars
	hard := append([]Clause(nil), p.hard...)
	newVar := func() int {
		nVars++
		return nVars
	}
	soft := make([]Clause, len(p.soft))
	for i, c := range p.soft {
		soft[i] = append(Clause(nil), c...)
	}
	// Selector variable per soft clause: clause_i || !sel_i, assumed true.
	// Rebuilt each round because clause contents change.
	res := Result{Feasible: true}
	cost := 0
	for {
		s := sat.New()
		for v := 0; v < nVars; v++ {
			s.NewVar()
		}
		for _, c := range hard {
			s.AddClause(c...)
		}
		selectors := make([]sat.Lit, len(soft))
		selToIdx := make(map[sat.Lit]int, len(soft))
		for i, c := range soft {
			sel := sat.Lit(s.NewVar())
			selectors[i] = sel
			selToIdx[sel] = i
			lits := append(append([]sat.Lit(nil), c...), sel.Neg())
			s.AddClause(lits...)
		}
		res.Iterations++
		status := s.Solve(selectors...)
		if status == sat.Sat {
			model := s.Model()
			res.Model = append([]bool(nil), model[:origVars+1]...)
			res.Cost = cost
			res.SatisfiedSoft = make([]bool, len(p.soft))
			for i, c := range p.soft {
				res.SatisfiedSoft[i] = clauseSatisfied(c, model)
			}
			return res
		}
		// Hard clauses alone unsatisfiable?
		if s.Solve() == sat.Unsat {
			res.Feasible = false
			return res
		}
		// Extract a core of soft-clause selectors and relax.
		core := s.Core(selectors)
		if len(core) == 0 {
			// Should not happen: hard clauses are satisfiable but the
			// empty assumption set is unsat.
			panic("maxsat: empty core with satisfiable hard clauses")
		}
		cost++
		// Add one fresh blocking variable per core clause, and an
		// at-most-one (pairwise) constraint over them as hard clauses.
		blocking := make([]sat.Lit, 0, len(core))
		for _, sel := range core {
			i, ok := selToIdx[sel]
			if !ok {
				panic(fmt.Sprintf("maxsat: unknown selector %d in core", sel))
			}
			b := sat.Lit(newVar())
			blocking = append(blocking, b)
			soft[i] = append(soft[i], b)
		}
		for i := 0; i < len(blocking); i++ {
			for j := i + 1; j < len(blocking); j++ {
				hard = append(hard, Clause{blocking[i].Neg(), blocking[j].Neg()})
			}
		}
		// Exactly-one is the classic formulation; at-least-one is implied
		// by the core being genuinely unsatisfiable, but adding it prunes
		// search.
		hard = append(hard, Clause(append([]sat.Lit(nil), blocking...)))
	}
}

func clauseSatisfied(c Clause, model []bool) bool {
	for _, l := range c {
		v := l.Var()
		if v < len(model) && model[v] == l.Sign() {
			return true
		}
	}
	return false
}
