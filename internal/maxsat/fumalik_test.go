package maxsat

import (
	"math/rand"
	"testing"

	"repro/internal/sat"
)

func TestAllSoftSatisfiable(t *testing.T) {
	p := NewProblem()
	a, b := sat.Lit(p.NewVar()), sat.Lit(p.NewVar())
	p.AddHard(a, b)
	p.AddSoft(a)
	p.AddSoft(b)
	res := Solve(p)
	if !res.Feasible || res.Cost != 0 {
		t.Fatalf("cost = %d feasible = %v, want 0/true", res.Cost, res.Feasible)
	}
	for i, ok := range res.SatisfiedSoft {
		if !ok {
			t.Fatalf("soft %d unsatisfied in optimum", i)
		}
	}
}

func TestOneMustFall(t *testing.T) {
	p := NewProblem()
	a := sat.Lit(p.NewVar())
	p.AddSoft(a)
	p.AddSoft(a.Neg())
	res := Solve(p)
	if !res.Feasible || res.Cost != 1 {
		t.Fatalf("cost = %d, want 1", res.Cost)
	}
	n := 0
	for _, ok := range res.SatisfiedSoft {
		if ok {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("satisfied %d soft clauses, want exactly 1", n)
	}
}

func TestInfeasibleHard(t *testing.T) {
	p := NewProblem()
	a := sat.Lit(p.NewVar())
	p.AddHard(a)
	p.AddHard(a.Neg())
	p.AddSoft(a)
	res := Solve(p)
	if res.Feasible {
		t.Fatal("contradictory hard clauses should be infeasible")
	}
}

func TestHardDominatesSoft(t *testing.T) {
	p := NewProblem()
	a, b, c := sat.Lit(p.NewVar()), sat.Lit(p.NewVar()), sat.Lit(p.NewVar())
	p.AddHard(a.Neg()) // a must be false
	p.AddSoft(a)       // impossible
	p.AddSoft(b)
	p.AddSoft(c)
	res := Solve(p)
	if !res.Feasible || res.Cost != 1 {
		t.Fatalf("cost = %d, want 1", res.Cost)
	}
	if res.SatisfiedSoft[0] {
		t.Fatal("soft clause contradicting hard must be falsified")
	}
	if !res.SatisfiedSoft[1] || !res.SatisfiedSoft[2] {
		t.Fatal("free soft clauses should be satisfied")
	}
}

func TestProblemNotMutated(t *testing.T) {
	p := NewProblem()
	a := sat.Lit(p.NewVar())
	p.AddSoft(a)
	p.AddSoft(a.Neg())
	nHard, nSoft, nVars := len(p.hard), len(p.soft), p.nVars
	_ = Solve(p)
	if len(p.hard) != nHard || len(p.soft) != nSoft || p.nVars != nVars {
		t.Fatalf("Solve mutated problem: hard %d->%d soft %d->%d vars %d->%d",
			nHard, len(p.hard), nSoft, len(p.soft), nVars, p.nVars)
	}
	// Solving twice gives the same cost.
	r1, r2 := Solve(p), Solve(p)
	if r1.Cost != r2.Cost {
		t.Fatalf("non-deterministic cost: %d vs %d", r1.Cost, r2.Cost)
	}
}

// TestAgainstBruteForce compares Fu-Malik's optimum against exhaustive
// search on random small instances.
func TestAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 120; trial++ {
		nVars := 2 + rng.Intn(6)
		p := NewProblem()
		for v := 0; v < nVars; v++ {
			p.NewVar()
		}
		randClause := func() Clause {
			k := 1 + rng.Intn(3)
			cl := make(Clause, k)
			for j := range cl {
				v := 1 + rng.Intn(nVars)
				if rng.Intn(2) == 0 {
					cl[j] = sat.Lit(v)
				} else {
					cl[j] = sat.Lit(-v)
				}
			}
			return cl
		}
		var hard, soft []Clause
		for i := 0; i < rng.Intn(4); i++ {
			cl := randClause()
			hard = append(hard, cl)
			p.AddHard(cl...)
		}
		for i := 0; i < 1+rng.Intn(8); i++ {
			cl := randClause()
			soft = append(soft, cl)
			p.AddSoft(cl...)
		}
		// Brute force optimum.
		bestCost := -1
		for m := 0; m < 1<<nVars; m++ {
			model := make([]bool, nVars+1)
			for v := 1; v <= nVars; v++ {
				model[v] = (m>>(v-1))&1 == 1
			}
			feasible := true
			for _, cl := range hard {
				if !clauseSatisfied(cl, model) {
					feasible = false
					break
				}
			}
			if !feasible {
				continue
			}
			cost := 0
			for _, cl := range soft {
				if !clauseSatisfied(cl, model) {
					cost++
				}
			}
			if bestCost == -1 || cost < bestCost {
				bestCost = cost
			}
		}
		res := Solve(p)
		if bestCost == -1 {
			if res.Feasible {
				t.Fatalf("trial %d: should be infeasible", trial)
			}
			continue
		}
		if !res.Feasible {
			t.Fatalf("trial %d: should be feasible", trial)
		}
		if res.Cost != bestCost {
			t.Fatalf("trial %d: cost = %d, brute force = %d\nhard: %v\nsoft: %v",
				trial, res.Cost, bestCost, hard, soft)
		}
		// Verify the model: all hard satisfied, falsified soft count == Cost.
		for _, cl := range hard {
			if !clauseSatisfied(cl, res.Model) {
				t.Fatalf("trial %d: model violates hard clause %v", trial, cl)
			}
		}
		cost := 0
		for i, cl := range soft {
			sat := clauseSatisfied(cl, res.Model)
			if sat != res.SatisfiedSoft[i] {
				t.Fatalf("trial %d: SatisfiedSoft[%d] inconsistent with model", trial, i)
			}
			if !sat {
				cost++
			}
		}
		if cost != res.Cost {
			t.Fatalf("trial %d: model cost %d != reported %d", trial, cost, res.Cost)
		}
	}
}

// TestTreatyShapedInstance exercises the exact encoding shape the treaty
// optimizer produces: selector variables with hard at-most constraints.
func TestTreatyShapedInstance(t *testing.T) {
	// Selectors s1..s4 each "choose" a bound; hard constraint forbids
	// choosing both s1 and s2, and both s3 and s4. Optimum satisfies 2.
	p := NewProblem()
	s1, s2 := sat.Lit(p.NewVar()), sat.Lit(p.NewVar())
	s3, s4 := sat.Lit(p.NewVar()), sat.Lit(p.NewVar())
	p.AddHard(s1.Neg(), s2.Neg())
	p.AddHard(s3.Neg(), s4.Neg())
	for _, s := range []sat.Lit{s1, s2, s3, s4} {
		p.AddSoft(s)
	}
	res := Solve(p)
	if res.Cost != 2 {
		t.Fatalf("cost = %d, want 2", res.Cost)
	}
}
