package symtab

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/lang"
)

// Canon is the name-insensitive structural fingerprint of a (lowered)
// transaction. Two transactions canonicalize to the same Key exactly
// when they differ only in their transaction name, parameter names,
// temporary names, and database object names: parameters are encoded by
// declaration position, temporaries and objects by first occurrence in
// a fixed depth-first walk of the body. Objs records the object names
// in that first-occurrence order, so two transactions with equal Keys
// are isomorphic under the positional object mapping
// Objs_a[i] ↔ Objs_b[i] (and likewise for parameters by position).
//
// The Key is the exact canonical encoding, not a digest: equal keys
// imply isomorphic structure with no collision risk, and map lookups
// hash it internally. The artifact cache (internal/workload) keys
// shared symbolic tables and guard preprocessing on it.
type Canon struct {
	Key  string
	Objs []lang.ObjID
}

// Canonicalize fingerprints t. The transaction should already be
// lowered (no L++ arrays); array forms are still encoded structurally
// so the function is total, with array names canonicalized by
// declaration position.
func Canonicalize(t *lang.Transaction) Canon {
	e := &canonEnc{
		params: make(map[string]int, len(t.Params)),
		temps:  make(map[string]int),
		objs:   make(map[lang.ObjID]int),
		arrays: make(map[string]int, len(t.Arrays)),
	}
	for i, p := range t.Params {
		e.params[p] = i
	}
	e.b.WriteString("P")
	e.b.WriteString(strconv.Itoa(len(t.Params)))
	for _, a := range t.Arrays {
		e.arrays[a.Name] = len(e.arrays)
		fmt.Fprintf(&e.b, "|A%dx%d", a.Len, a.Cols)
	}
	e.b.WriteString("|")
	e.cmd(t.Body)
	return Canon{Key: e.b.String(), Objs: e.order}
}

type canonEnc struct {
	b      strings.Builder
	params map[string]int
	temps  map[string]int
	objs   map[lang.ObjID]int
	arrays map[string]int
	order  []lang.ObjID
}

func (e *canonEnc) obj(o lang.ObjID) {
	idx, ok := e.objs[o]
	if !ok {
		idx = len(e.objs)
		e.objs[o] = idx
		e.order = append(e.order, o)
	}
	e.b.WriteString(strconv.Itoa(idx))
}

func (e *canonEnc) temp(name string) {
	idx, ok := e.temps[name]
	if !ok {
		idx = len(e.temps)
		e.temps[name] = idx
	}
	e.b.WriteString(strconv.Itoa(idx))
}

func (e *canonEnc) expr(x lang.Expr) {
	switch v := x.(type) {
	case lang.IntLit:
		e.b.WriteString("i")
		e.b.WriteString(strconv.FormatInt(v.Value, 10))
	case lang.Param:
		e.b.WriteString("p")
		e.b.WriteString(strconv.Itoa(e.params[v.Name]))
	case lang.TempVar:
		e.b.WriteString("t")
		e.temp(v.Name)
	case lang.Read:
		e.b.WriteString("r")
		e.obj(v.Obj)
	case lang.ArrayRead:
		e.b.WriteString("R")
		e.b.WriteString(strconv.Itoa(e.arrays[v.Array]))
		e.b.WriteString("(")
		e.expr(v.Index)
		e.b.WriteString(")")
	case lang.Neg:
		e.b.WriteString("n(")
		e.expr(v.E)
		e.b.WriteString(")")
	case lang.Bin:
		e.b.WriteString("b")
		e.b.WriteString(strconv.Itoa(int(v.Op)))
		e.b.WriteString("(")
		e.expr(v.L)
		e.b.WriteString(",")
		e.expr(v.R)
		e.b.WriteString(")")
	default:
		// Future node kinds must not silently alias distinct structures:
		// fall back to the node's own rendering (name-sensitive, so it can
		// only split families, never merge them incorrectly).
		e.b.WriteString(x.String())
	}
}

func (e *canonEnc) boolExpr(x lang.BoolExpr) {
	switch v := x.(type) {
	case lang.BoolLit:
		if v.Value {
			e.b.WriteString("T")
		} else {
			e.b.WriteString("F")
		}
	case lang.Cmp:
		e.b.WriteString("c")
		e.b.WriteString(strconv.Itoa(int(v.Op)))
		e.b.WriteString("(")
		e.expr(v.L)
		e.b.WriteString(",")
		e.expr(v.R)
		e.b.WriteString(")")
	case lang.And:
		e.b.WriteString("&(")
		e.boolExpr(v.L)
		e.b.WriteString(",")
		e.boolExpr(v.R)
		e.b.WriteString(")")
	case lang.Or:
		e.b.WriteString("|(")
		e.boolExpr(v.L)
		e.b.WriteString(",")
		e.boolExpr(v.R)
		e.b.WriteString(")")
	case lang.Not:
		e.b.WriteString("!(")
		e.boolExpr(v.B)
		e.b.WriteString(")")
	default:
		e.b.WriteString(x.String())
	}
}

func (e *canonEnc) cmd(c lang.Cmd) {
	switch v := c.(type) {
	case lang.Skip:
		e.b.WriteString("s;")
	case lang.Assign:
		e.b.WriteString("a")
		e.temp(v.Var)
		e.b.WriteString("=")
		e.expr(v.E)
		e.b.WriteString(";")
	case lang.Seq:
		e.cmd(v.First)
		e.cmd(v.Rest)
	case lang.If:
		e.b.WriteString("I(")
		e.boolExpr(v.Cond)
		e.b.WriteString("){")
		e.cmd(v.Then)
		e.b.WriteString("}{")
		e.cmd(v.Else)
		e.b.WriteString("}")
	case lang.WriteCmd:
		e.b.WriteString("w")
		e.obj(v.Obj)
		e.b.WriteString("=")
		e.expr(v.E)
		e.b.WriteString(";")
	case lang.ArrayWrite:
		e.b.WriteString("W")
		e.b.WriteString(strconv.Itoa(e.arrays[v.Array]))
		e.b.WriteString("(")
		e.expr(v.Index)
		e.b.WriteString(")=")
		e.expr(v.E)
		e.b.WriteString(";")
	case lang.PrintCmd:
		e.b.WriteString("P(")
		e.expr(v.E)
		e.b.WriteString(");")
	default:
		e.b.WriteString(c.String())
	}
}
