package symtab

import (
	"math/rand"
	"testing"

	"repro/internal/lang"
	"repro/internal/logic"
)

const t1Src = `
transaction T1() {
	xh := read(x);
	yh := read(y);
	if (xh + yh < 10) then
		write(x = xh + 1)
	else
		write(x = xh - 1)
}`

const t2Src = `
transaction T2() {
	xh := read(x);
	yh := read(y);
	if (xh + yh < 20) then
		write(y = yh + 1)
	else
		write(y = yh - 1)
}`

// TestT1TableMatchesFigure4a: the table for T1 must have exactly two rows
// whose guards partition on x + y < 10 (Figure 4a).
func TestT1TableMatchesFigure4a(t *testing.T) {
	tbl, err := Build(lang.MustParse(t1Src))
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d, want 2\n%s", len(tbl.Rows), tbl)
	}
	// No temporaries may survive in guards.
	for i, r := range tbl.Rows {
		vars := map[logic.Var]bool{}
		logic.FormulaVars(r.Guard, vars)
		for v := range vars {
			if v.Kind == logic.TempVar {
				t.Fatalf("row %d guard retains temporary %s: %s", i, v, r.Guard)
			}
		}
	}
	// Guards must partition: exactly one row matches any database.
	for x := int64(-5); x <= 15; x++ {
		for y := int64(-5); y <= 15; y++ {
			db := lang.Database{"x": x, "y": y}
			n := 0
			for _, r := range tbl.Rows {
				ok, err := logic.EvalFormula(r.Guard, logic.DBBinding(db, nil, nil))
				if err != nil {
					t.Fatal(err)
				}
				if ok {
					n++
				}
			}
			if n != 1 {
				t.Fatalf("(%d,%d): %d guards hold, want exactly 1", x, y, n)
			}
		}
	}
}

// TestResidualEquivalence is the defining property of symbolic tables:
// Eval(T, D) == Eval(residual of matching row, D).
func TestResidualEquivalence(t *testing.T) {
	for _, src := range []string{t1Src, t2Src} {
		txn := lang.MustParse(src)
		tbl, err := Build(txn)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(3))
		for trial := 0; trial < 300; trial++ {
			db := lang.Database{
				"x": int64(rng.Intn(41) - 10),
				"y": int64(rng.Intn(41) - 10),
			}
			row, err := tbl.MatchRow(db, nil)
			if err != nil {
				t.Fatalf("%s: %v", txn.Name, err)
			}
			want, err := lang.Eval(txn, db)
			if err != nil {
				t.Fatal(err)
			}
			got, err := tbl.EvalResidual(row, db)
			if err != nil {
				t.Fatal(err)
			}
			if !want.DB.Equal(got.DB) {
				t.Fatalf("%s on %v: residual DB %v != %v", txn.Name, db, got.DB, want.DB)
			}
			if !lang.LogsEqual(want.Log, got.Log) {
				t.Fatalf("%s on %v: logs differ", txn.Name, db)
			}
		}
	}
}

// TestJointTableMatchesFigure4c: the joint table for {T1, T2} has three
// satisfiable rows (x+y<10, 10<=x+y<20, x+y>=20) after pruning.
func TestJointTableMatchesFigure4c(t *testing.T) {
	tbl1, err := Build(lang.MustParse(t1Src))
	if err != nil {
		t.Fatal(err)
	}
	tbl2, err := Build(lang.MustParse(t2Src))
	if err != nil {
		t.Fatal(err)
	}
	jt := Join(tbl1, tbl2)
	if jt.Size() != 3 {
		t.Fatalf("joint rows = %d, want 3 (pruned cross product)", jt.Size())
	}
	// The paper's example: x=10, y=13 selects the third region x+y>=20.
	row, err := jt.MatchRow(lang.Database{"x": 10, "y": 13}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Verify the matched row's guard excludes both increments.
	db := lang.Database{"x": 10, "y": 13}
	res1, err := lang.Eval(&lang.Transaction{Name: "r", Body: jt.Rows[row].Residuals[0]}, db)
	if err != nil {
		t.Fatal(err)
	}
	if res1.DB.Get("x") != 9 {
		t.Fatalf("T1 residual on region 3 should decrement x: got %d", res1.DB.Get("x"))
	}
	res2, err := lang.Eval(&lang.Transaction{Name: "r", Body: jt.Rows[row].Residuals[1]}, db)
	if err != nil {
		t.Fatal(err)
	}
	if res2.DB.Get("y") != 12 {
		t.Fatalf("T2 residual on region 3 should decrement y (10+13 >= 20): got %d", res2.DB.Get("y"))
	}
}

// TestJointResidualEquivalence: each residual of the matching joint row
// behaves like its transaction.
func TestJointResidualEquivalence(t *testing.T) {
	t1 := lang.MustParse(t1Src)
	t2 := lang.MustParse(t2Src)
	tbl1, _ := Build(t1)
	tbl2, _ := Build(t2)
	jt := Join(tbl1, tbl2)
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		db := lang.Database{
			"x": int64(rng.Intn(61) - 20),
			"y": int64(rng.Intn(61) - 20),
		}
		row, err := jt.MatchRow(db, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i, txn := range []*lang.Transaction{t1, t2} {
			want, _ := lang.Eval(txn, db)
			got, err := lang.Eval(&lang.Transaction{Name: "r", Body: jt.Rows[row].Residuals[i]}, db)
			if err != nil {
				t.Fatal(err)
			}
			if !want.DB.Equal(got.DB) || !lang.LogsEqual(want.Log, got.Log) {
				t.Fatalf("trial %d txn %d: joint residual mismatch on %v", trial, i, db)
			}
		}
	}
}

// TestParameterizedTable: parameters are pushed into guards (Section 5.1).
func TestParameterizedTable(t *testing.T) {
	txn := lang.MustParse(`
transaction Order(qty) {
	s := read(stock);
	if (s - qty >= 0) then
		write(stock = s - qty)
	else
		print(0)
}`)
	tbl, err := Build(txn)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(tbl.Rows))
	}
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		db := lang.Database{"stock": int64(rng.Intn(20))}
		qty := int64(rng.Intn(10))
		params := map[string]int64{"qty": qty}
		row, err := tbl.MatchRow(db, params)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := lang.Eval(txn, db, qty)
		got, err := tbl.EvalResidual(row, db, qty)
		if err != nil {
			t.Fatal(err)
		}
		if !want.DB.Equal(got.DB) || !lang.LogsEqual(want.Log, got.Log) {
			t.Fatalf("trial %d: parameterized residual mismatch", trial)
		}
	}
}

// TestNestedConditionals: 2 levels of nesting yield up to 4 paths.
func TestNestedConditionals(t *testing.T) {
	txn := lang.MustParse(`
transaction T() {
	a := read(x);
	b := read(y);
	if (a < 0) then {
		if (b < 0) then print(1) else print(2)
	} else {
		if (b < 0) then print(3) else print(4)
	}
}`)
	tbl, err := Build(txn)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(tbl.Rows))
	}
	for _, db := range []lang.Database{
		{"x": -1, "y": -1}, {"x": -1, "y": 1}, {"x": 1, "y": -1}, {"x": 1, "y": 1},
	} {
		row, err := tbl.MatchRow(db, nil)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := lang.Eval(txn, db)
		got, _ := tbl.EvalResidual(row, db)
		if !lang.LogsEqual(want.Log, got.Log) {
			t.Fatalf("db %v: logs %v != %v", db, got.Log, want.Log)
		}
	}
}

// TestPruneUnreachablePath: contradictory nested conditions are removed.
func TestPruneUnreachablePath(t *testing.T) {
	txn := lang.MustParse(`
transaction T() {
	a := read(x);
	if (a < 0) then {
		if (a > 5) then print(1) else print(2)
	} else
		print(3)
}`)
	tbl, err := Build(txn)
	if err != nil {
		t.Fatal(err)
	}
	// Path a<0 && a>5 is infeasible; 2 feasible paths remain.
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d, want 2 after pruning\n%s", len(tbl.Rows), tbl)
	}
}

// TestWriteReadInteraction: a write followed by a read of the same object
// must see the written value in guard substitution (rule 6 ordering).
func TestWriteReadInteraction(t *testing.T) {
	txn := lang.MustParse(`
transaction T() {
	write(x = 5);
	v := read(x);
	if (v < 10) then print(1) else print(2)
}`)
	tbl, err := Build(txn)
	if err != nil {
		t.Fatal(err)
	}
	// After substitution the guard of the first path becomes 5 < 10 which
	// is always true; the else path is infeasible and pruned.
	if len(tbl.Rows) != 1 {
		t.Fatalf("rows = %d, want 1\n%s", len(tbl.Rows), tbl)
	}
	res, err := tbl.EvalResidual(0, lang.Database{"x": 100})
	if err != nil {
		t.Fatal(err)
	}
	if !lang.LogsEqual(res.Log, []int64{1}) {
		t.Fatalf("log = %v, want [1]", res.Log)
	}
}

// TestLppTableViaLowering: symbolic tables work on L++ by lowering.
func TestLppTableViaLowering(t *testing.T) {
	txn := lang.MustParse(`
transaction T(i) {
	array a(3);
	v := a(i);
	if (v > 0) then write(a(i) = v - 1) else skip
}`)
	tbl, err := Build(txn)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) == 0 {
		t.Fatal("empty table")
	}
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 150; trial++ {
		db := lang.Database{}
		for i := int64(0); i < 3; i++ {
			db[lang.ArrayObj("a", i)] = int64(rng.Intn(5) - 1)
		}
		i := int64(rng.Intn(3))
		params := map[string]int64{"i": i}
		row, err := tbl.MatchRow(db, params)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := lang.Eval(txn, db, i)
		got, err := tbl.EvalResidual(row, db, i)
		if err != nil {
			t.Fatal(err)
		}
		if !want.DB.Equal(got.DB) {
			t.Fatalf("trial %d: lowered residual mismatch on %v i=%d:\n got %v\nwant %v",
				trial, db, i, got.DB, want.DB)
		}
	}
}

func TestFactorGroups(t *testing.T) {
	t1, _ := Build(lang.MustParse(t1Src)) // touches x, y
	t2, _ := Build(lang.MustParse(t2Src)) // touches x, y
	t3, _ := Build(lang.MustParse(`transaction T3() { // touches z only
		v := read(z); write(z = v + 1) }`))
	groups := FactorGroups([]*Table{t1, t2, t3})
	if len(groups) != 2 {
		t.Fatalf("groups = %d, want 2", len(groups))
	}
	if len(groups[0].Members) != 2 || len(groups[1].Members) != 1 {
		t.Fatalf("group sizes = %d/%d, want 2/1",
			len(groups[0].Members), len(groups[1].Members))
	}
}

// TestFactorizedJoinSizeAdvantage: factorized joint tables stay small.
func TestFactorizedJoinSizeAdvantage(t *testing.T) {
	// 4 transactions on 4 disjoint objects, each with a 2-row table.
	var tables []*Table
	for _, obj := range []string{"a", "b", "c", "d"} {
		txn := lang.MustParse(`
transaction T_` + obj + `() {
	v := read(` + obj + `);
	if (v > 0) then write(` + obj + ` = v - 1) else write(` + obj + ` = 100)
}`)
		tbl, err := Build(txn)
		if err != nil {
			t.Fatal(err)
		}
		tables = append(tables, tbl)
	}
	mono := Join(tables...)
	if mono.Size() != 16 {
		t.Fatalf("monolithic join = %d rows, want 16", mono.Size())
	}
	groups := FactorGroups(tables)
	if len(groups) != 4 {
		t.Fatalf("groups = %d, want 4", len(groups))
	}
	total := 0
	for _, g := range groups {
		total += Join(g.Tables...).Size()
	}
	if total != 8 {
		t.Fatalf("factorized total = %d rows, want 8", total)
	}
}

func TestMatchRowNoMatch(t *testing.T) {
	// A table with a single false guard after manual surgery.
	tbl := &Table{
		Txn:  &lang.Transaction{Name: "X"},
		Rows: []Row{{Guard: logic.FalseF{}, Residual: lang.Skip{}}},
	}
	if _, err := tbl.MatchRow(lang.Database{}, nil); err == nil {
		t.Fatal("expected no-match error")
	}
}
