package symtab

import (
	"fmt"
	"testing"

	"repro/internal/lang"
)

// BenchmarkBuildSimple measures symbolic-table construction for the
// paper's T1 (two paths).
func BenchmarkBuildSimple(b *testing.B) {
	txn := lang.MustParse(`
transaction T1() {
	xh := read(x);
	yh := read(y);
	if (xh + yh < 10) then write(x = xh + 1) else write(x = xh - 1)
}`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(txn); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBuildLoweredArray measures construction over a lowered L++
// array access (path blowup with pruning).
func BenchmarkBuildLoweredArray(b *testing.B) {
	txn := lang.MustParse(`
transaction T(i) {
	array a(8);
	v := a(i);
	if (v > 0) then write(a(i) = v - 1) else skip
}`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(txn); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkJoinMonolithicVsFactorized quantifies the Section 5.1
// compression: joining K independent 2-row tables monolithically is
// exponential; factor groups keep it linear.
func BenchmarkJoinMonolithicVsFactorized(b *testing.B) {
	makeTables := func(k int) []*Table {
		var tables []*Table
		for i := 0; i < k; i++ {
			obj := fmt.Sprintf("o%d", i)
			txn := lang.MustParse(`
transaction T` + obj + `() {
	v := read(` + obj + `);
	if (v > 0) then write(` + obj + ` = v - 1) else write(` + obj + ` = 10)
}`)
			tbl, err := Build(txn)
			if err != nil {
				b.Fatal(err)
			}
			tables = append(tables, tbl)
		}
		return tables
	}
	for _, k := range []int{4, 8} {
		tables := makeTables(k)
		b.Run(fmt.Sprintf("monolithic-%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				jt := Join(tables...)
				if jt.Size() != 1<<k {
					b.Fatalf("size = %d", jt.Size())
				}
			}
		})
		b.Run(fmt.Sprintf("factorized-%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				total := 0
				for _, g := range FactorGroups(tables) {
					total += Join(g.Tables...).Size()
				}
				if total != 2*k {
					b.Fatalf("total = %d", total)
				}
			}
		})
	}
}

// BenchmarkMatchRow measures row lookup, the hot operation at treaty
// generation time.
func BenchmarkMatchRow(b *testing.B) {
	tbl, err := Build(lang.MustParse(`
transaction T() {
	xh := read(x);
	yh := read(y);
	if (xh + yh < 10) then write(x = xh + 1) else write(x = xh - 1)
}`))
	if err != nil {
		b.Fatal(err)
	}
	db := lang.Database{"x": 10, "y": 13}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tbl.MatchRow(db, nil); err != nil {
			b.Fatal(err)
		}
	}
}
