package symtab

import (
	"math/rand"
	"testing"

	"repro/internal/lang"
	"repro/internal/logic"
)

// This file fuzzes the Figure 6 analysis with randomly generated L
// programs: for every generated transaction and every random database,
// exactly one guard must hold and the matched residual must be
// observationally equivalent to the source transaction.

type progGen struct {
	rng   *rand.Rand
	temps []string
	objs  []lang.ObjID
	depth int
}

func (g *progGen) expr() lang.Expr {
	switch g.rng.Intn(6) {
	case 0:
		return lang.IntLit{Value: int64(g.rng.Intn(21) - 10)}
	case 1:
		return lang.Read{Obj: g.objs[g.rng.Intn(len(g.objs))]}
	case 2:
		if len(g.temps) > 0 {
			return lang.TempVar{Name: g.temps[g.rng.Intn(len(g.temps))]}
		}
		return lang.IntLit{Value: 1}
	case 3:
		return lang.Bin{Op: lang.OpAdd, L: g.expr(), R: g.expr()}
	case 4:
		return lang.Bin{Op: lang.OpSub, L: g.expr(), R: g.expr()}
	default:
		return lang.Neg{E: g.expr()}
	}
}

func (g *progGen) boolExpr() lang.BoolExpr {
	ops := []lang.CmpOp{lang.CmpLT, lang.CmpLE, lang.CmpEQ, lang.CmpGT, lang.CmpGE}
	b := lang.BoolExpr(lang.Cmp{Op: ops[g.rng.Intn(len(ops))], L: g.expr(), R: g.expr()})
	if g.rng.Intn(4) == 0 {
		b = lang.Not{B: b}
	}
	if g.rng.Intn(4) == 0 {
		b = lang.And{L: b, R: lang.Cmp{Op: lang.CmpLE, L: g.expr(), R: g.expr()}}
	}
	return b
}

func (g *progGen) cmd(budget int) lang.Cmd {
	if budget <= 0 {
		return lang.Skip{}
	}
	switch g.rng.Intn(6) {
	case 0:
		name := []string{"t0", "t1", "t2"}[g.rng.Intn(3)]
		c := lang.Assign{Var: name, E: g.expr()}
		g.temps = appendUnique(g.temps, name)
		return c
	case 1:
		return lang.WriteCmd{Obj: g.objs[g.rng.Intn(len(g.objs))], E: g.expr()}
	case 2:
		return lang.PrintCmd{E: g.expr()}
	case 3:
		if g.depth >= 3 {
			return lang.Skip{}
		}
		g.depth++
		// Branch temp bindings may differ: snapshot and merge
		// conservatively (only temps defined before the branch are safe
		// to use after it; using the pre-branch set keeps programs
		// well-defined).
		pre := append([]string(nil), g.temps...)
		thenC := g.cmd(budget - 1)
		g.temps = append([]string(nil), pre...)
		elseC := g.cmd(budget - 1)
		g.temps = pre
		g.depth--
		return lang.If{Cond: g.boolExpr(), Then: thenC, Else: elseC}
	default:
		return lang.Seq{First: g.cmd(budget / 2), Rest: g.cmd(budget - budget/2 - 1)}
	}
}

func appendUnique(xs []string, x string) []string {
	for _, v := range xs {
		if v == x {
			return xs
		}
	}
	return append(xs, x)
}

// TestFuzzResidualEquivalence generates random L programs and checks the
// defining symbolic-table property against direct evaluation.
func TestFuzzResidualEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	objs := []lang.ObjID{"x", "y", "z"}
	for trial := 0; trial < 250; trial++ {
		g := &progGen{rng: rng, objs: objs}
		txn := &lang.Transaction{Name: "F", Body: g.cmd(8)}
		tbl, err := Build(txn)
		if err != nil {
			t.Fatalf("trial %d: Build: %v\nprogram: %s", trial, err, txn.Body)
		}
		for probe := 0; probe < 20; probe++ {
			db := lang.Database{}
			for _, o := range objs {
				db[o] = int64(rng.Intn(31) - 15)
			}
			want, err := lang.Eval(txn, db)
			if err != nil {
				// Programs can reference undefined temps along some paths;
				// skip those databases (the analysis still terminates).
				continue
			}
			// Exactly one guard must hold.
			matches := 0
			matched := -1
			for i, row := range tbl.Rows {
				ok, err := logic.EvalFormula(row.Guard, logic.DBBinding(db, nil, nil))
				if err != nil {
					continue
				}
				if ok {
					matches++
					matched = i
				}
			}
			if matches != 1 {
				t.Fatalf("trial %d: %d guards hold on %v\nprogram: %s\n%s",
					trial, matches, db, txn.Body, tbl)
			}
			got, err := tbl.EvalResidual(matched, db)
			if err != nil {
				t.Fatalf("trial %d: residual eval: %v", trial, err)
			}
			if !want.DB.Equal(got.DB) || !lang.LogsEqual(want.Log, got.Log) {
				t.Fatalf("trial %d: residual mismatch on %v\nprogram: %s\nrow %d: %s\ngot DB %v log %v\nwant DB %v log %v",
					trial, db, txn.Body, matched, tbl.Rows[matched].Guard,
					got.DB, got.Log, want.DB, want.Log)
			}
		}
	}
}
