// Package symtab implements symbolic tables (Sections 2.2-2.3 of the
// Homeostasis paper): for a transaction T, a set of pairs (guard,
// residual) where guard is a first-order formula over database objects and
// parameters, and residual is a partially evaluated transaction that
// behaves exactly like T on every database satisfying the guard.
//
// Tables are constructed by the backward analysis of Figure 6, pruned with
// a linear-arithmetic feasibility check, and combined into joint tables
// for transaction sets via guarded cross product. Joint tables drive
// treaty generation (Section 4).
package symtab

import (
	"fmt"

	"repro/internal/lang"
	"repro/internal/lia"
	"repro/internal/logic"
)

// Row pairs a guard formula with the partially evaluated transaction that
// is equivalent to the analyzed transaction on databases satisfying the
// guard.
type Row struct {
	Guard    logic.Formula
	Residual lang.Cmd
}

// Table is the symbolic table of a single transaction.
type Table struct {
	// Txn is the analyzed transaction (the lowered pure-L form).
	Txn *lang.Transaction
	// Source is the transaction as provided (possibly L++).
	Source *lang.Transaction
	Rows   []Row
}

// Build computes the symbolic table for a transaction. L++ transactions
// are lowered to pure L first (Appendix A). Rows whose guards are
// unsatisfiable linear systems are pruned.
func Build(t *lang.Transaction) (*Table, error) {
	lowered := t
	if len(t.Arrays) > 0 || usesArrays(t.Body) {
		var err error
		lowered, err = lang.Lower(t)
		if err != nil {
			return nil, err
		}
	}
	rows, err := analyze(lowered.Body, []Row{{Guard: logic.TrueF{}, Residual: lang.Skip{}}})
	if err != nil {
		return nil, fmt.Errorf("symtab: analyzing %s: %w", t.Name, err)
	}
	rows = Prune(rows)
	return &Table{Txn: lowered, Source: t, Rows: rows}, nil
}

func usesArrays(c lang.Cmd) bool {
	found := false
	var walkExpr func(e lang.Expr)
	walkExpr = func(e lang.Expr) {
		switch e := e.(type) {
		case lang.ArrayRead:
			found = true
		case lang.Neg:
			walkExpr(e.E)
		case lang.Bin:
			walkExpr(e.L)
			walkExpr(e.R)
		}
	}
	var walkBool func(b lang.BoolExpr)
	walkBool = func(b lang.BoolExpr) {
		switch b := b.(type) {
		case lang.Cmp:
			walkExpr(b.L)
			walkExpr(b.R)
		case lang.And:
			walkBool(b.L)
			walkBool(b.R)
		case lang.Or:
			walkBool(b.L)
			walkBool(b.R)
		case lang.Not:
			walkBool(b.B)
		}
	}
	var walk func(c lang.Cmd)
	walk = func(c lang.Cmd) {
		switch c := c.(type) {
		case lang.ArrayWrite:
			found = true
		case lang.Assign:
			walkExpr(c.E)
		case lang.Seq:
			walk(c.First)
			walk(c.Rest)
		case lang.If:
			walkBool(c.Cond)
			walk(c.Then)
			walk(c.Else)
		case lang.WriteCmd:
			walkExpr(c.E)
		case lang.PrintCmd:
			walkExpr(c.E)
		}
	}
	walk(c)
	return found
}

// analyze implements the Figure 6 rules, processing the command backwards
// against the running table Q.
func analyze(c lang.Cmd, q []Row) ([]Row, error) {
	switch c := c.(type) {
	case lang.Skip:
		// Rule (5).
		return q, nil

	case lang.Seq:
		// Rule (2): [[c1; c2, Q]] = [[c1, [[c2, Q]]]].
		q2, err := analyze(c.Rest, q)
		if err != nil {
			return nil, err
		}
		return analyze(c.First, q2)

	case lang.If:
		// Rule (3). Pruning here (not only at the end) keeps the running
		// table from growing exponentially on programs with long
		// conditional chains, such as lowered L++ array accesses.
		cond, err := logic.FromLangBool(c.Cond)
		if err != nil {
			return nil, err
		}
		thenRows, err := analyze(c.Then, cloneRows(q))
		if err != nil {
			return nil, err
		}
		elseRows, err := analyze(c.Else, cloneRows(q))
		if err != nil {
			return nil, err
		}
		out := make([]Row, 0, len(thenRows)+len(elseRows))
		for _, r := range thenRows {
			out = append(out, Row{Guard: logic.And(cond, r.Guard), Residual: r.Residual})
		}
		negCond := logic.Not(cond)
		for _, r := range elseRows {
			out = append(out, Row{Guard: logic.And(negCond, r.Guard), Residual: r.Residual})
		}
		return Prune(out), nil

	case lang.Assign:
		// Rule (4): guard gets phi{e/x^}, residual gets the assignment
		// prepended.
		e, err := logic.FromLangExpr(c.E)
		if err != nil {
			return nil, err
		}
		sub := map[logic.Var]logic.Expr{logic.Temp(c.Var): e}
		out := make([]Row, len(q))
		for i, r := range q {
			out[i] = Row{
				Guard:    logic.SubstFormula(r.Guard, sub),
				Residual: lang.SeqOf(c, r.Residual),
			}
		}
		return out, nil

	case lang.WriteCmd:
		// Rule (6): guard gets phi{e/x}, residual gets the write prepended.
		e, err := logic.FromLangExpr(c.E)
		if err != nil {
			return nil, err
		}
		sub := map[logic.Var]logic.Expr{logic.Obj(c.Obj): e}
		out := make([]Row, len(q))
		for i, r := range q {
			out[i] = Row{
				Guard:    logic.SubstFormula(r.Guard, sub),
				Residual: lang.SeqOf(c, r.Residual),
			}
		}
		return out, nil

	case lang.PrintCmd:
		// Rule (7): guard unchanged, print prepended.
		out := make([]Row, len(q))
		for i, r := range q {
			out[i] = Row{Guard: r.Guard, Residual: lang.SeqOf(c, r.Residual)}
		}
		return out, nil

	case lang.ArrayWrite:
		return nil, fmt.Errorf("symtab: ArrayWrite in analysis; lower first")
	}
	return nil, fmt.Errorf("symtab: unknown command %T", c)
}

func cloneRows(q []Row) []Row {
	out := make([]Row, len(q))
	copy(out, q)
	return out
}

// Prune constant-folds guards and drops rows whose guards are provably
// unsatisfiable. Guards that are purely conjunctive linear systems are
// checked with Fourier-Motzkin; anything the linear fragment cannot
// express is conservatively kept.
func Prune(rows []Row) []Row {
	out := rows[:0]
	for _, r := range rows {
		folded := logic.Fold(r.Guard)
		if GuardUnsat(folded) {
			continue
		}
		out = append(out, Row{Guard: folded, Residual: r.Residual})
	}
	return out
}

// GuardUnsat reports whether the guard is provably unsatisfiable in the
// linear fragment. Conservative: false when undecidable here. Conjuncts
// outside the linear fragment (e.g. disequalities) are skipped rather
// than blocking the check of the remaining conjuncts.
func GuardUnsat(f logic.Formula) bool {
	if _, ok := f.(logic.FalseF); ok {
		return true
	}
	var cs []lia.Constraint
	for _, conj := range logic.Conjuncts(f) {
		part, err := lia.FormulaToConstraints(conj)
		if err != nil {
			continue // keep checking the linear conjuncts
		}
		cs = append(cs, part...)
	}
	return !lia.Feasible(cs)
}

// MatchRow returns the index of the unique row whose guard is satisfied by
// the database and parameter binding. Returns an error if no row (or, for
// malformed tables, if guard evaluation fails) matches.
func (t *Table) MatchRow(db lang.Database, params map[string]int64) (int, error) {
	b := logic.DBBinding(db, params, nil)
	for i, r := range t.Rows {
		ok, err := logic.EvalFormula(r.Guard, b)
		if err != nil {
			return -1, fmt.Errorf("symtab: evaluating guard of row %d: %w", i, err)
		}
		if ok {
			return i, nil
		}
	}
	return -1, fmt.Errorf("symtab: no row of %s matches the database", t.Txn.Name)
}

// EvalResidual runs the residual of the given row as a transaction with
// the same parameters as the source transaction.
func (t *Table) EvalResidual(row int, db lang.Database, args ...int64) (lang.Result, error) {
	r := &lang.Transaction{
		Name:   fmt.Sprintf("%s#row%d", t.Txn.Name, row),
		Params: t.Txn.Params,
		Body:   t.Rows[row].Residual,
	}
	return lang.Eval(r, db, args...)
}

// String renders the table like Figure 4 of the paper.
func (t *Table) String() string {
	out := fmt.Sprintf("symbolic table for %s:\n", t.Txn.Name)
	for _, r := range t.Rows {
		out += fmt.Sprintf("  %s  |  %s\n", r.Guard, r.Residual)
	}
	return out
}

// JointRow is a row of a joint symbolic table for a transaction set: one
// shared guard and one residual per transaction (Section 2.2).
type JointRow struct {
	Guard     logic.Formula
	Residuals []lang.Cmd
}

// JointTable is a symbolic table for a set of K transactions: a K+1-ary
// relation of guards and residuals.
type JointTable struct {
	Txns []*lang.Transaction
	Rows []JointRow
}

// Join builds the joint table of several per-transaction tables via cross
// product, conjoining guards and pruning unsatisfiable combinations.
func Join(tables ...*Table) *JointTable {
	jt := &JointTable{}
	for _, t := range tables {
		jt.Txns = append(jt.Txns, t.Txn)
	}
	rows := []JointRow{{Guard: logic.TrueF{}}}
	for _, t := range tables {
		var next []JointRow
		for _, jr := range rows {
			for _, r := range t.Rows {
				guard := logic.And(jr.Guard, r.Guard)
				if GuardUnsat(guard) {
					continue
				}
				residuals := make([]lang.Cmd, len(jr.Residuals), len(jr.Residuals)+1)
				copy(residuals, jr.Residuals)
				next = append(next, JointRow{
					Guard:     guard,
					Residuals: append(residuals, r.Residual),
				})
			}
		}
		rows = next
	}
	jt.Rows = rows
	return jt
}

// MatchRow returns the index of the first row whose guard holds on the
// database under the parameter binding.
func (jt *JointTable) MatchRow(db lang.Database, params map[string]int64) (int, error) {
	b := logic.DBBinding(db, params, nil)
	for i, r := range jt.Rows {
		ok, err := logic.EvalFormula(r.Guard, b)
		if err != nil {
			return -1, fmt.Errorf("symtab: joint guard %d: %w", i, err)
		}
		if ok {
			return i, nil
		}
	}
	return -1, fmt.Errorf("symtab: no joint row matches the database")
}

// Size returns the number of rows.
func (jt *JointTable) Size() int { return len(jt.Rows) }

// Group is a set of transactions whose footprints overlap; independent
// groups can be analyzed and governed by treaties separately, which is the
// factorized encoding the paper's analyzer uses for compression
// (Section 5.1, "points of independence").
type Group struct {
	// Indices of the member transactions in the input order.
	Members []int
	Tables  []*Table
}

// FactorGroups partitions the tables into independence groups: two
// transactions belong to the same group when their read/write footprints
// share a database object. The joint table of each group is exponentially
// smaller than the monolithic join.
func FactorGroups(tables []*Table) []Group {
	n := len(tables)
	foot := make([]map[lang.ObjID]bool, n)
	for i, t := range tables {
		foot[i] = make(map[lang.ObjID]bool)
		for obj := range lang.ReadSet(t.Txn.Body, t.Txn.Arrays) {
			foot[i][obj] = true
		}
		for obj := range lang.WriteSet(t.Txn.Body, t.Txn.Arrays) {
			foot[i][obj] = true
		}
	}
	// Union-find over transactions.
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(i int) int {
		if parent[i] != i {
			parent[i] = find(parent[i])
		}
		return parent[i]
	}
	union := func(a, b int) { parent[find(a)] = find(b) }
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			for obj := range foot[i] {
				if foot[j][obj] {
					union(i, j)
					break
				}
			}
		}
	}
	groups := make(map[int]*Group)
	var order []int
	for i := 0; i < n; i++ {
		root := find(i)
		g, ok := groups[root]
		if !ok {
			g = &Group{}
			groups[root] = g
			order = append(order, root)
		}
		g.Members = append(g.Members, i)
		g.Tables = append(g.Tables, tables[i])
	}
	out := make([]Group, 0, len(order))
	for _, root := range order {
		out = append(out, *groups[root])
	}
	return out
}
