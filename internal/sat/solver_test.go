package sat

import (
	"math/rand"
	"testing"
)

func TestTrivial(t *testing.T) {
	s := New()
	if s.Solve() != Sat {
		t.Fatal("empty formula should be SAT")
	}
	s.AddClause() // empty clause
	if s.Solve() != Unsat {
		t.Fatal("empty clause should be UNSAT")
	}
}

func TestUnitPropagation(t *testing.T) {
	s := New()
	a, b, c := Lit(s.NewVar()), Lit(s.NewVar()), Lit(s.NewVar())
	s.AddClause(a)
	s.AddClause(a.Neg(), b)
	s.AddClause(b.Neg(), c)
	if s.Solve() != Sat {
		t.Fatal("chain should be SAT")
	}
	if !s.ModelValue(a) || !s.ModelValue(b) || !s.ModelValue(c) {
		t.Fatalf("model = %v, want all true", s.Model())
	}
}

func TestSimpleUnsat(t *testing.T) {
	s := New()
	a := Lit(s.NewVar())
	s.AddClause(a)
	s.AddClause(a.Neg())
	if s.Solve() != Unsat {
		t.Fatal("a && !a should be UNSAT")
	}
}

func TestTautologyDropped(t *testing.T) {
	s := New()
	a := Lit(s.NewVar())
	s.AddClause(a, a.Neg()) // tautology: no constraint
	s.AddClause(a.Neg())
	if s.Solve() != Sat || s.ModelValue(a) {
		t.Fatal("tautology should not constrain")
	}
}

func TestPigeonhole3x2(t *testing.T) {
	// 3 pigeons, 2 holes: classic small UNSAT instance.
	s := New()
	// p[i][j]: pigeon i in hole j.
	var p [3][2]Lit
	for i := 0; i < 3; i++ {
		for j := 0; j < 2; j++ {
			p[i][j] = Lit(s.NewVar())
		}
	}
	for i := 0; i < 3; i++ {
		s.AddClause(p[i][0], p[i][1]) // each pigeon somewhere
	}
	for j := 0; j < 2; j++ {
		for i1 := 0; i1 < 3; i1++ {
			for i2 := i1 + 1; i2 < 3; i2++ {
				s.AddClause(p[i1][j].Neg(), p[i2][j].Neg())
			}
		}
	}
	if s.Solve() != Unsat {
		t.Fatal("PHP(3,2) should be UNSAT")
	}
}

func TestPigeonhole3x3Sat(t *testing.T) {
	s := New()
	var p [3][3]Lit
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			p[i][j] = Lit(s.NewVar())
		}
	}
	for i := 0; i < 3; i++ {
		s.AddClause(p[i][0], p[i][1], p[i][2])
	}
	for j := 0; j < 3; j++ {
		for i1 := 0; i1 < 3; i1++ {
			for i2 := i1 + 1; i2 < 3; i2++ {
				s.AddClause(p[i1][j].Neg(), p[i2][j].Neg())
			}
		}
	}
	if s.Solve() != Sat {
		t.Fatal("PHP(3,3) should be SAT")
	}
	// Verify model is a valid assignment.
	m := s.Model()
	holeUsed := [3]int{}
	for i := 0; i < 3; i++ {
		found := false
		for j := 0; j < 3; j++ {
			if m[p[i][j].Var()] {
				found = true
				holeUsed[j]++
			}
		}
		if !found {
			t.Fatalf("pigeon %d unplaced", i)
		}
	}
	for j, n := range holeUsed {
		if n > 1 {
			t.Fatalf("hole %d used %d times", j, n)
		}
	}
}

func TestAssumptions(t *testing.T) {
	s := New()
	a, b := Lit(s.NewVar()), Lit(s.NewVar())
	s.AddClause(a.Neg(), b)
	// Under assumption a, b is forced.
	if s.Solve(a) != Sat || !s.ModelValue(b) {
		t.Fatal("a => b should force b under assumption a")
	}
	// Assumptions a and !b conflict with the clause.
	if s.Solve(a, b.Neg()) != Unsat {
		t.Fatal("a && !b should be UNSAT")
	}
	// Solver is reusable after UNSAT.
	if s.Solve(a.Neg(), b.Neg()) != Sat {
		t.Fatal("!a && !b should be SAT")
	}
}

func TestCoreMinimization(t *testing.T) {
	s := New()
	// x1..x5; clause x1 && !x1 conflict only via assumptions s1,s2.
	x := Lit(s.NewVar())
	s1, s2, s3 := Lit(s.NewVar()), Lit(s.NewVar()), Lit(s.NewVar())
	s.AddClause(s1.Neg(), x)       // s1 -> x
	s.AddClause(s2.Neg(), x.Neg()) // s2 -> !x
	// s3 is irrelevant.
	assumptions := []Lit{s3, s1, s2}
	if s.Solve(assumptions...) != Unsat {
		t.Fatal("should be UNSAT under conflicting assumptions")
	}
	core := s.Core(assumptions)
	if len(core) != 2 {
		t.Fatalf("core = %v, want exactly {s1, s2}", core)
	}
	seen := map[Lit]bool{}
	for _, l := range core {
		seen[l] = true
	}
	if !seen[s1] || !seen[s2] || seen[s3] {
		t.Fatalf("core = %v, want {s1, s2}", core)
	}
}

// TestRandom3SATAgainstBruteForce cross-checks the solver against
// exhaustive enumeration on random small instances.
func TestRandom3SATAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		nVars := 3 + rng.Intn(8) // 3..10
		nClauses := 1 + rng.Intn(40)
		clauses := make([][]Lit, nClauses)
		for i := range clauses {
			k := 1 + rng.Intn(3)
			cl := make([]Lit, k)
			for j := range cl {
				v := 1 + rng.Intn(nVars)
				if rng.Intn(2) == 0 {
					cl[j] = Lit(v)
				} else {
					cl[j] = Lit(-v)
				}
			}
			clauses[i] = cl
		}
		// Brute force.
		bruteSat := false
		for m := 0; m < 1<<nVars; m++ {
			ok := true
			for _, cl := range clauses {
				cok := false
				for _, l := range cl {
					bit := (m>>(l.Var()-1))&1 == 1
					if bit == l.Sign() {
						cok = true
						break
					}
				}
				if !cok {
					ok = false
					break
				}
			}
			if ok {
				bruteSat = true
				break
			}
		}
		s := New()
		for v := 0; v < nVars; v++ {
			s.NewVar()
		}
		for _, cl := range clauses {
			s.AddClause(cl...)
		}
		got := s.Solve()
		if bruteSat && got != Sat {
			t.Fatalf("trial %d: solver says %v, brute force says SAT\nclauses: %v", trial, got, clauses)
		}
		if !bruteSat && got != Unsat {
			t.Fatalf("trial %d: solver says %v, brute force says UNSAT\nclauses: %v", trial, got, clauses)
		}
		if got == Sat {
			// Verify the model actually satisfies every clause.
			m := s.Model()
			for _, cl := range clauses {
				ok := false
				for _, l := range cl {
					if m[l.Var()] == l.Sign() {
						ok = true
						break
					}
				}
				if !ok {
					t.Fatalf("trial %d: reported model does not satisfy %v", trial, cl)
				}
			}
		}
	}
}

func TestSolverReuseAcrossCalls(t *testing.T) {
	s := New()
	a, b := Lit(s.NewVar()), Lit(s.NewVar())
	s.AddClause(a, b)
	for i := 0; i < 10; i++ {
		if s.Solve(a.Neg()) != Sat {
			t.Fatalf("iteration %d: expected SAT", i)
		}
		if !s.ModelValue(b) {
			t.Fatalf("iteration %d: b must be true when a assumed false", i)
		}
		if s.Solve(a.Neg(), b.Neg()) != Unsat {
			t.Fatalf("iteration %d: expected UNSAT", i)
		}
	}
}

func TestDuplicateLiterals(t *testing.T) {
	s := New()
	a := Lit(s.NewVar())
	s.AddClause(a, a, a)
	if s.Solve() != Sat || !s.ModelValue(a) {
		t.Fatal("duplicate literals mishandled")
	}
}
