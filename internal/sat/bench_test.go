package sat

import (
	"fmt"
	"math/rand"
	"testing"
)

// BenchmarkPigeonhole measures the solver on the classic UNSAT family
// PHP(n+1, n).
func BenchmarkPigeonhole(b *testing.B) {
	for _, n := range []int{4, 6} {
		b.Run(fmt.Sprintf("php-%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := New()
				lits := make([][]Lit, n+1)
				for p := 0; p <= n; p++ {
					lits[p] = make([]Lit, n)
					for h := 0; h < n; h++ {
						lits[p][h] = Lit(s.NewVar())
					}
					s.AddClause(lits[p]...)
				}
				for h := 0; h < n; h++ {
					for p1 := 0; p1 <= n; p1++ {
						for p2 := p1 + 1; p2 <= n; p2++ {
							s.AddClause(lits[p1][h].Neg(), lits[p2][h].Neg())
						}
					}
				}
				if s.Solve() != Unsat {
					b.Fatal("PHP should be UNSAT")
				}
			}
		})
	}
}

// BenchmarkRandom3SAT measures satisfiable-phase random instances.
func BenchmarkRandom3SAT(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	const nVars, nClauses = 60, 200 // below the phase transition
	clauses := make([][]Lit, nClauses)
	for i := range clauses {
		cl := make([]Lit, 3)
		for j := range cl {
			v := 1 + rng.Intn(nVars)
			if rng.Intn(2) == 0 {
				cl[j] = Lit(v)
			} else {
				cl[j] = Lit(-v)
			}
		}
		clauses[i] = cl
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := New()
		for v := 0; v < nVars; v++ {
			s.NewVar()
		}
		for _, cl := range clauses {
			s.AddClause(cl...)
		}
		s.Solve()
	}
}
