// Package sat implements a CNF boolean satisfiability solver: DPLL search
// with unit propagation over two-watched-literal clause lists, dynamic
// (activity-based) branching, assumption literals, and deletion-minimized
// unsat cores over assumptions.
//
// It is the engine under internal/maxsat's Fu-Malik procedure, which the
// treaty generator (Section 4.2 / Appendix C.2 of the Homeostasis paper)
// uses to pick optimal treaty configurations. The paper used Z3; this is a
// from-scratch stdlib-only replacement sized for the instances Algorithm 1
// produces.
package sat

import "fmt"

// Lit is a literal: +v for variable v, -v for its negation. Variables are
// numbered from 1.
type Lit int

// Var returns the literal's variable.
func (l Lit) Var() int {
	if l < 0 {
		return int(-l)
	}
	return int(l)
}

// Neg returns the complementary literal.
func (l Lit) Neg() Lit { return -l }

// Sign reports whether the literal is positive.
func (l Lit) Sign() bool { return l > 0 }

type clause struct {
	lits []Lit
}

// Status is the result of a Solve call.
type Status int

const (
	// Unknown means Solve has not run or was interrupted.
	Unknown Status = iota
	// Sat means a satisfying assignment was found.
	Sat
	// Unsat means the formula (under the given assumptions) is
	// unsatisfiable.
	Unsat
)

func (s Status) String() string {
	switch s {
	case Sat:
		return "SAT"
	case Unsat:
		return "UNSAT"
	}
	return "UNKNOWN"
}

const (
	valUnassigned int8 = iota
	valTrue
	valFalse
)

// Solver holds a CNF instance and solver state. The zero value is not
// usable; call New.
type Solver struct {
	nVars    int
	clauses  []*clause
	watches  map[Lit][]*clause
	assigns  []int8 // indexed by var, 1-based
	level    []int  // decision level per var
	trail    []Lit
	trailLim []int // trail index at each decision level
	reason   []*clause
	activity []float64
	varInc   float64

	// hasEmpty is set when an empty (always-false) clause was added.
	hasEmpty bool

	// Stats counters.
	Decisions    int64
	Propagations int64
	Conflicts    int64
}

// New returns an empty solver.
func New() *Solver {
	return &Solver{
		watches:  make(map[Lit][]*clause),
		assigns:  []int8{valUnassigned}, // index 0 unused
		level:    []int{0},
		reason:   []*clause{nil},
		activity: []float64{0},
		varInc:   1.0,
	}
}

// NewVar allocates a fresh variable and returns its index (1-based).
func (s *Solver) NewVar() int {
	s.nVars++
	s.assigns = append(s.assigns, valUnassigned)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, nil)
	s.activity = append(s.activity, 0)
	return s.nVars
}

// NVars returns the number of allocated variables.
func (s *Solver) NVars() int { return s.nVars }

// ensureVar grows the variable space to cover v.
func (s *Solver) ensureVar(v int) {
	for s.nVars < v {
		s.NewVar()
	}
}

// AddClause adds a clause. Duplicate literals are removed; tautologies are
// dropped; empty clauses make the instance trivially unsatisfiable.
func (s *Solver) AddClause(lits ...Lit) {
	seen := make(map[Lit]bool, len(lits))
	var out []Lit
	for _, l := range lits {
		if l == 0 {
			panic("sat: zero literal")
		}
		s.ensureVar(l.Var())
		if seen[l.Neg()] {
			return // tautology
		}
		if !seen[l] {
			seen[l] = true
			out = append(out, l)
		}
	}
	if len(out) == 0 {
		s.hasEmpty = true
		return
	}
	c := &clause{lits: out}
	s.clauses = append(s.clauses, c)
	// Watch the first two literals (unit clauses handled at solve start).
	if len(out) >= 2 {
		s.watches[out[0]] = append(s.watches[out[0]], c)
		s.watches[out[1]] = append(s.watches[out[1]], c)
	}
}

func (s *Solver) value(l Lit) int8 {
	a := s.assigns[l.Var()]
	if a == valUnassigned {
		return valUnassigned
	}
	if l.Sign() == (a == valTrue) {
		return valTrue
	}
	return valFalse
}

func (s *Solver) enqueue(l Lit, from *clause) bool {
	switch s.value(l) {
	case valTrue:
		return true
	case valFalse:
		return false
	}
	v := l.Var()
	if l.Sign() {
		s.assigns[v] = valTrue
	} else {
		s.assigns[v] = valFalse
	}
	s.level[v] = len(s.trailLim)
	s.reason[v] = from
	s.trail = append(s.trail, l)
	s.Propagations++
	return true
}

// propagate runs unit propagation from the given trail position, returning
// the conflicting clause or nil.
func (s *Solver) propagate(qhead *int) *clause {
	for *qhead < len(s.trail) {
		l := s.trail[*qhead]
		*qhead++
		falsified := l.Neg()
		ws := s.watches[falsified]
		var kept []*clause
		for i := 0; i < len(ws); i++ {
			c := ws[i]
			// Ensure falsified is at position 1.
			if c.lits[0] == falsified {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			if s.value(c.lits[0]) == valTrue {
				kept = append(kept, c)
				continue
			}
			// Look for a new literal to watch.
			moved := false
			for j := 2; j < len(c.lits); j++ {
				if s.value(c.lits[j]) != valFalse {
					c.lits[1], c.lits[j] = c.lits[j], c.lits[1]
					s.watches[c.lits[1]] = append(s.watches[c.lits[1]], c)
					moved = true
					break
				}
			}
			if moved {
				continue
			}
			// Clause is unit or conflicting.
			kept = append(kept, c)
			if !s.enqueue(c.lits[0], c) {
				// Conflict: keep remaining watchers and report.
				kept = append(kept, ws[i+1:]...)
				s.watches[falsified] = kept
				s.Conflicts++
				return c
			}
		}
		s.watches[falsified] = kept
	}
	return nil
}

func (s *Solver) newDecisionLevel() { s.trailLim = append(s.trailLim, len(s.trail)) }

func (s *Solver) backtrackTo(level int) {
	if len(s.trailLim) <= level {
		return
	}
	limit := s.trailLim[level]
	for i := len(s.trail) - 1; i >= limit; i-- {
		v := s.trail[i].Var()
		s.assigns[v] = valUnassigned
		s.reason[v] = nil
	}
	s.trail = s.trail[:limit]
	s.trailLim = s.trailLim[:level]
}

// pickBranchVar returns the unassigned variable with the highest activity,
// or 0 when all variables are assigned.
func (s *Solver) pickBranchVar() int {
	best, bestAct := 0, -1.0
	for v := 1; v <= s.nVars; v++ {
		if s.assigns[v] == valUnassigned && s.activity[v] > bestAct {
			best, bestAct = v, s.activity[v]
		}
	}
	return best
}

func (s *Solver) bumpClause(c *clause) {
	for _, l := range c.lits {
		s.activity[l.Var()] += s.varInc
	}
	s.varInc *= 1.05
	if s.varInc > 1e100 {
		for v := 1; v <= s.nVars; v++ {
			s.activity[v] *= 1e-100
		}
		s.varInc *= 1e-100
	}
}

// Solve decides satisfiability under the given assumption literals.
// On Sat, Model reports the assignment. On Unsat with assumptions, the
// failed assumptions can be minimized with Core.
func (s *Solver) Solve(assumptions ...Lit) Status {
	if s.hasEmpty {
		return Unsat
	}
	s.backtrackTo(0)
	qhead := 0
	// Assert unit clauses at level 0.
	for _, c := range s.clauses {
		if len(c.lits) == 1 {
			if !s.enqueue(c.lits[0], c) {
				return Unsat
			}
		}
	}
	if s.propagate(&qhead) != nil {
		return Unsat
	}
	rootLevel := 0
	// Assert assumptions, each at its own decision level.
	for _, a := range assumptions {
		if a == 0 || a.Var() > s.nVars {
			panic(fmt.Sprintf("sat: bad assumption %d", a))
		}
		switch s.value(a) {
		case valTrue:
			continue
		case valFalse:
			return Unsat
		}
		s.newDecisionLevel()
		rootLevel = len(s.trailLim)
		s.enqueue(a, nil)
		if s.propagate(&qhead) != nil {
			return Unsat
		}
	}
	rootLevel = len(s.trailLim)

	// DPLL with chronological backtracking. flip[i] records whether the
	// decision at level rootLevel+i has already been tried both ways.
	type decision struct {
		lit     Lit
		flipped bool
	}
	var decisions []decision
	for {
		conflict := s.propagate(&qhead)
		if conflict != nil {
			s.bumpClause(conflict)
			// Backtrack to the most recent unflipped decision.
			for {
				if len(decisions) == 0 {
					return Unsat
				}
				d := &decisions[len(decisions)-1]
				if !d.flipped {
					lvl := rootLevel + len(decisions) - 1
					s.backtrackTo(lvl)
					qhead = len(s.trail)
					d.flipped = true
					d.lit = d.lit.Neg()
					s.newDecisionLevel()
					s.enqueue(d.lit, nil)
					break
				}
				decisions = decisions[:len(decisions)-1]
				s.backtrackTo(rootLevel + len(decisions))
				qhead = len(s.trail)
			}
			continue
		}
		v := s.pickBranchVar()
		if v == 0 {
			return Sat // all variables assigned, no conflict
		}
		s.Decisions++
		s.newDecisionLevel()
		decisions = append(decisions, decision{lit: Lit(v)})
		s.enqueue(Lit(v), nil)
	}
}

// Model returns the satisfying assignment after a Sat result, indexed by
// variable (entry 0 unused).
func (s *Solver) Model() []bool {
	out := make([]bool, s.nVars+1)
	for v := 1; v <= s.nVars; v++ {
		out[v] = s.assigns[v] == valTrue
	}
	return out
}

// ModelValue returns the assigned value of a literal after Sat.
func (s *Solver) ModelValue(l Lit) bool {
	if l.Sign() {
		return s.assigns[l.Var()] == valTrue
	}
	return s.assigns[l.Var()] != valTrue
}

// Core returns a minimized subset of the given assumptions that is still
// unsatisfiable together with the clause database. It uses deletion-based
// minimization (re-solving with each assumption removed), which is simple
// and adequate for the small soft-constraint sets Algorithm 1 generates.
// The assumptions must be jointly Unsat; Core panics otherwise.
func (s *Solver) Core(assumptions []Lit) []Lit {
	if st := s.Solve(assumptions...); st != Unsat {
		panic("sat: Core called on satisfiable assumptions")
	}
	core := append([]Lit(nil), assumptions...)
	for i := 0; i < len(core); {
		trial := make([]Lit, 0, len(core)-1)
		trial = append(trial, core[:i]...)
		trial = append(trial, core[i+1:]...)
		if s.Solve(trial...) == Unsat {
			core = trial // assumption i is unnecessary
		} else {
			i++
		}
	}
	return core
}
