package homeostasis

import (
	"fmt"

	"repro/internal/lang"
	"repro/internal/rt"
	"repro/internal/workload"
)

// execHomeo runs one request under the homeostasis protocol (also used by
// OPT and the default-config ablation, which differ only in treaty
// generation): disconnected local execution, pre-commit local treaty
// check, and on violation the cleanup phase of Section 3.3.
func (sys *System) execHomeo(p rt.Proc, site int, req workload.Request) (ExecResult, error) {
	units := make([]*unitState, len(req.Units))
	for i, id := range req.Units {
		if id < 0 || id >= len(sys.Units) {
			return ExecResult{}, fmt.Errorf("%w: request %s names unknown unit %d", ErrProtocol, req.Name, id)
		}
		units[i] = sys.Units[id]
	}
	track := sys.Opts.Alloc != AllocDefault
	var before [][]int64
	if track {
		before = make([][]int64, len(units))
		for i, u := range units {
			before[i] = make([]int64, len(u.objects))
		}
	}
	for attempt := 0; ; attempt++ {
		if attempt > 100 {
			sys.Col.RecordLivelock()
			return ExecResult{}, fmt.Errorf("%w: request %s", ErrLivelocked, req.Name)
		}
		// If any touched unit is renegotiating, wait for the new round:
		// new transactions must see the new treaty.
		for _, u := range units {
			sys.waitForUnit(p, u)
		}

		// Local execution: occupy a CPU slot for the service time, then
		// apply the stored procedure against the local store. The deferred
		// Abort is a no-op after Commit and guards against the process
		// being cancelled at the simulation deadline with tentative writes
		// still installed.
		cpu := sys.CPUs[site]
		cpu.Acquire(p)
		p.Sleep(sys.Opts.LocalExecTime)
		// Demand snapshot: between here and the commit there are no park
		// points, so the delta movement below is exactly this request's.
		// Per object, not per unit sum — opposing movements of a unit's
		// objects must not cancel out of the burn.
		if track {
			for i, u := range units {
				for k, obj := range u.objects {
					before[i][k] = sys.Stores[site].Get(lang.DeltaObj(obj, site))
				}
			}
		}
		violIdx := -1
		var commitLog []int64
		committed, violated, checkErr := func() (bool, bool, error) {
			tx := sys.Stores[site].Begin(p)
			defer tx.Abort()
			view := &deltaView{tx: tx, site: site, nSites: sys.Opts.Topo.NSites()}
			if execErr := req.Exec(view); execErr != nil {
				return false, false, nil
			}
			// Pre-commit check: would committing leave the site's state
			// inside its local treaties? The store already reflects the
			// tentative writes.
			for i, u := range units {
				holds, err := sys.localTreatyHolds(u, site)
				if err != nil {
					// A treaty that cannot be evaluated is a protocol
					// error, not a violation: it must not trigger a
					// synchronization round.
					return false, false, err
				}
				if !holds {
					violIdx = i
					return false, true, nil
				}
			}
			tx.Commit()
			sys.logCommit(req, site, view.log)
			commitLog = view.log
			return true, false, nil
		}()
		if committed && track {
			for i, u := range units {
				for k, obj := range u.objects {
					d := sys.Stores[site].Get(lang.DeltaObj(obj, site)) - before[i][k]
					if d < 0 {
						d = -d
					}
					u.demand[site].burn += d
				}
			}
		}
		cpu.Release()
		if checkErr != nil {
			return ExecResult{}, fmt.Errorf("%w: request %s: %v", ErrProtocol, req.Name, checkErr)
		}
		if committed {
			return ExecResult{Committed: true, Log: commitLog}, nil
		}
		if !violated {
			// Lock failure during execution: retry.
			sys.Col.RecordConflictAbort()
			continue
		}
		if track {
			units[violIdx].demand[site].violations++
		}

		// Treaty violation: the write was rolled back (it must not commit
		// in this round); run the cleanup phase with this request as the
		// winning transaction T' — unless another violator won the vote
		// first. With batching enabled the queued violator registers as a
		// co-winner of the in-flight round when it still can; otherwise
		// (and always under AllocDefault) it waits and retries as a
		// "loser".
		busy := false
		for _, u := range units {
			if u.negotiating {
				busy = true
				break
			}
		}
		if busy {
			if j := sys.tryJoin(units, site, req); j != nil {
				for _, u := range units {
					sys.waitForUnit(p, u)
				}
				if j.committed {
					// Folded into the round: T' ran at every site with
					// this request batched behind the winner.
					sys.Col.RecordCoWinner()
					return ExecResult{Committed: true, Synced: true, Log: j.log}, nil
				}
				// The round closed before this joiner registered was
				// folded in; retry against the fresh treaties.
				continue
			}
			sys.BusyRetries++
			for _, u := range units {
				sys.waitForUnit(p, u)
			}
			continue
		}
		winLog := sys.negotiate(p, site, units, req)
		// T' was executed at every site during cleanup; done.
		return ExecResult{Committed: true, Synced: true, Log: winLog}, nil
	}
}

// localTreatyHolds evaluates the site's local treaty for the unit against
// the site store's current (tentative) state, using the constraint
// closures compiled at the last negotiation round (see
// treaty.Compile). The compiled form pre-resolves object ids and cannot
// fail during evaluation; a unit with no compiled treaty for the site is
// reported as an error, which callers must keep distinct from a treaty
// violation — only the latter starts a synchronization round.
func (sys *System) localTreatyHolds(u *unitState, site int) (bool, error) {
	if site < 0 || site >= len(u.compiled) {
		return false, fmt.Errorf("unit %d has no compiled local treaty for site %d", u.id, site)
	}
	return u.compiled[site].Holds(sys.Stores[site]), nil
}

// tryJoin registers the violator as a co-winner of the negotiation
// covering every unit it touches, if that round is still accepting
// (leader still in its first communication round). Returns nil when the
// units span no single accepting round — the caller falls back to the
// serial loser path. Only called with batching enabled.
func (sys *System) tryJoin(units []*unitState, site int, req workload.Request) *joiner {
	if !sys.batching() || len(units) == 0 {
		return nil
	}
	neg := units[0].neg
	if neg == nil || !neg.accepting {
		return nil
	}
	for _, u := range units[1:] {
		if u.neg != neg {
			return nil
		}
	}
	j := &joiner{site: site, req: req}
	neg.joiners = append(neg.joiners, j)
	return j
}

// waitForUnit parks until the unit is not negotiating.
func (sys *System) waitForUnit(p rt.Proc, u *unitState) {
	for u.negotiating {
		u.waiters = append(u.waiters, p)
		p.PrepPark()
		p.Park()
	}
}

// wakeUnitWaiters releases every process waiting on the unit.
func (sys *System) wakeUnitWaiters(u *unitState) {
	waiters := u.waiters
	u.waiters = nil
	for _, w := range waiters {
		w := w
		token := w.Token()
		sys.E.At(sys.E.Now(), func() { w.WakeIf(token) })
	}
}

// negotiate is the cleanup phase (Section 3.3) scoped to the treaty units
// the winning transaction touches:
//
//  1. synchronize: every site broadcasts the unit objects it updated this
//     round (one communication round); with batching enabled, violators
//     queued behind these units register as co-winners meanwhile;
//  2. execute the winning transaction T' — and every registered
//     co-winner, in registration order — on the consolidated state at
//     every site;
//  3. generate new treaties for the next round (solver time) and
//     distribute them (second communication round).
//
// The whole batch therefore pays the two MaxRTTFrom rounds once. The
// commits performed here are unconditional: a treaty-generation failure
// in step 3 no longer concerns them (they are already applied and logged
// at every site), so it is surfaced as a protocol-degradation counter
// with safe pin treaties installed, never as a request error.
//
// Returns the winning transaction's print log; co-winners receive theirs
// through their joiner entries.
func (sys *System) negotiate(p rt.Proc, site int, units []*unitState, req workload.Request) []int64 {
	var neg *negotiation
	if sys.batching() {
		neg = &negotiation{accepting: true}
	}
	for _, u := range units {
		u.negotiating = true
		u.neg = neg
	}
	commStart := p.Now()

	// Round 1: collect state from all sites (request out + replies back).
	p.Sleep(sys.Opts.Topo.MaxRTTFrom(site))
	// Joining closes when the round returns: later violators must not
	// slip in after the fold below.
	var joiners []*joiner
	if neg != nil {
		neg.accepting = false
		joiners = neg.joiners
	}
	// Fold the batch's entire logical footprint: the violated units'
	// objects plus any objects outside them that T' or a co-winner
	// touches (the paper's cleanup synchronizes everything updated in the
	// round before running T').
	objSet := make(map[lang.ObjID]bool)
	for _, u := range units {
		for _, obj := range u.objects {
			objSet[obj] = true
		}
	}
	for _, obj := range req.Objects {
		objSet[obj] = true
	}
	for _, j := range joiners {
		for _, obj := range j.req.Objects {
			objSet[obj] = true
		}
	}
	n := sys.Opts.Topo.NSites()
	folded := lang.Database{}
	for obj := range objSet {
		v := sys.Stores[0].Get(obj)
		for k := 0; k < n; k++ {
			v += sys.Stores[k].Get(lang.DeltaObj(obj, k))
		}
		folded[obj] = v
	}

	// Execute T' on the consolidated state, then the co-winners in
	// registration order (the serial order the commit log records).
	txnLog := req.Apply(folded)
	joinerLogs := make([][]int64, len(joiners))
	for i, j := range joiners {
		joinerLogs[i] = j.req.Apply(folded)
	}

	// Install the consolidated post-batch state everywhere: base objects
	// get the logical values, every delta object resets to zero. This
	// step is atomic in virtual time (no park points), and homeostasis-
	// mode local transactions never park mid-transaction, so no in-flight
	// transaction can observe a half-installed state.
	for obj := range objSet {
		for s := 0; s < n; s++ {
			sys.Stores[s].Apply(obj, folded[obj])
			for k := 0; k < n; k++ {
				sys.Stores[s].Apply(lang.DeltaObj(obj, k), 0)
			}
		}
	}
	comm1 := rt.Duration(p.Now() - commStart)
	// The batch is now committed at every site: log it before any further
	// park point so a deadline cancellation cannot leave it applied-but-
	// unlogged.
	sys.logCommit(req, site, txnLog)
	for i, j := range joiners {
		sys.logCommit(j.req, j.site, joinerLogs[i])
		j.log = joinerLogs[i]
		j.committed = true
	}

	// Execution charge for the batch (Options.CleanupExec, live
	// runtimes): T' and every co-winner occupy a CPU slot for their
	// service time, after the atomic fold/install/log so the
	// consolidated state is never exposed half-built across a park
	// point. The simulator's default keeps the seed model instead —
	// the cost appears in the violation breakdown only (see Options).
	if sys.Opts.CleanupExec {
		cpu := sys.CPUs[site]
		cpu.Acquire(p)
		p.Sleep(rt.Duration(1+len(joiners)) * sys.Opts.LocalExecTime)
		cpu.Release()
	}

	// Treaty computation (solver time charged in virtual time; the actual
	// computation runs for real to produce the real treaties).
	solveStart := p.Now()
	p.Sleep(sys.solverTime())
	for _, u := range units {
		unitFolded := lang.Database{}
		for _, obj := range u.objects {
			unitFolded[obj] = folded[obj]
		}
		if err := sys.generateTreaties(u, unitFolded); err != nil {
			// The batch already committed: degrade this unit to safe pin
			// treaties (every next write synchronizes and retries real
			// generation) and surface the failure as a counter. If even
			// the pin install fails the stale treaties stay — that path
			// has no failure mode short of a broken template builder.
			sys.Col.RecordTreatyGenFailure()
			_ = sys.installPinTreaties(u, unitFolded)
		}
		u.resetDemand()
	}
	solver := rt.Duration(p.Now() - solveStart)

	// Round 2: distribute the new treaties.
	comm2Start := p.Now()
	p.Sleep(sys.Opts.Topo.MaxRTTFrom(site))
	comm2 := rt.Duration(p.Now() - comm2Start)

	for _, u := range units {
		u.negotiating = false
		u.neg = nil
		sys.wakeUnitWaiters(u)
	}
	if sys.Col.Measuring {
		// The exec component is the winner's service time; co-winners are
		// counted by the collector's CoWinnerCommits, not here, so the
		// per-violation averages of Figure 24 keep their meaning.
		sys.Col.ViolationBreakdown.Add(sys.Opts.LocalExecTime, solver, comm1+comm2)
	}
	return txnLog
}

func (sys *System) logCommit(req workload.Request, site int, log []int64) {
	if !sys.Opts.EnableLog {
		return
	}
	sys.CommitLog = append(sys.CommitLog, Committed{
		Name:  req.Name,
		Args:  req.Args,
		Site:  site,
		Units: req.Units,
		Log:   log,
		Apply: req.Apply,
	})
}
